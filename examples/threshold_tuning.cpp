// The paper's lesson (v): neural matchers' fairness is sensitive to the
// matching threshold, so sweep thresholds and pick the most fair/accurate
// one. This example sweeps Ditto on iTunes-Amazon (the Figure 14 setting),
// prints the sweep, and selects the best threshold: maximal TPR among the
// thresholds with the fewest discriminated groups.

#include <iostream>

#include "src/core/threshold.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"
#include "src/report/heatmap.h"
#include "src/util/string_util.h"

int main() {
  using namespace fairem;

  Result<EMDataset> dataset = GenerateDataset(DatasetKind::kItunesAmazon);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  Result<MatcherRun> run = RunMatcher(*dataset, MatcherKind::kDitto);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  Result<FairnessAuditor> auditor = MakeAuditor(*dataset);
  if (!auditor.ok()) {
    std::cerr << auditor.status() << "\n";
    return 1;
  }
  std::vector<double> thresholds = ThresholdGrid(0.30, 0.95, 0.05);
  Result<std::vector<ThresholdPoint>> sweep = SweepThresholds(
      *auditor, dataset->test, run->test_scores,
      FairnessMeasure::kTruePositiveRateParity, thresholds, AuditOptions{});
  if (!sweep.ok()) {
    std::cerr << sweep.status() << "\n";
    return 1;
  }

  ThresholdHeatmap heatmap(thresholds);
  heatmap.AddRow(run->matcher_name, *sweep);
  std::cout << "Ditto on iTunes-Amazon — TPR(#TPRP-discriminated groups) "
               "per threshold:\n"
            << heatmap.Render() << "\n";
  std::cout << "threshold sensitivity (Table 7 statistic): "
            << FormatDouble(ThresholdSensitivityL2(*sweep), 1) << "\n\n";

  // Lesson (v): among the thresholds with minimal unfairness, take the one
  // with the best utility.
  int min_unfair = 1 << 30;
  for (const auto& p : *sweep) {
    if (p.utility_defined) min_unfair = std::min(min_unfair,
                                                 p.num_unfair_groups);
  }
  const ThresholdPoint* best = nullptr;
  for (const auto& p : *sweep) {
    if (!p.utility_defined || p.num_unfair_groups != min_unfair) continue;
    if (best == nullptr || p.utility > best->utility) best = &p;
  }
  if (best == nullptr) {
    std::cerr << "no usable threshold\n";
    return 1;
  }
  std::cout << "selected threshold " << FormatDouble(best->threshold, 2)
            << ": TPR " << FormatDouble(best->utility, 2) << " with "
            << best->num_unfair_groups << " discriminated group(s)\n";
  return 0;
}
