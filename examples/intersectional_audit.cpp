// Advanced auditing beyond the paper's headline experiments, on Cricket:
//  * multi-attribute intersectional subgroups (battingStyle x country,
//    the Figure 1 hierarchy) via MultiAttrAuditor;
//  * ordered single fairness (§3.2.2's extension) — is the unfairness
//    attached to the dirty right-hand source?
//  * AUC parity (the threshold-free definition of the paper's cited
//    parallel work [46]);
//  * persisting the generated benchmark with SaveDataset.

#include <filesystem>
#include <iostream>

#include "src/core/auc.h"
#include "src/core/multi_attr.h"
#include "src/data/dataset_io.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

int main() {
  using namespace fairem;

  Result<EMDataset> dataset = GenerateDataset(DatasetKind::kCricket);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  Result<MatcherRun> run = RunMatcher(*dataset, MatcherKind::kLogReg);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  Result<std::vector<PairOutcome>> outcomes = MakeOutcomes(
      dataset->test, run->test_scores, dataset->default_threshold);
  if (!outcomes.ok()) {
    std::cerr << outcomes.status() << "\n";
    return 1;
  }

  // 1. Intersectional audit at hierarchy level 2: battingStyle x country.
  std::vector<SensitiveAttr> attrs = {
      {"battingStyle", SensitiveAttrKind::kBinary, '|'},
      {"country", SensitiveAttrKind::kMultiValued, '|'}};
  Result<MultiAttrAuditor> multi =
      MultiAttrAuditor::Make(dataset->table_a, dataset->table_b, attrs);
  if (!multi.ok()) {
    std::cerr << multi.status() << "\n";
    return 1;
  }
  AuditOptions options;
  options.measures = {FairnessMeasure::kTruePositiveRateParity,
                      FairnessMeasure::kNegativePredictiveValueParity};
  options.min_group_pairs = 5;
  Result<AuditReport> level2 = multi->AuditLevel(2, *outcomes, options);
  if (!level2.ok()) {
    std::cerr << level2.status() << "\n";
    return 1;
  }
  std::cout << "== intersectional subgroups (level 2 of "
            << multi->max_level() << ") with any unfair measure ==\n";
  TablePrinter inter({"subgroup", "measure", "value", "reference",
                      "disparity"});
  for (const auto& e : level2->entries) {
    if (!e.unfair) continue;
    inter.AddRow({e.group_label, FairnessMeasureName(e.measure),
                  FormatDouble(e.group_value, 3),
                  FormatDouble(e.overall_value, 3),
                  FormatDouble(e.disparity, 3)});
  }
  std::cout << (inter.num_rows() > 0 ? inter.ToString()
                                     : "(none at the 20% rule)\n")
            << "\n";

  // 2. Ordered fairness: the dirty abbreviations live in table B, so the
  //    right-side audit localizes the FN harm.
  Result<FairnessAuditor> auditor = MakeAuditor(*dataset);
  if (!auditor.ok()) {
    std::cerr << auditor.status() << "\n";
    return 1;
  }
  AuditOptions ordered_options;
  ordered_options.measures = {FairnessMeasure::kFalseNegativeRateParity};
  Result<AuditReport> ordered = auditor->AuditSingleOrdered(
      *outcomes, PairSide::kRight, ordered_options);
  if (!ordered.ok()) {
    std::cerr << ordered.status() << "\n";
    return 1;
  }
  std::cout << "== ordered (right-side) FNR per batting style ==\n";
  for (const auto& e : ordered->entries) {
    if (!e.defined) continue;
    std::cout << "  " << e.group_label << ": FNR "
              << FormatDouble(e.group_value, 3)
              << (e.unfair ? "  <- unfair" : "") << "\n";
  }

  // 3. Threshold-free AUC parity.
  Result<std::vector<GroupAuc>> auc = AuditAucParity(
      auditor->membership(), dataset->test, run->test_scores);
  if (!auc.ok()) {
    std::cerr << auc.status() << "\n";
    return 1;
  }
  std::cout << "\n== AUC parity (threshold-free) ==\n";
  for (const auto& row : *auc) {
    if (!row.defined) continue;
    std::cout << "  " << row.group_label << ": AUC "
              << FormatDouble(row.auc, 3) << " vs overall "
              << FormatDouble(row.overall_auc, 3)
              << (row.unfair ? "  <- unfair" : "") << "\n";
  }

  // 4. Persist the benchmark for sharing.
  std::string dir =
      std::filesystem::temp_directory_path() / "fairem_cricket_benchmark";
  std::filesystem::create_directories(dir);
  if (Status st = SaveDataset(*dataset, dir); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "\nbenchmark persisted to " << dir
            << " (reload with LoadDataset)\n";
  return 0;
}
