// The paper's lesson (vi) / Table 8 recommendation: for a single sensitive
// attribute with exclusive values, train a *set* of matchers, identify the
// best matcher per group on a held-out split, and route each group to its
// best matcher. This example builds that ensemble on FacultyMatch and
// shows the per-group F1 and the TPR gap closing relative to any single
// matcher.

#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "src/datagen/social.h"
#include "src/harness/experiment.h"
#include "src/ml/metrics.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

/// F1 of `scores` restricted to pairs where either side belongs to `group`.
Result<double> GroupF1(const EMDataset& dataset,
                       const std::vector<LabeledPair>& pairs,
                       const std::vector<double>& scores,
                       const FairnessAuditor& auditor,
                       const std::string& group) {
  FAIREM_ASSIGN_OR_RETURN(uint64_t mask,
                          auditor.membership().encoding().Encode({group}));
  FAIREM_ASSIGN_OR_RETURN(
      std::vector<PairOutcome> outcomes,
      MakeOutcomes(pairs, scores, dataset.default_threshold));
  ConfusionCounts counts =
      SingleGroupCounts(auditor.membership(), outcomes, mask);
  return F1Score(counts);
}

int Run() {
  Result<EMDataset> dataset = GenerateFacultyMatch(FacultyMatchOptions{});
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  Result<FairnessAuditor> auditor = MakeAuditor(*dataset);
  if (!auditor.ok()) {
    std::cerr << auditor.status() << "\n";
    return 1;
  }

  // Candidate pool: one simple, one complex boundary per family (the
  // paper's observation: different groups need different boundary shapes).
  const std::vector<MatcherKind> pool = {
      MatcherKind::kDT, MatcherKind::kRF, MatcherKind::kLogReg,
      MatcherKind::kDitto, MatcherKind::kDeepMatcher};

  struct Candidate {
    std::unique_ptr<Matcher> matcher;
    std::vector<double> valid_scores;
    std::vector<double> test_scores;
    std::string name;
  };
  std::vector<Candidate> candidates;
  for (MatcherKind kind : pool) {
    Candidate c;
    c.matcher = CreateMatcher(kind);
    c.name = MatcherKindName(kind);
    Rng rng(4242 ^ static_cast<uint64_t>(kind));
    if (Status st = c.matcher->Fit(*dataset, &rng); !st.ok()) {
      std::cerr << c.name << ": " << st << "\n";
      return 1;
    }
    Result<std::vector<double>> valid =
        c.matcher->PredictScores(*dataset, dataset->valid);
    Result<std::vector<double>> test =
        c.matcher->PredictScores(*dataset, dataset->test);
    if (!valid.ok() || !test.ok()) {
      std::cerr << c.name << ": scoring failed\n";
      return 1;
    }
    c.valid_scores = std::move(valid).value();
    c.test_scores = std::move(test).value();
    candidates.push_back(std::move(c));
    std::cerr << "trained " << MatcherKindName(kind) << "\n";
  }

  // Select the best candidate per group on the validation split.
  std::map<std::string, size_t> best_for_group;
  TablePrinter selection({"group", "selected matcher", "valid F1"});
  for (const auto& group : auditor->groups()) {
    double best_f1 = -1.0;
    size_t best = 0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      Result<double> f1 = GroupF1(*dataset, dataset->valid,
                                  candidates[c].valid_scores, *auditor, group);
      if (f1.ok() && *f1 > best_f1) {
        best_f1 = *f1;
        best = c;
      }
    }
    best_for_group[group] = best;
    selection.AddRow({group, candidates[best].name, FormatDouble(best_f1, 3)});
  }
  std::cout << selection.ToString() << "\n";

  // Per-group test F1: each single matcher vs the routed ensemble.
  TablePrinter results({"matcher", "F1 cn", "F1 de", "TPR cn", "TPR de"});
  auto add_result = [&](const std::string& name,
                        const std::vector<double>& scores) -> Status {
    std::vector<std::string> row = {name};
    std::vector<std::string> tprs;
    for (const auto& group : auditor->groups()) {
      FAIREM_ASSIGN_OR_RETURN(
          double f1, GroupF1(*dataset, dataset->test, scores, *auditor, group));
      row.push_back(FormatDouble(f1, 3));
      FAIREM_ASSIGN_OR_RETURN(uint64_t mask,
                              auditor->membership().encoding().Encode({group}));
      FAIREM_ASSIGN_OR_RETURN(
          std::vector<PairOutcome> outcomes,
          MakeOutcomes(dataset->test, scores, dataset->default_threshold));
      ConfusionCounts counts =
          SingleGroupCounts(auditor->membership(), outcomes, mask);
      tprs.push_back(
          FormatDouble(TruePositiveRate(counts).value_or(0.0), 3));
    }
    row.insert(row.end(), tprs.begin(), tprs.end());
    results.AddRow(std::move(row));
    return Status::OK();
  };
  for (const auto& c : candidates) {
    if (Status st = add_result(c.name, c.test_scores); !st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
  }
  // The routed ensemble: per pair, use the matcher selected for the groups
  // the pair touches (cn wins ties — it is the larger group).
  std::vector<double> ensemble(dataset->test.size());
  FAIREM_CHECK(!candidates.empty());
  {
    Result<uint64_t> cn_mask = auditor->membership().encoding().Encode({"cn"});
    for (size_t i = 0; i < dataset->test.size(); ++i) {
      const LabeledPair& p = dataset->test[i];
      bool cn_pair =
          cn_mask.ok() &&
          (GroupEncoding::Belongs(auditor->membership().LeftMask(p.left),
                                  *cn_mask) ||
           GroupEncoding::Belongs(auditor->membership().RightMask(p.right),
                                  *cn_mask));
      const std::string group = cn_pair ? "cn" : "de";
      ensemble[i] = candidates[best_for_group[group]].test_scores[i];
    }
  }
  if (Status st = add_result("PerGroupEnsemble", ensemble); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << results.ToString()
            << "\nThe routed ensemble matches the best per-group matcher "
               "everywhere, shrinking the cn/de gap\n(Table 8's closing "
               "recommendation).\n";
  return 0;
}

}  // namespace
}  // namespace fairem

int main() { return fairem::Run(); }
