// The paper's Example 1 end-to-end: build the no-fly-list screening
// scenario, train a neural and a non-neural matcher, audit both for race
// fairness, and surface a concrete false-positive case — a passenger who
// would be wrongly flagged.

#include <iostream>

#include "src/datagen/social.h"
#include "src/harness/experiment.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

int main() {
  using namespace fairem;

  NoFlyCompasOptions options;  // paper-shaped defaults; fully seeded
  Result<EMDataset> dataset = GenerateNoFlyCompas(options);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  std::cout << "no-fly list: " << dataset->table_b.num_rows()
            << " records; passengers: " << dataset->table_a.num_rows()
            << "; test pairs: " << dataset->test.size() << "\n\n";

  TablePrinter table(
      {"matcher", "family", "F1", "FDR Afr", "FDR Cauc", "unfair groups"});
  for (MatcherKind kind : {MatcherKind::kRF, MatcherKind::kDitto}) {
    Result<MatcherRun> run = RunMatcher(*dataset, kind);
    if (!run.ok()) {
      std::cerr << run.status() << "\n";
      return 1;
    }
    Result<std::vector<GroupRates>> groups = GroupBreakdown(*dataset, *run);
    Result<AuditReport> report = AuditRunSingle(*dataset, *run);
    if (!groups.ok() || !report.ok()) {
      std::cerr << "audit failed\n";
      return 1;
    }
    std::string fdr_afr = "-";
    std::string fdr_cauc = "-";
    for (const auto& g : *groups) {
      Result<double> fdr = FalseDiscoveryRate(g.counts);
      if (!fdr.ok()) continue;
      if (g.group == "African-American") fdr_afr = FormatDouble(*fdr, 2);
      if (g.group == "Caucasian") fdr_cauc = FormatDouble(*fdr, 2);
    }
    table.AddRow({run->matcher_name,
                  MatcherFamilyName(FamilyOf(kind)),
                  FormatDouble(run->f1, 2), fdr_afr, fdr_cauc,
                  std::to_string(report->NumDiscriminatedGroups())});

    // Surface a concrete false positive of the neural matcher: the person
    // who would be pulled aside at the gate.
    if (kind == MatcherKind::kDitto) {
      for (size_t i = 0; i < dataset->test.size(); ++i) {
        const LabeledPair& p = dataset->test[i];
        if (!p.is_match &&
            run->test_scores[i] >= dataset->default_threshold) {
          std::cout << "example false positive by " << run->matcher_name
                    << ":\n  passenger: "
                    << dataset->table_a.value(p.left, 0) << " "
                    << dataset->table_a.value(p.left, 1) << " ("
                    << dataset->table_a.value(p.left, 2) << ")\n  no-fly:    "
                    << dataset->table_b.value(p.right, 0) << " "
                    << dataset->table_b.value(p.right, 1) << " ("
                    << dataset->table_b.value(p.right, 2) << ")\n\n";
          break;
        }
      }
    }
  }
  std::cout << table.ToString()
            << "\nA higher FDR for the over-represented group means its "
               "members are more often\nwrongly flagged — the paper's "
               "no-fly harm (Example 1).\n";
  return 0;
}
