// Quickstart: generate a benchmark dataset, train a matcher, audit its
// fairness — the library's minimal end-to-end flow.
//
// Build & run:  cmake -B build -G Ninja && ninja -C build quickstart
//               ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

int main() {
  using namespace fairem;

  // 1. Generate the DBLP-ACM benchmark (seeded — fully reproducible).
  Result<EMDataset> dataset = GenerateDataset(DatasetKind::kDblpAcm);
  if (!dataset.ok()) {
    std::cerr << "dataset generation failed: " << dataset.status() << "\n";
    return 1;
  }
  std::cout << "dataset " << dataset->name << ": "
            << dataset->table_a.num_rows() << " x "
            << dataset->table_b.num_rows() << " records, "
            << dataset->test.size() << " test pairs, "
            << FormatDouble(100.0 * dataset->PositiveRate(), 1)
            << "% positive\n\n";

  // 2. Train a matcher and score the test pairs.
  Result<MatcherRun> run = RunMatcher(*dataset, MatcherKind::kRF);
  if (!run.ok()) {
    std::cerr << "matcher run failed: " << run.status() << "\n";
    return 1;
  }
  std::cout << run->matcher_name << ": accuracy "
            << FormatDouble(run->accuracy, 3) << ", F1 "
            << FormatDouble(run->f1, 3) << "\n\n";

  // 3. Audit single fairness over the venue groups.
  AuditOptions options;  // defaults: all 11 measures, 20% rule, subtraction
  Result<AuditReport> report = AuditRunSingle(*dataset, *run, options);
  if (!report.ok()) {
    std::cerr << "audit failed: " << report.status() << "\n";
    return 1;
  }
  TablePrinter table({"group", "measure", "overall", "group value",
                      "disparity", "unfair"});
  for (const auto& e : report->entries) {
    if (!e.defined) continue;
    table.AddRow({e.group_label, FairnessMeasureName(e.measure),
                  FormatDouble(e.overall_value, 3),
                  FormatDouble(e.group_value, 3),
                  FormatDouble(e.disparity, 3), e.unfair ? "UNFAIR" : ""});
  }
  std::cout << table.ToString();
  std::cout << "\ndiscriminated groups (any measure): "
            << report->NumDiscriminatedGroups() << "\n";
  return 0;
}
