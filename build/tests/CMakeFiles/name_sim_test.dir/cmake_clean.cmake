file(REMOVE_RECURSE
  "CMakeFiles/name_sim_test.dir/name_sim_test.cc.o"
  "CMakeFiles/name_sim_test.dir/name_sim_test.cc.o.d"
  "name_sim_test"
  "name_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
