file(REMOVE_RECURSE
  "CMakeFiles/confusion_test.dir/confusion_test.cc.o"
  "CMakeFiles/confusion_test.dir/confusion_test.cc.o.d"
  "confusion_test"
  "confusion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
