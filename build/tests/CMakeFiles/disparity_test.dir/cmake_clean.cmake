file(REMOVE_RECURSE
  "CMakeFiles/disparity_test.dir/disparity_test.cc.o"
  "CMakeFiles/disparity_test.dir/disparity_test.cc.o.d"
  "disparity_test"
  "disparity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disparity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
