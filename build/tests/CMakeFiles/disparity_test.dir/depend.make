# Empty dependencies file for disparity_test.
# This may be replaced when dependencies are built.
