file(REMOVE_RECURSE
  "CMakeFiles/music_products_gen_test.dir/music_products_gen_test.cc.o"
  "CMakeFiles/music_products_gen_test.dir/music_products_gen_test.cc.o.d"
  "music_products_gen_test"
  "music_products_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_products_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
