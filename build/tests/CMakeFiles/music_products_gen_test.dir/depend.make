# Empty dependencies file for music_products_gen_test.
# This may be replaced when dependencies are built.
