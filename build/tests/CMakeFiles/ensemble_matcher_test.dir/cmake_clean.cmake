file(REMOVE_RECURSE
  "CMakeFiles/ensemble_matcher_test.dir/ensemble_matcher_test.cc.o"
  "CMakeFiles/ensemble_matcher_test.dir/ensemble_matcher_test.cc.o.d"
  "ensemble_matcher_test"
  "ensemble_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
