file(REMOVE_RECURSE
  "CMakeFiles/audit_render_test.dir/audit_render_test.cc.o"
  "CMakeFiles/audit_render_test.dir/audit_render_test.cc.o.d"
  "audit_render_test"
  "audit_render_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
