file(REMOVE_RECURSE
  "CMakeFiles/tokenize_test.dir/tokenize_test.cc.o"
  "CMakeFiles/tokenize_test.dir/tokenize_test.cc.o.d"
  "tokenize_test"
  "tokenize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tokenize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
