file(REMOVE_RECURSE
  "CMakeFiles/rules_calibration_test.dir/rules_calibration_test.cc.o"
  "CMakeFiles/rules_calibration_test.dir/rules_calibration_test.cc.o.d"
  "rules_calibration_test"
  "rules_calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
