# Empty compiler generated dependencies file for rules_calibration_test.
# This may be replaced when dependencies are built.
