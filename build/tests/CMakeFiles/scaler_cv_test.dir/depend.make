# Empty dependencies file for scaler_cv_test.
# This may be replaced when dependencies are built.
