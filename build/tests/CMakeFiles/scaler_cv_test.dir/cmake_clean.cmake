file(REMOVE_RECURSE
  "CMakeFiles/scaler_cv_test.dir/scaler_cv_test.cc.o"
  "CMakeFiles/scaler_cv_test.dir/scaler_cv_test.cc.o.d"
  "scaler_cv_test"
  "scaler_cv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaler_cv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
