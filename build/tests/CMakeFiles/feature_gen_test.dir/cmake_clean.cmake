file(REMOVE_RECURSE
  "CMakeFiles/feature_gen_test.dir/feature_gen_test.cc.o"
  "CMakeFiles/feature_gen_test.dir/feature_gen_test.cc.o.d"
  "feature_gen_test"
  "feature_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
