# Empty dependencies file for feature_gen_test.
# This may be replaced when dependencies are built.
