# Empty compiler generated dependencies file for similarity_registry_test.
# This may be replaced when dependencies are built.
