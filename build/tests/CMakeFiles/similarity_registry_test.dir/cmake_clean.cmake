file(REMOVE_RECURSE
  "CMakeFiles/similarity_registry_test.dir/similarity_registry_test.cc.o"
  "CMakeFiles/similarity_registry_test.dir/similarity_registry_test.cc.o.d"
  "similarity_registry_test"
  "similarity_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
