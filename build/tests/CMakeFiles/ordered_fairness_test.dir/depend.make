# Empty dependencies file for ordered_fairness_test.
# This may be replaced when dependencies are built.
