file(REMOVE_RECURSE
  "CMakeFiles/ordered_fairness_test.dir/ordered_fairness_test.cc.o"
  "CMakeFiles/ordered_fairness_test.dir/ordered_fairness_test.cc.o.d"
  "ordered_fairness_test"
  "ordered_fairness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
