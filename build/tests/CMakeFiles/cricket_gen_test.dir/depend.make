# Empty dependencies file for cricket_gen_test.
# This may be replaced when dependencies are built.
