file(REMOVE_RECURSE
  "CMakeFiles/cricket_gen_test.dir/cricket_gen_test.cc.o"
  "CMakeFiles/cricket_gen_test.dir/cricket_gen_test.cc.o.d"
  "cricket_gen_test"
  "cricket_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
