# Empty dependencies file for token_sim_test.
# This may be replaced when dependencies are built.
