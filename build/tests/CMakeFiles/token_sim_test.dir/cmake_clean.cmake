file(REMOVE_RECURSE
  "CMakeFiles/token_sim_test.dir/token_sim_test.cc.o"
  "CMakeFiles/token_sim_test.dir/token_sim_test.cc.o.d"
  "token_sim_test"
  "token_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
