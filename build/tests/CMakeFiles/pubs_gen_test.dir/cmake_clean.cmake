file(REMOVE_RECURSE
  "CMakeFiles/pubs_gen_test.dir/pubs_gen_test.cc.o"
  "CMakeFiles/pubs_gen_test.dir/pubs_gen_test.cc.o.d"
  "pubs_gen_test"
  "pubs_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubs_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
