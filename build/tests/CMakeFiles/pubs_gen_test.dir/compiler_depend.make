# Empty compiler generated dependencies file for pubs_gen_test.
# This may be replaced when dependencies are built.
