# Empty dependencies file for intersectional_audit.
# This may be replaced when dependencies are built.
