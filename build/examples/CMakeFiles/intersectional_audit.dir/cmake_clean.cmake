file(REMOVE_RECURSE
  "CMakeFiles/intersectional_audit.dir/intersectional_audit.cpp.o"
  "CMakeFiles/intersectional_audit.dir/intersectional_audit.cpp.o.d"
  "intersectional_audit"
  "intersectional_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersectional_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
