# Empty dependencies file for noflylist_audit.
# This may be replaced when dependencies are built.
