file(REMOVE_RECURSE
  "CMakeFiles/noflylist_audit.dir/noflylist_audit.cpp.o"
  "CMakeFiles/noflylist_audit.dir/noflylist_audit.cpp.o.d"
  "noflylist_audit"
  "noflylist_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noflylist_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
