# Empty dependencies file for ensemble_fair_matching.
# This may be replaced when dependencies are built.
