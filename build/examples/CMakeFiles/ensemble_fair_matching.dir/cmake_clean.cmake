file(REMOVE_RECURSE
  "CMakeFiles/ensemble_fair_matching.dir/ensemble_fair_matching.cpp.o"
  "CMakeFiles/ensemble_fair_matching.dir/ensemble_fair_matching.cpp.o.d"
  "ensemble_fair_matching"
  "ensemble_fair_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_fair_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
