file(REMOVE_RECURSE
  "libfairem.a"
)
