
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/blockers.cc" "src/CMakeFiles/fairem.dir/block/blockers.cc.o" "gcc" "src/CMakeFiles/fairem.dir/block/blockers.cc.o.d"
  "/root/repo/src/core/auc.cc" "src/CMakeFiles/fairem.dir/core/auc.cc.o" "gcc" "src/CMakeFiles/fairem.dir/core/auc.cc.o.d"
  "/root/repo/src/core/audit.cc" "src/CMakeFiles/fairem.dir/core/audit.cc.o" "gcc" "src/CMakeFiles/fairem.dir/core/audit.cc.o.d"
  "/root/repo/src/core/confusion.cc" "src/CMakeFiles/fairem.dir/core/confusion.cc.o" "gcc" "src/CMakeFiles/fairem.dir/core/confusion.cc.o.d"
  "/root/repo/src/core/disparity.cc" "src/CMakeFiles/fairem.dir/core/disparity.cc.o" "gcc" "src/CMakeFiles/fairem.dir/core/disparity.cc.o.d"
  "/root/repo/src/core/encoding.cc" "src/CMakeFiles/fairem.dir/core/encoding.cc.o" "gcc" "src/CMakeFiles/fairem.dir/core/encoding.cc.o.d"
  "/root/repo/src/core/group.cc" "src/CMakeFiles/fairem.dir/core/group.cc.o" "gcc" "src/CMakeFiles/fairem.dir/core/group.cc.o.d"
  "/root/repo/src/core/hierarchy.cc" "src/CMakeFiles/fairem.dir/core/hierarchy.cc.o" "gcc" "src/CMakeFiles/fairem.dir/core/hierarchy.cc.o.d"
  "/root/repo/src/core/measures.cc" "src/CMakeFiles/fairem.dir/core/measures.cc.o" "gcc" "src/CMakeFiles/fairem.dir/core/measures.cc.o.d"
  "/root/repo/src/core/multi_attr.cc" "src/CMakeFiles/fairem.dir/core/multi_attr.cc.o" "gcc" "src/CMakeFiles/fairem.dir/core/multi_attr.cc.o.d"
  "/root/repo/src/core/rules_of_thumb.cc" "src/CMakeFiles/fairem.dir/core/rules_of_thumb.cc.o" "gcc" "src/CMakeFiles/fairem.dir/core/rules_of_thumb.cc.o.d"
  "/root/repo/src/core/threshold.cc" "src/CMakeFiles/fairem.dir/core/threshold.cc.o" "gcc" "src/CMakeFiles/fairem.dir/core/threshold.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/fairem.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/fairem.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/fairem.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/fairem.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/CMakeFiles/fairem.dir/data/dataset_io.cc.o" "gcc" "src/CMakeFiles/fairem.dir/data/dataset_io.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/fairem.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/fairem.dir/data/schema.cc.o.d"
  "/root/repo/src/data/table.cc" "src/CMakeFiles/fairem.dir/data/table.cc.o" "gcc" "src/CMakeFiles/fairem.dir/data/table.cc.o.d"
  "/root/repo/src/datagen/benchmark_suite.cc" "src/CMakeFiles/fairem.dir/datagen/benchmark_suite.cc.o" "gcc" "src/CMakeFiles/fairem.dir/datagen/benchmark_suite.cc.o.d"
  "/root/repo/src/datagen/cricket.cc" "src/CMakeFiles/fairem.dir/datagen/cricket.cc.o" "gcc" "src/CMakeFiles/fairem.dir/datagen/cricket.cc.o.d"
  "/root/repo/src/datagen/music.cc" "src/CMakeFiles/fairem.dir/datagen/music.cc.o" "gcc" "src/CMakeFiles/fairem.dir/datagen/music.cc.o.d"
  "/root/repo/src/datagen/names.cc" "src/CMakeFiles/fairem.dir/datagen/names.cc.o" "gcc" "src/CMakeFiles/fairem.dir/datagen/names.cc.o.d"
  "/root/repo/src/datagen/perturb.cc" "src/CMakeFiles/fairem.dir/datagen/perturb.cc.o" "gcc" "src/CMakeFiles/fairem.dir/datagen/perturb.cc.o.d"
  "/root/repo/src/datagen/products.cc" "src/CMakeFiles/fairem.dir/datagen/products.cc.o" "gcc" "src/CMakeFiles/fairem.dir/datagen/products.cc.o.d"
  "/root/repo/src/datagen/pubs.cc" "src/CMakeFiles/fairem.dir/datagen/pubs.cc.o" "gcc" "src/CMakeFiles/fairem.dir/datagen/pubs.cc.o.d"
  "/root/repo/src/datagen/social.cc" "src/CMakeFiles/fairem.dir/datagen/social.cc.o" "gcc" "src/CMakeFiles/fairem.dir/datagen/social.cc.o.d"
  "/root/repo/src/embed/sentence_encoder.cc" "src/CMakeFiles/fairem.dir/embed/sentence_encoder.cc.o" "gcc" "src/CMakeFiles/fairem.dir/embed/sentence_encoder.cc.o.d"
  "/root/repo/src/embed/subword_embedding.cc" "src/CMakeFiles/fairem.dir/embed/subword_embedding.cc.o" "gcc" "src/CMakeFiles/fairem.dir/embed/subword_embedding.cc.o.d"
  "/root/repo/src/feature/feature_gen.cc" "src/CMakeFiles/fairem.dir/feature/feature_gen.cc.o" "gcc" "src/CMakeFiles/fairem.dir/feature/feature_gen.cc.o.d"
  "/root/repo/src/harness/bench_flags.cc" "src/CMakeFiles/fairem.dir/harness/bench_flags.cc.o" "gcc" "src/CMakeFiles/fairem.dir/harness/bench_flags.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/fairem.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/fairem.dir/harness/experiment.cc.o.d"
  "/root/repo/src/matcher/dedupe_matcher.cc" "src/CMakeFiles/fairem.dir/matcher/dedupe_matcher.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/dedupe_matcher.cc.o.d"
  "/root/repo/src/matcher/deepmatcher.cc" "src/CMakeFiles/fairem.dir/matcher/deepmatcher.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/deepmatcher.cc.o.d"
  "/root/repo/src/matcher/ditto_matcher.cc" "src/CMakeFiles/fairem.dir/matcher/ditto_matcher.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/ditto_matcher.cc.o.d"
  "/root/repo/src/matcher/ensemble_matcher.cc" "src/CMakeFiles/fairem.dir/matcher/ensemble_matcher.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/ensemble_matcher.cc.o.d"
  "/root/repo/src/matcher/gnem_matcher.cc" "src/CMakeFiles/fairem.dir/matcher/gnem_matcher.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/gnem_matcher.cc.o.d"
  "/root/repo/src/matcher/hier_matcher.cc" "src/CMakeFiles/fairem.dir/matcher/hier_matcher.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/hier_matcher.cc.o.d"
  "/root/repo/src/matcher/matcher.cc" "src/CMakeFiles/fairem.dir/matcher/matcher.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/matcher.cc.o.d"
  "/root/repo/src/matcher/mcan_matcher.cc" "src/CMakeFiles/fairem.dir/matcher/mcan_matcher.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/mcan_matcher.cc.o.d"
  "/root/repo/src/matcher/ml_matchers.cc" "src/CMakeFiles/fairem.dir/matcher/ml_matchers.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/ml_matchers.cc.o.d"
  "/root/repo/src/matcher/neural_base.cc" "src/CMakeFiles/fairem.dir/matcher/neural_base.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/neural_base.cc.o.d"
  "/root/repo/src/matcher/rule_matcher.cc" "src/CMakeFiles/fairem.dir/matcher/rule_matcher.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/rule_matcher.cc.o.d"
  "/root/repo/src/matcher/serialize.cc" "src/CMakeFiles/fairem.dir/matcher/serialize.cc.o" "gcc" "src/CMakeFiles/fairem.dir/matcher/serialize.cc.o.d"
  "/root/repo/src/ml/calibration.cc" "src/CMakeFiles/fairem.dir/ml/calibration.cc.o" "gcc" "src/CMakeFiles/fairem.dir/ml/calibration.cc.o.d"
  "/root/repo/src/ml/classifier.cc" "src/CMakeFiles/fairem.dir/ml/classifier.cc.o" "gcc" "src/CMakeFiles/fairem.dir/ml/classifier.cc.o.d"
  "/root/repo/src/ml/cross_validation.cc" "src/CMakeFiles/fairem.dir/ml/cross_validation.cc.o" "gcc" "src/CMakeFiles/fairem.dir/ml/cross_validation.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/fairem.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/fairem.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/linear_models.cc" "src/CMakeFiles/fairem.dir/ml/linear_models.cc.o" "gcc" "src/CMakeFiles/fairem.dir/ml/linear_models.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/fairem.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/fairem.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/CMakeFiles/fairem.dir/ml/naive_bayes.cc.o" "gcc" "src/CMakeFiles/fairem.dir/ml/naive_bayes.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/fairem.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/fairem.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/CMakeFiles/fairem.dir/ml/scaler.cc.o" "gcc" "src/CMakeFiles/fairem.dir/ml/scaler.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/fairem.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/fairem.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/CMakeFiles/fairem.dir/nn/gru.cc.o" "gcc" "src/CMakeFiles/fairem.dir/nn/gru.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/fairem.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/fairem.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/vecops.cc" "src/CMakeFiles/fairem.dir/nn/vecops.cc.o" "gcc" "src/CMakeFiles/fairem.dir/nn/vecops.cc.o.d"
  "/root/repo/src/report/audit_render.cc" "src/CMakeFiles/fairem.dir/report/audit_render.cc.o" "gcc" "src/CMakeFiles/fairem.dir/report/audit_render.cc.o.d"
  "/root/repo/src/report/grid.cc" "src/CMakeFiles/fairem.dir/report/grid.cc.o" "gcc" "src/CMakeFiles/fairem.dir/report/grid.cc.o.d"
  "/root/repo/src/report/heatmap.cc" "src/CMakeFiles/fairem.dir/report/heatmap.cc.o" "gcc" "src/CMakeFiles/fairem.dir/report/heatmap.cc.o.d"
  "/root/repo/src/report/table_printer.cc" "src/CMakeFiles/fairem.dir/report/table_printer.cc.o" "gcc" "src/CMakeFiles/fairem.dir/report/table_printer.cc.o.d"
  "/root/repo/src/text/edit_distance.cc" "src/CMakeFiles/fairem.dir/text/edit_distance.cc.o" "gcc" "src/CMakeFiles/fairem.dir/text/edit_distance.cc.o.d"
  "/root/repo/src/text/hybrid_sim.cc" "src/CMakeFiles/fairem.dir/text/hybrid_sim.cc.o" "gcc" "src/CMakeFiles/fairem.dir/text/hybrid_sim.cc.o.d"
  "/root/repo/src/text/name_sim.cc" "src/CMakeFiles/fairem.dir/text/name_sim.cc.o" "gcc" "src/CMakeFiles/fairem.dir/text/name_sim.cc.o.d"
  "/root/repo/src/text/phonetic.cc" "src/CMakeFiles/fairem.dir/text/phonetic.cc.o" "gcc" "src/CMakeFiles/fairem.dir/text/phonetic.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/CMakeFiles/fairem.dir/text/similarity.cc.o" "gcc" "src/CMakeFiles/fairem.dir/text/similarity.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/CMakeFiles/fairem.dir/text/tfidf.cc.o" "gcc" "src/CMakeFiles/fairem.dir/text/tfidf.cc.o.d"
  "/root/repo/src/text/token_sim.cc" "src/CMakeFiles/fairem.dir/text/token_sim.cc.o" "gcc" "src/CMakeFiles/fairem.dir/text/token_sim.cc.o.d"
  "/root/repo/src/text/tokenize.cc" "src/CMakeFiles/fairem.dir/text/tokenize.cc.o" "gcc" "src/CMakeFiles/fairem.dir/text/tokenize.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/fairem.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/fairem.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/fairem.dir/util/status.cc.o" "gcc" "src/CMakeFiles/fairem.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/fairem.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/fairem.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
