# Empty compiler generated dependencies file for fairem.
# This may be replaced when dependencies are built.
