# Empty compiler generated dependencies file for fairem_cli.
# This may be replaced when dependencies are built.
