file(REMOVE_RECURSE
  "CMakeFiles/fairem_cli.dir/fairem_cli.cc.o"
  "CMakeFiles/fairem_cli.dir/fairem_cli.cc.o.d"
  "fairem"
  "fairem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
