# Empty dependencies file for bench_fig13_17_cameras.
# This may be replaced when dependencies are built.
