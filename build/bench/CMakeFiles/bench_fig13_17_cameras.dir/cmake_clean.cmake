file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_17_cameras.dir/bench_fig13_17_cameras.cc.o"
  "CMakeFiles/bench_fig13_17_cameras.dir/bench_fig13_17_cameras.cc.o.d"
  "bench_fig13_17_cameras"
  "bench_fig13_17_cameras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_17_cameras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
