file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_12_cricket.dir/bench_fig11_12_cricket.cc.o"
  "CMakeFiles/bench_fig11_12_cricket.dir/bench_fig11_12_cricket.cc.o.d"
  "bench_fig11_12_cricket"
  "bench_fig11_12_cricket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_12_cricket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
