# Empty compiler generated dependencies file for bench_micro_similarity.
# This may be replaced when dependencies are built.
