file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_nofly.dir/bench_table5_nofly.cc.o"
  "CMakeFiles/bench_table5_nofly.dir/bench_table5_nofly.cc.o.d"
  "bench_table5_nofly"
  "bench_table5_nofly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_nofly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
