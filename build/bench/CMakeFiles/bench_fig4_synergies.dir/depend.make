# Empty dependencies file for bench_fig4_synergies.
# This may be replaced when dependencies are built.
