file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_synergies.dir/bench_fig4_synergies.cc.o"
  "CMakeFiles/bench_fig4_synergies.dir/bench_fig4_synergies.cc.o.d"
  "bench_fig4_synergies"
  "bench_fig4_synergies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_synergies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
