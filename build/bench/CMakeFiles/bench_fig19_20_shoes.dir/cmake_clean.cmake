file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_20_shoes.dir/bench_fig19_20_shoes.cc.o"
  "CMakeFiles/bench_fig19_20_shoes.dir/bench_fig19_20_shoes.cc.o.d"
  "bench_fig19_20_shoes"
  "bench_fig19_20_shoes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_20_shoes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
