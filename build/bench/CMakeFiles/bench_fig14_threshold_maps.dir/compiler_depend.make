# Empty compiler generated dependencies file for bench_fig14_threshold_maps.
# This may be replaced when dependencies are built.
