file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_threshold_maps.dir/bench_fig14_threshold_maps.cc.o"
  "CMakeFiles/bench_fig14_threshold_maps.dir/bench_fig14_threshold_maps.cc.o.d"
  "bench_fig14_threshold_maps"
  "bench_fig14_threshold_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_threshold_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
