file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hard_negatives.dir/bench_ablation_hard_negatives.cc.o"
  "CMakeFiles/bench_ablation_hard_negatives.dir/bench_ablation_hard_negatives.cc.o.d"
  "bench_ablation_hard_negatives"
  "bench_ablation_hard_negatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hard_negatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
