# Empty compiler generated dependencies file for bench_ablation_hard_negatives.
# This may be replaced when dependencies are built.
