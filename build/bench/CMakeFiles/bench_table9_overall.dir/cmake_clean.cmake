file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_overall.dir/bench_table9_overall.cc.o"
  "CMakeFiles/bench_table9_overall.dir/bench_table9_overall.cc.o.d"
  "bench_table9_overall"
  "bench_table9_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
