file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_faculty.dir/bench_table6_faculty.cc.o"
  "CMakeFiles/bench_table6_faculty.dir/bench_table6_faculty.cc.o.d"
  "bench_table6_faculty"
  "bench_table6_faculty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_faculty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
