# Empty compiler generated dependencies file for bench_table6_faculty.
# This may be replaced when dependencies are built.
