# Empty dependencies file for bench_fig6_7_dblp_acm.
# This may be replaced when dependencies are built.
