# Empty compiler generated dependencies file for bench_fig2_3_social_grids.
# This may be replaced when dependencies are built.
