# Empty compiler generated dependencies file for bench_fig8_18_itunes.
# This may be replaced when dependencies are built.
