file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_18_itunes.dir/bench_fig8_18_itunes.cc.o"
  "CMakeFiles/bench_fig8_18_itunes.dir/bench_fig8_18_itunes.cc.o.d"
  "bench_fig8_18_itunes"
  "bench_fig8_18_itunes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_18_itunes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
