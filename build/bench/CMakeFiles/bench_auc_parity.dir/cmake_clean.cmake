file(REMOVE_RECURSE
  "CMakeFiles/bench_auc_parity.dir/bench_auc_parity.cc.o"
  "CMakeFiles/bench_auc_parity.dir/bench_auc_parity.cc.o.d"
  "bench_auc_parity"
  "bench_auc_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_auc_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
