# Empty dependencies file for bench_auc_parity.
# This may be replaced when dependencies are built.
