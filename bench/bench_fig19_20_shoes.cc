// Reproduces Figures 19 and 20: Shoes (textual) single and pairwise grids
// over the extracted company groups.

#include "bench/grid_bench_common.h"
#include "src/harness/bench_flags.h"

int main(int argc, char** argv) {
  return fairem::RunGridBench(fairem::DatasetKind::kShoes,
                              "Figure 19: Shoes single fairness",
                              "Figure 20: Shoes pairwise fairness",
                              fairem::ParseBenchFlags(argc, argv));
}
