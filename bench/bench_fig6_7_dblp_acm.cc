// Reproduces Figures 6 and 7: DBLP-ACM single and pairwise unfairness
// grids over the venue groups. Expected shape: PPVP/TPRP cells for the
// editorial venues (SIGMOD Rec., VLDBJ) from the identical-title traps,
// with the same venues flagged pairwise (§5.3.3).

#include "bench/grid_bench_common.h"
#include "src/harness/bench_flags.h"

int main(int argc, char** argv) {
  return fairem::RunGridBench(fairem::DatasetKind::kDblpAcm,
                              "Figure 6: DBLP-ACM single fairness",
                              "Figure 7: DBLP-ACM pairwise fairness",
                              fairem::ParseBenchFlags(argc, argv));
}
