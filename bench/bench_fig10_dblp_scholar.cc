// Reproduces Figure 10: DBLP-Scholar (dirty) single-fairness grid over the
// entry-type groups.

#include "bench/grid_bench_common.h"
#include "src/harness/bench_flags.h"

int main(int argc, char** argv) {
  return fairem::RunGridBench(fairem::DatasetKind::kDblpScholar,
                              "Figure 10: DBLP-Scholar single fairness",
                              nullptr,
                              fairem::ParseBenchFlags(argc, argv));
}
