// Bulk-throughput micro-bench of the pairwise similarity substrate: the
// per-pair kernel costs that dominate feature generation and rule
// evaluation, measured over deterministic synthetic pairs at feature-build
// scale rather than single-pair google-benchmark loops. The scalar-vs-SIMD
// smoke drill runs this binary twice (FAIREM_SIMD=off, then on) and gates
// the kernel speedups with `fairem benchdiff` (DESIGN.md §17); the
// BENCHVAL lines printed per drill are dispatch-invariant checksums the
// drill compares byte for byte.
//
// Flags: the shared bench flags (--scale, --seed, --intra_jobs,
// --metrics_out, ...) plus
//   --pairs N   pair count per drill before --scale (default 10000)
//   --reps N    timed repetitions per drill (default 3)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "src/data/schema.h"
#include "src/data/table.h"
#include "src/harness/bench_flags.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/text/edit_distance.h"
#include "src/text/prepared.h"
#include "src/text/simd.h"
#include "src/text/similarity.h"
#include "src/text/tfidf.h"
#include "src/text/tokenize.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace fairem {
namespace {

/// Deterministic word pool: lowercase pseudo-words of 3-9 letters.
std::vector<std::string> BuildWordPool(Rng* rng, size_t count) {
  std::vector<std::string> pool;
  pool.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t len = static_cast<size_t>(rng->NextInt(3, 9));
    std::string w;
    w.reserve(len);
    for (size_t c = 0; c < len; ++c) {
      w.push_back(static_cast<char>('a' + rng->NextBounded(26)));
    }
    pool.push_back(std::move(w));
  }
  return pool;
}

/// 1-3 random character edits (substitute/insert/delete), the typo model
/// the paper's dirty datasets approximate.
std::string Mutate(std::string s, Rng* rng) {
  const int edits = static_cast<int>(rng->NextInt(1, 3));
  for (int e = 0; e < edits && !s.empty(); ++e) {
    const size_t pos = rng->NextBounded(s.size());
    switch (rng->NextBounded(3)) {
      case 0:
        s[pos] = static_cast<char>('a' + rng->NextBounded(26));
        break;
      case 1:
        s.insert(s.begin() + static_cast<ptrdiff_t>(pos),
                 static_cast<char>('a' + rng->NextBounded(26)));
        break;
      default:
        s.erase(s.begin() + static_cast<ptrdiff_t>(pos));
        break;
    }
  }
  return s;
}

std::string JoinWords(const std::vector<std::string>& pool, Rng* rng,
                      size_t words) {
  std::string out;
  for (size_t w = 0; w < words; ++w) {
    if (!out.empty()) out.push_back(' ');
    out += pool[rng->NextBounded(pool.size())];
  }
  return out;
}

struct Workload {
  std::vector<std::string> short_a, short_b;  // name-like, <= ~25 chars
  std::vector<std::string> long_a, long_b;    // title-like, ~100-180 chars
};

Workload BuildWorkload(size_t pairs, uint64_t seed) {
  Rng rng(0x51D0BE7Cu ^ seed);
  Workload w;
  std::vector<std::string> pool = BuildWordPool(&rng, 600);
  w.short_a.reserve(pairs);
  w.short_b.reserve(pairs);
  w.long_a.reserve(pairs);
  w.long_b.reserve(pairs);
  for (size_t i = 0; i < pairs; ++i) {
    std::string sa = JoinWords(pool, &rng, 2);
    // Half the pairs are near-duplicates (the interesting regime for edit
    // distance), half are unrelated.
    std::string sb = rng.NextBool(0.5) ? Mutate(sa, &rng)
                                       : JoinWords(pool, &rng, 2);
    const size_t title_words = 14 + rng.NextBounded(8);
    std::string la = JoinWords(pool, &rng, title_words);
    std::string lb;
    if (rng.NextBool(0.5)) {
      lb = Mutate(la, &rng);
    } else {
      lb = JoinWords(pool, &rng, title_words);
    }
    w.short_a.push_back(std::move(sa));
    w.short_b.push_back(std::move(sb));
    w.long_a.push_back(std::move(la));
    w.long_b.push_back(std::move(lb));
  }
  return w;
}

/// Times `fn(i) -> double` over every pair on the thread pool (disjoint
/// output slots, so the checksum is byte-identical for any --intra_jobs),
/// records fairem.bench.micro.<name>_{seconds,pairs_per_sec}, and prints
/// the dispatch-invariant checksum line.
template <typename Fn>
void RunDrill(const std::string& name, size_t pairs, int reps, Fn&& fn) {
  Histogram* seconds_hist = MetricsRegistry::Global().GetHistogram(
      "fairem.bench.micro." + name + "_seconds");
  Gauge* rate_gauge = MetricsRegistry::Global().GetGauge(
      "fairem.bench.micro." + name + "_pairs_per_sec");
  static Counter* pairs_counter =
      MetricsRegistry::Global().GetCounter("fairem.bench.micro.pairs_scored");
  std::vector<double> out(pairs);
  double best_rate = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    GlobalThreadPool().ParallelFor(
        pairs, /*grain=*/0, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) out[i] = fn(i);
        });
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    seconds_hist->Observe(dt);
    if (dt > 0.0) best_rate = std::max(best_rate, pairs / dt);
    pairs_counter->Increment(pairs);
  }
  rate_gauge->Set(best_rate);
  double checksum = 0.0;
  for (double v : out) checksum += v;
  // %.17g round-trips doubles exactly: any kernel divergence between
  // dispatch modes shows up as a stdout diff in the smoke drill.
  std::printf("BENCHVAL %s %.17g\n", name.c_str(), checksum);
  FAIREM_LOG(INFO) << "drill done" << LogKv("name", name)
                   << LogKv("pairs_per_sec", best_rate);
}

int Run(int argc, char** argv) {
  size_t pairs = 10000;
  int reps = 3;
  // Peel the bench-local flags before the shared parser (it rejects
  // unknown flags), the same way bench_serve peels --route.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (i > 0 && arg == "--pairs" && i + 1 < argc) {
      pairs = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      continue;
    }
    if (i > 0 && arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
      continue;
    }
    args.push_back(argv[i]);
  }
  BenchFlags flags =
      ParseBenchFlags(static_cast<int>(args.size()), args.data());
  pairs = std::max<size_t>(1, static_cast<size_t>(pairs * flags.scale));
  reps = std::max(1, reps);
  MetricsRegistry::Global()
      .GetGauge("fairem.bench.micro.intra_jobs")
      ->Set(static_cast<double>(flags.intra_jobs));

  // Progress/identity lines go to stderr: stdout is exactly the BENCHVAL
  // lines, so the smoke drill can diff the whole stream across dispatch
  // modes.
  std::fprintf(stderr, "bench_micro_similarity pairs=%zu reps=%d simd=%s\n",
               pairs, reps, SimdLevelName(ActiveSimdLevel()));
  const Workload w = BuildWorkload(pairs, flags.seed_offset);

  // Character kernels over the raw strings.
  RunDrill("lev_short", pairs, reps, [&](size_t i) {
    return LevenshteinSimilarity(w.short_a[i], w.short_b[i]);
  });
  RunDrill("lev_long", pairs, reps, [&](size_t i) {
    return LevenshteinSimilarity(w.long_a[i], w.long_b[i]);
  });
  RunDrill("damerau", pairs, reps, [&](size_t i) {
    return static_cast<double>(
        DamerauLevenshteinDistance(w.short_a[i], w.short_b[i]));
  });

  // Token-set kernels over the prepared cache, the way BuildFeatureTable
  // consumes them: one shared interner pair per column pair, word sets on
  // the long column, 3-gram sets on the short one.
  Result<Schema> schema = Schema::Make({"title", "name"});
  FAIREM_CHECK(schema.ok(), "bench schema");
  Table ta("bench_a", schema.value());
  Table tb("bench_b", schema.value());
  for (size_t i = 0; i < pairs; ++i) {
    FAIREM_CHECK(ta.AppendValues(static_cast<int64_t>(i),
                                 {w.long_a[i], w.short_a[i]})
                     .ok(),
                 "append a");
    FAIREM_CHECK(tb.AppendValues(static_cast<int64_t>(i),
                                 {w.long_b[i], w.short_b[i]})
                     .ok(),
                 "append b");
  }
  std::vector<size_t> rows(pairs);
  for (size_t i = 0; i < pairs; ++i) rows[i] = i;
  PreparedNeeds word_needs;
  word_needs.word_set = true;
  PreparedNeeds qgram_needs;
  qgram_needs.qgram_set = true;
  ColumnInterners title_interners;
  ColumnInterners name_interners;
  PreparedColumn title_a, title_b, name_a, name_b;
  const auto prep0 = std::chrono::steady_clock::now();
  title_a.BuildRows(ta, 0, rows, word_needs, &title_interners);
  title_b.BuildRows(tb, 0, rows, word_needs, &title_interners);
  name_a.BuildRows(ta, 1, rows, qgram_needs, &name_interners);
  name_b.BuildRows(tb, 1, rows, qgram_needs, &name_interners);
  MetricsRegistry::Global()
      .GetGauge("fairem.bench.micro.prepare_seconds")
      ->Set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          prep0)
                .count());

  constexpr SimilarityMeasure kWordMeasures[] = {
      SimilarityMeasure::kJaccardWord, SimilarityMeasure::kDiceWord,
      SimilarityMeasure::kOverlapWord, SimilarityMeasure::kCosineWord};
  RunDrill("token_word", pairs, reps, [&](size_t i) {
    double total = 0.0;
    for (SimilarityMeasure m : kWordMeasures) {
      total += ComputeSimilarity(m, title_a.Get(i), title_b.Get(i));
    }
    return total;
  });
  constexpr SimilarityMeasure kQgramMeasures[] = {
      SimilarityMeasure::kJaccardQgram3, SimilarityMeasure::kDiceQgram3};
  RunDrill("token_qgram", pairs, reps, [&](size_t i) {
    double total = 0.0;
    for (SimilarityMeasure m : kQgramMeasures) {
      total += ComputeSimilarity(m, name_a.Get(i), name_b.Get(i));
    }
    return total;
  });

  // TF-IDF cosine via the sorted sparse layout (same path in both dispatch
  // modes; reported for trend, not gated).
  TfIdfVectorizer vectorizer;
  {
    std::vector<std::vector<std::string>> corpus;
    corpus.reserve(pairs);
    for (size_t i = 0; i < pairs; ++i) {
      corpus.push_back(AlnumTokenize(w.long_a[i]));
    }
    vectorizer.Fit(corpus);
  }
  std::vector<std::vector<std::string>> tokens_a(pairs), tokens_b(pairs);
  for (size_t i = 0; i < pairs; ++i) {
    tokens_a[i] = AlnumTokenize(w.long_a[i]);
    tokens_b[i] = AlnumTokenize(w.long_b[i]);
  }
  RunDrill("tfidf", pairs, reps, [&](size_t i) {
    return vectorizer.Similarity(tokens_a[i], tokens_b[i]);
  });

  // The full measure sweep on short raw strings: the per-pair cost profile
  // of GenerateFeatures' kitchen sink.
  RunDrill("all_measures", pairs, reps, [&](size_t i) {
    double total = 0.0;
    for (SimilarityMeasure m : kAllSimilarityMeasures) {
      total += ComputeSimilarity(m, w.short_a[i], w.short_b[i]);
    }
    return total;
  });

  // Fold this thread's batched kernel tallies in, then leave the standing
  // BENCH snapshot (pairs/sec gauges, intra_jobs, kernel-call counters)
  // for future bench_scale-style gates, independent of --metrics_out.
  FlushSimdTelemetry();
  if (Status st =
          MetricsRegistry::Global().WriteJsonFile("BENCH_micro_similarity.json");
      !st.ok()) {
    FAIREM_LOG(WARN) << "could not write bench metrics snapshot"
                     << LogKv("status", st.ToString());
  }
  std::fprintf(stderr, "bench_micro_similarity OK level=%s\n",
               SimdLevelName(ActiveSimdLevel()));
  return 0;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) { return fairem::Run(argc, argv); }
