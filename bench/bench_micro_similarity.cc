// Micro-benchmarks (google-benchmark) of the similarity substrate: the
// per-pair costs that dominate feature generation and rule evaluation.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/embed/subword_embedding.h"
#include "src/text/edit_distance.h"
#include "src/text/similarity.h"
#include "src/text/tfidf.h"
#include "src/text/tokenize.h"

namespace fairem {
namespace {

const char kShortA[] = "Qingming Huang";
const char kShortB[] = "Qing-Hu Huang";
const char kLongA[] =
    "efficient and cost-effective techniques for browsing and indexing "
    "large video databases";
const char kLongB[] =
    "effective timestamping in databases with temporal semantics";

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(kLongA, kLongB));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaroWinklerSimilarity(kShortA, kShortB));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_JaccardWordLong(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSimilarity(
        SimilarityMeasure::kJaccardWord, kLongA, kLongB));
  }
}
BENCHMARK(BM_JaccardWordLong);

void BM_QGramTokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(QGrams(kLongA, 3));
  }
}
BENCHMARK(BM_QGramTokenize);

void BM_AllMeasuresShortPair(benchmark::State& state) {
  for (auto _ : state) {
    double total = 0.0;
    for (SimilarityMeasure m : kAllSimilarityMeasures) {
      total += ComputeSimilarity(m, kShortA, kShortB);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AllMeasuresShortPair);

void BM_SubwordEmbedToken(benchmark::State& state) {
  SubwordEmbedding embedding;
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedding.Embed("huang"));
  }
}
BENCHMARK(BM_SubwordEmbedToken);

void BM_SubwordPairSimilarity(benchmark::State& state) {
  SubwordEmbedding embedding;
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedding.TokenSimilarity("efficient",
                                                       "effective"));
  }
}
BENCHMARK(BM_SubwordPairSimilarity);

void BM_TfIdfSimilarity(benchmark::State& state) {
  TfIdfVectorizer vectorizer;
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 200; ++i) {
    corpus.push_back(AlnumTokenize(i % 2 == 0 ? kLongA : kLongB));
  }
  vectorizer.Fit(corpus);
  auto a = AlnumTokenize(kLongA);
  auto b = AlnumTokenize(kLongB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vectorizer.Similarity(a, b));
  }
}
BENCHMARK(BM_TfIdfSimilarity);

}  // namespace
}  // namespace fairem

BENCHMARK_MAIN();
