// Ablation: the NoFlyCompas unfairness mechanism. The paper attributes the
// neural FDR disparity to concentrated names producing similar non-match
// candidates (§5.2.1). Removing the surname-blocked hard negatives from the
// candidate set should collapse that disparity — this bench runs the
// neural matchers with and without them and prints the FDR gap.

#include <iostream>

#include "src/datagen/social.h"
#include "src/harness/experiment.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

struct GapRow {
  std::string matcher;
  double fdr_afr = 0.0;
  double fdr_cauc = 0.0;
  bool ok = false;
};

Result<GapRow> Gap(const EMDataset& ds, MatcherKind kind) {
  GapRow row;
  row.matcher = MatcherKindName(kind);
  FAIREM_ASSIGN_OR_RETURN(MatcherRun run, RunMatcher(ds, kind));
  FAIREM_ASSIGN_OR_RETURN(std::vector<GroupRates> breakdown,
                          GroupBreakdown(ds, run));
  for (const auto& g : breakdown) {
    Result<double> fdr = FalseDiscoveryRate(g.counts);
    if (!fdr.ok()) continue;
    if (g.group == "African-American") {
      row.fdr_afr = *fdr;
      row.ok = true;
    } else if (g.group == "Caucasian") {
      row.fdr_cauc = *fdr;
    }
  }
  return row;
}

int Run() {
  NoFlyCompasOptions with;
  NoFlyCompasOptions without = with;
  without.include_blocked_negatives = false;
  Result<EMDataset> ds_with = GenerateNoFlyCompas(with);
  Result<EMDataset> ds_without = GenerateNoFlyCompas(without);
  if (!ds_with.ok() || !ds_without.ok()) {
    std::cerr << "generation failed\n";
    return 1;
  }
  std::cout << "== Ablation: surname-blocked hard negatives on NoFlyCompas "
               "==\ngap = FDR(African-American) - FDR(Caucasian); the "
               "mechanism predicts the gap collapses without the blocked "
               "candidates\n\n";
  TablePrinter table({"Matcher", "FDR gap (with)", "FDR gap (without)"});
  for (MatcherKind kind : NeuralMatcherKinds()) {
    Result<GapRow> w = Gap(*ds_with, kind);
    Result<GapRow> wo = Gap(*ds_without, kind);
    if (!w.ok() || !wo.ok()) {
      std::cerr << MatcherKindName(kind) << " failed\n";
      continue;
    }
    table.AddRow({w->matcher,
                  w->ok ? FormatDouble(w->fdr_afr - w->fdr_cauc, 3) : "-",
                  wo->ok ? FormatDouble(wo->fdr_afr - wo->fdr_cauc, 3) : "-"});
    std::cerr << "done " << w->matcher << "\n";
  }
  std::cout << table.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace fairem

int main() { return fairem::Run(); }
