// Reproduces Table 5: NoFlyCompas — TPR and FDR per race group with
// subtraction and division disparities for every matcher. The paper's
// findings: non-neural matchers are (near-)perfect; neural matchers show
// FDR disparity against the over-represented African-American group.

#include <iostream>

#include "src/core/disparity.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/bench_flags.h"
#include "src/harness/experiment.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

int Run(const BenchFlags& flags) {
  Result<EMDataset> dataset = GenerateDataset(DatasetKind::kNoFlyCompas, flags.scale, flags.seed_offset);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  std::cout << "== Table 5: NoFlyCompas — TPR / FDR per race ==\n"
            << "groups: Afr = African-American, Cauc = Caucasian; "
            << "disparities sub/div per Eq. 1 and Eq. 3\n\n";
  TablePrinter table({"Matcher", "TPR Afr", "TPR Cauc", "TPR sub", "TPR div",
                      "FDR Afr", "FDR Cauc", "FDR sub", "FDR div", "Acc",
                      "F1"});
  for (MatcherKind kind : AllMatcherKinds()) {
    Result<MatcherRun> run = RunMatcher(*dataset, kind);
    if (!run.ok()) {
      std::cerr << MatcherKindName(kind) << ": " << run.status() << "\n";
      continue;
    }
    if (!run->supported) {
      table.AddRow({run->matcher_name, "-", "-", "-", "-", "-", "-", "-",
                    "-", "-", "-"});
      continue;
    }
    Result<std::vector<GroupRates>> breakdown = GroupBreakdown(*dataset, *run);
    if (!breakdown.ok()) {
      std::cerr << breakdown.status() << "\n";
      return 1;
    }
    const ConfusionCounts* afr = nullptr;
    const ConfusionCounts* cauc = nullptr;
    for (const auto& g : *breakdown) {
      if (g.group == "African-American") afr = &g.counts;
      if (g.group == "Caucasian") cauc = &g.counts;
    }
    if (afr == nullptr || cauc == nullptr) {
      std::cerr << "missing race group in breakdown\n";
      return 1;
    }
    auto fmt = [](const Result<double>& v) {
      return v.ok() ? FormatDouble(*v, 2) : std::string("-");
    };
    // Between-group disparities (the paper's Table 5 convention; negative =
    // the African-American group does better).
    double tpr_afr = TruePositiveRate(*afr).value_or(0.0);
    double tpr_cauc = TruePositiveRate(*cauc).value_or(0.0);
    double fdr_afr = FalseDiscoveryRate(*afr).value_or(0.0);
    double fdr_cauc = FalseDiscoveryRate(*cauc).value_or(0.0);
    auto disp = [](FairnessMeasure m, double suspect, double other,
                   DisparityMode mode) {
      Result<double> d = BetweenGroupDisparity(m, suspect, other, mode);
      return d.ok() ? FormatDouble(*d, 2) : std::string("-");
    };
    table.AddRow(
        {run->matcher_name, fmt(TruePositiveRate(*afr)),
         fmt(TruePositiveRate(*cauc)),
         disp(FairnessMeasure::kTruePositiveRateParity, tpr_afr, tpr_cauc,
              DisparityMode::kSubtraction),
         disp(FairnessMeasure::kTruePositiveRateParity, tpr_afr, tpr_cauc,
              DisparityMode::kDivision),
         fmt(FalseDiscoveryRate(*afr)), fmt(FalseDiscoveryRate(*cauc)),
         disp(FairnessMeasure::kFalseDiscoveryRateParity, fdr_afr, fdr_cauc,
              DisparityMode::kSubtraction),
         disp(FairnessMeasure::kFalseDiscoveryRateParity, fdr_afr, fdr_cauc,
              DisparityMode::kDivision),
         FormatDouble(run->accuracy, 2), FormatDouble(run->f1, 2)});
  }
  std::cout << table.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) {
  return fairem::Run(fairem::ParseBenchFlags(argc, argv));
}
