// Reproduces Table 9: overall accuracy and F-1 of all 13 matchers across
// all 8 datasets. Expected shape (§5.3.1 / Appendix D.1): non-neural
// matchers win on structured data, neural matchers win on textual and
// dirty data, non-neural F1 collapses on Shoes/Cameras, Dedupe does not
// scale to the two social and two textual datasets ("-").

#include <iostream>

#include "src/datagen/benchmark_suite.h"
#include "src/harness/bench_flags.h"
#include "src/harness/experiment.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

int Run(const BenchFlags& flags) {
  std::vector<DatasetKind> kinds = AllDatasetKinds();
  std::vector<EMDataset> datasets;
  std::vector<std::string> headers = {"Matcher"};
  for (DatasetKind kind : kinds) {
    Result<EMDataset> ds = GenerateDataset(kind, flags.scale, flags.seed_offset);
    if (!ds.ok()) {
      std::cerr << DatasetKindName(kind) << ": " << ds.status() << "\n";
      return 1;
    }
    headers.push_back(std::string(DatasetKindName(kind)) + " Acc");
    headers.push_back("F1");
    datasets.push_back(std::move(ds).value());
  }
  std::cout << "== Table 9: overall performance (Acc / F1), all matchers x "
               "all datasets ==\n\n";
  TablePrinter table(std::move(headers));
  for (MatcherKind kind : AllMatcherKinds()) {
    std::vector<std::string> row = {MatcherKindName(kind)};
    for (const auto& dataset : datasets) {
      Result<MatcherRun> run = RunMatcher(dataset, kind);
      if (!run.ok()) {
        std::cerr << MatcherKindName(kind) << " on " << dataset.name << ": "
                  << run.status() << "\n";
        row.push_back("ERR");
        row.push_back("ERR");
        continue;
      }
      if (!run->supported) {
        row.push_back("-");
        row.push_back("-");
        continue;
      }
      row.push_back(FormatDouble(run->accuracy, 2));
      row.push_back(FormatDouble(run->f1, 2));
    }
    table.AddRow(std::move(row));
    std::cerr << "done: " << MatcherKindName(kind) << "\n";
  }
  std::cout << table.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) {
  return fairem::Run(fairem::ParseBenchFlags(argc, argv));
}
