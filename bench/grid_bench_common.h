#ifndef FAIREM_BENCH_GRID_BENCH_COMMON_H_
#define FAIREM_BENCH_GRID_BENCH_COMMON_H_

// Shared driver for the unfairness-grid figure benches (Figures 6-13 and
// 17-20): generates one benchmark dataset, trains all matchers, and prints
// the single- (and optionally pairwise-) fairness grids.

#include <iostream>

#include "src/datagen/benchmark_suite.h"
#include "src/harness/bench_flags.h"
#include "src/harness/experiment.h"

namespace fairem {

inline int RunGridBench(DatasetKind kind, const char* single_title,
                        const char* pairwise_title,
                        const BenchFlags& flags = {}) {
  Result<EMDataset> dataset =
      GenerateDataset(kind, flags.scale, flags.seed_offset);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  // Audit each group against everyone else (AuditReference::kComplement):
  // with the overall matcher as reference, a group's own false positives
  // drag the reference down and mask the disparity.
  AuditOptions options;
  options.reference = AuditReference::kComplement;
  Result<std::string> single = UnfairnessGridReport(*dataset, false, options);
  if (!single.ok()) {
    std::cerr << single.status() << "\n";
    return 1;
  }
  std::cout << "== " << single_title << " ==\n"
            << (single->empty() ? "(no unfair cells)\n" : *single) << "\n";
  if (pairwise_title != nullptr) {
    Result<std::string> pairwise =
        UnfairnessGridReport(*dataset, true, options);
    if (!pairwise.ok()) {
      std::cerr << pairwise.status() << "\n";
      return 1;
    }
    std::cout << "== " << pairwise_title << " ==\n"
              << (pairwise->empty() ? "(no unfair cells)\n" : *pairwise)
              << "\n";
  }
  std::cout << "markers: BR BooleanRule, DD Dedupe, DT/SV/RF/LO/LI/NB "
               "Magellan classifiers, DM DeepMatcher, DI Ditto, GN GNEM, "
               "HM HierMatcher, MC MCAN\n";
  return 0;
}

}  // namespace fairem

#endif  // FAIREM_BENCH_GRID_BENCH_COMMON_H_
