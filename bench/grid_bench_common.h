#ifndef FAIREM_BENCH_GRID_BENCH_COMMON_H_
#define FAIREM_BENCH_GRID_BENCH_COMMON_H_

// Shared driver for the unfairness-grid figure benches (Figures 6-13 and
// 17-20): generates one benchmark dataset, trains all matchers, and prints
// the single- (and optionally pairwise-) fairness grids. Every run ends by
// writing a BENCH_<name>.json metrics snapshot next to the working
// directory so the perf/counter trajectory of successive commits
// accumulates; --trace_out/--metrics_out (parsed by ParseBenchFlags) add
// Chrome-trace and explicitly-placed metrics files on top. With
// --checkpoint_dir an interrupted run resumes from its completed cells, and
// --failpoints/--retry_attempts drive the fault-injection and retry layer
// (src/robust/). --jobs/--cell_timeout_s/--cell_max_rss_mb run the sweep
// under the process-isolated supervisor (src/robust/supervisor.h); Ctrl-C
// then shuts down cooperatively (workers reaped, snapshots flushed) and the
// bench exits with the conventional 128+signal code. Workers ship their
// metrics deltas and spans back over the pipe (DESIGN.md §11), so the
// BENCH_*.json counters and the Chrome trace are equivalent between --jobs 1
// and --jobs N; --progress adds a live cells-done/ETA line on stderr.
// --intra_jobs threads the hot loops inside each cell (byte-identical
// output; total concurrency jobs x intra_jobs). --profile_out samples this
// process and every worker (DESIGN.md §13) and writes the merged folded
// stacks for flamegraph.pl / `fairem proftop`. The
// snapshot write is atomic and durable (temp + fsync + rename), and
// `fairem benchdiff A.json B.json` diffs two snapshots.

#include <iostream>

#include "src/datagen/benchmark_suite.h"
#include "src/harness/bench_flags.h"
#include "src/harness/experiment.h"
#include "src/obs/obs.h"
#include "src/obs/profiler.h"
#include "src/robust/supervisor.h"

namespace fairem {

inline int RunGridBench(DatasetKind kind, const char* single_title,
                        const char* pairwise_title,
                        const BenchFlags& flags = {}) {
  int exit_code = 0;
  {
    Span bench_span("fairem.bench." + flags.bench_name);
    Result<EMDataset> dataset =
        GenerateDataset(kind, flags.scale, flags.seed_offset);
    if (!dataset.ok()) {
      std::cerr << dataset.status() << "\n";
      return 1;
    }
    // Audit each group against everyone else (AuditReference::kComplement):
    // with the overall matcher as reference, a group's own false positives
    // drag the reference down and mask the disparity.
    GridRunOptions options;
    options.audit.reference = AuditReference::kComplement;
    options.retry.max_attempts = flags.retry_attempts;
    options.checkpoint_dir = flags.checkpoint_dir;
    options.jobs = flags.jobs;
    options.intra_jobs = flags.intra_jobs;
    options.cell_timeout_s = flags.cell_timeout_s;
    options.cell_max_rss_mb = flags.cell_max_rss_mb;
    options.progress = flags.progress;
    // A Cancelled report means SIGINT/SIGTERM arrived: workers are already
    // reaped, so fall through to the snapshot write and exit 128+signal.
    auto grid_exit = [&](const Status& st) {
      std::cerr << st << "\n";
      return st.IsCancelled() ? InterruptExitCode(ShutdownGuard::signal_number())
                              : 1;
    };
    Result<std::string> single =
        UnfairnessGridReport(*dataset, false, options);
    if (!single.ok()) {
      exit_code = grid_exit(single.status());
    } else {
      std::cout << "== " << single_title << " ==\n"
                << (single->empty() ? "(no unfair cells)\n" : *single) << "\n";
    }
    if (exit_code == 0 && pairwise_title != nullptr) {
      Result<std::string> pairwise =
          UnfairnessGridReport(*dataset, true, options);
      if (!pairwise.ok()) {
        exit_code = grid_exit(pairwise.status());
      } else {
        std::cout << "== " << pairwise_title << " ==\n"
                  << (pairwise->empty() ? "(no unfair cells)\n" : *pairwise)
                  << "\n";
      }
    }
    if (exit_code == 0) {
      std::cout << "markers: BR BooleanRule, DD Dedupe, DT/SV/RF/LO/LI/NB "
                   "Magellan classifiers, DM DeepMatcher, DI Ditto, GN GNEM, "
                   "HM HierMatcher, MC MCAN\n";
    }
  }
  // Fold profiler sample counters (no-ops while the profiler is off) and
  // the fairem.proc.* rusage gauges into the BENCH snapshot below, so every
  // bench records its peak RSS and CPU split alongside its counters.
  Profiler::Global().ExportMetrics();
  Profiler::Global().ExportStageCpuGauges();
  EmitProcessResourceGauges();
  std::string snapshot_path = "BENCH_" + flags.bench_name + ".json";
  if (Status st = MetricsRegistry::Global().WriteJsonFile(snapshot_path);
      !st.ok()) {
    FAIREM_LOG(WARN) << "could not write bench metrics snapshot"
                     << LogKv("path", snapshot_path)
                     << LogKv("status", st.ToString());
  } else {
    FAIREM_LOG(INFO) << "wrote bench metrics snapshot"
                     << LogKv("path", snapshot_path);
  }
  return exit_code;
}

}  // namespace fairem

#endif  // FAIREM_BENCH_GRID_BENCH_COMMON_H_
