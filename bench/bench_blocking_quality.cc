// Blocking substrate evaluation: reduction ratio and pair completeness of
// every blocker on three benchmark datasets (the §1/[49,50] trade-off:
// cheaper candidate sets lose true matches). Not a figure of the paper —
// it validates the blocking layer the end-to-end systems embed.

#include <iostream>
#include <memory>

#include "src/block/blockers.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/bench_flags.h"
#include "src/obs/obs.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

int Run(const BenchFlags& flags) {
  Span bench_span("fairem.bench." + flags.bench_name);
  struct Spec {
    DatasetKind kind;
    const char* key_attr;
  };
  const std::vector<Spec> specs = {
      {DatasetKind::kNoFlyCompas, "lastName"},
      {DatasetKind::kDblpAcm, "title"},
      {DatasetKind::kCameras, "title"},
  };
  std::cout << "== Blocking quality: reduction ratio (RR) and pair "
               "completeness (PC) ==\n\n";
  TablePrinter table(
      {"dataset", "blocker", "candidates", "RR", "PC"});
  for (const Spec& spec : specs) {
    Result<EMDataset> ds =
        GenerateDataset(spec.kind, 0.6 * flags.scale, flags.seed_offset);
    if (!ds.ok()) {
      std::cerr << ds.status() << "\n";
      return 1;
    }
    std::vector<std::unique_ptr<Blocker>> blockers;
    blockers.push_back(std::make_unique<CartesianBlocker>());
    blockers.push_back(
        std::make_unique<AttrEquivalenceBlocker>(spec.key_attr));
    blockers.push_back(std::make_unique<OverlapBlocker>(
        spec.key_attr, /*min_overlap=*/3, /*use_words=*/false));
    blockers.push_back(std::make_unique<OverlapBlocker>(
        spec.key_attr, /*min_overlap=*/1, /*use_words=*/true));
    blockers.push_back(
        std::make_unique<SortedNeighborhoodBlocker>(spec.key_attr, 6));
    blockers.push_back(
        std::make_unique<CanopyBlocker>(spec.key_attr, 0.9, 0.5));
    std::vector<LabeledPair> labeled = ds->AllPairs();
    for (const auto& blocker : blockers) {
      Result<std::vector<CandidatePair>> candidates =
          blocker->Block(ds->table_a, ds->table_b);
      if (!candidates.ok()) {
        std::cerr << blocker->name() << ": " << candidates.status() << "\n";
        continue;
      }
      BlockingStats stats =
          EvaluateBlocking(*candidates, labeled, ds->table_a.num_rows(),
                           ds->table_b.num_rows());
      table.AddRow({ds->name, blocker->name(),
                    std::to_string(stats.num_candidates),
                    FormatDouble(stats.reduction_ratio, 3),
                    FormatDouble(stats.pair_completeness, 3)});
      FAIREM_LOG(INFO) << "blocked" << LogKv("dataset", ds->name)
                       << LogKv("blocker", blocker->name())
                       << LogKv("candidates", stats.num_candidates);
    }
  }
  std::cout << table.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) {
  return fairem::Run(fairem::ParseBenchFlags(argc, argv));
}
