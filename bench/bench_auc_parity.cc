// Extension experiment: the threshold-free AUC-based fairness definition of
// the paper's cited parallel work [46] (Nilforoushan et al.), evaluated on
// the two social datasets. A group with lower AUC is worse-ranked by the
// matcher *regardless of any threshold* — it complements the 11
// thresholded measures of Table 2.

#include <iostream>

#include "src/core/auc.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/bench_flags.h"
#include "src/harness/experiment.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

int Run(const BenchFlags& flags) {
  std::cout << "== AUC parity on the social datasets (threshold-free) ==\n"
            << "cell = group AUC (overall AUC); * marks disparity > 0.05\n\n";
  for (DatasetKind kind :
       {DatasetKind::kNoFlyCompas, DatasetKind::kFacultyMatch}) {
    Result<EMDataset> dataset =
        GenerateDataset(kind, flags.scale, flags.seed_offset);
    if (!dataset.ok()) {
      std::cerr << dataset.status() << "\n";
      return 1;
    }
    Result<FairnessAuditor> auditor = MakeAuditor(*dataset);
    if (!auditor.ok()) {
      std::cerr << auditor.status() << "\n";
      return 1;
    }
    std::vector<std::string> headers = {"Matcher"};
    for (const auto& g : auditor->groups()) headers.push_back(g);
    TablePrinter table(std::move(headers));
    for (MatcherKind mk : AllMatcherKinds()) {
      Result<MatcherRun> run = RunMatcher(*dataset, mk);
      if (!run.ok()) {
        std::cerr << MatcherKindName(mk) << ": " << run.status() << "\n";
        continue;
      }
      if (!run->supported) continue;
      Result<std::vector<GroupAuc>> report = AuditAucParity(
          auditor->membership(), dataset->test, run->test_scores);
      if (!report.ok()) {
        std::cerr << report.status() << "\n";
        return 1;
      }
      std::vector<std::string> row = {run->matcher_name};
      for (const auto& g : *report) {
        if (!g.defined) {
          row.push_back("-");
          continue;
        }
        std::string cell = FormatDouble(g.auc, 3) + " (" +
                           FormatDouble(g.overall_auc, 3) + ")";
        if (g.unfair) cell += " *";
        row.push_back(std::move(cell));
      }
      table.AddRow(std::move(row));
      std::cerr << "done " << run->matcher_name << " on " << dataset->name
                << "\n";
    }
    std::cout << "-- " << dataset->name << " --\n"
              << table.ToString() << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) {
  return fairem::Run(fairem::ParseBenchFlags(argc, argv));
}
