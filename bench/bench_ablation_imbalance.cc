// Ablation: class-imbalance handling (§3.5). EM training data is extremely
// imbalanced; this bench sweeps the class-weight exponent of logistic
// regression on the NoFlyCompas features, showing the collapse at 0
// (majority-class predictor), the over-firing at 1 (balanced prior shifts
// the 0.5 cut), and the working middle ground the library defaults to.

#include <iostream>

#include "src/datagen/social.h"
#include "src/feature/feature_gen.h"
#include "src/harness/experiment.h"
#include "src/ml/linear_models.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

int Run() {
  Result<EMDataset> ds = GenerateNoFlyCompas(NoFlyCompasOptions{});
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  Result<std::vector<FeatureDef>> defs =
      GenerateFeatures(ds->table_a, ds->table_b, ds->matching_attrs);
  if (!defs.ok()) {
    std::cerr << defs.status() << "\n";
    return 1;
  }
  Result<FeatureTable> train =
      BuildFeatureTable(*defs, ds->table_a, ds->table_b, ds->train);
  Result<FeatureTable> test =
      BuildFeatureTable(*defs, ds->table_a, ds->table_b, ds->test);
  if (!train.ok() || !test.ok()) {
    std::cerr << "feature extraction failed\n";
    return 1;
  }
  std::cout << "== Ablation: class-weight exponent for logistic regression "
               "on NoFlyCompas ==\n"
            << "positive rate: "
            << FormatDouble(100.0 * ds->PositiveRate(), 2) << "%\n\n";
  TablePrinter table(
      {"balance_power", "F1", "TPR", "FDR", "predicted matches"});
  for (double power : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    LinearOptions options;
    options.balance_power = power;
    LogisticRegression model(options);
    Rng rng(2024);
    if (Status st = model.Fit(train->rows, train->labels, &rng); !st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    ConfusionCounts counts;
    for (size_t i = 0; i < test->rows.size(); ++i) {
      counts.Add(model.PredictScore(test->rows[i]) >= 0.5,
                 test->labels[i] == 1);
    }
    auto fmt = [](const Result<double>& v) {
      return v.ok() ? FormatDouble(*v, 3) : std::string("-");
    };
    table.AddRow({FormatDouble(power, 2), fmt(F1Score(counts)),
                  fmt(TruePositiveRate(counts)),
                  fmt(FalseDiscoveryRate(counts)),
                  std::to_string(counts.tp + counts.fp)});
    std::cerr << "done power " << power << "\n";
  }
  std::cout << table.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace fairem

int main() { return fairem::Run(); }
