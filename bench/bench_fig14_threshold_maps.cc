// Reproduces Figure 14 and Figures 21-27: the matching-threshold heat-maps.
// For each of the four datasets the paper sweeps (iTunes-Amazon, DBLP-ACM,
// DBLP-Scholar, Cameras) and each probed measure (TPRP with TPR utility;
// PPVP with PPV utility), every matcher is swept over thresholds
// 0.30..0.95 and each cell prints "utility(#discriminated groups)".
//   Figure 14: iTunes-Amazon TPRP    Figure 24: iTunes-Amazon PPVP
//   Figure 21: DBLP-ACM TPRP         Figure 25: DBLP-ACM PPVP
//   Figure 22: DBLP-Scholar TPRP     Figure 26: DBLP-Scholar PPVP
//   Figure 23: Cameras TPRP          Figure 27: Cameras PPVP

#include <iostream>

#include "src/core/threshold.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/bench_flags.h"
#include "src/harness/experiment.h"
#include "src/report/heatmap.h"

namespace fairem {
namespace {

struct MapSpec {
  DatasetKind kind;
  FairnessMeasure measure;
  const char* title;
};

int Run(const BenchFlags& flags) {
  const std::vector<MapSpec> specs = {
      {DatasetKind::kItunesAmazon, FairnessMeasure::kTruePositiveRateParity,
       "Figure 14: iTunes-Amazon — TPR(threshold) with #TPRP-unfair groups"},
      {DatasetKind::kDblpAcm, FairnessMeasure::kTruePositiveRateParity,
       "Figure 21: DBLP-ACM — TPR / TPRP"},
      {DatasetKind::kDblpScholar, FairnessMeasure::kTruePositiveRateParity,
       "Figure 22: DBLP-Scholar — TPR / TPRP"},
      {DatasetKind::kCameras, FairnessMeasure::kTruePositiveRateParity,
       "Figure 23: Cameras — TPR / TPRP"},
      {DatasetKind::kItunesAmazon,
       FairnessMeasure::kPositivePredictiveValueParity,
       "Figure 24: iTunes-Amazon — PPV / PPVP"},
      {DatasetKind::kDblpAcm, FairnessMeasure::kPositivePredictiveValueParity,
       "Figure 25: DBLP-ACM — PPV / PPVP"},
      {DatasetKind::kDblpScholar,
       FairnessMeasure::kPositivePredictiveValueParity,
       "Figure 26: DBLP-Scholar — PPV / PPVP"},
      {DatasetKind::kCameras, FairnessMeasure::kPositivePredictiveValueParity,
       "Figure 27: Cameras — PPV / PPVP"},
  };
  const std::vector<double> thresholds = ThresholdGrid(0.30, 0.95, 0.05);

  DatasetKind last_kind = DatasetKind::kFacultyMatch;
  EMDataset dataset;
  std::vector<MatcherRun> runs;
  for (const MapSpec& spec : specs) {
    if (runs.empty() || spec.kind != last_kind) {
      Result<EMDataset> ds = GenerateDataset(spec.kind, flags.scale, flags.seed_offset);
      if (!ds.ok()) {
        std::cerr << ds.status() << "\n";
        return 1;
      }
      dataset = std::move(ds).value();
      last_kind = spec.kind;
      runs.clear();
      for (MatcherKind kind : AllMatcherKinds()) {
        Result<MatcherRun> run = RunMatcher(dataset, kind);
        if (!run.ok()) {
          std::cerr << MatcherKindName(kind) << ": " << run.status() << "\n";
          return 1;
        }
        if (run->supported) runs.push_back(std::move(run).value());
        std::cerr << "trained " << MatcherKindName(kind) << " on "
                  << dataset.name << "\n";
      }
    }
    Result<FairnessAuditor> auditor = MakeAuditor(dataset);
    if (!auditor.ok()) {
      std::cerr << auditor.status() << "\n";
      return 1;
    }
    ThresholdHeatmap heatmap(thresholds);
    for (const MatcherRun& run : runs) {
      Result<std::vector<ThresholdPoint>> sweep =
          SweepThresholds(*auditor, dataset.test, run.test_scores,
                          spec.measure, thresholds, AuditOptions{});
      if (!sweep.ok()) {
        std::cerr << sweep.status() << "\n";
        return 1;
      }
      heatmap.AddRow(run.matcher_name, *sweep);
    }
    std::cout << "== " << spec.title << " ==\n"
              << "cell = overall utility (number of discriminated groups)\n"
              << heatmap.Render() << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) {
  return fairem::Run(fairem::ParseBenchFlags(argc, argv));
}
