// Micro-benchmarks (google-benchmark) of end-to-end matcher costs: training
// and per-pair scoring on the DBLP-ACM benchmark, plus the audit itself.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/audit.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"
#include "src/util/logging.h"

namespace fairem {
namespace {

const EMDataset& Dataset() {
  static const EMDataset& ds = *new EMDataset([] {
    Result<EMDataset> d = GenerateDataset(DatasetKind::kDblpAcm);
    FAIREM_CHECK(d.ok(), d.status().ToString());
    return std::move(d).value();
  }());
  return ds;
}

void FitBench(benchmark::State& state, MatcherKind kind) {
  const EMDataset& ds = Dataset();
  for (auto _ : state) {
    std::unique_ptr<Matcher> matcher = CreateMatcher(kind);
    Rng rng(99);
    Status st = matcher->Fit(ds, &rng);
    FAIREM_CHECK(st.ok(), st.ToString());
    benchmark::DoNotOptimize(matcher);
  }
}

void ScoreBench(benchmark::State& state, MatcherKind kind) {
  const EMDataset& ds = Dataset();
  std::unique_ptr<Matcher> matcher = CreateMatcher(kind);
  Rng rng(99);
  Status st = matcher->Fit(ds, &rng);
  FAIREM_CHECK(st.ok(), st.ToString());
  size_t i = 0;
  for (auto _ : state) {
    const LabeledPair& p = ds.test[i++ % ds.test.size()];
    Result<double> score = matcher->ScorePair(ds, p.left, p.right);
    benchmark::DoNotOptimize(score);
  }
}

void BM_FitDecisionTree(benchmark::State& state) {
  FitBench(state, MatcherKind::kDT);
}
BENCHMARK(BM_FitDecisionTree);

void BM_FitDitto(benchmark::State& state) {
  FitBench(state, MatcherKind::kDitto);
}
BENCHMARK(BM_FitDitto);

void BM_ScoreRuleMatcher(benchmark::State& state) {
  ScoreBench(state, MatcherKind::kBooleanRule);
}
BENCHMARK(BM_ScoreRuleMatcher);

void BM_ScoreRandomForest(benchmark::State& state) {
  ScoreBench(state, MatcherKind::kRF);
}
BENCHMARK(BM_ScoreRandomForest);

void BM_ScoreDitto(benchmark::State& state) {
  ScoreBench(state, MatcherKind::kDitto);
}
BENCHMARK(BM_ScoreDitto);

void BM_ScoreDeepMatcher(benchmark::State& state) {
  ScoreBench(state, MatcherKind::kDeepMatcher);
}
BENCHMARK(BM_ScoreDeepMatcher);

void BM_SingleFairnessAudit(benchmark::State& state) {
  const EMDataset& ds = Dataset();
  Result<MatcherRun> run = RunMatcher(ds, MatcherKind::kRF);
  FAIREM_CHECK(run.ok(), run.status().ToString());
  Result<FairnessAuditor> auditor = MakeAuditor(ds);
  FAIREM_CHECK(auditor.ok(), auditor.status().ToString());
  Result<std::vector<PairOutcome>> outcomes =
      MakeOutcomes(ds.test, run->test_scores, ds.default_threshold);
  FAIREM_CHECK(outcomes.ok(), outcomes.status().ToString());
  for (auto _ : state) {
    Result<AuditReport> report =
        auditor->AuditSingle(*outcomes, AuditOptions{});
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SingleFairnessAudit);

void BM_PairwiseFairnessAudit(benchmark::State& state) {
  const EMDataset& ds = Dataset();
  Result<MatcherRun> run = RunMatcher(ds, MatcherKind::kRF);
  FAIREM_CHECK(run.ok(), run.status().ToString());
  Result<FairnessAuditor> auditor = MakeAuditor(ds);
  FAIREM_CHECK(auditor.ok(), auditor.status().ToString());
  Result<std::vector<PairOutcome>> outcomes =
      MakeOutcomes(ds.test, run->test_scores, ds.default_threshold);
  FAIREM_CHECK(outcomes.ok(), outcomes.status().ToString());
  for (auto _ : state) {
    Result<AuditReport> report =
        auditor->AuditPairwise(*outcomes, AuditOptions{});
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_PairwiseFairnessAudit);

}  // namespace
}  // namespace fairem

BENCHMARK_MAIN();
