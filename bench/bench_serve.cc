// Closed-loop load generator for the `fairem serve` daemon (DESIGN.md §14).
//
// Forks a daemon child warming one small dataset, then drives it with
// concurrent client threads issuing a mix of ping / stats / cell queries
// through ServeClient::CallWithRetry (jittered backoff, retry-after hints).
// The serve knobs are deliberately tight (max_inflight 1, max_queue 2) so
// the run exercises admission control and overload shedding, not just the
// happy path. Three invariants are enforced, with or without chaos:
//
//   1. Every request terminates with a definite outcome — OK or a
//      structured error — never a hang (per-IO deadlines bound the rest).
//   2. The daemon survives: a final ping answers, repeated queries for the
//      same cell return byte-identical payloads (cache), and a raw-socket
//      drill shows unknown frame types are skipped while garbage bytes get
//      the connection closed without hurting anyone else.
//   3. SIGTERM drains cooperatively: exit 0 and a durable metrics snapshot
//      at bench_serve_daemon_metrics.json.
//
// Chaos mode is just --failpoints (e.g. "grid_cell=crash(0.5)"): the
// daemon child inherits the armed registry and reseeds per worker spawn, so
// query workers crash/hang under load. Failed requests then count as
// definite outcomes; the bench still requires eventual success for the
// probed cell (fresh attempts draw fresh streams) and a clean drain.
//
// Client-side latency lands in fairem.serve.client.latency_seconds inside
// BENCH_serve.json, which bench_smoke gates with `fairem benchdiff`.
//
// Trace mode (--trace, DESIGN.md §16) runs the same loop with distributed
// tracing on: every client propagates a trace context, the daemons (and
// router, with --route) send their spans back, and the bench scores hop
// completeness — the fraction of OK cell queries whose collected spans
// cover every expected process (router and daemon behind a router, the
// daemon alone otherwise). The score lands in the gauge
// fairem.serve.trace.completeness_ratio inside BENCH_serve_trace.json /
// BENCH_serve_route_trace.json, which bench_smoke gates at >= 0.95 even
// under chaos, alongside a tracing-on vs tracing-off latency ratio gate.
// Trace mode also arms a slow-query log (threshold 1 ms, so cell computes
// qualify) at bench_serve_slow.jsonl for the slowlog/tracetop drills.
//
// Route mode (--route, DESIGN.md §15) runs the same closed loop against a
// 3-backend fleet behind a `fairem route` shard router on the same front
// socket — the clients don't change at all. Mid-load one backend is
// SIGKILLed and later restarted: the run asserts zero client-visible
// failures (failover absorbs the death), answers byte-identical to asking
// a surviving daemon directly, and that the corpse rejoins after restart
// without a router restart. Artifacts move to BENCH_serve_route.json and
// bench_route_daemon_metrics.json so bench_smoke can gate the clean and
// routed runs independently.

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>

#include <atomic>
#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/bench_flags.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/profiler.h"
#include "src/robust/checkpoint.h"
#include "src/route/router.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/util/io_util.h"
#include "src/util/json.h"

namespace fairem {
namespace {

constexpr char kSocketPath[] = "bench_serve.sock";
constexpr char kDataset[] = "Cricket";
constexpr char kDrainMetricsPath[] = "bench_serve_daemon_metrics.json";
constexpr char kRouteDrainMetricsPath[] = "bench_route_daemon_metrics.json";
constexpr char kSlowLogPath[] = "bench_serve_slow.jsonl";
constexpr int kRouteBackends = 3;
const char* const kMatchers[] = {"BooleanRuleMatcher", "DTMatcher",
                                 "NBMatcher"};

std::string BackendSocket(int index) {
  return "bench_serve_backend_" + std::to_string(index) + ".sock";
}

struct ClientTally {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed_final{0};      // kUnavailable after retries
  std::atomic<uint64_t> deadline{0};        // kDeadlineExceeded
  std::atomic<uint64_t> worker_failed{0};   // kInternal (crash budget spent)
  std::atomic<uint64_t> other_failed{0};
  std::atomic<uint64_t> transport{0};       // connection-level failure
  std::atomic<uint64_t> traced_cell_ok{0};  // OK cell queries, trace mode
  std::atomic<uint64_t> traced_cell_complete{0};  // ..with full hop coverage
};

void Classify(ClientTally* tally, const Status& status) {
  if (status.ok()) {
    tally->ok.fetch_add(1);
  } else if (status.IsUnavailable()) {
    tally->shed_final.fetch_add(1);
  } else if (status.IsDeadlineExceeded()) {
    tally->deadline.fetch_add(1);
  } else if (status.code() == StatusCode::kInternal) {
    tally->worker_failed.fetch_add(1);
  } else {
    tally->other_failed.fetch_add(1);
  }
}

void ClientLoop(int client_index, int requests, const BenchFlags& flags,
                bool trace, bool route_mode, ClientTally* tally) {
  Histogram* latency = MetricsRegistry::Global().GetHistogram(
      "fairem.serve.client.latency_seconds");
  RetryPolicy retry;
  retry.max_attempts = 6;
  retry.initial_backoff_seconds = 0.02;
  retry.max_backoff_seconds = 0.5;
  ServeClientOptions client_options;
  client_options.io_timeout_s = 30.0;
  client_options.connect_timeout_s = 60.0;
  client_options.trace = trace;
  Result<ServeClient> client = ServeClient::Connect(kSocketPath,
                                                    client_options);
  if (!client.ok()) {
    tally->requests.fetch_add(static_cast<uint64_t>(requests));
    tally->transport.fetch_add(static_cast<uint64_t>(requests));
    return;
  }
  const size_t num_matchers = sizeof(kMatchers) / sizeof(kMatchers[0]);
  for (int r = 0; r < requests; ++r) {
    QueryRequest request;
    // 1-in-4 liveness/stats probes keep cheap requests interleaved with
    // the expensive cell computes that cause queueing.
    const int roll = (client_index + r) % 4;
    if (roll == 0) {
      request.op = (r % 2 == 0) ? "ping" : "stats";
    } else {
      request.op = "cell";
      request.dataset = kDataset;
      request.matcher = kMatchers[(client_index + r) % num_matchers];
      request.deadline_s = 60.0;
    }
    tally->requests.fetch_add(1);
    const double start = retry_internal::MonotonicSeconds();
    Result<QueryResponse> outcome = client->CallWithRetry(
        request, retry,
        flags.seed_offset + 1000ull * client_index + r);
    latency->Observe(retry_internal::MonotonicSeconds() - start);
    if (!outcome.ok()) {
      // Transport-level failure: still a definite outcome, but track it
      // apart from structured server replies.
      tally->transport.fetch_add(1);
      continue;
    }
    Classify(tally, outcome->status);
    if (trace && request.op == "cell" && outcome->status.ok()) {
      // Hop completeness: did the spans the response carried back cover
      // every process the query crossed? Behind a router, router AND
      // daemon (a cache hit has no worker span, so the worker does not
      // count toward completeness); direct to a daemon, the daemon.
      tally->traced_cell_ok.fetch_add(1);
      std::set<std::string> procs;
      for (const WireSpan& span : client->last_spans()) {
        if (span.process != "client") procs.insert(span.process);
      }
      const size_t want = route_mode ? 2 : 1;
      const bool has_daemon = procs.count("daemon") != 0;
      const bool has_router = !route_mode || procs.count("router") != 0;
      if (procs.size() >= want && has_daemon && has_router) {
        tally->traced_cell_complete.fetch_add(1);
      }
    }
  }
}

// Raw-socket protocol drill: an unknown frame type must be skipped (the
// following ping still answers); garbage bytes must get the connection
// closed promptly — and neither may disturb the daemon.
int RawFrameDrill() {
  auto raw_connect = []() {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, kSocketPath, sizeof(kSocketPath));
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };

  int fd = raw_connect();
  if (fd < 0) {
    std::cerr << "raw drill: connect failed\n";
    return 1;
  }
  QueryRequest ping;
  ping.op = "ping";
  ping.id = 7;
  // Unknown type first: "JUNK" frame with a valid header must be skipped
  // and counted, not kill the connection.
  std::string wire = EncodeServeMessage("JUNK", "ignore me");
  wire += EncodeServeMessage(kFrameQueryRequest, SerializeQueryRequest(ping));
  if (Status st = WriteFullDeadline(fd, wire.data(), wire.size(), 10.0);
      !st.ok()) {
    std::cerr << "raw drill: write failed: " << st << "\n";
    ::close(fd);
    return 1;
  }
  Result<ServeMessage> reply = ReadServeMessage(fd, 10.0);
  ::close(fd);
  if (!reply.ok() || reply->type != kFrameQueryResponse) {
    std::cerr << "raw drill: no response past an unknown frame type\n";
    return 1;
  }

  // Garbage bytes: the stream is unrecoverable, the daemon must close it
  // (we observe EOF) instead of hanging or crashing.
  fd = raw_connect();
  if (fd < 0) {
    std::cerr << "raw drill: reconnect failed\n";
    return 1;
  }
  const char garbage[] = "this is not FEMTEL1 at all\n";
  (void)WriteFullDeadline(fd, garbage, sizeof(garbage) - 1, 10.0);
  char byte = 0;
  Status eof = ReadFullDeadline(fd, &byte, 1, 10.0);
  ::close(fd);
  if (!eof.IsUnavailable()) {
    std::cerr << "raw drill: daemon did not close a corrupt connection: "
              << eof << "\n";
    return 1;
  }
  return 0;
}

ServeOptions BackendServeOptions(const BenchFlags& flags,
                                 const std::string& socket_path) {
  ServeOptions options;
  options.socket_path = socket_path;
  options.warm.datasets = {kDataset};
  options.warm.scale = flags.scale;
  options.warm.seed = 1234 + flags.seed_offset;
  options.warm.checkpoint_dir = flags.checkpoint_dir;
  options.max_inflight = 1;  // tight on purpose: force queueing + sheds
  options.max_queue = 2;
  options.default_deadline_s = 60.0;
  options.max_deadline_s = 120.0;
  options.io_timeout_s = 10.0;
  options.max_attempts = flags.retry_attempts;
  options.worker_max_rss_mb = flags.cell_max_rss_mb;
  if (flags.cell_timeout_s > 0.0) {
    options.default_deadline_s = flags.cell_timeout_s;
  }
  return options;
}

// Forks a fresh single-threaded daemon process with its own ShutdownGuard,
// killed with a real SIGTERM at the end — the same deployment shape as
// `fairem serve`, minus exec.
pid_t ForkServeDaemon(const ServeOptions& options) {
  pid_t pid = ::fork();
  if (pid == 0) {
    Status st = RunServeDaemon(options);
    if (!st.ok()) {
      FAIREM_LOG(ERROR) << "daemon failed" << LogKv("status", st.ToString());
    }
    ::_exit(st.ok() ? 0 : 1);
  }
  return pid;
}

pid_t ForkRouter(const RouteOptions& options) {
  pid_t pid = ::fork();
  if (pid == 0) {
    Status st = RunRouteDaemon(options);
    if (!st.ok()) {
      FAIREM_LOG(ERROR) << "router failed" << LogKv("status", st.ToString());
    }
    ::_exit(st.ok() ? 0 : 1);
  }
  return pid;
}

/// One stats round trip against the front socket; -1 when the call or the
/// lookup fails.
double FrontStat(const std::string& section, const std::string& name) {
  ServeClientOptions options;
  options.io_timeout_s = 10.0;
  options.connect_timeout_s = 10.0;
  Result<ServeClient> client = ServeClient::Connect(kSocketPath, options);
  if (!client.ok()) return -1.0;
  QueryRequest request;
  request.op = "stats";
  Result<QueryResponse> r = client->Call(request);
  if (!r.ok() || !r->status.ok()) return -1.0;
  Result<JsonValue> doc = JsonParse(r->payload);
  if (!doc.ok()) return -1.0;
  const JsonValue* sec = JsonFind(*doc, section);
  if (sec == nullptr) return -1.0;
  const JsonValue* value = JsonFind(*sec, name);
  if (value == nullptr) return -1.0;
  Result<double> d = JsonAsDouble(*value, name);
  return d.ok() ? *d : -1.0;
}

bool WaitForGauge(const std::string& name, double want, double timeout_s) {
  const int rounds = static_cast<int>(timeout_s / 0.05) + 1;
  for (int i = 0; i < rounds; ++i) {
    if (FrontStat("gauges", name) == want) return true;
    ::usleep(50 * 1000);
  }
  return false;
}

int TerminateDaemon(pid_t pid, const char* what) {
  if (pid <= 0) return 1;
  ::kill(pid, SIGTERM);
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::cerr << "FAIL: " << what << " did not drain cleanly (status "
              << status << ")\n";
    return 1;
  }
  return 0;
}

int Run(const BenchFlags& flags, bool route_mode, bool trace_mode) {
  IgnoreSigpipe();
  const bool chaos = !flags.failpoints.empty();
  ::unlink(kSocketPath);
  if (trace_mode) ::unlink(kSlowLogPath);
  // Trace mode: a 1 µs slow-query threshold makes every query qualify —
  // even sub-millisecond warm-cache hits when the drill reuses a
  // checkpoint dir — so the run leaves a span-carrying slow log for the
  // slowlog/tracetop drills in bench_smoke.
  auto arm_slowlog = [&](double* slow_ms, std::string* slow_log) {
    if (!trace_mode) return;
    *slow_ms = 0.001;
    *slow_log = kSlowLogPath;
  };

  pid_t daemon_pid = -1;  // single mode: the one daemon
  pid_t router_pid = -1;  // route mode: the front-end
  pid_t backend_pids[kRouteBackends] = {-1, -1, -1};
  if (route_mode) {
    // Looser per-backend admission than the single-daemon drill: the
    // router turns a shed into a failover re-dispatch, and this drill's
    // contract is zero client-visible failures while a backend dies.
    for (int i = 0; i < kRouteBackends; ++i) {
      ::unlink(BackendSocket(i).c_str());
      ServeOptions options = BackendServeOptions(flags, BackendSocket(i));
      options.max_inflight = 2;
      options.max_queue = 8;
      arm_slowlog(&options.slow_query_ms, &options.slow_query_log);
      backend_pids[i] = ForkServeDaemon(options);
      if (backend_pids[i] < 0) {
        std::cerr << "fork failed: " << std::strerror(errno) << "\n";
        return 1;
      }
    }
    RouteOptions route;
    route.socket_path = kSocketPath;
    for (int i = 0; i < kRouteBackends; ++i) {
      route.backends.push_back(BackendSocket(i));
    }
    route.health_period_s = 0.1;  // notice the SIGKILL within the run
    route.health_timeout_s = 1.0;
    route.breaker_cooldown_s = 0.3;
    route.default_deadline_s = 60.0;
    route.max_deadline_s = 120.0;
    route.metrics_path = kRouteDrainMetricsPath;
    arm_slowlog(&route.slow_query_ms, &route.slow_query_log);
    router_pid = ForkRouter(route);
    if (router_pid < 0) {
      std::cerr << "fork failed: " << std::strerror(errno) << "\n";
      return 1;
    }
  } else {
    ServeOptions options = BackendServeOptions(flags, kSocketPath);
    options.metrics_path = kDrainMetricsPath;
    arm_slowlog(&options.slow_query_ms, &options.slow_query_log);
    daemon_pid = ForkServeDaemon(options);
    if (daemon_pid < 0) {
      std::cerr << "fork failed: " << std::strerror(errno) << "\n";
      return 1;
    }
  }

  const int clients = flags.jobs > 1 ? flags.jobs : 4;
  const int requests_per_client = route_mode ? 24 : 8;
  ClientTally tally;
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(ClientLoop, c, requests_per_client, flags,
                           trace_mode, route_mode, &tally);
    }
    if (route_mode) {
      // The failover drill: one shard dies as the load opens and stays
      // dead until it is done, so every query it owns (the fixed socket
      // names make it own the NBMatcher key) must fail over.
      ::kill(backend_pids[0], SIGKILL);
      int status = 0;
      ::waitpid(backend_pids[0], &status, 0);
    }
    for (std::thread& t : threads) t.join();
    if (route_mode) {
      // Restart the corpse on the same socket: the router's probes must
      // close its breaker again with no operator action beyond this.
      ServeOptions options = BackendServeOptions(flags, BackendSocket(0));
      options.max_inflight = 2;
      options.max_queue = 8;
      arm_slowlog(&options.slow_query_ms, &options.slow_query_log);
      backend_pids[0] = ForkServeDaemon(options);
    }
  }

  int exit_code = 0;
  const uint64_t definite = tally.ok + tally.shed_final + tally.deadline +
                            tally.worker_failed + tally.other_failed +
                            tally.transport;
  std::cout << "serve bench: " << tally.requests << " requests, " << tally.ok
            << " ok, " << tally.shed_final << " shed, " << tally.deadline
            << " deadline, " << tally.worker_failed << " worker-failed, "
            << tally.other_failed << " other, " << tally.transport
            << " transport\n";
  if (definite != tally.requests) {
    std::cerr << "FAIL: " << (tally.requests - definite)
              << " request(s) without a definite outcome\n";
    exit_code = 1;
  }
  if (!chaos && tally.ok != tally.requests) {
    std::cerr << "FAIL: failures without chaos armed\n";
    exit_code = 1;
  }
  if (trace_mode) {
    const uint64_t traced = tally.traced_cell_ok.load();
    const uint64_t complete = tally.traced_cell_complete.load();
    const double ratio =
        traced > 0 ? static_cast<double>(complete) /
                         static_cast<double>(traced)
                   : 0.0;
    MetricsRegistry::Global()
        .GetGauge("fairem.serve.trace.completeness_ratio")
        ->Set(ratio);
    std::cout << "trace completeness: " << complete << "/" << traced
              << " OK cell queries with full hop coverage\n";
    if (traced == 0) {
      std::cerr << "FAIL: trace mode ran but no OK cell query was traced\n";
      exit_code = 1;
    }
  }

  // Route mode: the death must actually have been absorbed by failover,
  // and the restarted shard must rejoin — router probes close its breaker
  // again — with no operator action beyond the restart itself.
  if (route_mode) {
    if (FrontStat("counters", "fairem.route.failovers") < 1.0) {
      std::cerr << "FAIL: no failover recorded for the killed backend\n";
      exit_code = 1;
    }
    const std::string state_gauge =
        "fairem.route.backend." +
        CheckpointStore::SanitizeKey(BackendSocket(0)) + ".state";
    if (!WaitForGauge(state_gauge, 0.0, 30.0)) {
      std::cerr << "FAIL: killed backend never rejoined the router\n";
      exit_code = 1;
    }
  }

  // Post-load (and post-chaos) probe: the daemon must still answer, the
  // probed cell must eventually succeed (fresh requests draw fresh
  // failpoint streams), and a repeat must be byte-identical — served from
  // the parent-owned cache no worker crash can corrupt.
  {
    ServeClientOptions probe_options;
    probe_options.io_timeout_s = 60.0;
    Result<ServeClient> probe = ServeClient::Connect(kSocketPath,
                                                     probe_options);
    if (!probe.ok()) {
      std::cerr << "FAIL: post-load connect: " << probe.status() << "\n";
      exit_code = 1;
    } else {
      QueryRequest cell;
      cell.op = "cell";
      cell.dataset = kDataset;
      cell.matcher = kMatchers[0];
      cell.deadline_s = 60.0;
      RetryPolicy patient;
      patient.max_attempts = 4;
      std::string first_payload;
      for (int tries = 0; tries < 20 && first_payload.empty(); ++tries) {
        Result<QueryResponse> got = probe->CallWithRetry(cell, patient,
                                                         9000 + tries);
        if (got.ok() && got->status.ok()) first_payload = got->payload;
      }
      Result<QueryResponse> again = probe->CallWithRetry(cell, patient, 42);
      if (first_payload.empty()) {
        std::cerr << "FAIL: probed cell never succeeded\n";
        exit_code = 1;
      } else if (!again.ok() || !again->status.ok() ||
                 again->payload != first_payload) {
        std::cerr << "FAIL: repeated cell query was not byte-identical\n";
        exit_code = 1;
      }
      if (route_mode && !first_payload.empty()) {
        // Single-daemon equivalence: a surviving backend asked directly
        // must serve the exact bytes the router did.
        Result<ServeClient> direct =
            ServeClient::Connect(BackendSocket(1), probe_options);
        Result<QueryResponse> mine =
            direct.ok() ? direct->CallWithRetry(cell, patient, 44)
                        : Result<QueryResponse>(direct.status());
        if (!mine.ok() || !mine->status.ok() ||
            mine->payload != first_payload) {
          std::cerr << "FAIL: routed answer differs from a direct daemon "
                       "answer\n";
          exit_code = 1;
        }
      }
      QueryRequest stats;
      stats.op = "stats";
      Result<QueryResponse> snapshot = probe->CallWithRetry(stats, patient,
                                                            43);
      const char* stats_token = route_mode ? "fairem.route.queries_total"
                                           : "fairem.serve.requests_total";
      if (!snapshot.ok() || !snapshot->status.ok() ||
          snapshot->payload.find(stats_token) == std::string::npos) {
        std::cerr << "FAIL: stats query missing expected counters\n";
        exit_code = 1;
      }
    }
  }
  if (RawFrameDrill() != 0) exit_code = 1;

  // Cooperative drain: SIGTERM, expect exit 0 and the durable snapshot.
  // In route mode the router drains first (it still holds backend
  // connections), then the fleet.
  if (route_mode) {
    if (TerminateDaemon(router_pid, "router") != 0) exit_code = 1;
    for (int i = 0; i < kRouteBackends; ++i) {
      if (TerminateDaemon(backend_pids[i], "backend") != 0) exit_code = 1;
    }
  } else {
    if (TerminateDaemon(daemon_pid, "daemon") != 0) exit_code = 1;
  }

  Profiler::Global().ExportMetrics();
  Profiler::Global().ExportStageCpuGauges();
  EmitProcessResourceGauges();
  const char* snapshot_path =
      trace_mode ? (route_mode ? "BENCH_serve_route_trace.json"
                               : "BENCH_serve_trace.json")
                 : (route_mode ? "BENCH_serve_route.json"
                               : "BENCH_serve.json");
  if (Status st = MetricsRegistry::Global().WriteJsonFile(snapshot_path);
      !st.ok()) {
    FAIREM_LOG(WARN) << "could not write bench metrics snapshot"
                     << LogKv("status", st.ToString());
  }
  std::cout << (exit_code == 0 ? "serve bench OK\n" : "serve bench FAILED\n");
  return exit_code;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) {
  // --route and --trace are this bench's own mode switches; peel them off
  // before the shared flag parser (which rejects flags it does not know).
  bool route = false;
  bool trace = false;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::string(argv[i]) == "--route") {
      route = true;
      continue;
    }
    if (i > 0 && std::string(argv[i]) == "--trace") {
      trace = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  fairem::BenchFlags flags =
      fairem::ParseBenchFlags(static_cast<int>(args.size()), args.data());
  return fairem::Run(flags, route, trace);
}
