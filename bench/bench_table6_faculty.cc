// Reproduces Table 6: FacultyMatch — TPR and PPV per country group (cn /
// de) with subtraction and division disparities for all 11 ML matchers.
// The paper's findings: neural matchers show 12-31% TPR disparity against
// cn (similar pinyin names => more FNs) and 5-17% PPV disparity (more FPs);
// non-neural matchers mostly match or exceed the cn TPR but NBMatcher's PPV
// collapses for cn.

#include <iostream>

#include "src/core/disparity.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/bench_flags.h"
#include "src/harness/experiment.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

int Run(const BenchFlags& flags) {
  Result<EMDataset> dataset = GenerateDataset(DatasetKind::kFacultyMatch, flags.scale, flags.seed_offset);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  std::cout << "== Table 6: FacultyMatch — TPR / PPV per country ==\n"
            << "cn pairs outnumber de pairs ~6x; cn names are intrinsically "
            << "more similar\n\n";
  TablePrinter table({"Matcher", "TPR cn", "TPR de", "TPR sub", "TPR div",
                      "PPV cn", "PPV de", "PPV sub", "PPV div", "Acc", "F1"});
  for (MatcherKind kind : AllMatcherKinds()) {
    if (kind == MatcherKind::kBooleanRule) continue;  // Table 6 covers ML
    Result<MatcherRun> run = RunMatcher(*dataset, kind);
    if (!run.ok()) {
      std::cerr << MatcherKindName(kind) << ": " << run.status() << "\n";
      continue;
    }
    if (!run->supported) {
      table.AddRow({run->matcher_name, "-", "-", "-", "-", "-", "-", "-",
                    "-", "-", "-"});
      continue;
    }
    Result<std::vector<GroupRates>> breakdown = GroupBreakdown(*dataset, *run);
    if (!breakdown.ok()) {
      std::cerr << breakdown.status() << "\n";
      return 1;
    }
    const ConfusionCounts* cn = nullptr;
    const ConfusionCounts* de = nullptr;
    for (const auto& g : *breakdown) {
      if (g.group == "cn") cn = &g.counts;
      if (g.group == "de") de = &g.counts;
    }
    if (cn == nullptr || de == nullptr) {
      std::cerr << "missing country group in breakdown\n";
      return 1;
    }
    auto fmt = [](const Result<double>& v) {
      return v.ok() ? FormatDouble(*v, 2) : std::string("-");
    };
    // Between-group disparities (the paper's Table 6 convention; negative =
    // the cn group does better).
    double tpr_cn = TruePositiveRate(*cn).value_or(0.0);
    double tpr_de = TruePositiveRate(*de).value_or(0.0);
    double ppv_cn = PositivePredictiveValue(*cn).value_or(0.0);
    double ppv_de = PositivePredictiveValue(*de).value_or(0.0);
    auto disp = [](FairnessMeasure m, double suspect, double other,
                   DisparityMode mode) {
      Result<double> d = BetweenGroupDisparity(m, suspect, other, mode);
      return d.ok() ? FormatDouble(*d, 2) : std::string("-");
    };
    table.AddRow(
        {run->matcher_name, fmt(TruePositiveRate(*cn)),
         fmt(TruePositiveRate(*de)),
         disp(FairnessMeasure::kTruePositiveRateParity, tpr_cn, tpr_de,
              DisparityMode::kSubtraction),
         disp(FairnessMeasure::kTruePositiveRateParity, tpr_cn, tpr_de,
              DisparityMode::kDivision),
         fmt(PositivePredictiveValue(*cn)), fmt(PositivePredictiveValue(*de)),
         disp(FairnessMeasure::kPositivePredictiveValueParity, ppv_cn, ppv_de,
              DisparityMode::kSubtraction),
         disp(FairnessMeasure::kPositivePredictiveValueParity, ppv_cn, ppv_de,
              DisparityMode::kDivision),
         FormatDouble(run->accuracy, 2), FormatDouble(run->f1, 2)});
  }
  std::cout << table.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) {
  return fairem::Run(fairem::ParseBenchFlags(argc, argv));
}
