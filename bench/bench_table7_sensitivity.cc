// Reproduces Table 7: the threshold sensitivity of each matcher's fairness
// — the L2 norm of the changes in the number of discriminated groups
// between adjacent matching thresholds, for TPRP and PPVP on the four
// swept datasets. Expected shape: neural matchers are more sensitive
// (larger values) than non-neural ones on the structured datasets (§5.3.4).

#include <iostream>

#include "src/core/threshold.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/bench_flags.h"
#include "src/harness/experiment.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

int Run(const BenchFlags& flags) {
  const std::vector<DatasetKind> kinds = {
      DatasetKind::kItunesAmazon, DatasetKind::kCameras,
      DatasetKind::kDblpAcm, DatasetKind::kDblpScholar};
  const std::vector<FairnessMeasure> measures = {
      FairnessMeasure::kTruePositiveRateParity,
      FairnessMeasure::kPositivePredictiveValueParity};
  const std::vector<double> thresholds = ThresholdGrid(0.30, 0.95, 0.05);

  std::vector<std::string> headers = {"measure", "dataset"};
  for (MatcherKind kind : AllMatcherKinds()) {
    if (kind == MatcherKind::kDedupe) continue;  // Table 7 omits Dedupe
    headers.push_back(MatcherKindName(kind));
  }
  TablePrinter table(std::move(headers));

  for (FairnessMeasure measure : measures) {
    for (DatasetKind dk : kinds) {
      Result<EMDataset> dataset = GenerateDataset(dk, flags.scale, flags.seed_offset);
      if (!dataset.ok()) {
        std::cerr << dataset.status() << "\n";
        return 1;
      }
      Result<FairnessAuditor> auditor = MakeAuditor(*dataset);
      if (!auditor.ok()) {
        std::cerr << auditor.status() << "\n";
        return 1;
      }
      std::vector<std::string> row = {FairnessMeasureName(measure),
                                      DatasetKindName(dk)};
      for (MatcherKind kind : AllMatcherKinds()) {
        if (kind == MatcherKind::kDedupe) continue;
        Result<MatcherRun> run = RunMatcher(*dataset, kind);
        if (!run.ok() || !run->supported) {
          row.push_back("-");
          continue;
        }
        Result<std::vector<ThresholdPoint>> sweep =
            SweepThresholds(*auditor, dataset->test, run->test_scores,
                            measure, thresholds, AuditOptions{});
        if (!sweep.ok()) {
          row.push_back("-");
          continue;
        }
        row.push_back(FormatDouble(ThresholdSensitivityL2(*sweep), 1));
        std::cerr << "swept " << MatcherKindName(kind) << " on "
                  << dataset->name << " (" << FairnessMeasureName(measure)
                  << ")\n";
      }
      table.AddRow(std::move(row));
    }
  }
  std::cout << "== Table 7: threshold sensitivity (L2 of adjacent-threshold "
               "unfair-group deltas) ==\n\n"
            << table.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) {
  return fairem::Run(fairem::ParseBenchFlags(argc, argv));
}
