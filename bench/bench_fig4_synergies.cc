// Reproduces Figure 4 / Figure 16: fairness-accuracy synergies. Every
// (matcher, dataset) run is placed into one of four quadrants by whether it
// is accurate (F1 >= 0.8) and fair (no discriminated group under single
// fairness at the 20% rule). The paper's headline: all four quadrants are
// populated, including inaccurate-but-fair (equally bad for everyone).

#include <iostream>
#include <map>

#include "src/datagen/benchmark_suite.h"
#include "src/harness/bench_flags.h"
#include "src/harness/experiment.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

constexpr double kAccurateF1 = 0.8;

int Run(const BenchFlags& flags) {
  std::map<std::pair<bool, bool>, std::vector<std::string>> quadrants;
  for (DatasetKind dk : AllDatasetKinds()) {
    Result<EMDataset> dataset = GenerateDataset(dk, flags.scale, flags.seed_offset);
    if (!dataset.ok()) {
      std::cerr << dataset.status() << "\n";
      return 1;
    }
    for (MatcherKind mk : AllMatcherKinds()) {
      Result<MatcherRun> run = RunMatcher(*dataset, mk);
      if (!run.ok()) {
        std::cerr << MatcherKindName(mk) << ": " << run.status() << "\n";
        return 1;
      }
      if (!run->supported) continue;
      Result<AuditReport> report = AuditRunSingle(*dataset, *run);
      if (!report.ok()) {
        std::cerr << report.status() << "\n";
        return 1;
      }
      bool accurate = run->f1 >= kAccurateF1;
      bool fair = report->NumDiscriminatedGroups() == 0;
      std::string evidence =
          run->matcher_name + ": " + dataset->name + " (F1 " +
          FormatDouble(run->f1, 2) + ")";
      auto& bucket = quadrants[{accurate, fair}];
      if (bucket.size() < 6) bucket.push_back(std::move(evidence));
      std::cerr << "placed " << run->matcher_name << " x " << dataset->name
                << " -> " << (accurate ? "accurate" : "inaccurate") << "/"
                << (fair ? "fair" : "unfair") << "\n";
    }
  }
  std::cout << "== Figure 4: fairness and accuracy synergies (selected "
               "evidence per quadrant) ==\n\n";
  TablePrinter table({"Accurate", "Fair", "Evidence"});
  for (bool accurate : {false, true}) {
    for (bool fair : {false, true}) {
      auto it = quadrants.find({accurate, fair});
      std::string evidence =
          it == quadrants.end() ? "(none)" : Join(it->second, "; ");
      table.AddRow({accurate ? "yes" : "no", fair ? "yes" : "no", evidence});
    }
  }
  std::cout << table.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) {
  return fairem::Run(fairem::ParseBenchFlags(argc, argv));
}
