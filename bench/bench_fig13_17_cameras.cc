// Reproduces Figures 13 and 17: Cameras (textual) single and pairwise
// grids over the extracted company groups. Expected shape: extensive
// TPRP/PPVP unfairness from the non-neural matchers (they largely fail on
// the textual data, unevenly across brands).

#include "bench/grid_bench_common.h"
#include "src/harness/bench_flags.h"

int main(int argc, char** argv) {
  return fairem::RunGridBench(fairem::DatasetKind::kCameras,
                              "Figure 13: Cameras single fairness",
                              "Figure 17: Cameras pairwise fairness",
                              fairem::ParseBenchFlags(argc, argv));
}
