// Reproduces Figures 8 and 18: iTunes-Amazon single and pairwise grids
// over the setwise genre groups. Expected shape: neural matchers unfair on
// the country-family groups (Country / Cont. Country / Honky Tonk) via
// TPRP/PPVP/FPRP; the French-Pop column fires only on SP (its ground truth
// has no true matches — the SP false flag of §5.3.2).

#include "bench/grid_bench_common.h"
#include "src/harness/bench_flags.h"

int main(int argc, char** argv) {
  return fairem::RunGridBench(fairem::DatasetKind::kItunesAmazon,
                              "Figure 8: iTunes-Amazon single fairness",
                              "Figure 18: iTunes-Amazon pairwise fairness",
                              fairem::ParseBenchFlags(argc, argv));
}
