# Smoke test for the bench observability and fault-tolerance paths: runs a
# small bench with --metrics_out and fails if the binary errors, the
# snapshot is missing, or the snapshot lacks the pipeline counters it must
# contain. When GRID_BIN is also given, two drills run on that grid bench:
#
#  * kill/resume: a crash failpoint kills it mid-grid, a second run resumes
#    from --checkpoint_dir, and the resumed stdout must be byte-identical
#    to an uninterrupted run;
#  * parallel hang-and-recover: a --jobs run must reproduce the sequential
#    report byte for byte, a hang failpoint under --cell_timeout_s must be
#    contained by the watchdog as an error entry (exit 0), and after
#    deleting the degraded cells' checkpoints a rerun must heal back to the
#    baseline report.
#
# When CLI_BIN (the fairem CLI) is also given, a telemetry drill checks
# that worker metric shipping makes the --jobs 2 snapshot agree with the
# sequential one on every audit/datagen/harness counter, that
# `fairem benchdiff` on the pair exits 0, and that a deliberately
# impossible --fail_on threshold flips the exit to non-zero.
#
# Invoked by CTest as:
#   cmake -DBENCH_BIN=<path> [-DGRID_BIN=<path>] [-DCLI_BIN=<path>] \
#         -DWORK_DIR=<dir> -P bench_smoke.cmake

if(NOT DEFINED BENCH_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "bench_smoke.cmake requires -DBENCH_BIN and -DWORK_DIR")
endif()

set(metrics_file "${WORK_DIR}/bench_smoke_metrics.json")
file(REMOVE "${metrics_file}")

execute_process(
  COMMAND "${BENCH_BIN}" --scale 0.25 --metrics_out "${metrics_file}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE bench_stdout
  ERROR_VARIABLE bench_stderr)

if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "bench exited with ${exit_code}\nstdout:\n${bench_stdout}\n"
      "stderr:\n${bench_stderr}")
endif()

if(NOT EXISTS "${metrics_file}")
  message(FATAL_ERROR "--metrics_out produced no file at ${metrics_file}")
endif()

file(READ "${metrics_file}" snapshot)

if(snapshot STREQUAL "")
  message(FATAL_ERROR "metrics snapshot is empty")
endif()

# An all-empty registry means the bench ran without touching any counters —
# the instrumentation is broken even if the run "succeeded".
string(REGEX REPLACE "[ \t\r\n]" "" compact "${snapshot}")
if(compact MATCHES "\"counters\":{}")
  message(FATAL_ERROR "metrics snapshot has no counters:\n${snapshot}")
endif()

foreach(key
    "fairem.datagen.datasets_generated"
    "fairem.block.candidates"
    "fairem.block.calls")
  if(NOT snapshot MATCHES "\"${key}\"")
    message(FATAL_ERROR
        "metrics snapshot is missing expected key ${key}:\n${snapshot}")
  endif()
endforeach()

message(STATUS "bench_smoke OK: snapshot at ${metrics_file} has all keys")

if(NOT DEFINED GRID_BIN)
  return()
endif()

# --- kill/resume drill ------------------------------------------------------

set(ckpt_dir "${WORK_DIR}/bench_smoke_checkpoints")
file(REMOVE_RECURSE "${ckpt_dir}")

# Uninterrupted baseline (no checkpoints involved).
execute_process(
  COMMAND "${GRID_BIN}" --scale 0.25
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE baseline_stdout
  ERROR_VARIABLE grid_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "grid bench baseline exited with ${exit_code}\nstderr:\n${grid_stderr}")
endif()

# Kill the run on its third grid cell; the first two cells must already be
# checkpointed by then.
execute_process(
  COMMAND "${GRID_BIN}" --scale 0.25 --checkpoint_dir "${ckpt_dir}"
          --failpoints "grid_cell=crash(1,2)"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE crash_stdout
  ERROR_VARIABLE crash_stderr)
if(exit_code EQUAL 0)
  message(FATAL_ERROR "crash failpoint did not kill the grid bench")
endif()

file(GLOB survivors "${ckpt_dir}/*.json")
list(LENGTH survivors survivor_count)
if(survivor_count EQUAL 0)
  message(FATAL_ERROR
      "killed run left no checkpoints in ${ckpt_dir}\n"
      "stderr:\n${crash_stderr}")
endif()

# Resume from the surviving checkpoints.
set(resume_metrics "${WORK_DIR}/bench_smoke_resume_metrics.json")
file(REMOVE "${resume_metrics}")
execute_process(
  COMMAND "${GRID_BIN}" --scale 0.25 --checkpoint_dir "${ckpt_dir}"
          --metrics_out "${resume_metrics}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE resumed_stdout
  ERROR_VARIABLE resume_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "resumed grid bench exited with ${exit_code}\n"
      "stderr:\n${resume_stderr}")
endif()

if(NOT resumed_stdout STREQUAL baseline_stdout)
  message(FATAL_ERROR
      "resumed report differs from the uninterrupted run\n"
      "--- baseline ---\n${baseline_stdout}\n"
      "--- resumed ---\n${resumed_stdout}")
endif()

file(READ "${resume_metrics}" resume_snapshot)
if(NOT resume_snapshot MATCHES
   "\"fairem.robust.checkpoint_cells_loaded\": [1-9]")
  message(FATAL_ERROR
      "resumed run shows no checkpoint hits:\n${resume_snapshot}")
endif()

message(STATUS
    "bench_smoke OK: resume reproduced the report from ${survivor_count} "
    "surviving checkpoints")

# --- parallel hang-and-recover drill ----------------------------------------

# 1. A clean supervised parallel run must match the sequential baseline.
execute_process(
  COMMAND "${GRID_BIN}" --scale 0.25 --jobs 4
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE parallel_stdout
  ERROR_VARIABLE parallel_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "parallel grid bench exited with ${exit_code}\n"
      "stderr:\n${parallel_stderr}")
endif()
if(NOT parallel_stdout STREQUAL baseline_stdout)
  message(FATAL_ERROR
      "--jobs 4 report differs from the sequential run\n"
      "--- sequential ---\n${baseline_stdout}\n"
      "--- parallel ---\n${parallel_stdout}")
endif()

# 2. Hang one matcher's fit in every worker that runs it; the watchdog must
# kill those workers at the deadline and the run must still finish cleanly,
# degrading just that matcher to an error entry.
set(hang_ckpt_dir "${WORK_DIR}/bench_smoke_hang_checkpoints")
file(REMOVE_RECURSE "${hang_ckpt_dir}")
execute_process(
  COMMAND "${GRID_BIN}" --scale 0.25 --jobs 4 --cell_timeout_s 10
          --retry_attempts 1 --checkpoint_dir "${hang_ckpt_dir}"
          --failpoints "matcher_fit.NBMatcher=hang(1)"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE hang_stdout
  ERROR_VARIABLE hang_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "hung grid bench was not contained (exit ${exit_code})\n"
      "stderr:\n${hang_stderr}")
endif()
if(NOT hang_stdout MATCHES "errors \\(cells unavailable after retries\\)")
  message(FATAL_ERROR
      "hang run rendered no degraded error entry\n${hang_stdout}")
endif()
if(NOT hang_stdout MATCHES "watchdog")
  message(FATAL_ERROR
      "degraded entry does not name the watchdog kill\n${hang_stdout}")
endif()

# 3. Delete the degraded cells' checkpoints and rerun: the healed parallel
# run must reproduce the uninterrupted baseline byte for byte.
file(GLOB degraded "${hang_ckpt_dir}/*NBMatcher*.json")
list(LENGTH degraded degraded_count)
if(degraded_count EQUAL 0)
  message(FATAL_ERROR
      "hang run persisted no checkpoint for the degraded cells")
endif()
file(REMOVE ${degraded})
execute_process(
  COMMAND "${GRID_BIN}" --scale 0.25 --jobs 4
          --checkpoint_dir "${hang_ckpt_dir}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE healed_stdout
  ERROR_VARIABLE healed_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "healed grid bench exited with ${exit_code}\n"
      "stderr:\n${healed_stderr}")
endif()
if(NOT healed_stdout STREQUAL baseline_stdout)
  message(FATAL_ERROR
      "healed report differs from the uninterrupted run\n"
      "--- baseline ---\n${baseline_stdout}\n"
      "--- healed ---\n${healed_stdout}")
endif()

message(STATUS
    "bench_smoke OK: parallel run matched sequential, hang was contained, "
    "and ${degraded_count} degraded cell(s) healed on rerun")

# --- intra-cell threading drill ---------------------------------------------

# 1. The --intra_jobs 4 report must be byte-identical to the sequential
# baseline: the chunked parallel-for writes results by index, so threading
# must never change the bytes — on any machine, including single-core CI.
set(intra1_metrics "${WORK_DIR}/bench_smoke_intra1_metrics.json")
set(intra4_metrics "${WORK_DIR}/bench_smoke_intra4_metrics.json")
file(REMOVE "${intra1_metrics}" "${intra4_metrics}")
execute_process(
  COMMAND "${GRID_BIN}" --scale 0.25 --intra_jobs 1
          --metrics_out "${intra1_metrics}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE intra1_stdout
  ERROR_VARIABLE intra1_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "--intra_jobs 1 grid bench exited with ${exit_code}\n"
      "stderr:\n${intra1_stderr}")
endif()
execute_process(
  COMMAND "${GRID_BIN}" --scale 0.25 --intra_jobs 4
          --metrics_out "${intra4_metrics}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE intra4_stdout
  ERROR_VARIABLE intra4_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "--intra_jobs 4 grid bench exited with ${exit_code}\n"
      "stderr:\n${intra4_stderr}")
endif()
if(NOT intra4_stdout STREQUAL baseline_stdout)
  message(FATAL_ERROR
      "--intra_jobs 4 report differs from the sequential run\n"
      "--- sequential ---\n${baseline_stdout}\n"
      "--- intra_jobs 4 ---\n${intra4_stdout}")
endif()

# 2. The threaded run must actually have exercised the pool and the
# prepared-text cache — a byte-identical report produced by silently
# falling back to sequential code would pass check 1 while proving nothing.
file(READ "${intra4_metrics}" intra4_snapshot)
foreach(key
    "fairem.pool.parallel_fors"
    "fairem.pool.tasks"
    "fairem.pool.workers"
    "fairem.pool.queue_wait_seconds"
    "fairem.prepared.builds"
    "fairem.prepared.cache_hits"
    "fairem.feature.build_table_seconds")
  if(NOT intra4_snapshot MATCHES "\"${key}")
    message(FATAL_ERROR
        "--intra_jobs 4 snapshot is missing ${key}:\n${intra4_snapshot}")
  endif()
endforeach()
if(NOT intra4_snapshot MATCHES "\"fairem.pool.workers\": 3")
  message(FATAL_ERROR
      "--intra_jobs 4 run did not report 3 pool workers (caller + 3 = 4):\n"
      "${intra4_snapshot}")
endif()

message(STATUS
    "bench_smoke OK: --intra_jobs 4 matched the sequential report and "
    "exercised the pool + prepared cache")

# --- telemetry equivalence + benchdiff gate drill ---------------------------

if(NOT DEFINED CLI_BIN)
  return()
endif()

# 1. The same sweep sequentially and under --jobs 2 must land on identical
# audit/datagen/harness counters: in parallel mode those counts happen in
# forked workers and only reach the parent snapshot via telemetry shipping.
set(seq_metrics "${WORK_DIR}/bench_smoke_seq_metrics.json")
set(par_metrics "${WORK_DIR}/bench_smoke_par_metrics.json")
file(REMOVE "${seq_metrics}" "${par_metrics}")

execute_process(
  COMMAND "${GRID_BIN}" --scale 0.25 --metrics_out "${seq_metrics}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE seq_stdout
  ERROR_VARIABLE seq_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "sequential telemetry run exited with ${exit_code}\n"
      "stderr:\n${seq_stderr}")
endif()

execute_process(
  COMMAND "${GRID_BIN}" --scale 0.25 --jobs 2 --progress
          --metrics_out "${par_metrics}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE par_stdout
  ERROR_VARIABLE par_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "--jobs 2 telemetry run exited with ${exit_code}\n"
      "stderr:\n${par_stderr}")
endif()
if(NOT par_stderr MATCHES "grid [0-9]+/[0-9]+ done")
  message(FATAL_ERROR
      "--progress produced no progress line on stderr:\n${par_stderr}")
endif()

file(READ "${seq_metrics}" seq_snapshot)
file(READ "${par_metrics}" par_snapshot)
set(counter_regex "\"fairem\\.(audit|datagen|harness)\\.[a-z_]+\": [0-9]+")
string(REGEX MATCHALL "${counter_regex}" seq_counters "${seq_snapshot}")
string(REGEX MATCHALL "${counter_regex}" par_counters "${par_snapshot}")
list(LENGTH seq_counters seq_counter_count)
if(seq_counter_count EQUAL 0)
  message(FATAL_ERROR
      "sequential snapshot has no audit/datagen/harness counters:\n"
      "${seq_snapshot}")
endif()
list(SORT seq_counters)
list(SORT par_counters)
if(NOT seq_counters STREQUAL par_counters)
  message(FATAL_ERROR
      "--jobs 2 counters diverge from the sequential run (worker telemetry "
      "lost or double-counted)\n"
      "--- sequential ---\n${seq_counters}\n"
      "--- jobs 2 ---\n${par_counters}")
endif()

# 2. benchdiff on the equivalent pair must pass cleanly...
execute_process(
  COMMAND "${CLI_BIN}" benchdiff "${seq_metrics}" "${par_metrics}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE diff_stdout
  ERROR_VARIABLE diff_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "benchdiff on equivalent snapshots exited with ${exit_code}\n"
      "stdout:\n${diff_stdout}\nstderr:\n${diff_stderr}")
endif()

# 3. ...and an impossible threshold (the unchanged counter's ratio of 1.0
# exceeds 0.5x) must flip the gate to a non-zero exit.
execute_process(
  COMMAND "${CLI_BIN}" benchdiff "${seq_metrics}" "${par_metrics}"
          --fail_on "fairem.audit.cells_evaluated>0.5x"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE gate_stdout
  ERROR_VARIABLE gate_stderr)
if(exit_code EQUAL 0)
  message(FATAL_ERROR
      "benchdiff --fail_on did not trip on a regressing threshold\n"
      "stdout:\n${gate_stdout}")
endif()
if(NOT gate_stderr MATCHES "REGRESSION")
  message(FATAL_ERROR
      "tripped benchdiff gate printed no REGRESSION line\n"
      "stderr:\n${gate_stderr}")
endif()

message(STATUS
    "bench_smoke OK: --jobs 2 telemetry matched sequential counters and the "
    "benchdiff gate tripped as expected")

# --- intra_jobs speedup gate (multi-core hosts only) ------------------------

# The feature-table build must get at least 1.5x faster at --intra_jobs 4
# (mean build seconds ratio below 1/1.5 ~= 0.67). Only meaningful with
# enough cores to actually run 4 threads; single-core CI still ran the
# byte-equality and pool-metrics checks above.
cmake_host_system_information(RESULT core_count QUERY NUMBER_OF_LOGICAL_CORES)
if(core_count GREATER_EQUAL 4)
  execute_process(
    COMMAND "${CLI_BIN}" benchdiff "${intra1_metrics}" "${intra4_metrics}"
            --fail_on "fairem.feature.build_table_seconds.mean>0.67x"
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE speedup_stdout
    ERROR_VARIABLE speedup_stderr)
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
        "--intra_jobs 4 did not reach 1.5x on the feature-table build "
        "(${core_count} cores)\n"
        "stdout:\n${speedup_stdout}\nstderr:\n${speedup_stderr}")
  endif()
  message(STATUS
      "bench_smoke OK: --intra_jobs 4 cleared the 1.5x feature-build gate "
      "on ${core_count} cores")
else()
  message(STATUS
      "bench_smoke: ${core_count} core(s); skipping the intra_jobs speedup "
      "gate (byte-equality still verified)")
endif()

# --- sampling profiler drill ------------------------------------------------

# Profile the same grid sweep sequentially and under --jobs 2 (PROF_BIN is a
# second grid bench so this drill exercises the profiler plumbing on a bench
# the earlier drills did not touch). The folded outputs must be non-empty,
# the --jobs 2 profile must merge stacks from the parent AND at least one
# forked worker, `fairem proftop --by stage` must attribute at least 90% of
# samples to named spans, and the sequential/parallel per-stage shares must
# agree within a loose tolerance (same work, different process layout).

if(NOT DEFINED PROF_BIN)
  return()
endif()

set(prof_seq "${WORK_DIR}/bench_smoke_seq_profile.folded")
set(prof_par "${WORK_DIR}/bench_smoke_par_profile.folded")
file(REMOVE "${prof_seq}" "${prof_par}")

execute_process(
  COMMAND "${PROF_BIN}" --scale 0.25 --profile_out "${prof_seq}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE prof_seq_stdout
  ERROR_VARIABLE prof_seq_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "profiled sequential grid bench exited with ${exit_code}\n"
      "stderr:\n${prof_seq_stderr}")
endif()

execute_process(
  COMMAND "${PROF_BIN}" --scale 0.25 --jobs 2 --profile_out "${prof_par}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE prof_par_stdout
  ERROR_VARIABLE prof_par_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "profiled --jobs 2 grid bench exited with ${exit_code}\n"
      "stderr:\n${prof_par_stderr}")
endif()

foreach(folded "${prof_seq}" "${prof_par}")
  if(NOT EXISTS "${folded}")
    message(FATAL_ERROR "--profile_out produced no file at ${folded}")
  endif()
  file(READ "${folded}" folded_text)
  if(folded_text STREQUAL "")
    message(FATAL_ERROR "folded profile ${folded} is empty")
  endif()
endforeach()

# The merged --jobs 2 profile must carry frames from >= 2 processes: the
# parent and at least one forked worker (shipped over the telemetry pipe).
file(READ "${prof_par}" par_folded)
if(NOT par_folded MATCHES "process:parent;")
  message(FATAL_ERROR
      "--jobs 2 folded profile has no parent stacks:\n${par_folded}")
endif()
if(NOT par_folded MATCHES "process:worker_[0-9]+;")
  message(FATAL_ERROR
      "--jobs 2 folded profile has no worker stacks (profile shipping "
      "broken):\n${par_folded}")
endif()

# proftop --by stage must attribute >= 90% of samples to named spans.
# Integer math on the greppable "attributed N/M samples" line avoids float
# comparisons: N/M >= 0.9 <=> 10*N >= 9*M.
foreach(folded "${prof_seq}" "${prof_par}")
  execute_process(
    COMMAND "${CLI_BIN}" proftop "${folded}" --by stage
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE proftop_stdout
    ERROR_VARIABLE proftop_stderr)
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
        "proftop --by stage exited with ${exit_code} on ${folded}\n"
        "stderr:\n${proftop_stderr}")
  endif()
  if(NOT proftop_stdout MATCHES
     "attributed ([0-9]+)/([0-9]+) samples")
    message(FATAL_ERROR
        "proftop printed no attribution line for ${folded}\n${proftop_stdout}")
  endif()
  math(EXPR attributed_x10 "${CMAKE_MATCH_1} * 10")
  math(EXPR total_x9 "${CMAKE_MATCH_2} * 9")
  if(attributed_x10 LESS total_x9)
    message(FATAL_ERROR
        "proftop attributed only ${CMAKE_MATCH_1}/${CMAKE_MATCH_2} samples "
        "to named spans (< 90%) for ${folded}\n${proftop_stdout}")
  endif()
endforeach()

# The sequential and --jobs 2 stage shares describe the same work, so they
# must agree within a loose tolerance on every stage holding >= 10% of
# either profile (sampling noise dominates below that).
execute_process(
  COMMAND "${CLI_BIN}" proftop "${prof_seq}" --by stage
          --compare "${prof_par}" --tolerance 0.40 --min_share 0.10
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE compare_stdout
  ERROR_VARIABLE compare_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "sequential vs --jobs 2 stage shares drifted (exit ${exit_code})\n"
      "stdout:\n${compare_stdout}\nstderr:\n${compare_stderr}")
endif()

message(STATUS
    "bench_smoke OK: profiled sequential + --jobs 2 runs, merged worker "
    "stacks, >= 90% span attribution, stage shares agree")

# ---------------------------------------------------------------------------
# Serve drill: the always-on daemon under closed-loop load, clean and under
# chaos. The clean run asserts every request succeeds and the cached probe
# is byte-identical; the chaos run (crash failpoints in the cell workers)
# asserts every request still terminates definitely. Both runs end in a
# SIGTERM drain that must flush daemon metrics durably.

file(REMOVE "${WORK_DIR}/BENCH_serve.json"
     "${WORK_DIR}/bench_serve_daemon_metrics.json")
execute_process(
  COMMAND "${SERVE_BIN}" --scale 0.25
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE serve_stdout
  ERROR_VARIABLE serve_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "clean serve bench exited with ${exit_code}\n"
      "stdout:\n${serve_stdout}\nstderr:\n${serve_stderr}")
endif()
if(NOT serve_stdout MATCHES "serve bench OK")
  message(FATAL_ERROR
      "clean serve bench did not report OK:\n${serve_stdout}")
endif()
foreach(artifact "BENCH_serve.json" "bench_serve_daemon_metrics.json")
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "serve bench left no ${artifact}")
  endif()
endforeach()
file(READ "${WORK_DIR}/bench_serve_daemon_metrics.json" drain_metrics)
foreach(metric
    "fairem.serve.requests_total"
    "fairem.serve.requests_ok"
    "fairem.serve.shutdowns")
  if(NOT drain_metrics MATCHES "\"${metric}\"")
    message(FATAL_ERROR
        "durable drain metrics are missing ${metric}:\n${drain_metrics}")
  endif()
endforeach()

# Client-observed p95 gate. Self-diff: the absolute threshold applies to
# the NEW value, so gating a file against itself still catches a slow run.
execute_process(
  COMMAND "${CLI_BIN}" benchdiff
          "${WORK_DIR}/BENCH_serve.json" "${WORK_DIR}/BENCH_serve.json"
          --fail_on "fairem.serve.client.latency_seconds.p95>15.0abs"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE diff_stdout
  ERROR_VARIABLE diff_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "serve client p95 latency gate failed (exit ${exit_code})\n"
      "stdout:\n${diff_stdout}\nstderr:\n${diff_stderr}")
endif()

# Chaos: every other cell computation crashes its worker mid-flight; the
# respawn budget and deadline watchdog must still give every client a
# definite answer, and the post-load probe must match the clean payload
# shape byte-for-byte across retries (asserted inside the bench).
execute_process(
  COMMAND "${SERVE_BIN}" --scale 0.25 --failpoints "grid_cell=crash(0.5)"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE chaos_stdout
  ERROR_VARIABLE chaos_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "chaos serve bench exited with ${exit_code}\n"
      "stdout:\n${chaos_stdout}\nstderr:\n${chaos_stderr}")
endif()
if(NOT chaos_stdout MATCHES "serve bench OK")
  message(FATAL_ERROR
      "chaos serve bench did not report OK:\n${chaos_stdout}")
endif()

message(STATUS
    "bench_smoke OK: serve daemon survived clean + chaos load, p95 gated, "
    "drain metrics durable")

# ---------------------------------------------------------------------------
# Route drill (DESIGN.md §15): the same closed loop against a 3-backend
# fleet behind the shard router. One backend is SIGKILLed as the load opens
# and restarted after it: the bench itself asserts zero client-visible
# failures, byte-identity with a direct daemon answer, and that the corpse
# rejoins without a router restart; here we additionally gate the router's
# durable drain metrics and the client p95 with `fairem benchdiff`.

file(REMOVE "${WORK_DIR}/BENCH_serve_route.json"
     "${WORK_DIR}/bench_route_daemon_metrics.json")
execute_process(
  COMMAND "${SERVE_BIN}" --route --scale 0.25
          --checkpoint_dir "${WORK_DIR}/route_ckpt"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE route_stdout
  ERROR_VARIABLE route_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "route bench exited with ${exit_code}\n"
      "stdout:\n${route_stdout}\nstderr:\n${route_stderr}")
endif()
if(NOT route_stdout MATCHES "serve bench OK")
  message(FATAL_ERROR
      "route bench did not report OK:\n${route_stdout}")
endif()
foreach(artifact "BENCH_serve_route.json" "bench_route_daemon_metrics.json")
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "route bench left no ${artifact}")
  endif()
endforeach()
file(READ "${WORK_DIR}/bench_route_daemon_metrics.json" route_metrics)
foreach(metric
    "fairem.route.queries_total"
    "fairem.route.failovers"
    "fairem.route.shutdowns")
  if(NOT route_metrics MATCHES "\"${metric}\"")
    message(FATAL_ERROR
        "durable route drain metrics are missing ${metric}:\n"
        "${route_metrics}")
  endif()
endforeach()

# Losing a fleet member must stay invisible to clients: failed_queries in
# the router's own drain snapshot has to be exactly zero. Self-diff: the
# absolute threshold applies to the NEW value.
execute_process(
  COMMAND "${CLI_BIN}" benchdiff
          "${WORK_DIR}/bench_route_daemon_metrics.json"
          "${WORK_DIR}/bench_route_daemon_metrics.json"
          --fail_on "fairem.route.failed_queries>0.5abs"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE diff_stdout
  ERROR_VARIABLE diff_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "route failed_queries gate failed (exit ${exit_code})\n"
      "stdout:\n${diff_stdout}\nstderr:\n${diff_stderr}")
endif()

# And the client-observed p95 through the router stays bounded even with a
# backend dying mid-run — hedging and failover, not timeouts, absorb it.
execute_process(
  COMMAND "${CLI_BIN}" benchdiff
          "${WORK_DIR}/BENCH_serve_route.json"
          "${WORK_DIR}/BENCH_serve_route.json"
          --fail_on "fairem.serve.client.latency_seconds.p95>15.0abs"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE diff_stdout
  ERROR_VARIABLE diff_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "route client p95 latency gate failed (exit ${exit_code})\n"
      "stdout:\n${diff_stdout}\nstderr:\n${diff_stderr}")
endif()

message(STATUS
    "bench_smoke OK: shard router absorbed a mid-load backend SIGKILL with "
    "zero client-visible failures, rejoin verified, p95 gated")

# ---------------------------------------------------------------------------
# Tracing drill (DESIGN.md §16): the routed drill again with distributed
# tracing on. Two runs share the route drill's checkpoint dir (so cell
# computes are cached and p95 measures serving overhead, not recompute
# noise):
#   1. clean — gates the cost of tracing: client p95 with tracing on must
#      stay within 1.10x of the tracing-off route run above;
#   2. chaos (worker crashes + the drill's own backend SIGKILL) — gates
#      trace completeness: >= 95% of OK cell queries must still carry a
#      full router+daemon hop timeline, and the slow-query log the fleet
#      wrote must render through `fairem slowlog` and `fairem tracetop`.

file(REMOVE "${WORK_DIR}/BENCH_serve_route_trace.json"
     "${WORK_DIR}/bench_serve_slow.jsonl")
execute_process(
  COMMAND "${SERVE_BIN}" --route --trace --scale 0.25
          --checkpoint_dir "${WORK_DIR}/route_ckpt"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE trace_stdout
  ERROR_VARIABLE trace_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "trace route bench exited with ${exit_code}\n"
      "stdout:\n${trace_stdout}\nstderr:\n${trace_stderr}")
endif()
if(NOT trace_stdout MATCHES "serve bench OK")
  message(FATAL_ERROR
      "trace route bench did not report OK:\n${trace_stdout}")
endif()
if(NOT EXISTS "${WORK_DIR}/BENCH_serve_route_trace.json")
  message(FATAL_ERROR "trace route bench left no BENCH_serve_route_trace.json")
endif()

# Tracing must be close to free: tracing-on p95 within 1.10x of the
# tracing-off route run (same drill shape, same warmed checkpoints), and
# even the clean run must deliver complete hop timelines.
execute_process(
  COMMAND "${CLI_BIN}" benchdiff
          "${WORK_DIR}/BENCH_serve_route.json"
          "${WORK_DIR}/BENCH_serve_route_trace.json"
          --fail_on "fairem.serve.client.latency_seconds.p95>1.10x"
          --fail_on "fairem.serve.trace.completeness_ratio<0.95abs"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE diff_stdout
  ERROR_VARIABLE diff_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "tracing overhead / completeness gate failed (exit ${exit_code})\n"
      "stdout:\n${diff_stdout}\nstderr:\n${diff_stderr}")
endif()

# Chaos run: worker crashes on top of the backend SIGKILL. Retries,
# failovers, and hedges all still stitch into one timeline per query —
# completeness stays gated at 0.95.
execute_process(
  COMMAND "${SERVE_BIN}" --route --trace --scale 0.25
          --checkpoint_dir "${WORK_DIR}/route_ckpt"
          --failpoints "grid_cell=crash(0.5)"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE trace_chaos_stdout
  ERROR_VARIABLE trace_chaos_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "chaos trace route bench exited with ${exit_code}\n"
      "stdout:\n${trace_chaos_stdout}\nstderr:\n${trace_chaos_stderr}")
endif()
if(NOT trace_chaos_stdout MATCHES "serve bench OK")
  message(FATAL_ERROR
      "chaos trace route bench did not report OK:\n${trace_chaos_stdout}")
endif()
execute_process(
  COMMAND "${CLI_BIN}" benchdiff
          "${WORK_DIR}/BENCH_serve_route_trace.json"
          "${WORK_DIR}/BENCH_serve_route_trace.json"
          --fail_on "fairem.serve.trace.completeness_ratio<0.95abs"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE diff_stdout
  ERROR_VARIABLE diff_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "chaos trace completeness gate failed (exit ${exit_code})\n"
      "stdout:\n${diff_stdout}\nstderr:\n${diff_stderr}")
endif()

# The fleet (router + backends, 1 ms threshold) must have left a
# span-carrying slow-query log that both renderers consume cleanly.
if(NOT EXISTS "${WORK_DIR}/bench_serve_slow.jsonl")
  message(FATAL_ERROR "trace route bench left no bench_serve_slow.jsonl")
endif()
execute_process(
  COMMAND "${CLI_BIN}" slowlog "${WORK_DIR}/bench_serve_slow.jsonl"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE slowlog_stdout
  ERROR_VARIABLE slowlog_stderr)
if(NOT exit_code EQUAL 0 OR NOT slowlog_stdout MATCHES "slow quer")
  message(FATAL_ERROR
      "fairem slowlog could not render the slow-query log "
      "(exit ${exit_code})\n"
      "stdout:\n${slowlog_stdout}\nstderr:\n${slowlog_stderr}")
endif()
execute_process(
  COMMAND "${CLI_BIN}" tracetop "${WORK_DIR}/bench_serve_slow.jsonl"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE tracetop_stdout
  ERROR_VARIABLE tracetop_stderr)
if(NOT exit_code EQUAL 0 OR NOT tracetop_stdout MATCHES "critical path")
  message(FATAL_ERROR
      "fairem tracetop could not summarize the slow-query log "
      "(exit ${exit_code})\n"
      "stdout:\n${tracetop_stdout}\nstderr:\n${tracetop_stderr}")
endif()

message(STATUS
    "bench_smoke OK: distributed tracing added <= 1.10x p95 overhead, "
    ">= 95% of routed queries kept complete hop timelines under chaos, "
    "and the slow-query log rendered through slowlog + tracetop")

# ---------------------------------------------------------------------------
# SIMD drill (DESIGN.md §17): the vectorized similarity kernels against
# their scalar seed baseline. FAIREM_SIMD=off routes every kernel through
# the original per-call scalar code and skips token interning entirely, so
# the off-run is the honest pre-optimization baseline, not a detuned
# vector path. Three checks:
#   1. determinism — the micro bench's per-drill checksums (its entire
#      stdout) and both grid benches' reports must be byte-identical across
#      dispatch modes;
#   2. telemetry — the SIMD run's snapshot must carry the
#      fairem.simd.{dispatch_level,kernel_calls,scratch_reuses} metrics;
#   3. speedup — on hosts that dispatch at SSE4.2 or better, `fairem
#      benchdiff` gates the vectorized kernels: >= ~3x on long-string
#      Levenshtein and q-gram set intersections (mean ratio <= 0.34), with
#      softer regression guards on the overhead-bound short-string drills.

if(NOT DEFINED MICRO_BIN)
  return()
endif()

set(simd_scalar_metrics "${WORK_DIR}/bench_smoke_simd_scalar.json")
set(simd_vector_metrics "${WORK_DIR}/bench_smoke_simd_vector.json")
file(REMOVE "${simd_scalar_metrics}" "${simd_vector_metrics}")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env FAIREM_SIMD=off
          "${MICRO_BIN}" --reps 5 --metrics_out "${simd_scalar_metrics}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE micro_scalar_stdout
  ERROR_VARIABLE micro_scalar_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "FAIREM_SIMD=off micro bench exited with ${exit_code}\n"
      "stderr:\n${micro_scalar_stderr}")
endif()

execute_process(
  COMMAND "${MICRO_BIN}" --reps 5 --metrics_out "${simd_vector_metrics}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE micro_vector_stdout
  ERROR_VARIABLE micro_vector_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "micro bench exited with ${exit_code}\n"
      "stderr:\n${micro_vector_stderr}")
endif()

# 1a. The micro bench prints one "BENCHVAL <drill> <%.17g checksum>" line
# per drill and nothing else on stdout; a single flipped double bit in any
# kernel shows up here.
if(NOT micro_vector_stdout STREQUAL micro_scalar_stdout)
  message(FATAL_ERROR
      "SIMD kernels diverge from the scalar baseline\n"
      "--- FAIREM_SIMD=off ---\n${micro_scalar_stdout}\n"
      "--- vectorized ---\n${micro_vector_stdout}")
endif()
if(NOT micro_vector_stdout MATCHES "BENCHVAL lev_long ")
  message(FATAL_ERROR
      "micro bench printed no checksum lines:\n${micro_vector_stdout}")
endif()

# 1b. Both grid benches' full reports, FAIREM_SIMD=off vs the SIMD-on
# baselines captured earlier in this script.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env FAIREM_SIMD=off
          "${GRID_BIN}" --scale 0.25
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE grid_scalar_stdout
  ERROR_VARIABLE grid_scalar_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "FAIREM_SIMD=off grid bench exited with ${exit_code}\n"
      "stderr:\n${grid_scalar_stderr}")
endif()
if(NOT grid_scalar_stdout STREQUAL baseline_stdout)
  message(FATAL_ERROR
      "FAIREM_SIMD=off grid report differs from the SIMD-on run\n"
      "--- SIMD on ---\n${baseline_stdout}\n"
      "--- FAIREM_SIMD=off ---\n${grid_scalar_stdout}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env FAIREM_SIMD=off
          "${PROF_BIN}" --scale 0.25
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE prof_scalar_stdout
  ERROR_VARIABLE prof_scalar_stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "FAIREM_SIMD=off second grid bench exited with ${exit_code}\n"
      "stderr:\n${prof_scalar_stderr}")
endif()
if(NOT prof_scalar_stdout STREQUAL prof_seq_stdout)
  message(FATAL_ERROR
      "FAIREM_SIMD=off second grid report differs from the SIMD-on run\n"
      "--- SIMD on ---\n${prof_seq_stdout}\n"
      "--- FAIREM_SIMD=off ---\n${prof_scalar_stdout}")
endif()

# 2. The vectorized run must surface its dispatch telemetry.
file(READ "${simd_vector_metrics}" simd_snapshot)
foreach(key
    "fairem.simd.dispatch_level"
    "fairem.simd.kernel_calls"
    "fairem.simd.scratch_reuses")
  if(NOT simd_snapshot MATCHES "\"${key}\"")
    message(FATAL_ERROR
        "SIMD metrics snapshot is missing ${key}:\n${simd_snapshot}")
  endif()
endforeach()

# 3. Speedup gates, only where the hardware actually dispatches a vector
# tier (level >= 2 is SSE4.2; 0 would mean the escape hatch, 1 the portable
# bit-parallel path on non-x86 hosts — still byte-checked above).
string(REGEX MATCH "\"fairem\\.simd\\.dispatch_level\": ([0-9]+)"
       _ "${simd_snapshot}")
set(dispatch_level "${CMAKE_MATCH_1}")
if(dispatch_level GREATER_EQUAL 2)
  execute_process(
    COMMAND "${CLI_BIN}" benchdiff
            "${simd_scalar_metrics}" "${simd_vector_metrics}"
            --fail_on "fairem.bench.micro.lev_long_seconds.mean>0.34x"
            --fail_on "fairem.bench.micro.token_qgram_seconds.mean>0.34x"
            --fail_on "fairem.bench.micro.token_word_seconds.mean>0.45x"
            --fail_on "fairem.bench.micro.lev_short_seconds.mean>0.60x"
            --fail_on "fairem.bench.micro.all_measures_seconds.mean>1.10x"
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE simd_diff_stdout
    ERROR_VARIABLE simd_diff_stderr)
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
        "vectorized kernels missed their speedup gates at dispatch level "
        "${dispatch_level}\n"
        "stdout:\n${simd_diff_stdout}\nstderr:\n${simd_diff_stderr}")
  endif()
  message(STATUS
      "bench_smoke OK: SIMD kernels byte-identical to scalar on the micro "
      "checksums + both grid reports, speedup gates cleared at dispatch "
      "level ${dispatch_level}")
else()
  message(STATUS
      "bench_smoke: dispatch level ${dispatch_level} (< SSE4.2); SIMD "
      "byte-identity verified, speedup gates skipped")
endif()
