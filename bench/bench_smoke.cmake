# Smoke test for the bench observability path: runs a small bench with
# --metrics_out and fails if the binary errors, the snapshot is missing, or
# the snapshot lacks the pipeline counters it must contain.
#
# Invoked by CTest as:
#   cmake -DBENCH_BIN=<path> -DWORK_DIR=<dir> -P bench_smoke.cmake

if(NOT DEFINED BENCH_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "bench_smoke.cmake requires -DBENCH_BIN and -DWORK_DIR")
endif()

set(metrics_file "${WORK_DIR}/bench_smoke_metrics.json")
file(REMOVE "${metrics_file}")

execute_process(
  COMMAND "${BENCH_BIN}" --scale 0.25 --metrics_out "${metrics_file}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE bench_stdout
  ERROR_VARIABLE bench_stderr)

if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
      "bench exited with ${exit_code}\nstdout:\n${bench_stdout}\n"
      "stderr:\n${bench_stderr}")
endif()

if(NOT EXISTS "${metrics_file}")
  message(FATAL_ERROR "--metrics_out produced no file at ${metrics_file}")
endif()

file(READ "${metrics_file}" snapshot)

if(snapshot STREQUAL "")
  message(FATAL_ERROR "metrics snapshot is empty")
endif()

# An all-empty registry means the bench ran without touching any counters —
# the instrumentation is broken even if the run "succeeded".
string(REGEX REPLACE "[ \t\r\n]" "" compact "${snapshot}")
if(compact MATCHES "\"counters\":{}")
  message(FATAL_ERROR "metrics snapshot has no counters:\n${snapshot}")
endif()

foreach(key
    "fairem.datagen.datasets_generated"
    "fairem.block.candidates"
    "fairem.block.calls")
  if(NOT snapshot MATCHES "\"${key}\"")
    message(FATAL_ERROR
        "metrics snapshot is missing expected key ${key}:\n${snapshot}")
  endif()
endforeach()

message(STATUS "bench_smoke OK: snapshot at ${metrics_file} has all keys")
