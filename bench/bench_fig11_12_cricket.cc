// Reproduces Figures 11 and 12: Cricket single and pairwise grids over
// batting style. The dataset is 96.5% positive (negative imbalance), so
// NPVP/FPRP are the informative measures; the abbreviated left-handed
// profiles drive FN-based unfairness that propagates to the
// Left Handed | Left Handed pairwise cell (§5.3.2).

#include "bench/grid_bench_common.h"
#include "src/harness/bench_flags.h"

int main(int argc, char** argv) {
  return fairem::RunGridBench(fairem::DatasetKind::kCricket,
                              "Figure 11: Cricket single fairness",
                              "Figure 12: Cricket pairwise fairness",
                              fairem::ParseBenchFlags(argc, argv));
}
