// Reproduces Figures 2 and 3: the unfairness grids (measure x group, cells
// = markers of unfair matchers) for the two social datasets under single
// fairness. Because race/country are disjoint binary attributes, single
// and pairwise results coincide (§5.2.1), so only single fairness is shown.

#include <iostream>

#include "src/datagen/benchmark_suite.h"
#include "src/harness/bench_flags.h"
#include "src/harness/experiment.h"

namespace fairem {
namespace {

int Run(const BenchFlags& flags) {
  for (DatasetKind kind :
       {DatasetKind::kNoFlyCompas, DatasetKind::kFacultyMatch}) {
    Result<EMDataset> dataset = GenerateDataset(kind, flags.scale, flags.seed_offset);
    if (!dataset.ok()) {
      std::cerr << dataset.status() << "\n";
      return 1;
    }
    // The paper flags the social matchers with division disparity against
    // the *other* group (the bolding in Tables 5/6 matches div > 0.2 with
    // the between-group reference, e.g. Ditto FDR div 0.41 bold,
    // DeepMatcher 0.11 not bold).
    AuditOptions options;
    options.mode = DisparityMode::kDivision;
    options.reference = AuditReference::kComplement;
    Result<std::string> grid = UnfairnessGridReport(*dataset, false, options);
    if (!grid.ok()) {
      std::cerr << grid.status() << "\n";
      return 1;
    }
    std::cout << "== "
              << (kind == DatasetKind::kNoFlyCompas
                      ? "Figure 2: NoFlyCompas"
                      : "Figure 3: FacultyMatch")
              << " — unfair matchers per (measure, group) ==\n"
              << (grid->empty() ? "(no unfair cells)\n" : *grid) << "\n";
  }
  std::cout << "markers: BR BooleanRule, DD Dedupe, DT/SV/RF/LO/LI/NB "
               "Magellan classifiers, DM DeepMatcher, DI Ditto, GN GNEM, "
               "HM HierMatcher, MC MCAN\n";
  return 0;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) {
  return fairem::Run(fairem::ParseBenchFlags(argc, argv));
}
