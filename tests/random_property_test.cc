// Randomized (seeded) property tests across module boundaries: CSV
// round-trips of arbitrary tables, audit count conservation over random
// outcome sets, and disparity invariants over random statistics.

#include <gtest/gtest.h>

#include "src/core/audit.h"
#include "src/data/csv.h"
#include "src/util/rng.h"

namespace fairem {
namespace {

std::string RandomCell(Rng* rng) {
  // Bias toward the characters that stress CSV quoting.
  static const char* kAtoms[] = {"a", "b", ",", "\"", "\n", " ", "xyz", "7"};
  std::string out;
  int len = static_cast<int>(rng->NextBounded(8));
  for (int i = 0; i < len; ++i) {
    out += kAtoms[rng->NextBounded(std::size(kAtoms))];
  }
  return out;
}

TEST(RandomPropertyTest, CsvRoundTripsRandomTables) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    size_t cols = 1 + rng.NextBounded(5);
    std::vector<std::string> names;
    for (size_t c = 0; c < cols; ++c) {
      names.push_back("col" + std::to_string(c));
    }
    Table table("random", std::move(Schema::Make(names)).value());
    size_t rows = rng.NextBounded(20);
    for (size_t r = 0; r < rows; ++r) {
      Record record;
      record.entity_id = static_cast<int64_t>(rng.NextBounded(1000));
      for (size_t c = 0; c < cols; ++c) {
        if (rng.NextBool(0.15)) {
          record.cells.emplace_back(std::nullopt);
        } else {
          record.cells.emplace_back(RandomCell(&rng));
        }
      }
      ASSERT_TRUE(table.Append(std::move(record)).ok());
    }
    Result<Table> parsed =
        ReadCsvString(WriteCsvString(table), "random");
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": " << parsed.status();
    ASSERT_EQ(parsed->num_rows(), table.num_rows()) << "seed " << seed;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      EXPECT_EQ(parsed->row(r).entity_id, table.row(r).entity_id);
      for (size_t c = 0; c < cols; ++c) {
        EXPECT_EQ(parsed->IsNull(r, c), table.IsNull(r, c))
            << "seed " << seed << " cell " << r << "," << c;
        EXPECT_EQ(parsed->value(r, c), table.value(r, c))
            << "seed " << seed << " cell " << r << "," << c;
      }
    }
  }
}

TEST(RandomPropertyTest, GroupAndComplementAlwaysPartition) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed);
    Schema schema = std::move(Schema::Make({"grp"})).value();
    Table a("a", schema);
    Table b("b", schema);
    const char* groups[] = {"g0", "g1", "g2"};
    size_t n = 10 + rng.NextBounded(30);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(
          a.AppendValues(static_cast<int64_t>(i),
                         {groups[rng.NextBounded(3)]}).ok());
      ASSERT_TRUE(
          b.AppendValues(static_cast<int64_t>(i),
                         {groups[rng.NextBounded(3)]}).ok());
    }
    SensitiveAttr attr{"grp", SensitiveAttrKind::kMultiValued, '|'};
    GroupMembership membership =
        std::move(GroupMembership::Make(a, b, attr)).value();
    std::vector<PairOutcome> outcomes;
    size_t pairs = rng.NextBounded(200);
    for (size_t p = 0; p < pairs; ++p) {
      outcomes.push_back({rng.NextBounded(n), rng.NextBounded(n),
                          rng.NextBool(0.5), rng.NextBool(0.3)});
    }
    ConfusionCounts overall = OverallCounts(outcomes);
    for (const char* g : groups) {
      Result<uint64_t> mask = membership.encoding().Encode({g});
      if (!mask.ok()) continue;  // group absent from this random draw
      ConfusionCounts in = SingleGroupCounts(membership, outcomes, *mask);
      ConfusionCounts out =
          SingleGroupComplementCounts(membership, outcomes, *mask);
      EXPECT_EQ(in.tp + out.tp, overall.tp) << "seed " << seed;
      EXPECT_EQ(in.fp + out.fp, overall.fp) << "seed " << seed;
      EXPECT_EQ(in.tn + out.tn, overall.tn) << "seed " << seed;
      EXPECT_EQ(in.fn + out.fn, overall.fn) << "seed " << seed;
      // Ordered sides never exceed the non-directional count.
      ConfusionCounts left = OrderedSingleGroupCounts(
          membership, outcomes, *mask, PairSide::kLeft);
      ConfusionCounts right = OrderedSingleGroupCounts(
          membership, outcomes, *mask, PairSide::kRight);
      EXPECT_LE(left.total(), in.total());
      EXPECT_LE(right.total(), in.total());
    }
  }
}

TEST(RandomPropertyTest, AuditNeverFlagsBelowThreshold) {
  // Over random confusion matrices, every flagged entry must actually
  // exceed both the disparity threshold and the absolute gap.
  Rng rng(99);
  AuditOptions options;
  options.min_group_pairs = 1;
  for (int trial = 0; trial < 300; ++trial) {
    ConfusionCounts overall;
    overall.tp = static_cast<int64_t>(rng.NextBounded(50));
    overall.fp = static_cast<int64_t>(rng.NextBounded(50));
    overall.tn = static_cast<int64_t>(rng.NextBounded(50));
    overall.fn = static_cast<int64_t>(rng.NextBounded(50));
    ConfusionCounts group;
    group.tp = static_cast<int64_t>(rng.NextBounded(20));
    group.fp = static_cast<int64_t>(rng.NextBounded(20));
    group.tn = static_cast<int64_t>(rng.NextBounded(20));
    group.fn = static_cast<int64_t>(rng.NextBounded(20));
    std::vector<AuditEntry> entries;
    AppendMeasureEntries("g", overall, group, options, &entries);
    for (const auto& e : entries) {
      if (!e.unfair) continue;
      EXPECT_GT(e.disparity, options.fairness_threshold);
      EXPECT_TRUE(e.defined);
      EXPECT_DOUBLE_EQ(e.disparity, std::max(0.0, e.signed_disparity));
    }
  }
}

}  // namespace
}  // namespace fairem
