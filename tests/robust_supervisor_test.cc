#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"
#include "src/obs/metrics.h"
#include "src/robust/checkpoint.h"
#include "src/robust/failpoint.h"
#include "src/robust/retry.h"
#include "src/robust/supervisor.h"

namespace fairem {
namespace {

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name)->value();
}

/// Disarms failpoints and restores the real retry sleep when a test exits,
/// even on assertion failure — both are process-global.
class RobustGuard {
 public:
  RobustGuard() { FailpointRegistry::Global().Clear(); }
  ~RobustGuard() {
    FailpointRegistry::Global().Clear();
    SetRetrySleepFnForTest(nullptr);
  }
};

std::string FreshTempDir(const std::string& leaf) {
  std::string dir = ::testing::TempDir() + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Supervisor unit tests: closure tasks in forked workers.

TEST(SupervisorTest, ParallelTasksReturnInTaskOrder) {
  SupervisorOptions opts;
  opts.jobs = 4;
  Supervisor supervisor(opts);
  std::vector<Supervisor::Task> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back({"task-" + std::to_string(i),
                     [i]() -> Result<std::string> {
                       return "payload-" + std::to_string(i);
                     }});
  }
  uint64_t spawned_before = CounterValue("fairem.supervisor.workers_spawned");
  std::vector<TaskOutcome> outcomes =
      std::move(supervisor.Run(tasks)).value();
  ASSERT_EQ(outcomes.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(outcomes[i].kind, TaskOutcome::Kind::kOk) << i;
    EXPECT_EQ(outcomes[i].payload, "payload-" + std::to_string(i)) << i;
    EXPECT_EQ(outcomes[i].attempts, 1) << i;
    EXPECT_GT(outcomes[i].peak_rss_mb, 0.0) << i;
  }
  EXPECT_EQ(CounterValue("fairem.supervisor.workers_spawned") - spawned_before,
            6u);
}

TEST(SupervisorTest, CrashIsContainedAndRespawnSucceeds) {
  // The first attempt aborts after dropping a marker file; the respawn sees
  // the marker and succeeds — worker crashes never take down the supervisor.
  std::string dir = FreshTempDir("fairem_sup_crash_once");
  std::filesystem::create_directories(dir);
  std::string marker = dir + "/crashed_once";
  SupervisorOptions opts;
  opts.max_attempts = 3;
  Supervisor supervisor(opts);
  uint64_t crashed_before = CounterValue("fairem.supervisor.tasks_crashed");
  uint64_t respawns_before = CounterValue("fairem.supervisor.respawns");
  std::vector<Supervisor::Task> tasks{
      {"crash-once", [marker]() -> Result<std::string> {
         if (!std::filesystem::exists(marker)) {
           std::ofstream(marker) << "x";
           std::abort();
         }
         return std::string("recovered");
       }}};
  std::vector<TaskOutcome> outcomes =
      std::move(supervisor.Run(tasks)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, TaskOutcome::Kind::kOk);
  EXPECT_EQ(outcomes[0].payload, "recovered");
  EXPECT_EQ(outcomes[0].attempts, 2);
  EXPECT_EQ(CounterValue("fairem.supervisor.tasks_crashed") - crashed_before,
            0u);  // the task recovered, so it is not counted as crashed
  EXPECT_EQ(CounterValue("fairem.supervisor.respawns") - respawns_before, 1u);
}

TEST(SupervisorTest, HangIsKilledAtWatchdogDeadline) {
  SupervisorOptions opts;
  opts.cell_timeout_s = 0.3;
  opts.max_attempts = 1;
  Supervisor supervisor(opts);
  uint64_t kills_before = CounterValue("fairem.supervisor.watchdog_kills");
  auto start = std::chrono::steady_clock::now();
  std::vector<Supervisor::Task> tasks{
      {"hang", []() -> Result<std::string> {
         for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
       }}};
  std::vector<TaskOutcome> outcomes =
      std::move(supervisor.Run(tasks)).value();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, TaskOutcome::Kind::kTimedOut);
  EXPECT_NE(outcomes[0].status.ToString().find("watchdog"),
            std::string::npos);
  // Bounded: the forever-hang was killed close to the 0.3s deadline, not
  // left to run.
  EXPECT_LT(elapsed, 30.0);
  EXPECT_GE(CounterValue("fairem.supervisor.watchdog_kills") - kills_before,
            1u);
}

TEST(SupervisorTest, NonRetryableTaskErrorFailsWithoutRespawn) {
  SupervisorOptions opts;
  opts.max_attempts = 3;
  Supervisor supervisor(opts);
  std::vector<Supervisor::Task> tasks{
      {"bad-input", []() -> Result<std::string> {
         return Status::InvalidArgument("bad cell spec");
       }}};
  std::vector<TaskOutcome> outcomes =
      std::move(supervisor.Run(tasks)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, TaskOutcome::Kind::kFailed);
  EXPECT_EQ(outcomes[0].attempts, 1);
  // The worker ships its Status back over the pipe: code and message both
  // survive the process boundary.
  EXPECT_TRUE(outcomes[0].status.IsInvalidArgument());
  EXPECT_NE(outcomes[0].status.ToString().find("bad cell spec"),
            std::string::npos);
}

TEST(SupervisorTest, RetryableTaskErrorConsumesRespawnBudget) {
  SupervisorOptions opts;
  opts.max_attempts = 2;
  Supervisor supervisor(opts);
  std::vector<Supervisor::Task> tasks{
      {"always-down", []() -> Result<std::string> {
         return Status::Internal("transient but never heals");
       }}};
  std::vector<TaskOutcome> outcomes =
      std::move(supervisor.Run(tasks)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, TaskOutcome::Kind::kFailed);
  EXPECT_EQ(outcomes[0].attempts, 2);
  EXPECT_EQ(outcomes[0].status.code(), StatusCode::kInternal);
}

TEST(SupervisorTest, LargePayloadSurvivesThePipe) {
  // 1 MiB payload — far past the kernel pipe buffer, so this only passes if
  // the supervisor drains the pipe while the worker is still writing.
  const size_t kSize = 1 << 20;
  Supervisor supervisor({});
  std::vector<Supervisor::Task> tasks{
      {"big", [kSize]() -> Result<std::string> {
         std::string payload(kSize, 'x');
         for (size_t i = 0; i < payload.size(); i += 4096) {
           payload[i] = static_cast<char>('a' + (i / 4096) % 26);
         }
         return payload;
       }}};
  std::vector<TaskOutcome> outcomes =
      std::move(supervisor.Run(tasks)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_EQ(outcomes[0].kind, TaskOutcome::Kind::kOk);
  ASSERT_EQ(outcomes[0].payload.size(), kSize);
  for (size_t i = 0; i < kSize; i += 4096) {
    ASSERT_EQ(outcomes[0].payload[i],
              static_cast<char>('a' + (i / 4096) % 26));
  }
}

TEST(SupervisorTest, AddressSpaceLimitContainsRunawayWorker) {
  SupervisorOptions opts;
  opts.cell_max_rss_mb = 256;
  opts.max_attempts = 1;
  Supervisor supervisor(opts);
  std::vector<Supervisor::Task> tasks{
      {"oom", []() -> Result<std::string> {
         // Try to allocate ~1 GiB in 64 MiB strides, touching every page so
         // the memory is really committed; RLIMIT_AS makes this die long
         // before completion.
         std::vector<char*> chunks;
         for (int i = 0; i < 16; ++i) {
           char* chunk = new char[64 << 20];
           for (size_t off = 0; off < (64u << 20); off += 4096) {
             chunk[off] = 1;
           }
           chunks.push_back(chunk);
         }
         return std::string("allocated everything?!");
       }}};
  std::vector<TaskOutcome> outcomes =
      std::move(supervisor.Run(tasks)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  // bad_alloc in the worker → abort → contained as a crash, never an
  // allocation failure in the supervisor process.
  EXPECT_EQ(outcomes[0].kind, TaskOutcome::Kind::kCrashed);
}

TEST(SupervisorTest, EmptyTaskListIsANoOp) {
  Supervisor supervisor({});
  std::vector<TaskOutcome> outcomes =
      std::move(supervisor.Run({})).value();
  EXPECT_TRUE(outcomes.empty());
}

// ---------------------------------------------------------------------------
// Cooperative shutdown.

TEST(ShutdownGuardTest, LatchesSignalAndFreshGuardClears) {
  {
    ShutdownGuard guard;
    EXPECT_FALSE(ShutdownGuard::requested());
    std::raise(SIGTERM);  // caught by the guard's handler, latched
    EXPECT_TRUE(ShutdownGuard::requested());
    EXPECT_EQ(ShutdownGuard::signal_number(), SIGTERM);
  }
  // A new guard re-arms and clears the previous latch.
  ShutdownGuard fresh;
  EXPECT_FALSE(ShutdownGuard::requested());
  EXPECT_EQ(InterruptExitCode(SIGTERM), 143);
  EXPECT_EQ(InterruptExitCode(SIGINT), 130);
}

TEST(ShutdownGuardTest, PendingShutdownCancelsSupervisedRun) {
  ShutdownGuard guard;
  std::raise(SIGINT);
  ASSERT_TRUE(ShutdownGuard::requested());
  uint64_t shutdowns_before = CounterValue("fairem.supervisor.shutdowns");
  Supervisor supervisor({});
  std::vector<Supervisor::Task> tasks{
      {"never-runs",
       []() -> Result<std::string> { return std::string("unreachable"); }}};
  Result<std::vector<TaskOutcome>> r = supervisor.Run(tasks);
  EXPECT_TRUE(r.status().IsCancelled());
  EXPECT_EQ(CounterValue("fairem.supervisor.shutdowns") - shutdowns_before,
            1u);
  ShutdownGuard clear_latch_for_later_tests;
}

// ---------------------------------------------------------------------------
// Checkpoint durability.

TEST(CheckpointDurabilityTest, SaveCreatesMissingNestedDirsAndFsyncs) {
  std::string root = FreshTempDir("fairem_ckpt_durable");
  // The directory — including parents — does not exist yet; Save must
  // create it rather than fail.
  CheckpointStore store(root + "/nested/deeper");
  ASSERT_FALSE(std::filesystem::exists(root));
  ASSERT_TRUE(store.Save("cell", "payload-v1").ok());
  EXPECT_EQ(std::move(store.Load("cell")).value(), "payload-v1");
  ASSERT_TRUE(store.Save("cell", "payload-v2").ok());
  EXPECT_EQ(std::move(store.Load("cell")).value(), "payload-v2");
  // The temp file was renamed away, not left behind.
  EXPECT_FALSE(std::filesystem::exists(store.PathFor("cell") + ".tmp"));
}

// ---------------------------------------------------------------------------
// Grid-level supervised runs. A small matcher subset keeps these fast.

std::vector<MatcherKind> SkipAllExcept(const std::vector<MatcherKind>& keep) {
  std::vector<MatcherKind> skip;
  for (MatcherKind kind : AllMatcherKinds()) {
    if (std::find(keep.begin(), keep.end(), kind) == keep.end()) {
      skip.push_back(kind);
    }
  }
  return skip;
}

GridRunOptions SmallGridOptions() {
  GridRunOptions options;
  options.audit.reference = AuditReference::kComplement;
  options.skip = SkipAllExcept(
      {MatcherKind::kDT, MatcherKind::kLogReg, MatcherKind::kNB,
       MatcherKind::kBooleanRule});
  return options;
}

TEST(SupervisedGridTest, ParallelReportIsByteIdenticalToSequential) {
  RobustGuard guard;
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.3)).value();
  GridRunOptions options = SmallGridOptions();
  std::string sequential =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  EXPECT_FALSE(sequential.empty());

  options.jobs = 4;
  std::string parallel =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  EXPECT_EQ(parallel, sequential);

  // Pairwise mode too — its grid has different columns.
  options.jobs = 1;
  std::string seq_pairwise =
      std::move(UnfairnessGridReport(ds, true, options)).value();
  options.jobs = 4;
  std::string par_pairwise =
      std::move(UnfairnessGridReport(ds, true, options)).value();
  EXPECT_EQ(par_pairwise, seq_pairwise);
}

TEST(SupervisedGridTest, HangFailpointIsKilledAndDegradesToErrorCell) {
  RobustGuard guard;
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.3)).value();
  GridRunOptions options = SmallGridOptions();
  options.jobs = 2;
  options.cell_timeout_s = 1.0;
  options.retry.max_attempts = 1;
  uint64_t timeouts_before = CounterValue("fairem.supervisor.tasks_timed_out");
  // The failpoint spec is inherited by the forked workers, so only the
  // NBMatcher worker hangs; the watchdog kills it and the grid degrades
  // that one cell.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Configure("matcher_fit.NBMatcher=hang(1)")
                  .ok());
  std::string report =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  FailpointRegistry::Global().Clear();
  EXPECT_NE(report.find("errors (cells unavailable after retries):"),
            std::string::npos);
  EXPECT_NE(report.find("NBMatcher:"), std::string::npos);
  EXPECT_NE(report.find("watchdog"), std::string::npos);
  EXPECT_EQ(
      CounterValue("fairem.supervisor.tasks_timed_out") - timeouts_before,
      1u);
}

TEST(SupervisedGridTest, CrashFailpointIsContainedAndRespawned) {
  RobustGuard guard;
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.3)).value();
  GridRunOptions options = SmallGridOptions();
  options.jobs = 2;
  options.retry.max_attempts = 2;
  uint64_t errors_before = CounterValue("fairem.robust.grid_error_cells");
  uint64_t respawns_before = CounterValue("fairem.supervisor.respawns");
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Configure("matcher_fit.NBMatcher=crash(1)")
                  .ok());
  std::string report =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  FailpointRegistry::Global().Clear();
  // The crashing worker was respawned once (budget 2) and then degraded;
  // the supervisor itself never died and the healthy cells rendered.
  EXPECT_EQ(CounterValue("fairem.robust.grid_error_cells") - errors_before,
            1u);
  EXPECT_EQ(CounterValue("fairem.supervisor.respawns") - respawns_before, 1u);
  EXPECT_NE(report.find("errors (cells unavailable after retries):"),
            std::string::npos);
  EXPECT_NE(report.find("NBMatcher:"), std::string::npos);
  EXPECT_NE(report.find("DT"), std::string::npos);
}

TEST(SupervisedGridTest, WorkerCheckpointsFeedASequentialResume) {
  RobustGuard guard;
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.3)).value();
  GridRunOptions options = SmallGridOptions();
  std::string baseline =
      std::move(UnfairnessGridReport(ds, false, options)).value();

  // Parallel run persists every cell from inside the workers...
  options.checkpoint_dir = FreshTempDir("fairem_ckpt_supervised");
  options.jobs = 4;
  std::string parallel =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  EXPECT_EQ(parallel, baseline);

  // ...and a later sequential run replays them instead of recomputing: a
  // certain fit failure proves no cell actually re-ran.
  options.jobs = 1;
  uint64_t loaded_before =
      CounterValue("fairem.robust.checkpoint_cells_loaded");
  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("matcher_fit=error(1)").ok());
  std::string resumed =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  FailpointRegistry::Global().Clear();
  EXPECT_EQ(resumed, baseline);
  EXPECT_EQ(
      CounterValue("fairem.robust.checkpoint_cells_loaded") - loaded_before,
      4u);
}

}  // namespace
}  // namespace fairem
