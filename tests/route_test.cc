// End-to-end tests for the `fairem route` shard router (DESIGN.md §15).
// Every test forks real processes — N `fairem serve` daemons plus one
// router, each single-threaded and stopped with real signals — and talks
// to the router over its UNIX socket exactly like a client would, so
// rendezvous routing, health probes, circuit breakers, failover, hedging,
// degradation, and SIGHUP reload are all exercised through the production
// wire.
//
// The chaos lane (ctest `route_chaos`) reruns the *Chaos* tests with
// FAIREM_FAILPOINTS exported, which the forked backends inherit; without
// the env the Chaos test arms a default crash spec itself.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/robust/checkpoint.h"
#include "src/robust/failpoint.h"
#include "src/route/router.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/util/io_util.h"
#include "src/util/json.h"

namespace fairem {
namespace {

std::string FreshSocketPath(const std::string& leaf) {
  // sun_path is 108 bytes; /tmp keeps us far under even when TempDir is
  // a deep build path.
  std::string path = "/tmp/fairem_" + leaf + "." +
                     std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  return path;
}

ServeOptions SmallServeOptions(const std::string& socket_path) {
  ServeOptions options;
  options.socket_path = socket_path;
  options.warm.datasets = {"Cricket"};
  options.warm.scale = 0.25;
  options.default_deadline_s = 60.0;
  options.max_deadline_s = 120.0;
  return options;
}

RouteOptions SmallRouteOptions(const std::string& socket_path,
                               std::vector<std::string> backends) {
  RouteOptions options;
  options.socket_path = socket_path;
  options.backends = std::move(backends);
  // Tight knobs so death detection and breaker transitions finish inside a
  // test, not an SLO window.
  options.health_period_s = 0.1;
  options.health_timeout_s = 1.0;
  options.breaker_failure_threshold = 3;
  options.breaker_cooldown_s = 0.3;
  options.hedge_min_delay_s = 0.05;
  options.default_deadline_s = 60.0;
  options.max_deadline_s = 120.0;
  return options;
}

/// Forked `fairem serve` backend, SIGKILLable mid-test to simulate a dying
/// shard. Same shape as serve_test's DaemonHandle.
class BackendHandle {
 public:
  BackendHandle(const ServeOptions& options, const std::string& failpoints) {
    pid_ = ::fork();
    if (pid_ == 0) {
      if (!failpoints.empty()) {
        if (Status st = FailpointRegistry::Global().Configure(failpoints);
            !st.ok()) {
          ::_exit(2);
        }
      }
      Status st = RunServeDaemon(options);
      ::_exit(st.ok() ? 0 : 1);
    }
  }

  ~BackendHandle() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  /// SIGTERM + reap; returns the wait status (-1 when already stopped).
  int Stop() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = -1;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

  /// SIGKILL + reap: the crash case. The socket file stays behind, like a
  /// real dead daemon's would.
  void Kill() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
};

/// Forked `fairem route` front-end.
class RouterHandle {
 public:
  explicit RouterHandle(const RouteOptions& options) {
    pid_ = ::fork();
    if (pid_ == 0) {
      Status st = RunRouteDaemon(options);
      ::_exit(st.ok() ? 0 : 1);
    }
  }

  ~RouterHandle() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  int Stop() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = -1;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

  void Sighup() {
    if (pid_ > 0) ::kill(pid_, SIGHUP);
  }

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
};

Result<ServeClient> ConnectPatient(const std::string& socket_path) {
  ServeClientOptions options;
  options.io_timeout_s = 60.0;  // warmup + a cell compute fit comfortably
  options.connect_timeout_s = 60.0;
  return ServeClient::Connect(socket_path, options);
}

QueryRequest CellRequest(const std::string& matcher,
                         double deadline_s = 60.0) {
  QueryRequest request;
  request.op = "cell";
  request.dataset = "Cricket";
  request.matcher = matcher;
  request.deadline_s = deadline_s;
  return request;
}

/// One stats round trip against the router; returns the named counter or
/// gauge, or -1 when the stats call or the lookup fails.
double RouterStat(const std::string& router_socket,
                  const std::string& section, const std::string& name) {
  Result<ServeClient> client = ConnectPatient(router_socket);
  if (!client.ok()) return -1.0;
  QueryRequest request;
  request.op = "stats";
  Result<QueryResponse> r = client->Call(request);
  if (!r.ok() || !r->status.ok()) return -1.0;
  Result<JsonValue> doc = JsonParse(r->payload);
  if (!doc.ok()) return -1.0;
  const JsonValue* sec = JsonFind(*doc, section);
  if (sec == nullptr) return -1.0;
  const JsonValue* value = JsonFind(*sec, name);
  if (value == nullptr) return -1.0;
  Result<double> d = JsonAsDouble(*value, name);
  return d.ok() ? *d : -1.0;
}

/// Polls router stats until `pred(value)` holds; false on timeout.
template <typename Pred>
bool WaitForStat(const std::string& router_socket, const std::string& section,
                 const std::string& name, Pred pred, double timeout_s) {
  const int rounds = static_cast<int>(timeout_s / 0.05) + 1;
  for (int i = 0; i < rounds; ++i) {
    if (pred(RouterStat(router_socket, section, name))) return true;
    ::usleep(50 * 1000);
  }
  return false;
}

/// The per-backend breaker state gauge the router exports for `path`.
std::string BackendStateGauge(const std::string& path) {
  return "fairem.route.backend." + CheckpointStore::SanitizeKey(path) +
         ".state";
}

// ---------------------------------------------------------------------------
// Routing-table unit tests: no processes, just the pure functions.

TEST(RouteUnitTest, RendezvousRankIsDeterministicAndSpreads) {
  EXPECT_EQ(RendezvousRank("Cricket.single.DTMatcher", "/tmp/a.sock"),
            RendezvousRank("Cricket.single.DTMatcher", "/tmp/a.sock"));
  EXPECT_NE(RendezvousRank("Cricket.single.DTMatcher", "/tmp/a.sock"),
            RendezvousRank("Cricket.single.DTMatcher", "/tmp/b.sock"));
  // Keys spread: with 3 backends and 64 keys, no backend owns everything.
  const std::vector<std::string> backends = {"/tmp/a.sock", "/tmp/b.sock",
                                             "/tmp/c.sock"};
  std::set<std::string> winners;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "Cricket.single.m" + std::to_string(i);
    std::string best;
    uint64_t best_rank = 0;
    for (const std::string& b : backends) {
      const uint64_t rank = RendezvousRank(key, b);
      if (best.empty() || rank > best_rank) {
        best = b;
        best_rank = rank;
      }
    }
    winners.insert(best);
  }
  EXPECT_EQ(winners.size(), backends.size());
}

TEST(RouteUnitTest, RendezvousOnlyRemapsKeysOfRemovedBackend) {
  // The rendezvous property the router's cache warmth rests on: dropping
  // backend c moves only the keys c owned; every other key keeps its
  // winner.
  const std::vector<std::string> all = {"/tmp/a.sock", "/tmp/b.sock",
                                        "/tmp/c.sock"};
  const std::vector<std::string> without_c = {"/tmp/a.sock", "/tmp/b.sock"};
  auto winner = [](const std::string& key,
                   const std::vector<std::string>& backends) {
    std::string best;
    uint64_t best_rank = 0;
    for (const std::string& b : backends) {
      const uint64_t rank = RendezvousRank(key, b);
      if (best.empty() || rank > best_rank) {
        best = b;
        best_rank = rank;
      }
    }
    return best;
  };
  int moved = 0;
  for (int i = 0; i < 256; ++i) {
    const std::string key = "Cricket.single.m" + std::to_string(i);
    const std::string before = winner(key, all);
    const std::string after = winner(key, without_c);
    if (before != "/tmp/c.sock") {
      EXPECT_EQ(after, before) << key;
    } else {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);  // c owned something in 256 keys
}

TEST(RouteUnitTest, ParseBackendsListSkipsCommentsAndDuplicates) {
  const std::string text =
      "# fleet config\n"
      "/tmp/a.sock\n"
      "\n"
      "  /tmp/b.sock  \n"
      "/tmp/a.sock\n"
      "# /tmp/ghost.sock\n";
  const std::vector<std::string> parsed = ParseBackendsList(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], "/tmp/a.sock");
  EXPECT_EQ(parsed[1], "/tmp/b.sock");
  EXPECT_TRUE(ParseBackendsList("").empty());
  EXPECT_TRUE(ParseBackendsList("# only comments\n\n").empty());
}

// ---------------------------------------------------------------------------
// End-to-end: real backends behind a real router.

TEST(RouteTest, RoutedAnswersMatchDirectDaemonAnswers) {
  IgnoreSigpipe();
  const std::string backend_a = FreshSocketPath("route_direct_a");
  const std::string backend_b = FreshSocketPath("route_direct_b");
  const std::string front = FreshSocketPath("route_direct_front");
  BackendHandle a(SmallServeOptions(backend_a), "");
  BackendHandle b(SmallServeOptions(backend_b), "");
  RouterHandle router(SmallRouteOptions(front, {backend_a, backend_b}));

  Result<ServeClient> client = ConnectPatient(front);
  ASSERT_TRUE(client.ok()) << client.status();

  // ping and stats are answered by the router itself.
  QueryRequest ping;
  ping.op = "ping";
  Result<QueryResponse> pong = client->Call(ping);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->status.ok()) << pong->status;
  EXPECT_EQ(pong->payload, "pong");
  QueryRequest stats;
  stats.op = "stats";
  Result<QueryResponse> snapshot = client->Call(stats);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_TRUE(snapshot->status.ok()) << snapshot->status;
  EXPECT_NE(snapshot->payload.find("fairem.route.queries_total"),
            std::string::npos);

  // A routed cell answer is byte-identical to asking either daemon
  // directly: the backends are warmed identically and the computation is
  // deterministic, so the router adds no observable difference.
  for (const char* matcher : {"DTMatcher", "NBMatcher"}) {
    Result<QueryResponse> routed = client->Call(CellRequest(matcher));
    ASSERT_TRUE(routed.ok()) << routed.status();
    ASSERT_TRUE(routed->status.ok()) << routed->status;
    for (const std::string& path : {backend_a, backend_b}) {
      Result<ServeClient> direct = ConnectPatient(path);
      ASSERT_TRUE(direct.ok()) << direct.status();
      Result<QueryResponse> mine = direct->Call(CellRequest(matcher));
      ASSERT_TRUE(mine.ok()) << mine.status();
      ASSERT_TRUE(mine->status.ok()) << mine->status;
      EXPECT_EQ(routed->payload, mine->payload) << matcher << " via " << path;
    }
  }

  int status = router.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(WEXITSTATUS(a.Stop()), 0);
  EXPECT_EQ(WEXITSTATUS(b.Stop()), 0);
}

TEST(RouteTest, FailoverAfterBackendSigkill) {
  IgnoreSigpipe();
  const std::string backend_a = FreshSocketPath("route_kill_a");
  const std::string backend_b = FreshSocketPath("route_kill_b");
  const std::string front = FreshSocketPath("route_kill_front");
  BackendHandle a(SmallServeOptions(backend_a), "");
  BackendHandle b(SmallServeOptions(backend_b), "");
  RouterHandle router(SmallRouteOptions(front, {backend_a, backend_b}));

  Result<ServeClient> client = ConnectPatient(front);
  ASSERT_TRUE(client.ok()) << client.status();
  Result<QueryResponse> warm = client->Call(CellRequest("DTMatcher"));
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_TRUE(warm->status.ok()) << warm->status;

  // Kill one shard outright, then immediately query keys that may hash to
  // it: each must still succeed, via failover re-dispatch if the dead
  // backend was picked first.
  a.Kill();
  for (const char* matcher :
       {"DTMatcher", "NBMatcher", "SVMMatcher", "LogRegMatcher"}) {
    Result<QueryResponse> r = client->Call(CellRequest(matcher));
    ASSERT_TRUE(r.ok()) << matcher << ": " << r.status();
    EXPECT_TRUE(r->status.ok()) << matcher << ": " << r->status;
  }

  // Health probes notice the corpse and the usable count settles at 1
  // (the breaker may flap open -> half-open while probing, so wait for
  // the open observation rather than sampling once).
  EXPECT_TRUE(WaitForStat(front, "gauges", "fairem.route.backends_usable",
                          [](double v) { return v == 1.0; }, 20.0));
  EXPECT_TRUE(WaitForStat(front, "gauges", BackendStateGauge(backend_a),
                          [](double v) { return v >= 1.0; }, 20.0));

  int status = router.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(WEXITSTATUS(b.Stop()), 0);
}

TEST(RouteTest, KilledBackendRejoinsWithoutRouterRestart) {
  IgnoreSigpipe();
  const std::string backend_a = FreshSocketPath("route_rejoin_a");
  const std::string backend_b = FreshSocketPath("route_rejoin_b");
  const std::string front = FreshSocketPath("route_rejoin_front");
  auto a = std::make_unique<BackendHandle>(SmallServeOptions(backend_a), "");
  BackendHandle b(SmallServeOptions(backend_b), "");
  RouterHandle router(SmallRouteOptions(front, {backend_a, backend_b}));

  Result<ServeClient> client = ConnectPatient(front);
  ASSERT_TRUE(client.ok()) << client.status();
  Result<QueryResponse> warm = client->Call(CellRequest("DTMatcher"));
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_TRUE(warm->status.ok()) << warm->status;

  a->Kill();
  ASSERT_TRUE(WaitForStat(front, "gauges", BackendStateGauge(backend_a),
                          [](double v) { return v >= 1.0; }, 20.0));

  // Restart the shard on the same socket. The router's probes keep
  // flowing to an open backend, so the first one the revived daemon
  // answers closes its breaker — no router restart, no SIGHUP.
  a = std::make_unique<BackendHandle>(SmallServeOptions(backend_a), "");
  EXPECT_TRUE(WaitForStat(front, "gauges", BackendStateGauge(backend_a),
                          [](double v) { return v == 0.0; }, 30.0));
  EXPECT_TRUE(WaitForStat(front, "gauges", "fairem.route.backends_usable",
                          [](double v) { return v == 2.0; }, 20.0));
  for (const char* matcher : {"DTMatcher", "NBMatcher", "SVMMatcher"}) {
    Result<QueryResponse> r = client->Call(CellRequest(matcher));
    ASSERT_TRUE(r.ok()) << matcher << ": " << r.status();
    EXPECT_TRUE(r->status.ok()) << matcher << ": " << r->status;
  }

  int status = router.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(WEXITSTATUS(a->Stop()), 0);
  EXPECT_EQ(WEXITSTATUS(b.Stop()), 0);
}

TEST(RouteTest, AllBackendsDownYieldsStructuredErrorCell) {
  IgnoreSigpipe();
  // Both backends are socket paths nothing ever listened on: every
  // dispatch attempt fails immediately and the fleet is exhausted.
  const std::string backend_a = FreshSocketPath("route_down_a");
  const std::string backend_b = FreshSocketPath("route_down_b");
  const std::string front = FreshSocketPath("route_down_front");
  RouterHandle router(SmallRouteOptions(front, {backend_a, backend_b}));

  Result<ServeClient> client = ConnectPatient(front);
  ASSERT_TRUE(client.ok()) << client.status();

  // A cell query degrades to the paper's Table 9 "-" semantics: an OK
  // response whose payload is a parseable error-entry cell, so a report
  // built over a dead fleet renders dashes instead of crashing.
  Result<QueryResponse> r = client->Call(CellRequest("DTMatcher"));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->status.ok()) << r->status;
  Result<GridCellCheckpoint> cell = GridCellFromJson(r->payload);
  ASSERT_TRUE(cell.ok()) << cell.status() << " payload=" << r->payload;
  EXPECT_EQ(cell->matcher, "DTMatcher");
  EXPECT_TRUE(cell->error);
  EXPECT_NE(cell->status.find("no backend available"), std::string::npos)
      << cell->status;

  // The router itself is healthy: ping answers and the degradation is
  // visible in its own metrics.
  QueryRequest ping;
  ping.op = "ping";
  Result<QueryResponse> pong = client->Call(ping);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->status.ok()) << pong->status;
  EXPECT_GE(RouterStat(front, "counters", "fairem.route.degraded_answers"),
            1.0);

  int status = router.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(RouteTest, HedgedRequestBeatsHangingBackend) {
  IgnoreSigpipe();
  const std::string backend_a = FreshSocketPath("route_hedge_a");
  const std::string backend_b = FreshSocketPath("route_hedge_b");
  const std::string front = FreshSocketPath("route_hedge_front");
  // Backend a hangs on every cell compute; backend b is healthy. Keys
  // whose primary lands on a stall past the hedge delay, the hedge goes
  // to b, and the client still gets a fast, correct answer.
  BackendHandle a(SmallServeOptions(backend_a), "grid_cell=hang(1)");
  BackendHandle b(SmallServeOptions(backend_b), "");
  RouteOptions route = SmallRouteOptions(front, {backend_a, backend_b});
  route.hedge_min_delay_s = 0.05;
  RouterHandle router(route);

  Result<ServeClient> client = ConnectPatient(front);
  ASSERT_TRUE(client.ok()) << client.status();

  // Which keys rank a first depends on the (pid-stamped) socket paths, so
  // walk cells until the stats show a *won* hedge. A key whose primary is
  // the hanging backend must complete via its hedge to b, so waiting for
  // hedges_won (not hedges_started) is immune to slow-but-healthy primaries
  // starting hedges that lose. 16 independent keys make a miss (every key
  // ranking b first) vanishingly unlikely.
  const char* matchers[] = {"DTMatcher",     "NBMatcher",
                            "SVMMatcher",    "LogRegMatcher",
                            "RFMatcher",     "LinRegMatcher",
                            "BooleanRuleMatcher", "Dedupe"};
  bool hedge_won = false;
  for (const char* matcher : matchers) {
    for (const char* mode : {"single", "pairwise"}) {
      QueryRequest request = CellRequest(matcher, 30.0);
      request.mode = mode;
      Result<QueryResponse> r = client->Call(request);
      ASSERT_TRUE(r.ok()) << matcher << ": " << r.status();
      EXPECT_TRUE(r->status.ok()) << matcher << ": " << r->status;
      if (RouterStat(front, "counters", "fairem.route.hedges_won") >= 1.0) {
        hedge_won = true;
        break;
      }
    }
    if (hedge_won) break;
  }
  EXPECT_TRUE(hedge_won) << "no hedge won across 16 cell keys";
  EXPECT_GE(RouterStat(front, "counters", "fairem.route.hedges_started"), 1.0);

  int status = router.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(WEXITSTATUS(b.Stop()), 0);
}

TEST(RouteTest, SighupReloadAddsAndRemovesBackends) {
  IgnoreSigpipe();
  const std::string backend_a = FreshSocketPath("route_hup_a");
  const std::string backend_b = FreshSocketPath("route_hup_b");
  const std::string front = FreshSocketPath("route_hup_front");
  const std::string fleet_file =
      "/tmp/fairem_route_hup_fleet." + std::to_string(::getpid()) + ".txt";
  auto write_fleet = [&](const std::vector<std::string>& paths) {
    std::ofstream out(fleet_file, std::ios::trunc);
    out << "# fleet\n";
    for (const std::string& p : paths) out << p << "\n";
  };
  write_fleet({backend_a});

  BackendHandle a(SmallServeOptions(backend_a), "");
  BackendHandle b(SmallServeOptions(backend_b), "");
  RouteOptions route = SmallRouteOptions(front, {});
  route.backends_file = fleet_file;
  RouterHandle router(route);

  Result<ServeClient> client = ConnectPatient(front);
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(WaitForStat(front, "gauges", "fairem.route.backends",
                          [](double v) { return v == 1.0; }, 20.0));

  // Scale out: add b to the file and poke the router. No restart.
  write_fleet({backend_a, backend_b});
  router.Sighup();
  EXPECT_TRUE(WaitForStat(front, "gauges", "fairem.route.backends",
                          [](double v) { return v == 2.0; }, 20.0));
  EXPECT_GE(RouterStat(front, "counters", "fairem.route.reloads"), 1.0);

  // Scale in: drop a. Queries keep succeeding, now via b only.
  write_fleet({backend_b});
  router.Sighup();
  EXPECT_TRUE(WaitForStat(front, "gauges", "fairem.route.backends",
                          [](double v) { return v == 1.0; }, 20.0));
  for (const char* matcher : {"DTMatcher", "NBMatcher"}) {
    Result<QueryResponse> r = client->Call(CellRequest(matcher));
    ASSERT_TRUE(r.ok()) << matcher << ": " << r.status();
    EXPECT_TRUE(r->status.ok()) << matcher << ": " << r->status;
  }

  int status = router.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(WEXITSTATUS(a.Stop()), 0);
  EXPECT_EQ(WEXITSTATUS(b.Stop()), 0);
  ::unlink(fleet_file.c_str());
}

// ---------------------------------------------------------------------------
// Chaos: crash-failpoint backends behind the router (ctest `route_chaos`
// reruns this with FAIREM_FAILPOINTS exported to the whole tree).

TEST(RouteChaosTest, ChaosAnswersStayDefiniteAndByteIdentical) {
  IgnoreSigpipe();
  const std::string backend_a = FreshSocketPath("route_chaos_a");
  const std::string backend_b = FreshSocketPath("route_chaos_b");
  const std::string backend_c = FreshSocketPath("route_chaos_c");
  const std::string front = FreshSocketPath("route_chaos_front");
  // The chaos lane exports FAIREM_FAILPOINTS (the forked backends arm it
  // on first failpoint use); standalone runs inject a default crash mix.
  const char* env_spec = std::getenv("FAIREM_FAILPOINTS");
  const std::string spec = env_spec != nullptr ? "" : "grid_cell=crash(0.5)";
  ServeOptions serve_a = SmallServeOptions(backend_a);
  ServeOptions serve_b = SmallServeOptions(backend_b);
  ServeOptions serve_c = SmallServeOptions(backend_c);
  serve_a.max_attempts = serve_b.max_attempts = serve_c.max_attempts = 2;
  BackendHandle a(serve_a, spec);
  BackendHandle b(serve_b, spec);
  BackendHandle c(serve_c, spec);
  RouterHandle router(
      SmallRouteOptions(front, {backend_a, backend_b, backend_c}));

  Result<ServeClient> client = ConnectPatient(front);
  ASSERT_TRUE(client.ok()) << client.status();

  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.initial_backoff_seconds = 0.02;
  const char* matchers[] = {"BooleanRuleMatcher", "DTMatcher", "NBMatcher"};
  int definite = 0;
  for (int i = 0; i < 9; ++i) {
    QueryRequest request = (i % 3 == 0)
                               ? QueryRequest{}
                               : CellRequest(matchers[i % 3], 30.0);
    if (i % 3 == 0) request.op = "ping";
    Result<QueryResponse> r = client->CallWithRetry(request, retry, 100 + i);
    if (!r.ok()) {
      // Transport failure is definite too, but the client must recover.
      ASSERT_FALSE(r.status().ToString().empty());
    }
    ++definite;
    if (!client->connected()) {
      Result<ServeClient> fresh = ConnectPatient(front);
      ASSERT_TRUE(fresh.ok()) << fresh.status();
      *client = std::move(*fresh);
    }
  }
  EXPECT_EQ(definite, 9);

  // Post-chaos: the probed cell must eventually succeed (fresh worker
  // spawns draw fresh failpoint streams) and then repeat byte-identically
  // no matter which backend serves it.
  std::string first;
  for (int tries = 0; tries < 30 && first.empty(); ++tries) {
    Result<QueryResponse> r = client->CallWithRetry(
        CellRequest("DTMatcher", 30.0), retry, 500 + tries);
    if (r.ok() && r->status.ok()) first = r->payload;
    if (!client->connected()) {
      Result<ServeClient> fresh = ConnectPatient(front);
      ASSERT_TRUE(fresh.ok()) << fresh.status();
      *client = std::move(*fresh);
    }
  }
  ASSERT_FALSE(first.empty()) << "cell never succeeded under chaos";
  Result<QueryResponse> again =
      client->CallWithRetry(CellRequest("DTMatcher", 30.0), retry, 999);
  ASSERT_TRUE(again.ok()) << again.status();
  ASSERT_TRUE(again->status.ok()) << again->status;
  EXPECT_EQ(again->payload, first);

  int status = router.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(WEXITSTATUS(a.Stop()), 0);
  EXPECT_EQ(WEXITSTATUS(b.Stop()), 0);
  EXPECT_EQ(WEXITSTATUS(c.Stop()), 0);
}

}  // namespace
}  // namespace fairem
