// Generator-contract tests for the publications datasets: the planted
// failure modes of §5.3.3 must actually be present in the data.

#include "src/datagen/pubs.h"

#include <gtest/gtest.h>

#include "src/text/edit_distance.h"

namespace fairem {
namespace {

EMDataset Acm() {
  return std::move(GenerateDblpAcm(DblpAcmOptions{})).value();
}

TEST(DblpAcmGenTest, EditorialVenuesCarryIdenticalTitleNonMatches) {
  EMDataset ds = Acm();
  size_t title = *ds.table_a.schema().Index("title");
  size_t venue = *ds.table_a.schema().Index("venue");
  int traps = 0;
  for (const auto& p : ds.AllPairs()) {
    if (p.is_match) continue;
    if (ds.table_a.value(p.left, title) == ds.table_b.value(p.right, title) &&
        !std::string(ds.table_a.value(p.left, title)).empty()) {
      ++traps;
      // Identical-title traps live in the editorial venues or the
      // adjective-twin space; the left side must be one of the planted
      // venues for the exact "guest editorial" collisions.
      std::string v(ds.table_a.value(p.left, venue));
      EXPECT_TRUE(v == "VLDBJ" || v == "SIGMOD Rec." || v == "SIGMOD" ||
                  v == "VLDB" || v == "ICDE");
    }
  }
  EXPECT_GT(traps, 10);
}

TEST(DblpAcmGenTest, CoverageBiasStarvesTrainOfTraps) {
  // §5.3.3: "the training data did not include enough non-match cases with
  // (almost) identical titles". The generator moves ~85% of them to test.
  EMDataset ds = Acm();
  size_t title = *ds.table_a.schema().Index("title");
  auto trap_count = [&](const std::vector<LabeledPair>& split) {
    int n = 0;
    for (const auto& p : split) {
      if (p.is_match) continue;
      if (JaroWinklerSimilarity(ds.table_a.value(p.left, title),
                                ds.table_b.value(p.right, title)) >= 0.93) {
        ++n;
      }
    }
    return n;
  };
  int train_traps = trap_count(ds.train);
  int test_traps = trap_count(ds.test);
  EXPECT_GT(test_traps, 4 * std::max(train_traps, 1));
}

TEST(DblpAcmGenTest, ExtendedVersionTwinsExist) {
  // VLDB paper + VLDBJ extension: same authors, close titles, consecutive
  // years, distinct entity ids.
  EMDataset ds = Acm();
  size_t title = *ds.table_a.schema().Index("title");
  size_t authors = *ds.table_a.schema().Index("authors");
  size_t venue = *ds.table_a.schema().Index("venue");
  int twins = 0;
  for (size_t i = 0; i < ds.table_a.num_rows(); ++i) {
    if (ds.table_a.value(i, venue) != "VLDB") continue;
    for (size_t j = 0; j < ds.table_a.num_rows(); ++j) {
      if (ds.table_a.value(j, venue) != "VLDBJ") continue;
      if (ds.table_a.row(i).entity_id == ds.table_a.row(j).entity_id) {
        continue;
      }
      if (ds.table_a.value(i, authors) == ds.table_a.value(j, authors) &&
          JaroWinklerSimilarity(ds.table_a.value(i, title),
                                ds.table_a.value(j, title)) > 0.85) {
        ++twins;
      }
    }
  }
  EXPECT_GT(twins, 5);
}

TEST(DblpAcmGenTest, AcmViewNoisesAuthorsAndYear) {
  EMDataset ds = Acm();
  size_t authors = *ds.table_a.schema().Index("authors");
  size_t year = *ds.table_a.schema().Index("year");
  int author_diffs = 0;
  int year_diffs = 0;
  for (size_t r = 0; r < ds.table_a.num_rows(); ++r) {
    if (ds.table_a.value(r, authors) != ds.table_b.value(r, authors)) {
      ++author_diffs;
    }
    if (ds.table_a.value(r, year) != ds.table_b.value(r, year)) ++year_diffs;
  }
  // Author reformatting hits most records; years drift on ~25%.
  EXPECT_GT(author_diffs, static_cast<int>(ds.table_a.num_rows() / 3));
  EXPECT_GT(year_diffs, static_cast<int>(ds.table_a.num_rows() / 8));
}

TEST(DblpScholarGenTest, DirtyAndTenAttributes) {
  EMDataset ds =
      std::move(GenerateDblpScholar(DblpScholarOptions{})).value();
  EXPECT_EQ(ds.table_a.schema().num_attributes(), 10u);  // Table 4
  EXPECT_EQ(ds.sensitive_attr, "entryType");
  size_t nulls = 0;
  size_t cells = 0;
  for (const Table* t : {&ds.table_a, &ds.table_b}) {
    for (size_t r = 0; r < t->num_rows(); ++r) {
      // entryType (last col) is never null; the rest may be.
      for (size_t c = 0; c + 1 < t->schema().num_attributes(); ++c) {
        ++cells;
        if (t->IsNull(r, c)) ++nulls;
      }
      EXPECT_FALSE(t->IsNull(r, t->schema().num_attributes() - 1));
    }
  }
  double null_rate = static_cast<double>(nulls) / cells;
  EXPECT_GT(null_rate, 0.10);
  EXPECT_LT(null_rate, 0.30);
}

}  // namespace
}  // namespace fairem
