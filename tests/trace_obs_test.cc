// Unit tests for the tracing observability pieces around the wire
// (DESIGN.md §16): histogram exemplars (slowest trace id per bucket and
// their snapshot JSON), the slow-query log (wide-event round trip, the
// threshold + token-bucket write policy), and the `fairem tracetop`
// aggregation (hop shares, critical path, share-drift gate). The wire
// format itself is covered by telemetry_frame_corpus_test; the
// cross-process assembly by trace_e2e_test.

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/slowlog.h"
#include "src/obs/trace.h"
#include "src/obs/tracetop.h"
#include "src/util/io_util.h"

namespace fairem {
namespace {

constexpr char kTraceA[] = "0123456789abcdeffedcba9876543210";
constexpr char kTraceB[] = "00000000000000010000000000000002";

std::string TempPath(const std::string& leaf) {
  return "/tmp/fairem_" + leaf + "." + std::to_string(::getpid()) + ".jsonl";
}

// --- Histogram exemplars ---------------------------------------------------

TEST(ExemplarTest, KeepsMaxObservationPerBucketWithItsTraceId) {
  Histogram h({0.1, 1.0});
  h.ObserveWithExemplar(0.05, kTraceA);
  h.ObserveWithExemplar(0.08, kTraceB);  // same bucket, larger: wins
  h.ObserveWithExemplar(0.5, kTraceA);   // second bucket
  std::vector<HistogramExemplar> exemplars = h.exemplars();
  ASSERT_EQ(exemplars.size(), 3u);
  EXPECT_EQ(exemplars[0].trace_id, kTraceB);
  EXPECT_DOUBLE_EQ(exemplars[0].value, 0.08);
  EXPECT_EQ(exemplars[1].trace_id, kTraceA);
  EXPECT_TRUE(exemplars[2].trace_id.empty());  // overflow bucket untouched
  // A smaller later observation does not displace the kept one.
  h.ObserveWithExemplar(0.01, kTraceA);
  EXPECT_EQ(h.exemplars()[0].trace_id, kTraceB);
}

TEST(ExemplarTest, EmptyTraceIdDegradesToPlainObserve) {
  Histogram h({0.1, 1.0});
  h.ObserveWithExemplar(0.05, "");
  EXPECT_EQ(h.count(), 1u);
  for (const HistogramExemplar& e : h.exemplars()) {
    EXPECT_TRUE(e.trace_id.empty());
  }
}

TEST(ExemplarTest, TopExemplarPicksHighestValueAcrossBuckets) {
  MetricsSnapshot::HistogramData data;
  data.bounds = {0.1, 1.0};
  data.bucket_counts = {2, 1, 0};
  data.exemplars = {{0.08, kTraceB}, {0.5, kTraceA}, {0.0, ""}};
  HistogramExemplar top = data.TopExemplar();
  EXPECT_EQ(top.trace_id, kTraceA);
  EXPECT_DOUBLE_EQ(top.value, 0.5);
  EXPECT_TRUE(MetricsSnapshot::HistogramData{}.TopExemplar().trace_id.empty());
}

TEST(ExemplarTest, SnapshotJsonCarriesExemplarsOnlyWhenRecorded) {
  // Untraced snapshots must serialize byte-identically to pre-exemplar
  // ones — no "exemplars" key at all.
  MetricsSnapshot snap;
  MetricsSnapshot::HistogramData plain;
  plain.bounds = {0.1};
  plain.bucket_counts = {1, 0};
  plain.count = 1;
  plain.sum = 0.05;
  snap.histograms["fairem.test.latency"] = plain;
  EXPECT_EQ(MetricsSnapshotToJson(snap).find("exemplars"),
            std::string::npos);

  snap.histograms["fairem.test.latency"].exemplars = {{0.05, kTraceA},
                                                      {0.0, ""}};
  const std::string json = MetricsSnapshotToJson(snap);
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(json.find(kTraceA), std::string::npos);
}

// --- Slow-query log --------------------------------------------------------

SlowQueryEvent SampleEvent(const std::string& trace_id, double total_ms) {
  SlowQueryEvent event;
  event.process = "daemon";
  event.trace_id = trace_id;
  event.id = 7;
  event.op = "cell";
  event.key = "Cricket.single.DTMatcher";
  event.status = "OK";
  event.total_ms = total_ms;
  WireSpan span;
  span.name = "daemon.request";
  span.process = "daemon";
  span.pid = 42;
  span.span_id = 5;
  span.start_unix_us = 1000;
  span.duration_us = static_cast<int64_t>(total_ms * 1000.0);
  event.spans.push_back(span);
  return event;
}

TEST(SlowlogTest, EventRoundTripsThroughOneJsonLine) {
  SlowQueryEvent event = SampleEvent(kTraceA, 120.5);
  const std::string line = SerializeSlowQueryEvent(event, 50.0, 987654321);
  int64_t ts = 0;
  double slow_ms = 0.0;
  Result<SlowQueryEvent> parsed = ParseSlowQueryEvent(line, &ts, &slow_ms);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(ts, 987654321);
  EXPECT_DOUBLE_EQ(slow_ms, 50.0);
  EXPECT_EQ(parsed->process, "daemon");
  EXPECT_EQ(parsed->trace_id, kTraceA);
  EXPECT_EQ(parsed->key, "Cricket.single.DTMatcher");
  EXPECT_DOUBLE_EQ(parsed->total_ms, 120.5);
  ASSERT_EQ(parsed->spans.size(), 1u);
  EXPECT_EQ(parsed->spans[0].name, "daemon.request");
}

TEST(SlowlogTest, ParseIsTolerantFieldByField) {
  // Fields from another version, or mistyped ones, keep their defaults; a
  // non-object line is the only hard error (callers skip it).
  Result<SlowQueryEvent> sparse = ParseSlowQueryEvent(
      "{\"process\":\"router\",\"total_ms\":9.5,\"future_field\":[1,2]}");
  ASSERT_TRUE(sparse.ok()) << sparse.status();
  EXPECT_EQ(sparse->process, "router");
  EXPECT_DOUBLE_EQ(sparse->total_ms, 9.5);
  EXPECT_TRUE(sparse->trace_id.empty());
  EXPECT_TRUE(sparse->spans.empty());

  Result<SlowQueryEvent> mistyped =
      ParseSlowQueryEvent("{\"total_ms\":\"slow\",\"id\":true}");
  ASSERT_TRUE(mistyped.ok());
  EXPECT_DOUBLE_EQ(mistyped->total_ms, 0.0);

  EXPECT_FALSE(ParseSlowQueryEvent("[]").ok());
  EXPECT_FALSE(ParseSlowQueryEvent("torn{line").ok());
}

TEST(SlowlogTest, LoggerHonorsThresholdAndEnablement) {
  const std::string path = TempPath("slowlog_threshold");
  ::unlink(path.c_str());
  {
    SlowQueryLogger logger(path, 100.0);
    ASSERT_TRUE(logger.enabled());
    logger.MaybeLog(SampleEvent(kTraceA, 50.0), 0.0);   // under threshold
    logger.MaybeLog(SampleEvent(kTraceB, 150.0), 0.0);  // over
  }
  Result<std::string> text = ReadFileToString(path);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(text->find(kTraceA), std::string::npos);
  EXPECT_NE(text->find(kTraceB), std::string::npos);
  ::unlink(path.c_str());

  // Disabled configurations never create the file.
  SlowQueryLogger no_path("", 100.0);
  EXPECT_FALSE(no_path.enabled());
  SlowQueryLogger no_threshold(path, 0.0);
  EXPECT_FALSE(no_threshold.enabled());
  no_threshold.MaybeLog(SampleEvent(kTraceA, 1e6), 0.0);
  EXPECT_FALSE(ReadFileToString(path).ok());
}

TEST(SlowlogTest, TokenBucketBoundsTheWriteRate) {
  const std::string path = TempPath("slowlog_bucket");
  ::unlink(path.c_str());
  Counter* suppressed =
      MetricsRegistry::Global().GetCounter("fairem.slowlog.suppressed");
  const uint64_t before = suppressed->value();
  {
    // 2 lines/s, burst capacity 4: a 10-event incident at t=0 writes 4;
    // one second later the bucket has refilled 2 more.
    SlowQueryLogger logger(path, 1.0, /*max_per_s=*/2.0);
    for (int i = 0; i < 10; ++i) {
      logger.MaybeLog(SampleEvent(kTraceA, 10.0), 0.0);
    }
    logger.MaybeLog(SampleEvent(kTraceB, 10.0), 1.0);
    logger.MaybeLog(SampleEvent(kTraceB, 10.0), 1.0);
    logger.MaybeLog(SampleEvent(kTraceB, 10.0), 1.0);
  }
  Result<std::string> text = ReadFileToString(path);
  ASSERT_TRUE(text.ok()) << text.status();
  int lines = 0;
  for (char c : *text) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, 6);  // 4 burst + 2 refilled
  EXPECT_EQ(suppressed->value() - before, 7u);
  ::unlink(path.c_str());
}

// --- tracetop --------------------------------------------------------------

std::string TwoEventLog() {
  SlowQueryEvent slow = SampleEvent(kTraceA, 200.0);
  WireSpan compute;
  compute.name = "worker.compute";
  compute.process = "worker";
  compute.pid = 43;
  compute.span_id = 6;
  compute.parent_span_id = 5;
  compute.start_unix_us = 1100;
  compute.duration_us = 150000;
  slow.spans.push_back(compute);
  SlowQueryEvent fast = SampleEvent(kTraceB, 50.0);
  return SerializeSlowQueryEvent(slow, 10.0, 1) + "\n" +
         SerializeSlowQueryEvent(fast, 10.0, 2) + "\n" +
         "torn trailing line without structure\n";
}

TEST(TraceTopTest, SummarizeAggregatesHopsAndSkipsTornLines) {
  TraceTopSummary summary = SummarizeSlowLog(TwoEventLog());
  EXPECT_EQ(summary.events, 2u);
  EXPECT_EQ(summary.skipped_lines, 1u);
  EXPECT_EQ(summary.spans, 3u);
  ASSERT_EQ(summary.hops.count("daemon.request"), 1u);
  EXPECT_EQ(summary.hops.at("daemon.request").count, 2u);
  EXPECT_EQ(summary.hops.at("worker.compute").total_us, 150000);
  EXPECT_EQ(summary.slowest_trace_id, kTraceA);
  EXPECT_DOUBLE_EQ(summary.slowest_total_ms, 200.0);

  const std::string table = RenderHopShares(summary);
  EXPECT_NE(table.find("2 slow queries"), std::string::npos);
  EXPECT_NE(table.find("1 unparseable"), std::string::npos);
  EXPECT_NE(table.find("worker.compute"), std::string::npos);
}

TEST(TraceTopTest, CriticalPathDescendsIntoLongestChild) {
  std::vector<WireSpan> spans;
  WireSpan root;
  root.name = "router.request";
  root.process = "router";
  root.span_id = 1;
  root.parent_span_id = 99;  // parent outside the set: this is the root
  root.duration_us = 300000;
  WireSpan short_call;
  short_call.name = "router.call";
  short_call.process = "router";
  short_call.span_id = 2;
  short_call.parent_span_id = 1;
  short_call.duration_us = 20000;
  WireSpan long_call = short_call;
  long_call.span_id = 3;
  long_call.duration_us = 250000;
  WireSpan compute;
  compute.name = "worker.compute";
  compute.process = "worker";
  compute.span_id = 4;
  compute.parent_span_id = 3;
  compute.duration_us = 240000;
  spans = {short_call, compute, root, long_call};
  const std::string rendered = RenderCriticalPath(spans);
  // Path: root -> the longer of the two calls -> its compute; the short
  // call is off the critical path and must not appear.
  const size_t at_root = rendered.find("router/router.request");
  const size_t at_call = rendered.find("router/router.call");
  const size_t at_compute = rendered.find("worker/worker.compute");
  ASSERT_NE(at_root, std::string::npos) << rendered;
  ASSERT_NE(at_call, std::string::npos) << rendered;
  ASSERT_NE(at_compute, std::string::npos) << rendered;
  EXPECT_LT(at_root, at_call);
  EXPECT_LT(at_call, at_compute);
  EXPECT_NE(rendered.find("250.00 ms"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("20.00 ms"), std::string::npos) << rendered;
  EXPECT_EQ(RenderCriticalPath({}), "(no spans)\n");
}

TEST(TraceTopTest, CriticalPathSurvivesCycles) {
  // A corrupt log could link spans into a loop; the renderer must
  // terminate anyway.
  WireSpan a;
  a.name = "a";
  a.span_id = 1;
  a.parent_span_id = 2;
  a.duration_us = 10;
  WireSpan b;
  b.name = "b";
  b.span_id = 2;
  b.parent_span_id = 1;
  b.duration_us = 20;
  const std::string rendered = RenderCriticalPath({a, b});
  EXPECT_FALSE(rendered.empty());
}

TEST(TraceTopTest, CompareHopSharesFlagsOnlyRealDrift) {
  auto make = [](int64_t request_us, int64_t compute_us) {
    TraceTopSummary s;
    s.hops["daemon.request"].count = 1;
    s.hops["daemon.request"].total_us = request_us;
    s.hops["worker.compute"].count = 1;
    s.hops["worker.compute"].total_us = compute_us;
    s.total_span_us = request_us + compute_us;
    s.events = 1;
    return s;
  };
  // 50/50 -> 50/50: no drift.
  EXPECT_TRUE(CompareHopShares(make(100, 100), make(200, 200), 0.10, 0.01)
                  .empty());
  // 50/50 -> 20/80: both hops moved by 0.30.
  std::vector<std::string> drift =
      CompareHopShares(make(100, 100), make(20, 80), 0.10, 0.01);
  ASSERT_EQ(drift.size(), 2u);
  EXPECT_NE(drift[0].find("daemon.request"), std::string::npos);
  // Hops below min_share in both logs are ignored even when their own
  // shares moved past the tolerance (the totals match, so the big hops'
  // shares are untouched).
  TraceTopSummary before = make(1000000, 1000000);
  before.hops["tiny_a"].total_us = 1000;
  before.total_span_us += 1000;
  TraceTopSummary after = make(1000000, 1000000);
  after.hops["tiny_b"].total_us = 1000;
  after.total_span_us += 1000;
  EXPECT_TRUE(CompareHopShares(before, after, 0.0004, 0.01).empty());
  // With min_share lowered beneath them, the same movement is drift.
  EXPECT_EQ(CompareHopShares(before, after, 0.0004, 0.0).size(), 2u);
}

}  // namespace
}  // namespace fairem
