#include "src/text/similarity.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

class RegistryProperty
    : public ::testing::TestWithParam<SimilarityMeasure> {};

TEST_P(RegistryProperty, NameRoundTrips) {
  SimilarityMeasure m = GetParam();
  Result<SimilarityMeasure> parsed =
      ParseSimilarityMeasure(SimilarityMeasureName(m));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, m);
}

TEST_P(RegistryProperty, BoundedAndSymmetric) {
  SimilarityMeasure m = GetParam();
  const std::vector<std::string> samples = {"",       "3.5",    "2003",
                                            "Brown",  "Browne", "Qingming Huang",
                                            "guest editorial"};
  for (const auto& a : samples) {
    for (const auto& b : samples) {
      double v = ComputeSimilarity(m, a, b);
      EXPECT_GE(v, 0.0) << SimilarityMeasureName(m);
      EXPECT_LE(v, 1.0) << SimilarityMeasureName(m);
      EXPECT_DOUBLE_EQ(v, ComputeSimilarity(m, b, a))
          << SimilarityMeasureName(m) << " not symmetric on '" << a
          << "' / '" << b << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasures, RegistryProperty,
    ::testing::ValuesIn(std::begin(kAllSimilarityMeasures),
                        std::end(kAllSimilarityMeasures)),
    [](const auto& info) { return SimilarityMeasureName(info.param); });

TEST(RegistryTest, UnknownNameIsNotFound) {
  EXPECT_TRUE(ParseSimilarityMeasure("bogus").status().IsNotFound());
}

TEST(RegistryTest, NumericMeasureSemantics) {
  EXPECT_DOUBLE_EQ(
      ComputeSimilarity(SimilarityMeasure::kNumericAbsDiff, "10", "10"), 1.0);
  EXPECT_NEAR(
      ComputeSimilarity(SimilarityMeasure::kNumericAbsDiff, "10", "9"), 0.9,
      1e-9);
  // Non-numeric operands yield 0.
  EXPECT_DOUBLE_EQ(
      ComputeSimilarity(SimilarityMeasure::kNumericAbsDiff, "abc", "10"),
      0.0);
}

TEST(RegistryTest, WordMeasuresIgnoreCaseAndPunctuation) {
  EXPECT_DOUBLE_EQ(ComputeSimilarity(SimilarityMeasure::kJaccardWord,
                                     "Data Integration!", "data integration"),
                   1.0);
}

}  // namespace
}  // namespace fairem
