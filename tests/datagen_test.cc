#include "src/datagen/benchmark_suite.h"

#include <gtest/gtest.h>

#include <set>

#include "src/datagen/names.h"
#include "src/datagen/perturb.h"
#include "src/text/edit_distance.h"

namespace fairem {
namespace {

TEST(PerturbTest, SingleEditDistanceAtMostOne) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::string out = PerturbString("jennifer", &rng);
    EXPECT_LE(LevenshteinDistance("jennifer", out), 1);
  }
}

TEST(PerturbTest, MultipleEditsBoundedByCount) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    std::string out = PerturbString("warehouse", &rng, 3);
    EXPECT_LE(LevenshteinDistance("warehouse", out), 3);
  }
}

TEST(PerturbTest, EmptyStringGrowsByInsertion) {
  Rng rng(3);
  std::string out = PerturbString("", &rng);
  EXPECT_EQ(out.size(), 1u);
}

TEST(PerturbTest, MaybePerturbRespectsProbability) {
  Rng rng(4);
  int changed = 0;
  for (int i = 0; i < 1000; ++i) {
    if (MaybePerturb("sample", 0.3, &rng) != "sample") ++changed;
  }
  // Some edits are no-ops (replace with the same letter), so the observed
  // rate sits slightly below 0.3.
  EXPECT_NEAR(changed / 1000.0, 0.29, 0.05);
}

TEST(NamesTest, PoolPropertiesBehindTheMechanisms) {
  // The concentrated pools that drive the social-data findings.
  EXPECT_LE(CommonBlackSurnames().size(), 10u);
  EXPECT_GE(BroadSurnames().size(), 80u);
  EXPECT_GE(GermanSurnames().size(), 60u);
  EXPECT_LE(ChineseGivenSyllables().size(), 40u);
}

TEST(NamesTest, GeneratorsAreDeterministic) {
  Rng a(10);
  Rng b(10);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ChineseFullName(&a), ChineseFullName(&b));
  }
}

TEST(NamesTest, ChineseNamesClusterMoreThanGerman) {
  // Condition (a) of §5.1.2: higher intra-group name similarity.
  Rng rng(42);
  std::vector<std::string> cn;
  std::vector<std::string> de;
  for (int i = 0; i < 60; ++i) {
    cn.push_back(ChineseFullName(&rng));
    de.push_back(GermanFullName(&rng));
  }
  auto mean_top_sim = [](const std::vector<std::string>& names) {
    double total = 0.0;
    for (size_t i = 0; i < names.size(); ++i) {
      double best = 0.0;
      for (size_t j = 0; j < names.size(); ++j) {
        if (i == j) continue;
        best = std::max(best, JaroWinklerSimilarity(names[i], names[j]));
      }
      total += best;
    }
    return total / static_cast<double>(names.size());
  };
  EXPECT_GT(mean_top_sim(cn), mean_top_sim(de));
}

class GeneratorContract : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(GeneratorContract, SmallScaleDatasetIsValid) {
  Result<EMDataset> ds = GenerateDataset(GetParam(), /*scale=*/0.3);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_TRUE(ds->Validate().ok());
  EXPECT_GT(ds->table_a.num_rows(), 0u);
  EXPECT_GT(ds->table_b.num_rows(), 0u);
  EXPECT_FALSE(ds->test.empty());
  // Both labels present.
  double pos = ds->PositiveRate();
  EXPECT_GT(pos, 0.0) << ds->name;
  EXPECT_LT(pos, 1.0) << ds->name;
  // No duplicate pairs across the whole labelled set.
  std::set<std::pair<size_t, size_t>> seen;
  for (const auto& p : ds->AllPairs()) {
    EXPECT_TRUE(seen.insert({p.left, p.right}).second)
        << ds->name << " duplicate pair " << p.left << "," << p.right;
  }
}

TEST_P(GeneratorContract, DeterministicForSeed) {
  Result<EMDataset> a = GenerateDataset(GetParam(), 0.3, /*seed_offset=*/5);
  Result<EMDataset> b = GenerateDataset(GetParam(), 0.3, /*seed_offset=*/5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->table_a.num_rows(), b->table_a.num_rows());
  for (size_t r = 0; r < a->table_a.num_rows(); ++r) {
    for (size_t c = 0; c < a->table_a.schema().num_attributes(); ++c) {
      EXPECT_EQ(a->table_a.value(r, c), b->table_a.value(r, c));
    }
  }
  ASSERT_EQ(a->test.size(), b->test.size());
}

TEST_P(GeneratorContract, SeedOffsetChangesData) {
  Result<EMDataset> a = GenerateDataset(GetParam(), 0.3, 0);
  Result<EMDataset> b = GenerateDataset(GetParam(), 0.3, 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_diff = a->table_a.num_rows() != b->table_a.num_rows();
  for (size_t r = 0; !any_diff && r < a->table_a.num_rows(); ++r) {
    if (a->table_a.value(r, 0) != b->table_a.value(r, 0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, GeneratorContract, ::testing::ValuesIn(AllDatasetKinds()),
    [](const auto& info) {
      std::string name = DatasetKindName(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(GeneratorShapeTest, Table4Properties) {
  // Dataset-specific shape constraints from Table 4.
  EMDataset cricket =
      std::move(GenerateDataset(DatasetKind::kCricket)).value();
  EXPECT_GT(cricket.PositiveRate(), 0.9);  // 96.5% positive in the paper
  EXPECT_DOUBLE_EQ(cricket.default_threshold, 0.9);

  EMDataset cameras =
      std::move(GenerateDataset(DatasetKind::kCameras)).value();
  EXPECT_EQ(cameras.matching_attrs.size(), 1u);  // textual: title only
  EXPECT_EQ(cameras.sensitive_attr, "company");

  EMDataset itunes =
      std::move(GenerateDataset(DatasetKind::kItunesAmazon)).value();
  EXPECT_EQ(itunes.sensitive_kind, SensitiveAttrKind::kSetwise);

  EMDataset nofly =
      std::move(GenerateDataset(DatasetKind::kNoFlyCompas)).value();
  EXPECT_EQ(nofly.sensitive_kind, SensitiveAttrKind::kBinary);
  EXPECT_LT(nofly.PositiveRate(), 0.1);  // extreme class imbalance
}

TEST(GeneratorShapeTest, NoFlyListOverRepresentsBlackGroup) {
  EMDataset ds = std::move(GenerateDataset(DatasetKind::kNoFlyCompas)).value();
  auto black_frac = [&](const Table& t) {
    size_t col = *t.schema().Index("race");
    int black = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (t.value(r, col) == "African-American") ++black;
    }
    return static_cast<double>(black) / t.num_rows();
  };
  double passengers = black_frac(ds.table_a);
  double no_fly = black_frac(ds.table_b);
  // Condition (b) of §5.1.2: ~20% of passengers vs ~52% of the no-fly list.
  EXPECT_LT(passengers, 0.35);
  EXPECT_GT(no_fly, 0.40);
}

TEST(GeneratorShapeTest, FacultyMatchPopulationGap) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch)).value();
  size_t col = *ds.table_a.schema().Index("country");
  int cn_pairs = 0;
  int de_pairs = 0;
  for (const auto& p : ds.AllPairs()) {
    bool de = ds.table_a.value(p.left, col) == "de" ||
              ds.table_b.value(p.right, col) == "de";
    (de ? de_pairs : cn_pairs)++;
  }
  // The paper widens the gap to ~6x via the 80% de-pair drop.
  EXPECT_GT(static_cast<double>(cn_pairs) / de_pairs, 3.0);
}

}  // namespace
}  // namespace fairem
