#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/datagen/benchmark_suite.h"
#include "src/feature/feature_gen.h"
#include "src/ml/random_forest.h"
#include "src/util/rng.h"

namespace fairem {
namespace {

/// Restores the process-wide intra_jobs knob so a test can't leak its pool
/// size into the rest of the suite.
class IntraJobsGuard {
 public:
  IntraJobsGuard() : saved_(IntraJobs()) {}
  ~IntraJobsGuard() { SetIntraJobs(saved_); }

 private:
  int saved_;
};

TEST(ThreadPoolTest, CoversRangeExactlyOncePerIndex) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> touched(n);
  pool.ParallelFor(n, /*grain=*/7, [&](size_t begin, size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, n);
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ZeroOneAndManyThreadsProduceIdenticalBytes) {
  const size_t n = 513;
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(n, 0);
    pool.ParallelFor(n, /*grain=*/0, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) out[i] = i * i + 1;
    });
    return out;
  };
  std::vector<uint64_t> seq = run(0);
  EXPECT_EQ(seq, run(1));
  EXPECT_EQ(seq, run(2));
  EXPECT_EQ(seq, run(8));
}

TEST(ThreadPoolTest, EmptyRangeNeverCallsBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, LowestChunkExceptionWins) {
  ThreadPool pool(4);
  // Every chunk of index >= 100 throws its begin index; the rethrown one
  // must be the lowest begin, whatever order workers hit them in.
  for (int trial = 0; trial < 5; ++trial) {
    try {
      pool.ParallelFor(1000, /*grain=*/10, [&](size_t begin, size_t) {
        if (begin >= 100) throw std::runtime_error(std::to_string(begin));
      });
      FAIL() << "expected ParallelFor to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "100");
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  EXPECT_FALSE(InParallelRegion());
  const size_t n = 64;
  std::vector<std::atomic<int>> touched(n * n);
  pool.ParallelFor(n, /*grain=*/1, [&](size_t obegin, size_t oend) {
    EXPECT_TRUE(InParallelRegion());
    for (size_t i = obegin; i < oend; ++i) {
      // The nested call must not re-enter the pool (deadlock) — it runs
      // inline on this worker.
      pool.ParallelFor(n, /*grain=*/1, [&](size_t begin, size_t end) {
        for (size_t j = begin; j < end; ++j) {
          touched[i * n + j].fetch_add(1);
        }
      });
    }
  });
  EXPECT_FALSE(InParallelRegion());
  for (size_t i = 0; i < n * n; ++i) EXPECT_EQ(touched[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksReturnsLowestChunkError) {
  IntraJobsGuard guard;
  SetIntraJobs(4);
  for (int trial = 0; trial < 5; ++trial) {
    Status st =
        ParallelForChunks(1000, /*grain=*/10, [&](size_t begin, size_t) {
          if (begin >= 250) {
            return Status::InvalidArgument("chunk " + std::to_string(begin));
          }
          return Status::OK();
        });
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.message(), "chunk 250");
  }
}

TEST(ThreadPoolTest, ParallelForChunksOkWhenAllChunksOk) {
  IntraJobsGuard guard;
  SetIntraJobs(3);
  std::vector<int> out(100, 0);
  Status st = ParallelForChunks(out.size(), 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = 1;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 100);
}

TEST(ThreadPoolTest, SetIntraJobsClampsAndResizesGlobalPool) {
  IntraJobsGuard guard;
  SetIntraJobs(0);
  EXPECT_EQ(IntraJobs(), 1);
  EXPECT_EQ(GlobalThreadPool().parallelism(), 1);
  SetIntraJobs(4);
  EXPECT_EQ(IntraJobs(), 4);
  EXPECT_EQ(GlobalThreadPool().parallelism(), 4);
}

/// The contract the whole PR rests on: the hot loops produce byte-identical
/// results for any --intra_jobs. Exercised end-to-end on a real generated
/// dataset through the feature table and the random forest.
TEST(ParallelDeterminismTest, FeatureTableIdenticalAcrossIntraJobs) {
  IntraJobsGuard guard;
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpAcm, 0.35)).value();
  std::vector<FeatureDef> defs =
      std::move(GenerateFeatures(ds.table_a, ds.table_b, ds.matching_attrs))
          .value();
  auto build = [&](int intra_jobs) {
    SetIntraJobs(intra_jobs);
    return std::move(
               BuildFeatureTable(defs, ds.table_a, ds.table_b, ds.train))
        .value();
  };
  FeatureTable seq = build(1);
  FeatureTable par = build(4);
  ASSERT_EQ(seq.rows.size(), par.rows.size());
  EXPECT_EQ(seq.labels, par.labels);
  for (size_t i = 0; i < seq.rows.size(); ++i) {
    ASSERT_EQ(seq.rows[i].size(), par.rows[i].size());
    for (size_t f = 0; f < seq.rows[i].size(); ++f) {
      // Bitwise equality, not approximate: the parallel path must run the
      // exact same arithmetic.
      EXPECT_EQ(seq.rows[i][f], par.rows[i][f]) << "row " << i << " feat " << f;
    }
  }
}

TEST(ParallelDeterminismTest, RandomForestIdenticalAcrossIntraJobs) {
  IntraJobsGuard guard;
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpAcm, 0.35)).value();
  std::vector<FeatureDef> defs =
      std::move(GenerateFeatures(ds.table_a, ds.table_b, ds.matching_attrs))
          .value();
  SetIntraJobs(1);
  FeatureTable train =
      std::move(BuildFeatureTable(defs, ds.table_a, ds.table_b, ds.train))
          .value();
  FeatureTable test =
      std::move(BuildFeatureTable(defs, ds.table_a, ds.table_b, ds.test))
          .value();
  auto fit_predict = [&](int intra_jobs) {
    SetIntraJobs(intra_jobs);
    RandomForest forest;
    Rng rng(1234);
    EXPECT_TRUE(forest.Fit(train.rows, train.labels, &rng).ok());
    return forest.PredictScores(test.rows);
  };
  std::vector<double> seq = fit_predict(1);
  std::vector<double> par = fit_predict(4);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], par[i]) << "pair " << i;
  }
}

}  // namespace
}  // namespace fairem
