#include "src/obs/profiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <ctime>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/robust/supervisor.h"
#include "src/util/result.h"

namespace fairem {
namespace {

/// Spins until the process has burned `seconds` of CPU time — the same
/// clock ITIMER_PROF ticks on, so the expected sample count is seconds*hz
/// regardless of machine speed or sanitizer slowdown. The malloc per outer
/// iteration matters under TSan: its runtime defers async signals until the
/// next intercepted call, so a loop of pure arithmetic would receive one
/// deferred SIGPROF total instead of one per timer tick.
uint64_t BurnCpu(double seconds) {
  volatile uint64_t acc = 0;
  std::clock_t start = std::clock();
  while (static_cast<double>(std::clock() - start) / CLOCKS_PER_SEC <
         seconds) {
    for (uint32_t i = 0; i < 10000; ++i) {
      acc = acc + static_cast<uint64_t>(i) * 2654435761u;
    }
    char* p = new char[1];
    p[0] = static_cast<char>(acc);
    volatile char sink = p[0];
    acc = acc + static_cast<uint64_t>(sink);
    delete[] p;
  }
  return acc;
}

/// Stops the global profiler even when an assertion fails mid-test; a timer
/// left armed would keep signalling through every later test.
class ProfilerGuard {
 public:
  ~ProfilerGuard() { (void)Profiler::Global().Stop(); }
};

// ---------------------------------------------------------------------------
// Zero overhead while off. Declared first: later tests in this binary start
// the profiler and legitimately register fairem.profile.* metrics in the
// process-global registry.

TEST(ProfilerOffTest, NoProfileMetricsAndNoSpanCost) {
  EXPECT_FALSE(Profiler::Global().active());
  EXPECT_FALSE(ProfilerStageTrackingEnabled());
  {
    Span span("fairem.test.off_span");
    BurnCpu(0.01);
  }
  for (const auto& [name, _] : MetricsRegistry::Global().Snapshot().counters) {
    EXPECT_EQ(name.rfind("fairem.profile.", 0), std::string::npos)
        << "profiler-off run registered " << name;
  }
  for (const auto& [name, _] : MetricsRegistry::Global().Snapshot().gauges) {
    EXPECT_EQ(name.rfind("fairem.profile.", 0), std::string::npos)
        << "profiler-off run registered " << name;
  }
}

// ---------------------------------------------------------------------------
// Folded-text algebra (pure functions, no sampling).

TEST(FoldedProfileTest, TextRoundTripMergesDuplicatesSkipsMalformed) {
  FoldedProfile profile = FoldedProfileFromText(
      "process:parent;span:fit;main;Fit 3\n"
      "process:parent;span:fit;main;Fit 2\n"   // duplicate stack: adds
      "no trailing count\n"
      "trailing;but;not;a;number x\n"
      "negative -4\n"
      "\n"
      "process:parent;span:(untagged);main 5\n");
  EXPECT_EQ(profile.stacks.size(), 2u);
  EXPECT_EQ(profile.stacks.at("process:parent;span:fit;main;Fit"), 5u);
  EXPECT_EQ(profile.TotalSamples(), 10u);

  FoldedProfile reparsed = FoldedProfileFromText(profile.ToText());
  EXPECT_EQ(reparsed.stacks, profile.stacks);

  FoldedProfile other;
  other.stacks["process:worker_9;span:fit;main;Fit"] = 7;
  other.stacks["process:parent;span:fit;main;Fit"] = 1;
  profile.Merge(other);
  EXPECT_EQ(profile.stacks.at("process:parent;span:fit;main;Fit"), 6u);
  EXPECT_EQ(profile.TotalSamples(), 18u);

  std::map<std::string, uint64_t> processes = ProcessSampleCounts(profile);
  EXPECT_EQ(processes.at("parent"), 11u);
  EXPECT_EQ(processes.at("worker_9"), 7u);
}

TEST(FoldedProfileTest, AggregateByFrameSelfTotalAndRecursion) {
  FoldedProfile profile;
  profile.stacks["process:parent;span:fit;main;Fit;Dot"] = 10;
  profile.stacks["process:parent;span:fit;main;Fit"] = 4;
  // Recursive frame: Walk appears twice but must count once per stack.
  profile.stacks["process:parent;span:fit;main;Walk;Walk"] = 2;
  std::vector<ProfTopRow> rows = AggregateByFrame(profile);
  auto find = [&](const std::string& frame) -> const ProfTopRow& {
    auto it = std::find_if(rows.begin(), rows.end(), [&](const ProfTopRow& r) {
      return r.frame == frame;
    });
    EXPECT_NE(it, rows.end()) << frame;
    return *it;
  };
  EXPECT_EQ(find("Dot").self, 10u);
  EXPECT_EQ(find("Dot").total, 10u);
  EXPECT_EQ(find("Fit").self, 4u);
  EXPECT_EQ(find("Fit").total, 14u);
  EXPECT_EQ(find("main").self, 0u);
  EXPECT_EQ(find("main").total, 16u);
  EXPECT_EQ(find("Walk").self, 2u);
  EXPECT_EQ(find("Walk").total, 2u);
  // The pseudo-frames never appear as rows.
  for (const ProfTopRow& row : rows) {
    EXPECT_EQ(row.frame.rfind("process:", 0), std::string::npos);
    EXPECT_EQ(row.frame.rfind("span:", 0), std::string::npos);
  }
  // Sorted by self descending: Dot first.
  EXPECT_EQ(rows.front().frame, "Dot");
}

TEST(FoldedProfileTest, AggregateByStageAndAttribution) {
  FoldedProfile profile;
  profile.stacks["process:parent;span:fit;main;Fit"] = 60;
  profile.stacks["process:worker_1;span:fit;main;Fit"] = 20;
  profile.stacks["process:parent;span:audit;main;Audit"] = 15;
  profile.stacks["process:parent;span:(untagged);main"] = 5;
  StageBreakdown breakdown = AggregateByStage(profile);
  EXPECT_EQ(breakdown.total_samples, 100u);
  EXPECT_EQ(breakdown.attributed_samples, 95u);
  EXPECT_DOUBLE_EQ(breakdown.AttributedFraction(), 0.95);
  ASSERT_GE(breakdown.stages.size(), 3u);
  EXPECT_EQ(breakdown.stages[0].stage, "fit");  // sorted by samples desc
  EXPECT_EQ(breakdown.stages[0].samples, 80u);  // merged across processes
  EXPECT_DOUBLE_EQ(breakdown.stages[0].share, 0.80);
}

TEST(FoldedProfileTest, CompareStageSharesFlagsDriftAboveTolerance) {
  FoldedProfile a;
  a.stacks["process:parent;span:fit;main"] = 80;
  a.stacks["process:parent;span:audit;main"] = 20;
  FoldedProfile b;
  b.stacks["process:parent;span:fit;main"] = 40;
  b.stacks["process:parent;span:audit;main"] = 60;
  EXPECT_TRUE(CompareStageShares(a, a, 0.10, 0.01).empty());
  std::vector<std::string> drift = CompareStageShares(a, b, 0.10, 0.01);
  EXPECT_EQ(drift.size(), 2u);  // both stages moved by 0.40
  // Same profiles under a loose tolerance agree.
  EXPECT_TRUE(CompareStageShares(a, b, 0.50, 0.01).empty());
  // min_share filters noise stages entirely absent from one side.
  FoldedProfile c = a;
  c.stacks["process:parent;span:tiny;main"] = 1;  // < 1% share
  EXPECT_TRUE(CompareStageShares(a, c, 0.10, 0.05).empty());
}

TEST(FoldedProfileTest, RenderersEmitTheGreppableSurfaces) {
  FoldedProfile profile;
  profile.stacks["process:parent;span:fit;main;Fit"] = 9;
  profile.stacks["process:worker_3;span:(untagged);main"] = 1;
  std::string by_stage = RenderProfTopByStage(profile);
  EXPECT_NE(by_stage.find("attributed 9/10 samples (90.0%) to named spans"),
            std::string::npos);
  EXPECT_NE(by_stage.find("parent=9"), std::string::npos);
  EXPECT_NE(by_stage.find("worker_3=1"), std::string::npos);
  std::string by_stack = RenderProfTopByStack(profile, 20);
  EXPECT_NE(by_stack.find("Fit"), std::string::npos);
  EXPECT_NE(by_stack.find("10 samples, 2 unique stacks"), std::string::npos);
}

TEST(ProfileClockTest, ParseNames) {
  EXPECT_EQ(ParseProfileClock("cpu").value(), ProfileClock::kCpu);
  EXPECT_EQ(ParseProfileClock("").value(), ProfileClock::kCpu);
  EXPECT_EQ(ParseProfileClock("wall").value(), ProfileClock::kWall);
  EXPECT_FALSE(ParseProfileClock("gpu").ok());
}

// ---------------------------------------------------------------------------
// Live sampling.

TEST(ProfilerLiveTest, StartValidatesOptionsAndRejectsDoubleStart) {
  ProfilerGuard guard;
  ProfilerOptions bad_hz;
  bad_hz.hz = 0;
  EXPECT_TRUE(Profiler::Global().Start(bad_hz).IsInvalidArgument());
  bad_hz.hz = 20000;
  EXPECT_TRUE(Profiler::Global().Start(bad_hz).IsInvalidArgument());
  ProfilerOptions bad_capacity;
  bad_capacity.capacity = 0;
  EXPECT_TRUE(Profiler::Global().Start(bad_capacity).IsInvalidArgument());

  ASSERT_TRUE(Profiler::Global().Start({}).ok());
  EXPECT_TRUE(Profiler::Global().active());
  EXPECT_TRUE(ProfilerStageTrackingEnabled());
  EXPECT_FALSE(Profiler::Global().Start({}).ok());  // already running
  ASSERT_TRUE(Profiler::Global().Stop().ok());
  EXPECT_FALSE(Profiler::Global().active());
  EXPECT_FALSE(ProfilerStageTrackingEnabled());
  EXPECT_TRUE(Profiler::Global().Stop().ok());  // idempotent
}

TEST(ProfilerLiveTest, SamplesAttributeToTheInnermostSpan) {
  ProfilerGuard guard;
  ProfilerOptions options;
  options.hz = 250;
  ASSERT_TRUE(Profiler::Global().Start(options).ok());
  {
    Span outer("fairem.test.outer");
    Span busy("fairem.test.busy");
    BurnCpu(0.4);  // ~100 expected samples at 250 Hz
  }
  ASSERT_TRUE(Profiler::Global().Stop().ok());
  EXPECT_GE(Profiler::Global().SampleCount(), 20u);

  FoldedProfile profile = Profiler::Global().Collect();
  EXPECT_GT(profile.TotalSamples(), 0u);
  StageBreakdown breakdown = AggregateByStage(profile);
  uint64_t busy_samples = 0;
  for (const StageShare& share : breakdown.stages) {
    if (share.stage == "fairem.test.busy") busy_samples = share.samples;
    // The innermost span wins: nothing should sit on the outer stage while
    // the busy span is open.
    EXPECT_NE(share.stage, "fairem.test.outer");
  }
  // The burn dominates this test body; most samples must land on its span.
  EXPECT_GT(busy_samples, breakdown.total_samples / 2);

  // Every stack carries the process/span prefix and at least one real frame.
  for (const auto& [stack, _] : profile.stacks) {
    EXPECT_EQ(stack.rfind("process:parent;span:", 0), 0u) << stack;
  }

  // ExportMetrics lands the same counts on delta counters, exactly once.
  MetricsRegistry& reg = MetricsRegistry::Global();
  uint64_t samples_before = reg.GetCounter("fairem.profile.samples")->value();
  Profiler::Global().ExportMetrics();
  uint64_t exported =
      reg.GetCounter("fairem.profile.samples")->value() - samples_before;
  EXPECT_EQ(exported, profile.TotalSamples());
  Profiler::Global().ExportMetrics();  // second export: nothing new
  EXPECT_EQ(reg.GetCounter("fairem.profile.samples")->value(),
            samples_before + exported);
  EXPECT_GT(
      reg.GetCounter("fairem.profile.stage.fairem.test.busy.samples")->value(),
      0u);
  Profiler::Global().ExportStageCpuGauges();
  EXPECT_GT(reg.GetGauge("fairem.profile.stage.fairem.test.busy.cpu_seconds")
                ->value(),
            0.0);
}

TEST(ProfilerLiveTest, RingOverflowDropsAndCountsInsteadOfGrowing) {
  ProfilerGuard guard;
  ProfilerOptions options;
  options.hz = 997;
  options.capacity = 8;
  ASSERT_TRUE(Profiler::Global().Start(options).ok());
  BurnCpu(0.2);  // ~200 ticks into 8 slots
  ASSERT_TRUE(Profiler::Global().Stop().ok());
  EXPECT_EQ(Profiler::Global().SampleCount(), 8u);
  EXPECT_GT(Profiler::Global().DroppedCount(), 0u);
  EXPECT_LE(Profiler::Global().Collect().TotalSamples(), 8u);
}

TEST(ProfilerLiveTest, WallClockModeSamplesSleepingTime) {
  ProfilerGuard guard;
  ProfilerOptions options;
  options.hz = 250;
  options.clock = ProfileClock::kWall;
  ASSERT_TRUE(Profiler::Global().Start(options).ok());
  // Sleeping burns no CPU; only the wall clock can sample it.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(Profiler::Global().Stop().ok());
  EXPECT_GT(Profiler::Global().SampleCount(), 0u);
}

TEST(ProfilerLiveTest, SpanResourceAttributionEmitsDeltas) {
  ProfilerGuard guard;
  ASSERT_TRUE(Profiler::Global().Start({}).ok());
  {
    Span span("fairem.test.resources");
    // Touch memory so the span has a real footprint; value irrelevant.
    std::vector<char> block(1 << 20, 1);
    volatile char sink = block[4096];
    (void)sink;
  }
  ASSERT_TRUE(Profiler::Global().Stop().ok());
  // /proc/self/statm exists on every Linux this suite runs on, so the span
  // must have recorded an RSS delta gauge (any value, including zero).
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(
      snap.gauges.count("fairem.profile.span.fairem.test.resources.rss_delta_kb"),
      1u);
}

TEST(ProfilerLiveTest, AbsorbFoldedMergesIntoMergedProfile) {
  // No sampling needed: absorb is pure bookkeeping over folded text.
  uint64_t before =
      Profiler::Global().MergedProfile().TotalSamples();
  Profiler::Global().AbsorbFolded(
      "process:worker_42;span:fit;main;Fit 11\n");
  FoldedProfile merged = Profiler::Global().MergedProfile();
  EXPECT_EQ(merged.TotalSamples() - before, 11u);
  EXPECT_EQ(ProcessSampleCounts(merged).at("worker_42"), 11u);
}

TEST(ProcResourceGaugesTest, EmitsRusageFootprint) {
  EmitProcessResourceGauges();
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_GT(snap.gauges.at("fairem.proc.peak_rss_mb"), 0.0);
  EXPECT_GE(snap.gauges.at("fairem.proc.user_cpu_s"), 0.0);
  EXPECT_GE(snap.gauges.at("fairem.proc.sys_cpu_s"), 0.0);
  EXPECT_GE(snap.gauges.at("fairem.proc.vol_ctx_switches"), 0.0);
  EXPECT_GE(snap.gauges.at("fairem.proc.invol_ctx_switches"), 0.0);
}

// ---------------------------------------------------------------------------
// Cross-process merge through the supervisor.

TEST(ProfilerSupervisorTest, WorkersShipProfilesTaggedWithTheirProcess) {
  ProfilerGuard guard;
  ProfilerOptions options;
  options.hz = 250;
  ASSERT_TRUE(Profiler::Global().Start(options).ok());

  SupervisorOptions sup_options;
  sup_options.jobs = 2;
  Supervisor supervisor(sup_options);
  auto busy_task = []() -> Result<std::string> {
    Span span("fairem.test.cell");
    BurnCpu(0.4);
    return std::string("ok");
  };
  std::vector<Supervisor::Task> tasks{{"cell_a", busy_task},
                                      {"cell_b", busy_task}};
  std::vector<TaskOutcome> outcomes = supervisor.Run(tasks).value();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].kind, TaskOutcome::Kind::kOk);
  EXPECT_EQ(outcomes[1].kind, TaskOutcome::Kind::kOk);
  ASSERT_TRUE(Profiler::Global().Stop().ok());

  // The merged profile must hold frames from more than one process: the
  // parent plus at least one forked worker (two distinct pids, but both
  // workers can reuse a pid across the two sequential-looking labels only
  // if the kernel recycles it — so assert >= 2 labels, >= 1 worker).
  FoldedProfile merged = Profiler::Global().MergedProfile();
  std::map<std::string, uint64_t> processes = ProcessSampleCounts(merged);
  size_t workers = 0;
  uint64_t worker_samples = 0;
  for (const auto& [label, count] : processes) {
    if (label.rfind("worker_", 0) == 0) {
      ++workers;
      worker_samples += count;
    }
  }
  EXPECT_GE(workers, 1u);
  EXPECT_GE(processes.size(), 2u);
  EXPECT_GT(worker_samples, 0u);
  // Worker samples carry their span tags through the merge.
  StageBreakdown breakdown = AggregateByStage(merged);
  bool saw_cell = false;
  for (const StageShare& share : breakdown.stages) {
    saw_cell = saw_cell || share.stage == "fairem.test.cell";
  }
  EXPECT_TRUE(saw_cell);
  // The shipped per-stage counters merged additively into this registry.
  EXPECT_GT(MetricsRegistry::Global()
                .GetCounter("fairem.profile.stage.fairem.test.cell.samples")
                ->value(),
            0u);
  EXPECT_GT(MetricsRegistry::Global()
                .GetCounter("fairem.profile.profiles_merged")
                ->value(),
            0u);
}

}  // namespace
}  // namespace fairem
