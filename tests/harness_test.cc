#include "src/harness/experiment.h"

#include <gtest/gtest.h>

#include "src/datagen/benchmark_suite.h"

namespace fairem {
namespace {

TEST(HarnessTest, RunMatcherPopulatesEverything) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpAcm, 0.35)).value();
  MatcherRun run = std::move(RunMatcher(ds, MatcherKind::kDT)).value();
  EXPECT_TRUE(run.supported);
  EXPECT_EQ(run.kind, MatcherKind::kDT);
  EXPECT_EQ(run.matcher_name, "DTMatcher");
  EXPECT_EQ(run.test_scores.size(), ds.test.size());
  EXPECT_EQ(run.counts.total(), static_cast<int64_t>(ds.test.size()));
  EXPECT_GT(run.accuracy, 0.0);
  EXPECT_GE(run.fit_seconds, 0.0);
  EXPECT_GE(run.predict_seconds, 0.0);
}

TEST(HarnessTest, UnsupportedMatcherReportsCleanly) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kCameras, 0.35)).value();
  MatcherRun run = std::move(RunMatcher(ds, MatcherKind::kDedupe)).value();
  EXPECT_FALSE(run.supported);
  EXPECT_TRUE(run.test_scores.empty());
}

TEST(HarnessTest, AuditConsistentWithManualPath) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpScholar, 0.5)).value();
  MatcherRun run = std::move(RunMatcher(ds, MatcherKind::kNB)).value();
  AuditReport via_harness =
      std::move(AuditRunSingle(ds, run)).value();
  // Manual: auditor + outcomes should give identical entries.
  FairnessAuditor auditor = std::move(MakeAuditor(ds)).value();
  std::vector<PairOutcome> outcomes =
      std::move(MakeOutcomes(ds.test, run.test_scores, ds.default_threshold))
          .value();
  AuditReport manual =
      std::move(auditor.AuditSingle(outcomes, AuditOptions{})).value();
  ASSERT_EQ(via_harness.entries.size(), manual.entries.size());
  for (size_t i = 0; i < manual.entries.size(); ++i) {
    EXPECT_EQ(via_harness.entries[i].group_label,
              manual.entries[i].group_label);
    EXPECT_DOUBLE_EQ(via_harness.entries[i].disparity,
                     manual.entries[i].disparity);
    EXPECT_EQ(via_harness.entries[i].unfair, manual.entries[i].unfair);
  }
}

TEST(HarnessTest, GroupBreakdownSumsToConsistentCounts) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.35)).value();
  MatcherRun run = std::move(RunMatcher(ds, MatcherKind::kLogReg)).value();
  std::vector<GroupRates> breakdown =
      std::move(GroupBreakdown(ds, run)).value();
  ASSERT_EQ(breakdown.size(), 2u);  // cn, de
  // Binary exclusive attribute: per-group totals can exceed the test size
  // only through cross-group pairs (counted in both).
  int64_t sum = 0;
  for (const auto& g : breakdown) sum += g.counts.total();
  EXPECT_GE(sum, static_cast<int64_t>(ds.test.size()));
  EXPECT_LE(sum, static_cast<int64_t>(2 * ds.test.size()));
}

TEST(HarnessTest, GridReportSkipsRequestedMatchers) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpScholar, 0.4)).value();
  std::vector<MatcherKind> skip_all = AllMatcherKinds();
  std::string grid =
      std::move(UnfairnessGridReport(ds, false, AuditOptions{}, skip_all))
          .value();
  EXPECT_TRUE(grid.empty());
}

}  // namespace
}  // namespace fairem
