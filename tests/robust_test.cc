#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"
#include "src/obs/metrics.h"
#include "src/robust/checkpoint.h"
#include "src/robust/failpoint.h"
#include "src/robust/retry.h"

namespace fairem {
namespace {

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name)->value();
}

/// Disarms failpoints and restores the real retry sleep when a test exits,
/// even on assertion failure — both are process-global.
class RobustGuard {
 public:
  RobustGuard() { FailpointRegistry::Global().Clear(); }
  ~RobustGuard() {
    FailpointRegistry::Global().Clear();
    SetRetrySleepFnForTest(nullptr);
  }
};

std::string FreshTempDir(const std::string& leaf) {
  std::string dir = ::testing::TempDir() + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Failpoint spec parsing

TEST(FailpointSpecTest, ParsesEntries) {
  std::vector<FailpointSpec> specs =
      std::move(ParseFailpointSpecs("csv_read=error(0.05);grid_cell=crash(1,5)"))
          .value();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].site, "csv_read");
  EXPECT_EQ(specs[0].action, FailpointAction::kError);
  EXPECT_DOUBLE_EQ(specs[0].probability, 0.05);
  EXPECT_EQ(specs[0].skip, 0u);
  EXPECT_EQ(specs[1].site, "grid_cell");
  EXPECT_EQ(specs[1].action, FailpointAction::kCrash);
  EXPECT_DOUBLE_EQ(specs[1].probability, 1.0);
  EXPECT_EQ(specs[1].skip, 5u);
}

TEST(FailpointSpecTest, TolerantOfWhitespaceAndEmptyEntries) {
  std::vector<FailpointSpec> specs =
      std::move(ParseFailpointSpecs(" a = error( 0.5 , 2 ) ; ; ")).value();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].site, "a");
  EXPECT_DOUBLE_EQ(specs[0].probability, 0.5);
  EXPECT_EQ(specs[0].skip, 2u);
}

TEST(FailpointSpecTest, RejectsMalformedSpecs) {
  EXPECT_TRUE(ParseFailpointSpecs("no_equals").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFailpointSpecs("=error(1)").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFailpointSpecs("x=explode(1)").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFailpointSpecs("x=error(1.5)").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFailpointSpecs("x=error(-1)").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFailpointSpecs("x=error(1,-3)").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFailpointSpecs("x=error(1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFailpointSpecs("x=error").status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Failpoint registry

TEST(FailpointRegistryTest, DisarmedIsFreeAndAlwaysOk) {
  RobustGuard guard;
  EXPECT_FALSE(FailpointRegistry::Global().armed());
  EXPECT_TRUE(FailpointRegistry::Global().Hit("anything").ok());
  EXPECT_TRUE(CheckFailpoint("anything").ok());
}

TEST(FailpointRegistryTest, CertainErrorFiresEveryHit) {
  RobustGuard guard;
  ASSERT_TRUE(FailpointRegistry::Global().Configure("boom=error(1)").ok());
  EXPECT_TRUE(FailpointRegistry::Global().armed());
  for (int i = 0; i < 3; ++i) {
    Status st = FailpointRegistry::Global().Hit("boom");
    EXPECT_EQ(st.code(), StatusCode::kInternal);
    EXPECT_NE(st.ToString().find("injected failure at boom"),
              std::string::npos);
  }
  EXPECT_TRUE(FailpointRegistry::Global().Hit("other_site").ok());
  EXPECT_EQ(FailpointRegistry::Global().HitCount("boom"), 3u);
}

TEST(FailpointRegistryTest, SkipLetsEarlyHitsPass) {
  RobustGuard guard;
  ASSERT_TRUE(FailpointRegistry::Global().Configure("boom=error(1,3)").ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(FailpointRegistry::Global().Hit("boom").ok()) << i;
  }
  EXPECT_FALSE(FailpointRegistry::Global().Hit("boom").ok());
  EXPECT_FALSE(FailpointRegistry::Global().Hit("boom").ok());
}

TEST(FailpointRegistryTest, ZeroProbabilityNeverFires) {
  RobustGuard guard;
  ASSERT_TRUE(FailpointRegistry::Global().Configure("boom=error(0)").ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(FailpointRegistry::Global().Hit("boom").ok());
  }
}

TEST(FailpointRegistryTest, FirePatternIsDeterministicInSeed) {
  RobustGuard guard;
  auto pattern = [](uint64_t seed) {
    EXPECT_TRUE(
        FailpointRegistry::Global().Configure("flaky=error(0.5)", seed).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!FailpointRegistry::Global().Hit("flaky").ok());
    }
    return fired;
  };
  std::vector<bool> first = pattern(7);
  std::vector<bool> again = pattern(7);
  EXPECT_EQ(first, again);
  // A 0.5 coin over 64 hits fires somewhere but not everywhere.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST(FailpointRegistryTest, ClearDisarms) {
  RobustGuard guard;
  ASSERT_TRUE(FailpointRegistry::Global().Configure("boom=error(1)").ok());
  FailpointRegistry::Global().Clear();
  EXPECT_FALSE(FailpointRegistry::Global().armed());
  EXPECT_TRUE(FailpointRegistry::Global().Hit("boom").ok());
}

Status FunctionWithInjectionSite() {
  FAIREM_FAILPOINT("macro_site");
  return Status::OK();
}

TEST(FailpointRegistryTest, MacroReturnsInjectedErrorFromEnclosingFunction) {
  RobustGuard guard;
  EXPECT_TRUE(FunctionWithInjectionSite().ok());
  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("macro_site=error(1)").ok());
  Status st = FunctionWithInjectionSite();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(FailpointDeathTest, CrashActionExitsWithCrashCode) {
  RobustGuard guard;
  EXPECT_EXIT(
      {
        Status ignored =
            FailpointRegistry::Global().Configure("die=crash(1)");
        ignored = CheckFailpoint("die");
      },
      ::testing::ExitedWithCode(kCrashExitCode), "injected failure at die");
}

// ---------------------------------------------------------------------------
// Retry policy

TEST(RetryTest, RetryableCodes) {
  EXPECT_TRUE(IsRetryableStatus(Status::Internal("x")));
  EXPECT_TRUE(IsRetryableStatus(Status::IOError("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::NotFound("x")));
}

TEST(RetryTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.05;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.3;
  policy.jitter_fraction = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 1, &rng), 0.05);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 2, &rng), 0.1);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 3, &rng), 0.2);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 4, &rng), 0.3);  // capped
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 10, &rng), 0.3);
}

TEST(RetryTest, JitterStaysWithinFraction) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 1.0;
  policy.max_backoff_seconds = 1.0;
  policy.jitter_fraction = 0.5;
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    double b = BackoffSeconds(policy, 1, &rng);
    EXPECT_GE(b, 0.5);
    EXPECT_LE(b, 1.5);
  }
}

TEST(RetryTest, RetriesTransientFailureUntilSuccess) {
  RobustGuard guard;
  std::vector<double> sleeps;
  SetRetrySleepFnForTest([&](double s) { sleeps.push_back(s); });
  uint64_t retries_before = CounterValue("fairem.robust.retries");
  uint64_t successes_before = CounterValue("fairem.robust.retry_successes");
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 5;
  Status st = RetryCall(policy, [&]() {
    ++calls;
    return calls < 3 ? Status::Internal("transient") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(CounterValue("fairem.robust.retries") - retries_before, 2u);
  EXPECT_EQ(CounterValue("fairem.robust.retry_successes") - successes_before,
            1u);
}

TEST(RetryTest, ResultOverloadRetriesAndReturnsValue) {
  RobustGuard guard;
  SetRetrySleepFnForTest([](double) {});
  int calls = 0;
  RetryPolicy policy;
  Result<int> r = RetryCall(policy, [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::IOError("flaky disk");
    return 42;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, NonRetryableFailsImmediately) {
  RobustGuard guard;
  std::vector<double> sleeps;
  SetRetrySleepFnForTest([&](double s) { sleeps.push_back(s); });
  uint64_t giveups_before = CounterValue("fairem.robust.retry_giveups");
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 5;
  Status st = RetryCall(policy, [&]() {
    ++calls;
    return Status::InvalidArgument("bad input");
  });
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(CounterValue("fairem.robust.retry_giveups") - giveups_before, 1u);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  RobustGuard guard;
  SetRetrySleepFnForTest([](double) {});
  uint64_t giveups_before = CounterValue("fairem.robust.retry_giveups");
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 3;
  Status st = RetryCall(policy, [&]() {
    ++calls;
    return Status::Internal("always down");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(CounterValue("fairem.robust.retry_giveups") - giveups_before, 1u);
}

TEST(RetryTest, DeadlineStopsRetrying) {
  RobustGuard guard;
  std::vector<double> sleeps;
  SetRetrySleepFnForTest([&](double s) { sleeps.push_back(s); });
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_seconds = 10.0;  // first backoff alone busts it
  policy.deadline_seconds = 1.0;
  Status st = RetryCall(policy, [&]() {
    ++calls;
    return Status::Internal("always down");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

// ---------------------------------------------------------------------------
// Checkpoint store

TEST(CheckpointStoreTest, DisabledStoreIsInert) {
  CheckpointStore store("");
  EXPECT_FALSE(store.enabled());
  EXPECT_TRUE(store.Load("k").status().IsNotFound());
  EXPECT_TRUE(store.Save("k", "payload").ok());
}

TEST(CheckpointStoreTest, SaveLoadRoundTrip) {
  CheckpointStore store(FreshTempDir("fairem_ckpt_roundtrip"));
  EXPECT_TRUE(store.enabled());
  EXPECT_TRUE(store.Load("cell").status().IsNotFound());
  ASSERT_TRUE(store.Save("cell", "v1").ok());
  EXPECT_EQ(std::move(store.Load("cell")).value(), "v1");
  ASSERT_TRUE(store.Save("cell", "v2").ok());  // overwrite
  EXPECT_EQ(std::move(store.Load("cell")).value(), "v2");
  // Atomic publish: no temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(store.PathFor("cell") + ".tmp"));
}

TEST(CheckpointStoreTest, SanitizeKeyKeepsFilenamesSafe) {
  EXPECT_EQ(CheckpointStore::SanitizeKey("DBLP-Scholar.single.DTMatcher"),
            "DBLP-Scholar.single.DTMatcher");
  EXPECT_EQ(CheckpointStore::SanitizeKey("a/b c:d\\e"), "a_b_c_d_e");
  CheckpointStore store("/tmp/x");
  EXPECT_EQ(store.PathFor("a/b"), "/tmp/x/a_b.json");
}

TEST(CheckpointStoreTest, GridCellJsonRoundTrip) {
  GridCellCheckpoint cell;
  cell.matcher = "DTMatcher";
  cell.marker = "DT";
  cell.supported = true;
  cell.error = true;
  cell.status = "Internal: \"quoted\" \\ back\nnew\ttab \x01 ctrl";
  cell.marks.push_back({"female", "accuracy_parity", true});
  cell.marks.push_back({"male", "equal_opportunity", false});
  GridCellCheckpoint back =
      std::move(GridCellFromJson(GridCellToJson(cell))).value();
  EXPECT_EQ(back.matcher, cell.matcher);
  EXPECT_EQ(back.marker, cell.marker);
  EXPECT_EQ(back.supported, cell.supported);
  EXPECT_EQ(back.error, cell.error);
  EXPECT_EQ(back.status, cell.status);
  ASSERT_EQ(back.marks.size(), 2u);
  EXPECT_EQ(back.marks[0].group, "female");
  EXPECT_EQ(back.marks[0].measure, "accuracy_parity");
  EXPECT_TRUE(back.marks[0].unfair);
  EXPECT_EQ(back.marks[1].group, "male");
  EXPECT_FALSE(back.marks[1].unfair);
}

TEST(CheckpointStoreTest, GridCellJsonRejectsGarbage) {
  EXPECT_FALSE(GridCellFromJson("").ok());
  EXPECT_FALSE(GridCellFromJson("not json").ok());
  EXPECT_FALSE(GridCellFromJson("{\"matcher\":\"DT\"").ok());  // truncated
  EXPECT_FALSE(GridCellFromJson("{\"surprise\":true}").ok());
  EXPECT_FALSE(GridCellFromJson("{}").ok());  // missing matcher
}

// ---------------------------------------------------------------------------
// Grid-level fault tolerance. A small matcher subset keeps these fast; the
// classical matchers cover supported and audit-heavy paths.

std::vector<MatcherKind> SkipAllExcept(const std::vector<MatcherKind>& keep) {
  std::vector<MatcherKind> skip;
  for (MatcherKind kind : AllMatcherKinds()) {
    if (std::find(keep.begin(), keep.end(), kind) == keep.end()) {
      skip.push_back(kind);
    }
  }
  return skip;
}

GridRunOptions SmallGridOptions() {
  GridRunOptions options;
  options.audit.reference = AuditReference::kComplement;
  options.skip = SkipAllExcept(
      {MatcherKind::kDT, MatcherKind::kLogReg, MatcherKind::kNB,
       MatcherKind::kBooleanRule});
  return options;
}

TEST(RobustGridTest, TransientFailpointRetriesToCompletion) {
  RobustGuard guard;
  SetRetrySleepFnForTest([](double) {});
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.3)).value();
  GridRunOptions options = SmallGridOptions();
  std::string baseline =
      std::move(UnfairnessGridReport(ds, false, options)).value();

  options.retry.max_attempts = 8;
  uint64_t retries_before = CounterValue("fairem.robust.retries");
  uint64_t errors_before = CounterValue("fairem.robust.grid_error_cells");
  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("matcher_fit=error(0.5)", 7).ok());
  std::string report =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  FailpointRegistry::Global().Clear();

  // The injected transient failures were retried away: same report as the
  // clean run, retry counters moved, no cell degraded to an error entry.
  EXPECT_EQ(report, baseline);
  EXPECT_GT(CounterValue("fairem.robust.retries"), retries_before);
  EXPECT_EQ(CounterValue("fairem.robust.grid_error_cells"), errors_before);
  EXPECT_EQ(report.find("errors (cells unavailable"), std::string::npos);
}

TEST(RobustGridTest, PermanentFailureDegradesToErrorCell) {
  RobustGuard guard;
  SetRetrySleepFnForTest([](double) {});
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.3)).value();
  GridRunOptions options = SmallGridOptions();
  options.retry.max_attempts = 2;
  uint64_t errors_before = CounterValue("fairem.robust.grid_error_cells");
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Configure("matcher_fit.NBMatcher=error(1)")
                  .ok());
  std::string report =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  FailpointRegistry::Global().Clear();

  // Exactly the targeted matcher is reported unavailable; the rest of the
  // grid still renders.
  EXPECT_EQ(CounterValue("fairem.robust.grid_error_cells") - errors_before,
            1u);
  EXPECT_NE(report.find("errors (cells unavailable after retries):"),
            std::string::npos);
  EXPECT_NE(report.find("NBMatcher: Internal: injected failure"),
            std::string::npos);
  EXPECT_NE(report.find("DT"), std::string::npos);
}

TEST(RobustGridTest, CheckpointedRunResumesWithoutRecomputing) {
  RobustGuard guard;
  SetRetrySleepFnForTest([](double) {});
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.3)).value();
  GridRunOptions options = SmallGridOptions();
  options.checkpoint_dir = FreshTempDir("fairem_ckpt_inproc");

  uint64_t saved_before = CounterValue("fairem.robust.checkpoint_cells_saved");
  std::string first =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  uint64_t saved =
      CounterValue("fairem.robust.checkpoint_cells_saved") - saved_before;
  EXPECT_EQ(saved, 4u);  // one checkpoint per kept matcher

  // Second run: arm a certain fit failure. If any cell were re-run instead
  // of replayed from its checkpoint, it would degrade to an error entry and
  // the reports would differ.
  uint64_t loaded_before =
      CounterValue("fairem.robust.checkpoint_cells_loaded");
  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("matcher_fit=error(1)").ok());
  std::string second =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  FailpointRegistry::Global().Clear();
  EXPECT_EQ(second, first);
  EXPECT_EQ(
      CounterValue("fairem.robust.checkpoint_cells_loaded") - loaded_before,
      4u);
}

TEST(RobustGridTest, CorruptCheckpointFallsBackToLiveRun) {
  RobustGuard guard;
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.3)).value();
  GridRunOptions options = SmallGridOptions();
  options.checkpoint_dir = FreshTempDir("fairem_ckpt_corrupt");
  std::string first =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  // Corrupt one cell's checkpoint; the resumed run re-runs just that cell
  // and still reproduces the report.
  CheckpointStore store(options.checkpoint_dir);
  std::string key = ds.name + ".single.DTMatcher";
  ASSERT_TRUE(std::filesystem::exists(store.PathFor(key)));
  std::ofstream(store.PathFor(key), std::ios::trunc) << "{corrupt";
  std::string second =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  EXPECT_EQ(second, first);
  // The re-run repaired the checkpoint in place.
  EXPECT_TRUE(
      std::move(GridCellFromJson(std::move(store.Load(key)).value())).ok());
}

TEST(RobustGridTest, ErrorCellsArePersistedAcrossResume) {
  RobustGuard guard;
  SetRetrySleepFnForTest([](double) {});
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.3)).value();
  GridRunOptions options = SmallGridOptions();
  options.retry.max_attempts = 1;
  options.checkpoint_dir = FreshTempDir("fairem_ckpt_errcell");
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Configure("matcher_fit.NBMatcher=error(1)")
                  .ok());
  std::string first =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  FailpointRegistry::Global().Clear();
  EXPECT_NE(first.find("NBMatcher:"), std::string::npos);
  // Resume without any failpoint: the error cell replays from its
  // checkpoint rather than silently healing — delete the file to re-run.
  std::string second =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  EXPECT_EQ(second, first);
  CheckpointStore store(options.checkpoint_dir);
  ASSERT_TRUE(
      std::filesystem::remove(store.PathFor(ds.name + ".single.NBMatcher")));
  std::string healed =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  EXPECT_EQ(healed.find("NBMatcher:"), std::string::npos);
}

// The headline kill/resume drill: a crash failpoint kills the grid run
// mid-flight (in the death-test child), then the parent resumes from the
// surviving checkpoints and must reproduce the uninterrupted report byte
// for byte.
TEST(RobustGridDeathTest, KilledRunResumesByteIdentical) {
  RobustGuard guard;
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.3)).value();
  GridRunOptions options = SmallGridOptions();
  std::string expected =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  EXPECT_FALSE(expected.empty());

  options.checkpoint_dir = FreshTempDir("fairem_ckpt_killed");
  EXPECT_EXIT(
      {
        // Crash on the third cell: two checkpoints land on disk first.
        Status ignored =
            FailpointRegistry::Global().Configure("grid_cell=crash(1,2)");
        Result<std::string> r = UnfairnessGridReport(ds, false, options);
        (void)r;
      },
      ::testing::ExitedWithCode(kCrashExitCode),
      "injected failure at grid_cell");
  size_t survivors = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.checkpoint_dir)) {
    survivors += entry.path().extension() == ".json" ? 1 : 0;
  }
  EXPECT_EQ(survivors, 2u);

  uint64_t loaded_before =
      CounterValue("fairem.robust.checkpoint_cells_loaded");
  std::string resumed =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  EXPECT_EQ(resumed, expected);
  EXPECT_EQ(
      CounterValue("fairem.robust.checkpoint_cells_loaded") - loaded_before,
      2u);
}

}  // namespace
}  // namespace fairem
