#include "src/core/audit.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

/// A controlled two-group scenario where the matcher treats g_bad much
/// worse than g_good: g_bad's true matches are all missed.
struct Scenario {
  Table a;
  Table b;
  std::vector<PairOutcome> outcomes;
};

Scenario MakeBiasedScenario() {
  Schema schema = std::move(Schema::Make({"grp"})).value();
  Table a("a", schema);
  Table b("b", schema);
  // 20 records per table: rows 0-9 g_good, rows 10-19 g_bad. Pair i-i is a
  // true match; the matcher finds all g_good matches and no g_bad matches,
  // plus correctly rejects all cross non-matches.
  for (int i = 0; i < 20; ++i) {
    std::string g = i < 10 ? "g_good" : "g_bad";
    EXPECT_TRUE(a.AppendValues(i, {g}).ok());
    EXPECT_TRUE(b.AppendValues(i, {g}).ok());
  }
  Scenario s{std::move(a), std::move(b), {}};
  for (size_t i = 0; i < 20; ++i) {
    bool good = i < 10;
    s.outcomes.push_back({i, i, /*predicted=*/good, /*true=*/true});
    // Non-match partners within the same group, correctly rejected.
    s.outcomes.push_back({i, (i + 1) % (good ? 10 : 20), false, false});
  }
  return s;
}

FairnessAuditor MakeAuditor(const Scenario& s) {
  SensitiveAttr attr{"grp", SensitiveAttrKind::kBinary, '|'};
  return std::move(FairnessAuditor::Make(s.a, s.b, attr)).value();
}

TEST(AuditTest, FlagsDiscriminatedGroupOnTprp) {
  Scenario s = MakeBiasedScenario();
  FairnessAuditor auditor = MakeAuditor(s);
  AuditOptions options;
  options.measures = {FairnessMeasure::kTruePositiveRateParity};
  Result<AuditReport> report = auditor.AuditSingle(s.outcomes, options);
  ASSERT_TRUE(report.ok());
  std::vector<std::string> unfair = report->DiscriminatedGroups(
      FairnessMeasure::kTruePositiveRateParity);
  ASSERT_EQ(unfair.size(), 1u);
  EXPECT_EQ(unfair[0], "g_bad");
  const AuditEntry* entry =
      report->Find("g_bad", FairnessMeasure::kTruePositiveRateParity);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->defined);
  EXPECT_DOUBLE_EQ(entry->group_value, 0.0);
  EXPECT_DOUBLE_EQ(entry->overall_value, 0.5);
  EXPECT_DOUBLE_EQ(entry->disparity, 0.5);
  EXPECT_TRUE(entry->unfair);
}

TEST(AuditTest, PerfectMatcherIsFairEverywhere) {
  Scenario s = MakeBiasedScenario();
  for (auto& o : s.outcomes) o.predicted_match = o.true_match;
  FairnessAuditor auditor = MakeAuditor(s);
  Result<AuditReport> report =
      auditor.AuditSingle(s.outcomes, AuditOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->NumDiscriminatedGroups(), 0);
  EXPECT_TRUE(report->UnfairEntries().empty());
}

TEST(AuditTest, EqualizedOddsIsConjunction) {
  Scenario s = MakeBiasedScenario();
  FairnessAuditor auditor = MakeAuditor(s);
  AuditOptions options;
  options.measures = {FairnessMeasure::kEqualizedOdds};
  Result<AuditReport> report = auditor.AuditSingle(s.outcomes, options);
  ASSERT_TRUE(report.ok());
  // g_bad is TPRP-unfair, so EO fires too.
  EXPECT_EQ(
      report->DiscriminatedGroups(FairnessMeasure::kEqualizedOdds).size(),
      1u);
}

TEST(AuditTest, MinGroupPairsSuppressesTinyGroups) {
  Scenario s = MakeBiasedScenario();
  FairnessAuditor auditor = MakeAuditor(s);
  AuditOptions options;
  options.measures = {FairnessMeasure::kTruePositiveRateParity};
  options.min_group_pairs = 1000;
  Result<AuditReport> report = auditor.AuditSingle(s.outcomes, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->NumDiscriminatedGroups(), 0);
}

TEST(AuditTest, PairwiseAuditCoversAllGroupPairs) {
  Scenario s = MakeBiasedScenario();
  FairnessAuditor auditor = MakeAuditor(s);
  AuditOptions options;
  options.measures = {FairnessMeasure::kAccuracyParity};
  Result<AuditReport> report = auditor.AuditPairwise(s.outcomes, options);
  ASSERT_TRUE(report.ok());
  // 2 groups -> 3 unordered pairs.
  EXPECT_EQ(report->entries.size(), 3u);
  EXPECT_NE(report->Find("g_bad | g_bad", FairnessMeasure::kAccuracyParity),
            nullptr);
  EXPECT_NE(report->Find("g_bad | g_good", FairnessMeasure::kAccuracyParity),
            nullptr);
}

TEST(AuditTest, PairwiseNonOverlappingGroupsUndefinedTpMeasures) {
  // All true matches are within-group; the cross pair g_bad|g_good has no
  // TPs or FNs, so TPRP is undefined there (§3.5's inapplicability).
  Scenario s = MakeBiasedScenario();
  FairnessAuditor auditor = MakeAuditor(s);
  AuditOptions options;
  options.measures = {FairnessMeasure::kTruePositiveRateParity};
  Result<AuditReport> report = auditor.AuditPairwise(s.outcomes, options);
  ASSERT_TRUE(report.ok());
  const AuditEntry* cross =
      report->Find("g_bad | g_good", FairnessMeasure::kTruePositiveRateParity);
  ASSERT_NE(cross, nullptr);
  EXPECT_FALSE(cross->defined);
  EXPECT_FALSE(cross->unfair);
}

TEST(AuditTest, SubgroupAuditSkipsUnknownGroups) {
  Scenario s = MakeBiasedScenario();
  FairnessAuditor auditor = MakeAuditor(s);
  Subgroup known;
  known.groups = {"g_bad"};
  Subgroup unknown;
  unknown.groups = {"not_a_group"};
  AuditOptions options;
  options.measures = {FairnessMeasure::kAccuracyParity};
  Result<AuditReport> report =
      auditor.AuditSubgroups({known, unknown}, s.outcomes, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->entries.size(), 1u);
  EXPECT_EQ(report->entries[0].group_label, "g_bad");
}

TEST(AuditTest, ComplementReferenceAmplifiesBinaryDisparity) {
  Scenario s = MakeBiasedScenario();
  FairnessAuditor auditor = MakeAuditor(s);
  AuditOptions overall;
  overall.measures = {FairnessMeasure::kTruePositiveRateParity};
  AuditOptions complement = overall;
  complement.reference = AuditReference::kComplement;
  double d_overall =
      std::move(auditor.AuditSingle(s.outcomes, overall)).value()
          .Find("g_bad", FairnessMeasure::kTruePositiveRateParity)
          ->disparity;
  double d_complement =
      std::move(auditor.AuditSingle(s.outcomes, complement)).value()
          .Find("g_bad", FairnessMeasure::kTruePositiveRateParity)
          ->disparity;
  // vs overall: 0.5 - 0.0; vs the other group: 1.0 - 0.0.
  EXPECT_DOUBLE_EQ(d_overall, 0.5);
  EXPECT_DOUBLE_EQ(d_complement, 1.0);
}

TEST(AuditTest, AllPredictedMatchDegenerate) {
  // A matcher that says "match" to everything: audit must not crash and
  // TNR-style statistics stay defined where denominators exist.
  Scenario s = MakeBiasedScenario();
  for (auto& o : s.outcomes) o.predicted_match = true;
  FairnessAuditor auditor = MakeAuditor(s);
  Result<AuditReport> report =
      auditor.AuditSingle(s.outcomes, AuditOptions{});
  ASSERT_TRUE(report.ok());
  const AuditEntry* npv = report->Find(
      "g_bad", FairnessMeasure::kNegativePredictiveValueParity);
  ASSERT_NE(npv, nullptr);
  EXPECT_FALSE(npv->defined);  // nothing predicted non-match
}

TEST(AuditTest, EmptyOutcomesProduceUndefinedEntries) {
  Scenario s = MakeBiasedScenario();
  FairnessAuditor auditor = MakeAuditor(s);
  Result<AuditReport> report = auditor.AuditSingle({}, AuditOptions{});
  ASSERT_TRUE(report.ok());
  for (const auto& e : report->entries) {
    EXPECT_FALSE(e.defined);
    EXPECT_FALSE(e.unfair);
  }
}

}  // namespace
}  // namespace fairem
