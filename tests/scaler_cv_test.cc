#include <gtest/gtest.h>

#include "src/ml/cross_validation.h"
#include "src/ml/decision_tree.h"
#include "src/ml/scaler.h"

namespace fairem {
namespace {

TEST(ScalerTest, StandardizesColumns) {
  StandardScaler scaler;
  std::vector<std::vector<double>> x = {{1.0, 10.0}, {3.0, 30.0},
                                        {5.0, 50.0}};
  ASSERT_TRUE(scaler.Fit(x).ok());
  EXPECT_DOUBLE_EQ(scaler.means()[0], 3.0);
  EXPECT_DOUBLE_EQ(scaler.means()[1], 30.0);
  Result<std::vector<double>> t = scaler.Transform({3.0, 30.0});
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)[0], 0.0);
  EXPECT_DOUBLE_EQ((*t)[1], 0.0);
  // Transformed training data has per-column unit variance.
  std::vector<std::vector<double>> copy = x;
  ASSERT_TRUE(StandardScaler().FitTransform(&copy).ok());
  double var = 0.0;
  for (const auto& row : copy) var += row[0] * row[0];
  EXPECT_NEAR(var / copy.size(), 1.0, 1e-9);
}

TEST(ScalerTest, ZeroVarianceColumnMapsToZero) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit({{7.0}, {7.0}}).ok());
  Result<std::vector<double>> t = scaler.Transform({7.0});
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)[0], 0.0);
}

TEST(ScalerTest, ErrorsOnBadInput) {
  StandardScaler scaler;
  EXPECT_FALSE(scaler.Fit({}).ok());
  EXPECT_FALSE(scaler.Fit({{1.0}, {1.0, 2.0}}).ok());
  EXPECT_FALSE(scaler.Transform({1.0}).ok());  // not fitted
  ASSERT_TRUE(scaler.Fit({{1.0, 2.0}}).ok());
  EXPECT_FALSE(scaler.Transform({1.0}).ok());  // wrong width
}

TEST(CrossValidationTest, SeparableDataScoresHigh) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng gen(3);
  for (int i = 0; i < 60; ++i) {
    x.push_back({0.9 + 0.03 * gen.NextGaussian()});
    y.push_back(1);
    x.push_back({0.1 + 0.03 * gen.NextGaussian()});
    y.push_back(0);
  }
  Result<CrossValidationResult> cv = StratifiedKFold(
      [] {
        return std::unique_ptr<Classifier>(std::make_unique<DecisionTree>());
      },
      x, y, 5, 42);
  ASSERT_TRUE(cv.ok());
  EXPECT_EQ(cv->fold_f1.size(), 5u);
  EXPECT_GT(cv->mean_f1, 0.95);
  EXPECT_LT(cv->std_f1, 0.1);
}

TEST(CrossValidationTest, FoldsStayStratified) {
  // With 5 positives among 100 examples and k=5, unstratified folds could
  // easily have no positive; stratified folds always train successfully.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng gen(5);
  for (int i = 0; i < 95; ++i) {
    x.push_back({0.1 + 0.05 * gen.NextGaussian()});
    y.push_back(0);
  }
  for (int i = 0; i < 5; ++i) {
    x.push_back({0.95});
    y.push_back(1);
  }
  Result<CrossValidationResult> cv = StratifiedKFold(
      [] {
        return std::unique_ptr<Classifier>(std::make_unique<DecisionTree>());
      },
      x, y, 5, 7);
  ASSERT_TRUE(cv.ok()) << cv.status();
  EXPECT_GT(cv->mean_f1, 0.9);
}

TEST(CrossValidationTest, ErrorsOnBadConfig) {
  std::vector<std::vector<double>> x = {{1.0}, {0.0}};
  std::vector<int> y = {1, 0};
  auto factory = [] {
    return std::unique_ptr<Classifier>(std::make_unique<DecisionTree>());
  };
  EXPECT_FALSE(StratifiedKFold(factory, x, y, 1, 1).ok());   // k too small
  EXPECT_FALSE(StratifiedKFold(factory, x, y, 3, 1).ok());   // not enough per class
  EXPECT_FALSE(StratifiedKFold(factory, {}, {}, 2, 1).ok());
}

}  // namespace
}  // namespace fairem
