#include "src/util/string_util.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Hello World"), "hello world");
  EXPECT_EQ(ToLowerAscii("ABC123xyz"), "abc123xyz");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtilTest, TrimAscii) {
  EXPECT_EQ(TrimAscii("  hi  "), "hi");
  EXPECT_EQ(TrimAscii("\t\nhi"), "hi");
  EXPECT_EQ(TrimAscii("hi"), "hi");
  EXPECT_EQ(TrimAscii("   "), "");
  EXPECT_EQ(TrimAscii(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, ParseDoubleAcceptsNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("  -2 ", &v));
  EXPECT_DOUBLE_EQ(v, -2.0);
  EXPECT_TRUE(ParseDouble("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_TRUE(ParseDouble("7", nullptr));
}

TEST(StringUtilTest, ParseDoubleRejectsJunk) {
  EXPECT_FALSE(ParseDouble("", nullptr));
  EXPECT_FALSE(ParseDouble("abc", nullptr));
  EXPECT_FALSE(ParseDouble("1.5x", nullptr));
  EXPECT_FALSE(ParseDouble("nan", nullptr));
  EXPECT_FALSE(ParseDouble("inf", nullptr));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace fairem
