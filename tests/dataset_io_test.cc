#include "src/data/dataset_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/datagen/benchmark_suite.h"

namespace fairem {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/fairem_io_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  EMDataset original =
      std::move(GenerateDataset(DatasetKind::kDblpScholar, 0.4)).value();
  std::string dir = FreshDir("roundtrip");
  ASSERT_TRUE(SaveDataset(original, dir).ok());
  Result<EMDataset> loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->sensitive_attr, original.sensitive_attr);
  EXPECT_EQ(loaded->sensitive_kind, original.sensitive_kind);
  EXPECT_EQ(loaded->matching_attrs, original.matching_attrs);
  EXPECT_DOUBLE_EQ(loaded->default_threshold, original.default_threshold);
  EXPECT_EQ(loaded->simulated_full_scale_pairs,
            original.simulated_full_scale_pairs);
  ASSERT_EQ(loaded->table_a.num_rows(), original.table_a.num_rows());
  ASSERT_EQ(loaded->table_b.num_rows(), original.table_b.num_rows());
  // Nulls (this is the dirty dataset) survive the round trip.
  for (size_t r = 0; r < original.table_b.num_rows(); ++r) {
    for (size_t c = 0; c < original.table_b.schema().num_attributes(); ++c) {
      EXPECT_EQ(loaded->table_b.IsNull(r, c), original.table_b.IsNull(r, c));
      EXPECT_EQ(loaded->table_b.value(r, c), original.table_b.value(r, c));
    }
  }
  ASSERT_EQ(loaded->train.size(), original.train.size());
  ASSERT_EQ(loaded->test.size(), original.test.size());
  for (size_t i = 0; i < original.test.size(); ++i) {
    EXPECT_EQ(loaded->test[i].left, original.test[i].left);
    EXPECT_EQ(loaded->test[i].right, original.test[i].right);
    EXPECT_EQ(loaded->test[i].is_match, original.test[i].is_match);
  }
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, SetwiseDatasetRoundTrips) {
  EMDataset original =
      std::move(GenerateDataset(DatasetKind::kItunesAmazon, 0.3)).value();
  std::string dir = FreshDir("setwise");
  ASSERT_TRUE(SaveDataset(original, dir).ok());
  Result<EMDataset> loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->sensitive_kind, SensitiveAttrKind::kSetwise);
  EXPECT_EQ(loaded->setwise_separator, original.setwise_separator);
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, MissingDirectoryFails) {
  EXPECT_FALSE(LoadDataset("/nonexistent/fairem").ok());
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpAcm, 0.3)).value();
  EXPECT_FALSE(SaveDataset(ds, "/nonexistent/fairem").ok());
}

TEST(DatasetIoTest, CorruptMetaFails) {
  std::string dir = FreshDir("corrupt");
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpAcm, 0.3)).value();
  ASSERT_TRUE(SaveDataset(ds, dir).ok());
  // Break a pair file: out-of-range indices must fail validation.
  std::ofstream out(dir + "/test.csv");
  out << "entity_id,left,right,is_match\n0,999999,0,1\n";
  out.close();
  EXPECT_FALSE(LoadDataset(dir).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fairem
