#include "src/data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace fairem {
namespace {

Table SampleTable() {
  Schema schema = std::move(Schema::Make({"name", "note"})).value();
  Table t("sample", schema);
  EXPECT_TRUE(t.AppendValues(1, {"alice", "plain"}).ok());
  EXPECT_TRUE(t.AppendValues(2, {"bob, jr.", "has, commas"}).ok());
  EXPECT_TRUE(t.AppendValues(3, {"quote\"inside", "line\nbreak"}).ok());
  Record null_row;
  null_row.entity_id = 4;
  null_row.cells = {std::string("dora"), std::nullopt};
  EXPECT_TRUE(t.Append(std::move(null_row)).ok());
  return t;
}

TEST(CsvTest, RoundTripPreservesEverything) {
  Table original = SampleTable();
  std::string text = WriteCsvString(original);
  Result<Table> parsed = ReadCsvString(text, "sample");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_rows(), original.num_rows());
  EXPECT_EQ(parsed->schema(), original.schema());
  for (size_t r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(parsed->row(r).entity_id, original.row(r).entity_id);
    for (size_t c = 0; c < original.schema().num_attributes(); ++c) {
      EXPECT_EQ(parsed->IsNull(r, c), original.IsNull(r, c)) << r << "," << c;
      EXPECT_EQ(parsed->value(r, c), original.value(r, c)) << r << "," << c;
    }
  }
}

TEST(CsvTest, QuotedFieldsWithEmbeddedDelimiters) {
  Result<Table> t = ReadCsvString(
      "entity_id,a\n1,\"x,y\"\n2,\"he said \"\"hi\"\"\"\n", "q");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->value(0, 0), "x,y");
  EXPECT_EQ(t->value(1, 0), "he said \"hi\"");
}

TEST(CsvTest, CrLfLineEndings) {
  Result<Table> t = ReadCsvString("entity_id,a\r\n1,x\r\n2,y\r\n", "crlf");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->value(1, 0), "y");
}

TEST(CsvTest, NullToken) {
  Result<Table> t = ReadCsvString("entity_id,a\n1,\\N\n", "nulls");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->IsNull(0, 0));
}

TEST(CsvTest, ErrorsOnMalformedInput) {
  EXPECT_FALSE(ReadCsvString("", "x").ok());
  EXPECT_FALSE(ReadCsvString("entity_id,a\n1\n", "x").ok());          // short row
  EXPECT_FALSE(ReadCsvString("entity_id,a\n1,x,y\n", "x").ok());      // long row
  EXPECT_FALSE(ReadCsvString("entity_id,a\nnotanum,x\n", "x").ok());  // bad id
  EXPECT_FALSE(ReadCsvString("entity_id,a\n1,\"unterminated\n", "x").ok());
}

TEST(CsvTest, WithoutEntityIdColumn) {
  CsvOptions options;
  options.first_column_is_entity_id = false;
  Result<Table> t = ReadCsvString("a,b\nx,y\n", "noid", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().num_attributes(), 2u);
  EXPECT_EQ(t->row(0).entity_id, -1);
}

TEST(CsvTest, FileRoundTrip) {
  Table original = SampleTable();
  std::string path = ::testing::TempDir() + "/fairem_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(original, path).ok());
  Result<Table> parsed = ReadCsvFile(path, "sample");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), original.num_rows());
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  Result<Table> t = ReadCsvFile("/nonexistent/nope.csv", "x");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace fairem
