#include "src/core/confusion.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

/// The Appendix B Example 5 setting: four entities in groups g1/g2 and the
/// exact matching results of Table 15.
struct Example5 {
  Table a;
  Table b;
  GroupMembership membership;
  std::vector<PairOutcome> outcomes;
};

Example5 MakeExample5() {
  Schema schema = std::move(Schema::Make({"grp"})).value();
  Table a("a", schema);
  Table b("b", schema);
  // Row i of each table is entity e_{i+1}; groups: e1,e2,e4 in g1; e3 in g2.
  EXPECT_TRUE(a.AppendValues(1, {"g1"}).ok());  // e1
  EXPECT_TRUE(a.AppendValues(3, {"g2"}).ok());  // e3
  EXPECT_TRUE(a.AppendValues(2, {"g1"}).ok());  // e2 (left of pair 4)
  EXPECT_TRUE(b.AppendValues(2, {"g1"}).ok());  // e2
  EXPECT_TRUE(b.AppendValues(4, {"g1"}).ok());  // e4
  EXPECT_TRUE(b.AppendValues(3, {"g2"}).ok());  // e3
  SensitiveAttr attr{"grp", SensitiveAttrKind::kBinary, '|'};
  GroupMembership membership =
      std::move(GroupMembership::Make(a, b, attr)).value();
  // Table 15 rows: (e1,e2,M,N)=FP, (e3,e4,N,N)=TN, (e1,e4,M,M)=TP,
  // (e2,e3,N,M)=FN.
  std::vector<PairOutcome> outcomes = {
      {0, 0, true, false},   // e1-e2 FP  (g1, g1)
      {1, 1, false, false},  // e3-e4 TN  (g2, g1)
      {0, 1, true, true},    // e1-e4 TP  (g1, g1)
      {2, 2, false, true},   // e2-e3 FN  (g1, g2)
  };
  return {std::move(a), std::move(b), std::move(membership),
          std::move(outcomes)};
}

TEST(ConfusionTest, Example5GroupMatrices) {
  Example5 ex = MakeExample5();
  uint64_t g1 = *ex.membership.encoding().Encode({"g1"});
  uint64_t g2 = *ex.membership.encoding().Encode({"g2"});
  // Figure 15(b): g1 sees all four results (every pair touches g1).
  ConfusionCounts c1 = SingleGroupCounts(ex.membership, ex.outcomes, g1);
  EXPECT_EQ(c1.fp, 1);
  EXPECT_EQ(c1.tn, 1);
  EXPECT_EQ(c1.tp, 1);
  EXPECT_EQ(c1.fn, 1);
  // Figure 15(c): g2 sees only the TN and the FN.
  ConfusionCounts c2 = SingleGroupCounts(ex.membership, ex.outcomes, g2);
  EXPECT_EQ(c2.fp, 0);
  EXPECT_EQ(c2.tn, 1);
  EXPECT_EQ(c2.tp, 0);
  EXPECT_EQ(c2.fn, 1);
}

TEST(ConfusionTest, PairCountsSelectBothSides) {
  Example5 ex = MakeExample5();
  uint64_t g1 = *ex.membership.encoding().Encode({"g1"});
  uint64_t g2 = *ex.membership.encoding().Encode({"g2"});
  // g1|g1 pairs: the FP (e1,e2) and the TP (e1,e4).
  ConfusionCounts c11 = PairGroupCounts(ex.membership, ex.outcomes, g1, g1);
  EXPECT_EQ(c11.fp, 1);
  EXPECT_EQ(c11.tp, 1);
  EXPECT_EQ(c11.total(), 2);
  // g1|g2 pairs in either order: the TN (e3,e4) and the FN (e2,e3).
  ConfusionCounts c12 = PairGroupCounts(ex.membership, ex.outcomes, g1, g2);
  EXPECT_EQ(c12.tn, 1);
  EXPECT_EQ(c12.fn, 1);
  EXPECT_EQ(c12.total(), 2);
  // g2|g2: none.
  EXPECT_EQ(PairGroupCounts(ex.membership, ex.outcomes, g2, g2).total(), 0);
}

TEST(ConfusionTest, ComplementPartitionsOutcomes) {
  Example5 ex = MakeExample5();
  uint64_t g2 = *ex.membership.encoding().Encode({"g2"});
  ConfusionCounts in = SingleGroupCounts(ex.membership, ex.outcomes, g2);
  ConfusionCounts out =
      SingleGroupComplementCounts(ex.membership, ex.outcomes, g2);
  EXPECT_EQ(in.total() + out.total(),
            static_cast<int64_t>(ex.outcomes.size()));
  ConfusionCounts overall = OverallCounts(ex.outcomes);
  EXPECT_EQ(in.tp + out.tp, overall.tp);
  EXPECT_EQ(in.fp + out.fp, overall.fp);
}

TEST(ConfusionTest, PairComplementPartitions) {
  Example5 ex = MakeExample5();
  uint64_t g1 = *ex.membership.encoding().Encode({"g1"});
  ConfusionCounts in = PairGroupCounts(ex.membership, ex.outcomes, g1, g1);
  ConfusionCounts out =
      PairGroupComplementCounts(ex.membership, ex.outcomes, g1, g1);
  EXPECT_EQ(in.total() + out.total(),
            static_cast<int64_t>(ex.outcomes.size()));
}

TEST(MakeOutcomesTest, ThresholdApplied) {
  std::vector<LabeledPair> pairs = {{0, 0, true}, {1, 1, false}};
  Result<std::vector<PairOutcome>> outcomes =
      MakeOutcomes(pairs, {0.7, 0.6}, 0.65);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_TRUE((*outcomes)[0].predicted_match);
  EXPECT_FALSE((*outcomes)[1].predicted_match);
  EXPECT_TRUE((*outcomes)[0].true_match);
  EXPECT_FALSE(MakeOutcomes(pairs, {0.5}, 0.5).ok());
}

}  // namespace
}  // namespace fairem
