// End-to-end distributed tracing tests (DESIGN.md §16): real forked
// processes — serve daemons, a shard router — queried over the production
// wire by a traced ServeClient. The assertions are the tentpole contract:
// one query yields ONE connected trace whose spans come from every process
// it crossed (client, router, daemon, worker), with parent/child links that
// all resolve, merged into a single Chrome trace; live PROG frames stream
// mid-compute; and the slow-query log ties the same trace id to the same
// spans on disk.
//
// The chaos lane (ctest `trace_chaos`) reruns the *Chaos* test with
// FAIREM_FAILPOINTS exported: worker crashes + a backend SIGKILL, and the
// surviving timeline must still stitch together, failover spans included.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/obs/slowlog.h"
#include "src/obs/trace.h"
#include "src/obs/tracetop.h"
#include "src/robust/failpoint.h"
#include "src/route/router.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/util/io_util.h"

namespace fairem {
namespace {

std::string FreshPath(const std::string& leaf, const std::string& suffix) {
  std::string path = "/tmp/fairem_" + leaf + "." +
                     std::to_string(::getpid()) + suffix;
  ::unlink(path.c_str());
  return path;
}

ServeOptions SmallServeOptions(const std::string& socket_path) {
  ServeOptions options;
  options.socket_path = socket_path;
  options.warm.datasets = {"Cricket"};
  options.warm.scale = 0.25;
  options.default_deadline_s = 60.0;
  options.max_deadline_s = 120.0;
  return options;
}

RouteOptions SmallRouteOptions(const std::string& socket_path,
                               std::vector<std::string> backends) {
  RouteOptions options;
  options.socket_path = socket_path;
  options.backends = std::move(backends);
  options.health_period_s = 0.1;
  options.health_timeout_s = 1.0;
  options.breaker_failure_threshold = 3;
  options.breaker_cooldown_s = 0.3;
  options.hedge_min_delay_s = 0.05;
  options.default_deadline_s = 60.0;
  options.max_deadline_s = 120.0;
  return options;
}

/// Forked daemon/router pair of handles, same shape as route_test's.
class ProcessHandle {
 public:
  ProcessHandle(const ServeOptions& options, const std::string& failpoints) {
    pid_ = ::fork();
    if (pid_ == 0) {
      if (!failpoints.empty()) {
        if (Status st = FailpointRegistry::Global().Configure(failpoints);
            !st.ok()) {
          ::_exit(2);
        }
      }
      Status st = RunServeDaemon(options);
      ::_exit(st.ok() ? 0 : 1);
    }
  }

  explicit ProcessHandle(const RouteOptions& options) {
    pid_ = ::fork();
    if (pid_ == 0) {
      Status st = RunRouteDaemon(options);
      ::_exit(st.ok() ? 0 : 1);
    }
  }

  ~ProcessHandle() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  int Stop() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = -1;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

  void Kill() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

 private:
  pid_t pid_ = -1;
};

Result<ServeClient> ConnectTraced(const std::string& socket_path) {
  ServeClientOptions options;
  options.io_timeout_s = 60.0;
  options.connect_timeout_s = 60.0;
  options.trace = true;
  return ServeClient::Connect(socket_path, options);
}

QueryRequest CellRequest(const std::string& matcher,
                         double deadline_s = 60.0) {
  QueryRequest request;
  request.op = "cell";
  request.dataset = "Cricket";
  request.matcher = matcher;
  request.deadline_s = deadline_s;
  return request;
}

std::set<std::string> ProcessesOf(const std::vector<WireSpan>& spans) {
  std::set<std::string> procs;
  for (const WireSpan& span : spans) procs.insert(span.process);
  return procs;
}

std::set<std::string> NamesOf(const std::vector<WireSpan>& spans) {
  std::set<std::string> names;
  for (const WireSpan& span : spans) names.insert(span.name);
  return names;
}

/// The connectedness invariant: every span's parent is either 0 (a root)
/// or another span in the same trace. Returns the number of roots.
int AssertConnected(const std::vector<WireSpan>& spans) {
  std::set<uint64_t> ids;
  for (const WireSpan& span : spans) {
    EXPECT_NE(span.span_id, 0u) << span.name;
    ids.insert(span.span_id);
  }
  EXPECT_EQ(ids.size(), spans.size()) << "duplicate span ids";
  int roots = 0;
  for (const WireSpan& span : spans) {
    if (span.parent_span_id == 0) {
      ++roots;
      continue;
    }
    EXPECT_EQ(ids.count(span.parent_span_id), 1u)
        << span.process << "/" << span.name << " parent "
        << span.parent_span_id << " not in this trace";
  }
  return roots;
}

TEST(TraceE2eTest, TracedQueryThroughRouterMergesOneConnectedTrace) {
  IgnoreSigpipe();
  const std::string backend_a = FreshPath("trace_merge_a", ".sock");
  const std::string backend_b = FreshPath("trace_merge_b", ".sock");
  const std::string front = FreshPath("trace_merge_front", ".sock");
  ProcessHandle a(SmallServeOptions(backend_a), "");
  ProcessHandle b(SmallServeOptions(backend_b), "");
  ProcessHandle router(SmallRouteOptions(front, {backend_a, backend_b}));

  Result<ServeClient> client = ConnectTraced(front);
  ASSERT_TRUE(client.ok()) << client.status();
  RetryPolicy retry;
  retry.max_attempts = 4;
  Result<QueryResponse> r =
      client->CallWithRetry(CellRequest("DTMatcher"), retry);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->status.ok()) << r->status;

  // One trace identity...
  ASSERT_TRUE(client->last_trace().valid());
  const std::vector<WireSpan> spans = client->last_spans();
  ASSERT_FALSE(spans.empty());

  // ...spanning at least client, router, daemon, and (first compute for
  // this key, so no cache hit) the forked worker — 4 processes, >= the
  // acceptance bar of 3.
  const std::set<std::string> procs = ProcessesOf(spans);
  EXPECT_GE(procs.size(), 3u);
  for (const char* proc : {"client", "router", "daemon", "worker"}) {
    EXPECT_EQ(procs.count(proc), 1u) << proc << " missing from trace";
  }

  // ...with the full hop taxonomy present...
  const std::set<std::string> names = NamesOf(spans);
  for (const char* name :
       {"client.query", "client.attempt", "router.request", "router.call",
        "daemon.request", "daemon.queue", "worker.fork", "worker.compute"}) {
    EXPECT_EQ(names.count(name), 1u) << name << " span missing";
  }

  // ...forming ONE tree: a single root (client.query), every other span's
  // parent resolving inside the trace.
  EXPECT_EQ(AssertConnected(spans), 1);

  // The merged Chrome trace carries every process as its own track.
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.set_enabled(true);
  tracer.RecordWireSpans(spans);
  const std::string chrome = tracer.ChromeTraceJson();
  tracer.set_enabled(false);
  tracer.Clear();
  for (const char* needle :
       {"client.query", "router.request", "daemon.request",
        "worker.compute"}) {
    EXPECT_NE(chrome.find(needle), std::string::npos) << needle;
  }

  int status = router.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(WEXITSTATUS(a.Stop()), 0);
  EXPECT_EQ(WEXITSTATUS(b.Stop()), 0);
}

TEST(TraceE2eTest, LiveProgressStreamsDuringTracedCompute) {
  IgnoreSigpipe();
  const std::string socket = FreshPath("trace_prog", ".sock");
  ServeOptions options = SmallServeOptions(socket);
  // A cell compute is only a few milliseconds even at full scale, and a
  // PROG frame needs a poll wake while the job is still in flight: tighten
  // both the poll loop and the emission interval to 1ms so a ~5ms compute
  // spans several emission slots.
  options.warm.scale = 1.0;
  options.poll_interval_s = 0.001;
  options.progress_interval_s = 0.001;
  ProcessHandle daemon(options, "");

  ServeClientOptions client_options;
  client_options.io_timeout_s = 60.0;
  client_options.connect_timeout_s = 60.0;
  client_options.trace = true;
  std::vector<ProgressUpdate> updates;
  client_options.on_progress = [&updates](const ProgressUpdate& update) {
    updates.push_back(update);
  };
  Result<ServeClient> client = ServeClient::Connect(socket, client_options);
  ASSERT_TRUE(client.ok()) << client.status();

  // Fresh keys so every query is a real worker compute, not a cache hit;
  // stop as soon as one of them streamed progress.
  std::set<std::string> issued_traces;
  for (const char* matcher :
       {"RFMatcher", "SVMMatcher", "LogRegMatcher", "DTMatcher"}) {
    for (const char* mode : {"pairwise", "single"}) {
      QueryRequest request = CellRequest(matcher);
      request.mode = mode;
      Result<QueryResponse> r = client->Call(request);
      ASSERT_TRUE(r.ok()) << r.status();
      ASSERT_TRUE(r->status.ok()) << r->status;
      issued_traces.insert(client->last_trace().TraceIdHex());
    }
    if (!updates.empty()) break;
  }
  ASSERT_FALSE(updates.empty()) << "no PROG frame across 8 cell computes";
  for (const ProgressUpdate& update : updates) {
    EXPECT_GE(update.fraction, 0.0);
    EXPECT_LE(update.fraction, 1.0);
    EXPECT_FALSE(update.stage.empty());
    EXPECT_EQ(issued_traces.count(update.trace_id), 1u)
        << "PROG for a trace we never issued: " << update.trace_id;
  }

  // An untraced client issuing the same query gets no PROG at all — the
  // untraced wire is byte-identical to the pre-tracing one.
  ServeClientOptions untraced = client_options;
  untraced.trace = false;
  std::vector<ProgressUpdate> untraced_updates;
  untraced.on_progress = [&untraced_updates](const ProgressUpdate& update) {
    untraced_updates.push_back(update);
  };
  Result<ServeClient> plain = ServeClient::Connect(socket, untraced);
  ASSERT_TRUE(plain.ok()) << plain.status();
  Result<QueryResponse> r2 = plain->Call(CellRequest("NBMatcher"));
  ASSERT_TRUE(r2.ok()) << r2.status();
  ASSERT_TRUE(r2->status.ok()) << r2->status;
  EXPECT_TRUE(untraced_updates.empty());
  EXPECT_TRUE(plain->last_spans().empty());

  EXPECT_EQ(WEXITSTATUS(daemon.Stop()), 0);
}

TEST(TraceE2eTest, SlowQueryLogTiesTraceIdToSpansOnDisk) {
  IgnoreSigpipe();
  const std::string socket = FreshPath("trace_slowlog", ".sock");
  const std::string log_path = FreshPath("trace_slowlog", ".jsonl");
  ServeOptions options = SmallServeOptions(socket);
  options.slow_query_ms = 0.001;  // everything qualifies
  options.slow_query_log = log_path;
  ProcessHandle daemon(options, "");

  Result<ServeClient> client = ConnectTraced(socket);
  ASSERT_TRUE(client.ok()) << client.status();
  Result<QueryResponse> r = client->Call(CellRequest("DTMatcher"));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->status.ok()) << r->status;
  const std::string trace_hex = client->last_trace().TraceIdHex();

  // The line is written before the response is flushed, so it is durable
  // by the time the client has the answer.
  Result<std::string> text = ReadFileToString(log_path);
  ASSERT_TRUE(text.ok()) << text.status();
  TraceTopSummary summary = SummarizeSlowLog(*text);
  EXPECT_EQ(summary.skipped_lines, 0u);
  ASSERT_GE(summary.events, 1u);
  EXPECT_EQ(summary.slowest_trace_id, trace_hex);
  EXPECT_FALSE(summary.slowest_spans.empty());
  EXPECT_GE(summary.hops.count("worker.compute"), 1u);

  EXPECT_EQ(WEXITSTATUS(daemon.Stop()), 0);
  ::unlink(log_path.c_str());
}

TEST(TraceE2eChaosTest, ChaosFailoverTraceStaysConnectedWithFailoverSpans) {
  IgnoreSigpipe();
  const std::string backend_a = FreshPath("trace_chaos_a", ".sock");
  const std::string backend_b = FreshPath("trace_chaos_b", ".sock");
  const std::string front = FreshPath("trace_chaos_front", ".sock");
  // Chaos lane exports FAIREM_FAILPOINTS, which the forked backends
  // self-arm from on first use; standalone runs stay crash-free — the
  // SIGKILL below is the chaos either way.
  const std::string spec;
  ServeOptions serve_a = SmallServeOptions(backend_a);
  ServeOptions serve_b = SmallServeOptions(backend_b);
  serve_a.max_attempts = serve_b.max_attempts = 3;
  ProcessHandle a(serve_a, spec);
  ProcessHandle b(serve_b, spec);
  ProcessHandle router(SmallRouteOptions(front, {backend_a, backend_b}));

  Result<ServeClient> client = ConnectTraced(front);
  ASSERT_TRUE(client.ok()) << client.status();
  RetryPolicy retry;
  retry.max_attempts = 5;
  retry.initial_backoff_seconds = 0.02;
  Result<QueryResponse> warm =
      client->CallWithRetry(CellRequest("DTMatcher", 30.0), retry);
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_TRUE(warm->status.ok()) << warm->status;

  // Kill one shard, then sweep keys until one whose primary was the corpse
  // comes back with a failover span in its trace. 16 independent keys make
  // "the dead backend owned none" vanishingly unlikely.
  a.Kill();
  const char* matchers[] = {"DTMatcher",     "NBMatcher",
                            "SVMMatcher",    "LogRegMatcher",
                            "RFMatcher",     "LinRegMatcher",
                            "BooleanRuleMatcher", "Dedupe"};
  bool failover_seen = false;
  for (const char* matcher : matchers) {
    for (const char* mode : {"single", "pairwise"}) {
      QueryRequest request = CellRequest(matcher, 30.0);
      request.mode = mode;
      Result<QueryResponse> r = client->CallWithRetry(request, retry);
      if (!client->connected()) {
        Result<ServeClient> fresh = ConnectTraced(front);
        ASSERT_TRUE(fresh.ok()) << fresh.status();
        *client = std::move(*fresh);
      }
      if (!r.ok() || !r->status.ok()) continue;  // chaos lane: retried out
      const std::vector<WireSpan> spans = client->last_spans();
      // Every successful traced answer — failover, hedge, worker respawn,
      // whatever path it took — must still be one connected timeline with
      // spans from >= 3 processes.
      AssertConnected(spans);
      const std::set<std::string> procs = ProcessesOf(spans);
      EXPECT_GE(procs.size(), 3u) << matcher;
      EXPECT_EQ(procs.count("router"), 1u) << matcher;
      EXPECT_EQ(procs.count("daemon"), 1u) << matcher;
      if (NamesOf(spans).count("router.failover") != 0) {
        failover_seen = true;
        // The failover span names the backend it abandoned.
        for (const WireSpan& span : spans) {
          if (span.name != "router.failover") continue;
          bool named = false;
          for (const auto& [key, value] : span.annotations) {
            named = named || (key == "from_backend" && !value.empty());
          }
          EXPECT_TRUE(named) << "failover span without from_backend";
        }
      }
    }
  }
  EXPECT_TRUE(failover_seen)
      << "no failover span in any trace across 16 keys after a SIGKILL";

  int status = router.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(WEXITSTATUS(b.Stop()), 0);
}

}  // namespace
}  // namespace fairem
