#include "src/text/edit_distance.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

namespace fairem {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abcd", "abce"), 0.75);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("ab", "xy"), 0.0);
}

TEST(DamerauTest, TranspositionCountsAsOne) {
  EXPECT_EQ(DamerauLevenshteinDistance("ab", "ba"), 1);
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2);
  EXPECT_EQ(DamerauLevenshteinDistance("brown", "borwn"), 1);
}

TEST(HammingTest, LengthDifferencesCount) {
  EXPECT_EQ(HammingDistance("karolin", "kathrin"), 3);
  EXPECT_EQ(HammingDistance("abc", "abcd"), 1);
  EXPECT_EQ(HammingDistance("", ""), 0);
  EXPECT_DOUBLE_EQ(HammingSimilarity("abc", "abc"), 1.0);
}

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.7667, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("MARTHA", "MARHTA");
  double jw = JaroWinklerSimilarity("MARTHA", "MARHTA");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(jw, 0.9611, 1e-3);
  // No common prefix: no boost.
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "xbc"),
                   JaroSimilarity("abc", "xbc"));
}

TEST(AlignmentTest, NeedlemanWunschIdentityAndDisjoint) {
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("", ""), 1.0);
  EXPECT_LT(NeedlemanWunschSimilarity("aaaa", "bbbb"), 0.2);
}

TEST(AlignmentTest, SmithWatermanFindsLocalMatch) {
  // A shared substring scores by its local alignment: "hello" (5 of 9
  // chars) scores 2*5 / (2*9) against unrelated flanks.
  EXPECT_NEAR(SmithWatermanSimilarity("xxhelloyy", "zzhelloww"), 5.0 / 9.0,
              1e-6);
  EXPECT_GT(SmithWatermanSimilarity("xxhelloyy", "zzhelloww"),
            SmithWatermanSimilarity("xxhelloyy", "qqqqwwwww"));
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("a", ""), 0.0);
}

TEST(PrefixTest, Values) {
  EXPECT_DOUBLE_EQ(PrefixSimilarity("abcdef", "abcxyz"), 0.5);
  EXPECT_DOUBLE_EQ(PrefixSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(PrefixSimilarity("abc", "abc"), 1.0);
}

TEST(ExactMatchTest, Values) {
  EXPECT_DOUBLE_EQ(ExactMatchSimilarity("x", "x"), 1.0);
  EXPECT_DOUBLE_EQ(ExactMatchSimilarity("x", "y"), 0.0);
  EXPECT_DOUBLE_EQ(ExactMatchSimilarity("", ""), 1.0);
}

// Property sweep: every character similarity is symmetric, bounded in
// [0, 1], and 1 on identical inputs.
using CharSim = double (*)(std::string_view, std::string_view);

class CharSimilarityProperty
    : public ::testing::TestWithParam<std::tuple<const char*, CharSim>> {};

TEST_P(CharSimilarityProperty, SymmetricBoundedReflexive) {
  CharSim sim = std::get<1>(GetParam());
  const std::vector<std::string> samples = {
      "",          "a",         "brown",     "browne",
      "Qingming",  "Qing-Hu",   "guest editorial",
      "2003",      "VLDBJ",     "lineage tracing for data warehouses"};
  for (const auto& x : samples) {
    EXPECT_DOUBLE_EQ(sim(x, x), 1.0) << x;
    for (const auto& y : samples) {
      double v = sim(x, y);
      EXPECT_GE(v, 0.0) << x << " / " << y;
      EXPECT_LE(v, 1.0) << x << " / " << y;
      EXPECT_DOUBLE_EQ(v, sim(y, x)) << x << " / " << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCharMeasures, CharSimilarityProperty,
    ::testing::Values(
        std::make_tuple("levenshtein", &LevenshteinSimilarity),
        std::make_tuple("hamming", &HammingSimilarity),
        std::make_tuple("jaro", &JaroSimilarity),
        std::make_tuple("jaro_winkler", &JaroWinklerSimilarity),
        std::make_tuple("needleman_wunsch", &NeedlemanWunschSimilarity),
        std::make_tuple("smith_waterman", &SmithWatermanSimilarity),
        std::make_tuple("prefix", &PrefixSimilarity),
        std::make_tuple("exact", &ExactMatchSimilarity)),
    [](const auto& info) { return std::get<0>(info.param); });

}  // namespace
}  // namespace fairem
