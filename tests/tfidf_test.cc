#include "src/text/tfidf.h"

#include <gtest/gtest.h>

#include "src/text/hybrid_sim.h"
#include "src/text/edit_distance.h"

namespace fairem {
namespace {

using Doc = std::vector<std::string>;

TfIdfVectorizer FitSmallCorpus() {
  TfIdfVectorizer v;
  v.Fit({{"the", "quick", "fox"},
         {"the", "lazy", "dog"},
         {"the", "quick", "dog"},
         {"a", "sly", "fox"}});
  return v;
}

TEST(TfIdfTest, VocabularyCoversAllTokens) {
  TfIdfVectorizer v = FitSmallCorpus();
  EXPECT_EQ(v.vocabulary_size(), 7u);  // the quick fox lazy dog a sly
  EXPECT_TRUE(v.fitted());
}

TEST(TfIdfTest, FrequentTokensHaveLowerIdf) {
  TfIdfVectorizer v = FitSmallCorpus();
  EXPECT_LT(v.Idf("the"), v.Idf("sly"));
  EXPECT_DOUBLE_EQ(v.Idf("unknown"), 0.0);
}

TEST(TfIdfTest, TransformIsUnitNorm) {
  TfIdfVectorizer v = FitSmallCorpus();
  SparseVector vec = v.Transform({"quick", "fox"});
  double norm_sq = 0.0;
  for (const auto& [id, w] : vec) norm_sq += w * w;
  EXPECT_NEAR(norm_sq, 1.0, 1e-9);
}

TEST(TfIdfTest, UnknownTokensIgnored) {
  TfIdfVectorizer v = FitSmallCorpus();
  EXPECT_TRUE(v.Transform({"zzz", "qqq"}).empty());
}

TEST(TfIdfTest, SelfSimilarityIsOne) {
  TfIdfVectorizer v = FitSmallCorpus();
  EXPECT_NEAR(v.Similarity({"quick", "fox"}, {"quick", "fox"}), 1.0, 1e-9);
}

TEST(TfIdfTest, RareOverlapBeatsCommonOverlap) {
  TfIdfVectorizer v = FitSmallCorpus();
  double rare = v.Similarity({"sly", "dog"}, {"sly", "fox"});
  double common = v.Similarity({"the", "dog"}, {"the", "fox"});
  EXPECT_GT(rare, common);
}

TEST(TfIdfTest, CosineOfDisjointVectorsIsZero) {
  TfIdfVectorizer v = FitSmallCorpus();
  EXPECT_DOUBLE_EQ(v.Similarity({"quick"}, {"lazy"}), 0.0);
}

TEST(MongeElkanTest, AveragesBestInnerMatches) {
  Doc a = {"jon", "smith"};
  Doc b = {"john", "smith"};
  double sim = MongeElkanSimilarity(a, b, &JaroSimilarity);
  EXPECT_GT(sim, 0.9);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({}, {}, &JaroSimilarity), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity(a, {}, &JaroSimilarity), 0.0);
}

TEST(MongeElkanTest, SymmetricVariantIsSymmetric) {
  Doc a = {"jon"};
  Doc b = {"john", "smith", "junior"};
  EXPECT_DOUBLE_EQ(SymmetricMongeElkan(a, b, &JaroSimilarity),
                   SymmetricMongeElkan(b, a, &JaroSimilarity));
}

TEST(SoftTfIdfTest, NearTokensCountAsPartialMatches) {
  TfIdfVectorizer v;
  v.Fit({{"widom", "cui"}, {"widom", "garcia"}, {"ullman", "cui"}});
  // "widoms" is not in vocabulary, but is Jaro-close to "widom".
  double soft = SoftTfIdfSimilarity({"widoms", "cui"}, {"widom", "cui"}, v,
                                    &JaroSimilarity, 0.85);
  EXPECT_GT(soft, 0.8);
  double strict = v.Similarity({"widoms", "cui"}, {"widom", "cui"});
  EXPECT_GT(soft, strict);
}

TEST(SoftTfIdfTest, EmptyInputs) {
  TfIdfVectorizer v;
  v.Fit({{"a"}});
  EXPECT_DOUBLE_EQ(
      SoftTfIdfSimilarity({}, {}, v, &JaroSimilarity), 1.0);
  EXPECT_DOUBLE_EQ(
      SoftTfIdfSimilarity({"a"}, {}, v, &JaroSimilarity), 0.0);
}

}  // namespace
}  // namespace fairem
