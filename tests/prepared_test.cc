#include "src/text/prepared.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/text/similarity.h"

namespace fairem {
namespace {

const std::vector<SimilarityMeasure> kAllMeasures = {
    SimilarityMeasure::kExactMatch,     SimilarityMeasure::kLevenshtein,
    SimilarityMeasure::kDamerauLevenshtein, SimilarityMeasure::kHamming,
    SimilarityMeasure::kJaro,           SimilarityMeasure::kJaroWinkler,
    SimilarityMeasure::kNeedlemanWunsch, SimilarityMeasure::kSmithWaterman,
    SimilarityMeasure::kPrefix,         SimilarityMeasure::kJaccardWord,
    SimilarityMeasure::kJaccardQgram3,  SimilarityMeasure::kDiceWord,
    SimilarityMeasure::kDiceQgram3,     SimilarityMeasure::kOverlapWord,
    SimilarityMeasure::kCosineWord,     SimilarityMeasure::kMongeElkanJaro,
    SimilarityMeasure::kSoundex,        SimilarityMeasure::kNumericAbsDiff,
    SimilarityMeasure::kAbbrevName,     SimilarityMeasure::kTokenSortRatio,
    SimilarityMeasure::kAffineGap,
};

const std::vector<std::string> kSamples = {
    "",
    "a",
    "Qing-Hu Huang",
    "huang qing-hu",
    "efficient query processing over large streaming data",
    "Efficient  Query processing over STREAMING data collections",
    "3.14159",
    "42",
    "-17.5",
    "not a number 7",
    "aaa bbb aaa ccc bbb",
    "the the the",
    "VLDB 2001",
    "sigmod '99 proceedings",
};

/// The cache's core contract: a prepared comparison must produce the exact
/// same double as the raw string-pair kernel, for every measure — the
/// parallel feature table is only byte-identical if this holds bitwise.
TEST(PreparedSimilarityTest, MatchesRawKernelBitwiseForEveryMeasure) {
  for (SimilarityMeasure m : kAllMeasures) {
    PreparedNeeds needs = NeedsForMeasure(m);
    for (const std::string& sa : kSamples) {
      PreparedValue pa = PrepareValue(sa, /*is_null=*/false, needs);
      for (const std::string& sb : kSamples) {
        PreparedValue pb = PrepareValue(sb, /*is_null=*/false, needs);
        double raw = ComputeSimilarity(m, sa, sb);
        double prepared = ComputeSimilarity(m, pa, pb);
        EXPECT_EQ(raw, prepared)
            << SimilarityMeasureName(m) << "(\"" << sa << "\", \"" << sb
            << "\")";
      }
    }
  }
}

TEST(PreparedSimilarityTest, NeedsAreMinimalForWordMeasures) {
  PreparedNeeds needs = NeedsForMeasure(SimilarityMeasure::kJaccardWord);
  EXPECT_TRUE(needs.word_set);
  EXPECT_FALSE(needs.qgram_set);
  EXPECT_FALSE(needs.numeric);
  needs = NeedsForMeasure(SimilarityMeasure::kJaccardQgram3);
  EXPECT_TRUE(needs.qgram_set);
  EXPECT_FALSE(needs.word_set);
  needs = NeedsForMeasure(SimilarityMeasure::kNumericAbsDiff);
  EXPECT_TRUE(needs.numeric);
}

TEST(PreparedSimilarityTest, MergeFromUnionsNeeds) {
  PreparedNeeds a = NeedsForMeasure(SimilarityMeasure::kJaccardWord);
  a.MergeFrom(NeedsForMeasure(SimilarityMeasure::kJaccardQgram3));
  a.MergeFrom(NeedsForMeasure(SimilarityMeasure::kNumericAbsDiff));
  EXPECT_TRUE(a.word_set);
  EXPECT_TRUE(a.qgram_set);
  EXPECT_TRUE(a.numeric);
}

}  // namespace
}  // namespace fairem
