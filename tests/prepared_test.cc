#include "src/text/prepared.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/data/schema.h"
#include "src/data/table.h"
#include "src/text/simd.h"
#include "src/text/similarity.h"

namespace fairem {
namespace {

const std::vector<SimilarityMeasure> kAllMeasures = {
    SimilarityMeasure::kExactMatch,     SimilarityMeasure::kLevenshtein,
    SimilarityMeasure::kDamerauLevenshtein, SimilarityMeasure::kHamming,
    SimilarityMeasure::kJaro,           SimilarityMeasure::kJaroWinkler,
    SimilarityMeasure::kNeedlemanWunsch, SimilarityMeasure::kSmithWaterman,
    SimilarityMeasure::kPrefix,         SimilarityMeasure::kJaccardWord,
    SimilarityMeasure::kJaccardQgram3,  SimilarityMeasure::kDiceWord,
    SimilarityMeasure::kDiceQgram3,     SimilarityMeasure::kOverlapWord,
    SimilarityMeasure::kCosineWord,     SimilarityMeasure::kMongeElkanJaro,
    SimilarityMeasure::kSoundex,        SimilarityMeasure::kNumericAbsDiff,
    SimilarityMeasure::kAbbrevName,     SimilarityMeasure::kTokenSortRatio,
    SimilarityMeasure::kAffineGap,
};

const std::vector<std::string> kSamples = {
    "",
    "a",
    "Qing-Hu Huang",
    "huang qing-hu",
    "efficient query processing over large streaming data",
    "Efficient  Query processing over STREAMING data collections",
    "3.14159",
    "42",
    "-17.5",
    "not a number 7",
    "aaa bbb aaa ccc bbb",
    "the the the",
    "VLDB 2001",
    "sigmod '99 proceedings",
};

/// The cache's core contract: a prepared comparison must produce the exact
/// same double as the raw string-pair kernel, for every measure — the
/// parallel feature table is only byte-identical if this holds bitwise.
TEST(PreparedSimilarityTest, MatchesRawKernelBitwiseForEveryMeasure) {
  for (SimilarityMeasure m : kAllMeasures) {
    PreparedNeeds needs = NeedsForMeasure(m);
    for (const std::string& sa : kSamples) {
      PreparedValue pa = PrepareValue(sa, /*is_null=*/false, needs);
      for (const std::string& sb : kSamples) {
        PreparedValue pb = PrepareValue(sb, /*is_null=*/false, needs);
        double raw = ComputeSimilarity(m, sa, sb);
        double prepared = ComputeSimilarity(m, pa, pb);
        EXPECT_EQ(raw, prepared)
            << SimilarityMeasureName(m) << "(\"" << sa << "\", \"" << sb
            << "\")";
      }
    }
  }
}

TEST(PreparedSimilarityTest, NeedsAreMinimalForWordMeasures) {
  PreparedNeeds needs = NeedsForMeasure(SimilarityMeasure::kJaccardWord);
  EXPECT_TRUE(needs.word_set);
  EXPECT_FALSE(needs.qgram_set);
  EXPECT_FALSE(needs.numeric);
  needs = NeedsForMeasure(SimilarityMeasure::kJaccardQgram3);
  EXPECT_TRUE(needs.qgram_set);
  EXPECT_FALSE(needs.word_set);
  needs = NeedsForMeasure(SimilarityMeasure::kNumericAbsDiff);
  EXPECT_TRUE(needs.numeric);
}

TEST(PreparedSimilarityTest, MergeFromUnionsNeeds) {
  PreparedNeeds a = NeedsForMeasure(SimilarityMeasure::kJaccardWord);
  a.MergeFrom(NeedsForMeasure(SimilarityMeasure::kJaccardQgram3));
  a.MergeFrom(NeedsForMeasure(SimilarityMeasure::kNumericAbsDiff));
  EXPECT_TRUE(a.word_set);
  EXPECT_TRUE(a.qgram_set);
  EXPECT_TRUE(a.numeric);
}

// --- interned-token fast path (DESIGN.md §17) ------------------------------

struct LevelGuard {
  explicit LevelGuard(SimdLevel level) {
    internal::ForceSimdLevelForTest(level);
  }
  ~LevelGuard() { internal::ClearForcedSimdLevelForTest(); }
};

std::vector<SimdLevel> RunnableVectorLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kPortable};
  const int detected = static_cast<int>(DetectedSimdLevel());
  for (SimdLevel v : {SimdLevel::kSse42, SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (static_cast<int>(v) <= detected) levels.push_back(v);
  }
  return levels;
}

Table SampleTable(const std::string& name) {
  Schema schema = Schema::Make({"text"}).value();
  Table t(name, schema);
  int64_t id = 0;
  for (const std::string& s : kSamples) {
    EXPECT_TRUE(t.AppendValues(id++, {s}).ok());
  }
  return t;
}

const std::vector<SimilarityMeasure> kTokenMeasures = {
    SimilarityMeasure::kJaccardWord,   SimilarityMeasure::kDiceWord,
    SimilarityMeasure::kOverlapWord,   SimilarityMeasure::kCosineWord,
    SimilarityMeasure::kJaccardQgram3, SimilarityMeasure::kDiceQgram3,
};

/// With a shared interner pair, every token measure over interned ids (and
/// the bitset path for these small universes) must reproduce the raw
/// string-pair kernel bitwise — on every vector tier this host can run.
TEST(PreparedInterningTest, InternedIdsMatchRawKernelBitwise) {
  Table ta = SampleTable("a");
  Table tb = SampleTable("b");
  std::vector<size_t> rows;
  for (size_t r = 0; r < kSamples.size(); ++r) rows.push_back(r);
  PreparedNeeds needs;
  needs.word_set = true;
  needs.qgram_set = true;
  for (SimdLevel level : RunnableVectorLevels()) {
    LevelGuard guard(level);
    ColumnInterners interners;
    PreparedColumn ca, cb;
    ca.BuildRows(ta, 0, rows, needs, &interners);
    cb.BuildRows(tb, 0, rows, needs, &interners);
    for (size_t i = 0; i < kSamples.size(); ++i) {
      ASSERT_TRUE(ca.Get(i).has_ids) << SimdLevelName(level);
      for (size_t j = 0; j < kSamples.size(); ++j) {
        for (SimilarityMeasure m : kTokenMeasures) {
          EXPECT_EQ(ComputeSimilarity(m, kSamples[i], kSamples[j]),
                    ComputeSimilarity(m, ca.Get(i), cb.Get(j)))
              << SimilarityMeasureName(m) << " at " << SimdLevelName(level)
              << " (\"" << kSamples[i] << "\", \"" << kSamples[j] << "\")";
        }
      }
    }
  }
}

/// Ids assigned by the two sides of one interner must agree: equal strings
/// on opposite sides get equal id sets.
TEST(PreparedInterningTest, IdsAreComparableAcrossSides) {
  Table ta = SampleTable("a");
  Table tb = SampleTable("b");
  std::vector<size_t> rows;
  for (size_t r = 0; r < kSamples.size(); ++r) rows.push_back(r);
  PreparedNeeds needs;
  needs.word_set = true;
  needs.qgram_set = true;
  LevelGuard guard(SimdLevel::kPortable);
  ColumnInterners interners;
  PreparedColumn ca, cb;
  ca.BuildRows(ta, 0, rows, needs, &interners);
  cb.BuildRows(tb, 0, rows, needs, &interners);
  for (size_t i = 0; i < kSamples.size(); ++i) {
    EXPECT_EQ(ca.Get(i).word_ids, cb.Get(i).word_ids);
    EXPECT_EQ(ca.Get(i).qgram_ids, cb.Get(i).qgram_ids);
    EXPECT_EQ(ca.Get(i).word_bits, cb.Get(i).word_bits);
  }
}

/// FAIREM_SIMD=off must run the seed path exactly: interning is skipped
/// wholesale, so the prepared values carry no ids and the measures fall
/// back to the string-set merges.
TEST(PreparedInterningTest, ScalarModeSkipsInterning) {
  Table ta = SampleTable("a");
  std::vector<size_t> rows;
  for (size_t r = 0; r < kSamples.size(); ++r) rows.push_back(r);
  PreparedNeeds needs;
  needs.word_set = true;
  needs.qgram_set = true;
  LevelGuard guard(SimdLevel::kScalar);
  ColumnInterners interners;
  PreparedColumn ca;
  ca.BuildRows(ta, 0, rows, needs, &interners);
  for (size_t i = 0; i < kSamples.size(); ++i) {
    EXPECT_FALSE(ca.Get(i).has_ids);
    EXPECT_TRUE(ca.Get(i).word_ids.empty());
    EXPECT_TRUE(ca.Get(i).qgram_ids.empty());
  }
  // And no interners at all still works (ExtractFeatures' path).
  PreparedColumn plain;
  plain.BuildRows(ta, 0, rows, needs, nullptr);
  EXPECT_FALSE(plain.Get(0).has_ids);
}

TEST(PreparedInterningTest, InternerAssignsDenseStableIds) {
  TokenInterner interner;
  EXPECT_EQ(0u, interner.Intern("alpha"));
  EXPECT_EQ(1u, interner.Intern("beta"));
  EXPECT_EQ(0u, interner.Intern("alpha"));
  EXPECT_EQ(2u, interner.Intern("gamma"));
  EXPECT_EQ(3u, interner.size());
}

}  // namespace
}  // namespace fairem
