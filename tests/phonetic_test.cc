#include "src/text/phonetic.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

TEST(SoundexTest, ClassicExamples) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, CaseInsensitiveAndNonLettersSkipped) {
  EXPECT_EQ(Soundex("robert"), Soundex("ROBERT"));
  EXPECT_EQ(Soundex("O'Brien"), Soundex("OBrien"));
}

TEST(SoundexTest, EmptyAndLetterless) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
}

TEST(SoundexTest, PadsTo4) {
  EXPECT_EQ(Soundex("A").size(), 4u);
  EXPECT_EQ(Soundex("A"), "A000");
}

TEST(SoundexSimilarityTest, MatchesAndMismatches) {
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Robert", "Rupert"), 1.0);
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Robert", "Smith"), 0.0);
  EXPECT_DOUBLE_EQ(SoundexSimilarity("", "Smith"), 0.0);
}

}  // namespace
}  // namespace fairem
