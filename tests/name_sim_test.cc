#include "src/text/name_sim.h"

#include <gtest/gtest.h>

#include "src/text/edit_distance.h"

namespace fairem {
namespace {

TEST(AbbrevNameTest, InitialsMatchFullNames) {
  double abbrev = AbbreviationAwareNameSimilarity("M. Dhoni",
                                                  "Mahendra Dhoni");
  EXPECT_GT(abbrev, 0.85);
  // Much higher than plain Jaro-Winkler on the raw strings.
  EXPECT_GT(abbrev, JaroWinklerSimilarity("M. Dhoni", "Mahendra Dhoni"));
}

TEST(AbbrevNameTest, WrongInitialGetsNoCredit) {
  double wrong = AbbreviationAwareNameSimilarity("K. Dhoni",
                                                 "Mahendra Dhoni");
  double right = AbbreviationAwareNameSimilarity("M. Dhoni",
                                                 "Mahendra Dhoni");
  EXPECT_LT(wrong, right);
}

TEST(AbbrevNameTest, SymmetricAndBounded) {
  const char* samples[] = {"", "M. Dhoni", "Mahendra Singh Dhoni",
                           "Sachin Tendulkar", "S Tendulkar"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      double v = AbbreviationAwareNameSimilarity(a, b);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      EXPECT_DOUBLE_EQ(v, AbbreviationAwareNameSimilarity(b, a))
          << a << " / " << b;
    }
  }
  EXPECT_DOUBLE_EQ(AbbreviationAwareNameSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(AbbreviationAwareNameSimilarity("x", ""), 0.0);
}

TEST(AbbrevNameTest, ExtraTokensDiluteScore) {
  double two = AbbreviationAwareNameSimilarity("Sachin Tendulkar",
                                               "Sachin Tendulkar");
  double three = AbbreviationAwareNameSimilarity("Sachin Tendulkar",
                                                 "Sachin Ramesh Tendulkar");
  EXPECT_DOUBLE_EQ(two, 1.0);
  EXPECT_LT(three, 1.0);
  EXPECT_GT(three, 0.6);
}

TEST(TokenSortTest, OrderInsensitive) {
  EXPECT_DOUBLE_EQ(TokenSortRatio("huang qingming", "Qingming Huang"), 1.0);
  EXPECT_LT(TokenSortRatio("alpha beta", "gamma delta"), 0.5);
  EXPECT_DOUBLE_EQ(TokenSortRatio("", ""), 1.0);
}

TEST(AffineGapTest, LongGapCheaperThanScatteredEdits) {
  // One long insertion ("DSC-" prefix + "KIT" suffix) barely hurts...
  double long_gap = AffineGapSimilarity("rx100", "dsc-rx100kit");
  // ...while the same number of scattered substitutions hurts a lot.
  double scattered = AffineGapSimilarity("rx100", "ax1b0c");
  EXPECT_GT(long_gap, 0.8);
  EXPECT_GT(long_gap, scattered);
}

TEST(AffineGapTest, EdgeCasesAndBounds) {
  EXPECT_DOUBLE_EQ(AffineGapSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(AffineGapSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(AffineGapSimilarity("same", "same"), 1.0);
  const char* samples[] = {"rx100", "dsc-rx100", "alpha", ""};
  for (const char* a : samples) {
    for (const char* b : samples) {
      double v = AffineGapSimilarity(a, b);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      EXPECT_DOUBLE_EQ(v, AffineGapSimilarity(b, a));
    }
  }
}

}  // namespace
}  // namespace fairem
