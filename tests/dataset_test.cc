#include "src/data/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace fairem {
namespace {

EMDataset TinyDataset() {
  Schema schema = std::move(Schema::Make({"name", "grp"})).value();
  EMDataset ds;
  ds.name = "tiny";
  ds.table_a = Table("a", schema);
  ds.table_b = Table("b", schema);
  EXPECT_TRUE(ds.table_a.AppendValues(0, {"x", "g1"}).ok());
  EXPECT_TRUE(ds.table_a.AppendValues(1, {"y", "g2"}).ok());
  EXPECT_TRUE(ds.table_b.AppendValues(0, {"x", "g1"}).ok());
  EXPECT_TRUE(ds.table_b.AppendValues(1, {"y", "g2"}).ok());
  ds.matching_attrs = {"name"};
  ds.sensitive_attr = "grp";
  ds.test = {{0, 0, true}, {1, 1, true}, {0, 1, false}, {1, 0, false}};
  return ds;
}

TEST(DatasetTest, PositiveRate) {
  EMDataset ds = TinyDataset();
  EXPECT_DOUBLE_EQ(ds.PositiveRate(), 0.5);
  ds.test.clear();
  EXPECT_DOUBLE_EQ(ds.PositiveRate(), 0.0);
}

TEST(DatasetTest, AllPairsConcatenatesSplits) {
  EMDataset ds = TinyDataset();
  ds.train = {{0, 0, true}};
  ds.valid = {{1, 1, true}};
  EXPECT_EQ(ds.AllPairs().size(), 6u);
}

TEST(DatasetTest, ValidateAcceptsGoodDataset) {
  EXPECT_TRUE(TinyDataset().Validate().ok());
}

TEST(DatasetTest, ValidateRejectsBadIndices) {
  EMDataset ds = TinyDataset();
  ds.test.push_back({99, 0, false});
  EXPECT_TRUE(ds.Validate().code() == StatusCode::kOutOfRange);
}

TEST(DatasetTest, ValidateRejectsMissingAttrs) {
  EMDataset ds = TinyDataset();
  ds.matching_attrs = {"nope"};
  EXPECT_FALSE(ds.Validate().ok());
  ds = TinyDataset();
  ds.sensitive_attr = "nope";
  EXPECT_FALSE(ds.Validate().ok());
  ds = TinyDataset();
  ds.default_threshold = 1.5;
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(SplitPairsTest, FractionsRespected) {
  std::vector<LabeledPair> pairs;
  for (size_t i = 0; i < 100; ++i) pairs.push_back({i, i, i % 5 == 0});
  Rng rng(3);
  std::vector<LabeledPair> train;
  std::vector<LabeledPair> valid;
  std::vector<LabeledPair> test;
  ASSERT_TRUE(
      SplitPairs(pairs, 0.6, 0.2, &rng, &train, &valid, &test).ok());
  EXPECT_EQ(train.size(), 60u);
  EXPECT_EQ(valid.size(), 20u);
  EXPECT_EQ(test.size(), 20u);
}

TEST(SplitPairsTest, PartitionIsExact) {
  std::vector<LabeledPair> pairs;
  for (size_t i = 0; i < 37; ++i) pairs.push_back({i, i + 1, false});
  Rng rng(5);
  std::vector<LabeledPair> train;
  std::vector<LabeledPair> valid;
  std::vector<LabeledPair> test;
  ASSERT_TRUE(
      SplitPairs(pairs, 0.5, 0.25, &rng, &train, &valid, &test).ok());
  EXPECT_EQ(train.size() + valid.size() + test.size(), 37u);
  // Every original pair appears exactly once.
  std::set<size_t> lefts;
  for (const auto* split : {&train, &valid, &test}) {
    for (const auto& p : *split) lefts.insert(p.left);
  }
  EXPECT_EQ(lefts.size(), 37u);
}

TEST(SplitPairsTest, RejectsBadFractions) {
  std::vector<LabeledPair> pairs = {{0, 0, true}};
  Rng rng(1);
  std::vector<LabeledPair> a;
  std::vector<LabeledPair> b;
  std::vector<LabeledPair> c;
  EXPECT_FALSE(SplitPairs(pairs, 0.8, 0.3, &rng, &a, &b, &c).ok());
  EXPECT_FALSE(SplitPairs(pairs, -0.1, 0.3, &rng, &a, &b, &c).ok());
}

TEST(SplitPairsTest, DeterministicForSeed) {
  std::vector<LabeledPair> pairs;
  for (size_t i = 0; i < 50; ++i) pairs.push_back({i, i, false});
  auto run = [&](uint64_t seed) {
    Rng rng(seed);
    std::vector<LabeledPair> train;
    std::vector<LabeledPair> valid;
    std::vector<LabeledPair> test;
    EXPECT_TRUE(
        SplitPairs(pairs, 0.5, 0.2, &rng, &train, &valid, &test).ok());
    return train;
  };
  std::vector<LabeledPair> t1 = run(7);
  std::vector<LabeledPair> t2 = run(7);
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].left, t2[i].left);
  }
}

TEST(DatasetTest, SensitiveAttrKindNames) {
  EXPECT_STREQ(SensitiveAttrKindName(SensitiveAttrKind::kBinary), "binary");
  EXPECT_STREQ(SensitiveAttrKindName(SensitiveAttrKind::kSetwise), "setwise");
}

}  // namespace
}  // namespace fairem
