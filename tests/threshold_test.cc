#include "src/core/threshold.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fairem {
namespace {

TEST(ThresholdGridTest, InclusiveEvenSpacing) {
  std::vector<double> grid = ThresholdGrid(0.3, 0.9, 0.1);
  ASSERT_EQ(grid.size(), 7u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.3);
  EXPECT_NEAR(grid.back(), 0.9, 1e-9);
}

TEST(SensitivityTest, L2OfAdjacentDeltas) {
  std::vector<ThresholdPoint> sweep(4);
  sweep[0].num_unfair_groups = 0;
  sweep[1].num_unfair_groups = 3;  // +3
  sweep[2].num_unfair_groups = 3;  // 0
  sweep[3].num_unfair_groups = 1;  // -2
  EXPECT_NEAR(ThresholdSensitivityL2(sweep), std::sqrt(9.0 + 0.0 + 4.0),
              1e-12);
}

TEST(SensitivityTest, ConstantSweepHasZeroSensitivity) {
  std::vector<ThresholdPoint> sweep(5);
  for (auto& p : sweep) p.num_unfair_groups = 2;
  EXPECT_DOUBLE_EQ(ThresholdSensitivityL2(sweep), 0.0);
  EXPECT_DOUBLE_EQ(ThresholdSensitivityL2({}), 0.0);
}

TEST(SweepTest, CountsUnfairGroupsPerThreshold) {
  // Two groups; scores separate g_a matches at 0.9 and g_b matches at 0.55:
  // at threshold 0.6 only g_b's matches are lost.
  Schema schema = std::move(Schema::Make({"grp"})).value();
  Table a("a", schema);
  Table b("b", schema);
  for (int i = 0; i < 30; ++i) {
    std::string g = i < 15 ? "g_a" : "g_b";
    ASSERT_TRUE(a.AppendValues(i, {g}).ok());
    ASSERT_TRUE(b.AppendValues(i, {g}).ok());
  }
  std::vector<LabeledPair> pairs;
  std::vector<double> scores;
  for (size_t i = 0; i < 30; ++i) {
    pairs.push_back({i, i, true});
    scores.push_back(i < 15 ? 0.9 : 0.55);
    pairs.push_back({i, (i + 1) % 30, false});
    scores.push_back(0.1);
  }
  SensitiveAttr attr{"grp", SensitiveAttrKind::kBinary, '|'};
  FairnessAuditor auditor =
      std::move(FairnessAuditor::Make(a, b, attr)).value();
  Result<std::vector<ThresholdPoint>> sweep = SweepThresholds(
      auditor, pairs, scores, FairnessMeasure::kTruePositiveRateParity,
      {0.5, 0.6, 0.95}, AuditOptions{});
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 3u);
  // t=0.5: everything found, fair. TPR=1.
  EXPECT_EQ((*sweep)[0].num_unfair_groups, 0);
  EXPECT_DOUBLE_EQ((*sweep)[0].utility, 1.0);
  // t=0.6: g_b loses all matches -> one unfair group, TPR=0.5.
  EXPECT_EQ((*sweep)[1].num_unfair_groups, 1);
  EXPECT_DOUBLE_EQ((*sweep)[1].utility, 0.5);
  // t=0.95: everyone loses everything -> equally bad, fair again.
  EXPECT_EQ((*sweep)[2].num_unfair_groups, 0);
  EXPECT_DOUBLE_EQ((*sweep)[2].utility, 0.0);
  // The paper's sensitivity statistic over this sweep.
  EXPECT_NEAR(ThresholdSensitivityL2(*sweep), std::sqrt(1.0 + 1.0), 1e-12);
}

TEST(SweepTest, SizeMismatchPropagates) {
  Schema schema = std::move(Schema::Make({"grp"})).value();
  Table a("a", schema);
  Table b("b", schema);
  ASSERT_TRUE(a.AppendValues(0, {"g"}).ok());
  ASSERT_TRUE(b.AppendValues(0, {"g"}).ok());
  SensitiveAttr attr{"grp", SensitiveAttrKind::kBinary, '|'};
  FairnessAuditor auditor =
      std::move(FairnessAuditor::Make(a, b, attr)).value();
  std::vector<LabeledPair> pairs = {{0, 0, true}};
  Result<std::vector<ThresholdPoint>> sweep = SweepThresholds(
      auditor, pairs, {0.5, 0.6}, FairnessMeasure::kTruePositiveRateParity,
      {0.5}, AuditOptions{});
  EXPECT_FALSE(sweep.ok());
}

}  // namespace
}  // namespace fairem
