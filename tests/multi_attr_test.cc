#include "src/core/multi_attr.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

/// The Figure 1 setting made concrete: songs with binary gender and
/// setwise genre; the matcher fails exactly for Female & Pop records.
struct Scenario {
  Table a;
  Table b;
  std::vector<PairOutcome> outcomes;
};

Scenario MakeScenario() {
  Schema schema = std::move(Schema::Make({"gender", "genre"})).value();
  Table a("a", schema);
  Table b("b", schema);
  const char* genders[] = {"Female", "Male"};
  const char* genres[] = {"Pop", "Rock", "Pop|Rock", "Jazz"};
  int id = 0;
  for (const char* gender : genders) {
    for (const char* genre : genres) {
      for (int rep = 0; rep < 6; ++rep) {
        EXPECT_TRUE(a.AppendValues(id, {gender, genre}).ok());
        EXPECT_TRUE(b.AppendValues(id, {gender, genre}).ok());
        ++id;
      }
    }
  }
  Scenario s{std::move(a), std::move(b), {}};
  size_t n = s.a.num_rows();
  size_t gender_col = 0;
  size_t genre_col = 1;
  for (size_t i = 0; i < n; ++i) {
    bool female_pop =
        s.a.value(i, gender_col) == "Female" &&
        std::string(s.a.value(i, genre_col)).find("Pop") != std::string::npos;
    s.outcomes.push_back({i, i, /*pred=*/!female_pop, /*true=*/true});
    s.outcomes.push_back({i, (i + 1) % n, false, false});
  }
  return s;
}

TEST(MultiAttrTest, DomainsAndLevels) {
  Scenario s = MakeScenario();
  std::vector<SensitiveAttr> attrs = {
      {"gender", SensitiveAttrKind::kBinary, '|'},
      {"genre", SensitiveAttrKind::kSetwise, '|'}};
  MultiAttrAuditor auditor =
      std::move(MultiAttrAuditor::Make(s.a, s.b, attrs)).value();
  ASSERT_EQ(auditor.domains().size(), 2u);
  EXPECT_EQ(auditor.domains()[0].domain,
            (std::vector<std::string>{"Female", "Male"}));
  EXPECT_EQ(auditor.domains()[1].domain,
            (std::vector<std::string>{"Jazz", "Pop", "Rock"}));
  EXPECT_EQ(auditor.max_level(), 4);
}

TEST(MultiAttrTest, LevelTwoLocalizesIntersectionalUnfairness) {
  Scenario s = MakeScenario();
  std::vector<SensitiveAttr> attrs = {
      {"gender", SensitiveAttrKind::kBinary, '|'},
      {"genre", SensitiveAttrKind::kSetwise, '|'}};
  MultiAttrAuditor auditor =
      std::move(MultiAttrAuditor::Make(s.a, s.b, attrs)).value();
  AuditOptions options;
  options.measures = {FairnessMeasure::kTruePositiveRateParity};
  options.min_group_pairs = 5;
  Result<AuditReport> level2 = auditor.AuditLevel(2, s.outcomes, options);
  ASSERT_TRUE(level2.ok());
  const AuditEntry* fp = level2->Find(
      "Female & Pop", FairnessMeasure::kTruePositiveRateParity);
  ASSERT_NE(fp, nullptr);
  EXPECT_TRUE(fp->defined);
  EXPECT_DOUBLE_EQ(fp->group_value, 0.0);
  EXPECT_TRUE(fp->unfair);
  // The complementary intersection is clean.
  const AuditEntry* mr = level2->Find(
      "Male & Rock", FairnessMeasure::kTruePositiveRateParity);
  ASSERT_NE(mr, nullptr);
  EXPECT_FALSE(mr->unfair);
}

TEST(MultiAttrTest, LevelOneMatchesSingleAttrView) {
  Scenario s = MakeScenario();
  std::vector<SensitiveAttr> attrs = {
      {"gender", SensitiveAttrKind::kBinary, '|'},
      {"genre", SensitiveAttrKind::kSetwise, '|'}};
  MultiAttrAuditor auditor =
      std::move(MultiAttrAuditor::Make(s.a, s.b, attrs)).value();
  AuditOptions options;
  options.measures = {FairnessMeasure::kAccuracyParity};
  Result<AuditReport> level1 = auditor.AuditLevel(1, s.outcomes, options);
  ASSERT_TRUE(level1.ok());
  // 5 level-1 groups, one AP entry each.
  EXPECT_EQ(level1->entries.size(), 5u);
}

TEST(MultiAttrTest, DuplicateValueAcrossAttrsRejected) {
  Schema schema = std::move(Schema::Make({"x", "y"})).value();
  Table a("a", schema);
  Table b("b", schema);
  ASSERT_TRUE(a.AppendValues(0, {"same", "same"}).ok());
  ASSERT_TRUE(b.AppendValues(0, {"same", "same"}).ok());
  std::vector<SensitiveAttr> attrs = {
      {"x", SensitiveAttrKind::kBinary, '|'},
      {"y", SensitiveAttrKind::kBinary, '|'}};
  EXPECT_FALSE(MultiAttrAuditor::Make(a, b, attrs).ok());
}

}  // namespace
}  // namespace fairem
