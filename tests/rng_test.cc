#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace fairem {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleClampsToPopulation) {
  Rng rng(31);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 50).size(), 5u);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(41);
  Rng child = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace fairem
