#include "src/core/auc.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

TEST(RocAucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(*RocAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
}

TEST(RocAucTest, InvertedRankingIsZero) {
  EXPECT_DOUBLE_EQ(*RocAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(RocAucTest, AllTiedScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(*RocAuc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
}

TEST(RocAucTest, PartialOverlap) {
  // positives {0.4, 0.8}, negatives {0.3, 0.6}: pairs won = 3 of 4 -> 0.75.
  EXPECT_DOUBLE_EQ(*RocAuc({0.4, 0.8, 0.3, 0.6}, {1, 1, 0, 0}), 0.75);
}

TEST(RocAucTest, UndefinedWithoutBothClasses) {
  EXPECT_TRUE(RocAuc({0.5, 0.6}, {1, 1}).status().IsUndefinedStatistic());
  EXPECT_TRUE(RocAuc({0.5}, {0}).status().IsUndefinedStatistic());
  EXPECT_FALSE(RocAuc({0.5}, {0, 1}).ok());  // size mismatch
}

TEST(AucParityTest, FlagsGroupWithWorseRanking) {
  // Two groups; for g_bad the matcher's scores invert the truth.
  Schema schema = std::move(Schema::Make({"grp"})).value();
  Table a("a", schema);
  Table b("b", schema);
  for (int i = 0; i < 40; ++i) {
    std::string g = i < 20 ? "g_good" : "g_bad";
    ASSERT_TRUE(a.AppendValues(i, {g}).ok());
    ASSERT_TRUE(b.AppendValues(i, {g}).ok());
  }
  SensitiveAttr attr{"grp", SensitiveAttrKind::kBinary, '|'};
  GroupMembership membership =
      std::move(GroupMembership::Make(a, b, attr)).value();
  std::vector<LabeledPair> pairs;
  std::vector<double> scores;
  for (size_t i = 0; i < 40; ++i) {
    bool good = i < 20;
    pairs.push_back({i, i, true});
    scores.push_back(good ? 0.9 : 0.2);  // bad group's matches rank low
    pairs.push_back({i, (i + 1) % (good ? 20 : 40), false});
    scores.push_back(good ? 0.1 : 0.6);  // ... below its non-matches
  }
  Result<std::vector<GroupAuc>> report =
      AuditAucParity(membership, pairs, scores);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->size(), 2u);
  const GroupAuc* bad = nullptr;
  const GroupAuc* good = nullptr;
  for (const auto& row : *report) {
    if (row.group_label == "g_bad") bad = &row;
    if (row.group_label == "g_good") good = &row;
  }
  ASSERT_NE(bad, nullptr);
  ASSERT_NE(good, nullptr);
  EXPECT_TRUE(bad->defined);
  EXPECT_LT(bad->auc, 0.2);
  EXPECT_TRUE(bad->unfair);
  EXPECT_DOUBLE_EQ(good->auc, 1.0);
  EXPECT_FALSE(good->unfair);
}

TEST(AucParityTest, SizeMismatchIsError) {
  Schema schema = std::move(Schema::Make({"grp"})).value();
  Table a("a", schema);
  Table b("b", schema);
  ASSERT_TRUE(a.AppendValues(0, {"g"}).ok());
  ASSERT_TRUE(b.AppendValues(0, {"g"}).ok());
  SensitiveAttr attr{"grp", SensitiveAttrKind::kBinary, '|'};
  GroupMembership membership =
      std::move(GroupMembership::Make(a, b, attr)).value();
  EXPECT_FALSE(AuditAucParity(membership, {{0, 0, true}}, {}).ok());
}

}  // namespace
}  // namespace fairem
