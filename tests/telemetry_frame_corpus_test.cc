// Malformed-frame corpus for the FEMTEL1 wire (DESIGN.md §11/§14), run
// against BOTH consumers of the framing: the supervisor-side
// ParseTelemetryWire (lenient by design — a worker killed mid-write must
// degrade to "the bytes are the payload") and the serve daemon's
// FrameDecoder (strict by design — a corrupt socket stream is closed, but
// must never crash, over-buffer, or desync onto a later client's frames).
// Every case asserts graceful degradation plus the
// fairem.telemetry.unknown_frames accounting.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/serve/protocol.h"

namespace fairem {
namespace {

uint64_t UnknownFrames() {
  return MetricsRegistry::Global()
      .GetCounter("fairem.telemetry.unknown_frames")
      ->value();
}

std::string Frame(const std::string& type, const std::string& bytes) {
  char header[32];
  std::snprintf(header, sizeof(header), "%s%016zx\n", type.c_str(),
                bytes.size());
  return std::string(header) + bytes;
}

std::string Magic() { return kTelemetryMagic; }

// --- ParseTelemetryWire (lenient consumer) ---------------------------------

TEST(FrameCorpusTest, TelemetryTruncatedLengthPrefix) {
  // Header cut mid-length-field: no complete frame ever parsed, so the
  // whole wire degrades to an unframed payload, not an error.
  const std::string wire = Magic() + "TELE00000000";
  TelemetryWireParse parsed = ParseTelemetryWire(wire);
  EXPECT_FALSE(parsed.framed);
  EXPECT_EQ(parsed.payload, wire);
}

TEST(FrameCorpusTest, TelemetryTruncatedAfterValidFrame) {
  // One complete frame, then a header cut short: keep the parsed frame,
  // flag the truncation.
  const std::string wire = Magic() + Frame("TELE", "{}") + "PROF000";
  TelemetryWireParse parsed = ParseTelemetryWire(wire);
  EXPECT_TRUE(parsed.framed);
  EXPECT_TRUE(parsed.truncated);
  ASSERT_EQ(parsed.frames.size(), 1u);
  EXPECT_EQ(parsed.frames[0].bytes, "{}");
}

TEST(FrameCorpusTest, TelemetryOversizedDeclaredLength) {
  // A body length far beyond the bytes present: truncated-mid-frame, the
  // parser must not wait for (or allocate) the declared terabyte.
  const std::string wire =
      Magic() + Frame("TELE", "{}") + "PROF0000010000000000\n";
  TelemetryWireParse parsed = ParseTelemetryWire(wire);
  EXPECT_TRUE(parsed.framed);
  EXPECT_TRUE(parsed.truncated);
  ASSERT_EQ(parsed.frames.size(), 1u);
}

TEST(FrameCorpusTest, TelemetryUnknownTypeFloodCounted) {
  std::string wire = Magic();
  for (int i = 0; i < 64; ++i) wire += Frame("ZZZ" + std::to_string(i % 10),
                                             "future bytes");
  wire += Frame("PAYL", "the payload");
  const uint64_t before = UnknownFrames();
  TelemetryWireParse parsed = ParseTelemetryWire(wire);
  EXPECT_EQ(UnknownFrames() - before, 64u);
  EXPECT_TRUE(parsed.framed);
  EXPECT_FALSE(parsed.truncated);
  EXPECT_EQ(parsed.payload, "the payload");
  EXPECT_EQ(parsed.frames.size(), 64u);  // kept, callers dispatch on type
}

TEST(FrameCorpusTest, TelemetryZeroLengthFrames) {
  const std::string wire =
      Magic() + Frame("TELE", "") + Frame("PROF", "") + Frame("PAYL", "");
  TelemetryWireParse parsed = ParseTelemetryWire(wire);
  EXPECT_TRUE(parsed.framed);
  EXPECT_FALSE(parsed.truncated);
  ASSERT_EQ(parsed.frames.size(), 2u);
  EXPECT_EQ(parsed.frames[0].bytes, "");
  EXPECT_EQ(parsed.payload, "");
}

TEST(FrameCorpusTest, TelemetryRoundTripSurvivesUnknownFrames) {
  // Forward compatibility: EncodeTelemetryWire output with a foreign frame
  // spliced in still yields the original telemetry + payload.
  std::vector<TelemetryFrame> frames;
  frames.push_back({"TELE", "{\"pid\":1}"});
  std::string wire = EncodeTelemetryWire(frames, "payload-bytes");
  // Splice an unknown frame between TELE and PAYL.
  const size_t payl_at = wire.find("PAYL");
  ASSERT_NE(payl_at, std::string::npos);
  wire.insert(payl_at, Frame("NEWF", "from the future"));
  TelemetrySplit split = SplitTelemetryPayload(wire);
  EXPECT_TRUE(split.has_telemetry);
  EXPECT_EQ(split.telemetry_json, "{\"pid\":1}");
  EXPECT_EQ(split.payload, "payload-bytes");
}

// --- FrameDecoder (strict consumer) ----------------------------------------

Result<FrameDecoder::Next> FeedAll(FrameDecoder* decoder,
                                   const std::string& bytes,
                                   ServeMessage* out) {
  decoder->Feed(bytes.data(), bytes.size());
  return decoder->TryNext(out);
}

TEST(FrameCorpusTest, DecoderTruncatedLengthPrefixWaitsThenRejects) {
  FrameDecoder decoder;
  ServeMessage message;
  // A short header is just "need more bytes"...
  Result<FrameDecoder::Next> next =
      FeedAll(&decoder, Magic() + "QREQ00000000", &message);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, FrameDecoder::Next::kNeedMore);
  // ...until the rest arrives malformed (letters in the hex field): then
  // the stream is unrecoverable.
  next = FeedAll(&decoder, "garbage!\n", &message);
  EXPECT_FALSE(next.ok());
}

TEST(FrameCorpusTest, DecoderBadMagicRejected) {
  FrameDecoder decoder;
  ServeMessage message;
  Result<FrameDecoder::Next> next =
      FeedAll(&decoder, "HTTP/1.1 200 OK\r\n\r\n", &message);
  EXPECT_FALSE(next.ok());
}

TEST(FrameCorpusTest, DecoderOversizedDeclaredLengthRejected) {
  FrameDecoder decoder;
  ServeMessage message;
  // 2^40 declared bytes: must be rejected up front, never buffered toward.
  Result<FrameDecoder::Next> next = FeedAll(
      &decoder, Magic() + "QREQ0000010000000000\n", &message);
  EXPECT_FALSE(next.ok());
  EXPECT_LT(decoder.buffered(), 1024u);
}

TEST(FrameCorpusTest, DecoderUnknownTypeFloodSkippedAndCounted) {
  FrameDecoder decoder;
  ServeMessage message;
  std::string wire = Magic();
  for (int i = 0; i < 32; ++i) wire += Frame("FUTR", "ignore");
  wire += Frame(kFrameQueryRequest, "{\"op\":\"ping\",\"id\":3}");
  const uint64_t before = UnknownFrames();
  Result<FrameDecoder::Next> next = FeedAll(&decoder, wire, &message);
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(message.type, kFrameQueryRequest);
  EXPECT_EQ(UnknownFrames() - before, 32u);
}

TEST(FrameCorpusTest, DecoderZeroLengthFrame) {
  FrameDecoder decoder;
  ServeMessage message;
  Result<FrameDecoder::Next> next =
      FeedAll(&decoder, Magic() + Frame(kFrameQueryRequest, ""), &message);
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(message.bytes, "");
  // The empty request body is the next layer's problem — and a structured
  // error there, not a crash.
  EXPECT_FALSE(ParseQueryRequest(message.bytes).ok());
}

TEST(FrameCorpusTest, DecoderByteAtATimeDelivery) {
  // Slow-client shape: the message dribbles in one byte per Feed. Every
  // intermediate step is kNeedMore; the final byte yields the message.
  QueryRequest ping;
  ping.op = "ping";
  ping.id = 42;
  const std::string wire =
      EncodeServeMessage(kFrameQueryRequest, SerializeQueryRequest(ping));
  FrameDecoder decoder;
  ServeMessage message;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    Result<FrameDecoder::Next> next =
        FeedAll(&decoder, wire.substr(i, 1), &message);
    ASSERT_TRUE(next.ok()) << "byte " << i << ": " << next.status();
    ASSERT_EQ(*next, FrameDecoder::Next::kNeedMore) << "byte " << i;
  }
  Result<FrameDecoder::Next> next =
      FeedAll(&decoder, wire.substr(wire.size() - 1), &message);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, FrameDecoder::Next::kMessage);
  Result<QueryRequest> parsed = ParseQueryRequest(message.bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->id, 42u);
}

TEST(FrameCorpusTest, DecoderBackToBackMessagesNoDesync) {
  // Two messages in one read must come out as two messages — the framing
  // must not eat into the second one's magic.
  QueryRequest a;
  a.op = "ping";
  a.id = 1;
  QueryRequest b;
  b.op = "stats";
  b.id = 2;
  std::string wire =
      EncodeServeMessage(kFrameQueryRequest, SerializeQueryRequest(a)) +
      EncodeServeMessage(kFrameQueryRequest, SerializeQueryRequest(b));
  FrameDecoder decoder;
  ServeMessage message;
  Result<FrameDecoder::Next> next = FeedAll(&decoder, wire, &message);
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(ParseQueryRequest(message.bytes)->id, 1u);
  next = decoder.TryNext(&message);
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(ParseQueryRequest(message.bytes)->id, 2u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

// --- Router wire path (HLTH + forward compatibility) -----------------------

TEST(FrameCorpusTest, DecoderHealthFrameIsKnown) {
  // HLTH is a first-class frame type: it must come out as a message, not
  // be skipped into the unknown-frames counter.
  HealthReport probe;
  probe.probe = true;
  probe.id = 9;
  FrameDecoder decoder;
  ServeMessage message;
  const uint64_t before = UnknownFrames();
  Result<FrameDecoder::Next> next = FeedAll(
      &decoder,
      EncodeServeMessage(kFrameHealth, SerializeHealthReport(probe)),
      &message);
  ASSERT_TRUE(next.ok()) << next.status();
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(message.type, std::string(kFrameHealth));
  EXPECT_EQ(UnknownFrames(), before);
  Result<HealthReport> parsed = ParseHealthReport(message.bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->probe);
  EXPECT_EQ(parsed->id, 9u);
}

TEST(FrameCorpusTest, DecoderInterleavedHealthAndQueryNoDesync) {
  // The router's probe connection and a query connection share the wire
  // format; on one stream, HLTH and QREQ/QRSP must interleave without the
  // decoder desyncing or dropping either.
  QueryRequest query;
  query.op = "ping";
  query.id = 11;
  HealthReport probe;
  probe.probe = true;
  probe.id = 12;
  HealthReport reply;
  reply.id = 12;
  reply.queue_depth = 3.0;
  std::string wire =
      EncodeServeMessage(kFrameHealth, SerializeHealthReport(probe)) +
      EncodeServeMessage(kFrameQueryRequest, SerializeQueryRequest(query)) +
      EncodeServeMessage(kFrameHealth, SerializeHealthReport(reply));
  FrameDecoder decoder;
  ServeMessage message;
  Result<FrameDecoder::Next> next = FeedAll(&decoder, wire, &message);
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(message.type, std::string(kFrameHealth));
  next = decoder.TryNext(&message);
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(message.type, std::string(kFrameQueryRequest));
  EXPECT_EQ(ParseQueryRequest(message.bytes)->id, 11u);
  next = decoder.TryNext(&message);
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(message.type, std::string(kFrameHealth));
  EXPECT_DOUBLE_EQ(ParseHealthReport(message.bytes)->queue_depth, 3.0);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCorpusTest, QueryResponseToleratesUnknownJsonFields) {
  // Forward compatibility on the router's return path: a newer backend may
  // report more per-response detail; older routers/clients must parse past
  // it untouched.
  const std::string json =
      "{\"id\":5,\"ok\":true,\"payload\":\"pong\","
      "\"served_by\":\"backend-2\",\"hedged\":false,"
      "\"attempt\":{\"n\":2,\"backend\":\"a.sock\"}}";
  Result<QueryResponse> response = ParseQueryResponse(json);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->id, 5u);
  EXPECT_TRUE(response->status.ok());
  EXPECT_EQ(response->payload, "pong");

  const std::string error_json =
      "{\"id\":6,\"ok\":false,\"code\":10,\"code_name\":\"unavailable\","
      "\"message\":\"shed\",\"retry_after_s\":0.25,"
      "\"breaker\":\"half-open\",\"queue_eta_s\":1.5}";
  Result<QueryResponse> error = ParseQueryResponse(error_json);
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_TRUE(error->status.IsUnavailable());
  EXPECT_DOUBLE_EQ(error->retry_after_s, 0.25);
}

TEST(FrameCorpusTest, HealthReportToleratesUnknownJsonFieldsAndDefaults) {
  // Newer peers may report more load detail; missing fields fall back to
  // safe defaults, so mixed-version fleets keep probing each other.
  Result<HealthReport> rich = ParseHealthReport(
      "{\"probe\":false,\"id\":3,\"serving\":true,\"queue_depth\":2,"
      "\"inflight\":1,\"retry_after_s\":0.1,"
      "\"cpu_load\":0.9,\"build\":\"v9\",\"shards\":[1,2]}");
  ASSERT_TRUE(rich.ok()) << rich.status();
  EXPECT_EQ(rich->id, 3u);
  EXPECT_TRUE(rich->serving);
  EXPECT_DOUBLE_EQ(rich->queue_depth, 2.0);

  Result<HealthReport> bare = ParseHealthReport("{}");
  ASSERT_TRUE(bare.ok()) << bare.status();
  EXPECT_FALSE(bare->probe);
  EXPECT_EQ(bare->id, 0u);
  EXPECT_TRUE(bare->serving);

  EXPECT_FALSE(ParseHealthReport("[1,2,3]").ok());
  EXPECT_FALSE(ParseHealthReport("not json").ok());
}

// --- Trace context on the wire (DESIGN.md §16) ------------------------------

TEST(FrameCorpusTest, TraceContextRoundTripsOnQueryRequest) {
  QueryRequest request;
  request.op = "cell";
  request.id = 21;
  request.dataset = "Cricket";
  request.matcher = "DTMatcher";
  request.trace.trace_hi = 0x0123456789abcdefull;
  request.trace.trace_lo = 0xfedcba9876543210ull;
  request.trace.parent_span_id = 77;
  request.trace.sampled = true;
  Result<QueryRequest> parsed =
      ParseQueryRequest(SerializeQueryRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->trace.valid());
  EXPECT_EQ(parsed->trace.trace_hi, request.trace.trace_hi);
  EXPECT_EQ(parsed->trace.trace_lo, request.trace.trace_lo);
  EXPECT_EQ(parsed->trace.parent_span_id, 77u);
  EXPECT_TRUE(parsed->trace.sampled);
}

TEST(FrameCorpusTest, UntracedRequestOmitsTraceFieldsFromWire) {
  // The untraced wire form must be byte-identical to the pre-tracing one:
  // an old peer never sees a field it does not know.
  QueryRequest request;
  request.op = "ping";
  request.id = 3;
  const std::string json = SerializeQueryRequest(request);
  EXPECT_EQ(json.find("trace_id"), std::string::npos);
  EXPECT_EQ(json.find("span_id"), std::string::npos);
  EXPECT_EQ(json.find("sampled"), std::string::npos);
  Result<QueryRequest> parsed = ParseQueryRequest(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->trace.valid());
}

TEST(FrameCorpusTest, MalformedTraceFieldsDegradeToUntraced) {
  // A garbled trace annotation must never fail the request itself — the
  // query still runs, just untraced.
  const char* corpus[] = {
      // trace_id not hex at all
      "{\"op\":\"ping\",\"id\":1,\"trace_id\":\"not-hex\",\"span_id\":7}",
      // trace_id too short
      "{\"op\":\"ping\",\"id\":1,\"trace_id\":\"abc\",\"span_id\":7}",
      // trace_id wrong type
      "{\"op\":\"ping\",\"id\":1,\"trace_id\":123,\"span_id\":7}",
      // trace_id all zeros (not a valid identity)
      "{\"op\":\"ping\",\"id\":1,"
      "\"trace_id\":\"00000000000000000000000000000000\"}",
  };
  for (const char* json : corpus) {
    Result<QueryRequest> parsed = ParseQueryRequest(json);
    ASSERT_TRUE(parsed.ok()) << json << ": " << parsed.status();
    EXPECT_FALSE(parsed->trace.valid()) << json;
    EXPECT_EQ(parsed->id, 1u) << json;
  }
  // span_id malformed alongside a good trace_id: keep the trace identity,
  // drop the parent link.
  Result<QueryRequest> parsed = ParseQueryRequest(
      "{\"op\":\"ping\",\"id\":1,"
      "\"trace_id\":\"0123456789abcdeffedcba9876543210\","
      "\"span_id\":\"wat\"}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->trace.valid());
  EXPECT_EQ(parsed->trace.parent_span_id, 0u);
}

TEST(FrameCorpusTest, ResponseSpansRoundTripAndTolerateMalformedEntries) {
  QueryResponse response;
  response.id = 9;
  response.payload = "pong";
  WireSpan span;
  span.name = "daemon.request";
  span.process = "daemon";
  span.pid = 42;
  span.span_id = 5;
  span.parent_span_id = 4;
  span.start_unix_us = 1000;
  span.duration_us = 250;
  span.annotations.push_back({"outcome", "ok"});
  response.spans.push_back(span);
  Result<QueryResponse> parsed =
      ParseQueryResponse(SerializeQueryResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->spans.size(), 1u);
  EXPECT_EQ(parsed->spans[0].name, "daemon.request");
  EXPECT_EQ(parsed->spans[0].parent_span_id, 4u);
  ASSERT_EQ(parsed->spans[0].annotations.size(), 1u);
  EXPECT_EQ(parsed->spans[0].annotations[0].second, "ok");

  // Malformed entries in the spans array drop silently (non-objects, a
  // span without its required name + nonzero span_id); the response — and
  // the well-formed spans around them — survive.
  Result<QueryResponse> tolerant = ParseQueryResponse(
      "{\"id\":9,\"ok\":true,\"payload\":\"pong\","
      "\"spans\":[\"not an object\",{\"name\":\"dropped\"},"
      "{\"name\":\"kept\",\"span_id\":2},17]}");
  ASSERT_TRUE(tolerant.ok()) << tolerant.status();
  ASSERT_EQ(tolerant->spans.size(), 1u);
  EXPECT_EQ(tolerant->spans[0].name, "kept");

  // An old peer's response has no spans field at all.
  Result<QueryResponse> old = ParseQueryResponse(
      "{\"id\":9,\"ok\":true,\"payload\":\"pong\"}");
  ASSERT_TRUE(old.ok());
  EXPECT_TRUE(old->spans.empty());
}

TEST(FrameCorpusTest, ProgressFrameIsKnownAndParseTolerant) {
  // PROG is a first-class frame type — skipped-and-counted would mean an
  // old router forwarding it as unknown desyncs nothing, but a new client
  // must receive it as a message.
  ProgressUpdate update;
  update.id = 31;
  update.fraction = 0.5;
  update.eta_s = 1.25;
  update.stage = "compute";
  update.trace_id = "0123456789abcdeffedcba9876543210";
  FrameDecoder decoder;
  ServeMessage message;
  const uint64_t before = UnknownFrames();
  Result<FrameDecoder::Next> next = FeedAll(
      &decoder,
      EncodeServeMessage(kFrameProgress, SerializeProgressUpdate(update)),
      &message);
  ASSERT_TRUE(next.ok()) << next.status();
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(message.type, std::string(kFrameProgress));
  EXPECT_EQ(UnknownFrames(), before);
  Result<ProgressUpdate> parsed = ParseProgressUpdate(message.bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, 31u);
  EXPECT_DOUBLE_EQ(parsed->fraction, 0.5);
  EXPECT_EQ(parsed->stage, "compute");

  // Advisory means every field optional: a bare object parses, unknown
  // fields from a newer server pass through.
  Result<ProgressUpdate> bare = ParseProgressUpdate("{}");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->id, 0u);
  Result<ProgressUpdate> future = ParseProgressUpdate(
      "{\"id\":2,\"fraction\":0.1,\"phase_detail\":{\"cells\":9}}");
  ASSERT_TRUE(future.ok());
  EXPECT_EQ(future->id, 2u);
}

TEST(FrameCorpusTest, ProgressInterleavedWithResponseNoDesync) {
  // The mid-query shape a traced client actually sees: PROG, PROG, QRSP on
  // one stream. Every frame comes out, in order, buffer drained.
  ProgressUpdate p1;
  p1.id = 8;
  p1.fraction = 0.25;
  ProgressUpdate p2;
  p2.id = 8;
  p2.fraction = 0.75;
  QueryResponse done;
  done.id = 8;
  done.payload = "cell-bytes";
  std::string wire =
      EncodeServeMessage(kFrameProgress, SerializeProgressUpdate(p1)) +
      EncodeServeMessage(kFrameProgress, SerializeProgressUpdate(p2)) +
      EncodeServeMessage(kFrameQueryResponse, SerializeQueryResponse(done));
  FrameDecoder decoder;
  ServeMessage message;
  Result<FrameDecoder::Next> next = FeedAll(&decoder, wire, &message);
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(message.type, std::string(kFrameProgress));
  EXPECT_DOUBLE_EQ(ParseProgressUpdate(message.bytes)->fraction, 0.25);
  next = decoder.TryNext(&message);
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(message.type, std::string(kFrameProgress));
  EXPECT_DOUBLE_EQ(ParseProgressUpdate(message.bytes)->fraction, 0.75);
  next = decoder.TryNext(&message);
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(message.type, std::string(kFrameQueryResponse));
  EXPECT_EQ(ParseQueryResponse(message.bytes)->payload, "cell-bytes");
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCorpusTest, OldPeerUnknownTraceJsonFieldsNoDesync) {
  // A traced request and a span-carrying response, each with extra fields
  // from an even newer version, followed by a second plain message on the
  // same stream: nothing desyncs and the extras are ignored.
  const std::string traced_req =
      "{\"op\":\"cell\",\"id\":14,\"dataset\":\"Cricket\","
      "\"matcher\":\"DTMatcher\","
      "\"trace_id\":\"00000000000000010000000000000002\",\"span_id\":3,"
      "\"sampled\":true,\"trace_flags\":255,\"baggage\":{\"k\":\"v\"}}";
  QueryRequest follow;
  follow.op = "ping";
  follow.id = 15;
  std::string wire =
      EncodeServeMessage(kFrameQueryRequest, traced_req) +
      EncodeServeMessage(kFrameQueryRequest, SerializeQueryRequest(follow));
  FrameDecoder decoder;
  ServeMessage message;
  Result<FrameDecoder::Next> next = FeedAll(&decoder, wire, &message);
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  Result<QueryRequest> first = ParseQueryRequest(message.bytes);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->trace.valid());
  EXPECT_EQ(first->trace.trace_lo, 2u);
  next = decoder.TryNext(&message);
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(*next, FrameDecoder::Next::kMessage);
  EXPECT_EQ(ParseQueryRequest(message.bytes)->id, 15u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

}  // namespace
}  // namespace fairem
