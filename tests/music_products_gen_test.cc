// Generator-contract tests for iTunes-Amazon and the WDC-style product
// datasets: the §5.3.3 traps must be physically present in the data.

#include <gtest/gtest.h>

#include <set>

#include "src/datagen/music.h"
#include "src/datagen/products.h"
#include "src/text/edit_distance.h"
#include "src/text/tokenize.h"

namespace fairem {
namespace {

EMDataset Itunes() {
  return std::move(GenerateItunesAmazon(ItunesAmazonOptions{})).value();
}

TEST(ItunesGenTest, GenreIsSetwiseWithSemanticFamilies) {
  EMDataset ds = Itunes();
  EXPECT_EQ(ds.sensitive_kind, SensitiveAttrKind::kSetwise);
  size_t genre = *ds.table_a.schema().Index("genre");
  bool saw_country_family = false;
  for (size_t r = 0; r < ds.table_a.num_rows(); ++r) {
    std::string g(ds.table_a.value(r, genre));
    if (g.find("Country|") != std::string::npos ||
        g.find("|Honky Tonk") != std::string::npos) {
      saw_country_family = true;
    }
  }
  EXPECT_TRUE(saw_country_family);
}

TEST(ItunesGenTest, FrenchPopHasNoTrueMatches) {
  // The SP false-flag setup of §5.3.2: French-Pop's ground truth contains
  // only non-matches.
  EMDataset ds = Itunes();
  size_t genre = *ds.table_a.schema().Index("genre");
  for (const auto& p : ds.AllPairs()) {
    if (!p.is_match) continue;
    EXPECT_EQ(std::string(ds.table_a.value(p.left, genre))
                  .find("French-Pop"),
              std::string::npos);
  }
}

TEST(ItunesGenTest, CountryTrapPairsAgreeOnSideAttributes) {
  // The planted FP trap: same-artist near-title country non-matches share
  // album / price / released, differing only in title inflection and time.
  EMDataset ds = Itunes();
  size_t song = *ds.table_a.schema().Index("song");
  size_t artist = *ds.table_a.schema().Index("artist");
  size_t album = *ds.table_a.schema().Index("album");
  size_t genre = *ds.table_a.schema().Index("genre");
  int traps = 0;
  for (const auto& p : ds.AllPairs()) {
    if (p.is_match) continue;
    if (std::string(ds.table_a.value(p.left, genre)).find("Country") ==
        std::string::npos) {
      continue;
    }
    if (ds.table_a.value(p.left, artist) !=
        ds.table_b.value(p.right, artist)) {
      continue;
    }
    if (JaroWinklerSimilarity(ds.table_a.value(p.left, song),
                              ds.table_b.value(p.right, song)) < 0.84) {
      continue;
    }
    ++traps;
    EXPECT_EQ(ds.table_a.value(p.left, album),
              ds.table_b.value(p.right, album));
  }
  EXPECT_GT(traps, 10);
}

TEST(ItunesGenTest, RapMatchesCarryDecorations) {
  EMDataset ds = Itunes();
  size_t song = *ds.table_a.schema().Index("song");
  size_t genre = *ds.table_a.schema().Index("genre");
  int decorated = 0;
  int rap_matches = 0;
  for (const auto& p : ds.AllPairs()) {
    if (!p.is_match) continue;
    if (std::string(ds.table_a.value(p.left, genre)).find("Rap") ==
        std::string::npos) {
      continue;
    }
    ++rap_matches;
    std::string right(ds.table_b.value(p.right, song));
    if (right.find("feat.") != std::string::npos ||
        right.find("Remix") != std::string::npos ||
        right.find("Album Version") != std::string::npos) {
      ++decorated;
    }
  }
  ASSERT_GT(rap_matches, 0);
  EXPECT_GT(decorated, rap_matches / 2);
}

TEST(ProductsGenTest, SameProductOffersUseDifferentModelFormats) {
  EMDataset ds = std::move(GenerateCameras(ProductOptions{})).value();
  size_t title = *ds.table_a.schema().Index("title");
  int checked = 0;
  int disjoint_model_tokens = 0;
  for (const auto& p : ds.AllPairs()) {
    if (!p.is_match) continue;
    ++checked;
    // Token sets should differ (formatting variance) even for matches.
    auto ta = AlnumTokenize(ds.table_a.value(p.left, title));
    auto tb = AlnumTokenize(ds.table_b.value(p.right, title));
    std::set<std::string> sa(ta.begin(), ta.end());
    std::set<std::string> sb(tb.begin(), tb.end());
    if (sa != sb) ++disjoint_model_tokens;
  }
  ASSERT_GT(checked, 0);
  EXPECT_GT(disjoint_model_tokens, checked * 9 / 10);
}

TEST(ProductsGenTest, SensitiveCompanyIsHiddenFromMatchers) {
  for (auto gen : {&GenerateCameras, &GenerateShoes}) {
    EMDataset ds = std::move((*gen)(ProductOptions{})).value();
    EXPECT_EQ(ds.matching_attrs, (std::vector<std::string>{"title"}));
    EXPECT_EQ(ds.sensitive_attr, "company");
    // But the company is derivable from the title (the paper extracts the
    // manufacturer from the description).
    size_t title = *ds.table_a.schema().Index("title");
    size_t company = *ds.table_a.schema().Index("company");
    int contains = 0;
    for (size_t r = 0; r < ds.table_a.num_rows(); ++r) {
      std::string t(ds.table_a.value(r, title));
      if (t.find(ds.table_a.value(r, company)) != std::string::npos) {
        ++contains;
      }
    }
    EXPECT_GT(contains, static_cast<int>(ds.table_a.num_rows() * 9 / 10));
  }
}

TEST(ProductsGenTest, DutchBoilerplatePresent) {
  // The multilingual trap ("Prijzen" ↔ "Prices").
  EMDataset ds = std::move(GenerateCameras(ProductOptions{})).value();
  size_t title = *ds.table_a.schema().Index("title");
  bool dutch = false;
  for (const Table* t : {&ds.table_a, &ds.table_b}) {
    for (size_t r = 0; r < t->num_rows(); ++r) {
      if (std::string(t->value(r, title)).find("Prijzen") !=
          std::string::npos) {
        dutch = true;
      }
    }
  }
  EXPECT_TRUE(dutch);
}

}  // namespace
}  // namespace fairem
