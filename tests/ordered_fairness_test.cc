#include <gtest/gtest.h>

#include "src/core/audit.h"

namespace fairem {
namespace {

/// Asymmetric scenario: left records of g_x pair fine, but *right* records
/// of g_x are systematically missed — only the ordered (right) audit can
/// localize that.
struct OrderedScenario {
  Table a;
  Table b;
  std::vector<PairOutcome> outcomes;
};

OrderedScenario MakeScenario() {
  Schema schema = std::move(Schema::Make({"grp"})).value();
  Table a("a", schema);
  Table b("b", schema);
  for (int i = 0; i < 40; ++i) {
    std::string g = i % 2 == 0 ? "g_x" : "g_y";
    EXPECT_TRUE(a.AppendValues(i, {g}).ok());
    EXPECT_TRUE(b.AppendValues(i, {g}).ok());
  }
  OrderedScenario s{std::move(a), std::move(b), {}};
  for (size_t i = 0; i < 40; ++i) {
    bool right_is_x = i % 2 == 0;
    // True matches: found unless the *right* record is g_x.
    s.outcomes.push_back({i, i, /*pred=*/!right_is_x, /*true=*/true});
    // Cross non-matches between the two groups, correctly rejected.
    s.outcomes.push_back({i, (i + 1) % 40, false, false});
  }
  return s;
}

FairnessAuditor MakeAud(const OrderedScenario& s) {
  SensitiveAttr attr{"grp", SensitiveAttrKind::kBinary, '|'};
  return std::move(FairnessAuditor::Make(s.a, s.b, attr)).value();
}

TEST(OrderedFairnessTest, CountsRespectTheSide) {
  OrderedScenario s = MakeScenario();
  FairnessAuditor auditor = MakeAud(s);
  uint64_t gx = *auditor.membership().encoding().Encode({"g_x"});
  ConfusionCounts left =
      OrderedSingleGroupCounts(auditor.membership(), s.outcomes, gx,
                               PairSide::kLeft);
  ConfusionCounts right =
      OrderedSingleGroupCounts(auditor.membership(), s.outcomes, gx,
                               PairSide::kRight);
  // Matches with a g_x right record are all FNs.
  EXPECT_EQ(right.fn, 20);
  EXPECT_EQ(right.tp, 0);
  // Left-g_x matches pair with right-g_x records (i-i pairs), also missed.
  EXPECT_EQ(left.fn, 20);
  // But left counts include the cross non-matches with g_x on the left.
  EXPECT_GT(left.tn, 0);
}

TEST(OrderedFairnessTest, AuditFlagsTheRightSide) {
  OrderedScenario s = MakeScenario();
  FairnessAuditor auditor = MakeAud(s);
  AuditOptions options;
  options.measures = {FairnessMeasure::kTruePositiveRateParity};
  Result<AuditReport> right =
      auditor.AuditSingleOrdered(s.outcomes, PairSide::kRight, options);
  ASSERT_TRUE(right.ok());
  const AuditEntry* entry = right->Find(
      "g_x (right)", FairnessMeasure::kTruePositiveRateParity);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->defined);
  EXPECT_DOUBLE_EQ(entry->group_value, 0.0);
  EXPECT_TRUE(entry->unfair);
}

TEST(OrderedFairnessTest, OrderedPairwiseSeparatesDirections) {
  OrderedScenario s = MakeScenario();
  FairnessAuditor auditor = MakeAud(s);
  uint64_t gx = *auditor.membership().encoding().Encode({"g_x"});
  uint64_t gy = *auditor.membership().encoding().Encode({"g_y"});
  ConfusionCounts xy =
      OrderedPairGroupCounts(auditor.membership(), s.outcomes, gx, gy);
  ConfusionCounts yx =
      OrderedPairGroupCounts(auditor.membership(), s.outcomes, gy, gx);
  // The cross non-matches alternate direction: i even -> (g_x, g_y).
  EXPECT_GT(xy.tn, 0);
  EXPECT_GT(yx.tn, 0);
  // No true matches cross groups here.
  EXPECT_EQ(xy.tp + xy.fn, 0);
  AuditOptions options;
  options.measures = {FairnessMeasure::kTrueNegativeRateParity};
  Result<AuditReport> report =
      auditor.AuditPairwiseOrdered(s.outcomes, options);
  ASSERT_TRUE(report.ok());
  // 2 groups -> 4 ordered pairs.
  EXPECT_EQ(report->entries.size(), 4u);
  EXPECT_NE(report->Find("g_x -> g_y",
                         FairnessMeasure::kTrueNegativeRateParity),
            nullptr);
  EXPECT_NE(report->Find("g_y -> g_x",
                         FairnessMeasure::kTrueNegativeRateParity),
            nullptr);
}

}  // namespace
}  // namespace fairem
