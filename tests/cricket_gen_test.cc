// Generator-contract tests for Cricket: the negative-imbalance regime and
// the left-handed abbreviation mechanism of §5.3.2.

#include "src/datagen/cricket.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

EMDataset Cricket() {
  return std::move(GenerateCricket(CricketOptions{})).value();
}

TEST(CricketGenTest, NegativeImbalanceAndThreshold) {
  EMDataset ds = Cricket();
  EXPECT_GT(ds.PositiveRate(), 0.9);  // paper: 96.5% positive
  EXPECT_DOUBLE_EQ(ds.default_threshold, 0.9);
  EXPECT_EQ(ds.table_a.schema().num_attributes(), 10u);
}

TEST(CricketGenTest, LeftHandedProfilesAbbreviateMore) {
  EMDataset ds = Cricket();
  size_t name = *ds.table_a.schema().Index("name");
  size_t batting = *ds.table_a.schema().Index("battingStyle");
  int lh_abbrev = 0;
  int lh_total = 0;
  int rh_abbrev = 0;
  int rh_total = 0;
  for (size_t r = 0; r < ds.table_b.num_rows(); ++r) {
    if (ds.table_b.IsNull(r, name)) continue;
    bool lh = ds.table_a.value(r, batting) == "Left Handed";
    // Abbreviated names start with "X." initials.
    bool abbrev = ds.table_b.value(r, name).size() > 1 &&
                  ds.table_b.value(r, name)[1] == '.';
    (lh ? lh_total : rh_total)++;
    if (abbrev) (lh ? lh_abbrev : rh_abbrev)++;
  }
  ASSERT_GT(lh_total, 0);
  ASSERT_GT(rh_total, 0);
  double lh_rate = static_cast<double>(lh_abbrev) / lh_total;
  double rh_rate = static_cast<double>(rh_abbrev) / rh_total;
  EXPECT_GT(lh_rate, 0.5);
  EXPECT_LT(rh_rate, 0.3);
}

TEST(CricketGenTest, NegativesAreSameCountrySameRoleTeammates) {
  EMDataset ds = Cricket();
  size_t country = *ds.table_a.schema().Index("country");
  size_t role = *ds.table_a.schema().Index("role");
  for (const auto& p : ds.AllPairs()) {
    if (p.is_match) continue;
    EXPECT_EQ(ds.table_a.value(p.left, country),
              ds.table_b.value(p.right, country));
    EXPECT_EQ(ds.table_a.value(p.left, role),
              ds.table_b.value(p.right, role));
  }
}

TEST(CricketGenTest, StatsCorrelateWithRole) {
  // Same-role players cluster in the numeric attributes (the near-
  // duplicate profiles that force the 0.9 threshold).
  EMDataset ds = Cricket();
  size_t role = *ds.table_a.schema().Index("role");
  size_t runs = *ds.table_a.schema().Index("runs");
  double batsman_min = 1e18;
  double batsman_max = -1e18;
  for (size_t r = 0; r < ds.table_a.num_rows(); ++r) {
    if (ds.table_a.value(r, role) != "Batsman") continue;
    double v = std::stod(std::string(ds.table_a.value(r, runs)));
    batsman_min = std::min(batsman_min, v);
    batsman_max = std::max(batsman_max, v);
  }
  // Within-role spread is a small band, not the full range.
  EXPECT_LT(batsman_max - batsman_min, 1000.0);
}

}  // namespace
}  // namespace fairem
