#include "src/report/audit_render.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

AuditReport SampleReport() {
  AuditReport report;
  AuditEntry unfair;
  unfair.group_label = "cn, with comma";
  unfair.measure = FairnessMeasure::kTruePositiveRateParity;
  unfair.defined = true;
  unfair.group_value = 0.6;
  unfair.overall_value = 0.9;
  unfair.disparity = 0.3;
  unfair.signed_disparity = 0.3;
  unfair.group_pairs = 100;
  unfair.unfair = true;
  report.entries.push_back(unfair);

  AuditEntry fair = unfair;
  fair.group_label = "de";
  fair.disparity = 0.0;
  fair.unfair = false;
  report.entries.push_back(fair);

  AuditEntry undefined;
  undefined.group_label = "empty";
  undefined.measure = FairnessMeasure::kPositivePredictiveValueParity;
  undefined.defined = false;
  report.entries.push_back(undefined);
  return report;
}

TEST(AuditRenderTest, TableSkipsUndefinedByDefault) {
  std::string out = RenderAuditTable(SampleReport());
  EXPECT_NE(out.find("cn, with comma"), std::string::npos);
  EXPECT_NE(out.find("UNFAIR"), std::string::npos);
  EXPECT_EQ(out.find("empty"), std::string::npos);
}

TEST(AuditRenderTest, UndefinedIncludedOnRequest) {
  AuditRenderOptions options;
  options.defined_only = false;
  std::string out = RenderAuditTable(SampleReport(), options);
  EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(AuditRenderTest, UnfairOnlyFilter) {
  AuditRenderOptions options;
  options.unfair_only = true;
  std::string out = RenderAuditTable(SampleReport(), options);
  EXPECT_NE(out.find("cn, with comma"), std::string::npos);
  EXPECT_EQ(out.find("de"), std::string::npos);
}

TEST(AuditRenderTest, MarkdownHasHeaderSeparator) {
  std::string md = RenderAuditMarkdown(SampleReport());
  EXPECT_NE(md.find("| group |"), std::string::npos);
  EXPECT_NE(md.find("|---|"), std::string::npos);
}

TEST(AuditRenderTest, CsvQuotesEmbeddedCommas) {
  std::string csv = RenderAuditCsv(SampleReport());
  EXPECT_NE(csv.find("\"cn, with comma\""), std::string::npos);
  // Header + 2 defined rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("TPRP"), std::string::npos);
  EXPECT_NE(csv.find(",1\n"), std::string::npos);  // unfair flag column
}

TEST(AuditRenderTest, DigitsRespected) {
  AuditRenderOptions options;
  options.digits = 1;
  std::string out = RenderAuditTable(SampleReport(), options);
  EXPECT_NE(out.find("0.6"), std::string::npos);
  EXPECT_EQ(out.find("0.60"), std::string::npos);
}

}  // namespace
}  // namespace fairem
