#include <gtest/gtest.h>

#include "src/core/rules_of_thumb.h"
#include "src/datagen/benchmark_suite.h"
#include "src/ml/calibration.h"

namespace fairem {
namespace {

TEST(RulesOfThumbTest, StructuredDataRecommendsNonNeural) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpAcm, 0.4)).value();
  Recommendation rec = std::move(RecommendFor(ds)).value();
  EXPECT_EQ(rec.family, MatcherFamily::kNonNeural);
  // Usual class imbalance: TPRP + PPVP first.
  ASSERT_EQ(rec.measures.size(), 2u);
  EXPECT_EQ(rec.measures[0], FairnessMeasure::kTruePositiveRateParity);
  EXPECT_EQ(rec.measures[1],
            FairnessMeasure::kPositivePredictiveValueParity);
  EXPECT_FALSE(rec.advice.empty());
}

TEST(RulesOfThumbTest, TextualDataRecommendsNeural) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kCameras, 0.4)).value();
  DatasetProfile profile = std::move(ProfileDataset(ds)).value();
  EXPECT_EQ(profile.kind, DatasetProfile::Kind::kTextualOrDirty);
  Recommendation rec = RecommendFor(profile);
  EXPECT_EQ(rec.family, MatcherFamily::kNeural);
}

TEST(RulesOfThumbTest, DirtyDataRecommendsNeural) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpScholar, 0.5)).value();
  DatasetProfile profile = std::move(ProfileDataset(ds)).value();
  EXPECT_GT(profile.null_rate, 0.05);
  EXPECT_EQ(profile.kind, DatasetProfile::Kind::kTextualOrDirty);
}

TEST(RulesOfThumbTest, MatchHeavyGroundTruthSwitchesMeasures) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kCricket, 0.5)).value();
  Recommendation rec = std::move(RecommendFor(ds)).value();
  // Cricket is 96.5% positive: NPVP + FPRP first (§5.3.2).
  ASSERT_EQ(rec.measures.size(), 2u);
  EXPECT_EQ(rec.measures[0],
            FairnessMeasure::kNegativePredictiveValueParity);
  EXPECT_EQ(rec.measures[1], FairnessMeasure::kFalsePositiveRateParity);
}

TEST(PlattCalibratorTest, CalibratesShiftedScores) {
  // A matcher whose boundary sits at 0.8: raw scores threshold badly at
  // 0.5 but calibrate back to it.
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 50; ++i) {
    scores.push_back(0.85 + 0.001 * i);  // positives just above 0.8
    labels.push_back(1);
    scores.push_back(0.70 + 0.001 * i);  // negatives just below
    labels.push_back(0);
  }
  PlattCalibrator calibrator;
  ASSERT_TRUE(calibrator.Fit(scores, labels).ok());
  EXPECT_GT(*calibrator.Calibrate(0.9), 0.5);
  EXPECT_LT(*calibrator.Calibrate(0.65), 0.5);
  // Monotone in the raw score.
  EXPECT_GT(*calibrator.Calibrate(0.95), *calibrator.Calibrate(0.75));
}

TEST(PlattCalibratorTest, OutputsAreProbabilities) {
  std::vector<double> scores = {0.1, 0.2, 0.8, 0.9, 0.5, 0.6};
  std::vector<int> labels = {0, 0, 1, 1, 0, 1};
  PlattCalibrator calibrator;
  ASSERT_TRUE(calibrator.Fit(scores, labels).ok());
  std::vector<double> calibrated =
      std::move(calibrator.CalibrateAll(scores)).value();
  for (double p : calibrated) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(PlattCalibratorTest, RejectsDegenerateData) {
  PlattCalibrator calibrator;
  EXPECT_FALSE(calibrator.Fit({}, {}).ok());
  EXPECT_FALSE(calibrator.Fit({0.5}, {1}).ok());          // one class
  EXPECT_FALSE(calibrator.Fit({0.5, 0.6}, {1, 2}).ok());  // bad label
  EXPECT_FALSE(calibrator.Calibrate(0.5).ok());           // not fitted
}

}  // namespace
}  // namespace fairem
