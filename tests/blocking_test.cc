#include "src/block/blockers.h"

#include <gtest/gtest.h>

#include "src/util/string_util.h"

namespace fairem {
namespace {

struct Tables {
  Table a;
  Table b;
};

Tables NameTables() {
  Schema schema = std::move(Schema::Make({"name", "city"})).value();
  Table a("a", schema);
  Table b("b", schema);
  EXPECT_TRUE(a.AppendValues(0, {"alice brown", "Rochester"}).ok());
  EXPECT_TRUE(a.AppendValues(1, {"bob smith", "Chicago"}).ok());
  EXPECT_TRUE(a.AppendValues(2, {"carla jones", "Rochester"}).ok());
  EXPECT_TRUE(b.AppendValues(0, {"alice browne", "Rochester"}).ok());
  EXPECT_TRUE(b.AppendValues(1, {"robert smith", "chicago"}).ok());
  EXPECT_TRUE(b.AppendValues(2, {"dora king", "Boston"}).ok());
  return {std::move(a), std::move(b)};
}

TEST(CartesianBlockerTest, EmitsAllPairs) {
  Tables t = NameTables();
  CartesianBlocker blocker;
  Result<std::vector<CandidatePair>> pairs = blocker.Block(t.a, t.b);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 9u);
}

TEST(AttrEquivalenceBlockerTest, CaseInsensitiveKeyMatch) {
  Tables t = NameTables();
  AttrEquivalenceBlocker blocker("city");
  Result<std::vector<CandidatePair>> pairs = blocker.Block(t.a, t.b);
  ASSERT_TRUE(pairs.ok());
  // Rochester x Rochester (2x1) + Chicago x chicago (1x1).
  EXPECT_EQ(pairs->size(), 3u);
  for (const auto& p : *pairs) {
    EXPECT_EQ(ToLowerAscii(std::string(t.a.value(p.left, 1))),
              ToLowerAscii(std::string(t.b.value(p.right, 1))));
  }
}

TEST(AttrEquivalenceBlockerTest, NullsNeverMatch) {
  Schema schema = std::move(Schema::Make({"k"})).value();
  Table a("a", schema);
  Table b("b", schema);
  Record r;
  r.entity_id = 0;
  r.cells = {std::nullopt};
  ASSERT_TRUE(a.Append(std::move(r)).ok());
  Record r2;
  r2.entity_id = 1;
  r2.cells = {std::nullopt};
  ASSERT_TRUE(b.Append(std::move(r2)).ok());
  AttrEquivalenceBlocker blocker("k");
  Result<std::vector<CandidatePair>> pairs = blocker.Block(a, b);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

TEST(AttrEquivalenceBlockerTest, MissingAttrIsError) {
  Tables t = NameTables();
  AttrEquivalenceBlocker blocker("nope");
  EXPECT_FALSE(blocker.Block(t.a, t.b).ok());
}

TEST(OverlapBlockerTest, FindsSharedTokens) {
  Tables t = NameTables();
  OverlapBlocker blocker("name", /*min_overlap=*/1, /*use_words=*/true);
  Result<std::vector<CandidatePair>> pairs = blocker.Block(t.a, t.b);
  ASSERT_TRUE(pairs.ok());
  // alice~alice (shared "alice"), smith pairs.
  bool found_alice = false;
  bool found_smith = false;
  for (const auto& p : *pairs) {
    if (p.left == 0 && p.right == 0) found_alice = true;
    if (p.left == 1 && p.right == 1) found_smith = true;
  }
  EXPECT_TRUE(found_alice);
  EXPECT_TRUE(found_smith);
}

TEST(OverlapBlockerTest, QgramModeCatchesTypos) {
  Tables t = NameTables();
  OverlapBlocker blocker("name", /*min_overlap=*/6, /*use_words=*/false);
  Result<std::vector<CandidatePair>> pairs = blocker.Block(t.a, t.b);
  ASSERT_TRUE(pairs.ok());
  bool found_alice = false;
  for (const auto& p : *pairs) {
    if (p.left == 0 && p.right == 0) found_alice = true;
  }
  EXPECT_TRUE(found_alice);  // "alice brown" vs "alice browne"
}

TEST(OverlapBlockerTest, InvalidOverlapIsError) {
  Tables t = NameTables();
  OverlapBlocker blocker("name", 0);
  EXPECT_FALSE(blocker.Block(t.a, t.b).ok());
}

TEST(SortedNeighborhoodBlockerTest, WindowCatchesNearKeys) {
  Tables t = NameTables();
  SortedNeighborhoodBlocker blocker("name", /*window=*/3);
  Result<std::vector<CandidatePair>> pairs = blocker.Block(t.a, t.b);
  ASSERT_TRUE(pairs.ok());
  // "alice brown" and "alice browne" sort adjacently.
  bool found = false;
  for (const auto& p : *pairs) {
    if (p.left == 0 && p.right == 0) found = true;
  }
  EXPECT_TRUE(found);
  SortedNeighborhoodBlocker bad("name", 1);
  EXPECT_FALSE(bad.Block(t.a, t.b).ok());
}

TEST(BlockingStatsTest, ReductionAndCompleteness) {
  std::vector<CandidatePair> candidates = {{0, 0}, {1, 1}};
  std::vector<LabeledPair> labeled = {
      {0, 0, true}, {1, 1, true}, {2, 2, true}, {0, 1, false}};
  BlockingStats stats = EvaluateBlocking(candidates, labeled, 3, 3);
  EXPECT_EQ(stats.num_candidates, 2u);
  EXPECT_NEAR(stats.reduction_ratio, 1.0 - 2.0 / 9.0, 1e-9);
  EXPECT_NEAR(stats.pair_completeness, 2.0 / 3.0, 1e-9);
}

TEST(BlockingStatsTest, NoTrueMatchesGivesFullCompleteness) {
  BlockingStats stats = EvaluateBlocking({}, {{0, 0, false}}, 2, 2);
  EXPECT_DOUBLE_EQ(stats.pair_completeness, 1.0);
}

}  // namespace
}  // namespace fairem
