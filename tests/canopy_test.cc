#include <gtest/gtest.h>

#include "src/block/blockers.h"

namespace fairem {
namespace {

struct Tables {
  Table a;
  Table b;
};

Tables ProductTables() {
  Schema schema = std::move(Schema::Make({"title"})).value();
  Table a("a", schema);
  Table b("b", schema);
  EXPECT_TRUE(a.AppendValues(0, {"sony rx100 digital camera"}).ok());
  EXPECT_TRUE(a.AppendValues(1, {"canon eos 70d body"}).ok());
  EXPECT_TRUE(a.AppendValues(2, {"nikon d3300 bundle kit"}).ok());
  EXPECT_TRUE(b.AppendValues(0, {"sony rx100 camera deal"}).ok());
  EXPECT_TRUE(b.AppendValues(1, {"canon eos 70d kit"}).ok());
  EXPECT_TRUE(b.AppendValues(2, {"totally unrelated record"}).ok());
  return {std::move(a), std::move(b)};
}

TEST(CanopyBlockerTest, GroupsTokenOverlappingRecords) {
  Tables t = ProductTables();
  CanopyBlocker blocker("title", /*t1=*/0.8, /*t2=*/0.4);
  Result<std::vector<CandidatePair>> pairs = blocker.Block(t.a, t.b);
  ASSERT_TRUE(pairs.ok());
  bool sony = false;
  bool canon = false;
  bool unrelated = false;
  for (const auto& p : *pairs) {
    if (p.left == 0 && p.right == 0) sony = true;
    if (p.left == 1 && p.right == 1) canon = true;
    if (p.right == 2) unrelated = true;
  }
  EXPECT_TRUE(sony);
  EXPECT_TRUE(canon);
  EXPECT_FALSE(unrelated);
}

TEST(CanopyBlockerTest, LooseThresholdApproachesCartesian) {
  Tables t = ProductTables();
  CanopyBlocker blocker("title", /*t1=*/1.0, /*t2=*/1.0);
  Result<std::vector<CandidatePair>> pairs = blocker.Block(t.a, t.b);
  ASSERT_TRUE(pairs.ok());
  // t1 = 1 puts everything in the first canopy.
  EXPECT_EQ(pairs->size(), 9u);
}

TEST(CanopyBlockerTest, ValidatesThresholds) {
  Tables t = ProductTables();
  CanopyBlocker blocker("title", /*t1=*/0.3, /*t2=*/0.6);
  EXPECT_FALSE(blocker.Block(t.a, t.b).ok());
  CanopyBlocker missing("nope", 0.8, 0.4);
  EXPECT_FALSE(missing.Block(t.a, t.b).ok());
}

TEST(CanopyBlockerTest, HighCompletenessOnBenchmarkShape) {
  // A canopy over q-gram-ish token space must retain the true matches of a
  // name-keyed task.
  Schema schema = std::move(Schema::Make({"name"})).value();
  Table a("a", schema);
  Table b("b", schema);
  const char* names[] = {"alice marie brown", "robert james smith",
                         "carla jones lee", "dan von kim"};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(a.AppendValues(i, {names[i]}).ok());
    // The b-side shares two of three tokens.
    std::string noisy = std::string(names[i]);
    noisy = noisy.substr(0, noisy.rfind(' ')) + " jr";
    ASSERT_TRUE(b.AppendValues(i, {noisy}).ok());
  }
  std::vector<LabeledPair> labeled;
  for (size_t i = 0; i < 4; ++i) labeled.push_back({i, i, true});
  CanopyBlocker blocker("name", 0.9, 0.5);
  Result<std::vector<CandidatePair>> pairs = blocker.Block(a, b);
  ASSERT_TRUE(pairs.ok());
  BlockingStats stats = EvaluateBlocking(*pairs, labeled, 4, 4);
  EXPECT_EQ(stats.pair_completeness, 1.0);
}

}  // namespace
}  // namespace fairem
