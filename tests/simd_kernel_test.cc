// Differential fuzz of the bit-parallel / SIMD similarity kernels against
// their scalar references (DESIGN.md §17). The vectorized tiers must be
// bit-for-bit equal to the seed kernels on every input — these tests force
// each dispatch tier the host can run and compare against naive
// full-matrix references and the retained scalar paths.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/text/edit_distance.h"
#include "src/text/simd.h"
#include "src/text/tfidf.h"
#include "src/text/tokenize.h"
#include "src/util/rng.h"

namespace fairem {
namespace {

/// Every tier this host can actually execute, always including the scalar
/// seed path. The forced level is process-wide; tests restore detection in
/// a scope guard so a failing assertion cannot leak the override.
std::vector<SimdLevel> RunnableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar, SimdLevel::kPortable};
  const int detected = static_cast<int>(DetectedSimdLevel());
  for (SimdLevel v : {SimdLevel::kSse42, SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (static_cast<int>(v) <= detected) levels.push_back(v);
  }
  return levels;
}

struct LevelGuard {
  explicit LevelGuard(SimdLevel level) {
    internal::ForceSimdLevelForTest(level);
  }
  ~LevelGuard() { internal::ClearForcedSimdLevelForTest(); }
};

/// Naive full-matrix Levenshtein — deliberately the dumbest correct
/// implementation, sharing no code with any production kernel.
int NaiveLevenshtein(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  std::vector<std::vector<int>> d(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = 0; i <= n; ++i) d[i][0] = static_cast<int>(i);
  for (size_t j = 0; j <= m; ++j) d[0][j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + cost});
    }
  }
  return d[n][m];
}

/// Naive restricted Damerau-Levenshtein (adjacent transposition = 1 edit).
int NaiveDamerau(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  std::vector<std::vector<int>> d(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = 0; i <= n; ++i) d[i][0] = static_cast<int>(i);
  for (size_t j = 0; j <= m; ++j) d[0][j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  return d[n][m];
}

/// Random byte string. `utf8` mixes in multi-byte code points (the kernels
/// operate on bytes; UTF-8 must simply pass through unchanged).
std::string RandomString(Rng* rng, size_t len, bool utf8) {
  std::string s;
  s.reserve(len);
  while (s.size() < len) {
    if (utf8 && rng->NextBool(0.2)) {
      switch (rng->NextBounded(3)) {
        case 0:
          s += "\xC3\xA9";  // é
          break;
        case 1:
          s += "\xE4\xB8\xAD";  // 中
          break;
        default:
          s += "\xF0\x9F\x98\x80";  // 😀
          break;
      }
    } else {
      // Small alphabet, so matches (the interesting DP transitions) are
      // frequent.
      s.push_back(static_cast<char>('a' + rng->NextBounded(6)));
    }
  }
  return s;
}

/// A deliberately adversarial length mix: empties, the 63/64/65 single-word
/// boundary, the 127/128/129 two-block boundary, and long tails.
size_t FuzzLength(Rng* rng) {
  switch (rng->NextBounded(8)) {
    case 0:
      return 0;
    case 1:
      return rng->NextBounded(4);
    case 2:
      return 62 + rng->NextBounded(5);  // 62..66
    case 3:
      return 126 + rng->NextBounded(5);  // 126..130
    case 4:
      return 150 + rng->NextBounded(100);
    default:
      return 1 + rng->NextBounded(40);
  }
}

TEST(SimdKernelTest, LevenshteinMatchesNaiveAtEveryLevel) {
  Rng rng(20260809);
  const std::vector<SimdLevel> levels = RunnableLevels();
  for (int iter = 0; iter < 400; ++iter) {
    const bool utf8 = rng.NextBool(0.3);
    std::string a = RandomString(&rng, FuzzLength(&rng), utf8);
    std::string b;
    if (rng.NextBool(0.3)) {
      // Near-duplicate: mutate a few positions so common affixes survive.
      b = a;
      for (int e = 0; e < 3 && !b.empty(); ++e) {
        b[rng.NextBounded(b.size())] =
            static_cast<char>('a' + rng.NextBounded(6));
      }
    } else {
      b = RandomString(&rng, FuzzLength(&rng), utf8);
    }
    const int expected = NaiveLevenshtein(a, b);
    ASSERT_EQ(expected, internal::LevenshteinDistanceScalar(a, b))
        << "scalar reference disagrees with naive on \"" << a << "\" vs \""
        << b << "\"";
    for (SimdLevel level : levels) {
      LevelGuard guard(level);
      EXPECT_EQ(expected, LevenshteinDistance(a, b))
          << SimdLevelName(level) << " on \"" << a << "\" (" << a.size()
          << "b) vs \"" << b << "\" (" << b.size() << "b)";
    }
  }
}

TEST(SimdKernelTest, DamerauMatchesNaiveAtEveryLevel) {
  Rng rng(77001);
  for (int iter = 0; iter < 300; ++iter) {
    std::string a = RandomString(&rng, rng.NextBounded(30), false);
    std::string b = a;
    // Transposition-heavy partner: swap adjacent characters, then a few
    // substitutions.
    for (int e = 0; e + 1 < static_cast<int>(b.size()) && e < 6; e += 2) {
      std::swap(b[e], b[e + 1]);
    }
    if (!b.empty() && rng.NextBool(0.5)) {
      b[rng.NextBounded(b.size())] = 'z';
    }
    const int expected = NaiveDamerau(a, b);
    for (SimdLevel level : RunnableLevels()) {
      LevelGuard guard(level);
      EXPECT_EQ(expected, DamerauLevenshteinDistance(a, b))
          << SimdLevelName(level) << " on \"" << a << "\" vs \"" << b << "\"";
    }
  }
}

TEST(SimdKernelTest, BoundedLevenshteinClampsExactly) {
  Rng rng(424242);
  for (int iter = 0; iter < 200; ++iter) {
    std::string a = RandomString(&rng, rng.NextBounded(40), false);
    std::string b = RandomString(&rng, rng.NextBounded(40), false);
    const int exact = NaiveLevenshtein(a, b);
    for (int bound : {0, 1, 2, 5, 100}) {
      const int expected = std::min(exact, bound + 1);
      for (SimdLevel level : RunnableLevels()) {
        LevelGuard guard(level);
        EXPECT_EQ(expected, LevenshteinDistanceBounded(a, b, bound))
            << SimdLevelName(level) << " bound=" << bound << " on \"" << a
            << "\" vs \"" << b << "\"";
        EXPECT_EQ(exact <= bound, LevenshteinWithin(a, b, bound));
      }
    }
  }
  EXPECT_EQ(1, LevenshteinDistanceBounded("abc", "xbc", -3))
      << "negative bound must behave as bound 0";
}

TEST(SimdKernelTest, LevenshteinSimilarityIdentityAndEdges) {
  for (SimdLevel level : RunnableLevels()) {
    LevelGuard guard(level);
    EXPECT_EQ(1.0, LevenshteinSimilarity("", ""));
    EXPECT_EQ(1.0, LevenshteinSimilarity("same", "same"));
    EXPECT_EQ(0.0, LevenshteinSimilarity("", "abcd"));
    EXPECT_EQ(0.75, LevenshteinSimilarity("abcd", "abcx"));
  }
}

/// Sorted-unique id set with controllable density/skew.
std::vector<uint32_t> RandomIdSet(Rng* rng, size_t max_size,
                                  uint32_t universe) {
  std::vector<uint32_t> ids;
  const size_t target = rng->NextBounded(max_size + 1);
  for (size_t i = 0; i < target; ++i) {
    ids.push_back(static_cast<uint32_t>(rng->NextBounded(universe)));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

TEST(SimdKernelTest, IntersectionMatchesScalarAtEveryLevel) {
  Rng rng(909090);
  const std::vector<SimdLevel> levels = RunnableLevels();
  for (int iter = 0; iter < 500; ++iter) {
    // Mix balanced, skewed (gallop territory), tiny, and disjoint shapes.
    const uint32_t universe = 1 + static_cast<uint32_t>(rng.NextBounded(500));
    std::vector<uint32_t> a = RandomIdSet(&rng, 40, universe);
    std::vector<uint32_t> b =
        rng.NextBool(0.3) ? RandomIdSet(&rng, 400, universe)
                          : RandomIdSet(&rng, 40, universe);
    if (rng.NextBool(0.1)) {
      // Disjoint by construction: shift b's ids past a's universe.
      for (uint32_t& id : b) id += universe;
    }
    const size_t expected = internal::IntersectSortedU32CountScalar(
        a.data(), a.size(), b.data(), b.size());
    for (SimdLevel level : levels) {
      LevelGuard guard(level);
      EXPECT_EQ(expected, IntersectSortedU32Count(a.data(), a.size(),
                                                  b.data(), b.size()))
          << SimdLevelName(level) << " |a|=" << a.size()
          << " |b|=" << b.size();
      // The dispatcher swaps sides internally; symmetry must hold too.
      EXPECT_EQ(expected, IntersectSortedU32Count(b.data(), b.size(),
                                                  a.data(), a.size()));
    }
  }
}

TEST(SimdKernelTest, BitsetIntersectMatchesPopcountLoop) {
  Rng rng(31337);
  for (int iter = 0; iter < 200; ++iter) {
    const size_t words_a = 1 + rng.NextBounded(16);
    const size_t words_b = 1 + rng.NextBounded(16);
    std::vector<uint64_t> a(words_a), b(words_b);
    for (auto& w : a) w = rng.Next();
    for (auto& w : b) w = rng.Next();
    // Callers intersect over min(words): the shorter side's universe.
    const size_t words = std::min(words_a, words_b);
    size_t expected = 0;
    for (size_t i = 0; i < words; ++i) {
      expected += static_cast<size_t>(std::popcount(a[i] & b[i]));
    }
    EXPECT_EQ(expected, BitsetIntersectCount(a.data(), b.data(), words));
  }
  EXPECT_EQ(0u, BitsetIntersectCount(nullptr, nullptr, 0));
}

/// SymmetricMongeElkan reuses one inner-similarity matrix for both
/// directions, which is only exact because the Jaro inner is symmetric.
/// This pins that assumption.
TEST(SimdKernelTest, JaroIsSymmetric) {
  Rng rng(5150);
  for (int iter = 0; iter < 300; ++iter) {
    std::string a = RandomString(&rng, rng.NextBounded(20), false);
    std::string b = RandomString(&rng, rng.NextBounded(20), false);
    EXPECT_EQ(JaroSimilarity(a, b), JaroSimilarity(b, a))
        << "\"" << a << "\" vs \"" << b << "\"";
  }
  EXPECT_EQ(JaroSimilarity("abab", "baba"), JaroSimilarity("baba", "abab"));
}

TEST(SimdKernelTest, TfIdfSortedAgreesWithLegacyTransform) {
  std::vector<std::vector<std::string>> corpus = {
      {"deep", "entity", "matching", "survey"},
      {"fairness", "entity", "matching"},
      {"query", "processing", "survey"},
      {"deep", "learning", "for", "matching"},
  };
  TfIdfVectorizer v;
  v.Fit(corpus);
  for (const auto& da : corpus) {
    SortedSparseVector sa = v.TransformSorted(da);
    ASSERT_TRUE(std::is_sorted(sa.ids.begin(), sa.ids.end()));
    for (const auto& db : corpus) {
      const double legacy = TfIdfVectorizer::Cosine(v.Transform(da),
                                                    v.Transform(db));
      const double merged =
          TfIdfVectorizer::CosineSorted(sa, v.TransformSorted(db));
      // The two layouts accumulate in different orders; equality is only
      // up to float rounding (tfidf is not a dispatch-gated grid measure).
      EXPECT_NEAR(legacy, merged, 1e-12);
      EXPECT_EQ(merged, v.Similarity(da, db));
    }
  }
  EXPECT_EQ(0.0, v.Similarity({"outofvocab"}, corpus[0]));
  EXPECT_EQ(0.0, v.Similarity({}, corpus[0]));
}

TEST(SimdKernelTest, TelemetryCountersAdvance) {
  FlushSimdTelemetry();
  Counter* kernel_calls =
      MetricsRegistry::Global().GetCounter("fairem.simd.kernel_calls");
  Counter* scratch_reuses =
      MetricsRegistry::Global().GetCounter("fairem.simd.scratch_reuses");
  const uint64_t calls_before = kernel_calls->value();
  const uint64_t reuses_before = scratch_reuses->value();
  {
    // Force a vector-capable tier so the counted paths run even when the
    // suite executes under FAIREM_SIMD=off.
    LevelGuard guard(SimdLevel::kPortable);
    std::string a(80, 'a'), b(80, 'b');
    a[40] = 'x';
    for (int i = 0; i < 200; ++i) {
      (void)LevenshteinDistance(a, b);
      (void)JaroSimilarity("jonathan smith", "johnathan smyth");
    }
  }
  FlushSimdTelemetry();
  EXPECT_GT(kernel_calls->value(), calls_before);
  EXPECT_GT(scratch_reuses->value(), reuses_before)
      << "repeated kernel calls on one thread must reuse the scratch arena";
  // The flush also pins the dispatch gauge to whatever is active now
  // (detection restored by the guard above).
  FlushSimdTelemetry();
  EXPECT_EQ(static_cast<double>(static_cast<int>(ActiveSimdLevel())),
            MetricsRegistry::Global()
                .GetGauge("fairem.simd.dispatch_level")
                ->value());
}

TEST(SimdKernelTest, LevelNamesAreStable) {
  EXPECT_STREQ("scalar", SimdLevelName(SimdLevel::kScalar));
  EXPECT_STREQ("portable", SimdLevelName(SimdLevel::kPortable));
  EXPECT_STREQ("sse4.2", SimdLevelName(SimdLevel::kSse42));
  EXPECT_STREQ("avx2", SimdLevelName(SimdLevel::kAvx2));
  EXPECT_STREQ("neon", SimdLevelName(SimdLevel::kNeon));
}

}  // namespace
}  // namespace fairem
