#include "src/matcher/ensemble_matcher.h"

#include <gtest/gtest.h>

#include "src/datagen/social.h"
#include "src/harness/experiment.h"
#include "src/matcher/ml_matchers.h"

namespace fairem {
namespace {

/// A contrived pool: one member perfect for g0 and useless for g1, one the
/// reverse. The ensemble must route each group to its specialist.
class GroupSpecialist : public Matcher {
 public:
  GroupSpecialist(std::string good_group, std::string name)
      : good_group_(std::move(good_group)), name_(std::move(name)) {}
  std::string name() const override { return name_; }
  MatcherFamily family() const override { return MatcherFamily::kNonNeural; }
  Status Fit(const EMDataset& dataset, Rng*) override {
    grp_col_ = std::move(dataset.table_a.schema().Index("grp")).value();
    return Status::OK();
  }
  Result<double> ScorePair(const EMDataset& dataset, size_t left,
                           size_t right) const override {
    if (dataset.table_a.value(left, grp_col_) != good_group_) {
      return 0.5;  // coin flip outside the specialty -> useless
    }
    // Perfect inside the specialty: matches share entity ids here.
    return dataset.table_a.row(left).entity_id ==
                   dataset.table_b.row(right).entity_id
               ? 0.9
               : 0.1;
  }

 private:
  std::string good_group_;
  std::string name_;
  size_t grp_col_ = 0;
};

EMDataset TwoGroupTask() {
  Schema schema = std::move(Schema::Make({"name", "grp"})).value();
  EMDataset ds;
  ds.name = "two_group";
  ds.table_a = Table("a", schema);
  ds.table_b = Table("b", schema);
  for (int i = 0; i < 40; ++i) {
    std::string g = i < 20 ? "g0" : "g1";
    EXPECT_TRUE(
        ds.table_a.AppendValues(i, {"n" + std::to_string(i), g}).ok());
    EXPECT_TRUE(
        ds.table_b.AppendValues(i, {"n" + std::to_string(i), g}).ok());
  }
  ds.matching_attrs = {"name"};
  ds.sensitive_attr = "grp";
  std::vector<LabeledPair> pairs;
  for (size_t i = 0; i < 40; ++i) {
    pairs.push_back({i, i, true});
    pairs.push_back({i, (i + 2) % 40, false});
  }
  ds.train = pairs;
  ds.valid = pairs;
  ds.test = pairs;
  return ds;
}

TEST(EnsembleTest, RoutesEachGroupToItsSpecialist) {
  EMDataset ds = TwoGroupTask();
  std::vector<std::unique_ptr<Matcher>> pool;
  pool.push_back(std::make_unique<GroupSpecialist>("g0", "OnlyG0"));
  pool.push_back(std::make_unique<GroupSpecialist>("g1", "OnlyG1"));
  PerGroupEnsembleMatcher ensemble(std::move(pool));
  Rng rng(5);
  ASSERT_TRUE(ensemble.Fit(ds, &rng).ok());
  EXPECT_EQ(ensemble.selection().at("g0"), "OnlyG0");
  EXPECT_EQ(ensemble.selection().at("g1"), "OnlyG1");
  // The routed ensemble is perfect where each member alone is not.
  Result<std::vector<double>> scores = ensemble.PredictScores(ds, ds.test);
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < ds.test.size(); ++i) {
    EXPECT_EQ((*scores)[i] >= 0.5, ds.test[i].is_match) << i;
  }
}

TEST(EnsembleTest, EmptyPoolRejected) {
  PerGroupEnsembleMatcher ensemble({});
  EMDataset ds = TwoGroupTask();
  Rng rng(1);
  EXPECT_FALSE(ensemble.Fit(ds, &rng).ok());
}

TEST(EnsembleTest, ScoreBeforeFitFails) {
  std::vector<std::unique_ptr<Matcher>> pool;
  pool.push_back(MakeDTMatcher());
  PerGroupEnsembleMatcher ensemble(std::move(pool));
  EMDataset ds = TwoGroupTask();
  EXPECT_FALSE(ensemble.ScorePair(ds, 0, 0).ok());
}

TEST(EnsembleTest, ShrinksTheFacultyMatchGap) {
  // The paper's lesson (vi) end-to-end: the default pool on FacultyMatch
  // must match the best single member per group.
  FacultyMatchOptions options;
  options.num_cn = 120;
  options.num_de = 90;
  EMDataset ds = std::move(GenerateFacultyMatch(options)).value();
  std::unique_ptr<PerGroupEnsembleMatcher> ensemble =
      PerGroupEnsembleMatcher::WithDefaultPool();
  Rng rng(7);
  ASSERT_TRUE(ensemble->Fit(ds, &rng).ok());
  Result<std::vector<double>> scores = ensemble->PredictScores(ds, ds.test);
  ASSERT_TRUE(scores.ok());
  Result<std::vector<PairOutcome>> outcomes =
      MakeOutcomes(ds.test, *scores, ds.default_threshold);
  ASSERT_TRUE(outcomes.ok());
  double f1 = F1Score(OverallCounts(*outcomes)).value_or(0.0);
  // The routed ensemble should at least match a decent non-neural member.
  EXPECT_GT(f1, 0.85);
  EXPECT_EQ(ensemble->selection().size(), 2u);
}

}  // namespace
}  // namespace fairem
