#include "src/core/hierarchy.h"

#include <gtest/gtest.h>

#include <set>

namespace fairem {
namespace {

std::vector<AttrDomain> GenderGenre() {
  // The Figure 1 setting: binary gender x setwise genre {Pop, Rock, Jazz}.
  AttrDomain gender;
  gender.attr = {"gender", SensitiveAttrKind::kBinary, '|'};
  gender.domain = {"Female", "Male"};
  AttrDomain genre;
  genre.attr = {"genre", SensitiveAttrKind::kSetwise, '|'};
  genre.domain = {"Pop", "Rock", "Jazz"};
  return {gender, genre};
}

TEST(HierarchyTest, LevelOneIsAllGroups) {
  Result<std::vector<Subgroup>> level = EnumerateLevel(GenderGenre(), 1);
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(level->size(), 5u);
}

TEST(HierarchyTest, LevelTwoMatchesFigure1) {
  // Level 2 of Figure 1: gender x genre combos (2 x 3 = 6) plus genre
  // 2-combinations (3), but never Female & Male.
  Result<std::vector<Subgroup>> level = EnumerateLevel(GenderGenre(), 2);
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(level->size(), 9u);
  for (const auto& sg : *level) {
    std::set<std::string> groups(sg.groups.begin(), sg.groups.end());
    EXPECT_FALSE(groups.count("Female") && groups.count("Male"))
        << sg.Label();
  }
}

TEST(HierarchyTest, LevelThreeCombinesSetwisePairsWithGender) {
  // Level 3: one gender + 2 genres (2 * 3 = 6) or all 3 genres (1).
  Result<std::vector<Subgroup>> level = EnumerateLevel(GenderGenre(), 3);
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(level->size(), 7u);
}

TEST(HierarchyTest, MaxLevelAndBeyond) {
  std::vector<AttrDomain> attrs = GenderGenre();
  EXPECT_EQ(MaxLevel(attrs), 4);  // 1 gender + 3 genres
  Result<std::vector<Subgroup>> level4 = EnumerateLevel(attrs, 4);
  ASSERT_TRUE(level4.ok());
  EXPECT_EQ(level4->size(), 2u);  // each gender with all genres
  Result<std::vector<Subgroup>> level5 = EnumerateLevel(attrs, 5);
  ASSERT_TRUE(level5.ok());
  EXPECT_TRUE(level5->empty());
}

TEST(HierarchyTest, InvalidLevelIsError) {
  EXPECT_FALSE(EnumerateLevel(GenderGenre(), 0).ok());
}

TEST(HierarchyTest, ExclusiveOnlyAttrsBehaveLikeCartesian) {
  AttrDomain a;
  a.attr = {"a", SensitiveAttrKind::kMultiValued, '|'};
  a.domain = {"x", "y", "z"};
  AttrDomain b;
  b.attr = {"b", SensitiveAttrKind::kBinary, '|'};
  b.domain = {"0", "1"};
  Result<std::vector<Subgroup>> level2 = EnumerateLevel({a, b}, 2);
  ASSERT_TRUE(level2.ok());
  EXPECT_EQ(level2->size(), 6u);  // 3 x 2, no within-attribute pairs
}

TEST(SubgroupTest, LabelJoinsGroups) {
  Subgroup sg;
  sg.groups = {"Female", "Pop"};
  EXPECT_EQ(sg.Label(), "Female & Pop");
  Subgroup empty;
  EXPECT_EQ(empty.Label(), "");
}

}  // namespace
}  // namespace fairem
