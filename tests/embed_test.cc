#include <gtest/gtest.h>

#include "src/embed/sentence_encoder.h"
#include "src/embed/subword_embedding.h"

namespace fairem {
namespace {

TEST(SubwordEmbeddingTest, DeterministicAcrossInstances) {
  SubwordEmbedding a;
  SubwordEmbedding b;
  std::vector<float> va = a.Embed("huang");
  std::vector<float> vb = b.Embed("huang");
  ASSERT_EQ(va.size(), vb.size());
  for (size_t i = 0; i < va.size(); ++i) EXPECT_FLOAT_EQ(va[i], vb[i]);
}

TEST(SubwordEmbeddingTest, UnitNormAndCaseInsensitive) {
  SubwordEmbedding e;
  std::vector<float> v = e.Embed("Brown");
  double norm_sq = 0.0;
  for (float x : v) norm_sq += static_cast<double>(x) * x;
  EXPECT_NEAR(norm_sq, 1.0, 1e-5);
  EXPECT_NEAR(e.TokenSimilarity("Brown", "brown"), 1.0, 1e-6);
}

TEST(SubwordEmbeddingTest, EmptyTokenIsZeroVector) {
  SubwordEmbedding e;
  std::vector<float> v = e.Embed("");
  for (float x : v) EXPECT_FLOAT_EQ(x, 0.0f);
  EXPECT_DOUBLE_EQ(e.TokenSimilarity("", "x"), 0.0);
}

TEST(SubwordEmbeddingTest, SurfaceSimilarTokensAreClose) {
  // The pre-trained-embedding property the paper's neural FPs rely on:
  // shared n-grams => high cosine.
  SubwordEmbedding e;
  double near = e.TokenSimilarity("brown", "browne");
  double far = e.TokenSimilarity("brown", "zhang");
  EXPECT_GT(near, 0.45);
  EXPECT_LT(far, 0.4);
  EXPECT_GT(e.TokenSimilarity("efficient", "effective"),
            e.TokenSimilarity("efficient", "banana"));
}

TEST(SubwordEmbeddingTest, DifferentSeedsGiveDifferentSpaces) {
  SubwordEmbedding e1(SubwordEmbeddingOptions{.seed = 1});
  SubwordEmbedding e2(SubwordEmbeddingOptions{.seed = 2});
  double cross = SubwordEmbedding::Cosine(e1.Embed("brown"),
                                          e2.Embed("brown"));
  EXPECT_LT(cross, 0.7);
}

TEST(SubwordEmbeddingTest, CosineEdgeCases) {
  SubwordEmbedding e;
  EXPECT_DOUBLE_EQ(SubwordEmbedding::Cosine({1.0f}, {1.0f, 2.0f}), 0.0);
  EXPECT_DOUBLE_EQ(SubwordEmbedding::Cosine({0.0f}, {0.0f}), 0.0);
}

TEST(SentenceEncoderTest, IdenticalSentencesScoreOne) {
  SubwordEmbedding e;
  SentenceEncoder enc(&e);
  std::vector<std::string> s = {"lineage", "tracing"};
  EXPECT_NEAR(enc.Similarity(s, s), 1.0, 1e-5);
}

TEST(SentenceEncoderTest, EmptySentenceIsZero) {
  SubwordEmbedding e;
  SentenceEncoder enc(&e);
  std::vector<float> v = enc.Encode({});
  for (float x : v) EXPECT_FLOAT_EQ(x, 0.0f);
  EXPECT_DOUBLE_EQ(enc.Similarity({}, {"a"}), 0.0);
}

TEST(SentenceEncoderTest, SifDownweightsFrequentTokens) {
  SubwordEmbedding e;
  SentenceEncoder enc(&e);
  // "the" floods the corpus; content words are rare.
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 200; ++i) corpus.push_back({"the"});
  corpus.push_back({"warehouse"});
  corpus.push_back({"streaming"});
  enc.FitFrequencies(corpus);
  EXPECT_LT(enc.TokenWeight("the"), 0.05);
  EXPECT_GT(enc.TokenWeight("warehouse"), 0.1);
  // Sentences sharing only the frequent token barely align; sharing the
  // rare token aligns strongly.
  double via_the =
      enc.Similarity({"the", "warehouse"}, {"the", "streaming"});
  double via_rare =
      enc.Similarity({"the", "warehouse"}, {"a", "warehouse"});
  EXPECT_GT(via_rare, via_the);
}

TEST(SentenceEncoderTest, WeightedAlignmentSeparatesContentMismatch) {
  SubwordEmbedding e;
  SentenceEncoder enc(&e);
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 100; ++i) corpus.push_back({"col", "val", "race"});
  corpus.push_back({"jamal", "brown"});
  corpus.push_back({"keisha", "browne"});
  enc.FitFrequencies(corpus);
  // Same boilerplate, same-ish surname, different first name...
  double near_collision = enc.AlignmentSimilarity(
      {"col", "val", "race", "jamal", "brown"},
      {"col", "val", "race", "keisha", "browne"});
  // ...versus a true match with small typos in both names.
  double true_match = enc.AlignmentSimilarity(
      {"col", "val", "race", "jamal", "brown"},
      {"col", "val", "race", "jamak", "browm"});
  EXPECT_GT(true_match, near_collision);
}

TEST(SentenceEncoderTest, AlignmentEdgeCases) {
  SubwordEmbedding e;
  SentenceEncoder enc(&e);
  EXPECT_DOUBLE_EQ(enc.AlignmentSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(enc.AlignmentSimilarity({"a"}, {}), 0.0);
  EXPECT_NEAR(enc.AlignmentSimilarity({"same"}, {"same"}), 1.0, 1e-5);
}

}  // namespace
}  // namespace fairem
