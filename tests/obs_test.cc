#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/audit.h"
#include "src/core/confusion.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace fairem {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON validator/parser, enough to check that the exported
// metrics and Chrome-trace documents are well-formed and to round-trip the
// counter values. Numbers are kept as raw text.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  std::string scalar;  // number text / string value / "true"/"false"
  std::vector<JsonValue> items;                 // kArray
  std::map<std::string, JsonValue> members;     // kObject
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u':
            pos_ += 4;  // \uXXXX — decoded value irrelevant to the tests
            out->push_back('?');
            break;
          default:
            out->push_back(text_[pos_]);
        }
      } else {
        out->push_back(text_[pos_]);
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->members[key] = std::move(value);
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->items.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->scalar);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      out->kind = JsonValue::kNumber;
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-' || text_[pos_] == '+' ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E')) {
        ++pos_;
      }
      out->scalar = text_.substr(start, pos_ - start);
      return true;
    }
    for (const char* word : {"true", "false", "null"}) {
      size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) == 0) {
        out->kind = word[0] == 'n' ? JsonValue::kNull : JsonValue::kBool;
        out->scalar = word;
        pos_ += len;
        return true;
      }
    }
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Restores log level, sink, tracer state, and counter values around each
/// test so the obs globals don't leak between tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = GlobalLogLevel();
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetGlobalLogLevel(saved_level_);
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
  }

  LogLevel saved_level_ = LogLevel::kInfo;
};

// --------------------------------------------------------------- logging --

TEST_F(ObsTest, LogLevelFiltering) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  SetGlobalLogLevel(LogLevel::kWarn);
  FAIREM_LOG(DEBUG) << "dropped debug";
  FAIREM_LOG(INFO) << "dropped info";
  FAIREM_LOG(WARN) << "kept warn";
  FAIREM_LOG(ERROR) << "kept error";
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  EXPECT_NE(captured[0].second.find("kept warn"), std::string::npos);
  EXPECT_EQ(captured[1].first, LogLevel::kError);

  SetGlobalLogLevel(LogLevel::kOff);
  FAIREM_LOG(ERROR) << "silenced";
  EXPECT_EQ(captured.size(), 2u);
}

TEST_F(ObsTest, LogFilteredStatementDoesNotEvaluateOperands) {
  SetGlobalLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "value";
  };
  FAIREM_LOG(DEBUG) << expensive();
  EXPECT_EQ(evaluations, 0);
  FAIREM_LOG(ERROR) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(ObsTest, LogKvFormatsStructuredFields) {
  std::string last;
  SetLogSink([&](LogLevel, const std::string& line) { last = line; });
  SetGlobalLogLevel(LogLevel::kInfo);
  FAIREM_LOG(INFO) << "fitted" << LogKv("matcher", "DTMatcher")
                   << LogKv("pairs", 128) << LogKv("ok", true);
  EXPECT_NE(last.find("fitted"), std::string::npos);
  EXPECT_NE(last.find(" matcher=DTMatcher"), std::string::npos);
  EXPECT_NE(last.find(" pairs=128"), std::string::npos);
  EXPECT_NE(last.find(" ok=true"), std::string::npos);
  EXPECT_NE(last.find("obs_test.cc"), std::string::npos);
}

TEST_F(ObsTest, ParseLogLevelRoundTrips) {
  EXPECT_EQ(*ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(*ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(*ParseLogLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(*ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(*ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose").ok());
}

// --------------------------------------------------------------- metrics --

TEST_F(ObsTest, CounterGaugeHistogramSemantics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("fairem.test.counter");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(registry.GetCounter("fairem.test.counter"), c)
      << "same name must return the same counter";

  Gauge* g = registry.GetGauge("fairem.test.gauge");
  g->Set(1.5);
  g->Set(0.25);
  EXPECT_DOUBLE_EQ(g->value(), 0.25);

  Histogram* h = registry.GetHistogram("fairem.test.hist", {1.0, 10.0});
  h->Observe(0.5);   // bucket 0 (<= 1)
  h->Observe(1.0);   // bucket 0 (boundary counts down)
  h->Observe(5.0);   // bucket 1 (<= 10)
  h->Observe(100.0); // overflow bucket
  std::vector<uint64_t> counts = h->bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 106.5);

  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
}

TEST_F(ObsTest, MetricsJsonParsesAndRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("fairem.a.count")->Increment(7);
  registry.GetCounter("fairem.b.count")->Increment(9);
  registry.GetGauge("fairem.a.rate")->Set(0.75);
  Histogram* h = registry.GetHistogram("fairem.a.latency", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(2.0);

  std::string json = registry.ToJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  ASSERT_TRUE(root.members.count("counters"));
  ASSERT_TRUE(root.members.count("gauges"));
  ASSERT_TRUE(root.members.count("histograms"));

  // Round-trip: parsed values match the registry snapshot exactly.
  MetricsSnapshot snap = registry.Snapshot();
  const JsonValue& counters = root.members.at("counters");
  ASSERT_EQ(counters.members.size(), snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    ASSERT_TRUE(counters.members.count(name)) << name;
    EXPECT_EQ(counters.members.at(name).scalar, std::to_string(value));
  }
  const JsonValue& hist = root.members.at("histograms").members.at(
      "fairem.a.latency");
  EXPECT_EQ(hist.members.at("count").scalar, "2");
  ASSERT_EQ(hist.members.at("bucket_counts").items.size(), 3u);
  EXPECT_EQ(hist.members.at("bucket_counts").items[0].scalar, "1");
  EXPECT_EQ(hist.members.at("bucket_counts").items[2].scalar, "1");
}

TEST_F(ObsTest, MetricsWriteJsonFile) {
  MetricsRegistry registry;
  registry.GetCounter("fairem.file.count")->Increment(3);
  std::string path = ::testing::TempDir() + "/obs_metrics_test.json";
  ASSERT_TRUE(registry.WriteJsonFile(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  EXPECT_TRUE(JsonParser(buffer.str()).Parse(&root));
  EXPECT_EQ(root.members.at("counters")
                .members.at("fairem.file.count")
                .scalar,
            "3");
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- spans --

TEST_F(ObsTest, NestedSpanParentChildOrdering) {
  Tracer& tracer = Tracer::Global();
  tracer.set_enabled(true);
  {
    Span a("a");
    {
      Span b("b");
      { Span c("c"); }
    }
  }
  { Span d("d"); }
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Completion order: innermost first.
  EXPECT_EQ(events[0].name, "c");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].name, "a");
  EXPECT_EQ(events[3].name, "d");
  // Parent/child links and depths.
  EXPECT_EQ(events[0].parent_id, events[1].id);
  EXPECT_EQ(events[1].parent_id, events[2].id);
  EXPECT_EQ(events[2].parent_id, 0u);
  EXPECT_EQ(events[3].parent_id, 0u);
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_EQ(events[3].depth, 0);
  // Containment: child starts no earlier and ends no later than parent.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].duration_ns,
            events[1].start_ns + events[1].duration_ns);
}

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  ASSERT_FALSE(tracer.enabled());
  {
    Span a("not recorded");
    a.AddArg("k", "v");
  }
  EXPECT_TRUE(tracer.Events().empty());
}

TEST_F(ObsTest, SpanWritesElapsedEvenWhenDisabled) {
  double elapsed = -1.0;
  { Span s("timed", &elapsed); }
  EXPECT_GE(elapsed, 0.0);
  EXPECT_TRUE(Tracer::Global().Events().empty());
}

TEST_F(ObsTest, ScopedTimerMeasuresMonotonically) {
  double elapsed = -1.0;
  {
    ScopedTimer t(&elapsed);
    volatile double sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
  }
  EXPECT_GE(elapsed, 0.0);
}

TEST_F(ObsTest, ChromeTraceJsonParsesWithArgsAndNesting) {
  Tracer& tracer = Tracer::Global();
  tracer.set_enabled(true);
  {
    Span outer("outer");
    outer.AddArg("dataset", "DBLP-ACM");
    { Span inner("inner \"quoted\""); }
  }
  std::string json = tracer.ChromeTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue& events = root.members.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);
  // One process_name metadata event for the local track, then the spans in
  // completion order.
  ASSERT_EQ(events.items.size(), 3u);
  const JsonValue& meta = events.items[0];
  EXPECT_EQ(meta.members.at("ph").scalar, "M");
  EXPECT_EQ(meta.members.at("args").members.at("name").scalar, "fairem");
  const JsonValue& inner = events.items[1];
  const JsonValue& outer = events.items[2];
  EXPECT_EQ(outer.members.at("name").scalar, "outer");
  EXPECT_EQ(outer.members.at("ph").scalar, "X");
  EXPECT_EQ(outer.members.at("args").members.at("dataset").scalar,
            "DBLP-ACM");
  EXPECT_EQ(inner.members.at("args").members.at("parent_id").scalar,
            outer.members.at("args").members.at("span_id").scalar);

  // File export round-trips through WriteChromeTrace.
  std::string path = ::testing::TempDir() + "/obs_trace_test.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue reparsed;
  EXPECT_TRUE(JsonParser(buffer.str()).Parse(&reparsed));
  std::remove(path.c_str());
}

TEST_F(ObsTest, FlatSummaryAggregatesByName) {
  Tracer& tracer = Tracer::Global();
  tracer.set_enabled(true);
  { Span a("fairem.x"); }
  { Span b("fairem.x"); }
  { Span c("fairem.y"); }
  std::string summary = tracer.FlatSummary();
  EXPECT_NE(summary.find("fairem.x"), std::string::npos);
  EXPECT_NE(summary.find("fairem.y"), std::string::npos);
  EXPECT_NE(summary.find("2"), std::string::npos);
}

// --------------------------------------------------- pipeline integration --

TEST_F(ObsTest, RunMatcherPopulatesFitAndPredictSpans) {
  Tracer& tracer = Tracer::Global();
  tracer.set_enabled(true);
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpAcm, 0.35)).value();
  MatcherRun run = std::move(RunMatcher(ds, MatcherKind::kDT)).value();
  ASSERT_TRUE(run.supported);

  const TraceEvent* fit = nullptr;
  const TraceEvent* predict = nullptr;
  const TraceEvent* datagen = nullptr;
  std::vector<TraceEvent> events = tracer.Events();
  for (const TraceEvent& e : events) {
    if (e.name == "fairem.matcher.fit") fit = &e;
    if (e.name == "fairem.matcher.predict") predict = &e;
    if (e.name == "fairem.datagen.generate") datagen = &e;
  }
  ASSERT_NE(fit, nullptr);
  ASSERT_NE(predict, nullptr);
  ASSERT_NE(datagen, nullptr);
  EXPECT_GE(predict->start_ns, fit->start_ns + fit->duration_ns);

  // The harness seconds come from the same clock reads as the span
  // durations, so they agree to the nanosecond.
  EXPECT_NEAR(run.fit_seconds,
              static_cast<double>(fit->duration_ns) / 1e9, 1e-9);
  EXPECT_NEAR(run.predict_seconds,
              static_cast<double>(predict->duration_ns) / 1e9, 1e-9);
  bool has_matcher_arg = false;
  for (const auto& [k, v] : fit->args) {
    if (k == "matcher" && v == "DTMatcher") has_matcher_arg = true;
  }
  EXPECT_TRUE(has_matcher_arg);
}

TEST_F(ObsTest, AuditCountsEvaluatedAndSkippedCells) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.35)).value();
  MatcherRun run = std::move(RunMatcher(ds, MatcherKind::kLogReg)).value();
  ASSERT_TRUE(run.supported);

  registry.Reset();
  AuditReport baseline = std::move(AuditRunSingle(ds, run)).value();
  uint64_t evaluated =
      registry.GetCounter("fairem.audit.cells_evaluated")->value();
  EXPECT_GT(evaluated, 0u);
  // The skip counters are registered (visible in snapshots) even when 0.
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_TRUE(snap.counters.count("fairem.audit.cells_skipped"));
  EXPECT_TRUE(snap.counters.count("fairem.audit.cells_skipped_min_pairs"));

  // An absurd min_group_pairs suppresses every over-threshold cell; each
  // suppression is counted.
  registry.Reset();
  AuditOptions strict;
  strict.min_group_pairs = 1 << 30;
  AuditReport strict_report =
      std::move(AuditRunSingle(ds, run, strict)).value();
  EXPECT_TRUE(strict_report.UnfairEntries().empty());
  uint64_t flagged_before = 0;
  for (const auto* e : baseline.UnfairEntries()) {
    (void)e;
    ++flagged_before;
  }
  uint64_t skipped =
      registry.GetCounter("fairem.audit.cells_skipped_min_pairs")->value();
  if (flagged_before > 0) {
    EXPECT_GT(skipped, 0u);
  }
}

TEST_F(ObsTest, ObsOptionsApplyAndFlush) {
  ObsOptions options;
  options.log_level = "debug";
  options.trace_out = ::testing::TempDir() + "/obs_opts_trace.json";
  options.metrics_out = ::testing::TempDir() + "/obs_opts_metrics.json";
  ASSERT_TRUE(ApplyObsOptions(options).ok());
  EXPECT_EQ(GlobalLogLevel(), LogLevel::kDebug);
  EXPECT_TRUE(Tracer::Global().enabled());
  { Span s("flush test span"); }
  MetricsRegistry::Global().GetCounter("fairem.test.flush")->Increment();
  ASSERT_TRUE(FlushObsOutputs(options).ok());
  for (const std::string& path : {options.trace_out, options.metrics_out}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    JsonValue root;
    EXPECT_TRUE(JsonParser(buffer.str()).Parse(&root)) << path;
    std::remove(path.c_str());
  }

  ObsOptions bad;
  bad.log_level = "shouty";
  EXPECT_FALSE(ApplyObsOptions(bad).ok());
}

// Regression: every observability output goes through WriteFileDurable, so a
// path under directories that do not exist yet must succeed (parents are
// created), and the files must be complete after FlushObsOutputs returns.
TEST_F(ObsTest, FlushCreatesMissingParentDirsForAllOutputs) {
  const std::string root = ::testing::TempDir() + "/obs_nested_out";
  ObsOptions options;
  options.trace_out = root + "/traces/deep/run1/trace.json";
  options.metrics_out = root + "/metrics/deep/run1/metrics.json";
  options.profile_out = root + "/profiles/deep/run1/profile.folded";
  options.profile_hz = 200;
  ASSERT_TRUE(ApplyObsOptions(options).ok());
  {
    Span span("fairem.test.nested_flush");
    volatile uint64_t acc = 0;
    std::clock_t start = std::clock();
    // Burn a little CPU so the profiler has samples to fold.
    while (static_cast<double>(std::clock() - start) / CLOCKS_PER_SEC < 0.05) {
      for (int i = 0; i < 10000; ++i) acc = acc + i;
    }
  }
  ASSERT_TRUE(FlushObsOutputs(options).ok());
  for (const std::string& path :
       {options.trace_out, options.metrics_out, options.profile_out}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
  }
  // The folded profile names this process and the span that burned CPU.
  std::ifstream in(options.profile_out);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("process:parent;span:"), std::string::npos);
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
}

}  // namespace
}  // namespace fairem
