#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/data/csv.h"
#include "src/data/dataset_io.h"
#include "src/datagen/benchmark_suite.h"

namespace fairem {
namespace {

// A corpus of broken CSV inputs. Every entry must come back as an error
// Status — never a crash, never a silently half-parsed table. This is the
// contract the audit pipeline leans on when pointed at real-world dumps.

std::string WriteTempFile(const std::string& leaf, const std::string& bytes) {
  std::string path = ::testing::TempDir() + leaf;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(CsvCorpusTest, EmptyInput) {
  Result<Table> r = ReadCsvString("", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().ToString().find("empty CSV input"), std::string::npos);
}

TEST(CsvCorpusTest, TruncatedRow) {
  Result<Table> r = ReadCsvString("entity_id,name,city\n1,alice\n", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().ToString().find("wrong field count"),
            std::string::npos);
}

TEST(CsvCorpusTest, RowWithTooManyColumns) {
  Result<Table> r = ReadCsvString("entity_id,name\n1,alice,extra\n", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(CsvCorpusTest, UnterminatedQuoteInHeader) {
  Result<Table> r = ReadCsvString("entity_id,\"name\n", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("unterminated quoted field"),
            std::string::npos);
}

TEST(CsvCorpusTest, UnterminatedQuoteInRow) {
  Result<Table> r = ReadCsvString("entity_id,name\n1,\"alice\n", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("unterminated quoted field"),
            std::string::npos);
}

TEST(CsvCorpusTest, BadEntityId) {
  Result<Table> r = ReadCsvString("entity_id,name\nnot_a_number,alice\n", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("bad entity_id"), std::string::npos);
}

TEST(CsvCorpusTest, NonUtf8BytesRejected) {
  // 0xFF can never appear in well-formed UTF-8.
  Result<Table> r = ReadCsvString("entity_id,name\n1,al\xffice\n", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().ToString().find("not valid UTF-8"), std::string::npos);
}

TEST(CsvCorpusTest, OverlongEncodingRejected) {
  // 0xC0 0xAF is the classic overlong '/' — invalid UTF-8.
  Result<Table> r = ReadCsvString("entity_id,name\n1,a\xc0\xaf\n", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("not valid UTF-8"), std::string::npos);
}

TEST(CsvCorpusTest, TruncatedMultibyteSequenceRejected) {
  // Lead byte of a 3-byte sequence with only one continuation byte.
  Result<Table> r = ReadCsvString("entity_id,name\n1,a\xe4\xb8\n", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("not valid UTF-8"), std::string::npos);
}

TEST(CsvCorpusTest, WellFormedMultibyteAccepted) {
  Table t = std::move(
                ReadCsvString("entity_id,name\n1,M\xc3\xbcller \xe4\xb8\xad\n",
                              "t"))
                .value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.value(0, 0), "M\xc3\xbcller \xe4\xb8\xad");
}

TEST(CsvCorpusTest, Utf8ValidationCanBeOptedOut) {
  CsvOptions options;
  options.validate_utf8 = false;
  Result<Table> r =
      ReadCsvString("entity_id,name\n1,al\xffice\n", "t", options);
  EXPECT_TRUE(r.ok());  // legacy byte-transparent behaviour on request
}

TEST(CsvCorpusTest, BrokenFilesNeverCrash) {
  const std::string corpus[] = {
      "",                                   // empty file
      "entity_id,name,city\n1,alice\n",     // truncated row
      "entity_id,name\n1,\"alice\n",        // unterminated quote
      "entity_id,name\n1,alice,extra\n",    // wrong column count
      "entity_id,name\n1,al\xffice\n",      // non-UTF8 bytes
      "entity_id,name\nnope,alice\n",       // bad entity_id
  };
  int i = 0;
  for (const std::string& bytes : corpus) {
    std::string path =
        WriteTempFile("fairem_broken_" + std::to_string(i++) + ".csv", bytes);
    Result<Table> r = ReadCsvFile(path, "t");
    EXPECT_FALSE(r.ok()) << "corpus entry " << i;
    EXPECT_TRUE(r.status().IsInvalidArgument()) << "corpus entry " << i;
  }
}

TEST(CsvCorpusTest, MissingFileIsIOError) {
  Result<Table> r = ReadCsvFile("/nonexistent/fairem/nowhere.csv", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

// Dataset-directory loads built from the same corpus: a saved dataset with
// one file corrupted must load back as a Status, not an abort.

class BrokenDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "fairem_broken_dataset";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    EMDataset ds =
        std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.25)).value();
    ASSERT_TRUE(SaveDataset(ds, dir_).ok());
  }

  void Corrupt(const std::string& file, const std::string& bytes) {
    std::ofstream out(dir_ + "/" + file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

TEST_F(BrokenDatasetTest, IntactRoundTripStillWorks) {
  EXPECT_TRUE(LoadDataset(dir_).ok());
}

TEST_F(BrokenDatasetTest, PairFileWithWrongColumnCount) {
  Corrupt("train.csv", "entity_id,left,right\n0,1,2\n");
  Result<EMDataset> r = LoadDataset(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().ToString().find("3 columns"), std::string::npos);
}

TEST_F(BrokenDatasetTest, PairFileWithGarbageIndices) {
  Corrupt("test.csv", "entity_id,left,right,is_match\n0,one,two,1\n");
  Result<EMDataset> r = LoadDataset(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("bad pair row"), std::string::npos);
}

TEST_F(BrokenDatasetTest, MetaFileWithWrongColumnCount) {
  Corrupt("meta.csv", "entity_id,key,value,extra\n0,name,x,y\n");
  Result<EMDataset> r = LoadDataset(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().ToString().find("2 columns"), std::string::npos);
}

TEST_F(BrokenDatasetTest, MetaFileWithNonUtf8Bytes) {
  Corrupt("meta.csv", "entity_id,key,value\n0,name,caf\xe9\n");  // latin-1
  Result<EMDataset> r = LoadDataset(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("not valid UTF-8"), std::string::npos);
}

TEST_F(BrokenDatasetTest, MissingTableIsAnError) {
  std::filesystem::remove(dir_ + "/table_b.csv");
  EXPECT_FALSE(LoadDataset(dir_).ok());
}

}  // namespace
}  // namespace fairem
