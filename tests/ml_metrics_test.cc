#include "src/ml/metrics.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

ConfusionCounts Sample() {
  // tp=6 fp=2 tn=10 fn=2
  ConfusionCounts c;
  c.tp = 6;
  c.fp = 2;
  c.tn = 10;
  c.fn = 2;
  return c;
}

TEST(ConfusionTest, AddClassifiesOutcomes) {
  ConfusionCounts c;
  c.Add(true, true);    // TP
  c.Add(true, false);   // FP
  c.Add(false, true);   // FN
  c.Add(false, false);  // TN
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_EQ(c.total(), 4);
}

TEST(ConfusionTest, MergeSums) {
  ConfusionCounts a = Sample();
  ConfusionCounts b = Sample();
  a.Merge(b);
  EXPECT_EQ(a.tp, 12);
  EXPECT_EQ(a.total(), 40);
}

TEST(MetricsTest, KnownValues) {
  ConfusionCounts c = Sample();
  EXPECT_DOUBLE_EQ(*Accuracy(c), 0.8);
  EXPECT_DOUBLE_EQ(*Precision(c), 0.75);
  EXPECT_DOUBLE_EQ(*Recall(c), 0.75);
  EXPECT_DOUBLE_EQ(*F1Score(c), 0.75);
  EXPECT_DOUBLE_EQ(*TruePositiveRate(c), 0.75);
  EXPECT_NEAR(*FalsePositiveRate(c), 2.0 / 12.0, 1e-12);
  EXPECT_NEAR(*TrueNegativeRate(c), 10.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(*FalseNegativeRate(c), 0.25);
  EXPECT_DOUBLE_EQ(*PositivePredictiveValue(c), 0.75);
  EXPECT_NEAR(*NegativePredictiveValue(c), 10.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(*FalseDiscoveryRate(c), 0.25);
  EXPECT_NEAR(*FalseOmissionRate(c), 2.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(*PositivePredictionRate(c), 0.4);
}

TEST(MetricsTest, ComplementaryPairsSumToOne) {
  ConfusionCounts c = Sample();
  EXPECT_NEAR(*TruePositiveRate(c) + *FalseNegativeRate(c), 1.0, 1e-12);
  EXPECT_NEAR(*TrueNegativeRate(c) + *FalsePositiveRate(c), 1.0, 1e-12);
  EXPECT_NEAR(*PositivePredictiveValue(c) + *FalseDiscoveryRate(c), 1.0,
              1e-12);
  EXPECT_NEAR(*NegativePredictiveValue(c) + *FalseOmissionRate(c), 1.0,
              1e-12);
}

TEST(MetricsTest, EmptyDenominatorsAreUndefined) {
  ConfusionCounts no_positives;
  no_positives.tn = 5;
  EXPECT_TRUE(Recall(no_positives).status().IsUndefinedStatistic());
  EXPECT_TRUE(Precision(no_positives).status().IsUndefinedStatistic());
  EXPECT_TRUE(FalseDiscoveryRate(no_positives).status()
                  .IsUndefinedStatistic());
  ConfusionCounts empty;
  EXPECT_TRUE(Accuracy(empty).status().IsUndefinedStatistic());
  EXPECT_TRUE(PositivePredictionRate(empty).status().IsUndefinedStatistic());
}

TEST(MetricsTest, AllMatchesDataset) {
  // The Cricket regime: nearly everything is a true match.
  ConfusionCounts c;
  c.tp = 95;
  c.fn = 5;
  EXPECT_DOUBLE_EQ(*Accuracy(c), 0.95);
  EXPECT_DOUBLE_EQ(*Recall(c), 0.95);
  EXPECT_TRUE(FalsePositiveRate(c).status().IsUndefinedStatistic());
  // NPV is defined (the 5 false negatives are predicted non-matches) and
  // zero: none of the predicted non-matches is a true non-match.
  EXPECT_DOUBLE_EQ(*NegativePredictiveValue(c), 0.0);
}

TEST(CountsFromScoresTest, ThresholdingWorks) {
  std::vector<double> scores = {0.9, 0.4, 0.6, 0.1};
  std::vector<int> labels = {1, 1, 0, 0};
  Result<ConfusionCounts> c = CountsFromScores(scores, labels, 0.5);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->tp, 1);
  EXPECT_EQ(c->fn, 1);
  EXPECT_EQ(c->fp, 1);
  EXPECT_EQ(c->tn, 1);
}

TEST(CountsFromScoresTest, ThresholdIsInclusive) {
  Result<ConfusionCounts> c = CountsFromScores({0.5}, {1}, 0.5);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->tp, 1);
}

TEST(CountsFromScoresTest, SizeMismatchIsError) {
  EXPECT_FALSE(CountsFromScores({0.5}, {1, 0}, 0.5).ok());
}

}  // namespace
}  // namespace fairem
