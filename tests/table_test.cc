#include "src/data/table.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

Schema TwoColSchema() {
  Result<Schema> s = Schema::Make({"name", "year"});
  EXPECT_TRUE(s.ok());
  return std::move(s).value();
}

TEST(SchemaTest, MakeValidatesNames) {
  EXPECT_TRUE(Schema::Make({"a", "b"}).ok());
  EXPECT_FALSE(Schema::Make({"a", "a"}).ok());
  EXPECT_FALSE(Schema::Make({""}).ok());
  EXPECT_TRUE(Schema::Make({}).ok());
}

TEST(SchemaTest, IndexLookups) {
  Schema s = TwoColSchema();
  EXPECT_EQ(*s.Index("name"), 0u);
  EXPECT_EQ(*s.Index("year"), 1u);
  EXPECT_TRUE(s.Index("missing").status().IsNotFound());
  EXPECT_TRUE(s.Contains("name"));
  EXPECT_FALSE(s.Contains("nope"));
}

TEST(TableTest, AppendAndRead) {
  Table t("test", TwoColSchema());
  ASSERT_TRUE(t.AppendValues(1, {"alice", "1990"}).ok());
  ASSERT_TRUE(t.AppendValues(2, {"bob", "1985"}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.value(0, 0), "alice");
  EXPECT_EQ(t.value(1, 1), "1985");
  EXPECT_EQ(t.row(0).entity_id, 1);
  EXPECT_EQ(*t.ValueByName(1, "name"), "bob");
  EXPECT_TRUE(t.ValueByName(0, "missing").status().IsNotFound());
}

TEST(TableTest, RejectsWrongWidth) {
  Table t("test", TwoColSchema());
  EXPECT_FALSE(t.AppendValues(1, {"only one"}).ok());
  EXPECT_FALSE(t.AppendValues(1, {"a", "b", "c"}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, NullCells) {
  Table t("test", TwoColSchema());
  Record r;
  r.entity_id = 9;
  r.cells = {std::nullopt, std::string("2001")};
  ASSERT_TRUE(t.Append(std::move(r)).ok());
  EXPECT_TRUE(t.IsNull(0, 0));
  EXPECT_FALSE(t.IsNull(0, 1));
  EXPECT_EQ(t.value(0, 0), "");  // null reads as empty view
  EXPECT_EQ(t.value(0, 1), "2001");
}

TEST(TableTest, EmptyStringIsNotNull) {
  Table t("test", TwoColSchema());
  ASSERT_TRUE(t.AppendValues(1, {"", "x"}).ok());
  EXPECT_FALSE(t.IsNull(0, 0));
}

}  // namespace
}  // namespace fairem
