#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"
#include "src/obs/benchdiff.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/robust/failpoint.h"
#include "src/robust/retry.h"
#include "src/robust/supervisor.h"
#include "src/util/durable_file.h"

namespace fairem {
namespace {

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name)->value();
}

/// Disarms failpoints and restores the real retry sleep when a test exits,
/// even on assertion failure — both are process-global.
class RobustGuard {
 public:
  RobustGuard() { FailpointRegistry::Global().Clear(); }
  ~RobustGuard() {
    FailpointRegistry::Global().Clear();
    SetRetrySleepFnForTest(nullptr);
  }
};

std::string FreshTempDir(const std::string& leaf) {
  std::string dir = ::testing::TempDir() + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Derived histogram stats.

MetricsSnapshot::HistogramData MakeHist(std::vector<double> bounds,
                                        std::vector<uint64_t> bucket_counts,
                                        double sum) {
  MetricsSnapshot::HistogramData h;
  h.bounds = std::move(bounds);
  h.bucket_counts = std::move(bucket_counts);
  for (uint64_t c : h.bucket_counts) h.count += c;
  h.sum = sum;
  return h;
}

TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  // 10 observations all in (0, 10]: the estimate interpolates linearly from
  // the implicit 0 lower edge.
  MetricsSnapshot::HistogramData h = MakeHist({10.0}, {10, 0}, 50.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.0);

  // 2 in (0,1], 2 in (1,2]: the 0.75 rank lands halfway into the second
  // bucket.
  MetricsSnapshot::HistogramData two = MakeHist({1.0, 2.0}, {2, 2, 0}, 3.0);
  EXPECT_DOUBLE_EQ(two.Quantile(0.75), 1.5);
}

TEST(HistogramQuantileTest, OverflowClampsToLastBound) {
  MetricsSnapshot::HistogramData h = MakeHist({10.0}, {0, 5}, 500.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 10.0);
}

TEST(HistogramQuantileTest, EmptyOrMalformedReturnsZero) {
  MetricsSnapshot::HistogramData empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);

  MetricsSnapshot::HistogramData malformed = MakeHist({1.0}, {3}, 1.0);
  // bucket_counts must be bounds+1 entries; a short vector is a no-answer,
  // not a crash.
  EXPECT_DOUBLE_EQ(malformed.Quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Registry merge: the cross-process primitive.

TEST(MergeTest, CountersAddGaugesLastWriteHistogramsBucketwise) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Increment(5);
  reg.GetGauge("g")->Set(1.0);
  Histogram* h = reg.GetHistogram("h", {1.0, 2.0});
  h->Observe(0.5);

  MetricsSnapshot delta;
  delta.counters["c"] = 3;
  delta.counters["c2"] = 7;  // unknown metrics register on the fly
  delta.gauges["g"] = 2.5;
  delta.histograms["h"] = MakeHist({1.0, 2.0}, {1, 0, 2}, 9.0);
  reg.Merge(delta);

  MetricsSnapshot merged = reg.Snapshot();
  EXPECT_EQ(merged.counters["c"], 8u);
  EXPECT_EQ(merged.counters["c2"], 7u);
  EXPECT_DOUBLE_EQ(merged.gauges["g"], 2.5);
  EXPECT_EQ(merged.histograms["h"].bucket_counts,
            (std::vector<uint64_t>{2, 0, 2}));
  EXPECT_EQ(merged.histograms["h"].count, 4u);
  EXPECT_DOUBLE_EQ(merged.histograms["h"].sum, 9.5);
}

TEST(MergeTest, MergeIsOrderIndependent) {
  MetricsSnapshot a;
  a.counters["c"] = 3;
  a.histograms["h"] = MakeHist({1.0}, {2, 1}, 4.0);
  MetricsSnapshot b;
  b.counters["c"] = 5;
  b.counters["only_b"] = 1;
  b.histograms["h"] = MakeHist({1.0}, {0, 4}, 40.0);

  MetricsRegistry ab;
  ab.Merge(a);
  ab.Merge(b);
  MetricsRegistry ba;
  ba.Merge(b);
  ba.Merge(a);
  // Counters add and histograms add bucket-wise, so arrival order — which
  // the parallel supervisor cannot control — must not matter.
  EXPECT_EQ(ab.ToJson(), ba.ToJson());
}

TEST(MergeTest, BoundsMismatchWarnsAndSkipsInsteadOfCrashing) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h", {1.0, 2.0});
  h->Observe(0.5);
  uint64_t mismatches_before =
      CounterValue("fairem.telemetry.merge_bounds_mismatches");

  MetricsSnapshot delta;
  delta.histograms["h"] = MakeHist({5.0}, {1, 1}, 6.0);
  reg.Merge(delta);

  EXPECT_EQ(CounterValue("fairem.telemetry.merge_bounds_mismatches") -
                mismatches_before,
            1u);
  // The registered histogram is untouched.
  EXPECT_EQ(reg.Snapshot().histograms["h"].count, 1u);
}

TEST(MergeTest, MalformedBucketCountsAreSkipped) {
  MetricsRegistry reg;
  reg.GetHistogram("h", {1.0, 2.0});
  uint64_t mismatches_before =
      CounterValue("fairem.telemetry.merge_bounds_mismatches");

  MetricsSnapshot delta;
  MetricsSnapshot::HistogramData bad;
  bad.bounds = {1.0, 2.0};
  bad.bucket_counts = {1};  // should be bounds+1 entries
  bad.count = 1;
  delta.histograms["h"] = bad;
  reg.Merge(delta);

  EXPECT_EQ(CounterValue("fairem.telemetry.merge_bounds_mismatches") -
                mismatches_before,
            1u);
  EXPECT_EQ(reg.Snapshot().histograms["h"].count, 0u);
}

// ---------------------------------------------------------------------------
// Snapshot JSON: serialize, parse back, derived keys.

TEST(SnapshotJsonTest, RoundTripPreservesEverything) {
  MetricsRegistry reg;
  reg.GetCounter("fairem.test.count")->Increment(42);
  reg.GetGauge("fairem.test.gauge")->Set(2.5);
  Histogram* h = reg.GetHistogram("fairem.test.hist", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(5.0);
  MetricsSnapshot snap = reg.Snapshot();

  MetricsSnapshot parsed =
      std::move(MetricsSnapshotFromJson(MetricsSnapshotToJson(snap))).value();
  EXPECT_EQ(parsed.counters, snap.counters);
  EXPECT_EQ(parsed.gauges, snap.gauges);
  ASSERT_EQ(parsed.histograms.count("fairem.test.hist"), 1u);
  const auto& ph = parsed.histograms["fairem.test.hist"];
  EXPECT_EQ(ph.bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(ph.bucket_counts, (std::vector<uint64_t>{1, 0, 1}));
  EXPECT_EQ(ph.count, 2u);
  EXPECT_DOUBLE_EQ(ph.sum, 5.5);
}

TEST(SnapshotJsonTest, JsonCarriesDerivedQuantileKeys) {
  MetricsSnapshot snap;
  snap.histograms["h"] = MakeHist({1.0}, {4, 0}, 2.0);
  std::string json = MetricsSnapshotToJson(snap);
  EXPECT_NE(json.find("\"mean\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(SnapshotJsonTest, ParseRejectsGarbage) {
  EXPECT_FALSE(MetricsSnapshotFromJson("not json").ok());
  EXPECT_FALSE(MetricsSnapshotFromJson("[1,2,3]").ok());
}

// ---------------------------------------------------------------------------
// Prometheus exposition.

TEST(PrometheusTest, NameSanitization) {
  EXPECT_EQ(PrometheusName("fairem.audit.cells"), "fairem_audit_cells");
  EXPECT_EQ(PrometheusName("a-b/c"), "a_b_c");
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusName("keep:colons_and_0k"), "keep:colons_and_0k");
}

TEST(PrometheusTest, ExpositionHasTypesBucketsSumAndCount) {
  MetricsSnapshot snap;
  snap.counters["fairem.test.count"] = 3;
  snap.gauges["fairem.test.gauge"] = 1.5;
  snap.histograms["fairem.test.hist"] = MakeHist({1.0, 2.0}, {1, 2, 1}, 6.0);
  std::string text = MetricsSnapshotToPrometheus(snap);
  EXPECT_NE(text.find("# TYPE fairem_test_count counter"), std::string::npos);
  EXPECT_NE(text.find("fairem_test_count 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fairem_test_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fairem_test_hist histogram"), std::string::npos);
  // Buckets are cumulative and end with the +Inf catch-all.
  EXPECT_NE(text.find("fairem_test_hist_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("fairem_test_hist_bucket{le=\"2\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("fairem_test_hist_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("fairem_test_hist_sum 6"), std::string::npos);
  EXPECT_NE(text.find("fairem_test_hist_count 4"), std::string::npos);
}

TEST(PrometheusTest, ParseMetricsFormatNames) {
  EXPECT_EQ(std::move(ParseMetricsFormat("json")).value(),
            MetricsFormat::kJson);
  EXPECT_EQ(std::move(ParseMetricsFormat("prom")).value(),
            MetricsFormat::kProm);
  EXPECT_EQ(std::move(ParseMetricsFormat("prometheus")).value(),
            MetricsFormat::kProm);
  EXPECT_FALSE(ParseMetricsFormat("xml").ok());
}

// ---------------------------------------------------------------------------
// Worker telemetry wire format.

WorkerTelemetry MakeTelemetry() {
  WorkerTelemetry t;
  t.task_key = "grid/DT:single";
  t.attempt = 2;
  t.pid = 4242;
  t.metrics.counters["fairem.test.count"] = 5;
  t.metrics.gauges["fairem.test.gauge"] = 0.25;
  t.metrics.histograms["fairem.test.hist"] = MakeHist({1.0}, {1, 1}, 3.0);
  TraceEvent span;
  span.id = 9;
  span.parent_id = 3;
  span.depth = 1;
  span.name = "fairem.matcher.fit";
  span.start_ns = 1000;
  span.duration_ns = 2000;
  span.thread_id = 7;
  span.args = {{"matcher", "DT"}};
  t.spans.push_back(span);
  return t;
}

TEST(WireFormatTest, TelemetrySerializeParseRoundTrip) {
  WorkerTelemetry t = MakeTelemetry();
  WorkerTelemetry parsed =
      std::move(ParseWorkerTelemetry(SerializeWorkerTelemetry(t))).value();
  EXPECT_EQ(parsed.task_key, t.task_key);
  EXPECT_EQ(parsed.attempt, t.attempt);
  EXPECT_EQ(parsed.pid, t.pid);
  EXPECT_EQ(parsed.metrics.counters, t.metrics.counters);
  EXPECT_EQ(parsed.metrics.gauges, t.metrics.gauges);
  ASSERT_EQ(parsed.spans.size(), 1u);
  EXPECT_EQ(parsed.spans[0].id, 9u);
  EXPECT_EQ(parsed.spans[0].parent_id, 3u);
  EXPECT_EQ(parsed.spans[0].name, "fairem.matcher.fit");
  EXPECT_EQ(parsed.spans[0].start_ns, 1000u);
  EXPECT_EQ(parsed.spans[0].duration_ns, 2000u);
  ASSERT_EQ(parsed.spans[0].args.size(), 1u);
  EXPECT_EQ(parsed.spans[0].args[0].first, "matcher");
  EXPECT_EQ(parsed.spans[0].args[0].second, "DT");
}

TEST(WireFormatTest, ParseRejectsWrongVersionAndGarbage) {
  EXPECT_FALSE(ParseWorkerTelemetry("{\"version\": 2, \"metrics\": {}}").ok());
  EXPECT_FALSE(ParseWorkerTelemetry("garbage").ok());
}

TEST(WireFormatTest, WrapAndSplitRoundTrip) {
  const std::string telemetry_json = "{\"version\": 1}";
  const std::string payload = std::string("grid cell payload\n\0tail", 23);
  std::string wire = WrapPayloadWithTelemetry(telemetry_json, payload);
  ASSERT_EQ(wire.compare(0, 8, kTelemetryMagic), 0);
  TelemetrySplit split = SplitTelemetryPayload(wire);
  EXPECT_TRUE(split.has_telemetry);
  EXPECT_EQ(split.telemetry_json, telemetry_json);
  EXPECT_EQ(split.payload, payload);
}

TEST(WireFormatTest, UnframedOrCorruptWireDegradesToWholePayload) {
  // A PR-3 worker (or one that crashed before shipping) sends an unframed
  // payload; it must pass through untouched, never error.
  TelemetrySplit plain = SplitTelemetryPayload("plain payload");
  EXPECT_FALSE(plain.has_telemetry);
  EXPECT_EQ(plain.payload, "plain payload");

  // A wire truncated mid-telemetry (worker killed mid-write) degrades the
  // same way.
  std::string wire = WrapPayloadWithTelemetry("{\"version\": 1}", "payload");
  std::string truncated = wire.substr(0, wire.size() / 2);
  TelemetrySplit cut = SplitTelemetryPayload(truncated);
  EXPECT_FALSE(cut.has_telemetry);
  EXPECT_EQ(cut.payload, truncated);

  // Magic with a corrupt length field.
  std::string corrupt = std::string(kTelemetryMagic) + "zzzz\npayload";
  TelemetrySplit bad = SplitTelemetryPayload(corrupt);
  EXPECT_FALSE(bad.has_telemetry);
  EXPECT_EQ(bad.payload, corrupt);
}

TEST(WireFormatTest, MultiFrameEncodeParseRoundTrip) {
  const std::string folded = "process:worker_7;span:fit;Fit 12\n";
  std::string wire = EncodeTelemetryWire(
      {{kFrameTelemetry, "{\"version\": 1}"}, {kFrameProfile, folded}},
      "grid payload");
  TelemetryWireParse parsed = ParseTelemetryWire(wire);
  EXPECT_TRUE(parsed.framed);
  EXPECT_FALSE(parsed.truncated);
  ASSERT_EQ(parsed.frames.size(), 2u);
  EXPECT_EQ(parsed.frames[0].type, kFrameTelemetry);
  EXPECT_EQ(parsed.frames[0].bytes, "{\"version\": 1}");
  EXPECT_EQ(parsed.frames[1].type, kFrameProfile);
  EXPECT_EQ(parsed.frames[1].bytes, folded);
  EXPECT_EQ(parsed.payload, "grid payload");
}

TEST(WireFormatTest, UnknownFrameTypeIsSkippedNotCorrupt) {
  // A newer worker ships a frame type this build has never heard of. The
  // length field still delimits it, so the receiver steps over the frame,
  // counts it, and keeps everything else.
  uint64_t unknown_before = CounterValue("fairem.telemetry.unknown_frames");
  std::string wire = EncodeTelemetryWire(
      {{"XFUT", std::string("opaque future \0 bytes", 21)},
       {kFrameTelemetry, "{\"version\": 1}"}},
      "payload");
  TelemetryWireParse parsed = ParseTelemetryWire(wire);
  EXPECT_TRUE(parsed.framed);
  EXPECT_FALSE(parsed.truncated);
  EXPECT_EQ(CounterValue("fairem.telemetry.unknown_frames") - unknown_before,
            1u);
  ASSERT_EQ(parsed.frames.size(), 2u);
  EXPECT_EQ(parsed.frames[0].type, "XFUT");
  EXPECT_EQ(parsed.frames[1].type, kFrameTelemetry);
  EXPECT_EQ(parsed.payload, "payload");

  // The legacy split sees through the unknown frame to the telemetry.
  TelemetrySplit split = SplitTelemetryPayload(wire);
  EXPECT_TRUE(split.has_telemetry);
  EXPECT_EQ(split.telemetry_json, "{\"version\": 1}");
  EXPECT_EQ(split.payload, "payload");
}

TEST(WireFormatTest, TruncatedProfileFrameKeepsParsedTelemetry) {
  // Worker killed mid-ship: TELE landed whole, PROF was cut. The parsed
  // frames survive; the missing payload marks the wire truncated.
  std::string folded(200, 'x');
  std::string wire = EncodeTelemetryWire(
      {{kFrameTelemetry, "{\"version\": 1}"}, {kFrameProfile, folded}},
      "payload");
  size_t prof_start = wire.find("PROF");
  ASSERT_NE(prof_start, std::string::npos);
  TelemetryWireParse cut = ParseTelemetryWire(wire.substr(0, prof_start + 60));
  EXPECT_TRUE(cut.framed);
  EXPECT_TRUE(cut.truncated);
  ASSERT_EQ(cut.frames.size(), 1u);
  EXPECT_EQ(cut.frames[0].type, kFrameTelemetry);
  EXPECT_EQ(cut.frames[0].bytes, "{\"version\": 1}");
  EXPECT_TRUE(cut.payload.empty());
}

TEST(WireFormatTest, ProfileSidecarRoundTrip) {
  std::string dir = FreshTempDir("fairem_profile_sidecar");
  const std::string folded = "process:worker_1;span:fit;Fit 3\n";
  ASSERT_TRUE(WriteProfileSidecar(dir, "grid/DT:single", 2, folded).ok());
  std::string path = ProfileSidecarPath(dir, "grid/DT:single", 2);
  std::string leaf = std::filesystem::path(path).filename().string();
  EXPECT_EQ(leaf.find('/'), std::string::npos);
  EXPECT_NE(leaf.find(".attempt2.profile.folded"), std::string::npos);
  EXPECT_EQ(std::move(LoadProfileSidecarFile(path)).value(), folded);
  EXPECT_FALSE(LoadProfileSidecarFile(dir + "/absent.folded").ok());
}

// ---------------------------------------------------------------------------
// Delta computation: what a worker ships.

TEST(DiffSnapshotsTest, ShipsOnlyTheTaskContribution) {
  MetricsSnapshot base;
  base.counters["inherited"] = 10;
  base.counters["bumped"] = 4;
  base.gauges["stale"] = 1.0;
  base.gauges["touched"] = 1.0;
  base.histograms["h"] = MakeHist({1.0}, {3, 0}, 1.5);

  MetricsSnapshot now = base;
  now.counters["bumped"] = 9;
  now.counters["fresh"] = 2;
  now.counters["registered_at_zero"] = 0;
  now.gauges["touched"] = 7.0;
  now.histograms["h"] = MakeHist({1.0}, {5, 1}, 4.5);

  MetricsSnapshot delta = DiffSnapshots(base, now);
  // Inherited fork-time values must not ship: the parent already has them.
  EXPECT_EQ(delta.counters.count("inherited"), 0u);
  EXPECT_EQ(delta.counters.at("bumped"), 5u);
  EXPECT_EQ(delta.counters.at("fresh"), 2u);
  // Registered during the task: ships even at zero so the merged parent
  // snapshot lists the same counter names a sequential run would.
  EXPECT_EQ(delta.counters.at("registered_at_zero"), 0u);
  EXPECT_EQ(delta.gauges.count("stale"), 0u);
  EXPECT_DOUBLE_EQ(delta.gauges.at("touched"), 7.0);
  EXPECT_EQ(delta.histograms.at("h").bucket_counts,
            (std::vector<uint64_t>{2, 1}));
  EXPECT_EQ(delta.histograms.at("h").count, 3u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("h").sum, 3.0);
}

// ---------------------------------------------------------------------------
// Sidecar files.

TEST(SidecarTest, WriteLoadRoundTripAndKeySanitization) {
  std::string dir = FreshTempDir("fairem_telemetry_sidecar");
  WorkerTelemetry t = MakeTelemetry();  // key "grid/DT:single" needs escaping
  ASSERT_TRUE(WriteTelemetrySidecar(dir, t).ok());
  std::string path = TelemetrySidecarPath(dir, t.task_key, t.attempt);
  // The task key's '/' must not fragment the filename into subdirectories.
  std::string leaf = std::filesystem::path(path).filename().string();
  EXPECT_EQ(leaf.find('/'), std::string::npos);
  EXPECT_NE(leaf.find(".attempt2.telemetry.json"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(path));
  WorkerTelemetry loaded = std::move(LoadTelemetrySidecarFile(path)).value();
  EXPECT_EQ(loaded.task_key, t.task_key);
  EXPECT_EQ(loaded.attempt, t.attempt);
  EXPECT_EQ(loaded.metrics.counters, t.metrics.counters);
  EXPECT_FALSE(LoadTelemetrySidecarFile(dir + "/absent.json").ok());
}

// ---------------------------------------------------------------------------
// Absorb: merge into the global registry, re-emit spans on worker tracks.

TEST(AbsorbTest, MergesMetricsAndImportsSpansOnWorkerTrack) {
  Tracer::Global().Clear();
  uint64_t count_before = CounterValue("fairem.test.absorb_probe");
  uint64_t merged_before = CounterValue("fairem.telemetry.deltas_merged");
  uint64_t imported_before = CounterValue("fairem.telemetry.spans_imported");

  WorkerTelemetry t;
  t.task_key = "absorb";
  t.attempt = 1;
  t.pid = 31337;
  t.metrics.counters["fairem.test.absorb_probe"] = 6;
  TraceEvent span;
  span.id = 1;
  span.name = "fairem.test.absorbed_span";
  span.duration_ns = 500;
  t.spans.push_back(span);
  AbsorbWorkerTelemetry(t);

  EXPECT_EQ(CounterValue("fairem.test.absorb_probe") - count_before, 6u);
  EXPECT_EQ(CounterValue("fairem.telemetry.deltas_merged") - merged_before,
            1u);
  EXPECT_EQ(CounterValue("fairem.telemetry.spans_imported") - imported_before,
            1u);
  // Imported even though the tracer is disabled, tagged with the worker pid.
  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "fairem.test.absorbed_span");
  EXPECT_EQ(events[0].track_id, 31337u);
  Tracer::Global().Clear();
}

// ---------------------------------------------------------------------------
// Durable writes.

TEST(DurableFileTest, CreatesParentsWritesContentLeavesNoTemp) {
  std::string root = FreshTempDir("fairem_durable");
  std::string path = root + "/nested/deeper/out.json";
  ASSERT_TRUE(WriteFileDurable(path, "v1").ok());
  ASSERT_TRUE(WriteFileDurable(path, "version-two").ok());
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "version-two");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(DurableFileTest, MetricsWriteFileHonoursFormat) {
  std::string root = FreshTempDir("fairem_metrics_fmt");
  MetricsRegistry reg;
  reg.GetCounter("fairem.test.fmt")->Increment(2);
  ASSERT_TRUE(reg.WriteFile(root + "/m.json", MetricsFormat::kJson).ok());
  ASSERT_TRUE(reg.WriteFile(root + "/m.prom", MetricsFormat::kProm).ok());
  std::ifstream json_in(root + "/m.json");
  std::string json((std::istreambuf_iterator<char>(json_in)),
                   std::istreambuf_iterator<char>());
  std::ifstream prom_in(root + "/m.prom");
  std::string prom((std::istreambuf_iterator<char>(prom_in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"fairem.test.fmt\": 2"), std::string::npos);
  EXPECT_NE(prom.find("fairem_test_fmt 2"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Progress reporting.

TEST(ProgressReporterTest, FormatLine) {
  ProgressSnapshot snap;
  snap.total = 40;
  snap.done = 12;
  snap.running = 4;
  snap.retrying = 1;
  snap.failed = 0;
  EXPECT_EQ(ProgressReporter::FormatLine(snap, 38.25),
            "grid 12/40 done, 4 running, 1 retrying, 0 failed, eta 38.2s");
  EXPECT_EQ(ProgressReporter::FormatLine(snap, -1.0),
            "grid 12/40 done, 4 running, 1 retrying, 0 failed, eta ?");
}

TEST(ProgressReporterTest, EtaFromCellHistogramAndGauges) {
  // The ETA feeds off the process-global fairem.progress.cell_seconds
  // histogram; zero it so earlier tests' grid runs don't skew the mean.
  MetricsRegistry::Global().Reset();
  ProgressReporter reporter(/*total_cells=*/10, /*jobs=*/2,
                            /*min_interval_seconds=*/0.0,
                            /*emit_stderr=*/false);
  ProgressSnapshot snap;
  snap.total = 10;
  snap.done = 0;
  EXPECT_DOUBLE_EQ(reporter.EtaSeconds(snap), -1.0);  // no cells yet

  snap.done = 4;
  snap.running = 2;
  snap.last_cell_seconds = 2.0;
  reporter.Update(snap);
  // mean 2s × 6 remaining ÷ 2 jobs.
  EXPECT_DOUBLE_EQ(reporter.EtaSeconds(snap), 6.0);
  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_DOUBLE_EQ(reg.GetGauge("fairem.progress.cells_total")->value(), 10.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("fairem.progress.cells_done")->value(), 4.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("fairem.progress.cells_running")->value(),
                   2.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("fairem.progress.eta_seconds")->value(), 6.0);

  snap.done = 10;
  EXPECT_DOUBLE_EQ(reporter.EtaSeconds(snap), 0.0);  // nothing remaining
}

// ---------------------------------------------------------------------------
// benchdiff: spec grammar, flattening, gate.

TEST(BenchDiffTest, ParseFailOnSpec) {
  FailOnSpec ratio = std::move(ParseFailOnSpec(
                                   "fairem.matcher.predict_seconds.mean>1.10x"))
                         .value();
  EXPECT_EQ(ratio.metric, "fairem.matcher.predict_seconds.mean");
  EXPECT_EQ(ratio.op, '>');
  EXPECT_DOUBLE_EQ(ratio.threshold, 1.10);
  EXPECT_TRUE(ratio.ratio);

  FailOnSpec delta = std::move(ParseFailOnSpec("fairem.audit.failed < -2"))
                         .value();
  EXPECT_EQ(delta.metric, "fairem.audit.failed");
  EXPECT_EQ(delta.op, '<');
  EXPECT_DOUBLE_EQ(delta.threshold, -2.0);
  EXPECT_FALSE(delta.ratio);

  EXPECT_FALSE(ParseFailOnSpec("no-operator").ok());
  EXPECT_FALSE(ParseFailOnSpec(">1.0").ok());
  EXPECT_FALSE(ParseFailOnSpec("metric>").ok());
  EXPECT_FALSE(ParseFailOnSpec("metric>abc").ok());
}

TEST(BenchDiffTest, ParseFailOnSpecAbsoluteSuffix) {
  FailOnSpec ceil =
      std::move(ParseFailOnSpec("fairem.proc.peak_rss_mb>512abs")).value();
  EXPECT_EQ(ceil.metric, "fairem.proc.peak_rss_mb");
  EXPECT_EQ(ceil.op, '>');
  EXPECT_DOUBLE_EQ(ceil.threshold, 512.0);
  EXPECT_TRUE(ceil.absolute);
  EXPECT_FALSE(ceil.ratio);

  FailOnSpec floor =
      std::move(ParseFailOnSpec("fairem.profile.samples<100ABS")).value();
  EXPECT_EQ(floor.op, '<');
  EXPECT_DOUBLE_EQ(floor.threshold, 100.0);
  EXPECT_TRUE(floor.absolute);

  // A bare "abs" has no threshold digits; the x suffix still parses as a
  // ratio, never as a mangled absolute.
  EXPECT_FALSE(ParseFailOnSpec("metric>abs").ok());
  FailOnSpec ratio = std::move(ParseFailOnSpec("metric>1.5x")).value();
  EXPECT_TRUE(ratio.ratio);
  EXPECT_FALSE(ratio.absolute);
}

TEST(BenchDiffTest, AbsoluteSpecsGateOnTheNewValueAlone) {
  // Absolute clauses ignore the old snapshot entirely: they are budget
  // ceilings/floors, not regression comparisons.
  std::map<std::string, double> old_flat{{"rss", 900.0}, {"samples", 500.0}};
  std::map<std::string, double> new_flat{{"rss", 400.0}, {"samples", 50.0}};
  auto check = [&](const std::string& raw) {
    return std::move(CheckFailOnSpecs(
                         old_flat, new_flat,
                         {std::move(ParseFailOnSpec(raw)).value()}))
        .value();
  };
  EXPECT_EQ(check("rss>512abs").size(), 0u);       // 400 under the ceiling
  EXPECT_EQ(check("rss>256abs").size(), 1u);       // 400 over it
  EXPECT_EQ(check("samples<100abs").size(), 1u);   // 50 under the floor
  EXPECT_EQ(check("samples<25abs").size(), 0u);
  // Same numbers as a delta clause would trip on the -500 drop; absolute
  // does not care that the old value was 900.
  EXPECT_EQ(check("rss<0").size(), 1u);
}

TEST(BenchDiffTest, FlattenExpandsHistograms) {
  MetricsSnapshot snap;
  snap.counters["c"] = 3;
  snap.gauges["g"] = 0.5;
  snap.histograms["h"] = MakeHist({10.0}, {10, 0}, 50.0);
  std::map<std::string, double> flat = FlattenSnapshot(snap);
  EXPECT_DOUBLE_EQ(flat.at("c"), 3.0);
  EXPECT_DOUBLE_EQ(flat.at("g"), 0.5);
  EXPECT_DOUBLE_EQ(flat.at("h.mean"), 5.0);
  EXPECT_DOUBLE_EQ(flat.at("h.count"), 10.0);
  EXPECT_DOUBLE_EQ(flat.at("h.sum"), 50.0);
  EXPECT_DOUBLE_EQ(flat.at("h.p50"), 5.0);
  EXPECT_EQ(flat.count("h.p95"), 1u);
  EXPECT_EQ(flat.count("h.p99"), 1u);
}

TEST(BenchDiffTest, CheckFailOnSpecsTripsInBothDirections) {
  std::map<std::string, double> old_flat{{"lat", 1.0}, {"count", 100.0}};
  std::map<std::string, double> new_flat{{"lat", 1.3}, {"count", 80.0}};

  auto check = [&](const std::string& raw) {
    return std::move(CheckFailOnSpecs(
                         old_flat, new_flat,
                         {std::move(ParseFailOnSpec(raw)).value()}))
        .value();
  };
  EXPECT_EQ(check("lat>1.5x").size(), 0u);   // 1.3x is under the gate
  EXPECT_EQ(check("lat>1.1x").size(), 1u);   // regression: grew 30%
  EXPECT_EQ(check("count<0.9x").size(), 1u); // regression: shrank to 0.8x
  EXPECT_EQ(check("lat>0.5").size(), 0u);    // delta 0.3 under 0.5
  EXPECT_EQ(check("count<-30").size(), 0u);  // delta -20 above -30

  // A metric the new snapshot lost is an error, never a silent pass.
  Result<std::vector<std::string>> gone = CheckFailOnSpecs(
      old_flat, new_flat, {std::move(ParseFailOnSpec("renamed>0")).value()});
  EXPECT_TRUE(gone.status().IsInvalidArgument());

  // A metric absent from the old snapshot counts from zero: its ratio is
  // +inf, so appear-from-nothing trips '>' ratio gates.
  std::map<std::string, double> with_new = new_flat;
  with_new["fresh"] = 5.0;
  std::vector<std::string> fresh =
      std::move(CheckFailOnSpecs(
                    old_flat, with_new,
                    {std::move(ParseFailOnSpec("fresh>100x")).value()}))
          .value();
  EXPECT_EQ(fresh.size(), 1u);
}

TEST(BenchDiffTest, RenderTableHidesUnchangedAndMarksNewAndGone) {
  MetricsSnapshot old_snap;
  old_snap.counters["same"] = 5;
  old_snap.counters["grew"] = 5;
  old_snap.counters["gone"] = 1;
  MetricsSnapshot new_snap;
  new_snap.counters["same"] = 5;
  new_snap.counters["grew"] = 10;
  new_snap.counters["fresh"] = 2;
  std::vector<BenchDiffRow> rows = DiffSnapshotsForBench(old_snap, new_snap);
  std::string table = RenderBenchDiffTable(rows, /*changed_only=*/true);
  EXPECT_EQ(table.find("same"), std::string::npos);
  EXPECT_NE(table.find("1 unchanged metric hidden"), std::string::npos);
  EXPECT_NE(table.find("grew"), std::string::npos);
  EXPECT_NE(table.find("fresh (new)"), std::string::npos);
  EXPECT_NE(table.find("gone (gone)"), std::string::npos);
  std::string full = RenderBenchDiffTable(rows, /*changed_only=*/false);
  EXPECT_NE(full.find("same"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Supervisor integration: telemetry across the fork boundary.

TEST(SupervisorTelemetryTest, WorkerCountersAndSpansReachTheParent) {
  RobustGuard guard;
  Tracer::Global().Clear();
  Tracer::Global().set_enabled(true);
  uint64_t probe_before = CounterValue("fairem.test.worker_probe");

  Supervisor supervisor({});
  std::vector<Supervisor::Task> tasks{
      {"probe", []() -> Result<std::string> {
         Span span("fairem.test.worker_span");
         MetricsRegistry::Global()
             .GetCounter("fairem.test.worker_probe")
             ->Increment(3);
         return std::string("ok");
       }}};
  std::vector<TaskOutcome> outcomes = std::move(supervisor.Run(tasks)).value();
  Tracer::Global().set_enabled(false);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_EQ(outcomes[0].kind, TaskOutcome::Kind::kOk);
  EXPECT_EQ(outcomes[0].payload, "ok");

  // The increment happened in a forked worker; only telemetry shipping can
  // land it in this process.
  EXPECT_EQ(CounterValue("fairem.test.worker_probe") - probe_before, 3u);
  std::vector<TraceEvent> events = Tracer::Global().Events();
  auto it = std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.name == "fairem.test.worker_span";
  });
  ASSERT_NE(it, events.end());
  EXPECT_NE(it->track_id, 0u);  // rendered on the worker-pid track
  Tracer::Global().Clear();
}

TEST(SupervisorTelemetryTest, ShippedThenCrashedIsMergedExactlyOncePerAttempt) {
  RobustGuard guard;
  // The worker writes the sidecar, ships the full wire on the pipe, and
  // then crashes: the parent holds BOTH copies of the same delta plus a
  // crash exit that triggers a respawn — the dedup's worst case.
  ASSERT_TRUE(
      FailpointRegistry::Global().Configure("supervisor_ship=crash(1)").ok());
  uint64_t probe_before = CounterValue("fairem.test.dedup_probe");

  SupervisorOptions opts;
  opts.max_attempts = 2;
  Supervisor supervisor(opts);
  std::vector<Supervisor::Task> tasks{
      {"dedup", []() -> Result<std::string> {
         MetricsRegistry::Global()
             .GetCounter("fairem.test.dedup_probe")
             ->Increment();
         return std::string("ok");
       }}};
  std::vector<TaskOutcome> outcomes = std::move(supervisor.Run(tasks)).value();
  FailpointRegistry::Global().Clear();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, TaskOutcome::Kind::kCrashed);
  EXPECT_EQ(outcomes[0].attempts, 2);
  // One increment per attempt, never doubled by the pipe+sidecar pair.
  EXPECT_EQ(CounterValue("fairem.test.dedup_probe") - probe_before, 2u);
}

TEST(SupervisorTelemetryTest, SidecarIsSweptWhenThePipeCopyNeverLanded) {
  RobustGuard guard;
  std::string dir = FreshTempDir("fairem_telemetry_sweep");
  // Plant the sidecar a crashed attempt would have left, then run a task
  // that dies before shipping anything on the pipe.
  WorkerTelemetry planted;
  planted.task_key = "sweep";
  planted.attempt = 1;
  planted.pid = 999;
  planted.metrics.counters["fairem.test.sweep_probe"] = 7;
  ASSERT_TRUE(WriteTelemetrySidecar(dir, planted).ok());
  uint64_t probe_before = CounterValue("fairem.test.sweep_probe");
  uint64_t swept_before = CounterValue("fairem.telemetry.sidecars_swept");

  SupervisorOptions opts;
  opts.max_attempts = 1;
  opts.telemetry_dir = dir;
  Supervisor supervisor(opts);
  std::vector<Supervisor::Task> tasks{
      {"sweep", []() -> Result<std::string> { std::abort(); }}};
  std::vector<TaskOutcome> outcomes = std::move(supervisor.Run(tasks)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, TaskOutcome::Kind::kCrashed);
  EXPECT_EQ(CounterValue("fairem.test.sweep_probe") - probe_before, 7u);
  EXPECT_EQ(CounterValue("fairem.telemetry.sidecars_swept") - swept_before,
            1u);
  // Settled sidecars are always cleaned up.
  EXPECT_FALSE(
      std::filesystem::exists(TelemetrySidecarPath(dir, "sweep", 1)));
}

// ---------------------------------------------------------------------------
// Grid-level equivalence: --jobs N must count like a sequential sweep.

std::vector<MatcherKind> SkipAllExcept(const std::vector<MatcherKind>& keep) {
  std::vector<MatcherKind> skip;
  for (MatcherKind kind : AllMatcherKinds()) {
    if (std::find(keep.begin(), keep.end(), kind) == keep.end()) {
      skip.push_back(kind);
    }
  }
  return skip;
}

TEST(SupervisorTelemetryTest, ParallelGridCountersMatchSequential) {
  RobustGuard guard;
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.3)).value();
  GridRunOptions options;
  options.audit.reference = AuditReference::kComplement;
  options.skip = SkipAllExcept(
      {MatcherKind::kDT, MatcherKind::kNB, MatcherKind::kBooleanRule});

  const std::vector<const char*> kEquivalentCounters{
      "fairem.audit.cells_evaluated",
      "fairem.audit.cells_flagged",
      "fairem.harness.matcher_runs",
  };
  std::map<std::string, uint64_t> seq_delta, par_delta;

  std::map<std::string, uint64_t> before;
  for (const char* name : kEquivalentCounters) before[name] = CounterValue(name);
  std::string sequential =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  for (const char* name : kEquivalentCounters) {
    seq_delta[name] = CounterValue(name) - before[name];
  }

  options.jobs = 4;
  for (const char* name : kEquivalentCounters) before[name] = CounterValue(name);
  std::string parallel =
      std::move(UnfairnessGridReport(ds, false, options)).value();
  for (const char* name : kEquivalentCounters) {
    par_delta[name] = CounterValue(name) - before[name];
  }

  EXPECT_EQ(parallel, sequential);
  // The whole point of worker telemetry: the parallel run's counters are
  // indistinguishable from the sequential run's.
  EXPECT_EQ(par_delta, seq_delta);
  EXPECT_GT(seq_delta["fairem.audit.cells_evaluated"], 0u);
}

}  // namespace
}  // namespace fairem
