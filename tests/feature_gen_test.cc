#include "src/feature/feature_gen.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

struct Tables {
  Table a;
  Table b;
};

Tables MixedTables() {
  Schema schema =
      std::move(Schema::Make({"year", "venue", "title"})).value();
  Table a("a", schema);
  Table b("b", schema);
  EXPECT_TRUE(a.AppendValues(0, {"2001", "VLDB",
                                 "efficient query processing over large "
                                 "streaming data collections"}).ok());
  EXPECT_TRUE(a.AppendValues(1, {"1999", "SIGMOD",
                                 "adaptive indexing structures for high "
                                 "dimensional similarity search"}).ok());
  EXPECT_TRUE(b.AppendValues(0, {"2001", "VLDB",
                                 "efficient query processing over large "
                                 "streaming data collections"}).ok());
  EXPECT_TRUE(b.AppendValues(1, {"2000", "ICDE",
                                 "scalable mining of frequent patterns in "
                                 "transactional databases today"}).ok());
  return {std::move(a), std::move(b)};
}

TEST(TypeInferenceTest, DetectsNumericShortAndLong) {
  Tables t = MixedTables();
  EXPECT_EQ(*InferAttrType(t.a, t.b, "year"), AttrType::kNumeric);
  EXPECT_EQ(*InferAttrType(t.a, t.b, "venue"), AttrType::kShortString);
  EXPECT_EQ(*InferAttrType(t.a, t.b, "title"), AttrType::kLongString);
  EXPECT_FALSE(InferAttrType(t.a, t.b, "nope").ok());
}

TEST(TypeInferenceTest, AllNullColumnDefaultsToShortString) {
  Schema schema = std::move(Schema::Make({"x"})).value();
  Table a("a", schema);
  Table b("b", schema);
  Record r;
  r.entity_id = 0;
  r.cells = {std::nullopt};
  ASSERT_TRUE(a.Append(std::move(r)).ok());
  EXPECT_EQ(*InferAttrType(a, b, "x"), AttrType::kShortString);
}

TEST(FeatureGenTest, GeneratesTypeAppropriateFeatures) {
  Tables t = MixedTables();
  Result<std::vector<FeatureDef>> defs =
      GenerateFeatures(t.a, t.b, {"year", "venue", "title"});
  ASSERT_TRUE(defs.ok());
  int numeric = 0;
  int word_level = 0;
  for (const auto& d : *defs) {
    if (d.measure == SimilarityMeasure::kNumericAbsDiff) ++numeric;
    if (d.measure == SimilarityMeasure::kJaccardWord) ++word_level;
    EXPECT_FALSE(d.name().empty());
  }
  EXPECT_EQ(numeric, 1);     // only `year`
  EXPECT_EQ(word_level, 1);  // only `title`
}

TEST(FeatureExtractTest, IdenticalRowsScoreOnes) {
  Tables t = MixedTables();
  Result<std::vector<FeatureDef>> defs =
      GenerateFeatures(t.a, t.b, {"year", "venue", "title"});
  ASSERT_TRUE(defs.ok());
  Result<std::vector<double>> features =
      ExtractFeatures(*defs, t.a, t.b, 0, 0);
  ASSERT_TRUE(features.ok());
  for (double f : *features) EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(FeatureExtractTest, NullCellYieldsZero) {
  Schema schema = std::move(Schema::Make({"name"})).value();
  Table a("a", schema);
  Table b("b", schema);
  ASSERT_TRUE(a.AppendValues(0, {"alice"}).ok());
  Record r;
  r.entity_id = 0;
  r.cells = {std::nullopt};
  ASSERT_TRUE(b.Append(std::move(r)).ok());
  std::vector<FeatureDef> defs = {{"name", SimilarityMeasure::kLevenshtein}};
  Result<std::vector<double>> features = ExtractFeatures(defs, a, b, 0, 0);
  ASSERT_TRUE(features.ok());
  EXPECT_DOUBLE_EQ((*features)[0], 0.0);
}

TEST(FeatureTableTest, RowsAlignWithPairs) {
  Tables t = MixedTables();
  Result<std::vector<FeatureDef>> defs =
      GenerateFeatures(t.a, t.b, {"venue"});
  ASSERT_TRUE(defs.ok());
  std::vector<LabeledPair> pairs = {{0, 0, true}, {1, 1, false},
                                    {0, 1, false}};
  Result<FeatureTable> table =
      BuildFeatureTable(*defs, t.a, t.b, pairs);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 3u);
  EXPECT_EQ(table->labels, (std::vector<int>{1, 0, 0}));
  EXPECT_EQ(table->rows[0].size(), defs->size());
}

TEST(FeatureTableTest, FeatureValuesAreBounded) {
  Tables t = MixedTables();
  Result<std::vector<FeatureDef>> defs =
      GenerateFeatures(t.a, t.b, {"year", "venue", "title"});
  ASSERT_TRUE(defs.ok());
  for (size_t i = 0; i < t.a.num_rows(); ++i) {
    for (size_t j = 0; j < t.b.num_rows(); ++j) {
      Result<std::vector<double>> f = ExtractFeatures(*defs, t.a, t.b, i, j);
      ASSERT_TRUE(f.ok());
      for (double v : *f) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace fairem
