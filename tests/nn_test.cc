#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/attention.h"
#include "src/nn/gru.h"
#include "src/nn/mlp.h"
#include "src/nn/vecops.h"

namespace fairem {
namespace nn {
namespace {

TEST(VecOpsTest, DotNormCosine) {
  Vec a = {1.0f, 0.0f};
  Vec b = {0.0f, 1.0f};
  EXPECT_FLOAT_EQ(Dot(a, b), 0.0f);
  EXPECT_FLOAT_EQ(Norm(a), 1.0f);
  EXPECT_FLOAT_EQ(Cosine(a, a), 1.0f);
  EXPECT_FLOAT_EQ(Cosine(a, b), 0.0f);
  Vec zero = {0.0f, 0.0f};
  EXPECT_FLOAT_EQ(Cosine(a, zero), 0.0f);
}

TEST(VecOpsTest, SoftmaxSumsToOne) {
  std::vector<float> logits = {1.0f, 2.0f, 3.0f};
  SoftmaxInPlace(&logits);
  float sum = logits[0] + logits[1] + logits[2];
  EXPECT_NEAR(sum, 1.0f, 1e-6);
  EXPECT_GT(logits[2], logits[1]);
  EXPECT_GT(logits[1], logits[0]);
  std::vector<float> empty;
  SoftmaxInPlace(&empty);  // no crash
}

TEST(VecOpsTest, SoftmaxNumericallyStable) {
  std::vector<float> logits = {1000.0f, 1001.0f};
  SoftmaxInPlace(&logits);
  EXPECT_FALSE(std::isnan(logits[0]));
  EXPECT_NEAR(logits[0] + logits[1], 1.0f, 1e-6);
}

TEST(VecOpsTest, MeanOfVectors) {
  Vec m = Mean({{1.0f, 2.0f}, {3.0f, 4.0f}}, 2);
  EXPECT_FLOAT_EQ(m[0], 2.0f);
  EXPECT_FLOAT_EQ(m[1], 3.0f);
  Vec empty = Mean({}, 2);
  EXPECT_FLOAT_EQ(empty[0], 0.0f);
}

TEST(AttentionTest, SingleKeyReturnsItsValue) {
  Vec query = {1.0f, 0.0f};
  Vec out = Attend(query, {{0.5f, 0.5f}});
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_FLOAT_EQ(out[1], 0.5f);
}

TEST(AttentionTest, AttendsToMostSimilarKey) {
  Vec query = {1.0f, 0.0f};
  Vec out = Attend(query, {{10.0f, 0.0f}, {0.0f, 10.0f}});
  EXPECT_GT(out[0], out[1]);
}

TEST(AttentionTest, EmptyKeysYieldZero) {
  Vec out = Attend({1.0f, 2.0f}, {});
  EXPECT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
}

TEST(AttentionTest, AlignmentSimilarityEdgeCases) {
  EXPECT_FLOAT_EQ(AlignmentSimilarity({}, {}), 1.0f);
  EXPECT_FLOAT_EQ(AlignmentSimilarity({{1.0f}}, {}), 0.0f);
  // Identical singleton lists align perfectly.
  EXPECT_NEAR(AlignmentSimilarity({{1.0f, 0.0f}}, {{1.0f, 0.0f}}), 1.0f,
              1e-6);
}

TEST(GruTest, DeterministicAndShapeCorrect) {
  Rng rng1(5);
  Rng rng2(5);
  GruCell g1(4, 8, &rng1);
  GruCell g2(4, 8, &rng2);
  std::vector<Vec> seq = {{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}};
  Vec h1 = g1.RunFinal(seq);
  Vec h2 = g2.RunFinal(seq);
  ASSERT_EQ(h1.size(), 8u);
  for (size_t i = 0; i < h1.size(); ++i) EXPECT_FLOAT_EQ(h1[i], h2[i]);
}

TEST(GruTest, EmptySequenceGivesZeroState) {
  Rng rng(5);
  GruCell g(4, 6, &rng);
  Vec h = g.RunFinal({});
  for (float v : h) EXPECT_FLOAT_EQ(v, 0.0f);
  Vec m = g.RunMean({});
  for (float v : m) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(GruTest, OrderSensitive) {
  Rng rng(5);
  GruCell g(2, 8, &rng);
  std::vector<Vec> ab = {{1, 0}, {0, 1}};
  std::vector<Vec> ba = {{0, 1}, {1, 0}};
  Vec h_ab = g.RunFinal(ab);
  Vec h_ba = g.RunFinal(ba);
  float diff = 0.0f;
  for (size_t i = 0; i < h_ab.size(); ++i) {
    diff += std::fabs(h_ab[i] - h_ba[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(GruTest, StatesStayBounded) {
  Rng rng(9);
  GruCell g(3, 5, &rng);
  std::vector<Vec> seq(200, Vec{1.0f, -1.0f, 0.5f});
  Vec h = g.RunFinal(seq);
  for (float v : h) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(MlpTest, LearnsXor) {
  // XOR requires the hidden layer: a real nonlinearity test.
  std::vector<std::vector<float>> x = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<int> y = {0, 1, 1, 0};
  MlpOptions options;
  options.hidden = {8};
  options.epochs = 800;
  options.learning_rate = 0.05;
  options.positive_fraction = 0.5;
  Mlp mlp(options);
  Rng rng(21);
  ASSERT_TRUE(mlp.Fit(x, y, &rng).ok());
  EXPECT_LT(mlp.Predict({0, 0}), 0.5);
  EXPECT_GT(mlp.Predict({0, 1}), 0.5);
  EXPECT_GT(mlp.Predict({1, 0}), 0.5);
  EXPECT_LT(mlp.Predict({1, 1}), 0.5);
}

TEST(MlpTest, GradientMatchesFiniteDifference) {
  MlpOptions options;
  options.hidden = {5};
  Mlp mlp(options);
  Rng rng(31);
  mlp.InitWeights(3, &rng);
  std::vector<float> x = {0.3f, -0.7f, 1.2f};
  std::vector<double> grad;
  mlp.LossAndGradients(x, 1, &grad);
  constexpr double kEps = 1e-5;
  for (size_t p = 0; p < mlp.params().size(); p += 3) {
    double original = mlp.params()[p];
    mlp.params()[p] = original + kEps;
    double plus = mlp.LossAndGradients(x, 1, nullptr);
    mlp.params()[p] = original - kEps;
    double minus = mlp.LossAndGradients(x, 1, nullptr);
    mlp.params()[p] = original;
    double numeric = (plus - minus) / (2 * kEps);
    EXPECT_NEAR(grad[p], numeric, 1e-4) << "param " << p;
  }
}

TEST(MlpTest, RejectsBadInput) {
  Mlp mlp;
  Rng rng(1);
  EXPECT_FALSE(mlp.Fit({}, {}, &rng).ok());
  EXPECT_FALSE(mlp.Fit({{1.0f}}, {1, 0}, &rng).ok());
}

TEST(MlpTest, PredictionsBounded) {
  Mlp mlp;
  Rng rng(41);
  std::vector<std::vector<float>> x = {{0.1f}, {0.9f}};
  std::vector<int> y = {0, 1};
  ASSERT_TRUE(mlp.Fit(x, y, &rng).ok());
  for (float v = -5.0f; v <= 5.0f; v += 0.5f) {
    double p = mlp.Predict({v});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace nn
}  // namespace fairem
