#include <gtest/gtest.h>

#include "src/report/grid.h"
#include "src/report/heatmap.h"
#include "src/report/table_printer.h"

namespace fairem {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"name", "v"});
  printer.AddRow({"short", "1"});
  printer.AddRow({"a much longer cell", "2"});
  std::string out = printer.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("a much longer cell"), std::string::npos);
  EXPECT_EQ(printer.num_rows(), 2u);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter printer({"a", "b", "c"});
  printer.AddRow({"only one"});
  EXPECT_NO_FATAL_FAILURE(printer.ToString());
  EXPECT_NO_FATAL_FAILURE(printer.ToMarkdown());
}

TEST(TablePrinterTest, MarkdownShape) {
  TablePrinter printer({"x", "y"});
  printer.AddRow({"1", "2"});
  std::string md = printer.ToMarkdown();
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

AuditReport ReportWithUnfairCell(const std::string& group,
                                 FairnessMeasure m) {
  AuditReport report;
  AuditEntry e;
  e.group_label = group;
  e.measure = m;
  e.defined = true;
  e.unfair = true;
  e.disparity = 0.5;
  report.entries.push_back(e);
  AuditEntry fair = e;
  fair.group_label = group + "_fair";
  fair.unfair = false;
  report.entries.push_back(fair);
  return report;
}

TEST(UnfairnessGridTest, MarksOnlyUnfairCells) {
  UnfairnessGrid grid;
  grid.Mark("DI", ReportWithUnfairCell(
                      "Country", FairnessMeasure::kTruePositiveRateParity));
  EXPECT_EQ(grid.num_marks(), 1u);
  std::string out = grid.Render();
  EXPECT_NE(out.find("Country"), std::string::npos);
  EXPECT_NE(out.find("DI"), std::string::npos);
  // The fair column renders as dots, not markers.
  EXPECT_NE(out.find("Country_fair"), std::string::npos);
}

TEST(UnfairnessGridTest, MultipleMarkersJoinWithCommas) {
  UnfairnessGrid grid;
  AuditReport r =
      ReportWithUnfairCell("G", FairnessMeasure::kAccuracyParity);
  grid.Mark("DI", r);
  grid.Mark("GN", r);
  grid.Mark("DI", r);  // duplicate ignored
  EXPECT_EQ(grid.num_marks(), 2u);
  EXPECT_NE(grid.Render().find("DI,GN"), std::string::npos);
}

TEST(UnfairnessGridTest, EmptyGridRendersEmpty) {
  UnfairnessGrid grid;
  EXPECT_EQ(grid.Render(), "");
}

TEST(MatcherMarkerTest, KnownAndFallback) {
  EXPECT_EQ(MatcherMarker("Ditto"), "DI");
  EXPECT_EQ(MatcherMarker("BooleanRuleMatcher"), "BR");
  EXPECT_EQ(MatcherMarker("MCAN"), "MC");
  EXPECT_EQ(MatcherMarker("zz_custom"), "ZZ");
}

TEST(HeatmapTest, RendersUtilityAndCounts) {
  ThresholdHeatmap heatmap({0.5, 0.6});
  std::vector<ThresholdPoint> sweep(2);
  sweep[0] = {0.5, 0.84, true, 3};
  sweep[1] = {0.6, 0.71, true, 5};
  heatmap.AddRow("Ditto", sweep);
  std::string out = heatmap.Render();
  EXPECT_NE(out.find("0.84(3)"), std::string::npos);
  EXPECT_NE(out.find("0.71(5)"), std::string::npos);
  EXPECT_NE(out.find("Ditto"), std::string::npos);
}

TEST(HeatmapTest, UndefinedUtilityRendersDash) {
  ThresholdHeatmap heatmap({0.5});
  std::vector<ThresholdPoint> sweep(1);
  sweep[0] = {0.5, 0.0, false, 0};
  heatmap.AddRow("X", sweep);
  EXPECT_NE(heatmap.Render().find("-(0)"), std::string::npos);
}

}  // namespace
}  // namespace fairem
