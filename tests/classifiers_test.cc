#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/ml/classifier.h"
#include "src/ml/decision_tree.h"
#include "src/ml/linear_models.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/random_forest.h"

namespace fairem {
namespace {

/// A linearly separable 2-d problem: positives cluster at (0.9, 0.8),
/// negatives at (0.2, 0.1), with some spread.
void MakeSeparable(std::vector<std::vector<double>>* x, std::vector<int>* y,
                   int n_per_class, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < n_per_class; ++i) {
    x->push_back({0.9 + 0.05 * rng.NextGaussian(),
                  0.8 + 0.05 * rng.NextGaussian()});
    y->push_back(1);
    x->push_back({0.2 + 0.05 * rng.NextGaussian(),
                  0.1 + 0.05 * rng.NextGaussian()});
    y->push_back(0);
  }
}

double AccuracyOf(const Classifier& clf,
                  const std::vector<std::vector<double>>& x,
                  const std::vector<int>& y) {
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    int pred = clf.PredictScore(x[i]) >= 0.5 ? 1 : 0;
    if (pred == y[i]) ++correct;
  }
  return static_cast<double>(correct) / x.size();
}

using Factory = std::function<std::unique_ptr<Classifier>()>;

class ClassifierProperty
    : public ::testing::TestWithParam<std::pair<const char*, Factory>> {};

TEST_P(ClassifierProperty, LearnsSeparableData) {
  std::unique_ptr<Classifier> clf = GetParam().second();
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeSeparable(&x, &y, 60, 11);
  Rng rng(5);
  ASSERT_TRUE(clf->Fit(x, y, &rng).ok());
  std::vector<std::vector<double>> xt;
  std::vector<int> yt;
  MakeSeparable(&xt, &yt, 30, 77);
  EXPECT_GE(AccuracyOf(*clf, xt, yt), 0.95) << clf->name();
}

TEST_P(ClassifierProperty, ScoresBounded) {
  std::unique_ptr<Classifier> clf = GetParam().second();
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeSeparable(&x, &y, 40, 13);
  Rng rng(7);
  ASSERT_TRUE(clf->Fit(x, y, &rng).ok());
  Rng probe(17);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> v = {probe.NextDouble(-2, 2), probe.NextDouble(-2, 2)};
    double s = clf->PredictScore(v);
    EXPECT_GE(s, 0.0) << clf->name();
    EXPECT_LE(s, 1.0) << clf->name();
  }
}

TEST_P(ClassifierProperty, RejectsBadInput) {
  std::unique_ptr<Classifier> clf = GetParam().second();
  Rng rng(1);
  std::vector<std::vector<double>> empty;
  std::vector<int> no_labels;
  EXPECT_FALSE(clf->Fit(empty, no_labels, &rng).ok());
  std::vector<std::vector<double>> x = {{1.0}, {2.0}};
  std::vector<int> wrong_count = {1};
  EXPECT_FALSE(clf->Fit(x, wrong_count, &rng).ok());
  std::vector<std::vector<double>> ragged = {{1.0}, {2.0, 3.0}};
  std::vector<int> y = {0, 1};
  EXPECT_FALSE(clf->Fit(ragged, y, &rng).ok());
  std::vector<int> bad_labels = {0, 7};
  std::vector<std::vector<double>> ok_x = {{1.0}, {2.0}};
  EXPECT_FALSE(clf->Fit(ok_x, bad_labels, &rng).ok());
}

TEST_P(ClassifierProperty, DeterministicForSeed) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeSeparable(&x, &y, 40, 3);
  auto run = [&] {
    std::unique_ptr<Classifier> clf = GetParam().second();
    Rng rng(123);
    EXPECT_TRUE(clf->Fit(x, y, &rng).ok());
    std::vector<double> scores;
    for (const auto& row : x) scores.push_back(clf->PredictScore(row));
    return scores;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    AllClassifiers, ClassifierProperty,
    ::testing::Values(
        std::make_pair("decision_tree",
                       Factory([] {
                         return std::unique_ptr<Classifier>(
                             std::make_unique<DecisionTree>());
                       })),
        std::make_pair("random_forest",
                       Factory([] {
                         return std::unique_ptr<Classifier>(
                             std::make_unique<RandomForest>());
                       })),
        std::make_pair("logistic_regression",
                       Factory([] {
                         return std::unique_ptr<Classifier>(
                             std::make_unique<LogisticRegression>());
                       })),
        std::make_pair("linear_regression",
                       Factory([] {
                         return std::unique_ptr<Classifier>(
                             std::make_unique<LinearRegression>());
                       })),
        std::make_pair("naive_bayes",
                       Factory([] {
                         return std::unique_ptr<Classifier>(
                             std::make_unique<GaussianNaiveBayes>());
                       })),
        std::make_pair("svm", Factory([] {
                         return std::unique_ptr<Classifier>(
                             std::make_unique<Svm>());
                       }))),
    [](const auto& info) { return std::string(info.param.first); });

TEST(DecisionTreeTest, PureLeafScores) {
  DecisionTree tree;
  std::vector<std::vector<double>> x = {{0.0}, {0.1}, {0.9}, {1.0}};
  std::vector<int> y = {0, 0, 1, 1};
  Rng rng(2);
  ASSERT_TRUE(tree.Fit(x, y, &rng).ok());
  EXPECT_DOUBLE_EQ(tree.PredictScore({0.05}), 0.0);
  EXPECT_DOUBLE_EQ(tree.PredictScore({0.95}), 1.0);
  EXPECT_GT(tree.num_nodes(), 1u);
}

TEST(DecisionTreeTest, FeatureImportancesSumToOne) {
  DecisionTree tree;
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeSeparable(&x, &y, 50, 9);
  Rng rng(3);
  ASSERT_TRUE(tree.Fit(x, y, &rng).ok());
  std::vector<double> imp = tree.FeatureImportances(2);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(DecisionTreeTest, ConstantLabelsYieldConstantScore) {
  DecisionTree tree;
  std::vector<std::vector<double>> x = {{0.1}, {0.5}, {0.9}};
  std::vector<int> y = {1, 1, 1};
  Rng rng(4);
  ASSERT_TRUE(tree.Fit(x, y, &rng).ok());
  EXPECT_DOUBLE_EQ(tree.PredictScore({0.3}), 1.0);
}

TEST(RandomForestTest, BuildsRequestedTrees) {
  RandomForestOptions options;
  options.num_trees = 7;
  RandomForest forest(options);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeSeparable(&x, &y, 30, 21);
  Rng rng(6);
  ASSERT_TRUE(forest.Fit(x, y, &rng).ok());
  EXPECT_EQ(forest.num_trees(), 7u);
}

TEST(NaiveBayesTest, RequiresBothClasses) {
  GaussianNaiveBayes nb;
  std::vector<std::vector<double>> x = {{0.1}, {0.2}};
  std::vector<int> y = {1, 1};
  Rng rng(8);
  EXPECT_FALSE(nb.Fit(x, y, &rng).ok());
}

TEST(LinearRegressionTest, FitsExactLine) {
  // y = x exactly: closed-form solution should recover it.
  LinearRegression lr;
  std::vector<std::vector<double>> x = {{0.0}, {1.0}, {0.2}, {0.9}};
  std::vector<int> y = {0, 1, 0, 1};
  Rng rng(10);
  ASSERT_TRUE(lr.Fit(x, y, &rng).ok());
  EXPECT_GT(lr.PredictScore({1.0}), 0.8);
  EXPECT_LT(lr.PredictScore({0.0}), 0.2);
}

TEST(SvmTest, MarginSignMatchesClass) {
  Svm svm;
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeSeparable(&x, &y, 50, 15);
  Rng rng(12);
  ASSERT_TRUE(svm.Fit(x, y, &rng).ok());
  EXPECT_GT(svm.Margin({0.9, 0.8}), 0.0);
  EXPECT_LT(svm.Margin({0.2, 0.1}), 0.0);
}

TEST(ImbalanceTest, GradientModelsStillFindRarePositives) {
  // 2% positives, separable: the balanced options must prevent collapse.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng gen(33);
  for (int i = 0; i < 1000; ++i) {
    x.push_back({0.2 + 0.05 * gen.NextGaussian()});
    y.push_back(0);
  }
  for (int i = 0; i < 20; ++i) {
    x.push_back({0.9 + 0.02 * gen.NextGaussian()});
    y.push_back(1);
  }
  LogisticRegression logreg;
  Rng rng(1);
  ASSERT_TRUE(logreg.Fit(x, y, &rng).ok());
  EXPECT_GT(logreg.PredictScore({0.9}), 0.5);
  EXPECT_LT(logreg.PredictScore({0.2}), 0.5);
  Svm svm;
  Rng rng2(2);
  ASSERT_TRUE(svm.Fit(x, y, &rng2).ok());
  EXPECT_GT(svm.PredictScore({0.9}), 0.5);
  EXPECT_LT(svm.PredictScore({0.2}), 0.5);
}

}  // namespace
}  // namespace fairem
