#include "src/matcher/matcher.h"

#include <gtest/gtest.h>

#include "src/matcher/dedupe_matcher.h"
#include "src/matcher/ml_matchers.h"
#include "src/matcher/rule_matcher.h"
#include "src/matcher/serialize.h"

namespace fairem {
namespace {

/// A tiny structured matching task with an obvious decision boundary.
EMDataset TinyTask() {
  Schema schema = std::move(Schema::Make({"name", "city", "grp"})).value();
  EMDataset ds;
  ds.name = "tiny";
  ds.table_a = Table("a", schema);
  ds.table_b = Table("b", schema);
  const char* names[] = {"alice brown", "bob smith",   "carla jones",
                         "dan kim",     "erin oneil",  "frank potter",
                         "gina rossi",  "hank turner", "iris vogel",
                         "jack walsh"};
  const char* cities[] = {"rochester", "chicago", "boston", "albany",
                          "denver",    "austin",  "miami",  "seattle",
                          "portland",  "tucson"};
  for (int i = 0; i < 10; ++i) {
    std::string g = i % 2 == 0 ? "g0" : "g1";
    EXPECT_TRUE(ds.table_a.AppendValues(i, {names[i], cities[i], g}).ok());
    // B-side: same name with a small typo.
    std::string noisy = std::string(names[i]);
    noisy[noisy.size() / 2] = 'x';
    EXPECT_TRUE(ds.table_b.AppendValues(i, {noisy, cities[i], g}).ok());
  }
  ds.matching_attrs = {"name", "city"};
  ds.sensitive_attr = "grp";
  std::vector<LabeledPair> pairs;
  for (size_t i = 0; i < 10; ++i) {
    pairs.push_back({i, i, true});
    pairs.push_back({i, (i + 3) % 10, false});
    pairs.push_back({i, (i + 5) % 10, false});
  }
  // Same pairs in train and test: the point is exercising the machinery.
  ds.train = pairs;
  ds.test = pairs;
  return ds;
}

TEST(RegistryTest, NamesAndFamiliesForAll13) {
  std::vector<MatcherKind> kinds = AllMatcherKinds();
  EXPECT_EQ(kinds.size(), 13u);
  int neural = 0;
  int non_neural = 0;
  int rule = 0;
  for (MatcherKind kind : kinds) {
    std::unique_ptr<Matcher> m = CreateMatcher(kind);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->name(), MatcherKindName(kind));
    EXPECT_EQ(m->family(), FamilyOf(kind));
    switch (m->family()) {
      case MatcherFamily::kNeural:
        ++neural;
        break;
      case MatcherFamily::kNonNeural:
        ++non_neural;
        break;
      case MatcherFamily::kRuleBased:
        ++rule;
        break;
    }
  }
  // Table 3: 1 rule-based, 7 non-neural, 5 neural.
  EXPECT_EQ(rule, 1);
  EXPECT_EQ(non_neural, 7);
  EXPECT_EQ(neural, 5);
  EXPECT_EQ(NeuralMatcherKinds().size(), 5u);
  EXPECT_EQ(NonNeuralMatcherKinds().size(), 7u);
}

class MatcherContract : public ::testing::TestWithParam<MatcherKind> {};

TEST_P(MatcherContract, FitPredictOnTinyTask) {
  EMDataset ds = TinyTask();
  std::unique_ptr<Matcher> matcher = CreateMatcher(GetParam());
  if (!matcher->SupportsDataset(ds)) GTEST_SKIP();
  Rng rng(77);
  ASSERT_TRUE(matcher->Fit(ds, &rng).ok()) << matcher->name();
  Result<std::vector<double>> scores = matcher->PredictScores(ds, ds.test);
  ASSERT_TRUE(scores.ok()) << matcher->name();
  ASSERT_EQ(scores->size(), ds.test.size());
  double match_mean = 0.0;
  double non_match_mean = 0.0;
  int n_match = 0;
  int n_non = 0;
  for (size_t i = 0; i < ds.test.size(); ++i) {
    double s = (*scores)[i];
    EXPECT_GE(s, 0.0) << matcher->name();
    EXPECT_LE(s, 1.0) << matcher->name();
    if (ds.test[i].is_match) {
      match_mean += s;
      ++n_match;
    } else {
      non_match_mean += s;
      ++n_non;
    }
  }
  // On this trivially separable task every matcher must at least rank
  // matches above non-matches on average.
  EXPECT_GT(match_mean / n_match, non_match_mean / n_non) << matcher->name();
}

TEST_P(MatcherContract, ScoreBeforeFitFails) {
  EMDataset ds = TinyTask();
  std::unique_ptr<Matcher> matcher = CreateMatcher(GetParam());
  Result<double> score = matcher->ScorePair(ds, 0, 0);
  EXPECT_FALSE(score.ok()) << matcher->name();
}

INSTANTIATE_TEST_SUITE_P(
    All13, MatcherContract, ::testing::ValuesIn(AllMatcherKinds()),
    [](const auto& info) { return std::string(MatcherKindName(info.param)); });

TEST(RuleMatcherTest, AutoRulesCoverEveryAttr) {
  EMDataset ds = TinyTask();
  BooleanRuleMatcher matcher;
  Rng rng(1);
  ASSERT_TRUE(matcher.Fit(ds, &rng).ok());
  EXPECT_EQ(matcher.predicates().size(), ds.matching_attrs.size());
}

TEST(RuleMatcherTest, UserRulesAreKept) {
  EMDataset ds = TinyTask();
  BooleanRuleMatcher matcher(
      {{"city", SimilarityMeasure::kExactMatch, 1.0}});
  Rng rng(1);
  ASSERT_TRUE(matcher.Fit(ds, &rng).ok());
  ASSERT_EQ(matcher.predicates().size(), 1u);
  // Same city -> score 1; different city -> below 0.5 contribution rules.
  EXPECT_DOUBLE_EQ(*matcher.ScorePair(ds, 0, 0), 1.0);
  EXPECT_LT(*matcher.ScorePair(ds, 0, 3), 1.0);
}

TEST(RuleMatcherTest, ConjunctionTakesMinimum) {
  EMDataset ds = TinyTask();
  BooleanRuleMatcher matcher({{"name", SimilarityMeasure::kLevenshtein, 0.5},
                              {"city", SimilarityMeasure::kExactMatch, 1.0}});
  Rng rng(1);
  ASSERT_TRUE(matcher.Fit(ds, &rng).ok());
  // Pair (0, 3): different name and city; score is the min predicate score.
  double score = *matcher.ScorePair(ds, 0, 3);
  EXPECT_LT(score, 0.5);
}

TEST(DedupeMatcherTest, DeclaresUnscalableDatasets) {
  DedupeMatcher matcher;
  EMDataset small = TinyTask();
  EXPECT_TRUE(matcher.SupportsDataset(small));
  // Too many rows.
  EMDataset big = TinyTask();
  for (int i = 10; i < static_cast<int>(DedupeMatcher::kMaxRows) + 11; ++i) {
    ASSERT_TRUE(big.table_a.AppendValues(i, {"x", "y", "g0"}).ok());
  }
  EXPECT_FALSE(matcher.SupportsDataset(big));
  EXPECT_FALSE(matcher.Fit(big, nullptr).ok());
}

TEST(DedupeMatcherTest, ClusteringLiftsTransitivePairs) {
  EMDataset ds = TinyTask();
  DedupeMatcher matcher;
  Rng rng(9);
  ASSERT_TRUE(matcher.Fit(ds, &rng).ok());
  Result<std::vector<double>> scores = matcher.PredictScores(ds, ds.test);
  ASSERT_TRUE(scores.ok());
  // Pairs in the same single-linkage cluster score at least the linkage
  // threshold; at minimum the call must succeed and stay in bounds.
  for (double s : *scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(SerializeTest, DittoStyleTokens) {
  EMDataset ds = TinyTask();
  Result<std::vector<std::string>> tokens =
      SerializeRecord(ds.table_a, 0, {"name", "city"});
  ASSERT_TRUE(tokens.ok());
  // [col] name [val] alice brown [col] city [val] rochester
  ASSERT_GE(tokens->size(), 8u);
  EXPECT_EQ((*tokens)[0], "[col]");
  EXPECT_EQ((*tokens)[1], "name");
  EXPECT_EQ((*tokens)[2], "[val]");
  EXPECT_EQ((*tokens)[3], "alice");
}

TEST(SerializeTest, NullCellsSerializeToNoValueTokens) {
  Schema schema = std::move(Schema::Make({"a"})).value();
  Table t("t", schema);
  Record r;
  r.entity_id = 0;
  r.cells = {std::nullopt};
  ASSERT_TRUE(t.Append(std::move(r)).ok());
  Result<std::vector<std::string>> tokens = SerializeRecord(t, 0, {"a"});
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 3u);  // just [col] a [val]
  Result<std::vector<std::string>> attr_tokens = AttributeTokens(t, 0, "a");
  ASSERT_TRUE(attr_tokens.ok());
  EXPECT_TRUE(attr_tokens->empty());
}

TEST(MatcherFamilyTest, Names) {
  EXPECT_STREQ(MatcherFamilyName(MatcherFamily::kRuleBased), "rule-based");
  EXPECT_STREQ(MatcherFamilyName(MatcherFamily::kNeural), "neural");
}

}  // namespace
}  // namespace fairem
