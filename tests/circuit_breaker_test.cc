// Unit tests for the router's circuit-breaker state machine (DESIGN.md
// §15). Time is injected, so every transition is pinned deterministically:
// closed -> open on consecutive failures, open -> half-open after the
// cooldown, half-open probe success closes / failure re-opens.

#include "src/robust/circuit_breaker.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

CircuitBreakerOptions SmallOptions() {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_cooldown_s = 1.0;
  options.half_open_max_probes = 1;
  return options;
}

TEST(CircuitBreakerTest, StartsClosedAndAllows) {
  CircuitBreaker breaker(SmallOptions());
  EXPECT_EQ(breaker.state(0.0), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(0.0));
  EXPECT_TRUE(breaker.AllowRequest(0.0));  // closed never rations
}

TEST(CircuitBreakerTest, ConsecutiveFailuresTrip) {
  CircuitBreaker breaker(SmallOptions());
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(0.1);
  EXPECT_EQ(breaker.state(0.1), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2);
  breaker.RecordFailure(0.2);
  EXPECT_EQ(breaker.state(0.2), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(0.2));
  EXPECT_EQ(breaker.times_opened(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsTheStreak) {
  CircuitBreaker breaker(SmallOptions());
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(0.1);
  breaker.RecordSuccess(0.2);  // streak broken: not consecutive any more
  breaker.RecordFailure(0.3);
  breaker.RecordFailure(0.4);
  EXPECT_EQ(breaker.state(0.4), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(0.4));
}

TEST(CircuitBreakerTest, CooldownMovesOpenToHalfOpen) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0.0);
  EXPECT_EQ(breaker.state(0.5), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(0.99));
  EXPECT_EQ(breaker.state(1.0), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest(1.0));
}

TEST(CircuitBreakerTest, HalfOpenRationsProbes) {
  CircuitBreakerOptions options = SmallOptions();
  options.half_open_max_probes = 2;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0.0);
  EXPECT_TRUE(breaker.AllowRequest(1.0));
  EXPECT_TRUE(breaker.AllowRequest(1.0));
  EXPECT_FALSE(breaker.AllowRequest(1.0));  // both probe slots out
}

TEST(CircuitBreakerTest, HalfOpenSuccessCloses) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0.0);
  ASSERT_TRUE(breaker.AllowRequest(1.0));
  breaker.RecordSuccess(1.1);
  EXPECT_EQ(breaker.state(1.1), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_TRUE(breaker.AllowRequest(1.1));
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0.0);
  ASSERT_TRUE(breaker.AllowRequest(1.0));
  breaker.RecordFailure(1.1);
  EXPECT_EQ(breaker.state(1.1), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  // Cooldown restarts from the re-open, not the original trip.
  EXPECT_EQ(breaker.state(1.9), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.state(2.1), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, LateFailuresWhileOpenDoNotResetCooldown) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0.0);
  // In-flight requests settling late keep failing while the breaker is
  // open; the probe at cooldown expiry must still happen.
  breaker.RecordFailure(0.5);
  breaker.RecordFailure(0.9);
  EXPECT_EQ(breaker.state(1.0), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest(1.0));
}

TEST(CircuitBreakerTest, DegenerateOptionsAreClamped) {
  CircuitBreakerOptions options;
  options.failure_threshold = 0;    // clamped to 1
  options.open_cooldown_s = -1.0;   // clamped to 0: immediate half-open
  options.half_open_max_probes = 0; // clamped to 1
  CircuitBreaker breaker(options);
  breaker.RecordFailure(0.0);
  EXPECT_EQ(breaker.state(0.0), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest(0.0));
  EXPECT_FALSE(breaker.AllowRequest(0.0));
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kHalfOpen),
               "half-open");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kOpen),
               "open");
}

}  // namespace
}  // namespace fairem
