#include "src/util/status.h"

#include <gtest/gtest.h>

#include "src/util/result.h"

namespace fairem {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::UndefinedStatistic("x").code(),
            StatusCode::kUndefinedStatistic);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUndefinedStatistic),
               "UndefinedStatistic");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubled(Result<int> in) {
  FAIREM_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  EXPECT_EQ(*Doubled(21), 42);
  Result<int> err = Doubled(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace fairem
