#include "src/core/disparity.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace fairem {
namespace {

constexpr FairnessMeasure kHigherBetter =
    FairnessMeasure::kTruePositiveRateParity;
constexpr FairnessMeasure kLowerBetter =
    FairnessMeasure::kFalseDiscoveryRateParity;

TEST(DisparityTest, SubtractionHigherBetter) {
  // Eq. 1: max(0, overall - group).
  EXPECT_DOUBLE_EQ(
      *ComputeDisparity(kHigherBetter, 0.9, 0.7, DisparityMode::kSubtraction),
      0.2);
  // Group doing better is not unfair.
  EXPECT_DOUBLE_EQ(
      *ComputeDisparity(kHigherBetter, 0.7, 0.9, DisparityMode::kSubtraction),
      0.0);
}

TEST(DisparityTest, SubtractionLowerBetterSwapsOperands) {
  // Eq. 4 for FNRP-style measures: max(0, group - overall).
  EXPECT_DOUBLE_EQ(
      *ComputeDisparity(kLowerBetter, 0.1, 0.3, DisparityMode::kSubtraction),
      0.2);
  EXPECT_DOUBLE_EQ(
      *ComputeDisparity(kLowerBetter, 0.3, 0.1, DisparityMode::kSubtraction),
      0.0);
}

TEST(DisparityTest, DivisionHigherBetter) {
  // Eq. 3: max(0, 1 - group/overall).
  EXPECT_NEAR(
      *ComputeDisparity(kHigherBetter, 0.8, 0.6, DisparityMode::kDivision),
      0.25, 1e-12);
  EXPECT_DOUBLE_EQ(
      *ComputeDisparity(kHigherBetter, 0.6, 0.8, DisparityMode::kDivision),
      0.0);
}

TEST(DisparityTest, DivisionLowerBetterSwapsRatio) {
  // For FDRP: max(0, 1 - overall/group).
  EXPECT_NEAR(
      *ComputeDisparity(kLowerBetter, 0.2, 0.4, DisparityMode::kDivision),
      0.5, 1e-12);
  EXPECT_DOUBLE_EQ(
      *ComputeDisparity(kLowerBetter, 0.4, 0.2, DisparityMode::kDivision),
      0.0);
}

TEST(DisparityTest, DivisionByZeroReference) {
  EXPECT_TRUE(ComputeDisparity(kHigherBetter, 0.0, 0.5,
                               DisparityMode::kDivision)
                  .status()
                  .IsUndefinedStatistic());
  // 0/0: both perfect, no disparity.
  EXPECT_DOUBLE_EQ(
      *ComputeDisparity(kHigherBetter, 0.0, 0.0, DisparityMode::kDivision),
      0.0);
}

TEST(DisparityTest, SignedVariantKeepsNegative) {
  EXPECT_DOUBLE_EQ(*ComputeSignedDisparity(kHigherBetter, 0.7, 0.9,
                                           DisparityMode::kSubtraction),
                   -0.2);
}

TEST(DisparityTest, ClampedIsMaxOfZeroAndSigned) {
  for (double overall : {0.1, 0.5, 0.9}) {
    for (double group : {0.1, 0.5, 0.9}) {
      for (DisparityMode mode :
           {DisparityMode::kSubtraction, DisparityMode::kDivision}) {
        Result<double> signed_d =
            ComputeSignedDisparity(kHigherBetter, overall, group, mode);
        Result<double> clamped =
            ComputeDisparity(kHigherBetter, overall, group, mode);
        ASSERT_TRUE(signed_d.ok());
        ASSERT_TRUE(clamped.ok());
        EXPECT_DOUBLE_EQ(*clamped, std::max(0.0, *signed_d));
      }
    }
  }
}

// The between-group convention, verified against literal cells of the
// paper's Tables 5 and 6.
TEST(BetweenGroupTest, PaperTable5DittoTpr) {
  // Ditto: TPR Afr 0.76, Cauc 0.82 -> sub 0.06, div 0.08.
  EXPECT_NEAR(*BetweenGroupDisparity(kHigherBetter, 0.76, 0.82,
                                     DisparityMode::kSubtraction),
              0.06, 1e-9);
  EXPECT_NEAR(*BetweenGroupDisparity(kHigherBetter, 0.76, 0.82,
                                     DisparityMode::kDivision),
              0.0789, 1e-3);
}

TEST(BetweenGroupTest, PaperTable5McanFdr) {
  // MCAN: FDR Afr 0.19, Cauc 0.05 -> sub 0.14, div 2.8.
  EXPECT_NEAR(*BetweenGroupDisparity(kLowerBetter, 0.19, 0.05,
                                     DisparityMode::kSubtraction),
              0.14, 1e-9);
  EXPECT_NEAR(*BetweenGroupDisparity(kLowerBetter, 0.19, 0.05,
                                     DisparityMode::kDivision),
              2.8, 1e-9);
}

TEST(BetweenGroupTest, PaperTable6NbPpv) {
  // NBMatcher: PPV cn 0.03, de 0.58 -> sub 0.55, div 18.3.
  EXPECT_NEAR(*BetweenGroupDisparity(kHigherBetter, 0.03, 0.58,
                                     DisparityMode::kSubtraction),
              0.55, 1e-9);
  EXPECT_NEAR(*BetweenGroupDisparity(kHigherBetter, 0.03, 0.58,
                                     DisparityMode::kDivision),
              18.33, 1e-2);
}

TEST(BetweenGroupTest, ZeroReference) {
  EXPECT_TRUE(BetweenGroupDisparity(kHigherBetter, 0.0, 0.5,
                                    DisparityMode::kDivision)
                  .status()
                  .IsUndefinedStatistic());
  EXPECT_DOUBLE_EQ(*BetweenGroupDisparity(kHigherBetter, 0.0, 0.0,
                                          DisparityMode::kDivision),
                   0.0);
}

TEST(DisparityTest, ModeNames) {
  EXPECT_STREQ(DisparityModeName(DisparityMode::kSubtraction), "sub");
  EXPECT_STREQ(DisparityModeName(DisparityMode::kDivision), "div");
}

}  // namespace
}  // namespace fairem
