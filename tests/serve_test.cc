// End-to-end tests for the `fairem serve` daemon (DESIGN.md §14). Every
// test forks a real daemon process — single-threaded child running
// RunServeDaemon, stopped with a real SIGTERM — and talks to it over the
// UNIX socket like any client would, so admission control, deadlines,
// crash isolation, slow-client handling, and drain are all exercised
// through the production wire, not through seams.
//
// The chaos lane (ctest `serve_chaos`) reruns the *Chaos* tests with
// FAIREM_FAILPOINTS exported, which the forked daemons inherit; without
// the env the Chaos test arms a default crash spec itself.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/robust/checkpoint.h"
#include "src/robust/failpoint.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/util/io_util.h"

namespace fairem {
namespace {

std::string FreshSocketPath(const std::string& leaf) {
  // sun_path is 108 bytes; /tmp keeps us far under even when TempDir is
  // a deep build path.
  std::string path = "/tmp/fairem_" + leaf + "." +
                     std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  return path;
}

ServeOptions SmallServeOptions(const std::string& socket_path) {
  ServeOptions options;
  options.socket_path = socket_path;
  options.warm.datasets = {"Cricket"};
  options.warm.scale = 0.25;
  options.default_deadline_s = 60.0;
  options.max_deadline_s = 120.0;
  return options;
}

class DaemonHandle {
 public:
  DaemonHandle(const ServeOptions& options, const std::string& failpoints) {
    pid_ = ::fork();
    if (pid_ == 0) {
      if (!failpoints.empty()) {
        if (Status st = FailpointRegistry::Global().Configure(failpoints);
            !st.ok()) {
          ::_exit(2);
        }
      }
      Status st = RunServeDaemon(options);
      ::_exit(st.ok() ? 0 : 1);
    }
  }

  ~DaemonHandle() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  /// SIGTERM + reap; returns the wait status (-1 when already stopped).
  int Stop() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = -1;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
};

Result<ServeClient> ConnectPatient(const std::string& socket_path) {
  ServeClientOptions options;
  options.io_timeout_s = 60.0;  // warmup + a cell compute fit comfortably
  options.connect_timeout_s = 60.0;
  return ServeClient::Connect(socket_path, options);
}

QueryRequest CellRequest(const std::string& matcher,
                         double deadline_s = 60.0) {
  QueryRequest request;
  request.op = "cell";
  request.dataset = "Cricket";
  request.matcher = matcher;
  request.deadline_s = deadline_s;
  return request;
}

int RawConnect(const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  for (int tries = 0; tries < 500; ++tries) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    ::usleep(20 * 1000);
  }
  ::close(fd);
  return -1;
}

TEST(ServeTest, PingStatsAndCellByteIdentity) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_basic");
  DaemonHandle daemon(SmallServeOptions(socket_path), "");
  Result<ServeClient> client = ConnectPatient(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();

  QueryRequest ping;
  ping.op = "ping";
  Result<QueryResponse> pong = client->Call(ping);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->status.ok());
  EXPECT_EQ(pong->payload, "pong");

  Result<QueryResponse> first = client->Call(CellRequest("DTMatcher"));
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->status.ok()) << first->status;
  EXPECT_NE(first->payload.find("\"matcher\":\"DTMatcher\""),
            std::string::npos);

  // The repeat must come from the parent-owned cache: byte-identical.
  Result<QueryResponse> second = client->Call(CellRequest("DTMatcher"));
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_TRUE(second->status.ok());
  EXPECT_EQ(first->payload, second->payload);

  QueryRequest stats;
  stats.op = "stats";
  Result<QueryResponse> snapshot = client->Call(stats);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_TRUE(snapshot->status.ok());
  EXPECT_NE(snapshot->payload.find("fairem.serve.requests_total"),
            std::string::npos);
  EXPECT_NE(snapshot->payload.find("fairem.serve.cell_cache_hits"),
            std::string::npos);

  int status = daemon.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeTest, StructuredErrorsForBadQueries) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_badq");
  DaemonHandle daemon(SmallServeOptions(socket_path), "");
  Result<ServeClient> client = ConnectPatient(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();

  QueryRequest bad_op;
  bad_op.op = "explode";
  Result<QueryResponse> r = client->Call(bad_op);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->status.IsInvalidArgument()) << r->status;

  QueryRequest bad_dataset = CellRequest("DTMatcher");
  bad_dataset.dataset = "Atlantis";
  r = client->Call(bad_dataset);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->status.IsNotFound()) << r->status;

  QueryRequest bad_matcher = CellRequest("Oracle9000");
  r = client->Call(bad_matcher);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->status.IsNotFound()) << r->status;

  QueryRequest bad_mode = CellRequest("DTMatcher");
  bad_mode.mode = "triplewise";
  r = client->Call(bad_mode);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->status.IsInvalidArgument()) << r->status;

  // The connection survived four rejected queries.
  QueryRequest ping;
  ping.op = "ping";
  r = client->Call(ping);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->status.ok());
  EXPECT_EQ(daemon.Stop() != -1 ? 0 : 1, 0);
}

TEST(ServeTest, UnknownFrameSkippedMalformedAndOversizedClose) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_frames");
  DaemonHandle daemon(SmallServeOptions(socket_path), "");

  // Unknown frame type before a valid request: skipped, request answered.
  int fd = RawConnect(socket_path);
  ASSERT_GE(fd, 0);
  QueryRequest ping;
  ping.op = "ping";
  ping.id = 11;
  std::string wire = EncodeServeMessage("WHAT", "future frame type");
  wire += EncodeServeMessage(kFrameQueryRequest, SerializeQueryRequest(ping));
  ASSERT_TRUE(WriteFullDeadline(fd, wire.data(), wire.size(), 30.0).ok());
  Result<ServeMessage> reply = ReadServeMessage(fd, 60.0);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->type, kFrameQueryResponse);
  Result<QueryResponse> parsed = ParseQueryResponse(reply->bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->id, 11u);
  ::close(fd);

  // Garbage instead of the magic: unrecoverable, daemon closes promptly.
  fd = RawConnect(socket_path);
  ASSERT_GE(fd, 0);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(
      WriteFullDeadline(fd, garbage, sizeof(garbage) - 1, 30.0).ok());
  char byte = 0;
  Status eof = ReadFullDeadline(fd, &byte, 1, 30.0);
  EXPECT_TRUE(eof.IsUnavailable()) << eof;
  ::close(fd);

  // Oversized declared length: closed without buffering 1 TiB.
  fd = RawConnect(socket_path);
  ASSERT_GE(fd, 0);
  std::string huge = "FEMTEL1\nQREQ0000010000000000\n";  // 2^40 bytes claimed
  ASSERT_TRUE(WriteFullDeadline(fd, huge.data(), huge.size(), 30.0).ok());
  eof = ReadFullDeadline(fd, &byte, 1, 30.0);
  EXPECT_TRUE(eof.IsUnavailable()) << eof;
  ::close(fd);

  // None of that hurt the daemon.
  Result<ServeClient> client = ConnectPatient(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();
  QueryRequest probe;
  probe.op = "ping";
  Result<QueryResponse> pong = client->Call(probe);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->status.ok());
  int status = daemon.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeTest, SlowClientDisconnected) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_slow");
  ServeOptions options = SmallServeOptions(socket_path);
  options.io_timeout_s = 0.3;
  DaemonHandle daemon(options, "");

  // Stall mid-frame: magic + half a header, then silence.
  int fd = RawConnect(socket_path);
  ASSERT_GE(fd, 0);
  const char partial[] = "FEMTEL1\nQRE";
  ASSERT_TRUE(
      WriteFullDeadline(fd, partial, sizeof(partial) - 1, 30.0).ok());
  char byte = 0;
  Status eof = ReadFullDeadline(fd, &byte, 1, 30.0);
  EXPECT_TRUE(eof.IsUnavailable()) << eof;  // daemon hung up on us
  ::close(fd);

  // An idle-but-clean connection is NOT closed: no pending bytes either way.
  Result<ServeClient> client = ConnectPatient(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();
  ::usleep(600 * 1000);
  QueryRequest ping;
  ping.op = "ping";
  Result<QueryResponse> pong = client->Call(ping);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->status.ok());
  int status = daemon.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeTest, DeadlineExceededOnHangingWorker) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_hang");
  ServeOptions options = SmallServeOptions(socket_path);
  options.max_attempts = 1;
  DaemonHandle daemon(options, "grid_cell=hang(1)");
  Result<ServeClient> client = ConnectPatient(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();

  Result<QueryResponse> r = client->Call(CellRequest("DTMatcher", 1.0));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->status.IsDeadlineExceeded()) << r->status;

  // The watchdog killed the worker; the daemon answers on.
  QueryRequest ping;
  ping.op = "ping";
  Result<QueryResponse> pong = client->Call(ping);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->status.ok());
  int status = daemon.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeTest, CrashBudgetExhaustionIsStructured) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_crash");
  ServeOptions options = SmallServeOptions(socket_path);
  options.max_attempts = 2;
  DaemonHandle daemon(options, "grid_cell=crash(1)");  // always crash
  Result<ServeClient> client = ConnectPatient(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();

  Result<QueryResponse> r = client->Call(CellRequest("DTMatcher"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->status.code(), StatusCode::kInternal) << r->status;
  EXPECT_NE(r->status.message().find("crash"), std::string::npos)
      << r->status;

  // Both attempts crashed and were respawned/settled; daemon intact.
  QueryRequest stats;
  stats.op = "stats";
  Result<QueryResponse> snapshot = client->Call(stats);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_TRUE(snapshot->status.ok());
  EXPECT_NE(snapshot->payload.find("\"fairem.serve.worker_crashes\": 2"),
            std::string::npos)
      << snapshot->payload;
  EXPECT_NE(snapshot->payload.find("\"fairem.serve.worker_respawns\": 1"),
            std::string::npos)
      << snapshot->payload;
  int status = daemon.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeTest, OverloadShedsWithRetryHint) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_shed");
  ServeOptions options = SmallServeOptions(socket_path);
  options.max_inflight = 1;
  options.max_queue = 1;
  options.max_attempts = 1;
  options.retry_after_s = 0.25;
  DaemonHandle daemon(options, "grid_cell=hang(1)");

  // Fill the worker and the queue from a raw connection (no reply reads,
  // so this test never blocks): request 1 computes (hangs), request 2
  // queues. Short deadlines keep the drain quick afterwards.
  int fd = RawConnect(socket_path);
  ASSERT_GE(fd, 0);
  QueryRequest filler = CellRequest("DTMatcher", 3.0);
  filler.id = 1;
  std::string wire =
      EncodeServeMessage(kFrameQueryRequest, SerializeQueryRequest(filler));
  filler.id = 2;
  filler.matcher = "NBMatcher";
  wire +=
      EncodeServeMessage(kFrameQueryRequest, SerializeQueryRequest(filler));
  ASSERT_TRUE(WriteFullDeadline(fd, wire.data(), wire.size(), 30.0).ok());

  // Give the daemon a moment to admit both, then the next arrival sheds.
  Result<ServeClient> client = ConnectPatient(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();
  Result<QueryResponse> shed = Status::Internal("no call made yet");
  bool got_shed = false;
  for (int tries = 0; tries < 20 && !got_shed; ++tries) {
    shed = client->Call(CellRequest("BooleanRuleMatcher", 3.0));
    ASSERT_TRUE(shed.ok()) << shed.status();
    got_shed = shed->status.IsUnavailable();
    if (!got_shed) ::usleep(20 * 1000);
  }
  ASSERT_TRUE(got_shed) << "no shed observed: " << shed->status;
  // The hint is load-aware: the configured base (0.25) scaled up by queue
  // and worker occupancy, bounded at 3x (LoadAwareRetryAfterS).
  EXPECT_GE(shed->retry_after_s, 0.25);
  EXPECT_LE(shed->retry_after_s, 0.75);

  // The two admitted queries deadline out; their replies land on the raw
  // connection. Then the daemon drains cleanly.
  ::close(fd);
  int status = daemon.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeTest, DrainShedsQueueAndFlushesDurableMetrics) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_drain");
  const std::string metrics_path =
      ::testing::TempDir() + "serve_drain_metrics." +
      std::to_string(::getpid()) + ".json";
  ::unlink(metrics_path.c_str());
  ServeOptions options = SmallServeOptions(socket_path);
  options.metrics_path = metrics_path;
  DaemonHandle daemon(options, "");

  Result<ServeClient> client = ConnectPatient(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();
  QueryRequest ping;
  ping.op = "ping";
  ASSERT_TRUE(client->Call(ping).ok());

  int status = daemon.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The drain wrote a durable snapshot with the serve counters.
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good()) << metrics_path;
  std::string snapshot((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(snapshot.find("\"fairem.serve.shutdowns\": 1"),
            std::string::npos);
  EXPECT_NE(snapshot.find("fairem.serve.requests_total"), std::string::npos);
  ::unlink(metrics_path.c_str());

  // Post-drain the socket is gone: connecting fails fast as kUnavailable.
  ServeClientOptions no_wait;
  no_wait.connect_timeout_s = 0.2;
  Result<ServeClient> refused = ServeClient::Connect(socket_path, no_wait);
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable()) << refused.status();
}

TEST(ServeTest, CheckpointWarmupAndCorruptionRerun) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_ckpt");
  const std::string ckpt_dir = ::testing::TempDir() + "serve_ckpt_dir." +
                               std::to_string(::getpid());
  std::filesystem::remove_all(ckpt_dir);

  ServeOptions options = SmallServeOptions(socket_path);
  options.warm.checkpoint_dir = ckpt_dir;

  // Daemon 1 computes the cell and persists the checkpoint.
  std::string payload;
  {
    DaemonHandle daemon(options, "");
    Result<ServeClient> client = ConnectPatient(socket_path);
    ASSERT_TRUE(client.ok()) << client.status();
    Result<QueryResponse> r = client->Call(CellRequest("DTMatcher"));
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->status.ok()) << r->status;
    payload = r->payload;
    int status = daemon.Stop();
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }
  CheckpointStore store(ckpt_dir);
  const std::string key = "Cricket.single.DTMatcher";
  ASSERT_TRUE(store.Load(key).ok());

  // Daemon 2 preloads it: the query is answered from warm cache,
  // byte-identical, with zero cells computed.
  {
    DaemonHandle daemon(options, "");
    Result<ServeClient> client = ConnectPatient(socket_path);
    ASSERT_TRUE(client.ok()) << client.status();
    Result<QueryResponse> r = client->Call(CellRequest("DTMatcher"));
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->status.ok()) << r->status;
    EXPECT_EQ(r->payload, payload);
    QueryRequest stats;
    stats.op = "stats";
    Result<QueryResponse> snapshot = client->Call(stats);
    ASSERT_TRUE(snapshot.ok());
    EXPECT_NE(snapshot->payload.find("\"fairem.serve.cells_preloaded\": 1"),
              std::string::npos)
        << snapshot->payload;
    EXPECT_NE(snapshot->payload.find("\"fairem.serve.cells_computed\": 0"),
              std::string::npos)
        << snapshot->payload;
    ASSERT_EQ(WEXITSTATUS(daemon.Stop()), 0);
  }

  // Corruption drill: truncate the checkpoint mid-file. Daemon 3 must WARN
  // (fairem.serve.corrupt_checkpoints), skip the preload, and transparently
  // re-run the cell to the same bytes on first query.
  {
    const std::string path = store.PathFor(key);
    Result<std::string> full = ReadFileToString(path);
    ASSERT_TRUE(full.ok());
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << full->substr(0, full->size() / 2);
    out.close();

    DaemonHandle daemon(options, "");
    Result<ServeClient> client = ConnectPatient(socket_path);
    ASSERT_TRUE(client.ok()) << client.status();
    QueryRequest stats;
    stats.op = "stats";
    Result<QueryResponse> snapshot = client->Call(stats);
    ASSERT_TRUE(snapshot.ok());
    EXPECT_NE(
        snapshot->payload.find("\"fairem.serve.corrupt_checkpoints\": 1"),
        std::string::npos)
        << snapshot->payload;
    Result<QueryResponse> r = client->Call(CellRequest("DTMatcher"));
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->status.ok()) << r->status;
    EXPECT_EQ(r->payload, payload);  // identical recompute
    ASSERT_EQ(WEXITSTATUS(daemon.Stop()), 0);
  }
  std::filesystem::remove_all(ckpt_dir);
}

TEST(ServeTest, ChaosEveryRequestDefiniteAndPostChaosByteIdentical) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_chaos");
  // The chaos lane exports FAIREM_FAILPOINTS (the forked daemon arms it
  // on first failpoint use); standalone runs inject a default crash mix.
  const char* env_spec = std::getenv("FAIREM_FAILPOINTS");
  const std::string spec =
      env_spec != nullptr ? "" : "grid_cell=crash(0.5)";
  ServeOptions options = SmallServeOptions(socket_path);
  options.max_attempts = 2;
  options.default_deadline_s = 30.0;
  DaemonHandle daemon(options, spec);
  Result<ServeClient> client = ConnectPatient(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();

  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.initial_backoff_seconds = 0.02;
  const char* matchers[] = {"BooleanRuleMatcher", "DTMatcher", "NBMatcher"};
  int definite = 0;
  for (int i = 0; i < 9; ++i) {
    QueryRequest request = (i % 3 == 0)
                               ? QueryRequest{}
                               : CellRequest(matchers[i % 3], 30.0);
    if (i % 3 == 0) request.op = "ping";
    Result<QueryResponse> r = client->CallWithRetry(request, retry, 100 + i);
    if (!r.ok()) {
      // Transport failure is definite too, but the client must recover.
      ASSERT_FALSE(r.status().ToString().empty());
    }
    ++definite;
    if (!client->connected()) {
      Result<ServeClient> fresh = ConnectPatient(socket_path);
      ASSERT_TRUE(fresh.ok()) << fresh.status();
      *client = std::move(*fresh);
    }
  }
  EXPECT_EQ(definite, 9);

  // Post-chaos: the probed cell must eventually succeed (fresh spawns draw
  // fresh failpoint streams) and then repeat byte-identically from cache.
  std::string first;
  for (int tries = 0; tries < 30 && first.empty(); ++tries) {
    Result<QueryResponse> r =
        client->CallWithRetry(CellRequest("DTMatcher", 30.0), retry,
                              500 + tries);
    if (r.ok() && r->status.ok()) first = r->payload;
    if (!client->connected()) {
      Result<ServeClient> fresh = ConnectPatient(socket_path);
      ASSERT_TRUE(fresh.ok()) << fresh.status();
      *client = std::move(*fresh);
    }
  }
  ASSERT_FALSE(first.empty()) << "cell never succeeded under chaos";
  Result<QueryResponse> again =
      client->CallWithRetry(CellRequest("DTMatcher", 30.0), retry, 999);
  ASSERT_TRUE(again.ok()) << again.status();
  ASSERT_TRUE(again->status.ok()) << again->status;
  EXPECT_EQ(again->payload, first);

  int status = daemon.Stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}


// ---------------------------------------------------------------------------
// HLTH health probes (DESIGN.md §15): answered inline, bypassing admission,
// interleaving cleanly with queries on the same connection.

TEST(ServeTest, HealthProbeAnswersInline) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_hlth");
  DaemonHandle daemon(SmallServeOptions(socket_path), "");
  int fd = RawConnect(socket_path);
  ASSERT_GE(fd, 0);
  HealthReport probe;
  probe.probe = true;
  probe.id = 42;
  ASSERT_TRUE(WriteServeMessage(fd, kFrameHealth,
                                SerializeHealthReport(probe), 60.0)
                  .ok());
  Result<ServeMessage> reply = ReadServeMessage(fd, 60.0);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->type, std::string(kFrameHealth));
  Result<HealthReport> report = ParseHealthReport(reply->bytes);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->id, 42u);
  EXPECT_FALSE(report->probe);
  EXPECT_TRUE(report->serving);
  EXPECT_GE(report->retry_after_s, 0.0);

  // The same connection keeps working for queries afterwards: probes and
  // queries interleave without desync.
  QueryRequest ping;
  ping.op = "ping";
  ping.id = 7;
  ASSERT_TRUE(WriteServeMessage(fd, kFrameQueryRequest,
                                SerializeQueryRequest(ping), 60.0)
                  .ok());
  Result<ServeMessage> pong = ReadServeMessage(fd, 60.0);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(pong->type, std::string(kFrameQueryResponse));
  Result<QueryResponse> parsed = ParseQueryResponse(pong->bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->payload, "pong");
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Satellite: the shed hint scales with load so retrying clients converge.

TEST(ServeTest, LoadAwareRetryHintIsMonotone) {
  const double base = 0.05;
  EXPECT_DOUBLE_EQ(LoadAwareRetryAfterS(base, 0, 8, 0, 2), base);
  double prev = 0.0;
  for (int depth = 0; depth <= 8; ++depth) {
    const double hint = LoadAwareRetryAfterS(base, depth, 8, 0, 2);
    EXPECT_GE(hint, prev) << "hint must not shrink as the queue fills";
    prev = hint;
  }
  prev = 0.0;
  for (int inflight = 0; inflight <= 4; ++inflight) {
    const double hint = LoadAwareRetryAfterS(base, 0, 8, inflight, 4);
    EXPECT_GE(hint, prev) << "hint must not shrink as inflight grows";
    prev = hint;
  }
  EXPECT_GT(LoadAwareRetryAfterS(base, 4, 8, 2, 2),
            LoadAwareRetryAfterS(base, 4, 8, 0, 2));
  // Bounded: base + full queue + full inflight caps at 3x base.
  EXPECT_LE(LoadAwareRetryAfterS(base, 100, 8, 100, 2), 3.0 * base + 1e-12);
  // Degenerate capacities and a disabled base contribute nothing.
  EXPECT_DOUBLE_EQ(LoadAwareRetryAfterS(base, 5, 0, 5, 0), base);
  EXPECT_DOUBLE_EQ(LoadAwareRetryAfterS(0.0, 5, 8, 1, 2), 0.0);
}

// ---------------------------------------------------------------------------
// Satellite regression: CallWithRetry must not sleep past the query
// deadline, no matter how large the server's retry_after_s hint is.

/// Forked stub daemon that sheds every query with a pathologically large
/// retry hint — the input that used to make the client overshoot.
class SheddingStub {
 public:
  explicit SheddingStub(const std::string& socket_path) {
    pid_ = ::fork();
    if (pid_ == 0) {
      ServeForever(socket_path);
      ::_exit(0);
    }
  }

  ~SheddingStub() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

 private:
  static void ServeForever(const std::string& socket_path) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) ::_exit(1);
    ::unlink(socket_path.c_str());
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd, 8) != 0) {
      ::_exit(1);
    }
    for (;;) {
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      for (;;) {
        Result<ServeMessage> message = ReadServeMessage(fd, 30.0);
        if (!message.ok()) break;
        Result<QueryRequest> request = ParseQueryRequest(message->bytes);
        QueryResponse response;
        if (request.ok()) response.id = request->id;
        response.status = Status::Unavailable("stub shed");
        response.retry_after_s = 5.0;
        if (!WriteServeMessage(fd, kFrameQueryResponse,
                               SerializeQueryResponse(response), 30.0)
                 .ok()) {
          break;
        }
      }
      ::close(fd);
    }
  }

  pid_t pid_ = -1;
};

TEST(ServeClientRetryTest, BackoffNeverOvershootsQueryDeadline) {
  IgnoreSigpipe();
  const std::string socket_path = FreshSocketPath("serve_shed_stub");
  SheddingStub stub(socket_path);
  Result<ServeClient> client = ConnectPatient(socket_path);
  ASSERT_TRUE(client.ok()) << client.status();

  std::vector<double> sleeps;
  SetRetrySleepFnForTest([&](double s) { sleeps.push_back(s); });
  RetryPolicy retry;
  retry.max_attempts = 8;
  retry.deadline_seconds = 0.0;  // only the query deadline bounds the call
  QueryRequest request = CellRequest("DTMatcher", /*deadline_s=*/0.5);
  Result<QueryResponse> response = client->CallWithRetry(request, retry);
  SetRetrySleepFnForTest(nullptr);

  // The 5 s hint dwarfs the 0.5 s query deadline: the client must refuse
  // to sleep and return a prompt kDeadlineExceeded naming the last error,
  // not a late kUnavailable after ~35 s of backoff.
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.IsDeadlineExceeded()) << response->status;
  EXPECT_NE(response->status.ToString().find("stub shed"),
            std::string::npos)
      << response->status;
  double slept = 0.0;
  for (double s : sleeps) slept += s;
  EXPECT_LE(slept, 0.5) << "cumulative backoff overshot the query deadline";
}

}  // namespace
}  // namespace fairem
