#include "src/core/measures.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

ConfusionCounts Sample() {
  ConfusionCounts c;
  c.tp = 8;
  c.fp = 2;
  c.tn = 85;
  c.fn = 5;
  return c;
}

TEST(MeasuresTest, NamesRoundTrip) {
  for (FairnessMeasure m : kAllFairnessMeasures) {
    Result<FairnessMeasure> parsed =
        ParseFairnessMeasure(FairnessMeasureName(m));
    ASSERT_TRUE(parsed.ok()) << FairnessMeasureName(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ParseFairnessMeasure("NOPE").ok());
}

TEST(MeasuresTest, ElevenMeasuresTenScalar) {
  EXPECT_EQ(std::size(kAllFairnessMeasures), 11u);
  EXPECT_EQ(ScalarFairnessMeasures().size(), 10u);
}

TEST(MeasuresTest, StatisticsMatchTable2Definitions) {
  ConfusionCounts c = Sample();
  // Pr(h = y)
  EXPECT_DOUBLE_EQ(*MeasureStatistic(FairnessMeasure::kAccuracyParity, c),
                   0.93);
  // Pr(h = 'M')
  EXPECT_DOUBLE_EQ(*MeasureStatistic(FairnessMeasure::kStatisticalParity, c),
                   0.10);
  // Pr(h='M' | y='M')
  EXPECT_NEAR(
      *MeasureStatistic(FairnessMeasure::kTruePositiveRateParity, c),
      8.0 / 13.0, 1e-12);
  // Pr(h='M' | y='N')
  EXPECT_NEAR(
      *MeasureStatistic(FairnessMeasure::kFalsePositiveRateParity, c),
      2.0 / 87.0, 1e-12);
  // Pr(y='M' | h='M')
  EXPECT_DOUBLE_EQ(
      *MeasureStatistic(FairnessMeasure::kPositivePredictiveValueParity, c),
      0.8);
  // Pr(y='N' | h='M')
  EXPECT_DOUBLE_EQ(
      *MeasureStatistic(FairnessMeasure::kFalseDiscoveryRateParity, c), 0.2);
}

TEST(MeasuresTest, EqualizedOddsHasNoScalar) {
  EXPECT_FALSE(
      MeasureStatistic(FairnessMeasure::kEqualizedOdds, Sample()).ok());
}

TEST(MeasuresTest, DirectionClassification) {
  EXPECT_FALSE(LowerIsBetter(FairnessMeasure::kAccuracyParity));
  EXPECT_FALSE(LowerIsBetter(FairnessMeasure::kTruePositiveRateParity));
  EXPECT_TRUE(LowerIsBetter(FairnessMeasure::kFalsePositiveRateParity));
  EXPECT_TRUE(LowerIsBetter(FairnessMeasure::kFalseNegativeRateParity));
  EXPECT_TRUE(LowerIsBetter(FairnessMeasure::kFalseDiscoveryRateParity));
  EXPECT_TRUE(LowerIsBetter(FairnessMeasure::kFalseOmissionRateParity));
}

TEST(MeasuresTest, CategoriesPerSection34) {
  EXPECT_EQ(CategoryOf(FairnessMeasure::kStatisticalParity),
            MeasureCategory::kIndependence);
  EXPECT_EQ(CategoryOf(FairnessMeasure::kTruePositiveRateParity),
            MeasureCategory::kSeparation);
  EXPECT_EQ(CategoryOf(FairnessMeasure::kPositivePredictiveValueParity),
            MeasureCategory::kSufficiency);
}

TEST(MeasuresTest, Table2FootnoteMeasuresRequireTrueMatches) {
  // The footnoted measures of Table 2: inapplicable in pairwise audits of
  // non-overlapping groups where TP = FN = 0.
  EXPECT_TRUE(RequiresTrueMatches(FairnessMeasure::kTruePositiveRateParity));
  EXPECT_TRUE(RequiresTrueMatches(FairnessMeasure::kFalseNegativeRateParity));
  EXPECT_TRUE(RequiresTrueMatches(FairnessMeasure::kEqualizedOdds));
  EXPECT_TRUE(
      RequiresTrueMatches(FairnessMeasure::kPositivePredictiveValueParity));
  EXPECT_FALSE(RequiresTrueMatches(FairnessMeasure::kAccuracyParity));
  EXPECT_FALSE(RequiresTrueMatches(FairnessMeasure::kStatisticalParity));
  EXPECT_FALSE(
      RequiresTrueMatches(FairnessMeasure::kFalsePositiveRateParity));
}

TEST(MeasuresTest, DescriptionsExistForAll) {
  for (FairnessMeasure m : kAllFairnessMeasures) {
    EXPECT_GT(std::string(FairnessMeasureDescription(m)).size(), 20u)
        << FairnessMeasureName(m);
  }
  // Spot-check the equal-opportunity alias from Table 2.
  EXPECT_NE(std::string(FairnessMeasureDescription(
                FairnessMeasure::kTruePositiveRateParity))
                .find("Equal Opportunity"),
            std::string::npos);
}

TEST(MeasuresTest, UndefinedOnEmptyDenominators) {
  ConfusionCounts only_negatives;
  only_negatives.tn = 10;
  EXPECT_FALSE(
      MeasureStatistic(FairnessMeasure::kTruePositiveRateParity,
                       only_negatives)
          .ok());
  EXPECT_FALSE(
      MeasureStatistic(FairnessMeasure::kPositivePredictiveValueParity,
                       only_negatives)
          .ok());
  EXPECT_TRUE(
      MeasureStatistic(FairnessMeasure::kTrueNegativeRateParity,
                       only_negatives)
          .ok());
}

}  // namespace
}  // namespace fairem
