// End-to-end pipeline tests: generate -> train -> score -> audit on small
// scales of the real benchmark datasets, checking the invariants the paper's
// experiments rely on.

#include <gtest/gtest.h>

#include "src/core/threshold.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"

namespace fairem {
namespace {

TEST(IntegrationTest, FullPipelineOnDblpAcm) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpAcm, 0.4)).value();
  Result<MatcherRun> run = RunMatcher(ds, MatcherKind::kRF);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_TRUE(run->supported);
  EXPECT_EQ(run->test_scores.size(), ds.test.size());
  EXPECT_GT(run->f1, 0.7);
  Result<AuditReport> single = AuditRunSingle(ds, *run);
  ASSERT_TRUE(single.ok());
  Result<AuditReport> pairwise = AuditRunPairwise(ds, *run);
  ASSERT_TRUE(pairwise.ok());
  // Pairwise audits cover n*(n+1)/2 group pairs.
  size_t n = MakeAuditor(ds)->groups().size();
  EXPECT_EQ(pairwise->entries.size() / std::size(kAllFairnessMeasures),
            n * (n + 1) / 2);
}

TEST(IntegrationTest, NeuralPipelineOnSocialData) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kNoFlyCompas, 0.35)).value();
  Result<MatcherRun> run = RunMatcher(ds, MatcherKind::kDitto);
  ASSERT_TRUE(run.ok()) << run.status();
  // Scores must be usable across the whole threshold sweep.
  Result<FairnessAuditor> auditor = MakeAuditor(ds);
  ASSERT_TRUE(auditor.ok());
  Result<std::vector<ThresholdPoint>> sweep = SweepThresholds(
      *auditor, ds.test, run->test_scores,
      FairnessMeasure::kTruePositiveRateParity, ThresholdGrid(0.3, 0.9, 0.1),
      AuditOptions{});
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->size(), 7u);
  // Raising the threshold never increases predicted matches, so TPR is
  // non-increasing along the sweep.
  for (size_t i = 0; i + 1 < sweep->size(); ++i) {
    if ((*sweep)[i].utility_defined && (*sweep)[i + 1].utility_defined) {
      EXPECT_GE((*sweep)[i].utility + 1e-9, (*sweep)[i + 1].utility);
    }
  }
}

TEST(IntegrationTest, RunsAreDeterministic) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kItunesAmazon, 0.35)).value();
  Result<MatcherRun> a = RunMatcher(ds, MatcherKind::kLogReg, 99);
  Result<MatcherRun> b = RunMatcher(ds, MatcherKind::kLogReg, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->test_scores, b->test_scores);
  Result<MatcherRun> c = RunMatcher(ds, MatcherKind::kLogReg, 100);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->test_scores, c->test_scores);
}

TEST(IntegrationTest, GroupCountsCoverAllTestPairs) {
  // Every test pair belongs to at least one group on the social datasets
  // (binary attribute, no nulls), so summing exclusive memberships covers
  // the whole confusion matrix.
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch, 0.4)).value();
  Result<MatcherRun> run = RunMatcher(ds, MatcherKind::kDT);
  ASSERT_TRUE(run.ok());
  Result<std::vector<GroupRates>> breakdown = GroupBreakdown(ds, *run);
  ASSERT_TRUE(breakdown.ok());
  int64_t covered = 0;
  for (const auto& g : *breakdown) covered += g.counts.total();
  // Single-fairness counts overlap on cross-group pairs, so the sum is at
  // least the number of test pairs.
  EXPECT_GE(covered, static_cast<int64_t>(ds.test.size()));
}

TEST(IntegrationTest, DirtyDataSurvivesWholePipeline) {
  // DBLP-Scholar carries nulls in most attributes; no matcher, feature
  // extractor, or audit step may choke on them.
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpScholar, 0.5)).value();
  size_t nulls = 0;
  for (size_t r = 0; r < ds.table_b.num_rows(); ++r) {
    for (size_t c = 0; c < ds.table_b.schema().num_attributes(); ++c) {
      if (ds.table_b.IsNull(r, c)) ++nulls;
    }
  }
  EXPECT_GT(nulls, 0u);
  for (MatcherKind kind :
       {MatcherKind::kBooleanRule, MatcherKind::kNB, MatcherKind::kDitto}) {
    Result<MatcherRun> run = RunMatcher(ds, kind);
    ASSERT_TRUE(run.ok()) << MatcherKindName(kind) << ": " << run.status();
    Result<AuditReport> report = AuditRunSingle(ds, *run);
    ASSERT_TRUE(report.ok()) << MatcherKindName(kind);
  }
}

TEST(IntegrationTest, UnfairnessGridReportRenders) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kDblpScholar, 0.4)).value();
  Result<std::string> grid =
      UnfairnessGridReport(ds, /*pairwise=*/false, AuditOptions{},
                           /*skip=*/NeuralMatcherKinds());
  ASSERT_TRUE(grid.ok()) << grid.status();
  // All groups appear as columns even when no cell is unfair.
  EXPECT_NE(grid->find("article"), std::string::npos);
}

}  // namespace
}  // namespace fairem
