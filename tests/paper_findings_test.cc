// Regression tests pinning the paper's headline findings as reproduced by
// this library. All generators and training loops are seeded, so these are
// deterministic; they guard the *shape* of the results (who wins, which
// direction disparities point), not absolute numbers.

#include <gtest/gtest.h>

#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"

namespace fairem {
namespace {

Result<double> GroupFdr(const EMDataset& ds, const MatcherRun& run,
                        const std::string& group) {
  FAIREM_ASSIGN_OR_RETURN(std::vector<GroupRates> breakdown,
                          GroupBreakdown(ds, run));
  for (const auto& g : breakdown) {
    if (g.group == group) return FalseDiscoveryRate(g.counts);
  }
  return Status::NotFound("group " + group);
}

Result<double> GroupTpr(const EMDataset& ds, const MatcherRun& run,
                        const std::string& group) {
  FAIREM_ASSIGN_OR_RETURN(std::vector<GroupRates> breakdown,
                          GroupBreakdown(ds, run));
  for (const auto& g : breakdown) {
    if (g.group == group) return TruePositiveRate(g.counts);
  }
  return Status::NotFound("group " + group);
}

TEST(PaperFindingsTest, Table5NonNeuralPerfectOnNoFlyCompas) {
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kNoFlyCompas)).value();
  for (MatcherKind kind : {MatcherKind::kDT, MatcherKind::kRF}) {
    MatcherRun run = std::move(RunMatcher(ds, kind)).value();
    EXPECT_GE(run.f1, 0.97) << MatcherKindName(kind);
  }
}

TEST(PaperFindingsTest, Table5NeuralFdrDisparityAgainstBlackGroup) {
  // §5.2.1: every neural matcher has a higher false-discovery rate for the
  // over-represented African-American group.
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kNoFlyCompas)).value();
  for (MatcherKind kind : NeuralMatcherKinds()) {
    MatcherRun run = std::move(RunMatcher(ds, kind)).value();
    Result<double> afr = GroupFdr(ds, run, "African-American");
    Result<double> cauc = GroupFdr(ds, run, "Caucasian");
    ASSERT_TRUE(afr.ok() && cauc.ok()) << MatcherKindName(kind);
    EXPECT_GT(*afr, *cauc) << MatcherKindName(kind);
    // And neural is less accurate than the non-neural family here.
    EXPECT_LT(run.f1, 0.95) << MatcherKindName(kind);
  }
}

TEST(PaperFindingsTest, Table6NeuralTprDisparityAgainstCnGroup) {
  // §5.2.2: neural matchers miss more cn matches (similar pinyin names).
  EMDataset ds =
      std::move(GenerateDataset(DatasetKind::kFacultyMatch)).value();
  for (MatcherKind kind : NeuralMatcherKinds()) {
    MatcherRun run = std::move(RunMatcher(ds, kind)).value();
    Result<double> cn = GroupTpr(ds, run, "cn");
    Result<double> de = GroupTpr(ds, run, "de");
    ASSERT_TRUE(cn.ok() && de.ok()) << MatcherKindName(kind);
    EXPECT_LT(*cn, *de) << MatcherKindName(kind);
  }
}

TEST(PaperFindingsTest, TextualDataNeuralBeatsLinearModels) {
  // §5.3.3: non-neural matchers fail on textual data; the serialized-text
  // neural matchers survive.
  EMDataset ds = std::move(GenerateDataset(DatasetKind::kCameras)).value();
  MatcherRun ditto = std::move(RunMatcher(ds, MatcherKind::kDitto)).value();
  for (MatcherKind kind : {MatcherKind::kLogReg, MatcherKind::kNB,
                           MatcherKind::kBooleanRule}) {
    MatcherRun weak = std::move(RunMatcher(ds, kind)).value();
    EXPECT_GT(ditto.f1, weak.f1 + 0.1) << MatcherKindName(kind);
  }
}

TEST(PaperFindingsTest, DedupeSkipsTheDatasetsThePaperSkips) {
  // Table 9's "-" cells: FacultyMatch, NoFlyCompas, Shoes, Cameras.
  for (DatasetKind kind :
       {DatasetKind::kFacultyMatch, DatasetKind::kNoFlyCompas,
        DatasetKind::kShoes, DatasetKind::kCameras}) {
    EMDataset ds = std::move(GenerateDataset(kind)).value();
    MatcherRun run = std::move(RunMatcher(ds, MatcherKind::kDedupe)).value();
    EXPECT_FALSE(run.supported) << DatasetKindName(kind);
  }
  EMDataset ok = std::move(GenerateDataset(DatasetKind::kDblpAcm)).value();
  MatcherRun run = std::move(RunMatcher(ok, MatcherKind::kDedupe)).value();
  EXPECT_TRUE(run.supported);
}

TEST(PaperFindingsTest, StructuredDataEveryoneIsAccurate) {
  // §5.3.1: on DBLP-ACM all ML matchers perform well.
  EMDataset ds = std::move(GenerateDataset(DatasetKind::kDblpAcm)).value();
  for (MatcherKind kind : {MatcherKind::kDT, MatcherKind::kLogReg,
                           MatcherKind::kDitto, MatcherKind::kDeepMatcher}) {
    MatcherRun run = std::move(RunMatcher(ds, kind)).value();
    EXPECT_GT(run.f1, 0.8) << MatcherKindName(kind);
  }
}

}  // namespace
}  // namespace fairem
