#include "src/core/group.h"

#include <gtest/gtest.h>

#include "src/core/encoding.h"

namespace fairem {
namespace {

TEST(ParseGroupsTest, BinaryAndMultiValued) {
  SensitiveAttr attr{"race", SensitiveAttrKind::kBinary, '|'};
  EXPECT_EQ(ParseGroups("Caucasian", attr),
            (std::vector<std::string>{"Caucasian"}));
  EXPECT_EQ(ParseGroups("  spaced  ", attr),
            (std::vector<std::string>{"spaced"}));
  EXPECT_TRUE(ParseGroups("", attr).empty());
  EXPECT_TRUE(ParseGroups("   ", attr).empty());
}

TEST(ParseGroupsTest, SetwiseSplitsAndDedupes) {
  SensitiveAttr attr{"genre", SensitiveAttrKind::kSetwise, '|'};
  EXPECT_EQ(ParseGroups("Country|Honky Tonk", attr),
            (std::vector<std::string>{"Country", "Honky Tonk"}));
  EXPECT_EQ(ParseGroups("Pop|Pop| Pop ", attr),
            (std::vector<std::string>{"Pop"}));
  EXPECT_EQ(ParseGroups("Rock||Jazz", attr),
            (std::vector<std::string>{"Jazz", "Rock"}));
}

TEST(GroupExtractorTest, ExtractsPerRowMemberships) {
  Schema schema = std::move(Schema::Make({"name", "genre"})).value();
  Table t("songs", schema);
  ASSERT_TRUE(t.AppendValues(0, {"a", "Pop|Rock"}).ok());
  ASSERT_TRUE(t.AppendValues(1, {"b", "Jazz"}).ok());
  Record null_row;
  null_row.entity_id = 2;
  null_row.cells = {std::string("c"), std::nullopt};
  ASSERT_TRUE(t.Append(std::move(null_row)).ok());
  SensitiveAttr attr{"genre", SensitiveAttrKind::kSetwise, '|'};
  Result<GroupExtractor> ext = GroupExtractor::Make(t, attr);
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(ext->Groups(0), (std::vector<std::string>{"Pop", "Rock"}));
  EXPECT_EQ(ext->Groups(1), (std::vector<std::string>{"Jazz"}));
  EXPECT_TRUE(ext->Groups(2).empty());
  EXPECT_EQ(ext->DistinctGroups(),
            (std::vector<std::string>{"Jazz", "Pop", "Rock"}));
}

TEST(GroupExtractorTest, MissingAttrFails) {
  Schema schema = std::move(Schema::Make({"name"})).value();
  Table t("t", schema);
  SensitiveAttr attr{"race", SensitiveAttrKind::kBinary, '|'};
  EXPECT_FALSE(GroupExtractor::Make(t, attr).ok());
}

TEST(UnionGroupsTest, SortedUnion) {
  Schema schema = std::move(Schema::Make({"g"})).value();
  Table a("a", schema);
  Table b("b", schema);
  ASSERT_TRUE(a.AppendValues(0, {"x"}).ok());
  ASSERT_TRUE(b.AppendValues(0, {"y"}).ok());
  ASSERT_TRUE(b.AppendValues(1, {"x"}).ok());
  SensitiveAttr attr{"g", SensitiveAttrKind::kBinary, '|'};
  GroupExtractor ea = std::move(GroupExtractor::Make(a, attr)).value();
  GroupExtractor eb = std::move(GroupExtractor::Make(b, attr)).value();
  EXPECT_EQ(UnionGroups(ea, eb), (std::vector<std::string>{"x", "y"}));
}

TEST(GroupEncodingTest, EncodeDecodeRoundTrip) {
  GroupEncoding enc =
      std::move(GroupEncoding::Make({"Female", "Male", "Pop", "Rock"}))
          .value();
  Result<uint64_t> mask = enc.Encode({"Female", "Rock"});
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(*mask, 0b1001u);
  EXPECT_EQ(enc.Decode(*mask),
            (std::vector<std::string>{"Female", "Rock"}));
  EXPECT_TRUE(enc.Encode({"Unknown"}).status().IsNotFound());
}

TEST(GroupEncodingTest, AppendixAExample) {
  // Example 4: groups {Female, Male, Jazz, Pop, Rock} lexicographic;
  // entity {Female, Pop, Rock} belongs to subgroup {Female, Pop}.
  GroupEncoding enc =
      std::move(GroupEncoding::Make({"Female", "Male", "Jazz", "Pop", "Rock"}))
          .value();
  uint64_t entity = *enc.Encode({"Female", "Pop", "Rock"});
  uint64_t subgroup = *enc.Encode({"Female", "Pop"});
  EXPECT_TRUE(GroupEncoding::Belongs(entity, subgroup));
  uint64_t other = *enc.Encode({"Male", "Pop"});
  EXPECT_FALSE(GroupEncoding::Belongs(entity, other));
  // The empty subgroup contains everyone.
  EXPECT_TRUE(GroupEncoding::Belongs(entity, 0));
}

TEST(GroupEncodingTest, PairBelongsIsNonDirectional) {
  GroupEncoding enc = std::move(GroupEncoding::Make({"g1", "g2"})).value();
  uint64_t g1 = *enc.Encode({"g1"});
  uint64_t g2 = *enc.Encode({"g2"});
  EXPECT_TRUE(GroupEncoding::PairBelongs(g1, g2, g1, g2));
  EXPECT_TRUE(GroupEncoding::PairBelongs(g2, g1, g1, g2));
  EXPECT_FALSE(GroupEncoding::PairBelongs(g1, g1, g1, g2));
  EXPECT_TRUE(GroupEncoding::PairBelongs(g1, g1, g1, g1));
}

TEST(GroupEncodingTest, RejectsDuplicatesAndOverflow) {
  EXPECT_FALSE(GroupEncoding::Make({"a", "a"}).ok());
  std::vector<std::string> many;
  for (int i = 0; i < 65; ++i) many.push_back("g" + std::to_string(i));
  EXPECT_FALSE(GroupEncoding::Make(many).ok());
}

}  // namespace
}  // namespace fairem
