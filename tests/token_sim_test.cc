#include "src/text/token_sim.h"

#include <gtest/gtest.h>

#include <tuple>

namespace fairem {
namespace {

using Tokens = std::vector<std::string>;

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a", "b"}, {"a", "b"}), 1.0);
}

TEST(DiceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a", "b"}, {"b", "c"}), 0.5);
  EXPECT_DOUBLE_EQ(DiceSimilarity({}, {}), 1.0);
}

TEST(OverlapTest, MinNormalization) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a"}, {"a", "b", "c"}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {"a"}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {}), 1.0);
}

TEST(CosineTest, GeometricMeanNormalization) {
  // |inter| = 1, |A| = 1, |B| = 4 -> 1/2.
  EXPECT_DOUBLE_EQ(CosineTokenSimilarity({"a"}, {"a", "b", "c", "d"}), 0.5);
  EXPECT_DOUBLE_EQ(CosineTokenSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(CosineTokenSimilarity({"x"}, {}), 0.0);
}

TEST(OverlapCountTest, SetSemantics) {
  EXPECT_EQ(TokenOverlapCount({"a", "a", "b"}, {"a", "b", "b", "c"}), 2);
  EXPECT_EQ(TokenOverlapCount({}, {}), 0);
}

using SetSim = double (*)(const Tokens&, const Tokens&);

class TokenSimilarityProperty
    : public ::testing::TestWithParam<std::tuple<const char*, SetSim>> {};

TEST_P(TokenSimilarityProperty, SymmetricBoundedReflexive) {
  SetSim sim = std::get<1>(GetParam());
  const std::vector<Tokens> samples = {
      {},
      {"a"},
      {"lineage", "tracing"},
      {"data", "warehouse", "transformations"},
      {"guest", "editorial"},
      {"a", "b", "c", "d", "e"},
  };
  for (const auto& x : samples) {
    EXPECT_DOUBLE_EQ(sim(x, x), 1.0);
    for (const auto& y : samples) {
      double v = sim(x, y);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      EXPECT_DOUBLE_EQ(v, sim(y, x));
    }
  }
}

TEST_P(TokenSimilarityProperty, DisjointSetsScoreZero) {
  SetSim sim = std::get<1>(GetParam());
  EXPECT_DOUBLE_EQ(sim({"a", "b"}, {"c", "d"}), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTokenMeasures, TokenSimilarityProperty,
    ::testing::Values(std::make_tuple("jaccard", &JaccardSimilarity),
                      std::make_tuple("dice", &DiceSimilarity),
                      std::make_tuple("overlap", &OverlapCoefficient),
                      std::make_tuple("cosine", &CosineTokenSimilarity)),
    [](const auto& info) { return std::get<0>(info.param); });

}  // namespace
}  // namespace fairem
