#include "src/text/tokenize.h"

#include <gtest/gtest.h>

namespace fairem {
namespace {

TEST(TokenizeTest, WhitespaceBasic) {
  EXPECT_EQ(WhitespaceTokenize("a b  c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(WhitespaceTokenize("  lead trail  "),
            (std::vector<std::string>{"lead", "trail"}));
  EXPECT_TRUE(WhitespaceTokenize("").empty());
  EXPECT_TRUE(WhitespaceTokenize("   ").empty());
}

TEST(TokenizeTest, AlnumLowercasesAndSplitsPunctuation) {
  EXPECT_EQ(AlnumTokenize("Qing-Hu Huang"),
            (std::vector<std::string>{"qing", "hu", "huang"}));
  EXPECT_EQ(AlnumTokenize("RX100 IV!"),
            (std::vector<std::string>{"rx100", "iv"}));
  EXPECT_TRUE(AlnumTokenize("---").empty());
}

TEST(TokenizeTest, QGramsPadded) {
  std::vector<std::string> grams = QGrams("ab", 3);
  // "##ab$$" -> ##a, #ab, ab$, b$$
  EXPECT_EQ(grams,
            (std::vector<std::string>{"##a", "#ab", "ab$", "b$$"}));
}

TEST(TokenizeTest, QGramsUnpadded) {
  EXPECT_EQ(QGrams("abcd", 2, /*pad=*/false),
            (std::vector<std::string>{"ab", "bc", "cd"}));
  EXPECT_TRUE(QGrams("a", 2, /*pad=*/false).empty());
}

TEST(TokenizeTest, QGramsOfEmptyString) {
  // Padding "##"+""+"$$" yields |s| + q - 1 = 2 boundary grams.
  EXPECT_EQ(QGrams("", 3).size(), 2u);
  EXPECT_TRUE(QGrams("", 3, /*pad=*/false).empty());
}

TEST(TokenizeTest, QGramCountMatchesFormula) {
  std::string s = "similarity";
  for (int q = 1; q <= 4; ++q) {
    EXPECT_EQ(QGrams(s, q, /*pad=*/true).size(), s.size() + q - 1);
  }
}

TEST(TokenizeTest, WordBigrams) {
  EXPECT_EQ(WordBigrams("new york city"),
            (std::vector<std::string>{"new york", "york city"}));
  EXPECT_TRUE(WordBigrams("single").empty());
  EXPECT_TRUE(WordBigrams("").empty());
}

TEST(TokenizeTest, CountWhitespaceTokensAgreesWithTokenize) {
  for (std::string_view s :
       {"", " ", "a", "a b", "  a  b  ", "one\ttwo\nthree", "trailing ",
        " leading", "a  b   c    d"}) {
    EXPECT_EQ(CountWhitespaceTokens(s), WhitespaceTokenize(s).size())
        << "\"" << s << "\"";
  }
}

}  // namespace
}  // namespace fairem
