// fairem — command-line front end to the library.
//
//   fairem list
//       List the built-in benchmark datasets and the 13 matchers.
//   fairem generate <dataset> <dir> [--scale S] [--seed N]
//       Generate a benchmark dataset and persist it to <dir>.
//   fairem audit <dir> <matcher> [--pairwise] [--threshold T] [--division]
//       Load a dataset directory, train the matcher, and print the
//       correctness summary plus the fairness audit.
//
// Exit status: 0 on success, 1 on usage errors or failures.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/data/dataset_io.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"
#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

int Usage() {
  std::cerr <<
      "usage:\n"
      "  fairem list\n"
      "  fairem generate <dataset> <dir> [--scale S] [--seed N]\n"
      "  fairem audit <dir> <matcher> [--pairwise] [--threshold T] "
      "[--division]\n";
  return 1;
}

Result<DatasetKind> ParseDatasetKind(const std::string& name) {
  for (DatasetKind kind : AllDatasetKinds()) {
    if (name == DatasetKindName(kind)) return kind;
  }
  return Status::NotFound("unknown dataset '" + name +
                          "'; run `fairem list`");
}

Result<MatcherKind> ParseMatcherKind(const std::string& name) {
  for (MatcherKind kind : AllMatcherKinds()) {
    if (name == MatcherKindName(kind)) return kind;
  }
  return Status::NotFound("unknown matcher '" + name +
                          "'; run `fairem list`");
}

int List() {
  std::cout << "datasets (Table 4):\n";
  for (DatasetKind kind : AllDatasetKinds()) {
    std::cout << "  " << DatasetKindName(kind) << "\n";
  }
  std::cout << "matchers (Table 3):\n";
  for (MatcherKind kind : AllMatcherKinds()) {
    std::cout << "  " << MatcherKindName(kind) << " ("
              << MatcherFamilyName(FamilyOf(kind)) << ")\n";
  }
  return 0;
}

int Generate(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  double scale = 1.0;
  uint64_t seed = 0;
  for (size_t i = 2; i + 1 < args.size(); i += 2) {
    if (args[i] == "--scale") {
      if (!ParseDouble(args[i + 1], &scale)) return Usage();
    } else if (args[i] == "--seed") {
      double v = 0.0;
      if (!ParseDouble(args[i + 1], &v)) return Usage();
      seed = static_cast<uint64_t>(v);
    } else {
      return Usage();
    }
  }
  Result<DatasetKind> kind = ParseDatasetKind(args[0]);
  if (!kind.ok()) {
    std::cerr << kind.status() << "\n";
    return 1;
  }
  Result<EMDataset> dataset = GenerateDataset(*kind, scale, seed);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  if (Status st = SaveDataset(*dataset, args[1]); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "wrote " << dataset->name << " (" << dataset->table_a.num_rows()
            << " x " << dataset->table_b.num_rows() << " records, "
            << dataset->AllPairs().size() << " labelled pairs) to " << args[1]
            << "\n";
  return 0;
}

int Audit(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  bool pairwise = false;
  double threshold = -1.0;
  AuditOptions options;
  for (size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--pairwise") {
      pairwise = true;
    } else if (args[i] == "--division") {
      options.mode = DisparityMode::kDivision;
    } else if (args[i] == "--threshold" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &threshold)) return Usage();
    } else {
      return Usage();
    }
  }
  Result<EMDataset> dataset = LoadDataset(args[0]);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  if (threshold >= 0.0) dataset->default_threshold = threshold;
  Result<MatcherKind> kind = ParseMatcherKind(args[1]);
  if (!kind.ok()) {
    std::cerr << kind.status() << "\n";
    return 1;
  }
  Result<MatcherRun> run = RunMatcher(*dataset, *kind);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  if (!run->supported) {
    std::cerr << run->matcher_name << " does not support this dataset\n";
    return 1;
  }
  std::cout << run->matcher_name << " on " << dataset->name << ": accuracy "
            << FormatDouble(run->accuracy, 3) << ", F1 "
            << FormatDouble(run->f1, 3) << " at threshold "
            << FormatDouble(dataset->default_threshold, 2) << "\n\n";
  Result<AuditReport> report =
      pairwise ? AuditRunPairwise(*dataset, *run, options)
               : AuditRunSingle(*dataset, *run, options);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }
  TablePrinter table({"group", "measure", "group value", "reference",
                      "disparity", "unfair"});
  for (const auto& e : report->entries) {
    if (!e.defined) continue;
    table.AddRow({e.group_label, FairnessMeasureName(e.measure),
                  FormatDouble(e.group_value, 3),
                  FormatDouble(e.overall_value, 3),
                  FormatDouble(e.disparity, 3), e.unfair ? "UNFAIR" : ""});
  }
  std::cout << table.ToString() << "\ndiscriminated groups: "
            << report->NumDiscriminatedGroups() << "\n";
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "list") return List();
  if (command == "generate") return Generate(args);
  if (command == "audit") return Audit(args);
  return Usage();
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) { return fairem::Main(argc, argv); }
