// fairem — command-line front end to the library.
//
//   fairem list
//       List the built-in benchmark datasets and the 13 matchers.
//   fairem generate <dataset> <dir> [--scale S] [--seed N]
//       Generate a benchmark dataset and persist it to <dir>.
//   fairem audit <dir> <matcher> [--pairwise] [--threshold T] [--division]
//       Load a dataset directory, train the matcher, and print the
//       correctness summary plus the fairness audit.
//   fairem pipeline <dataset> <matcher> [--scale S] [--seed N] [--pairwise]
//       [--intra_jobs N]
//       Run the full audit pipeline in-process — datagen, blocking, feature
//       generation, fit, predict, audit — primarily a driver for the
//       observability layer (each stage is a traced span). --intra_jobs
//       threads the hot matcher loops; output is byte-identical for any N.
//   fairem grid <dataset> [--pairwise] [--scale S] [--seed N]
//       [--checkpoint_dir D] [--retry_attempts N] [--jobs N]
//       [--intra_jobs N] [--cell_timeout_s S] [--cell_max_rss_mb M]
//       The batch audit of Algorithm 1 for one dataset: all matchers,
//       rendered as the unfairness grid. Fault tolerant: cells retry on
//       transient failures, failed cells degrade to error entries, and with
//       --checkpoint_dir an interrupted run resumes from completed cells.
//       --jobs > 1 (or a cell timeout / rlimit) runs the sweep under the
//       process-isolated supervisor: each cell in a forked worker, hangs
//       SIGKILLed at --cell_timeout_s, address space capped at
//       --cell_max_rss_mb MiB, crashed cells respawned up to
//       --retry_attempts. Workers ship metrics/span telemetry back to the
//       parent, so --metrics_out/--trace_out cover the whole fleet;
//       --progress prints a live cells-done/ETA line. --intra_jobs adds
//       threads inside each cell (total concurrency jobs x intra_jobs).
//   fairem benchdiff <old.json> <new.json> [--fail_on SPEC]... [--all]
//       Compare two metrics snapshots (e.g. successive BENCH_*.json files):
//       per-metric old/new/delta/ratio table, histograms expanded to
//       .mean/.count/.sum/.p50/.p95/.p99. Each --fail_on clause
//       (e.g. 'fairem.matcher.predict_seconds.mean>1.10x' for a ratio gate,
//       'fairem.proc.peak_rss_mb>512abs' for an absolute one, '<' for
//       lower bounds) turns the diff into a regression gate: exit 2 when
//       any clause trips, 1 on usage/IO errors, 0 otherwise. --all shows
//       unchanged metrics too. When a violated histogram metric carries
//       exemplars (traced runs record the slowest query's trace id per
//       bucket), the regression line names the slowest exemplar's trace id
//       so the regression links to one concrete query.
//   fairem proftop <profile.folded> [--by stack|stage] [-n N]
//       [--compare FILE2] [--tolerance T] [--min_share S]
//       Summarize a folded profile written by --profile_out: top frames by
//       self/total samples (--by stack, default), or the per-pipeline-stage
//       breakdown with the attributed fraction (--by stage). --compare
//       checks two profiles' stage shares against each other and exits 2
//       when any stage's share drifts by more than --tolerance (default
//       0.10), considering stages above --min_share (default 0.01).
//   fairem serve <socket> [--datasets a,b,..] [--scale S] [--seed N]
//       [--checkpoint_dir D] [--max_inflight N] [--max_queue N]
//       [--deadline_s S] [--max_deadline_s S] [--io_timeout_s S]
//       [--max_attempts N] [--worker_max_rss_mb M] [--worker_max_cpu_s S]
//       [--drain_metrics_out FILE]
//       The always-on audit daemon (DESIGN.md §14): warms datasets and
//       checkpointed cells, then answers framed queries on a UNIX socket.
//       Cell queries run in crash-isolated forked workers under rlimits;
//       admission is bounded (overflow shed with a retryable reply),
//       deadlines are enforced end to end, slow clients are disconnected,
//       and SIGTERM drains cooperatively (exit 0) — flushing a final
//       durable metrics snapshot to --drain_metrics_out.
//   fairem route <socket> --backends a.sock,b.sock,..
//       [--backends_file FILE] [--health_period_s S] [--health_timeout_s S]
//       [--breaker_failures N] [--breaker_cooldown_s S] [--no_hedge]
//       [--hedge_min_delay_s S] [--max_inflight N] [--deadline_s S]
//       [--max_deadline_s S] [--io_timeout_s S] [--drain_metrics_out FILE]
//       The shard router (DESIGN.md §15): fronts N serve daemons behind one
//       socket. Routes each cell by rendezvous hash so cache warmth
//       survives membership changes, health-probes every backend, opens a
//       circuit breaker on consecutive failures, fails queries over to the
//       next replica when a backend dies or sheds, hedges slow requests
//       after a p95-derived delay, and degrades cell queries to structured
//       error-entry answers when every replica is down. SIGHUP re-reads
//       --backends_file for live add/remove; SIGTERM drains cooperatively.
//   fairem query <socket> ping|stats
//   fairem query <socket> cell <dataset> <matcher> [--pairwise]
//       [--deadline_s S] [--retries N] [--io_timeout_s S] [--trace]
//       [--verbose]
//       One query against a running daemon or router; prints the payload
//       (cell JSON, stats JSON, or "pong"). Shed/draining replies are
//       retried with jittered backoff up to --retries, honoring the
//       server's retry-after hint. --trace (implied by --trace_out or
//       --verbose) propagates a trace context through every hop; the
//       response carries back client/router/daemon/worker spans, merged
//       into one Chrome trace by --trace_out. --verbose streams the
//       server's live PROG progress frames to stderr and prints the
//       per-hop timing table (noting when a hedged duplicate won).
//   fairem slowlog <FILE>
//       Render a slow-query log (wide-event JSON lines written by serve or
//       route under --slow_query_ms): one row per slow query with its
//       trace id, hop, op, key, status, and total time.
//   fairem tracetop <FILE> [--compare FILE2] [--tolerance T]
//       [--min_share S]
//       Aggregate a slow-query log's span breakdowns: per-hop share table
//       (which hop owns the recorded time) and the critical path through
//       the slowest query. --compare gates two logs against each other and
//       exits 2 when any hop's share drifts more than --tolerance (default
//       0.10), considering hops above --min_share (default 0.01).
//
// Observability (any command): --log_level debug|info|warn|error|off,
// --trace_out FILE (Chrome trace JSON of the stage spans),
// --metrics_out FILE (metrics-registry snapshot),
// --metrics_format json|prom (format of --metrics_out),
// --profile_out FILE (sampling profiler; folded stacks for flamegraph.pl),
// --profile_hz N (default 97), --profile_mode cpu|wall.
// Fault injection (any command): --failpoints SPEC, e.g.
// "csv_read=error(0.05);grid_cell=crash(1,5)" (also: FAIREM_FAILPOINTS env).
//
// Exit status: 0 on success, 1 on usage errors or failures, 128+signal
// (130 SIGINT / 143 SIGTERM) when a supervised grid run is interrupted and
// shuts down cooperatively.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/block/blockers.h"
#include "src/data/dataset_io.h"
#include "src/datagen/benchmark_suite.h"
#include "src/feature/feature_gen.h"
#include "src/harness/experiment.h"
#include "src/obs/benchdiff.h"
#include "src/obs/obs.h"
#include "src/obs/profiler.h"
#include "src/obs/slowlog.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/obs/tracetop.h"
#include "src/report/table_printer.h"
#include "src/robust/failpoint.h"
#include "src/robust/supervisor.h"
#include "src/route/router.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/util/io_util.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace fairem {
namespace {

int Usage() {
  std::cerr <<
      "usage:\n"
      "  fairem list\n"
      "  fairem generate <dataset> <dir> [--scale S] [--seed N]\n"
      "  fairem audit <dir> <matcher> [--pairwise] [--threshold T] "
      "[--division]\n"
      "  fairem pipeline <dataset> <matcher> [--scale S] [--seed N] "
      "[--pairwise] [--intra_jobs N]\n"
      "  fairem grid <dataset> [--pairwise] [--scale S] [--seed N] "
      "[--checkpoint_dir D] [--retry_attempts N] [--jobs N] "
      "[--intra_jobs N] [--cell_timeout_s S] [--cell_max_rss_mb M] "
      "[--progress]\n"
      "  fairem benchdiff <old.json> <new.json> [--fail_on SPEC]... [--all]\n"
      "  fairem proftop <profile.folded> [--by stack|stage] [-n N] "
      "[--compare FILE2] [--tolerance T] [--min_share S]\n"
      "  fairem serve <socket> [--datasets a,b,..] [--scale S] [--seed N] "
      "[--checkpoint_dir D] [--max_inflight N] [--max_queue N] "
      "[--deadline_s S] [--max_deadline_s S] [--io_timeout_s S] "
      "[--max_attempts N] [--worker_max_rss_mb M] [--worker_max_cpu_s S] "
      "[--drain_metrics_out FILE] [--slow_query_ms MS] "
      "[--slow_query_log FILE] [--progress_interval_s S]\n"
      "  fairem route <socket> --backends a.sock,b.sock,.. "
      "[--backends_file FILE] [--health_period_s S] [--health_timeout_s S] "
      "[--breaker_failures N] [--breaker_cooldown_s S] [--no_hedge] "
      "[--hedge_min_delay_s S] [--max_inflight N] [--deadline_s S] "
      "[--max_deadline_s S] [--io_timeout_s S] [--drain_metrics_out FILE] "
      "[--slow_query_ms MS] [--slow_query_log FILE]\n"
      "  fairem query <socket> ping|stats\n"
      "  fairem query <socket> cell <dataset> <matcher> [--pairwise] "
      "[--deadline_s S] [--retries N] [--io_timeout_s S] [--trace] "
      "[--verbose]\n"
      "  fairem slowlog <FILE>\n"
      "  fairem tracetop <FILE> [--compare FILE2] [--tolerance T] "
      "[--min_share S]\n"
      "observability (any command): [--log_level L] [--trace_out FILE] "
      "[--metrics_out FILE] [--metrics_format json|prom] "
      "[--profile_out FILE] [--profile_hz N] [--profile_mode cpu|wall]\n"
      "fault injection (any command): [--failpoints SPEC]\n";
  return 1;
}

Result<DatasetKind> ParseDatasetKind(const std::string& name) {
  for (DatasetKind kind : AllDatasetKinds()) {
    if (name == DatasetKindName(kind)) return kind;
  }
  return Status::NotFound("unknown dataset '" + name +
                          "'; run `fairem list`");
}

Result<MatcherKind> ParseMatcherKind(const std::string& name) {
  for (MatcherKind kind : AllMatcherKinds()) {
    if (name == MatcherKindName(kind)) return kind;
  }
  return Status::NotFound("unknown matcher '" + name +
                          "'; run `fairem list`");
}

int List(const std::vector<std::string>& args) {
  // A typo'd flag silently doing nothing is how --trace-out style mistakes
  // hide; every subcommand rejects arguments it does not understand.
  if (!args.empty()) {
    std::cerr << "unexpected argument '" << args[0] << "'\n";
    return Usage();
  }
  std::cout << "datasets (Table 4):\n";
  for (DatasetKind kind : AllDatasetKinds()) {
    std::cout << "  " << DatasetKindName(kind) << "\n";
  }
  std::cout << "matchers (Table 3):\n";
  for (MatcherKind kind : AllMatcherKinds()) {
    std::cout << "  " << MatcherKindName(kind) << " ("
              << MatcherFamilyName(FamilyOf(kind)) << ")\n";
  }
  return 0;
}

int Generate(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  double scale = 1.0;
  uint64_t seed = 0;
  // Stride-1 parse: a trailing or unpaired flag is an error, not a no-op
  // (the old stride-2 loop silently ignored e.g. a final "--bogus").
  for (size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &scale)) return Usage();
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      double v = 0.0;
      if (!ParseDouble(args[++i], &v)) return Usage();
      seed = static_cast<uint64_t>(v);
    } else {
      std::cerr << "unexpected argument '" << args[i] << "'\n";
      return Usage();
    }
  }
  Result<DatasetKind> kind = ParseDatasetKind(args[0]);
  if (!kind.ok()) {
    std::cerr << kind.status() << "\n";
    return 1;
  }
  Result<EMDataset> dataset = GenerateDataset(*kind, scale, seed);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  if (Status st = SaveDataset(*dataset, args[1]); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "wrote " << dataset->name << " (" << dataset->table_a.num_rows()
            << " x " << dataset->table_b.num_rows() << " records, "
            << dataset->AllPairs().size() << " labelled pairs) to " << args[1]
            << "\n";
  return 0;
}

int Audit(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  bool pairwise = false;
  double threshold = -1.0;
  AuditOptions options;
  for (size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--pairwise") {
      pairwise = true;
    } else if (args[i] == "--division") {
      options.mode = DisparityMode::kDivision;
    } else if (args[i] == "--threshold" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &threshold)) return Usage();
    } else {
      return Usage();
    }
  }
  Result<EMDataset> dataset = LoadDataset(args[0]);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  if (threshold >= 0.0) dataset->default_threshold = threshold;
  Result<MatcherKind> kind = ParseMatcherKind(args[1]);
  if (!kind.ok()) {
    std::cerr << kind.status() << "\n";
    return 1;
  }
  Result<MatcherRun> run = RunMatcher(*dataset, *kind);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  if (!run->supported) {
    std::cerr << run->matcher_name << " does not support this dataset\n";
    return 1;
  }
  std::cout << run->matcher_name << " on " << dataset->name << ": accuracy "
            << FormatDouble(run->accuracy, 3) << ", F1 "
            << FormatDouble(run->f1, 3) << " at threshold "
            << FormatDouble(dataset->default_threshold, 2) << "\n\n";
  Result<AuditReport> report =
      pairwise ? AuditRunPairwise(*dataset, *run, options)
               : AuditRunSingle(*dataset, *run, options);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }
  TablePrinter table({"group", "measure", "group value", "reference",
                      "disparity", "unfair"});
  for (const auto& e : report->entries) {
    if (!e.defined) continue;
    table.AddRow({e.group_label, FairnessMeasureName(e.measure),
                  FormatDouble(e.group_value, 3),
                  FormatDouble(e.overall_value, 3),
                  FormatDouble(e.disparity, 3), e.unfair ? "UNFAIR" : ""});
  }
  std::cout << table.ToString() << "\ndiscriminated groups: "
            << report->NumDiscriminatedGroups() << "\n";
  return 0;
}


/// The end-to-end audit pipeline on a generated benchmark dataset. Its
/// purpose is twofold: a one-command demo, and the canonical driver of the
/// observability layer — with --trace_out the run exports nested spans for
/// datagen -> blocking -> features -> fit -> predict -> audit.
int Pipeline(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  double scale = 1.0;
  uint64_t seed = 0;
  bool pairwise = false;
  for (size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--pairwise") {
      pairwise = true;
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &scale)) return Usage();
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      double v = 0.0;
      if (!ParseDouble(args[++i], &v)) return Usage();
      seed = static_cast<uint64_t>(v);
    } else if (args[i] == "--intra_jobs" && i + 1 < args.size()) {
      double v = 0.0;
      if (!ParseDouble(args[++i], &v) || v < 1.0) return Usage();
      SetIntraJobs(static_cast<int>(v));
    } else {
      return Usage();
    }
  }
  Result<DatasetKind> kind = ParseDatasetKind(args[0]);
  if (!kind.ok()) {
    std::cerr << kind.status() << "\n";
    return 1;
  }
  Result<MatcherKind> matcher_kind = ParseMatcherKind(args[1]);
  if (!matcher_kind.ok()) {
    std::cerr << matcher_kind.status() << "\n";
    return 1;
  }

  Span pipeline_span("fairem.pipeline");
  pipeline_span.AddArg("dataset", DatasetKindName(*kind));
  pipeline_span.AddArg("matcher", MatcherKindName(*matcher_kind));

  // Stage 1: dataset generation (span fairem.datagen.generate inside).
  Result<EMDataset> dataset = GenerateDataset(*kind, scale, seed);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }

  // Stage 2: blocking over the matching key — a word-overlap blocker on
  // the first matching attribute, evaluated against the labelled pairs.
  {
    Span block_span("fairem.pipeline.blocking");
    const std::string key_attr = dataset->matching_attrs.empty()
                                     ? dataset->sensitive_attr
                                     : dataset->matching_attrs.front();
    block_span.AddArg("attr", key_attr);
    OverlapBlocker blocker(key_attr, /*min_overlap=*/1, /*use_words=*/true);
    Result<std::vector<CandidatePair>> candidates =
        blocker.Block(dataset->table_a, dataset->table_b);
    if (!candidates.ok()) {
      std::cerr << candidates.status() << "\n";
      return 1;
    }
    BlockingStats stats =
        EvaluateBlocking(*candidates, dataset->AllPairs(),
                         dataset->table_a.num_rows(),
                         dataset->table_b.num_rows());
    std::cout << "blocking: " << stats.num_candidates << " candidates, RR "
              << FormatDouble(stats.reduction_ratio, 3) << ", PC "
              << FormatDouble(stats.pair_completeness, 3) << "\n";
  }

  // Stage 3: feature generation over the training pairs (the same tables
  // and defs the feature-based matchers build internally during Fit).
  {
    Span feature_span("fairem.pipeline.features");
    Result<std::vector<FeatureDef>> defs =
        GenerateFeatures(dataset->table_a, dataset->table_b,
                         dataset->matching_attrs);
    if (!defs.ok()) {
      std::cerr << defs.status() << "\n";
      return 1;
    }
    Result<FeatureTable> features = BuildFeatureTable(
        *defs, dataset->table_a, dataset->table_b, dataset->train);
    if (!features.ok()) {
      std::cerr << features.status() << "\n";
      return 1;
    }
    std::cout << "features: " << features->rows.size() << " rows x "
              << defs->size() << " features\n";
  }

  // Stages 4+5: fit and predict (spans recorded inside RunMatcher).
  Result<MatcherRun> run = RunMatcher(*dataset, *matcher_kind);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  if (!run->supported) {
    std::cerr << run->matcher_name << " does not support this dataset\n";
    return 1;
  }
  std::cout << run->matcher_name << ": accuracy "
            << FormatDouble(run->accuracy, 3) << ", F1 "
            << FormatDouble(run->f1, 3) << " (fit "
            << FormatDouble(run->fit_seconds, 3) << "s, predict "
            << FormatDouble(run->predict_seconds, 3) << "s)\n";

  // Stage 6: the fairness audit (span fairem.audit.* inside).
  Result<AuditReport> report =
      pairwise ? AuditRunPairwise(*dataset, *run, AuditOptions{})
               : AuditRunSingle(*dataset, *run, AuditOptions{});
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }
  std::cout << "audit: " << report->entries.size() << " cells, "
            << report->UnfairEntries().size() << " unfair, "
            << report->NumDiscriminatedGroups()
            << " discriminated groups\n";
  return 0;
}

/// The batch audit over every matcher for one dataset, with the full
/// robustness surface exposed: retries, checkpoint/resume, error cells.
int Grid(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  double scale = 1.0;
  uint64_t seed = 0;
  bool pairwise = false;
  GridRunOptions options;
  options.audit.reference = AuditReference::kComplement;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--pairwise") {
      pairwise = true;
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &scale)) return Usage();
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      double v = 0.0;
      if (!ParseDouble(args[++i], &v)) return Usage();
      seed = static_cast<uint64_t>(v);
    } else if (args[i] == "--checkpoint_dir" && i + 1 < args.size()) {
      options.checkpoint_dir = args[++i];
    } else if (args[i] == "--retry_attempts" && i + 1 < args.size()) {
      double v = 0.0;
      if (!ParseDouble(args[++i], &v) || v < 1.0) return Usage();
      options.retry.max_attempts = static_cast<int>(v);
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      double v = 0.0;
      if (!ParseDouble(args[++i], &v) || v < 1.0) return Usage();
      options.jobs = static_cast<int>(v);
    } else if (args[i] == "--intra_jobs" && i + 1 < args.size()) {
      double v = 0.0;
      if (!ParseDouble(args[++i], &v) || v < 1.0) return Usage();
      options.intra_jobs = static_cast<int>(v);
    } else if (args[i] == "--cell_timeout_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.cell_timeout_s) ||
          options.cell_timeout_s < 0.0) {
        return Usage();
      }
    } else if (args[i] == "--cell_max_rss_mb" && i + 1 < args.size()) {
      double v = 0.0;
      if (!ParseDouble(args[++i], &v) || v < 0.0) return Usage();
      options.cell_max_rss_mb = static_cast<int>(v);
    } else if (args[i] == "--progress") {
      options.progress = true;
    } else {
      std::cerr << "unexpected argument '" << args[i] << "'\n";
      return Usage();
    }
  }
  Result<DatasetKind> kind = ParseDatasetKind(args[0]);
  if (!kind.ok()) {
    std::cerr << kind.status() << "\n";
    return 1;
  }
  Result<EMDataset> dataset = GenerateDataset(*kind, scale, seed);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  Result<std::string> grid = UnfairnessGridReport(*dataset, pairwise, options);
  if (!grid.ok()) {
    std::cerr << grid.status() << "\n";
    // A cooperative SIGINT/SIGTERM shutdown already reaped every worker;
    // exit with the conventional 128+signal code so scripts can tell an
    // interruption from a failure.
    return grid.status().IsCancelled()
               ? InterruptExitCode(ShutdownGuard::signal_number())
               : 1;
  }
  std::cout << "== " << dataset->name << " "
            << (pairwise ? "pairwise" : "single") << " fairness ==\n"
            << (grid->empty() ? "(no unfair cells)\n" : *grid);
  return 0;
}

/// Diff two metrics snapshots and optionally gate on --fail_on clauses.
/// Exit: 0 clean, 2 when a clause trips, 1 on usage/IO/parse errors.
int BenchDiff(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  bool show_all = false;
  std::vector<FailOnSpec> specs;
  for (size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--all") {
      show_all = true;
    } else if (args[i] == "--fail_on" && i + 1 < args.size()) {
      Result<FailOnSpec> spec = ParseFailOnSpec(args[++i]);
      if (!spec.ok()) {
        std::cerr << spec.status() << "\n";
        return 1;
      }
      specs.push_back(std::move(*spec));
    } else {
      std::cerr << "unexpected argument '" << args[i] << "'\n";
      return Usage();
    }
  }
  auto load = [](const std::string& path) -> Result<MetricsSnapshot> {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    Result<MetricsSnapshot> snapshot = MetricsSnapshotFromJson(text.str());
    if (!snapshot.ok()) {
      return Status::InvalidArgument("'" + path + "': " +
                                     snapshot.status().message());
    }
    return snapshot;
  };
  Result<MetricsSnapshot> old_snap = load(args[0]);
  if (!old_snap.ok()) {
    std::cerr << old_snap.status() << "\n";
    return 1;
  }
  Result<MetricsSnapshot> new_snap = load(args[1]);
  if (!new_snap.ok()) {
    std::cerr << new_snap.status() << "\n";
    return 1;
  }
  std::vector<BenchDiffRow> rows = DiffSnapshotsForBench(*old_snap, *new_snap);
  std::cout << RenderBenchDiffTable(rows, /*changed_only=*/!show_all);
  if (specs.empty()) return 0;
  Result<std::vector<std::string>> violations = CheckFailOnSpecs(
      FlattenSnapshot(*old_snap), FlattenSnapshot(*new_snap), specs);
  if (!violations.ok()) {
    std::cerr << violations.status() << "\n";
    return 1;
  }
  if (!violations->empty()) {
    for (const std::string& v : *violations) {
      std::cerr << "REGRESSION: " << v << "\n";
      // A violated histogram metric with exemplars names the slowest
      // traced query per bucket — print the worst one so the regression
      // points at a concrete trace id to pull from the slow-query log.
      for (const FailOnSpec& spec : specs) {
        if (v.rfind(spec.raw, 0) != 0) continue;
        size_t dot = spec.metric.rfind('.');
        if (dot == std::string::npos) continue;
        auto hist = new_snap->histograms.find(spec.metric.substr(0, dot));
        if (hist == new_snap->histograms.end()) continue;
        HistogramExemplar top = hist->second.TopExemplar();
        if (top.trace_id.empty()) continue;
        std::cerr << "  slowest exemplar for " << hist->first << ": trace "
                  << top.trace_id << " (" << FormatDouble(top.value, 6)
                  << ")\n";
      }
    }
    return 2;
  }
  std::cout << "benchdiff: " << specs.size() << " gate"
            << (specs.size() == 1 ? "" : "s") << " passed\n";
  return 0;
}

/// Summarize (and optionally compare) folded profiles from --profile_out.
/// Exit: 0 clean, 2 when --compare finds stage-share drift, 1 on errors.
int ProfTop(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  std::string by = "stack";
  int top_n = 20;
  std::string compare_path;
  double tolerance = 0.10;
  double min_share = 0.01;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--by" && i + 1 < args.size()) {
      by = args[++i];
      if (by != "stack" && by != "stage") return Usage();
    } else if (args[i] == "-n" && i + 1 < args.size()) {
      double v = 0.0;
      if (!ParseDouble(args[++i], &v) || v < 1.0) return Usage();
      top_n = static_cast<int>(v);
    } else if (args[i] == "--compare" && i + 1 < args.size()) {
      compare_path = args[++i];
    } else if (args[i] == "--tolerance" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &tolerance) || tolerance < 0.0) {
        return Usage();
      }
    } else if (args[i] == "--min_share" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &min_share) || min_share < 0.0) {
        return Usage();
      }
    } else {
      std::cerr << "unexpected argument '" << args[i] << "'\n";
      return Usage();
    }
  }
  auto load = [](const std::string& path) -> Result<FoldedProfile> {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    FoldedProfile profile = FoldedProfileFromText(text.str());
    if (profile.stacks.empty()) {
      return Status::InvalidArgument("'" + path +
                                     "' contains no folded stack lines");
    }
    return profile;
  };
  Result<FoldedProfile> profile = load(args[0]);
  if (!profile.ok()) {
    std::cerr << profile.status() << "\n";
    return 1;
  }
  if (!compare_path.empty()) {
    Result<FoldedProfile> other = load(compare_path);
    if (!other.ok()) {
      std::cerr << other.status() << "\n";
      return 1;
    }
    std::vector<std::string> drift =
        CompareStageShares(*profile, *other, tolerance, min_share);
    if (!drift.empty()) {
      for (const std::string& line : drift) {
        std::cerr << "STAGE DRIFT: " << line << "\n";
      }
      return 2;
    }
    std::cout << "proftop: stage shares of '" << args[0] << "' and '"
              << compare_path << "' agree within "
              << FormatDouble(tolerance, 2) << "\n";
    return 0;
  }
  std::cout << (by == "stage" ? RenderProfTopByStage(*profile)
                              : RenderProfTopByStack(*profile, top_n));
  return 0;
}

int Serve(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  ServeOptions options;
  options.socket_path = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    double v = 0.0;
    if (args[i] == "--datasets" && i + 1 < args.size()) {
      for (const std::string& name : Split(args[++i], ',')) {
        if (!name.empty()) options.warm.datasets.push_back(name);
      }
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.warm.scale)) return Usage();
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &v)) return Usage();
      options.warm.seed = static_cast<uint64_t>(v);
    } else if (args[i] == "--checkpoint_dir" && i + 1 < args.size()) {
      options.warm.checkpoint_dir = args[++i];
    } else if (args[i] == "--max_inflight" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &v) || v < 1.0) return Usage();
      options.max_inflight = static_cast<int>(v);
    } else if (args[i] == "--max_queue" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &v) || v < 0.0) return Usage();
      options.max_queue = static_cast<int>(v);
    } else if (args[i] == "--deadline_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.default_deadline_s)) return Usage();
    } else if (args[i] == "--max_deadline_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.max_deadline_s)) return Usage();
    } else if (args[i] == "--io_timeout_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.io_timeout_s)) return Usage();
    } else if (args[i] == "--retry_after_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.retry_after_s)) return Usage();
    } else if (args[i] == "--max_attempts" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &v) || v < 1.0) return Usage();
      options.max_attempts = static_cast<int>(v);
    } else if (args[i] == "--worker_max_rss_mb" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &v) || v < 0.0) return Usage();
      options.worker_max_rss_mb = static_cast<int>(v);
    } else if (args[i] == "--worker_max_cpu_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &v) || v < 0.0) return Usage();
      options.worker_max_cpu_s = static_cast<int>(v);
    } else if (args[i] == "--drain_metrics_out" && i + 1 < args.size()) {
      options.metrics_path = args[++i];
    } else if (args[i] == "--slow_query_ms" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.slow_query_ms)) return Usage();
    } else if (args[i] == "--slow_query_log" && i + 1 < args.size()) {
      options.slow_query_log = args[++i];
    } else if (args[i] == "--progress_interval_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.progress_interval_s)) {
        return Usage();
      }
    } else {
      std::cerr << "unexpected argument '" << args[i] << "'\n";
      return Usage();
    }
  }
  if (Status st = RunServeDaemon(options); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  return 0;
}

int Route(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  RouteOptions options;
  options.socket_path = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    double v = 0.0;
    if (args[i] == "--backends" && i + 1 < args.size()) {
      for (const std::string& path : Split(args[++i], ',')) {
        if (!path.empty()) options.backends.push_back(path);
      }
    } else if (args[i] == "--backends_file" && i + 1 < args.size()) {
      options.backends_file = args[++i];
    } else if (args[i] == "--health_period_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.health_period_s)) return Usage();
    } else if (args[i] == "--health_timeout_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.health_timeout_s)) return Usage();
    } else if (args[i] == "--breaker_failures" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &v) || v < 1.0) return Usage();
      options.breaker_failure_threshold = static_cast<int>(v);
    } else if (args[i] == "--breaker_cooldown_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.breaker_cooldown_s)) {
        return Usage();
      }
    } else if (args[i] == "--no_hedge") {
      options.hedge = false;
    } else if (args[i] == "--hedge_min_delay_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.hedge_min_delay_s)) return Usage();
    } else if (args[i] == "--max_inflight" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &v) || v < 1.0) return Usage();
      options.max_inflight_jobs = static_cast<int>(v);
    } else if (args[i] == "--deadline_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.default_deadline_s)) return Usage();
    } else if (args[i] == "--max_deadline_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.max_deadline_s)) return Usage();
    } else if (args[i] == "--io_timeout_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.io_timeout_s)) return Usage();
    } else if (args[i] == "--retry_after_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.retry_after_s)) return Usage();
    } else if (args[i] == "--drain_metrics_out" && i + 1 < args.size()) {
      options.metrics_path = args[++i];
    } else if (args[i] == "--slow_query_ms" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &options.slow_query_ms)) return Usage();
    } else if (args[i] == "--slow_query_log" && i + 1 < args.size()) {
      options.slow_query_log = args[++i];
    } else {
      std::cerr << "unexpected argument '" << args[i] << "'\n";
      return Usage();
    }
  }
  if (Status st = RunRouteDaemon(options); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  return 0;
}

int Query(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  IgnoreSigpipe();  // a daemon closing mid-write must not kill us
  const std::string socket_path = args[0];
  QueryRequest request;
  request.op = args[1];
  size_t flag_start = 2;
  if (request.op == "cell") {
    if (args.size() < 4) return Usage();
    request.dataset = args[2];
    request.matcher = args[3];
    flag_start = 4;
  } else if (request.op != "ping" && request.op != "stats") {
    std::cerr << "unknown query op '" << request.op << "'\n";
    return Usage();
  }
  RetryPolicy retry;
  retry.max_attempts = 5;
  ServeClientOptions client_options;
  bool verbose = false;
  bool trace_flag = false;
  for (size_t i = flag_start; i < args.size(); ++i) {
    double v = 0.0;
    if (args[i] == "--pairwise") {
      request.mode = "pairwise";
    } else if (args[i] == "--deadline_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &request.deadline_s)) return Usage();
    } else if (args[i] == "--retries" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &v) || v < 0.0) return Usage();
      retry.max_attempts = 1 + static_cast<int>(v);
    } else if (args[i] == "--io_timeout_s" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &client_options.io_timeout_s)) {
        return Usage();
      }
    } else if (args[i] == "--trace") {
      trace_flag = true;
    } else if (args[i] == "--verbose") {
      verbose = true;
    } else {
      std::cerr << "unexpected argument '" << args[i] << "'\n";
      return Usage();
    }
  }
  // --trace_out wants the merged Chrome trace, --verbose wants the per-hop
  // table; both need the trace context propagated end to end.
  client_options.trace =
      trace_flag || verbose || Tracer::Global().enabled();
  if (verbose) {
    client_options.on_progress = [](const ProgressUpdate& update) {
      std::ostringstream os;
      os << "progress: " << update.stage << " "
         << FormatDouble(100.0 * update.fraction, 0) << "%";
      if (update.eta_s >= 0.0) {
        os << " (eta " << FormatDouble(update.eta_s, 1) << "s)";
      }
      std::cerr << os.str() << "\n";
    };
  }
  Result<ServeClient> client = ServeClient::Connect(socket_path,
                                                    client_options);
  if (!client.ok()) {
    std::cerr << client.status() << "\n";
    return 1;
  }
  Result<QueryResponse> response = client->CallWithRetry(request, retry);
  if (client_options.trace && client->last_trace().valid()) {
    // Hand the collected cross-process spans to the tracer so --trace_out
    // writes one merged Chrome trace (per-process tracks, shared trace id).
    Tracer::Global().RecordWireSpans(client->last_spans());
  }
  if (!response.ok()) {
    std::cerr << response.status() << "\n";
    return 1;
  }
  if (verbose && client->last_trace().valid()) {
    const std::vector<WireSpan>& spans = client->last_spans();
    int64_t origin = 0;
    for (const WireSpan& span : spans) {
      if (origin == 0 || (span.start_unix_us > 0 &&
                          span.start_unix_us < origin)) {
        origin = span.start_unix_us;
      }
    }
    TablePrinter table({"hop", "process", "pid", "start ms", "ms", "notes"});
    for (const WireSpan& span : spans) {
      std::string notes;
      for (const auto& [key, value] : span.annotations) {
        if (!notes.empty()) notes += " ";
        notes += key + "=" + value;
      }
      table.AddRow(
          {span.name, span.process, std::to_string(span.pid),
           FormatDouble(
               static_cast<double>(span.start_unix_us - origin) / 1000.0, 2),
           FormatDouble(static_cast<double>(span.duration_us) / 1000.0, 2),
           notes});
    }
    std::cerr << "trace " << client->last_trace().TraceIdHex() << " ("
              << spans.size() << " spans)\n"
              << table.ToString();
    for (const WireSpan& span : spans) {
      if (span.name != "router.request") continue;
      for (const auto& [key, value] : span.annotations) {
        if (key == "outcome" && value == "hedge_won") {
          std::cerr << "note: a hedged duplicate won this query (the "
                       "primary backend was slower or failed)\n";
        }
      }
    }
  }
  if (!response->status.ok()) {
    std::cerr << response->status << "\n";
    return 1;
  }
  std::cout << response->payload << "\n";
  return 0;
}

/// Render a slow-query log written by `serve`/`route --slow_query_log`.
int Slowlog(const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage();
  Result<std::string> text = ReadFileToString(args[0]);
  if (!text.ok()) {
    std::cerr << text.status() << "\n";
    return 1;
  }
  TablePrinter table(
      {"trace", "process", "op", "key", "status", "total ms", "spans"});
  uint64_t shown = 0;
  uint64_t skipped = 0;
  for (const std::string& line : Split(*text, '\n')) {
    if (TrimAscii(line).empty()) continue;
    Result<SlowQueryEvent> event = ParseSlowQueryEvent(line);
    if (!event.ok()) {
      ++skipped;  // torn tail of a live log: render the rest anyway
      continue;
    }
    table.AddRow({event->trace_id.empty() ? "-" : event->trace_id,
                  event->process, event->op, event->key, event->status,
                  FormatDouble(event->total_ms, 2),
                  std::to_string(event->spans.size())});
    ++shown;
  }
  std::cout << shown << " slow quer" << (shown == 1 ? "y" : "ies");
  if (skipped > 0) std::cout << " (" << skipped << " unparseable skipped)";
  std::cout << "\n" << table.ToString();
  return 0;
}

/// Aggregate a slow-query log's span breakdowns; with --compare, gate on
/// per-hop share drift. Exit: 0 clean, 2 on drift, 1 on errors.
int TraceTop(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  std::string compare_path;
  double tolerance = 0.10;
  double min_share = 0.01;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--compare" && i + 1 < args.size()) {
      compare_path = args[++i];
    } else if (args[i] == "--tolerance" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &tolerance) || tolerance < 0.0) {
        return Usage();
      }
    } else if (args[i] == "--min_share" && i + 1 < args.size()) {
      if (!ParseDouble(args[++i], &min_share) || min_share < 0.0) {
        return Usage();
      }
    } else {
      std::cerr << "unexpected argument '" << args[i] << "'\n";
      return Usage();
    }
  }
  auto load = [](const std::string& path) -> Result<TraceTopSummary> {
    FAIREM_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
    TraceTopSummary summary = SummarizeSlowLog(text);
    if (summary.events == 0) {
      return Status::InvalidArgument("'" + path +
                                     "' contains no slow-query events");
    }
    return summary;
  };
  Result<TraceTopSummary> summary = load(args[0]);
  if (!summary.ok()) {
    std::cerr << summary.status() << "\n";
    return 1;
  }
  if (!compare_path.empty()) {
    Result<TraceTopSummary> other = load(compare_path);
    if (!other.ok()) {
      std::cerr << other.status() << "\n";
      return 1;
    }
    std::vector<std::string> drift =
        CompareHopShares(*summary, *other, tolerance, min_share);
    if (!drift.empty()) {
      for (const std::string& line : drift) {
        std::cerr << "HOP DRIFT: " << line << "\n";
      }
      return 2;
    }
    std::cout << "tracetop: hop shares of '" << args[0] << "' and '"
              << compare_path << "' agree within "
              << FormatDouble(tolerance, 2) << "\n";
    return 0;
  }
  std::cout << RenderHopShares(*summary);
  if (!summary->slowest_spans.empty()) {
    std::cout << "critical path of the slowest query ("
              << FormatDouble(summary->slowest_total_ms, 2) << " ms, trace "
              << (summary->slowest_trace_id.empty()
                      ? "-"
                      : summary->slowest_trace_id)
              << "):\n"
              << RenderCriticalPath(summary->slowest_spans);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  // Peel the observability flags off first — they are valid anywhere on the
  // command line, for every subcommand, as `--flag value` or `--flag=value`.
  ObsOptions obs;
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    bool has_value = false;
    if (size_t eq = arg.find('='); eq != std::string::npos && arg[0] == '-') {
      value = arg.substr(eq + 1);
      arg.resize(eq);
      has_value = true;
    }
    auto take_value = [&]() {
      if (!has_value && i + 1 < argc) {
        value = argv[++i];
        has_value = true;
      }
      return has_value;
    };
    if (arg == "--log_level" && take_value()) {
      obs.log_level = value;
    } else if (arg == "--trace_out" && take_value()) {
      obs.trace_out = value;
    } else if (arg == "--metrics_out" && take_value()) {
      obs.metrics_out = value;
    } else if (arg == "--metrics_format" && take_value()) {
      Result<MetricsFormat> format = ParseMetricsFormat(value);
      if (!format.ok()) {
        std::cerr << format.status() << "\n";
        return Usage();
      }
      obs.metrics_format = *format;
    } else if (arg == "--profile_out" && take_value()) {
      obs.profile_out = value;
    } else if (arg == "--profile_hz" && take_value()) {
      double v = 0.0;
      if (!ParseDouble(value, &v) || v < 1.0) {
        std::cerr << "--profile_hz needs a positive integer\n";
        return Usage();
      }
      obs.profile_hz = static_cast<int>(v);
    } else if (arg == "--profile_mode" && take_value()) {
      if (!ParseProfileClock(value).ok()) {
        std::cerr << "--profile_mode must be cpu or wall\n";
        return Usage();
      }
      obs.profile_mode = value;
    } else if (arg == "--failpoints" && take_value()) {
      if (Status st = FailpointRegistry::Global().Configure(value); !st.ok()) {
        std::cerr << st << "\n";
        return Usage();
      }
    } else if (has_value) {
      // Re-split other --flag=value args so subcommand parsers, which
      // expect space-separated pairs, see them uniformly.
      args.push_back(std::move(arg));
      args.push_back(std::move(value));
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (Status st = ApplyObsOptions(obs); !st.ok()) {
    std::cerr << st << "\n";
    return Usage();
  }
  int code = 1;
  if (command == "list") {
    code = List(args);
  } else if (command == "generate") {
    code = Generate(args);
  } else if (command == "audit") {
    code = Audit(args);
  } else if (command == "pipeline") {
    code = Pipeline(args);
  } else if (command == "grid") {
    code = Grid(args);
  } else if (command == "benchdiff") {
    code = BenchDiff(args);
  } else if (command == "proftop") {
    code = ProfTop(args);
  } else if (command == "serve") {
    code = Serve(args);
  } else if (command == "route") {
    code = Route(args);
  } else if (command == "query") {
    code = Query(args);
  } else if (command == "slowlog") {
    code = Slowlog(args);
  } else if (command == "tracetop") {
    code = TraceTop(args);
  } else {
    return Usage();
  }
  if (Status st = FlushObsOutputs(obs); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  return code;
}

}  // namespace
}  // namespace fairem

int main(int argc, char** argv) { return fairem::Main(argc, argv); }
