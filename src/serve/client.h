#ifndef FAIREM_SERVE_CLIENT_H_
#define FAIREM_SERVE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/robust/retry.h"
#include "src/serve/protocol.h"
#include "src/util/result.h"

namespace fairem {

// Blocking client for the `fairem serve` daemon. One connection, one
// request at a time. Every IO carries a deadline, so a wedged or
// overloaded daemon yields a definite error instead of a hang; kUnavailable
// (shed, draining, disconnect) is the retryable class and CallWithRetry
// handles it with jittered backoff, honoring the server's retry_after_s
// hint and transparently reconnecting when the daemon closed on us.

struct ServeClientOptions {
  /// Per-request socket IO budget (write + read each get this much).
  double io_timeout_s = 10.0;
  /// How long Connect keeps retrying while the daemon is still starting
  /// up (socket file absent / not yet listening).
  double connect_timeout_s = 10.0;
  /// Distributed tracing (DESIGN.md §16): mint a TraceContext per query,
  /// propagate it on QREQ, record client-side spans (query root, each
  /// attempt, each backoff sleep), and collect the cross-process spans the
  /// response piggybacks — available via last_spans() afterwards.
  bool trace = false;
  /// Invoked (on the calling thread, mid-Call) for each advisory PROG
  /// frame the server streams for the in-flight request. May be null.
  std::function<void(const ProgressUpdate&)> on_progress;
};

class ServeClient {
 public:
  /// Connects, retrying until the daemon listens or the timeout passes
  /// (kUnavailable then).
  static Result<ServeClient> Connect(const std::string& socket_path,
                                     const ServeClientOptions& options = {});

  ServeClient() = default;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// One request/response round trip. A transport-level failure (daemon
  /// gone, IO deadline) surfaces as the Result status; a query-level
  /// failure arrives as an OK Result whose response.status is the error.
  /// Assigns and checks the correlation id.
  Result<QueryResponse> Call(const QueryRequest& request);

  /// Call, retrying kUnavailable outcomes (transport or response) under
  /// `policy`, sleeping max(jittered backoff, server retry_after_s hint)
  /// and reconnecting first when the transport failed. Other errors —
  /// including kDeadlineExceeded, which is definite — return immediately.
  /// Cumulative sleep is capped by the tighter of policy.deadline_seconds
  /// and request.deadline_s: a backoff that would overshoot it returns a
  /// prompt kDeadlineExceeded response naming the last error instead of
  /// sleeping past the deadline.
  Result<QueryResponse> CallWithRetry(const QueryRequest& request,
                                      const RetryPolicy& policy,
                                      uint64_t seed = 1234);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// The trace of the most recent traced query: its context (trace id) and
  /// every span collected — the client's own plus the ones the response
  /// carried from router/daemon/worker. Valid until the next traced query
  /// starts. Empty when options.trace is off.
  const TraceContext& last_trace() const { return last_trace_; }
  const std::vector<WireSpan>& last_spans() const { return last_spans_; }

 private:
  /// One transport round trip; records a "client.attempt" span and streams
  /// PROG frames when `ctx` is valid. `attempt` > 0 annotates the span.
  Result<QueryResponse> CallAttempt(const QueryRequest& request,
                                    const TraceContext& ctx, int attempt);

  std::string socket_path_;
  ServeClientOptions options_;
  int fd_ = -1;
  uint64_t next_id_ = 0;
  TraceContext last_trace_;
  std::vector<WireSpan> last_spans_;
};

}  // namespace fairem

#endif  // FAIREM_SERVE_CLIENT_H_
