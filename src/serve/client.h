#ifndef FAIREM_SERVE_CLIENT_H_
#define FAIREM_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/robust/retry.h"
#include "src/serve/protocol.h"
#include "src/util/result.h"

namespace fairem {

// Blocking client for the `fairem serve` daemon. One connection, one
// request at a time. Every IO carries a deadline, so a wedged or
// overloaded daemon yields a definite error instead of a hang; kUnavailable
// (shed, draining, disconnect) is the retryable class and CallWithRetry
// handles it with jittered backoff, honoring the server's retry_after_s
// hint and transparently reconnecting when the daemon closed on us.

struct ServeClientOptions {
  /// Per-request socket IO budget (write + read each get this much).
  double io_timeout_s = 10.0;
  /// How long Connect keeps retrying while the daemon is still starting
  /// up (socket file absent / not yet listening).
  double connect_timeout_s = 10.0;
};

class ServeClient {
 public:
  /// Connects, retrying until the daemon listens or the timeout passes
  /// (kUnavailable then).
  static Result<ServeClient> Connect(const std::string& socket_path,
                                     const ServeClientOptions& options = {});

  ServeClient() = default;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// One request/response round trip. A transport-level failure (daemon
  /// gone, IO deadline) surfaces as the Result status; a query-level
  /// failure arrives as an OK Result whose response.status is the error.
  /// Assigns and checks the correlation id.
  Result<QueryResponse> Call(const QueryRequest& request);

  /// Call, retrying kUnavailable outcomes (transport or response) under
  /// `policy`, sleeping max(jittered backoff, server retry_after_s hint)
  /// and reconnecting first when the transport failed. Other errors —
  /// including kDeadlineExceeded, which is definite — return immediately.
  /// Cumulative sleep is capped by the tighter of policy.deadline_seconds
  /// and request.deadline_s: a backoff that would overshoot it returns a
  /// prompt kDeadlineExceeded response naming the last error instead of
  /// sleeping past the deadline.
  Result<QueryResponse> CallWithRetry(const QueryRequest& request,
                                      const RetryPolicy& policy,
                                      uint64_t seed = 1234);

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  std::string socket_path_;
  ServeClientOptions options_;
  int fd_ = -1;
  uint64_t next_id_ = 0;
};

}  // namespace fairem

#endif  // FAIREM_SERVE_CLIENT_H_
