#ifndef FAIREM_SERVE_SERVER_H_
#define FAIREM_SERVE_SERVER_H_

#include <string>

#include "src/serve/warm_state.h"
#include "src/util/result.h"

namespace fairem {

// The always-on audit daemon (`fairem serve`): a long-lived process that
// owns warmed state — generated datasets, checkpointed cell results — and
// answers concurrent queries over a UNIX-domain socket speaking the framed
// protocol in src/serve/protocol.h. Robustness posture (DESIGN.md §14):
//
//   * Bounded admission: at most `max_inflight` queries compute at once and
//     at most `max_queue` wait; past that, requests are shed immediately
//     with a retryable kUnavailable carrying a retry_after_s hint.
//   * End-to-end deadlines: every query carries one (client-requested,
//     clamped to `max_deadline_s`, defaulting to `default_deadline_s`).
//     Expiry is enforced while queued AND while computing — a worker past
//     its deadline is SIGKILLed by the watchdog. Either way the client gets
//     a definite kDeadlineExceeded, never a hang.
//   * Crash isolation: cell queries run in forked worker processes under
//     rlimits. A crashing worker is respawned up to `max_attempts`; budget
//     exhaustion degrades to a structured kInternal reply. Warm state
//     lives only in the parent, so workers can never corrupt it.
//   * Slow-client protection: per-connection IO activity deadlines; a peer
//     that stalls mid-frame or never drains its responses is disconnected.
//     EPIPE/ECONNRESET on write is a clean client-disconnect, not an error.
//   * Cooperative drain: SIGTERM/SIGINT stops accepting, sheds the queue
//     (kUnavailable "draining"), lets in-flight queries finish or
//     deadline-out, flushes responses, then durably writes the final
//     metrics snapshot to `metrics_path` and returns OK.
//
// The daemon loop is single-threaded (one poll() over the listener, every
// connection, and every worker pipe); concurrency comes from the forked
// workers, never from threads.

struct ServeOptions {
  /// UNIX-domain socket path. A stale file from a dead daemon is replaced.
  std::string socket_path;
  WarmStateOptions warm;
  /// Queries computing in forked workers at once.
  int max_inflight = 2;
  /// Admitted-but-not-started queries; arrivals past this are shed.
  int max_queue = 8;
  double default_deadline_s = 30.0;
  double max_deadline_s = 120.0;
  /// Per-connection IO activity deadline (slow-client protection).
  double io_timeout_s = 10.0;
  /// Backoff hint shipped with kUnavailable sheds.
  double retry_after_s = 0.05;
  /// Spawn attempts per query including the first; crashes respawn until
  /// the budget or the query deadline runs out.
  int max_attempts = 2;
  /// RLIMIT_AS / RLIMIT_CPU for query workers (0 disables).
  int worker_max_rss_mb = 0;
  int worker_max_cpu_s = 0;
  double poll_interval_s = 0.01;
  /// When non-empty, the final metrics snapshot is written here durably
  /// (temp + rename + fsync) as the last step of the drain.
  std::string metrics_path;
  int listen_backlog = 64;
  /// Slow-query log (DESIGN.md §16): queries that take longer than
  /// slow_query_ms end-to-end get one wide-event JSON line (trace id, op,
  /// key, status, span breakdown) appended to slow_query_log, rate-limited.
  /// Disabled when slow_query_ms <= 0 or the path is empty.
  double slow_query_ms = 0.0;
  std::string slow_query_log;
  /// Minimum spacing of advisory PROG frames streamed to the client of a
  /// traced in-flight query (progress %, ETA from the cell-duration
  /// histogram). <= 0 disables progress streaming.
  double progress_interval_s = 0.25;
};

/// Runs the daemon until a SIGTERM/SIGINT drain completes. Returns OK after
/// a clean drain; an error Status when the socket cannot be set up or warm
/// state cannot be built. Installs its own ShutdownGuard and ignores
/// SIGPIPE. Metrics land under fairem.serve.*.
Status RunServeDaemon(const ServeOptions& options);

/// The retry_after_s hint shipped with a queue-full shed, scaled by load so
/// a fleet of retrying clients (or a router doing backpressure) converges
/// instead of hammering a saturated daemon at the base period. Monotone
/// non-decreasing in queue_depth and inflight, equal to `base` at zero
/// load, and bounded by 3x base (base + one full queue + full inflight).
/// Degenerate capacities (max <= 0) contribute nothing.
double LoadAwareRetryAfterS(double base, int queue_depth, int max_queue,
                            int inflight, int max_inflight);

}  // namespace fairem

#endif  // FAIREM_SERVE_SERVER_H_
