#include "src/serve/protocol.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/util/io_util.h"
#include "src/util/json.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

constexpr size_t kMagicLen = 8;
constexpr size_t kFrameTypeLen = 4;
constexpr size_t kFrameHeaderLen = kFrameTypeLen + 16 + 1;

Counter* UnknownFramesCounter() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "fairem.telemetry.unknown_frames");
  return counter;
}

/// Parses a frame header (same layout as the telemetry wire). Returns an
/// error on malformed bytes — for a length-prefixed stream that is fatal.
Status ParseHeader(const char* data, std::string* type, uint64_t* length) {
  for (size_t i = 0; i < kFrameTypeLen; ++i) {
    char c = data[i];
    if (c < 0x21 || c > 0x7e) {
      return Status::InvalidArgument("serve frame: type is not printable");
    }
  }
  uint64_t out = 0;
  for (size_t i = kFrameTypeLen; i < kFrameTypeLen + 16; ++i) {
    char c = data[i];
    out <<= 4;
    if (c >= '0' && c <= '9') {
      out |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      out |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return Status::InvalidArgument("serve frame: bad length digit");
    }
  }
  if (data[kFrameHeaderLen - 1] != '\n') {
    return Status::InvalidArgument("serve frame: missing header terminator");
  }
  if (out > kMaxServeFrameBytes) {
    return Status::InvalidArgument("serve frame: declared length " +
                                   std::to_string(out) + " exceeds cap");
  }
  *type = std::string(data, kFrameTypeLen);
  *length = out;
  return Status::OK();
}

bool KnownMessageType(const std::string& type) {
  return type == kFrameQueryRequest || type == kFrameQueryResponse ||
         type == kFrameHealth || type == kFrameProgress;
}

}  // namespace

std::string SerializeQueryRequest(const QueryRequest& request) {
  std::ostringstream os;
  os << "{\"op\":";
  AppendJsonString(&os, request.op);
  os << ",\"dataset\":";
  AppendJsonString(&os, request.dataset);
  os << ",\"matcher\":";
  AppendJsonString(&os, request.matcher);
  os << ",\"mode\":";
  AppendJsonString(&os, request.mode);
  os << ",\"deadline_s\":" << FormatDouble(request.deadline_s, 6)
     << ",\"id\":" << request.id;
  if (request.trace.valid()) {
    os << ",\"trace_id\":";
    AppendJsonString(&os, request.trace.TraceIdHex());
    os << ",\"span_id\":" << request.trace.parent_span_id
       << ",\"sampled\":" << (request.trace.sampled ? "true" : "false");
  }
  os << "}";
  return os.str();
}

Result<QueryRequest> ParseQueryRequest(const std::string& json) {
  FAIREM_ASSIGN_OR_RETURN(JsonValue root, JsonParse(json));
  if (root.kind != JsonValue::kObject) {
    return Status::InvalidArgument("serve request: not a JSON object");
  }
  QueryRequest request;
  const JsonValue* op = JsonFind(root, "op");
  if (op == nullptr) {
    return Status::InvalidArgument("serve request: missing op");
  }
  FAIREM_ASSIGN_OR_RETURN(request.op, JsonAsString(*op, "op"));
  if (const JsonValue* v = JsonFind(root, "dataset")) {
    FAIREM_ASSIGN_OR_RETURN(request.dataset, JsonAsString(*v, "dataset"));
  }
  if (const JsonValue* v = JsonFind(root, "matcher")) {
    FAIREM_ASSIGN_OR_RETURN(request.matcher, JsonAsString(*v, "matcher"));
  }
  if (const JsonValue* v = JsonFind(root, "mode")) {
    FAIREM_ASSIGN_OR_RETURN(request.mode, JsonAsString(*v, "mode"));
  }
  if (const JsonValue* v = JsonFind(root, "deadline_s")) {
    FAIREM_ASSIGN_OR_RETURN(request.deadline_s,
                            JsonAsDouble(*v, "deadline_s"));
  }
  if (const JsonValue* v = JsonFind(root, "id")) {
    FAIREM_ASSIGN_OR_RETURN(request.id, JsonAsU64(*v, "id"));
  }
  // Trace fields are advisory: anything malformed degrades to an untraced
  // request rather than erroring it, so a buggy or future peer's trace
  // experiment can never take queries down.
  if (const JsonValue* v = JsonFind(root, "trace_id")) {
    if (v->kind == JsonValue::kString &&
        ParseTraceIdHex(v->scalar, &request.trace.trace_hi,
                        &request.trace.trace_lo)) {
      if (const JsonValue* span = JsonFind(root, "span_id")) {
        if (Result<uint64_t> id = JsonAsU64(*span, "span_id"); id.ok()) {
          request.trace.parent_span_id = *id;
        }
      }
      if (const JsonValue* sampled = JsonFind(root, "sampled")) {
        if (Result<bool> b = JsonAsBool(*sampled, "sampled"); b.ok()) {
          request.trace.sampled = *b;
        }
      }
    }
  }
  return request;
}

std::string SerializeQueryResponse(const QueryResponse& response) {
  std::ostringstream os;
  os << "{\"id\":" << response.id;
  if (response.status.ok()) {
    os << ",\"ok\":true,\"payload\":";
    AppendJsonString(&os, response.payload);
  } else {
    os << ",\"ok\":false,\"code\":"
       << static_cast<int>(response.status.code()) << ",\"code_name\":";
    AppendJsonString(&os, StatusCodeToString(response.status.code()));
    os << ",\"message\":";
    AppendJsonString(&os, response.status.message());
    os << ",\"retry_after_s\":" << FormatDouble(response.retry_after_s, 6);
  }
  if (!response.spans.empty()) {
    os << ",\"spans\":" << SerializeWireSpans(response.spans);
  }
  os << "}";
  return os.str();
}

Result<QueryResponse> ParseQueryResponse(const std::string& json) {
  FAIREM_ASSIGN_OR_RETURN(JsonValue root, JsonParse(json));
  if (root.kind != JsonValue::kObject) {
    return Status::InvalidArgument("serve response: not a JSON object");
  }
  QueryResponse response;
  if (const JsonValue* v = JsonFind(root, "id")) {
    FAIREM_ASSIGN_OR_RETURN(response.id, JsonAsU64(*v, "id"));
  }
  if (const JsonValue* v = JsonFind(root, "spans")) {
    // Tolerant: a response whose spans are garbage still delivers its
    // payload (the trace just loses those hops).
    response.spans = ParseWireSpans(*v);
  }
  const JsonValue* ok = JsonFind(root, "ok");
  if (ok == nullptr) {
    return Status::InvalidArgument("serve response: missing ok");
  }
  FAIREM_ASSIGN_OR_RETURN(bool is_ok, JsonAsBool(*ok, "ok"));
  if (is_ok) {
    const JsonValue* payload = JsonFind(root, "payload");
    if (payload == nullptr) {
      return Status::InvalidArgument("serve response: missing payload");
    }
    FAIREM_ASSIGN_OR_RETURN(response.payload,
                            JsonAsString(*payload, "payload"));
    return response;
  }
  const JsonValue* code = JsonFind(root, "code");
  const JsonValue* message = JsonFind(root, "message");
  if (code == nullptr || message == nullptr) {
    return Status::InvalidArgument("serve response: missing error detail");
  }
  FAIREM_ASSIGN_OR_RETURN(int64_t code_value, JsonAsI64(*code, "code"));
  if (code_value < 1 ||
      code_value > static_cast<int64_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("serve response: status code " +
                                   std::to_string(code_value) +
                                   " out of range");
  }
  std::string text;
  FAIREM_ASSIGN_OR_RETURN(text, JsonAsString(*message, "message"));
  response.status = Status(static_cast<StatusCode>(code_value), text);
  if (const JsonValue* v = JsonFind(root, "retry_after_s")) {
    FAIREM_ASSIGN_OR_RETURN(response.retry_after_s,
                            JsonAsDouble(*v, "retry_after_s"));
  }
  return response;
}

std::string SerializeHealthReport(const HealthReport& report) {
  std::ostringstream os;
  os << "{\"probe\":" << (report.probe ? "true" : "false")
     << ",\"id\":" << report.id
     << ",\"serving\":" << (report.serving ? "true" : "false")
     << ",\"queue_depth\":" << FormatDouble(report.queue_depth, 6)
     << ",\"inflight\":" << FormatDouble(report.inflight, 6)
     << ",\"retry_after_s\":" << FormatDouble(report.retry_after_s, 6)
     << "}";
  return os.str();
}

Result<HealthReport> ParseHealthReport(const std::string& json) {
  FAIREM_ASSIGN_OR_RETURN(JsonValue root, JsonParse(json));
  if (root.kind != JsonValue::kObject) {
    return Status::InvalidArgument("health report: not a JSON object");
  }
  // Every field is optional with a safe default, and unknown fields are
  // ignored: health probing must keep working across mixed versions.
  HealthReport report;
  if (const JsonValue* v = JsonFind(root, "probe")) {
    FAIREM_ASSIGN_OR_RETURN(report.probe, JsonAsBool(*v, "probe"));
  }
  if (const JsonValue* v = JsonFind(root, "id")) {
    FAIREM_ASSIGN_OR_RETURN(report.id, JsonAsU64(*v, "id"));
  }
  if (const JsonValue* v = JsonFind(root, "serving")) {
    FAIREM_ASSIGN_OR_RETURN(report.serving, JsonAsBool(*v, "serving"));
  }
  if (const JsonValue* v = JsonFind(root, "queue_depth")) {
    FAIREM_ASSIGN_OR_RETURN(report.queue_depth,
                            JsonAsDouble(*v, "queue_depth"));
  }
  if (const JsonValue* v = JsonFind(root, "inflight")) {
    FAIREM_ASSIGN_OR_RETURN(report.inflight, JsonAsDouble(*v, "inflight"));
  }
  if (const JsonValue* v = JsonFind(root, "retry_after_s")) {
    FAIREM_ASSIGN_OR_RETURN(report.retry_after_s,
                            JsonAsDouble(*v, "retry_after_s"));
  }
  return report;
}

std::string SerializeProgressUpdate(const ProgressUpdate& update) {
  std::ostringstream os;
  os << "{\"id\":" << update.id
     << ",\"fraction\":" << FormatDouble(update.fraction, 6)
     << ",\"eta_s\":" << FormatDouble(update.eta_s, 6) << ",\"stage\":";
  AppendJsonString(&os, update.stage);
  if (!update.trace_id.empty()) {
    os << ",\"trace_id\":";
    AppendJsonString(&os, update.trace_id);
  }
  os << "}";
  return os.str();
}

Result<ProgressUpdate> ParseProgressUpdate(const std::string& json) {
  FAIREM_ASSIGN_OR_RETURN(JsonValue root, JsonParse(json));
  if (root.kind != JsonValue::kObject) {
    return Status::InvalidArgument("progress update: not a JSON object");
  }
  // Per-field tolerant like HealthReport: PROG is advisory, and a frame a
  // future peer enriches must still parse here.
  ProgressUpdate update;
  if (const JsonValue* v = JsonFind(root, "id")) {
    if (Result<uint64_t> id = JsonAsU64(*v, "id"); id.ok()) update.id = *id;
  }
  if (const JsonValue* v = JsonFind(root, "fraction")) {
    if (Result<double> f = JsonAsDouble(*v, "fraction"); f.ok()) {
      update.fraction = *f;
    }
  }
  if (const JsonValue* v = JsonFind(root, "eta_s")) {
    if (Result<double> eta = JsonAsDouble(*v, "eta_s"); eta.ok()) {
      update.eta_s = *eta;
    }
  }
  if (const JsonValue* v = JsonFind(root, "stage")) {
    if (v->kind == JsonValue::kString) update.stage = v->scalar;
  }
  if (const JsonValue* v = JsonFind(root, "trace_id")) {
    if (v->kind == JsonValue::kString) update.trace_id = v->scalar;
  }
  return update;
}

std::string EncodeServeMessage(const std::string& type,
                               const std::string& bytes) {
  std::string wire;
  wire.reserve(kMagicLen + kFrameHeaderLen + bytes.size());
  wire.append(kTelemetryMagic, kMagicLen);
  char type4[kFrameTypeLen];
  for (size_t i = 0; i < kFrameTypeLen; ++i) {
    type4[i] = i < type.size() ? type[i] : '_';
  }
  wire.append(type4, kFrameTypeLen);
  char length[32];
  std::snprintf(length, sizeof(length), "%016zx", bytes.size());
  wire.append(length, 16);
  wire.push_back('\n');
  wire.append(bytes);
  return wire;
}

Status WriteServeMessage(int fd, const std::string& type,
                         const std::string& bytes, double timeout_s) {
  const std::string wire = EncodeServeMessage(type, bytes);
  return WriteFullDeadline(fd, wire.data(), wire.size(), timeout_s);
}

Result<ServeMessage> ReadServeMessage(int fd, double timeout_s) {
  char magic[kMagicLen];
  FAIREM_RETURN_NOT_OK(ReadFullDeadline(fd, magic, sizeof(magic), timeout_s));
  if (std::char_traits<char>::compare(magic, kTelemetryMagic, kMagicLen) !=
      0) {
    return Status::InvalidArgument("serve frame: bad magic");
  }
  // Skip unknown-typed frames until the known frame that completes the
  // message, so a newer peer can prepend advisory frames without breaking
  // us. A redundant magic at a frame boundary is tolerated too: a peer
  // that encodes every frame as magic + frame produces that shape.
  for (;;) {
    char header[kFrameHeaderLen];
    FAIREM_RETURN_NOT_OK(ReadFullDeadline(fd, header, sizeof(header),
                                          timeout_s));
    while (std::char_traits<char>::compare(header, kTelemetryMagic,
                                           kMagicLen) == 0) {
      std::memmove(header, header + kMagicLen, kFrameHeaderLen - kMagicLen);
      FAIREM_RETURN_NOT_OK(ReadFullDeadline(
          fd, header + kFrameHeaderLen - kMagicLen, kMagicLen, timeout_s));
    }
    std::string type;
    uint64_t length = 0;
    FAIREM_RETURN_NOT_OK(ParseHeader(header, &type, &length));
    std::string body(length, '\0');
    if (length > 0) {
      FAIREM_RETURN_NOT_OK(
          ReadFullDeadline(fd, body.data(), body.size(), timeout_s));
    }
    if (KnownMessageType(type)) return ServeMessage{type, std::move(body)};
    UnknownFramesCounter()->Increment();
  }
}

void FrameDecoder::Feed(const char* data, size_t n) {
  // Reclaim the consumed prefix before growing, keeping the buffer bounded
  // by one frame regardless of how long the connection lives.
  if (consumed_ > 0) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(data, n);
}

Result<FrameDecoder::Next> FrameDecoder::TryNext(ServeMessage* out) {
  for (;;) {
    if (!saw_magic_) {
      if (buf_.size() - consumed_ < kMagicLen) return Next::kNeedMore;
      if (buf_.compare(consumed_, kMagicLen, kTelemetryMagic, kMagicLen) !=
          0) {
        return Status::InvalidArgument("serve frame: bad magic");
      }
      consumed_ += kMagicLen;
      saw_magic_ = true;
    }
    // A redundant magic at a frame boundary (unknown frame followed by a
    // fresh magic+frame message) is consumed, not treated as a bad header.
    if (buf_.size() - consumed_ >= kMagicLen &&
        buf_.compare(consumed_, kMagicLen, kTelemetryMagic, kMagicLen) ==
            0) {
      consumed_ += kMagicLen;
      continue;
    }
    if (buf_.size() - consumed_ < kFrameHeaderLen) return Next::kNeedMore;
    std::string type;
    uint64_t length = 0;
    FAIREM_RETURN_NOT_OK(ParseHeader(buf_.data() + consumed_, &type,
                                     &length));
    if (buf_.size() - consumed_ - kFrameHeaderLen < length) {
      return Next::kNeedMore;
    }
    consumed_ += kFrameHeaderLen;
    std::string body = buf_.substr(consumed_, length);
    consumed_ += length;
    if (KnownMessageType(type)) {
      saw_magic_ = false;  // the next message starts with its own magic
      out->type = std::move(type);
      out->bytes = std::move(body);
      return Next::kMessage;
    }
    // Unknown frame inside a message: skip and keep looking for the known
    // frame that completes it.
    UnknownFramesCounter()->Increment();
  }
}

}  // namespace fairem
