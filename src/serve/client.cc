#include "src/serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/util/io_util.h"

namespace fairem {
namespace {

Result<int> ConnectOnce(const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("client: socket path empty or too long: '" +
                                   socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("client: socket failed: ") +
                           std::strerror(errno));
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    int saved = errno;
    ::close(fd);
    // ENOENT (socket not bound yet) and ECONNREFUSED (bound, not yet
    // listening, or a dead daemon's stale file) both mean "not up (yet)".
    if (saved == ENOENT || saved == ECONNREFUSED || saved == EAGAIN) {
      return Status::Unavailable(std::string("daemon not up: ") +
                                 std::strerror(saved));
    }
    return Status::IOError("client: connect('" + socket_path +
                           "') failed: " + std::strerror(saved));
  }
  return fd;
}

}  // namespace

Result<ServeClient> ServeClient::Connect(const std::string& socket_path,
                                         const ServeClientOptions& options) {
  const double start = retry_internal::MonotonicSeconds();
  Result<int> fd = ConnectOnce(socket_path);
  while (!fd.ok() && fd.status().IsUnavailable() &&
         retry_internal::MonotonicSeconds() - start <
             options.connect_timeout_s) {
    retry_internal::SleepSeconds(0.01);
    fd = ConnectOnce(socket_path);
  }
  FAIREM_RETURN_NOT_OK(fd.status());
  ServeClient client;
  client.socket_path_ = socket_path;
  client.options_ = options;
  client.fd_ = *fd;
  return client;
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : socket_path_(std::move(other.socket_path_)),
      options_(other.options_),
      fd_(other.fd_),
      next_id_(other.next_id_) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    socket_path_ = std::move(other.socket_path_);
    options_ = other.options_;
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    other.fd_ = -1;
  }
  return *this;
}

ServeClient::~ServeClient() { Close(); }

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<QueryResponse> ServeClient::Call(const QueryRequest& request) {
  if (fd_ < 0) return Status::Unavailable("client: not connected");
  QueryRequest sent = request;
  sent.id = ++next_id_;
  Status wrote = WriteServeMessage(fd_, kFrameQueryRequest,
                                   SerializeQueryRequest(sent),
                                   options_.io_timeout_s);
  if (!wrote.ok()) {
    Close();  // the stream position is unknown; a fresh connection is the
              // only safe retry
    return wrote;
  }
  // The response may lag by the query's own deadline (compute time) on top
  // of transport time, so budget for both.
  const double read_timeout =
      options_.io_timeout_s +
      (sent.deadline_s > 0.0 ? sent.deadline_s : 0.0);
  Result<ServeMessage> message = ReadServeMessage(fd_, read_timeout);
  if (!message.ok()) {
    Close();
    return message.status();
  }
  if (message->type != kFrameQueryResponse) {
    Close();
    return Status::IOError("client: unexpected frame type '" +
                           message->type + "'");
  }
  FAIREM_ASSIGN_OR_RETURN(QueryResponse response,
                          ParseQueryResponse(message->bytes));
  if (response.id != sent.id) {
    Close();
    return Status::IOError("client: response id " +
                           std::to_string(response.id) +
                           " does not match request id " +
                           std::to_string(sent.id));
  }
  return response;
}

Result<QueryResponse> ServeClient::CallWithRetry(const QueryRequest& request,
                                                 const RetryPolicy& policy,
                                                 uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const double start = retry_internal::MonotonicSeconds();
  // The effective wall-clock budget is the tighter of the policy deadline
  // and the query's own deadline: backoff sleeps (including a server's
  // retry_after_s hint, which can be large under load) must never push the
  // caller past the moment its answer is due.
  double budget = policy.deadline_seconds;
  if (request.deadline_s > 0.0 &&
      (budget <= 0.0 || request.deadline_s < budget)) {
    budget = request.deadline_s;
  }
  int attempt = 1;
  while (true) {
    if (fd_ < 0) {
      // Reconnect with whatever wall-clock budget remains (at least one
      // immediate attempt).
      ServeClientOptions reconnect = options_;
      if (budget > 0.0) {
        reconnect.connect_timeout_s = std::max(
            0.0, budget - (retry_internal::MonotonicSeconds() - start));
      }
      Result<ServeClient> fresh = Connect(socket_path_, reconnect);
      if (fresh.ok()) {
        // Keep our id counter: correlation ids stay unique per logical
        // client even across reconnects.
        fresh->next_id_ = next_id_;
        *this = std::move(*fresh);
      } else if (attempt >= policy.max_attempts ||
                 !fresh.status().IsUnavailable()) {
        return fresh.status();
      }
    }
    Result<QueryResponse> outcome = Call(request);
    const Status& status =
        outcome.ok() ? outcome->status : outcome.status();
    // Only kUnavailable is worth retrying here: it is the server's
    // explicit "try again" (shed/drain) or a transport drop. Deadline
    // expiry and input errors are definite.
    if (status.ok() || !status.IsUnavailable() ||
        attempt >= policy.max_attempts) {
      return outcome;
    }
    double backoff = BackoffSeconds(policy, attempt, &rng);
    if (outcome.ok() && outcome->retry_after_s > backoff) {
      backoff = outcome->retry_after_s;
    }
    if (budget > 0.0) {
      const double remaining =
          budget - (retry_internal::MonotonicSeconds() - start);
      if (remaining <= 0.0 || backoff >= remaining) {
        // Sleeping would overshoot the deadline; the honest answer is a
        // prompt kDeadlineExceeded naming the error we were retrying, not
        // a late kUnavailable delivered after the answer stopped
        // mattering.
        QueryResponse expired;
        if (outcome.ok()) expired.id = outcome->id;
        expired.status = Status::DeadlineExceeded(
            "retry budget exhausted after " + std::to_string(attempt) +
            " attempt(s); last error: " + status.ToString());
        return expired;
      }
    }
    retry_internal::CountRetry(status);
    retry_internal::SleepSeconds(backoff);
    ++attempt;
  }
}

}  // namespace fairem
