#include "src/serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/util/io_util.h"

namespace fairem {
namespace {

Result<int> ConnectOnce(const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("client: socket path empty or too long: '" +
                                   socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("client: socket failed: ") +
                           std::strerror(errno));
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    int saved = errno;
    ::close(fd);
    // ENOENT (socket not bound yet) and ECONNREFUSED (bound, not yet
    // listening, or a dead daemon's stale file) both mean "not up (yet)".
    if (saved == ENOENT || saved == ECONNREFUSED || saved == EAGAIN) {
      return Status::Unavailable(std::string("daemon not up: ") +
                                 std::strerror(saved));
    }
    return Status::IOError("client: connect('" + socket_path +
                           "') failed: " + std::strerror(saved));
  }
  return fd;
}

}  // namespace

Result<ServeClient> ServeClient::Connect(const std::string& socket_path,
                                         const ServeClientOptions& options) {
  const double start = retry_internal::MonotonicSeconds();
  Result<int> fd = ConnectOnce(socket_path);
  while (!fd.ok() && fd.status().IsUnavailable() &&
         retry_internal::MonotonicSeconds() - start <
             options.connect_timeout_s) {
    retry_internal::SleepSeconds(0.01);
    fd = ConnectOnce(socket_path);
  }
  FAIREM_RETURN_NOT_OK(fd.status());
  ServeClient client;
  client.socket_path_ = socket_path;
  client.options_ = options;
  client.fd_ = *fd;
  return client;
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : socket_path_(std::move(other.socket_path_)),
      options_(std::move(other.options_)),
      fd_(other.fd_),
      next_id_(other.next_id_),
      last_trace_(other.last_trace_),
      last_spans_(std::move(other.last_spans_)) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    socket_path_ = std::move(other.socket_path_);
    options_ = std::move(other.options_);
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    last_trace_ = other.last_trace_;
    last_spans_ = std::move(other.last_spans_);
    other.fd_ = -1;
  }
  return *this;
}

ServeClient::~ServeClient() { Close(); }

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<QueryResponse> ServeClient::Call(const QueryRequest& request) {
  // Tracing a direct Call (no retry wrapper) still yields a rooted trace:
  // mint the context here and wrap the single attempt in the query root.
  if (!options_.trace || request.trace.valid()) {
    return CallAttempt(request, request.trace, 0);
  }
  TraceContext ctx = NewTraceContext();
  last_trace_ = ctx;
  last_spans_.clear();
  WireSpan root;
  root.name = "client.query";
  root.process = "client";
  root.pid = ::getpid();
  root.span_id = NewSpanId();
  root.start_unix_us = UnixMicrosNow();
  root.annotations.emplace_back("op", request.op);
  ctx.parent_span_id = root.span_id;
  Result<QueryResponse> outcome = CallAttempt(request, ctx, 0);
  root.duration_us = UnixMicrosNow() - root.start_unix_us;
  const Status& status =
      outcome.ok() ? outcome->status : outcome.status();
  root.annotations.emplace_back(
      "status", status.ok() ? "OK" : StatusCodeToString(status.code()));
  last_spans_.push_back(std::move(root));
  return outcome;
}

Result<QueryResponse> ServeClient::CallAttempt(const QueryRequest& request,
                                               const TraceContext& ctx,
                                               int attempt) {
  if (fd_ < 0) return Status::Unavailable("client: not connected");
  QueryRequest sent = request;
  sent.id = ++next_id_;
  WireSpan span;
  const bool traced = ctx.valid();
  if (traced) {
    // The attempt span is the parent of everything the server records for
    // this round trip, so its (pre-minted) id rides the QREQ.
    span.name = "client.attempt";
    span.process = "client";
    span.pid = ::getpid();
    span.span_id = NewSpanId();
    span.parent_span_id = ctx.parent_span_id;
    span.start_unix_us = UnixMicrosNow();
    if (attempt > 0) {
      span.annotations.emplace_back("attempt", std::to_string(attempt));
    }
    sent.trace = ctx;
    sent.trace.parent_span_id = span.span_id;
  }
  auto finish_span = [&](const Status& status) {
    if (!traced) return;
    span.duration_us = UnixMicrosNow() - span.start_unix_us;
    span.annotations.emplace_back(
        "status", status.ok() ? "OK" : StatusCodeToString(status.code()));
    last_spans_.push_back(std::move(span));
  };
  Status wrote = WriteServeMessage(fd_, kFrameQueryRequest,
                                   SerializeQueryRequest(sent),
                                   options_.io_timeout_s);
  if (!wrote.ok()) {
    Close();  // the stream position is unknown; a fresh connection is the
              // only safe retry
    finish_span(wrote);
    return wrote;
  }
  // The response may lag by the query's own deadline (compute time) on top
  // of transport time, so budget for both.
  const double read_timeout =
      options_.io_timeout_s +
      (sent.deadline_s > 0.0 ? sent.deadline_s : 0.0);
  // Advisory PROG frames may precede the QRSP; each read gets the full
  // budget again — progress arriving proves the peer is alive.
  Result<ServeMessage> message = ReadServeMessage(fd_, read_timeout);
  while (message.ok() && message->type == kFrameProgress) {
    Result<ProgressUpdate> progress = ParseProgressUpdate(message->bytes);
    if (progress.ok() && options_.on_progress != nullptr &&
        progress->id == sent.id) {
      options_.on_progress(*progress);
    }
    message = ReadServeMessage(fd_, read_timeout);
  }
  if (!message.ok()) {
    Close();
    finish_span(message.status());
    return message.status();
  }
  if (message->type != kFrameQueryResponse) {
    Close();
    finish_span(Status::IOError("unexpected frame"));
    return Status::IOError("client: unexpected frame type '" +
                           message->type + "'");
  }
  Result<QueryResponse> response = ParseQueryResponse(message->bytes);
  if (!response.ok()) {
    finish_span(response.status());
    return response.status();
  }
  if (response->id != sent.id) {
    Close();
    Status mismatch = Status::IOError(
        "client: response id " + std::to_string(response->id) +
        " does not match request id " + std::to_string(sent.id));
    finish_span(mismatch);
    return mismatch;
  }
  if (traced) {
    // The response piggybacks the downstream hops' spans; fold them into
    // this query's timeline.
    last_spans_.insert(last_spans_.end(), response->spans.begin(),
                       response->spans.end());
  }
  finish_span(response->status);
  return response;
}

Result<QueryResponse> ServeClient::CallWithRetry(const QueryRequest& request,
                                                 const RetryPolicy& policy,
                                                 uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const double start = retry_internal::MonotonicSeconds();
  // One query root span covers every attempt and backoff; each attempt
  // parents its own round trip under it.
  QueryRequest traced_request = request;
  WireSpan root;
  const bool traced = options_.trace && !request.trace.valid();
  if (traced) {
    TraceContext ctx = NewTraceContext();
    last_trace_ = ctx;
    last_spans_.clear();
    root.name = "client.query";
    root.process = "client";
    root.pid = ::getpid();
    root.span_id = NewSpanId();
    root.start_unix_us = UnixMicrosNow();
    root.annotations.emplace_back("op", request.op);
    ctx.parent_span_id = root.span_id;
    traced_request.trace = ctx;
  }
  auto finish_root = [&](const Status& status, int attempts) {
    if (!traced) return;
    root.duration_us = UnixMicrosNow() - root.start_unix_us;
    root.annotations.emplace_back(
        "status", status.ok() ? "OK" : StatusCodeToString(status.code()));
    root.annotations.emplace_back("attempts", std::to_string(attempts));
    last_spans_.push_back(root);
  };
  // The effective wall-clock budget is the tighter of the policy deadline
  // and the query's own deadline: backoff sleeps (including a server's
  // retry_after_s hint, which can be large under load) must never push the
  // caller past the moment its answer is due.
  double budget = policy.deadline_seconds;
  if (request.deadline_s > 0.0 &&
      (budget <= 0.0 || request.deadline_s < budget)) {
    budget = request.deadline_s;
  }
  int attempt = 1;
  while (true) {
    if (fd_ < 0) {
      // Reconnect with whatever wall-clock budget remains (at least one
      // immediate attempt).
      ServeClientOptions reconnect = options_;
      if (budget > 0.0) {
        reconnect.connect_timeout_s = std::max(
            0.0, budget - (retry_internal::MonotonicSeconds() - start));
      }
      Result<ServeClient> fresh = Connect(socket_path_, reconnect);
      if (fresh.ok()) {
        // Keep our id counter: correlation ids stay unique per logical
        // client even across reconnects. The trace accumulated so far
        // survives too — the fresh connection has none.
        fresh->next_id_ = next_id_;
        fresh->last_trace_ = last_trace_;
        fresh->last_spans_ = std::move(last_spans_);
        *this = std::move(*fresh);
      } else if (attempt >= policy.max_attempts ||
                 !fresh.status().IsUnavailable()) {
        finish_root(fresh.status(), attempt);
        return fresh.status();
      }
    }
    Result<QueryResponse> outcome =
        CallAttempt(traced_request, traced_request.trace, attempt);
    const Status& status =
        outcome.ok() ? outcome->status : outcome.status();
    // Only kUnavailable is worth retrying here: it is the server's
    // explicit "try again" (shed/drain) or a transport drop. Deadline
    // expiry and input errors are definite.
    if (status.ok() || !status.IsUnavailable() ||
        attempt >= policy.max_attempts) {
      finish_root(status, attempt);
      return outcome;
    }
    double backoff = BackoffSeconds(policy, attempt, &rng);
    if (outcome.ok() && outcome->retry_after_s > backoff) {
      backoff = outcome->retry_after_s;
    }
    if (budget > 0.0) {
      const double remaining =
          budget - (retry_internal::MonotonicSeconds() - start);
      if (remaining <= 0.0 || backoff >= remaining) {
        // Sleeping would overshoot the deadline; the honest answer is a
        // prompt kDeadlineExceeded naming the error we were retrying, not
        // a late kUnavailable delivered after the answer stopped
        // mattering.
        QueryResponse expired;
        if (outcome.ok()) expired.id = outcome->id;
        expired.status = Status::DeadlineExceeded(
            "retry budget exhausted after " + std::to_string(attempt) +
            " attempt(s); last error: " + status.ToString());
        finish_root(expired.status, attempt);
        return expired;
      }
    }
    retry_internal::CountRetry(status);
    if (traced) {
      WireSpan sleep_span;
      sleep_span.name = "client.backoff";
      sleep_span.process = "client";
      sleep_span.pid = ::getpid();
      sleep_span.span_id = NewSpanId();
      sleep_span.parent_span_id = root.span_id;
      sleep_span.start_unix_us = UnixMicrosNow();
      sleep_span.annotations.emplace_back("attempt",
                                          std::to_string(attempt));
      sleep_span.annotations.emplace_back("last_error",
                                          StatusCodeToString(status.code()));
      retry_internal::SleepSeconds(backoff);
      sleep_span.duration_us = UnixMicrosNow() - sleep_span.start_unix_us;
      last_spans_.push_back(std::move(sleep_span));
    } else {
      retry_internal::SleepSeconds(backoff);
    }
    ++attempt;
  }
}

}  // namespace fairem
