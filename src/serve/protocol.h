#ifndef FAIREM_SERVE_PROTOCOL_H_
#define FAIREM_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace fairem {

// Wire protocol for `fairem serve`: every message is the FEMTEL1 magic
// followed by one typed frame (`<4-char type><16 hex length>\n<bytes>` —
// the same framing the worker telemetry wire uses, see DESIGN.md §11/§14).
// Known types are QREQ (request JSON) and QRSP (response JSON); unknown
// types are skipped and counted in fairem.telemetry.unknown_frames, and a
// redundant magic at a frame boundary is consumed, so an older peer
// degrades instead of desyncing. Anything else — bad magic, malformed
// header, an oversized declared length — is unrecoverable for that
// connection and the reader closes it.

inline constexpr char kFrameQueryRequest[] = "QREQ";
inline constexpr char kFrameQueryResponse[] = "QRSP";
/// Lightweight liveness/load frame (DESIGN.md §15): the router probes each
/// backend with a HLTH frame carrying {"probe":true,"id":N}; a daemon (or a
/// router) answers with a HLTH reply immediately, bypassing admission — a
/// health check must stay cheap exactly when the queue is full. Peers that
/// predate HLTH skip it as an unknown frame, so probing an old daemon
/// degrades to "no reply before the probe deadline", never to desync.
inline constexpr char kFrameHealth[] = "HLTH";
/// Advisory mid-query progress frame (DESIGN.md §16): while a cell query
/// computes, the daemon streams PROG frames — fraction done, ETA from the
/// cell-duration histogram — toward the client; the router forwards them
/// with the id rewritten to the client's. PROG never completes a message:
/// peers that predate it (or ignore it) skip it as an unknown frame and
/// keep waiting for the QRSP, so progress streaming is pure opt-in.
inline constexpr char kFrameProgress[] = "PROG";

/// Upper bound on a declared frame body. A malicious or corrupted header
/// cannot make either side buffer more than this.
inline constexpr uint64_t kMaxServeFrameBytes = 8ull << 20;

struct QueryRequest {
  /// "ping" (liveness), "stats" (metrics snapshot JSON), or "cell" (one
  /// audit grid cell, computed in a crash-isolated worker).
  std::string op;
  std::string dataset;  // cell: dataset name, e.g. "dblp_acm"
  std::string matcher;  // cell: matcher name, e.g. "jaccard"
  std::string mode = "single";  // cell: "single" | "pairwise"
  /// Client-requested end-to-end deadline; 0 takes the server default. The
  /// server clamps it to its configured maximum.
  double deadline_s = 0.0;
  /// Client correlation id, echoed verbatim in the response.
  uint64_t id = 0;
  /// Distributed trace identity (optional wire fields "trace_id" 32-hex,
  /// "span_id", "sampled"). Invalid (zero) = untraced; the fields are then
  /// omitted from the wire entirely, and a malformed trace field on parse
  /// degrades to untraced instead of failing the request — old and new
  /// peers interoperate in both directions.
  TraceContext trace;
};

struct QueryResponse {
  uint64_t id = 0;
  /// OK, or the query's definite failure (code + message round-trip the
  /// socket; kUnavailable means shed/draining — retry after retry_after_s).
  Status status = Status::OK();
  /// Result bytes (cell JSON, stats JSON, or "pong"). Valid when ok.
  std::string payload;
  /// Backoff hint accompanying kUnavailable; 0 otherwise.
  double retry_after_s = 0.0;
  /// Spans this hop (and hops behind it) recorded for the query's trace,
  /// piggybacked on the response ("spans" field, omitted when empty; parse
  /// is tolerant — malformed spans drop, they never fail the response).
  std::vector<WireSpan> spans;
};

/// One HLTH frame body, both directions. A probe has `probe` true and only
/// `id` meaningful; a reply echoes the id and reports instantaneous load.
/// Unknown JSON fields are ignored on parse (newer peers may report more).
struct HealthReport {
  bool probe = false;
  uint64_t id = 0;
  /// False while draining (or, from a router, when no backend is usable).
  bool serving = true;
  double queue_depth = 0.0;
  double inflight = 0.0;
  /// The backoff hint a shed would carry right now (load-aware).
  double retry_after_s = 0.0;
};

/// One PROG frame body. Advisory by definition: every field is optional on
/// parse with a safe default, and unknown fields are ignored.
struct ProgressUpdate {
  /// Correlation id of the in-flight request the update is about.
  uint64_t id = 0;
  /// Best-effort completion estimate in [0, 1].
  double fraction = 0.0;
  /// Estimated seconds to completion; negative = unknown.
  double eta_s = -1.0;
  /// Coarse stage label ("queued", "compute", ...).
  std::string stage;
  /// 32-hex trace id when the query is traced; empty otherwise.
  std::string trace_id;
};

std::string SerializeQueryRequest(const QueryRequest& request);
Result<QueryRequest> ParseQueryRequest(const std::string& json);
std::string SerializeQueryResponse(const QueryResponse& response);
Result<QueryResponse> ParseQueryResponse(const std::string& json);
std::string SerializeHealthReport(const HealthReport& report);
Result<HealthReport> ParseHealthReport(const std::string& json);
std::string SerializeProgressUpdate(const ProgressUpdate& update);
Result<ProgressUpdate> ParseProgressUpdate(const std::string& json);

struct ServeMessage {
  std::string type;  // 4 chars
  std::string bytes;
};

/// magic + one frame, ready for the socket.
std::string EncodeServeMessage(const std::string& type,
                               const std::string& bytes);

/// Blocking client-side helpers with per-IO deadlines (kDeadlineExceeded on
/// expiry, kUnavailable on peer disconnect — see src/util/io_util.h).
Status WriteServeMessage(int fd, const std::string& type,
                         const std::string& bytes, double timeout_s);
Result<ServeMessage> ReadServeMessage(int fd, double timeout_s);

/// Incremental decoder for the server's nonblocking connections: feed
/// whatever bytes arrived, pull out complete messages. Unknown frame types
/// are skipped (and counted); a malformed or oversized stream returns an
/// error, after which the connection must be closed — there is no way to
/// resynchronize a length-prefixed stream with a corrupt header.
class FrameDecoder {
 public:
  void Feed(const char* data, size_t n);

  enum class Next { kMessage, kNeedMore };
  /// kMessage fills *out. kNeedMore means a complete message has not
  /// arrived yet. Error: the stream is unrecoverable.
  Result<Next> TryNext(ServeMessage* out);

  /// Bytes currently buffered (bounded by kMaxServeFrameBytes + header).
  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::string buf_;
  size_t consumed_ = 0;    // parsed-and-discarded prefix of buf_
  bool saw_magic_ = false; // magic precedes every message
};

}  // namespace fairem

#endif  // FAIREM_SERVE_PROTOCOL_H_
