#ifndef FAIREM_SERVE_WARM_STATE_H_
#define FAIREM_SERVE_WARM_STATE_H_

#include <map>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/datagen/benchmark_suite.h"
#include "src/harness/experiment.h"
#include "src/matcher/matcher.h"
#include "src/robust/checkpoint.h"
#include "src/util/result.h"

namespace fairem {

// The serve daemon's warmed state: generated benchmark datasets plus a
// cache of finished audit-cell results, loaded from (and persisted to) the
// same per-cell checkpoints the batch grid sweep writes. The state lives
// only in the daemon parent; query workers are forked, so they see a
// copy-on-write snapshot and can never corrupt it — post-crash queries
// read byte-identical warm data.

struct WarmStateOptions {
  /// Dataset names (DatasetKindName) to generate at warmup. Empty warms
  /// every benchmark dataset.
  std::vector<std::string> datasets;
  /// Forwarded to GenerateDataset.
  double scale = 1.0;
  uint64_t seed = 1234;
  /// When non-empty, finished cells persist here (atomic temp+rename JSON,
  /// keys compatible with `fairem grid --checkpoint_dir`) and warmup
  /// preloads whatever a previous daemon or grid run left behind. A
  /// corrupt/truncated checkpoint is WARNed, counted in
  /// fairem.serve.corrupt_checkpoints, and transparently re-run on demand.
  std::string checkpoint_dir;
};

class WarmState {
 public:
  /// Generates the configured datasets and preloads checkpointed cells.
  /// Fails only when a dataset cannot be generated at all.
  static Result<WarmState> Warm(const WarmStateOptions& options);

  /// The warmed dataset, or NotFound (with the warmed names listed).
  Result<const EMDataset*> Dataset(const std::string& name) const;

  /// The cached cell JSON for this key, if a finished result is warm.
  const std::string* CachedCell(const std::string& key) const;

  /// Caches a finished cell result and, with a checkpoint_dir, persists it
  /// durably. Save failures are WARNed, not fatal — the in-memory cache
  /// still serves the result.
  void StoreCell(const std::string& key, const std::string& cell_json);

  size_t num_datasets() const { return datasets_.size(); }
  size_t num_cached_cells() const { return cells_.size(); }
  const WarmStateOptions& options() const { return options_; }

 private:
  WarmStateOptions options_;
  std::map<std::string, EMDataset> datasets_;
  std::map<std::string, std::string> cells_;  // cell key -> cell JSON
};

}  // namespace fairem

#endif  // FAIREM_SERVE_WARM_STATE_H_
