#include "src/serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/slowlog.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/robust/supervisor.h"
#include "src/robust/worker_process.h"
#include "src/serve/protocol.h"
#include "src/util/durable_file.h"
#include "src/util/io_util.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

using SteadyClock = std::chrono::steady_clock;

double Since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

Result<MatcherKind> MatcherForName(const std::string& name) {
  for (MatcherKind kind : AllMatcherKinds()) {
    if (name == MatcherKindName(kind)) return kind;
  }
  return Status::NotFound("unknown matcher '" + name + "'");
}

struct ServeMetrics {
  Counter* accepted;
  Counter* closed;
  Counter* client_disconnects;
  Counter* slow_client_closes;
  Counter* malformed_frames;
  Counter* requests_total;
  Counter* requests_ok;
  Counter* requests_failed;
  Counter* shed_queue_full;
  Counter* shed_draining;
  Counter* deadline_expired;
  Counter* worker_crashes;
  Counter* worker_respawns;
  Counter* cache_hits;
  Counter* cells_computed;
  Counter* responses_dropped;
  Counter* health_probes;
  Counter* shutdowns;
  Counter* progress_frames;
  Gauge* queue_depth;
  Gauge* inflight;
  Gauge* connections;
  Histogram* request_seconds;
  /// Finished cell compute durations — shared with ProgressReporter's ETA
  /// metric so batch runs and the daemon pool one duration model.
  Histogram* cell_seconds;

  static ServeMetrics Make() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    ServeMetrics m;
    m.accepted = reg.GetCounter("fairem.serve.connections_accepted");
    m.closed = reg.GetCounter("fairem.serve.connections_closed");
    m.client_disconnects = reg.GetCounter("fairem.serve.client_disconnects");
    m.slow_client_closes = reg.GetCounter("fairem.serve.slow_client_closes");
    m.malformed_frames = reg.GetCounter("fairem.serve.malformed_frames");
    m.requests_total = reg.GetCounter("fairem.serve.requests_total");
    m.requests_ok = reg.GetCounter("fairem.serve.requests_ok");
    m.requests_failed = reg.GetCounter("fairem.serve.requests_failed");
    m.shed_queue_full = reg.GetCounter("fairem.serve.shed_queue_full");
    m.shed_draining = reg.GetCounter("fairem.serve.shed_draining");
    m.deadline_expired = reg.GetCounter("fairem.serve.deadline_expired");
    m.worker_crashes = reg.GetCounter("fairem.serve.worker_crashes");
    m.worker_respawns = reg.GetCounter("fairem.serve.worker_respawns");
    m.cache_hits = reg.GetCounter("fairem.serve.cell_cache_hits");
    m.cells_computed = reg.GetCounter("fairem.serve.cells_computed");
    m.responses_dropped = reg.GetCounter("fairem.serve.responses_dropped");
    m.health_probes = reg.GetCounter("fairem.serve.health_probes");
    m.shutdowns = reg.GetCounter("fairem.serve.shutdowns");
    m.progress_frames = reg.GetCounter("fairem.serve.progress_frames");
    m.queue_depth = reg.GetGauge("fairem.serve.queue_depth");
    m.inflight = reg.GetGauge("fairem.serve.inflight");
    m.connections = reg.GetGauge("fairem.serve.connections");
    m.request_seconds = reg.GetHistogram("fairem.serve.request_seconds");
    m.cell_seconds = reg.GetHistogram("fairem.progress.cell_seconds");
    return m;
  }
};

struct Connection {
  int fd = -1;
  uint64_t id = 0;
  FrameDecoder decoder;
  std::string outbuf;
  size_t out_sent = 0;
  SteadyClock::time_point last_activity;
  bool close_after_flush = false;

  bool has_pending_out() const { return out_sent < outbuf.size(); }
};

struct QueryJob {
  uint64_t conn_id = 0;
  QueryRequest request;
  std::string key;
  MatcherKind matcher = MatcherKind::kDT;
  bool pairwise = false;
  const EMDataset* dataset = nullptr;
  SteadyClock::time_point admitted;
  SteadyClock::time_point deadline;
  int attempts = 0;
  bool timed_out = false;
  WorkerProcess proc;  // valid while in flight
  // Tracing state (DESIGN.md §16). ctx is invalid for untraced queries and
  // every field below stays inert then — zero extra bytes on the wire.
  TraceContext ctx;
  std::string trace_hex;         // cached ctx.TraceIdHex()
  uint64_t request_span_id = 0;  // "daemon.request"; daemon/worker spans
                                 // parent under it
  int64_t admitted_unix_us = 0;
  pid_t worker_pid = 0;          // survives the reap (proc.pid() is -1 then)
  double last_progress_s = 0.0;  // monotonic; rate-limits PROG frames
  std::vector<WireSpan> spans;   // completed spans, shipped on the QRSP
};

class ServeDaemon {
 public:
  ServeDaemon(const ServeOptions& options)
      : options_(options),
        metrics_(ServeMetrics::Make()),
        slowlog_(options.slow_query_log, options.slow_query_ms),
        epoch_(SteadyClock::now()) {}

  ~ServeDaemon() {
    for (auto& [id, conn] : conns_) ::close(conn.fd);
    for (QueryJob& job : inflight_) job.proc.KillAndReap();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (!options_.socket_path.empty()) {
      ::unlink(options_.socket_path.c_str());
    }
  }

  Status Run() {
    // Bind + listen FIRST: clients arriving during the (potentially long)
    // warmup queue in the kernel backlog instead of getting ECONNREFUSED.
    FAIREM_RETURN_NOT_OK(Listen());
    FAIREM_ASSIGN_OR_RETURN(warm_, WarmState::Warm(options_.warm));
    FAIREM_LOG(INFO) << "fairem serve ready"
                     << LogKv("socket", options_.socket_path)
                     << LogKv("datasets", warm_.num_datasets())
                     << LogKv("cells_preloaded", warm_.num_cached_cells());
    while (true) {
      if (ShutdownGuard::requested() && !draining_) BeginDrain();
      ExpireQueuedJobs();
      Dispatch();
      if (draining_ && DrainComplete()) break;
      PollOnce();
      AcceptPending();
      PumpConnections();
      PumpWorkers();
      EmitProgress();
      CloseSlowClients();
      UpdateGauges();
    }
    FinishDrain();
    return Status::OK();
  }

 private:
  Status Listen() {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.empty() ||
        options_.socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("serve: socket path empty or too long: '" +
                                     options_.socket_path + "'");
    }
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::IOError(std::string("serve: socket failed: ") +
                             std::strerror(errno));
    }
    // A stale path from a dead daemon would fail the bind; a live daemon
    // accepts connections, so probing would be racy — replacing is the
    // conventional single-instance-per-path policy.
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::IOError("serve: bind failed for '" +
                             options_.socket_path +
                             "': " + std::strerror(errno));
    }
    if (::listen(listen_fd_, options_.listen_backlog) != 0) {
      return Status::IOError(std::string("serve: listen failed: ") +
                             std::strerror(errno));
    }
    SetNonblocking(listen_fd_);
    return Status::OK();
  }

  static void SetNonblocking(int fd) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  void PollOnce() {
    std::vector<pollfd> fds;
    fds.reserve(1 + conns_.size() + inflight_.size());
    if (!draining_ && listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (conn.has_pending_out()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }
    for (QueryJob& job : inflight_) {
      if (job.proc.pipe_fd() >= 0) {
        fds.push_back({job.proc.pipe_fd(), POLLIN, 0});
      }
    }
    int timeout_ms =
        static_cast<int>(options_.poll_interval_s * 1000.0);
    if (timeout_ms < 1) timeout_ms = 1;
    // EINTR (a drain signal landing) just re-enters the loop, which checks
    // ShutdownGuard at the top.
    (void)::poll(fds.empty() ? nullptr : fds.data(),
                 static_cast<nfds_t>(fds.size()), timeout_ms);
  }

  void AcceptPending() {
    if (draining_ || listen_fd_ < 0) return;
    for (;;) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or a transient accept error: retry next loop
      }
      SetNonblocking(fd);
      Connection conn;
      conn.fd = fd;
      conn.id = ++next_conn_id_;
      conn.last_activity = SteadyClock::now();
      metrics_.accepted->Increment();
      conns_.emplace(conn.id, std::move(conn));
    }
  }

  void CloseConn(uint64_t conn_id) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    ::close(it->second.fd);
    conns_.erase(it);
    metrics_.closed->Increment();
  }

  // ------------------------------------------------------------- inbound --

  void PumpConnections() {
    // Snapshot ids: handlers can close connections while we iterate.
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (auto& [id, conn] : conns_) ids.push_back(id);
    for (uint64_t id : ids) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      ReadConn(it->second);
      it = conns_.find(id);
      if (it != conns_.end()) FlushConn(it->second);
    }
  }

  void ReadConn(Connection& conn) {
    char buf[65536];
    bool closed_by_peer = false;
    for (;;) {
      ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        conn.last_activity = SteadyClock::now();
        conn.decoder.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        closed_by_peer = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      closed_by_peer = true;  // ECONNRESET and friends
      break;
    }
    const uint64_t conn_id = conn.id;
    for (;;) {
      ServeMessage message;
      Result<FrameDecoder::Next> next = conn.decoder.TryNext(&message);
      if (!next.ok()) {
        // A corrupt length-prefixed stream cannot be resynchronized; all
        // we owe the peer is a prompt close instead of a hang.
        metrics_.malformed_frames->Increment();
        FAIREM_LOG(WARN) << "closing connection on malformed frame"
                         << LogKv("conn", conn_id)
                         << LogKv("status", next.status().ToString());
        CloseConn(conn_id);
        return;
      }
      if (*next == FrameDecoder::Next::kNeedMore) break;
      HandleMessage(conn_id, message);
      if (conns_.find(conn_id) == conns_.end()) return;
    }
    if (closed_by_peer) {
      metrics_.client_disconnects->Increment();
      CloseConn(conn_id);
    }
  }

  void HandleMessage(uint64_t conn_id, const ServeMessage& message) {
    if (message.type == kFrameHealth) {
      // Health probes bypass admission entirely and do not count as
      // requests: a router needs an honest liveness/load answer precisely
      // when the queue is full, and a probe must never occupy a slot a
      // query could use (nor skew the request accounting).
      HandleHealthProbe(conn_id, message);
      return;
    }
    if (message.type == kFrameProgress) {
      // PROG is advisory and flows toward clients; one arriving here is a
      // confused-but-harmless peer. Ignore it — closing would turn a
      // best-effort frame into a query failure.
      return;
    }
    metrics_.requests_total->Increment();
    if (message.type != kFrameQueryRequest) {
      // A response frame sent at a server is a confused peer; drop it.
      metrics_.malformed_frames->Increment();
      CloseConn(conn_id);
      return;
    }
    Result<QueryRequest> request = ParseQueryRequest(message.bytes);
    if (!request.ok()) {
      QueryResponse response;
      response.status = request.status();
      Respond(conn_id, response);
      return;
    }
    QueryResponse response;
    response.id = request->id;
    if (request->op == "ping") {
      response.payload = "pong";
      Respond(conn_id, response);
      return;
    }
    if (request->op == "stats") {
      UpdateGauges();
      response.payload =
          MetricsSnapshotToJson(MetricsRegistry::Global().Snapshot());
      Respond(conn_id, response);
      return;
    }
    if (request->op != "cell") {
      response.status =
          Status::InvalidArgument("unknown op '" + request->op + "'");
      Respond(conn_id, response);
      return;
    }
    AdmitCellQuery(conn_id, *request);
  }

  void HandleHealthProbe(uint64_t conn_id, const ServeMessage& message) {
    metrics_.health_probes->Increment();
    // A malformed probe body still gets a reply (id 0): the prober wants
    // liveness, and the reply itself proves that.
    Result<HealthReport> probe = ParseHealthReport(message.bytes);
    HealthReport reply;
    if (probe.ok()) reply.id = probe->id;
    reply.serving = !draining_;
    reply.queue_depth = static_cast<double>(queue_.size());
    reply.inflight = static_cast<double>(inflight_.size());
    reply.retry_after_s = CurrentRetryAfterS();
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    it->second.outbuf.append(
        EncodeServeMessage(kFrameHealth, SerializeHealthReport(reply)));
    FlushConn(it->second);
  }

  double CurrentRetryAfterS() const {
    return LoadAwareRetryAfterS(
        options_.retry_after_s, static_cast<int>(queue_.size()),
        options_.max_queue, static_cast<int>(inflight_.size()),
        options_.max_inflight);
  }

  /// A one-shot daemon-side span for queries answered without a QueryJob
  /// (sheds, cache hits): even a refused query shows up in the client's
  /// merged trace with the hop that refused it.
  static void AttachAdHocSpan(const QueryRequest& request,
                              QueryResponse* response,
                              int64_t start_unix_us, const char* outcome) {
    if (!request.trace.valid()) return;
    WireSpan span;
    span.name = "daemon.request";
    span.process = "daemon";
    span.pid = static_cast<int64_t>(::getpid());
    span.span_id = NewSpanId();
    span.parent_span_id = request.trace.parent_span_id;
    span.start_unix_us = start_unix_us;
    const int64_t now_us = UnixMicrosNow();
    span.duration_us = now_us > start_unix_us ? now_us - start_unix_us : 0;
    span.annotations.emplace_back("outcome", outcome);
    response->spans.push_back(std::move(span));
  }

  void AdmitCellQuery(uint64_t conn_id, const QueryRequest& request) {
    const int64_t admit_unix_us =
        request.trace.valid() ? UnixMicrosNow() : 0;
    QueryResponse response;
    response.id = request.id;
    if (draining_) {
      metrics_.shed_draining->Increment();
      response.status = Status::Unavailable("draining; retry elsewhere");
      response.retry_after_s = options_.retry_after_s;
      AttachAdHocSpan(request, &response, admit_unix_us, "shed_draining");
      Respond(conn_id, response);
      return;
    }
    if (request.mode != "single" && request.mode != "pairwise") {
      response.status = Status::InvalidArgument("mode must be single|pairwise");
      Respond(conn_id, response);
      return;
    }
    Result<const EMDataset*> dataset = warm_.Dataset(request.dataset);
    if (!dataset.ok()) {
      response.status = dataset.status();
      Respond(conn_id, response);
      return;
    }
    Result<MatcherKind> matcher = MatcherForName(request.matcher);
    if (!matcher.ok()) {
      response.status = matcher.status();
      Respond(conn_id, response);
      return;
    }
    const bool pairwise = request.mode == "pairwise";
    const std::string key = AuditCellKey(request.dataset, *matcher, pairwise);
    if (const std::string* cached = warm_.CachedCell(key)) {
      metrics_.cache_hits->Increment();
      response.payload = *cached;
      AttachAdHocSpan(request, &response, admit_unix_us, "cache_hit");
      Respond(conn_id, response);
      return;
    }
    // Overload shedding: the queue is the bounded resource. Past the
    // bound the honest answer is an immediate retryable refusal, not an
    // ever-growing latency tail.
    if (static_cast<int>(queue_.size()) >= options_.max_queue) {
      metrics_.shed_queue_full->Increment();
      response.status = Status::Unavailable("admission queue full");
      // Load-aware hint: the fuller the daemon, the longer clients should
      // stay away, so router backpressure converges instead of retrying a
      // saturated daemon at the base period.
      response.retry_after_s = CurrentRetryAfterS();
      AttachAdHocSpan(request, &response, admit_unix_us, "shed_queue_full");
      Respond(conn_id, response);
      return;
    }
    double deadline_s = request.deadline_s > 0.0
                            ? std::min(request.deadline_s,
                                       options_.max_deadline_s)
                            : options_.default_deadline_s;
    QueryJob job;
    job.conn_id = conn_id;
    job.request = request;
    job.key = key;
    job.matcher = *matcher;
    job.pairwise = pairwise;
    job.dataset = *dataset;
    job.admitted = SteadyClock::now();
    job.deadline =
        job.admitted + std::chrono::duration_cast<SteadyClock::duration>(
                           std::chrono::duration<double>(deadline_s));
    if (request.trace.valid()) {
      job.ctx = request.trace;
      job.trace_hex = request.trace.TraceIdHex();
      // Pre-mint the hop span id so children (queue wait, worker spans)
      // can parent under it before the span itself finishes in FinishJob.
      job.request_span_id = NewSpanId();
      job.admitted_unix_us = admit_unix_us;
      job.last_progress_s = NowS();  // first PROG after one full interval
    }
    queue_.push_back(std::move(job));
  }

  // ---------------------------------------------------------- scheduling --

  void ExpireQueuedJobs() {
    auto now = SteadyClock::now();
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (now < it->deadline) {
        ++it;
        continue;
      }
      metrics_.deadline_expired->Increment();
      QueryResponse response;
      response.id = it->request.id;
      response.status =
          Status::DeadlineExceeded("deadline expired while queued");
      FinishJob(*it, response);
      it = queue_.erase(it);
    }
  }

  /// A completed span on the daemon's own track, parented under the job's
  /// "daemon.request" hop span. `start_unix_us` is when it began; the end
  /// is now.
  static WireSpan DaemonSpan(const QueryJob& job, const char* name,
                             int64_t start_unix_us) {
    WireSpan span;
    span.name = name;
    span.process = "daemon";
    span.pid = static_cast<int64_t>(::getpid());
    span.span_id = NewSpanId();
    span.parent_span_id = job.request_span_id;
    span.start_unix_us = start_unix_us;
    const int64_t now_us = UnixMicrosNow();
    span.duration_us = now_us > start_unix_us ? now_us - start_unix_us : 0;
    return span;
  }

  void Dispatch() {
    while (static_cast<int>(inflight_.size()) < options_.max_inflight &&
           !queue_.empty()) {
      QueryJob job = std::move(queue_.front());
      queue_.pop_front();
      if (job.ctx.valid()) {
        job.spans.push_back(
            DaemonSpan(job, "daemon.queue", job.admitted_unix_us));
      }
      Status started = StartJob(&job);
      if (!started.ok()) {
        QueryResponse response;
        response.id = job.request.id;
        response.status = started;
        FinishJob(job, response);
        continue;
      }
      inflight_.push_back(std::move(job));
    }
  }

  Status StartJob(QueryJob* job) {
    ++job->attempts;
    WorkerSpawnOptions spawn;
    spawn.task_key = job->key;
    spawn.attempt = job->attempts;
    spawn.max_rss_mb = options_.worker_max_rss_mb;
    spawn.max_cpu_s = options_.worker_max_cpu_s;
    // Pipe-only telemetry: worker metric deltas merge into the daemon
    // registry, so `stats` and the drain snapshot cover the whole fleet.
    spawn.ship_telemetry = true;
    // Every spawn draws fresh probabilistic-failpoint streams — sibling
    // workers and respawns must not replay the parent's exact draws.
    spawn.failpoint_reseed = ++spawn_sequence_;
    spawn.ship_failpoint = "serve_ship";
    spawn.close_in_child.push_back(listen_fd_);
    for (auto& [id, conn] : conns_) spawn.close_in_child.push_back(conn.fd);
    for (QueryJob& other : inflight_) {
      if (other.proc.pipe_fd() >= 0) {
        spawn.close_in_child.push_back(other.proc.pipe_fd());
      }
    }
    const EMDataset* dataset = job->dataset;
    const MatcherKind matcher = job->matcher;
    const bool pairwise = job->pairwise;
    const uint64_t seed = options_.warm.seed;
    const int64_t fork_start_us = job->ctx.valid() ? UnixMicrosNow() : 0;
    FAIREM_ASSIGN_OR_RETURN(
        job->proc,
        WorkerProcess::Spawn(
            [dataset, matcher, pairwise, seed]() -> Result<std::string> {
              GridRunOptions cell_options;
              cell_options.seed = seed;
              FAIREM_ASSIGN_OR_RETURN(
                  GridCellCheckpoint cell,
                  RunAuditCell(*dataset, matcher, pairwise, cell_options));
              return GridCellToJson(cell);
            },
            spawn));
    job->worker_pid = job->proc.pid();
    if (job->ctx.valid()) {
      WireSpan fork_span = DaemonSpan(*job, "worker.fork", fork_start_us);
      fork_span.process = "worker";
      fork_span.pid = static_cast<int64_t>(job->worker_pid);
      fork_span.annotations.emplace_back("attempt",
                                         std::to_string(job->attempts));
      job->spans.push_back(std::move(fork_span));
    }
    FAIREM_LOG(DEBUG) << "query worker spawned" << LogKv("key", job->key)
                      << LogKv("pid", job->proc.pid())
                      << LogKv("attempt", job->attempts);
    return Status::OK();
  }

  void PumpWorkers() {
    auto now = SteadyClock::now();
    for (size_t i = 0; i < inflight_.size();) {
      QueryJob& job = inflight_[i];
      job.proc.Drain();
      int status = 0;
      rusage usage;
      if (job.proc.TryReap(&status, &usage)) {
        QueryJob finished = std::move(job);
        inflight_.erase(inflight_.begin() + static_cast<long>(i));
        SettleWorker(std::move(finished), status);
        continue;
      }
      if (!job.timed_out && now >= job.deadline) {
        // The deadline is end-to-end: however long the query waited in the
        // queue counts against the compute budget too.
        job.timed_out = true;
        metrics_.deadline_expired->Increment();
        FAIREM_LOG(WARN) << "query deadline exceeded, killing worker"
                         << LogKv("key", job.key)
                         << LogKv("pid", job.proc.pid());
        job.proc.Kill();
      }
      ++i;
    }
  }

  void SettleWorker(QueryJob job, int status) {
    const std::string received = job.proc.TakeReceived();
    TelemetrySplit split = SplitTelemetryPayload(received);
    if (split.has_telemetry) {
      Result<WorkerTelemetry> telemetry =
          ParseWorkerTelemetry(split.telemetry_json);
      if (telemetry.ok()) AbsorbWorkerTelemetry(*telemetry);
    }
    const bool exited_ok =
        WIFEXITED(status) && WEXITSTATUS(status) == kWorkerExitOk;
    if (exited_ok && !job.timed_out) {
      // Feed the ETA model for everyone's PROG frames, traced or not.
      metrics_.cell_seconds->Observe(job.proc.AgeSeconds());
    }
    if (job.ctx.valid() && job.proc.spawn_unix_us() > 0) {
      WireSpan compute =
          DaemonSpan(job, "worker.compute", job.proc.spawn_unix_us());
      compute.process = "worker";
      compute.pid = static_cast<int64_t>(job.worker_pid);
      compute.annotations.emplace_back("attempt",
                                       std::to_string(job.attempts));
      const char* exit_kind = "crash";
      if (job.timed_out) {
        exit_kind = "killed_deadline";
      } else if (exited_ok) {
        exit_kind = "ok";
      } else if (WIFEXITED(status) &&
                 WEXITSTATUS(status) == kWorkerExitTaskError) {
        exit_kind = "task_error";
      }
      compute.annotations.emplace_back("exit", exit_kind);
      job.spans.push_back(std::move(compute));
    }
    QueryResponse response;
    response.id = job.request.id;
    if (job.timed_out) {
      response.status = Status::DeadlineExceeded(
          "query exceeded its deadline and the worker was killed");
      FinishJob(job, response);
      return;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == kWorkerExitOk) {
      // Defensive parse: only a well-formed cell is cached and served.
      Result<GridCellCheckpoint> cell = GridCellFromJson(split.payload);
      if (cell.ok()) {
        metrics_.cells_computed->Increment();
        warm_.StoreCell(job.key, split.payload);
        response.payload = split.payload;
        FinishJob(job, response);
        return;
      }
      response.status = Status::Internal("worker shipped unparseable cell: " +
                                         cell.status().ToString());
      FinishJob(job, response);
      return;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == kWorkerExitTaskError) {
      Status shipped = ParseShippedStatus(split.payload);
      if (RespawnOrFail(std::move(job), shipped,
                        IsRetryableStatus(shipped))) {
        return;
      }
      return;
    }
    // Crash: signal death, _Exit under a failpoint, OOM under RLIMIT_AS,
    // or a protocol failure.
    metrics_.worker_crashes->Increment();
    const std::string detail =
        WIFEXITED(status)
            ? "exit code " + std::to_string(WEXITSTATUS(status))
            : "signal " + std::to_string(WIFSIGNALED(status)
                                             ? WTERMSIG(status)
                                             : 0);
    Status crash = Status::Internal("query worker crashed (" + detail +
                                    ") for '" + job.key + "'");
    (void)RespawnOrFail(std::move(job), crash, /*retryable=*/true);
  }

  /// Respawns the job when budget and deadline allow; otherwise finishes it
  /// with `failure`. Returns true either way (for symmetry at call sites).
  bool RespawnOrFail(QueryJob job, const Status& failure, bool retryable) {
    if (retryable && job.attempts < options_.max_attempts &&
        SteadyClock::now() < job.deadline && !draining_) {
      metrics_.worker_respawns->Increment();
      FAIREM_LOG(WARN) << "respawning query worker" << LogKv("key", job.key)
                       << LogKv("next_attempt", job.attempts + 1)
                       << LogKv("status", failure.ToString());
      Status started = StartJob(&job);
      if (started.ok()) {
        inflight_.push_back(std::move(job));
        return true;
      }
    }
    QueryResponse response;
    response.id = job.request.id;
    response.status = failure;
    FinishJob(job, response);
    return true;
  }

  // ------------------------------------------------------------ outbound --

  void FinishJob(const QueryJob& job, QueryResponse& response) {
    const double total_s = Since(job.admitted);
    metrics_.request_seconds->ObserveWithExemplar(total_s, job.trace_hex);
    if (job.ctx.valid()) {
      // The hop span last: it closes now, covering admit -> respond.
      WireSpan root;
      root.name = "daemon.request";
      root.process = "daemon";
      root.pid = static_cast<int64_t>(::getpid());
      root.span_id = job.request_span_id;
      root.parent_span_id = job.ctx.parent_span_id;
      root.start_unix_us = job.admitted_unix_us;
      const int64_t now_us = UnixMicrosNow();
      root.duration_us = now_us > job.admitted_unix_us
                             ? now_us - job.admitted_unix_us
                             : 0;
      root.annotations.emplace_back("op", job.request.op);
      root.annotations.emplace_back("key", job.key);
      root.annotations.emplace_back(
          "status", response.status.ok()
                        ? "OK"
                        : StatusCodeToString(response.status.code()));
      root.annotations.emplace_back("attempts",
                                    std::to_string(job.attempts));
      response.spans.push_back(std::move(root));
      response.spans.insert(response.spans.end(), job.spans.begin(),
                            job.spans.end());
    }
    if (slowlog_.enabled()) {
      SlowQueryEvent event;
      event.process = "daemon";
      event.trace_id = job.trace_hex;
      event.id = job.request.id;
      event.op = job.request.op;
      event.key = job.key;
      event.status = response.status.ok()
                         ? "OK"
                         : StatusCodeToString(response.status.code());
      event.total_ms = total_s * 1000.0;
      event.spans = response.spans;
      slowlog_.MaybeLog(event, NowS());
    }
    Respond(job.conn_id, response);
  }

  /// Streams advisory PROG frames (progress fraction + ETA) to the clients
  /// of traced in-flight and queued queries, at most one per
  /// progress_interval_s per query. The ETA model is the mean finished
  /// cell duration; with no history yet, fraction 0 / eta -1 ("unknown").
  void EmitProgress() {
    if (options_.progress_interval_s <= 0.0) return;
    const double now_s = NowS();
    const uint64_t finished = metrics_.cell_seconds->count();
    const double mean_s =
        finished > 0
            ? metrics_.cell_seconds->sum() / static_cast<double>(finished)
            : -1.0;
    auto emit = [&](QueryJob& job, const char* stage, double fraction,
                    double eta_s) {
      auto it = conns_.find(job.conn_id);
      if (it == conns_.end()) return;
      ProgressUpdate update;
      update.id = job.request.id;
      update.fraction = fraction;
      update.eta_s = eta_s;
      update.stage = stage;
      update.trace_id = job.trace_hex;
      it->second.outbuf.append(EncodeServeMessage(
          kFrameProgress, SerializeProgressUpdate(update)));
      FlushConn(it->second);
      metrics_.progress_frames->Increment();
      job.last_progress_s = now_s;
    };
    for (QueryJob& job : inflight_) {
      if (!job.ctx.valid()) continue;
      if (now_s - job.last_progress_s < options_.progress_interval_s) {
        continue;
      }
      double fraction = 0.0;
      double eta_s = -1.0;
      if (mean_s > 0.0) {
        const double elapsed = job.proc.AgeSeconds();
        // Cap below 1.0: the estimate is a mean, and claiming "done" while
        // the worker still runs would make the client's bar lie.
        fraction = std::min(0.95, elapsed / mean_s);
        eta_s = std::max(0.0, mean_s - elapsed);
      }
      emit(job, "compute", fraction, eta_s);
    }
    for (QueryJob& job : queue_) {
      if (!job.ctx.valid()) continue;
      if (now_s - job.last_progress_s < options_.progress_interval_s) {
        continue;
      }
      emit(job, "queued", 0.0, mean_s > 0.0 ? mean_s : -1.0);
    }
  }

  void Respond(uint64_t conn_id, const QueryResponse& response) {
    if (response.status.ok()) {
      metrics_.requests_ok->Increment();
    } else {
      metrics_.requests_failed->Increment();
    }
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) {
      // The client hung up while its query ran. The work was not wasted —
      // a computed cell is already cached — but the bytes have nowhere
      // to go.
      metrics_.responses_dropped->Increment();
      return;
    }
    it->second.outbuf.append(EncodeServeMessage(
        kFrameQueryResponse, SerializeQueryResponse(response)));
    FlushConn(it->second);
  }

  void FlushConn(Connection& conn) {
    const uint64_t conn_id = conn.id;
    while (conn.has_pending_out()) {
      ssize_t n = ::write(conn.fd, conn.outbuf.data() + conn.out_sent,
                          conn.outbuf.size() - conn.out_sent);
      if (n > 0) {
        conn.out_sent += static_cast<size_t>(n);
        conn.last_activity = SteadyClock::now();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      // EPIPE/ECONNRESET: the client went away — a clean disconnect, not
      // a daemon error (SIGPIPE is ignored process-wide).
      metrics_.client_disconnects->Increment();
      CloseConn(conn_id);
      return;
    }
    if (!conn.has_pending_out()) {
      conn.outbuf.clear();
      conn.out_sent = 0;
      if (conn.close_after_flush) CloseConn(conn_id);
    }
  }

  void CloseSlowClients() {
    std::vector<uint64_t> slow;
    auto now = SteadyClock::now();
    for (auto& [id, conn] : conns_) {
      const bool mid_frame = conn.decoder.buffered() > 0;
      const bool undelivered = conn.has_pending_out();
      if (!mid_frame && !undelivered) continue;
      if (std::chrono::duration<double>(now - conn.last_activity).count() >
          options_.io_timeout_s) {
        slow.push_back(id);
      }
    }
    for (uint64_t id : slow) {
      metrics_.slow_client_closes->Increment();
      FAIREM_LOG(WARN) << "closing slow client" << LogKv("conn", id);
      CloseConn(id);
    }
  }

  // --------------------------------------------------------------- drain --

  void BeginDrain() {
    draining_ = true;
    FAIREM_LOG(WARN) << "drain requested"
                     << LogKv("signal", ShutdownGuard::signal_number())
                     << LogKv("queued", queue_.size())
                     << LogKv("inflight", inflight_.size())
                     << LogKv("connections", conns_.size());
    // Stop accepting: close AND unlink, so new clients get a fast
    // ECONNREFUSED/ENOENT instead of queueing behind a dying daemon.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    ::unlink(options_.socket_path.c_str());
    // Queued-but-unstarted work is shed: retryable, the honest signal to
    // go elsewhere. In-flight work finishes or deadlines out.
    for (QueryJob& job : queue_) {
      metrics_.shed_draining->Increment();
      QueryResponse response;
      response.id = job.request.id;
      response.status = Status::Unavailable("draining; retry elsewhere");
      response.retry_after_s = options_.retry_after_s;
      FinishJob(job, response);
    }
    queue_.clear();
  }

  bool DrainComplete() const {
    if (!inflight_.empty()) return false;
    for (const auto& [id, conn] : conns_) {
      if (conn.has_pending_out()) return false;
    }
    return true;
  }

  void FinishDrain() {
    for (auto& [id, conn] : conns_) ::close(conn.fd);
    conns_.clear();
    UpdateGauges();
    metrics_.shutdowns->Increment();
    if (!options_.metrics_path.empty()) {
      Status st = WriteFileDurable(
          options_.metrics_path,
          MetricsSnapshotToJson(MetricsRegistry::Global().Snapshot()));
      if (!st.ok()) {
        FAIREM_LOG(WARN) << "drain metrics flush failed"
                         << LogKv("status", st.ToString());
      }
    }
    FAIREM_LOG(INFO) << "drain complete"
                     << LogKv("requests",
                              metrics_.requests_total->value());
  }

  void UpdateGauges() {
    metrics_.queue_depth->Set(static_cast<double>(queue_.size()));
    metrics_.inflight->Set(static_cast<double>(inflight_.size()));
    metrics_.connections->Set(static_cast<double>(conns_.size()));
  }

  double NowS() const { return Since(epoch_); }

  ServeOptions options_;
  ServeMetrics metrics_;
  SlowQueryLogger slowlog_;
  SteadyClock::time_point epoch_;
  WarmState warm_;
  int listen_fd_ = -1;
  uint64_t next_conn_id_ = 0;
  uint64_t spawn_sequence_ = 0;
  bool draining_ = false;
  std::map<uint64_t, Connection> conns_;
  std::deque<QueryJob> queue_;
  std::vector<QueryJob> inflight_;
};

}  // namespace

double LoadAwareRetryAfterS(double base, int queue_depth, int max_queue,
                            int inflight, int max_inflight) {
  if (base <= 0.0) return 0.0;
  double factor = 1.0;
  if (max_queue > 0 && queue_depth > 0) {
    factor += std::min(1.0, static_cast<double>(queue_depth) /
                                static_cast<double>(max_queue));
  }
  if (max_inflight > 0 && inflight > 0) {
    factor += std::min(1.0, static_cast<double>(inflight) /
                                static_cast<double>(max_inflight));
  }
  return base * factor;
}

Status RunServeDaemon(const ServeOptions& options) {
  // EPIPE handling relies on write() returning the error instead of the
  // default fatal SIGPIPE.
  IgnoreSigpipe();
  ShutdownGuard shutdown_guard;
  ServeOptions normalized = options;
  if (normalized.max_inflight < 1) normalized.max_inflight = 1;
  if (normalized.max_queue < 0) normalized.max_queue = 0;
  if (normalized.max_attempts < 1) normalized.max_attempts = 1;
  if (normalized.poll_interval_s <= 0.0) normalized.poll_interval_s = 0.01;
  ServeDaemon daemon(normalized);
  return daemon.Run();
}

}  // namespace fairem
