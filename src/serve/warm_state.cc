#include "src/serve/warm_state.h"

#include <utility>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace fairem {
namespace {

Result<DatasetKind> KindForName(const std::string& name) {
  for (DatasetKind kind : AllDatasetKinds()) {
    if (name == DatasetKindName(kind)) return kind;
  }
  return Status::NotFound("unknown dataset '" + name + "'");
}

}  // namespace

Result<WarmState> WarmState::Warm(const WarmStateOptions& options) {
  static Counter* cells_preloaded = MetricsRegistry::Global().GetCounter(
      "fairem.serve.cells_preloaded");
  static Counter* corrupt_checkpoints = MetricsRegistry::Global().GetCounter(
      "fairem.serve.corrupt_checkpoints");
  Span warm_span("fairem.serve.warmup");
  WarmState state;
  state.options_ = options;

  std::vector<DatasetKind> kinds;
  if (options.datasets.empty()) {
    kinds = AllDatasetKinds();
  } else {
    for (const std::string& name : options.datasets) {
      FAIREM_ASSIGN_OR_RETURN(DatasetKind kind, KindForName(name));
      kinds.push_back(kind);
    }
  }
  for (DatasetKind kind : kinds) {
    FAIREM_ASSIGN_OR_RETURN(
        EMDataset dataset,
        GenerateDataset(kind, options.scale, options.seed));
    FAIREM_LOG(INFO) << "warmed dataset" << LogKv("dataset", dataset.name)
                     << LogKv("pairs", dataset.AllPairs().size());
    state.datasets_[dataset.name] = std::move(dataset);
  }

  // Preload whatever a previous daemon or grid run checkpointed for the
  // warmed datasets. Corrupt entries (e.g. a file truncated by a crash
  // mid-write before the durable rename, or hand-edited) are WARNed and
  // skipped — the cell transparently re-runs on first query.
  CheckpointStore store(options.checkpoint_dir);
  if (store.enabled()) {
    for (const auto& [name, dataset] : state.datasets_) {
      for (MatcherKind matcher : AllMatcherKinds()) {
        for (bool pairwise : {false, true}) {
          const std::string key = AuditCellKey(name, matcher, pairwise);
          Result<std::string> payload = store.Load(key);
          if (!payload.ok()) {
            if (!payload.status().IsNotFound()) {
              FAIREM_LOG(WARN) << "checkpoint load failed, will re-run"
                               << LogKv("key", key)
                               << LogKv("status",
                                        payload.status().ToString());
            }
            continue;
          }
          Result<GridCellCheckpoint> cell = GridCellFromJson(*payload);
          if (!cell.ok()) {
            corrupt_checkpoints->Increment();
            FAIREM_LOG(WARN) << "corrupt cell checkpoint, will re-run"
                             << LogKv("key", key)
                             << LogKv("status", cell.status().ToString());
            continue;
          }
          state.cells_[key] = std::move(*payload);
          cells_preloaded->Increment();
        }
      }
    }
  }
  FAIREM_LOG(INFO) << "warm state ready"
                   << LogKv("datasets", state.datasets_.size())
                   << LogKv("cells_preloaded", state.cells_.size());
  return state;
}

Result<const EMDataset*> WarmState::Dataset(const std::string& name) const {
  auto it = datasets_.find(name);
  if (it != datasets_.end()) return &it->second;
  std::string warmed;
  for (const auto& [warm_name, dataset] : datasets_) {
    if (!warmed.empty()) warmed += ", ";
    warmed += warm_name;
  }
  return Status::NotFound("dataset '" + name +
                          "' is not warmed (warmed: " + warmed + ")");
}

const std::string* WarmState::CachedCell(const std::string& key) const {
  auto it = cells_.find(key);
  return it == cells_.end() ? nullptr : &it->second;
}

void WarmState::StoreCell(const std::string& key,
                          const std::string& cell_json) {
  cells_[key] = cell_json;
  CheckpointStore store(options_.checkpoint_dir);
  if (!store.enabled()) return;
  if (Status st = store.Save(key, cell_json); !st.ok()) {
    FAIREM_LOG(WARN) << "cell checkpoint save failed" << LogKv("key", key)
                     << LogKv("status", st.ToString());
  }
}

}  // namespace fairem
