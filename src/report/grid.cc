#include "src/report/grid.h"

#include <algorithm>

#include "src/report/table_printer.h"

namespace fairem {

void UnfairnessGrid::Mark(const std::string& marker,
                          const AuditReport& report) {
  for (const auto& entry : report.entries) {
    MarkCell(marker, entry.group_label, entry.measure, entry.unfair);
  }
}

void UnfairnessGrid::MarkCell(const std::string& marker,
                              const std::string& group,
                              FairnessMeasure measure, bool unfair) {
  if (std::find(group_order_.begin(), group_order_.end(), group) ==
      group_order_.end()) {
    group_order_.push_back(group);
  }
  if (!unfair) return;
  auto& markers = cells_[group][measure];
  if (markers.insert(marker).second) ++num_marks_;
}

void UnfairnessGrid::AddError(const std::string& matcher_name,
                              const std::string& status) {
  errors_.emplace_back(matcher_name, status);
}

std::string UnfairnessGrid::Render() const {
  if (group_order_.empty() && errors_.empty()) return "";
  if (group_order_.empty()) return RenderErrors();
  std::vector<std::string> headers = {"measure"};
  headers.insert(headers.end(), group_order_.begin(), group_order_.end());
  TablePrinter printer(std::move(headers));
  for (FairnessMeasure m : kAllFairnessMeasures) {
    std::vector<std::string> row = {FairnessMeasureName(m)};
    bool any = false;
    for (const auto& group : group_order_) {
      auto git = cells_.find(group);
      std::string cell = ".";
      if (git != cells_.end()) {
        auto mit = git->second.find(m);
        if (mit != git->second.end() && !mit->second.empty()) {
          cell.clear();
          for (const auto& marker : mit->second) {
            if (!cell.empty()) cell += ",";
            cell += marker;
          }
          any = true;
        }
      }
      row.push_back(cell);
    }
    (void)any;
    printer.AddRow(std::move(row));
  }
  return printer.ToString() + RenderErrors();
}

std::string UnfairnessGrid::RenderErrors() const {
  if (errors_.empty()) return "";
  std::string out = "errors (cells unavailable after retries):\n";
  for (const auto& [matcher, status] : errors_) {
    out += "  " + matcher + ": " + status + "\n";
  }
  return out;
}

std::string MatcherMarker(const std::string& matcher_name) {
  // Figure 5-style short codes, stable per Table 3 name.
  struct Marker {
    const char* name;
    const char* marker;
  };
  static constexpr Marker kMarkers[] = {
      {"BooleanRuleMatcher", "BR"}, {"Dedupe", "DD"},
      {"DTMatcher", "DT"},          {"SVMMatcher", "SV"},
      {"RFMatcher", "RF"},          {"LogRegMatcher", "LO"},
      {"LinRegMatcher", "LI"},      {"NBMatcher", "NB"},
      {"DeepMatcher", "DM"},        {"Ditto", "DI"},
      {"GNEM", "GN"},               {"HierMatcher", "HM"},
      {"MCAN", "MC"},
  };
  for (const auto& m : kMarkers) {
    if (matcher_name == m.name) return m.marker;
  }
  // Fallback: first two characters, upper-cased.
  std::string marker = matcher_name.substr(0, 2);
  for (char& c : marker) c = static_cast<char>(std::toupper(c));
  return marker;
}

}  // namespace fairem
