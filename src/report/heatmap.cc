#include "src/report/heatmap.h"

#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {

void ThresholdHeatmap::AddRow(const std::string& matcher,
                              const std::vector<ThresholdPoint>& sweep) {
  rows_.emplace_back(matcher, sweep);
}

std::string ThresholdHeatmap::Render() const {
  std::vector<std::string> headers = {"matcher"};
  for (double t : thresholds_) headers.push_back(FormatDouble(t, 2));
  TablePrinter printer(std::move(headers));
  for (const auto& [matcher, sweep] : rows_) {
    std::vector<std::string> row = {matcher};
    for (const auto& point : sweep) {
      std::string cell = point.utility_defined
                             ? FormatDouble(point.utility, 2)
                             : std::string("-");
      cell += "(" + std::to_string(point.num_unfair_groups) + ")";
      row.push_back(cell);
    }
    printer.AddRow(std::move(row));
  }
  return printer.ToString();
}

}  // namespace fairem
