#ifndef FAIREM_REPORT_GRID_H_
#define FAIREM_REPORT_GRID_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/audit.h"
#include "src/core/measures.h"

namespace fairem {

/// Text rendering of the paper's unfairness-grid figures (Figures 6-13,
/// 17-20): rows are fairness measures, columns are (single or pairwise)
/// groups, and a cell lists the plot markers of the matchers that are
/// unfair for that (group, measure).
class UnfairnessGrid {
 public:
  /// Columns are taken from the union of group labels seen in marked
  /// reports, in first-seen order.
  UnfairnessGrid() = default;

  /// Adds every unfair cell of `report` under the matcher's marker (use
  /// MatcherMarker for the paper's Figure 5 codes).
  void Mark(const std::string& marker, const AuditReport& report);

  /// One audit entry's worth of Mark: registers `group` in column order and,
  /// when `unfair`, marks the (group, measure) cell. Mark() is a loop over
  /// this, and checkpoint replay (src/robust) reuses it to reproduce a
  /// marked grid byte-identically without re-auditing.
  void MarkCell(const std::string& marker, const std::string& group,
                FairnessMeasure measure, bool unfair);

  /// Records a matcher whose cells could not be computed (failed even after
  /// retries). Render() lists these under the grid, the analogue of
  /// Table 9's "-" entries: the report survives, the hole is visible.
  void AddError(const std::string& matcher_name, const std::string& status);

  /// Renders the grid; empty cells print ".". Errored matchers are listed
  /// under the table. Returns "" when nothing was marked or errored.
  std::string Render() const;

  /// Count of distinct (matcher, group, measure) unfair marks.
  size_t num_marks() const { return num_marks_; }

  /// Count of matchers recorded via AddError.
  size_t num_errors() const { return errors_.size(); }

 private:
  std::string RenderErrors() const;

  std::vector<std::string> group_order_;
  std::map<std::string, std::map<FairnessMeasure, std::set<std::string>>>
      cells_;  // group -> measure -> markers
  std::vector<std::pair<std::string, std::string>> errors_;  // matcher, status
  size_t num_marks_ = 0;
};

/// Two-letter plot marker for a matcher display name (Figure 5), e.g.
/// "Ditto" -> "DI".
std::string MatcherMarker(const std::string& matcher_name);

}  // namespace fairem

#endif  // FAIREM_REPORT_GRID_H_
