#include "src/report/table_printer.h"

#include <algorithm>

namespace fairem {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::vector<size_t> TablePrinter::ColumnWidths() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths = ColumnWidths();
  auto append_row = [&](std::string* out,
                        const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out->append(cell);
      out->append(widths[c] - cell.size() + 2, ' ');
    }
    while (!out->empty() && out->back() == ' ') out->pop_back();
    out->push_back('\n');
  };
  std::string out;
  append_row(&out, headers_);
  std::string sep;
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c], '-');
    sep.append(2, ' ');
  }
  while (!sep.empty() && sep.back() == ' ') sep.pop_back();
  out += sep + "\n";
  for (const auto& row : rows_) append_row(&out, row);
  return out;
}

std::string TablePrinter::ToMarkdown() const {
  std::string out = "|";
  for (const auto& h : headers_) out += " " + h + " |";
  out += "\n|";
  for (size_t c = 0; c < headers_.size(); ++c) out += "---|";
  out += "\n";
  for (const auto& row : rows_) {
    out += "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      out += " " + (c < row.size() ? row[c] : std::string()) + " |";
    }
    out += "\n";
  }
  return out;
}

}  // namespace fairem
