#ifndef FAIREM_REPORT_AUDIT_RENDER_H_
#define FAIREM_REPORT_AUDIT_RENDER_H_

#include <string>

#include "src/core/audit.h"

namespace fairem {

/// Rendering options for audit reports.
struct AuditRenderOptions {
  /// Skip entries whose statistic was undefined.
  bool defined_only = true;
  /// Skip entries that are not flagged unfair.
  bool unfair_only = false;
  /// Digits after the decimal point.
  int digits = 3;
};

/// Renders an audit report as an aligned plain-text table
/// (group, measure, group value, reference, disparity, unfair).
std::string RenderAuditTable(const AuditReport& report,
                             const AuditRenderOptions& options = {});

/// GitHub-flavoured markdown variant of RenderAuditTable.
std::string RenderAuditMarkdown(const AuditReport& report,
                                const AuditRenderOptions& options = {});

/// Machine-readable CSV (header + one row per rendered entry); suitable
/// for downstream plotting of the paper's figures.
std::string RenderAuditCsv(const AuditReport& report,
                           const AuditRenderOptions& options = {});

}  // namespace fairem

#endif  // FAIREM_REPORT_AUDIT_RENDER_H_
