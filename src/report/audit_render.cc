#include "src/report/audit_render.h"

#include <vector>

#include "src/report/table_printer.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

bool Keep(const AuditEntry& e, const AuditRenderOptions& options) {
  if (options.defined_only && !e.defined) return false;
  if (options.unfair_only && !e.unfair) return false;
  return true;
}

TablePrinter BuildPrinter(const AuditReport& report,
                          const AuditRenderOptions& options) {
  TablePrinter printer({"group", "measure", "group value", "reference",
                        "disparity", "pairs", "unfair"});
  for (const auto& e : report.entries) {
    if (!Keep(e, options)) continue;
    printer.AddRow({e.group_label, FairnessMeasureName(e.measure),
                    e.defined ? FormatDouble(e.group_value, options.digits)
                              : std::string("-"),
                    e.defined ? FormatDouble(e.overall_value, options.digits)
                              : std::string("-"),
                    e.defined ? FormatDouble(e.disparity, options.digits)
                              : std::string("-"),
                    std::to_string(e.group_pairs),
                    e.unfair ? "UNFAIR" : ""});
  }
  return printer;
}

/// CSV-escapes a cell (RFC-4180 quoting).
std::string CsvCell(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string RenderAuditTable(const AuditReport& report,
                             const AuditRenderOptions& options) {
  return BuildPrinter(report, options).ToString();
}

std::string RenderAuditMarkdown(const AuditReport& report,
                                const AuditRenderOptions& options) {
  return BuildPrinter(report, options).ToMarkdown();
}

std::string RenderAuditCsv(const AuditReport& report,
                           const AuditRenderOptions& options) {
  std::string out =
      "group,measure,defined,group_value,reference_value,disparity,"
      "signed_disparity,group_pairs,unfair\n";
  for (const auto& e : report.entries) {
    if (!Keep(e, options)) continue;
    std::vector<std::string> cells = {
        CsvCell(e.group_label),
        FairnessMeasureName(e.measure),
        e.defined ? "1" : "0",
        FormatDouble(e.group_value, options.digits),
        FormatDouble(e.overall_value, options.digits),
        FormatDouble(e.disparity, options.digits),
        FormatDouble(e.signed_disparity, options.digits),
        std::to_string(e.group_pairs),
        e.unfair ? "1" : "0"};
    out += Join(cells, ",") + "\n";
  }
  return out;
}

}  // namespace fairem
