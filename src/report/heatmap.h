#ifndef FAIREM_REPORT_HEATMAP_H_
#define FAIREM_REPORT_HEATMAP_H_

#include <string>
#include <vector>

#include "src/core/threshold.h"

namespace fairem {

/// Text rendering of the threshold heat-maps (Figure 14 and Figures 21-27):
/// one row per matcher, one column per threshold; each cell shows the
/// overall utility with the number of discriminated groups after it, e.g.
/// "0.84(3)" — the paper's cell value + colour code.
class ThresholdHeatmap {
 public:
  explicit ThresholdHeatmap(std::vector<double> thresholds)
      : thresholds_(std::move(thresholds)) {}

  /// Adds a matcher row from its sweep (must align with the thresholds).
  void AddRow(const std::string& matcher, const std::vector<ThresholdPoint>& sweep);

  std::string Render() const;

 private:
  std::vector<double> thresholds_;
  std::vector<std::pair<std::string, std::vector<ThresholdPoint>>> rows_;
};

}  // namespace fairem

#endif  // FAIREM_REPORT_HEATMAP_H_
