#ifndef FAIREM_REPORT_TABLE_PRINTER_H_
#define FAIREM_REPORT_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace fairem {

/// Column-aligned ASCII (and markdown) tables for the bench harnesses that
/// regenerate the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Rows shorter than the header are right-padded with "".
  void AddRow(std::vector<std::string> cells);

  /// Aligned plain-text rendering with a header separator.
  std::string ToString() const;

  /// GitHub-flavoured markdown rendering.
  std::string ToMarkdown() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<size_t> ColumnWidths() const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fairem

#endif  // FAIREM_REPORT_TABLE_PRINTER_H_
