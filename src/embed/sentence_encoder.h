#ifndef FAIREM_EMBED_SENTENCE_ENCODER_H_
#define FAIREM_EMBED_SENTENCE_ENCODER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/embed/subword_embedding.h"

namespace fairem {

/// SIF-style sentence embeddings (Arora et al.): a frequency-weighted
/// average of subword token vectors, a / (a + p(token)). High-frequency
/// tokens ("the", venue boilerplate) are down-weighted. Plays the role of
/// the sequence-model sentence representation the neural matchers consume.
class SentenceEncoder {
 public:
  explicit SentenceEncoder(const SubwordEmbedding* embedding, double a = 1e-3)
      : embedding_(embedding), a_(a) {}

  /// Learns token frequencies from a corpus of token lists. Optional; with
  /// no fit, all tokens weigh equally.
  void FitFrequencies(const std::vector<std::vector<std::string>>& corpus);

  /// L2-normalized weighted mean of token embeddings; zero vector for an
  /// empty token list.
  std::vector<float> Encode(const std::vector<std::string>& tokens) const;

  /// Cosine of the encodings of two token lists.
  double Similarity(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) const;

  const SubwordEmbedding& embedding() const { return *embedding_; }

  /// SIF weight a/(a+p) of one token — 1.0 before FitFrequencies; low for
  /// frequent (boilerplate) tokens.
  double TokenWeight(const std::string& token) const;

  /// IDF-weighted symmetric soft alignment: each token's best embedding
  /// cosine in the other list, averaged under SIF weights. The token-level
  /// cross-attention signal of transformer matchers: boilerplate tokens
  /// barely count, so one mismatched content token is visible even when
  /// the rest of the records agree. 1 when both lists are empty, 0 when
  /// exactly one is.
  double AlignmentSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) const;

 private:

  const SubwordEmbedding* embedding_;  // not owned
  double a_;
  std::unordered_map<std::string, double> freq_;
  double total_count_ = 0.0;
};

}  // namespace fairem

#endif  // FAIREM_EMBED_SENTENCE_ENCODER_H_
