#include "src/embed/subword_embedding.h"

#include <cmath>

#include "src/text/tokenize.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

uint64_t Fnv1a(std::string_view s, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

SubwordEmbedding::SubwordEmbedding(SubwordEmbeddingOptions options)
    : options_(options) {}

void SubwordEmbedding::AddHashedDirection(uint64_t hash,
                                          std::vector<float>* acc) const {
  // Derive dim pseudo-random components in [-1, 1] from the hash; the
  // mapping is fixed by the seed, so the "pre-trained" vectors never change.
  uint64_t state = hash;
  for (int d = 0; d < options_.dim; ++d) {
    state = Mix(state + 0x9e3779b97f4a7c15ULL);
    // Top 53 bits -> [0, 1) -> [-1, 1).
    double u = static_cast<double>(state >> 11) * 0x1.0p-53;
    (*acc)[static_cast<size_t>(d)] += static_cast<float>(2.0 * u - 1.0);
  }
}

std::vector<float> SubwordEmbedding::Embed(std::string_view token) const {
  std::vector<float> vec(static_cast<size_t>(options_.dim), 0.0f);
  std::string lowered = ToLowerAscii(token);
  if (lowered.empty()) return vec;
  int added = 0;
  for (int q = options_.min_q; q <= options_.max_q; ++q) {
    for (const auto& gram : QGrams(lowered, q, /*pad=*/true)) {
      AddHashedDirection(Fnv1a(gram, options_.seed), &vec);
      ++added;
    }
  }
  // The whole-token direction, so identical tokens always align perfectly.
  AddHashedDirection(Fnv1a(lowered, options_.seed ^ 0x5bd1e995ULL), &vec);
  ++added;
  double norm_sq = 0.0;
  for (float v : vec) norm_sq += static_cast<double>(v) * v;
  if (norm_sq > 0.0) {
    float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (float& v : vec) v *= inv;
  }
  return vec;
}

double SubwordEmbedding::Cosine(const std::vector<float>& a,
                                const std::vector<float>& b) {
  if (a.size() != b.size()) return 0.0;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

double SubwordEmbedding::TokenSimilarity(std::string_view a,
                                         std::string_view b) const {
  return Cosine(Embed(a), Embed(b));
}

}  // namespace fairem
