#ifndef FAIREM_EMBED_SUBWORD_EMBEDDING_H_
#define FAIREM_EMBED_SUBWORD_EMBEDDING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fairem {

/// Deterministic hashed character-n-gram word embeddings — the library's
/// stand-in for pre-trained fastText/GloVe vectors (see DESIGN.md).
///
/// Each character n-gram of a token hashes to a fixed pseudo-random unit
/// direction; the token vector is the normalized sum over its n-grams (plus
/// the whole token). Tokens sharing many n-grams therefore get high cosine
/// similarity — exactly the property of pre-trained subword embeddings that
/// the paper identifies as a source of neural-matcher false positives
/// ("Likes Me" vs "Loves Me", "efficient" vs "effective").
struct SubwordEmbeddingOptions {
  int dim = 32;
  int min_q = 3;
  int max_q = 4;
  /// Seed of the hash → direction mapping; models "which pre-trained
  /// embedding" is in use.
  uint64_t seed = 42;
};

class SubwordEmbedding {
 public:
  explicit SubwordEmbedding(SubwordEmbeddingOptions options = {});

  int dim() const { return options_.dim; }

  /// L2-normalized embedding of `token` (lower-cased). The zero vector is
  /// returned for an empty token.
  std::vector<float> Embed(std::string_view token) const;

  /// Cosine similarity of two embeddings (0 if either is all-zero).
  static double Cosine(const std::vector<float>& a,
                       const std::vector<float>& b);

  /// Convenience: cosine of the embeddings of two tokens.
  double TokenSimilarity(std::string_view a, std::string_view b) const;

 private:
  /// Adds the pseudo-random direction of `hash` into `acc`.
  void AddHashedDirection(uint64_t hash, std::vector<float>* acc) const;

  SubwordEmbeddingOptions options_;
};

}  // namespace fairem

#endif  // FAIREM_EMBED_SUBWORD_EMBEDDING_H_
