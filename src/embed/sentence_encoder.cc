#include "src/embed/sentence_encoder.h"

#include <algorithm>
#include <cmath>

namespace fairem {

void SentenceEncoder::FitFrequencies(
    const std::vector<std::vector<std::string>>& corpus) {
  freq_.clear();
  total_count_ = 0.0;
  for (const auto& doc : corpus) {
    for (const auto& tok : doc) {
      freq_[tok] += 1.0;
      total_count_ += 1.0;
    }
  }
}

double SentenceEncoder::TokenWeight(const std::string& token) const {
  if (total_count_ <= 0.0) return 1.0;
  auto it = freq_.find(token);
  double p = it == freq_.end() ? 0.0 : it->second / total_count_;
  return a_ / (a_ + p);
}

std::vector<float> SentenceEncoder::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<float> acc(static_cast<size_t>(embedding_->dim()), 0.0f);
  for (const auto& tok : tokens) {
    std::vector<float> v = embedding_->Embed(tok);
    float w = static_cast<float>(TokenWeight(tok));
    for (size_t d = 0; d < acc.size(); ++d) acc[d] += w * v[d];
  }
  double norm_sq = 0.0;
  for (float v : acc) norm_sq += static_cast<double>(v) * v;
  if (norm_sq > 0.0) {
    float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (float& v : acc) v *= inv;
  }
  return acc;
}

double SentenceEncoder::Similarity(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b) const {
  return SubwordEmbedding::Cosine(Encode(a), Encode(b));
}

double SentenceEncoder::AlignmentSimilarity(
    const std::vector<std::string>& a, const std::vector<std::string>& b) const {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  auto one_side = [&](const std::vector<std::string>& from,
                      const std::vector<std::string>& to) {
    std::vector<std::vector<float>> to_vecs;
    to_vecs.reserve(to.size());
    for (const auto& t : to) to_vecs.push_back(embedding_->Embed(t));
    double weighted = 0.0;
    double total_weight = 0.0;
    for (const auto& token : from) {
      std::vector<float> v = embedding_->Embed(token);
      double best = 0.0;
      for (const auto& tv : to_vecs) {
        best = std::max(best, SubwordEmbedding::Cosine(v, tv));
      }
      double w = TokenWeight(token);
      weighted += w * best;
      total_weight += w;
    }
    return total_weight > 0.0 ? weighted / total_weight : 0.0;
  };
  return 0.5 * (one_side(a, b) + one_side(b, a));
}

}  // namespace fairem
