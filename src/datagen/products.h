#ifndef FAIREM_DATAGEN_PRODUCTS_H_
#define FAIREM_DATAGEN_PRODUCTS_H_

#include <cstdint>

#include "src/data/dataset.h"
#include "src/util/result.h"

namespace fairem {

/// WDC-style textual product matching (Table 4: Shoes and Cameras — a
/// single `title` attribute; the manufacturer is extracted from the
/// description as the sensitive attribute, stored in a separate `company`
/// column that matchers never receive).
///
/// Offers for the same product differ by retailer boilerplate, model-number
/// formatting ("RX100" / "RX 100" / "DSC-RX100"), and language (the Dutch
/// "Prijzen" ↔ "Prices" trap of §5.3.3). Token-set features barely separate
/// true matches from same-brand non-matches — the regime in which the
/// non-neural matchers collapse (F1 ≈ 0, §5.3.3) while SIF-weighted
/// embeddings cope.
struct ProductOptions {
  int num_products = 90;
  /// Offers (records) per product, split across the two tables.
  int offers_per_product = 4;
  int negatives_per_record = 5;
  double train_frac = 0.4;
  double valid_frac = 0.1;
  uint64_t seed = 41;
};

/// Cameras: brands Sony/Canon/Nikon/... with model lines and hard
/// same-line negatives (RX100 vs RX100 IV).
Result<EMDataset> GenerateCameras(const ProductOptions& options);

/// Shoes: brands Nike/Adidas/... with gender/category/colour variants.
Result<EMDataset> GenerateShoes(const ProductOptions& options);

}  // namespace fairem

#endif  // FAIREM_DATAGEN_PRODUCTS_H_
