#ifndef FAIREM_DATAGEN_SOCIAL_H_
#define FAIREM_DATAGEN_SOCIAL_H_

#include <cstdint>

#include "src/data/dataset.h"
#include "src/util/result.h"

namespace fairem {

/// Generator options for FACULTYMATCH (§5.1.2): a CSRankings-style matching
/// task between a faculty table and its perturbed copy, restricted to the
/// cn and de country groups. The cn group is larger (paper: 2061 vs 1595)
/// and its names are intrinsically more similar; additionally 80% of
/// non-match pairs with a de member are removed, widening the population
/// gap to ~6x as in the paper.
struct FacultyMatchOptions {
  int num_cn = 240;
  int num_de = 185;
  /// Non-match candidates sampled per left record.
  int negatives_per_record = 12;
  /// Fraction of de-involving non-match pairs dropped. The paper drops
  /// 80%; the default is higher so the cn:de pair ratio lands near the
  /// paper's ~6x at this library's smaller scale.
  double de_pair_drop = 0.9;
  double train_frac = 0.3;
  double valid_frac = 0.1;
  uint64_t seed = 7;
};

/// Builds the FacultyMatch dataset: attributes {fullName, country},
/// sensitive attribute country (binary: cn / de), right-side fullName
/// perturbed by one random character edit, matches keyed on scholar id.
Result<EMDataset> GenerateFacultyMatch(const FacultyMatchOptions& options);

/// Generator options for NOFLYCOMPAS (§5.1.2): passengers matched against a
/// no-fly list. The no-fly list over-represents the African-American group
/// (52/48) relative to the passenger population (20/80 per census), the
/// sampling bias the paper studies.
struct NoFlyCompasOptions {
  int population = 1400;
  int no_fly_size = 260;
  int passenger_size = 840;
  /// Pr(African-American) in the no-fly list and the passenger list.
  double no_fly_black_frac = 0.52;
  double passenger_black_frac = 0.20;
  /// Fraction of the no-fly list that also appears among passengers (the
  /// true matches).
  double overlap_frac = 0.6;
  /// Non-match candidates sampled per passenger.
  int negatives_per_record = 8;
  /// Include the surname-blocked hard negatives (the unfairness mechanism).
  /// Disable for the ablation bench: without them the candidate set has no
  /// concentrated near-collisions and the FDR disparity vanishes.
  bool include_blocked_negatives = true;
  double train_frac = 0.25;
  double valid_frac = 0.1;
  uint64_t seed = 11;
};

/// Builds the NoFlyCompas dataset: attributes {firstName, lastName, race},
/// sensitive attribute race (binary: African-American / Caucasian), no-fly
/// names perturbed, matches keyed on person id. Table A = passengers,
/// table B = no-fly list.
Result<EMDataset> GenerateNoFlyCompas(const NoFlyCompasOptions& options);

}  // namespace fairem

#endif  // FAIREM_DATAGEN_SOCIAL_H_
