#ifndef FAIREM_DATAGEN_MUSIC_H_
#define FAIREM_DATAGEN_MUSIC_H_

#include <cstdint>

#include "src/data/dataset.h"
#include "src/util/result.h"

namespace fairem {

/// iTunes-Amazon-style structured music task (Table 4: 8 attributes;
/// sensitive attribute genre, single setwise). Genre values form semantic
/// families the paper discusses (Country ⊃ {Cont. Country, Honky Tonk};
/// the rap family {Hip-Hop/Rap, Rap, Rap & Hip-Hop}); records often carry
/// several genres ("Country|Honky Tonk").
///
/// Planted behaviours:
///  * Country artists release many distinct songs with near-identical short
///    titles ("Tequila Loves Me" / "Likes Me") — the embedding trap that
///    makes neural matchers fire FPs on country groups (§5.3.3);
///  * Rap true matches carry featuring lists / remix tags / censoring
///    variants, so their surface similarity is low — the difficult group
///    on which the simple decision boundaries of non-neural matchers fail;
///  * a French-Pop group whose ground truth contains only non-matches (the
///    SP false-flag example of §5.3.2).
struct ItunesAmazonOptions {
  int num_songs = 180;
  int negatives_per_record = 5;
  double train_frac = 0.4;
  double valid_frac = 0.1;
  uint64_t seed = 31;
};

Result<EMDataset> GenerateItunesAmazon(const ItunesAmazonOptions& options);

}  // namespace fairem

#endif  // FAIREM_DATAGEN_MUSIC_H_
