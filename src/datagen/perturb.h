#ifndef FAIREM_DATAGEN_PERTURB_H_
#define FAIREM_DATAGEN_PERTURB_H_

#include <string>
#include <string_view>

#include "src/util/rng.h"

namespace fairem {

/// The paper's record perturbation (§5.1.2): randomly adding, removing, or
/// replacing a random character of the cell value. `edits` rounds are
/// applied (the paper uses one). Empty strings only receive insertions.
std::string PerturbString(std::string_view value, Rng* rng, int edits = 1);

/// Typo-realistic variant used by the dirty generators: with probability
/// `p_edit` apply PerturbString, otherwise return the input unchanged.
std::string MaybePerturb(std::string_view value, double p_edit, Rng* rng);

}  // namespace fairem

#endif  // FAIREM_DATAGEN_PERTURB_H_
