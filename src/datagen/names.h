#ifndef FAIREM_DATAGEN_NAMES_H_
#define FAIREM_DATAGEN_NAMES_H_

#include <string>
#include <vector>

#include "src/util/rng.h"

namespace fairem {

/// Name generators for the semi-synthetic social datasets (DESIGN.md
/// substitutions). The pools are engineered to reproduce the two
/// statistical properties the paper studies:
///  * the Chinese (pinyin) pool has a small syllable inventory, so
///    intra-group name similarity is high (FacultyMatch condition (a));
///  * the African-American surname pool is small and heavily reused,
///    modelling the common-surname concentration the paper cites
///    ("Brown, Jackson, Williams, Johnson"), while the Caucasian pool is
///    larger and flatter (NoFlyCompas condition (b)).

/// A pinyin-style full name: 1-2 given syllables + a surname from a small
/// inventory, e.g. "Qingming Huang".
std::string ChineseFullName(Rng* rng);

/// A German full name from a wide inventory, e.g. "Matthias Schreiber".
std::string GermanFullName(Rng* rng);

/// US-style first/last names conditioned on demographic group.
struct PersonName {
  std::string first;
  std::string last;
};

/// `african_american` selects the concentrated surname pool.
PersonName UsPersonName(bool african_american, Rng* rng);

/// Expose the pools for tests and ablations.
const std::vector<std::string>& ChineseSurnames();
const std::vector<std::string>& ChineseGivenSyllables();
const std::vector<std::string>& GermanFirstNames();
const std::vector<std::string>& GermanSurnames();
const std::vector<std::string>& UsFirstNames();
const std::vector<std::string>& CommonBlackSurnames();
const std::vector<std::string>& BroadSurnames();

}  // namespace fairem

#endif  // FAIREM_DATAGEN_NAMES_H_
