#ifndef FAIREM_DATAGEN_BENCHMARK_SUITE_H_
#define FAIREM_DATAGEN_BENCHMARK_SUITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/result.h"

namespace fairem {

/// The eight benchmark datasets of Table 4.
enum class DatasetKind {
  kFacultyMatch,
  kNoFlyCompas,
  kItunesAmazon,
  kDblpAcm,
  kDblpScholar,
  kCricket,
  kShoes,
  kCameras,
};

/// Display name as in Table 4.
const char* DatasetKindName(DatasetKind kind);

/// All eight kinds in Table 4 order.
std::vector<DatasetKind> AllDatasetKinds();

/// Generates one benchmark dataset with its default (paper-shaped)
/// configuration. `scale` multiplies the entity counts (1.0 = the library's
/// laptop-scale defaults); `seed` shifts every generator seed for
/// replication studies.
Result<EMDataset> GenerateDataset(DatasetKind kind, double scale = 1.0,
                                  uint64_t seed_offset = 0);

}  // namespace fairem

#endif  // FAIREM_DATAGEN_BENCHMARK_SUITE_H_
