#include "src/datagen/cricket.h"

#include <set>
#include <string>
#include <vector>

#include "src/datagen/names.h"
#include "src/datagen/perturb.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

const std::vector<std::string>& Countries() {
  static const auto& pool = *new std::vector<std::string>{
      "India",     "Australia", "England",  "Pakistan",    "South Africa",
      "Sri Lanka", "New Zealand", "West Indies", "Bangladesh", "Zimbabwe"};
  return pool;
}

const std::vector<std::string>& BowlingStyles() {
  static const auto& pool = *new std::vector<std::string>{
      "Right-arm fast", "Right-arm medium", "Left-arm fast",
      "Right-arm offbreak", "Left-arm orthodox", "Legbreak googly"};
  return pool;
}

const std::vector<std::string>& Roles() {
  static const auto& pool = *new std::vector<std::string>{
      "Batsman", "Bowler", "Allrounder", "Wicketkeeper"};
  return pool;
}

/// "Mahendra Singh" -> "M. Singh" (initials abbreviation).
std::string Abbreviate(const std::string& full) {
  std::vector<std::string> parts = Split(full, ' ');
  if (parts.size() < 2) return full;
  std::string out(1, parts[0][0]);
  out += ".";
  for (size_t i = 1; i < parts.size(); ++i) {
    out += " " + parts[i];
  }
  return out;
}

}  // namespace

Result<EMDataset> GenerateCricket(const CricketOptions& options) {
  Rng rng(options.seed);
  FAIREM_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({"name", "country", "battingStyle", "bowlingStyle",
                    "role", "matches", "runs", "battingAvg", "hundreds",
                    "wickets"}));
  EMDataset ds;
  ds.name = "Cricket";
  ds.table_a = Table("source_a", schema);
  ds.table_b = Table("source_b", schema);
  ds.matching_attrs = {"name",   "country", "bowlingStyle", "role",
                       "matches", "runs",   "battingAvg",   "hundreds",
                       "wickets"};
  ds.sensitive_attr = "battingStyle";
  ds.sensitive_kind = SensitiveAttrKind::kBinary;
  ds.default_threshold = 0.9;  // the paper's Cricket threshold (§5.1.4)

  auto maybe_null = [&](std::string v) -> Cell {
    if (rng.NextBool(options.null_prob)) return std::nullopt;
    return v;
  };

  std::vector<LabeledPair> pairs;
  for (int id = 0; id < options.num_players; ++id) {
    bool left_handed = rng.NextBool(0.4);
    std::string batting = left_handed ? "Left Handed" : "Right Handed";
    std::string name = GermanFullName(&rng);  // any wide name pool works
    std::string country = rng.Choice(Countries());
    std::string bowling = rng.Choice(BowlingStyles());
    std::string role = rng.Choice(Roles());
    // Career stats correlate tightly with the role, so same-role players
    // have near-identical profiles — the "high similarity of all pairs"
    // that forces the paper's 0.9 threshold on this dataset.
    int role_idx = 0;
    for (size_t k = 0; k < Roles().size(); ++k) {
      if (Roles()[k] == role) role_idx = static_cast<int>(k);
    }
    std::string matches =
        std::to_string(150 + 30 * role_idx + rng.NextInt(0, 20));
    std::string runs =
        std::to_string(6000 - 1200 * role_idx + rng.NextInt(0, 400));
    std::string avg =
        FormatDouble(45.0 - 8.0 * role_idx + rng.NextDouble(0.0, 3.0), 2);
    std::string hundreds =
        std::to_string(20 - 4 * role_idx + rng.NextInt(0, 3));
    std::string wickets =
        std::to_string(40 + 100 * role_idx + rng.NextInt(0, 30));

    Record a;
    a.entity_id = id;
    for (const std::string* v : {&name, &country, &batting, &bowling, &role,
                                 &matches, &runs, &avg, &hundreds, &wickets}) {
      a.cells.emplace_back(*v);
    }
    FAIREM_RETURN_NOT_OK(ds.table_a.Append(std::move(a)));

    // Source B: dirty — missing values, heavy numeric drift (the two
    // sources snapshot careers at different times), and (for the
    // left-handed group especially) abbreviated names. With the numeric
    // attributes this unreliable, the name is the load-bearing signal —
    // and abbreviation breaks it for the left-handed group.
    std::string b_name = name;
    double abbrev_prob = left_handed ? 0.8 : 0.12;
    if (rng.NextBool(abbrev_prob)) b_name = Abbreviate(name);
    b_name = MaybePerturb(b_name, 0.3, &rng);
    std::string b_matches =
        std::to_string(std::stoi(matches) + rng.NextInt(0, 25));
    std::string b_runs =
        std::to_string(std::stoi(runs) + rng.NextInt(0, 900));
    Record b;
    b.entity_id = id;
    b.cells.push_back(maybe_null(b_name));
    b.cells.push_back(maybe_null(country));
    b.cells.emplace_back(batting);
    b.cells.push_back(maybe_null(bowling));
    b.cells.push_back(maybe_null(role));
    b.cells.push_back(maybe_null(b_matches));
    b.cells.push_back(maybe_null(b_runs));
    b.cells.push_back(maybe_null(avg));
    b.cells.push_back(maybe_null(hundreds));
    b.cells.push_back(maybe_null(wickets));
    FAIREM_RETURN_NOT_OK(ds.table_b.Append(std::move(b)));

    pairs.push_back({static_cast<size_t>(id), static_cast<size_t>(id), true});
  }

  // A small number of non-match pairs (96.5% of the list is positive),
  // drawn from same-country same-role teammates: with role-correlated
  // stats these profiles are near-duplicates of each other, so the
  // decision boundary has to sit high — players with weak name evidence
  // (the abbreviated left-handed profiles) fall below it.
  int num_negatives = static_cast<int>(
      options.negative_frac / (1.0 - options.negative_frac) *
      options.num_players);
  size_t country_col = *schema.Index("country");
  size_t role_col = *schema.Index("role");
  std::set<std::pair<size_t, size_t>> used;
  int attempts = 0;
  while (static_cast<int>(used.size()) < num_negatives &&
         attempts < 500 * num_negatives) {
    ++attempts;
    size_t i = static_cast<size_t>(rng.NextBounded(ds.table_a.num_rows()));
    size_t j = static_cast<size_t>(rng.NextBounded(ds.table_b.num_rows()));
    if (i == j) continue;
    if (ds.table_a.value(i, country_col) != ds.table_b.value(j, country_col) ||
        ds.table_a.value(i, role_col) != ds.table_b.value(j, role_col)) {
      continue;
    }
    if (!used.insert({i, j}).second) continue;
    pairs.push_back({i, j, false});
  }
  FAIREM_RETURN_NOT_OK(SplitPairs(std::move(pairs), options.train_frac,
                                  options.valid_frac, &rng, &ds.train,
                                  &ds.valid, &ds.test));
  FAIREM_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace fairem
