#include "src/datagen/benchmark_suite.h"

#include <cmath>

#include "src/datagen/cricket.h"
#include "src/datagen/music.h"
#include "src/datagen/products.h"
#include "src/datagen/pubs.h"
#include "src/datagen/social.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/robust/failpoint.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

int Scaled(int base, double scale) {
  int v = static_cast<int>(std::lround(base * scale));
  return v < 4 ? 4 : v;
}

/// Dispatches to the per-dataset generator; GenerateDataset wraps this with
/// the observability envelope (span + counters + log line).
Result<EMDataset> GenerateDatasetImpl(DatasetKind kind, double scale,
                                      uint64_t seed_offset) {
  FAIREM_FAILPOINT("datagen");
  switch (kind) {
    case DatasetKind::kFacultyMatch: {
      FacultyMatchOptions o;
      o.num_cn = Scaled(o.num_cn, scale);
      o.num_de = Scaled(o.num_de, scale);
      o.seed += seed_offset;
      return GenerateFacultyMatch(o);
    }
    case DatasetKind::kNoFlyCompas: {
      NoFlyCompasOptions o;
      o.population = Scaled(o.population, scale);
      o.no_fly_size = Scaled(o.no_fly_size, scale);
      o.passenger_size = Scaled(o.passenger_size, scale);
      o.seed += seed_offset;
      return GenerateNoFlyCompas(o);
    }
    case DatasetKind::kItunesAmazon: {
      ItunesAmazonOptions o;
      o.num_songs = Scaled(o.num_songs, scale);
      o.seed += seed_offset;
      return GenerateItunesAmazon(o);
    }
    case DatasetKind::kDblpAcm: {
      DblpAcmOptions o;
      o.num_pubs = Scaled(o.num_pubs, scale);
      o.num_editorials = Scaled(o.num_editorials, scale);
      o.num_extended_pairs = Scaled(o.num_extended_pairs, scale);
      o.seed += seed_offset;
      return GenerateDblpAcm(o);
    }
    case DatasetKind::kDblpScholar: {
      DblpScholarOptions o;
      o.num_pubs = Scaled(o.num_pubs, scale);
      o.seed += seed_offset;
      return GenerateDblpScholar(o);
    }
    case DatasetKind::kCricket: {
      CricketOptions o;
      o.num_players = Scaled(o.num_players, scale);
      o.seed += seed_offset;
      return GenerateCricket(o);
    }
    case DatasetKind::kShoes: {
      ProductOptions o;
      o.num_products = Scaled(o.num_products * 4 / 3, scale);
      o.seed += seed_offset;
      return GenerateShoes(o);
    }
    case DatasetKind::kCameras: {
      ProductOptions o;
      o.num_products = Scaled(o.num_products, scale);
      o.seed += seed_offset;
      return GenerateCameras(o);
    }
  }
  return Status::InvalidArgument("unknown dataset kind");
}

}  // namespace

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kFacultyMatch:
      return "FacultyMatch";
    case DatasetKind::kNoFlyCompas:
      return "NoFlyCompas";
    case DatasetKind::kItunesAmazon:
      return "iTunes-Amazon";
    case DatasetKind::kDblpAcm:
      return "DBLP-ACM";
    case DatasetKind::kDblpScholar:
      return "DBLP-Scholar";
    case DatasetKind::kCricket:
      return "Cricket";
    case DatasetKind::kShoes:
      return "Shoes";
    case DatasetKind::kCameras:
      return "Cameras";
  }
  return "?";
}

std::vector<DatasetKind> AllDatasetKinds() {
  return {DatasetKind::kFacultyMatch, DatasetKind::kNoFlyCompas,
          DatasetKind::kItunesAmazon, DatasetKind::kDblpAcm,
          DatasetKind::kDblpScholar,  DatasetKind::kCricket,
          DatasetKind::kShoes,        DatasetKind::kCameras};
}

Result<EMDataset> GenerateDataset(DatasetKind kind, double scale,
                                  uint64_t seed_offset) {
  Span span("fairem.datagen.generate");
  span.AddArg("dataset", DatasetKindName(kind));
  double seconds = 0.0;
  Result<EMDataset> dataset = Status::Internal("datagen did not run");
  {
    ScopedTimer timer(&seconds);
    dataset = GenerateDatasetImpl(kind, scale, seed_offset);
  }
  if (dataset.ok()) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static Counter* datasets =
        reg.GetCounter("fairem.datagen.datasets_generated");
    static Counter* records = reg.GetCounter("fairem.datagen.records");
    static Counter* pairs = reg.GetCounter("fairem.datagen.labeled_pairs");
    size_t num_records =
        dataset->table_a.num_rows() + dataset->table_b.num_rows();
    size_t num_pairs =
        dataset->train.size() + dataset->valid.size() + dataset->test.size();
    datasets->Increment();
    records->Increment(num_records);
    pairs->Increment(num_pairs);
    span.AddArg("records", std::to_string(num_records));
    span.AddArg("pairs", std::to_string(num_pairs));
    FAIREM_LOG(DEBUG) << "generated dataset"
                      << LogKv("dataset", dataset->name)
                      << LogKv("records", num_records)
                      << LogKv("pairs", num_pairs)
                      << LogKv("seconds", FormatDouble(seconds, 4));
  }
  return dataset;
}

}  // namespace fairem
