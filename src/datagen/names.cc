#include "src/datagen/names.h"

#include <cctype>

namespace fairem {
namespace {

const std::vector<std::string>* MakeChineseSurnames() {
  return new std::vector<std::string>{
      "Wang",  "Li",   "Zhang", "Liu",  "Chen",  "Yang", "Huang", "Zhao",
      "Wu",    "Zhou", "Xu",    "Sun",  "Ma",    "Zhu",  "Hu",    "Guo",
      "He",    "Lin",  "Gao",   "Luo",  "Zheng", "Liang", "Xie",  "Tang",
      "Shen",  "Han",  "Feng",  "Deng", "Cao",   "Peng", "Zeng",  "Xiao",
      "Tian",  "Dong", "Pan",   "Yuan", "Cai",   "Jiang", "Yu",   "Du"};
}

const std::vector<std::string>* MakeChineseGivenSyllables() {
  return new std::vector<std::string>{
      "qing", "ming", "lin",  "wei",  "jun", "hua", "lei", "jing",
      "yan",  "hong", "xin",  "yu",   "hui", "jie", "li",  "na",
      "feng", "yong", "gang", "ping", "bo",  "chao", "tao", "hai",
      "xiao", "dong", "mei",  "zhen", "fang", "kai", "shan", "wen"};
}

const std::vector<std::string>* MakeGermanFirstNames() {
  return new std::vector<std::string>{
      "Matthias",  "Sebastian", "Alexander", "Maximilian", "Wolfgang",
      "Friedrich", "Johannes",  "Christoph", "Benjamin",   "Tobias",
      "Florian",   "Andreas",   "Bernhard",  "Dietrich",   "Emanuel",
      "Gregor",    "Heinrich",  "Ingo",      "Joachim",    "Konrad",
      "Lorenz",    "Manfred",   "Norbert",   "Oskar",      "Patrick",
      "Raimund",   "Siegfried", "Thorsten",  "Ulrich",     "Valentin",
      "Werner",    "Xaver",     "Annegret",  "Brigitte",   "Claudia",
      "Dorothea",  "Elisabeth", "Franziska", "Gabriele",   "Hannelore",
      "Ingrid",    "Juliane",   "Katharina", "Liselotte",  "Margarete",
      "Nadine",    "Ottilie",   "Petra",     "Renate",     "Sabine",
      "Theresa",   "Ursula",    "Veronika",  "Wilhelmine", "Anneliese",
      "Burkhard",  "Clemens",   "Detlef",    "Eberhard",   "Falko"};
}

const std::vector<std::string>* MakeGermanSurnames() {
  return new std::vector<std::string>{
      "Schreiber",   "Hoffmann",   "Zimmermann", "Schneider",  "Fischer",
      "Wagner",      "Becker",     "Schulz",     "Richter",    "Klein",
      "Wolf",        "Neumann",    "Schwarz",    "Braun",      "Krueger",
      "Hofmann",     "Hartmann",   "Lange",      "Schmitt",    "Werner",
      "Krause",      "Meier",      "Lehmann",    "Schmid",     "Schulze",
      "Maier",       "Koehler",    "Herrmann",   "Walter",     "Koenig",
      "Mayer",       "Huber",      "Kaiser",     "Fuchs",      "Peters",
      "Lang",        "Scholz",     "Moeller",    "Weiss",      "Jung",
      "Hahn",        "Schubert",   "Vogel",      "Friedrich",  "Keller",
      "Guenther",    "Frank",      "Berger",     "Winkler",    "Roth",
      "Beck",        "Lorenz",     "Baumann",    "Franke",     "Albrecht",
      "Schuster",    "Simon",      "Ludwig",     "Boehm",      "Winter",
      "Kraus",       "Martin",     "Schumacher", "Kraemer",    "Vogt",
      "Stein",       "Jaeger",     "Otto",       "Sommer",     "Gross",
      "Seidel",      "Heinrich",   "Brandt",     "Haas",       "Schreier",
      "Graf",        "Schilling",  "Dietrich",   "Ziegler",    "Kuhn"};
}

const std::vector<std::string>* MakeUsFirstNames() {
  return new std::vector<std::string>{
      "James",    "Robert",   "John",     "Michael",  "David",
      "William",  "Richard",  "Joseph",   "Thomas",   "Charles",
      "Christopher", "Daniel", "Matthew", "Anthony",  "Mark",
      "Donald",   "Steven",   "Paul",     "Andrew",   "Joshua",
      "Kenneth",  "Kevin",    "Brian",    "George",   "Timothy",
      "Ronald",   "Edward",   "Jason",    "Jeffrey",  "Ryan",
      "Jacob",    "Gary",     "Nicholas", "Eric",     "Jonathan",
      "Stephen",  "Larry",    "Justin",   "Scott",    "Brandon",
      "Mary",     "Patricia", "Jennifer", "Linda",    "Elizabeth",
      "Barbara",  "Susan",    "Jessica",  "Sarah",    "Karen",
      "Lisa",     "Nancy",    "Betty",    "Margaret", "Sandra",
      "Ashley",   "Kimberly", "Emily",    "Donna",    "Michelle",
      "Carol",    "Amanda",   "Dorothy",  "Melissa",  "Deborah",
      "Stephanie", "Rebecca", "Sharon",   "Laura",    "Cynthia",
      "Samantha", "Latoya",   "Keisha",   "Tyrone",   "Jamal",
      "Darnell",  "Andre",    "Marcus",   "Terrence", "Reginald"};
}

const std::vector<std::string>* MakeCommonBlackSurnames() {
  // Deliberately small pool: surnames that are very common within the
  // group, per the paper's NoFlyCompas discussion.
  return new std::vector<std::string>{
      "Brown", "Jackson", "Williams", "Johnson", "Davis",
      "Robinson", "Washington", "Jefferson"};
}

const std::vector<std::string>* MakeBlackFirstNames() {
  // First names concentrated within the group; combined with the surname
  // concentration this drives within-group near-collisions.
  return new std::vector<std::string>{
      "Latoya", "Keisha",  "Tyrone",   "Jamal",    "Darnell",
      "Andre",  "Marcus",  "Terrence", "Reginald", "Tanisha",
      "Deshawn", "Lakisha"};
}

const std::vector<std::string>* MakeBroadSurnames() {
  return new std::vector<std::string>{
      "Smith",     "Miller",     "Wilson",    "Anderson",  "Clark",
      "Wright",    "Mitchell",   "Campbell",  "Roberts",   "Carter",
      "Phillips",  "Evans",      "Turner",    "Parker",    "Edwards",
      "Collins",   "Stewart",    "Morris",    "Murphy",    "Cook",
      "Rogers",    "Morgan",     "Peterson",  "Cooper",    "Reed",
      "Bailey",    "Bell",       "Kelly",     "Howard",    "Ward",
      "Cox",       "Richardson", "Wood",      "Watson",    "Brooks",
      "Gray",      "James",      "Bennett",   "Hughes",    "Price",
      "Sanders",   "Ross",       "Long",      "Foster",    "Powell",
      "Sullivan",  "Russell",    "Ortiz",     "Jenkins",   "Perry",
      "Barnes",    "Fisher",     "Henderson", "Hamilton",  "Graham",
      "Wallace",   "Woods",      "Cole",      "West",      "Owens",
      "Reynolds",  "Ellis",      "Harrison",  "Gibson",    "McDonald",
      "Cruz",      "Marshall",   "Gomez",     "Murray",    "Freeman",
      "Wells",     "Webb",       "Simpson",   "Stevens",   "Tucker",
      "Porter",    "Hunter",     "Hicks",     "Crawford",  "Henry",
      "Boyd",      "Mason",      "Morales",   "Kennedy",   "Warren",
      "Dixon",     "Ramos",      "Reyes",     "Burns",     "Gordon",
      "Shaw",      "Holmes",     "Rice",      "Robertson", "Hunt",
      "Black",     "Daniels",    "Palmer",    "Mills",     "Nichols"};
}

std::string Capitalize(std::string s) {
  if (!s.empty() && s[0] >= 'a' && s[0] <= 'z') {
    s[0] = static_cast<char>(s[0] - 'a' + 'A');
  }
  return s;
}

}  // namespace

const std::vector<std::string>& ChineseSurnames() {
  static const std::vector<std::string>& pool = *MakeChineseSurnames();
  return pool;
}

const std::vector<std::string>& ChineseGivenSyllables() {
  static const std::vector<std::string>& pool = *MakeChineseGivenSyllables();
  return pool;
}

const std::vector<std::string>& GermanFirstNames() {
  static const std::vector<std::string>& pool = *MakeGermanFirstNames();
  return pool;
}

const std::vector<std::string>& GermanSurnames() {
  static const std::vector<std::string>& pool = *MakeGermanSurnames();
  return pool;
}

const std::vector<std::string>& UsFirstNames() {
  static const std::vector<std::string>& pool = *MakeUsFirstNames();
  return pool;
}

const std::vector<std::string>& CommonBlackSurnames() {
  static const std::vector<std::string>& pool = *MakeCommonBlackSurnames();
  return pool;
}

const std::vector<std::string>& BroadSurnames() {
  static const std::vector<std::string>& pool = *MakeBroadSurnames();
  return pool;
}

std::string ChineseFullName(Rng* rng) {
  std::string given = rng->Choice(ChineseGivenSyllables());
  // ~60% of given names are two syllables ("Qingming", "LinLin").
  if (rng->NextBool(0.6)) {
    given += rng->Choice(ChineseGivenSyllables());
  }
  return Capitalize(given) + " " + rng->Choice(ChineseSurnames());
}

std::string GermanFullName(Rng* rng) {
  return rng->Choice(GermanFirstNames()) + " " + rng->Choice(GermanSurnames());
}

namespace {

/// Spelling variant of a surname: "Brown" -> "Browne" / "Browns" /
/// "Brawn". Variants are *distinct* strings with near-identical subword
/// embeddings — the within-group near-collision mechanism behind the
/// paper's FDR disparity, without unresolvable exact collisions.
std::string SurnameVariant(std::string base, Rng* rng) {
  switch (rng->NextBounded(4)) {
    case 0:
      base.push_back('e');
      return base;
    case 1:
      base.push_back('s');
      return base;
    case 2: {
      // Swap the last vowel.
      constexpr char kVowels[] = "aeiou";
      for (size_t i = base.size(); i-- > 0;) {
        char lower = static_cast<char>(std::tolower(
            static_cast<unsigned char>(base[i])));
        if (lower == 'a' || lower == 'e' || lower == 'i' || lower == 'o' ||
            lower == 'u') {
          base[i] = kVowels[rng->NextBounded(5)];
          return base;
        }
      }
      return base;
    }
    default:
      return base;
  }
}

}  // namespace

PersonName UsPersonName(bool african_american, Rng* rng) {
  static const std::vector<std::string>& black_firsts = *MakeBlackFirstNames();
  PersonName name;
  if (african_american) {
    // Both name parts concentrate in small pools, enlarged only by
    // near-identical spelling variants.
    name.first = rng->NextBool(0.6) ? rng->Choice(black_firsts)
                                    : rng->Choice(UsFirstNames());
    if (rng->NextBool(0.85)) {
      std::string base = rng->Choice(CommonBlackSurnames());
      name.last = rng->NextBool(0.5) ? SurnameVariant(base, rng) : base;
    } else {
      name.last = rng->Choice(BroadSurnames());
    }
  } else {
    name.first = rng->Choice(UsFirstNames());
    name.last = rng->NextBool(0.05) ? rng->Choice(CommonBlackSurnames())
                                    : rng->Choice(BroadSurnames());
  }
  return name;
}

}  // namespace fairem
