#include "src/datagen/products.h"

#include <set>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace fairem {
namespace {

struct Offer {
  std::string title;
  std::string company;
  int64_t product_id;
};

struct ProductTables {
  std::vector<Offer> left;
  std::vector<Offer> right;
};

/// Assembles an EMDataset from two offer lists with sampled negatives.
Result<EMDataset> BuildProductDataset(std::string name, ProductTables tables,
                                      const ProductOptions& options,
                                      Rng* rng) {
  FAIREM_ASSIGN_OR_RETURN(Schema schema, Schema::Make({"title", "company"}));
  EMDataset ds;
  ds.name = std::move(name);
  ds.table_a = Table("offers_left", schema);
  ds.table_b = Table("offers_right", schema);
  ds.matching_attrs = {"title"};  // the sensitive company column is hidden
  ds.sensitive_attr = "company";
  ds.sensitive_kind = SensitiveAttrKind::kMultiValued;
  // Table 4 sizes of the WDC tasks this simulates (Shoes is the larger).
  ds.simulated_full_scale_pairs = ds.name == "Shoes" ? 24111u + 10717u
                                                     : 5476u + 2434u;

  for (const Offer& o : tables.left) {
    FAIREM_RETURN_NOT_OK(
        ds.table_a.AppendValues(o.product_id, {o.title, o.company}));
  }
  for (const Offer& o : tables.right) {
    FAIREM_RETURN_NOT_OK(
        ds.table_b.AppendValues(o.product_id, {o.title, o.company}));
  }
  std::vector<LabeledPair> pairs;
  for (size_t i = 0; i < tables.left.size(); ++i) {
    for (size_t j = 0; j < tables.right.size(); ++j) {
      if (tables.left[i].product_id == tables.right[j].product_id) {
        pairs.push_back({i, j, true});
      }
    }
  }
  for (size_t i = 0; i < tables.left.size(); ++i) {
    std::set<size_t> used;
    for (int n = 0; n < options.negatives_per_record; ++n) {
      size_t j = static_cast<size_t>(rng->NextBounded(tables.right.size()));
      // Prefer same-company hard negatives half the time.
      if (rng->NextBool(0.5) &&
          tables.right[j].company != tables.left[i].company) {
        j = static_cast<size_t>(rng->NextBounded(tables.right.size()));
      }
      if (tables.left[i].product_id == tables.right[j].product_id) continue;
      if (!used.insert(j).second) continue;
      pairs.push_back({i, j, false});
    }
  }
  FAIREM_RETURN_NOT_OK(SplitPairs(std::move(pairs), options.train_frac,
                                  options.valid_frac, rng, &ds.train,
                                  &ds.valid, &ds.test));
  FAIREM_RETURN_NOT_OK(ds.Validate());
  return ds;
}

struct CameraBrand {
  const char* brand;
  std::vector<const char*> lines;
};

const std::vector<CameraBrand>& CameraBrands() {
  static const auto& pool = *new std::vector<CameraBrand>{
      {"Sony", {"Cyber-shot RX100", "Alpha A6000", "Cyber-shot WX350"}},
      {"Canon", {"EOS 70D", "PowerShot G7X", "EOS Rebel T5"}},
      {"Nikon", {"D3300", "Coolpix P900", "D750"}},
      {"Fujifilm", {"X-T10", "FinePix S9900"}},
      {"Olympus", {"OM-D E-M10", "Tough TG-4"}},
      {"Panasonic", {"Lumix GH4", "Lumix ZS50"}},
      {"GoPro", {"Hero4 Silver", "Hero4 Black"}},
      {"Leica", {"Q Typ 116"}},
  };
  return pool;
}

const std::vector<std::string>& CameraRetailTails() {
  // Long per-retailer boilerplate with disjoint vocabularies (including the
  // Dutch "Prijzen" trap): token-overlap features drown in it, while
  // SIF-weighted encoders discount the frequent tokens.
  static const auto& pool = *new std::vector<std::string>{
      "Digital Camera Full Specifications Prices Review - CNET",
      "Point Shoot Digicam Deals Weekly Ad Best Buy Store",
      "Digital Camera Bundle Kit Free Shipping Amazon.com Marketplace",
      "Mirrorless Body Only Authorized Dealer B&H Photo Video NYC",
      "Zwart Digitale Fotocamera Vergelijk Prijzen Tweakers Pricewatch NL",
      "Compactcamera Aanbieding Laagste Prijs Kieskeurig Vandaag NL"};
  return pool;
}

const std::vector<const char*> kCameraVariants = {"", "II", "III", "IV"};

/// Model-number formatting by retailer convention: "RX100" / "RX 100" /
/// "DSC-RX100" / "rx100kit". Offers of the *same* product always use
/// different conventions (the formatting variance of real product feeds):
/// word-level token features see disjoint tokens for true matches, while
/// subword embeddings still align them — the regime where non-neural
/// matchers collapse on textual data and neural matchers survive (§5.3.3).
std::string FormatModel(const std::string& line, int style) {
  switch (style % 4) {
    case 0:
      return line;
    case 1: {
      std::string spaced;
      for (size_t i = 0; i < line.size(); ++i) {
        if (i > 0 && isdigit(static_cast<unsigned char>(line[i])) &&
            isalpha(static_cast<unsigned char>(line[i - 1]))) {
          spaced.push_back(' ');
        }
        spaced.push_back(line[i]);
      }
      return spaced;
    }
    case 2:
      return "DSC-" + line;
    default: {
      std::string compact;
      for (char c : line) {
        if (c != ' ' && c != '-') compact.push_back(c);
      }
      return compact + "KIT";
    }
  }
}

struct ShoeBrand {
  const char* brand;
  std::vector<const char*> models;
};

const std::vector<ShoeBrand>& ShoeBrands() {
  static const auto& pool = *new std::vector<ShoeBrand>{
      {"Nike", {"Air Max 90", "Free RN", "Revolution 3", "Air Force 1"}},
      {"Adidas", {"Ultra Boost", "Gazelle", "Superstar", "NMD R1"}},
      {"Puma", {"Suede Classic", "Ignite", "Roma"}},
      {"Reebok", {"Classic Leather", "Nano 6"}},
      {"Asics", {"Gel-Kayano 22", "GT-2000"}},
      {"New Balance", {"574", "990v3"}},
      {"Clarks", {"Desert Boot", "Originals Wallabee"}},
  };
  return pool;
}

const std::vector<std::string>& ShoeTails() {
  static const auto& pool = *new std::vector<std::string>{
      "Running Shoes Free Returns Customer Favorites Zappos.com",
      "Sneakers Athletic Footwear Release Dates Foot Locker Official",
      "Shoes Everyday Low Price Prime Delivery Amazon.com Marketplace",
      "Sportschoenen Vergelijk Laagste Prijzen Beslist Webshop NL",
      "Shoes Clearance Outlet Final Sale Discount 6pm.com",
      "Trainers Exclusive Drops Launch Calendar JD Sports UK"};
  return pool;
}

const std::vector<const char*> kGenders = {"Men's", "Women's", "Kids"};
const std::vector<const char*> kColors = {"Black", "White", "Navy",
                                          "Red",   "Grey",  "Blue"};

}  // namespace

Result<EMDataset> GenerateCameras(const ProductOptions& options) {
  Rng rng(options.seed);
  ProductTables tables;
  int64_t product_id = 0;
  for (int p = 0; p < options.num_products; ++p) {
    const CameraBrand& brand = rng.Choice(CameraBrands());
    std::string line = brand.lines[rng.NextBounded(brand.lines.size())];
    std::string variant = kCameraVariants[rng.NextBounded(
        kCameraVariants.size())];
    std::string mp =
        std::to_string(rng.NextInt(12, 24)) + "." +
        std::to_string(rng.NextInt(0, 9)) + "MP";
    int style_offset = static_cast<int>(rng.NextBounded(4));
    for (int o = 0; o < options.offers_per_product; ++o) {
      Offer offer;
      offer.product_id = product_id;
      offer.company = brand.brand;
      // Each offer uses a different formatting convention.
      std::string model = FormatModel(line, style_offset + o);
      offer.title = std::string(brand.brand) + " " + model;
      if (!variant.empty()) offer.title += " " + variant;
      if (rng.NextBool(0.6)) offer.title += " " + mp;
      offer.title += " " + rng.Choice(CameraRetailTails());
      (o % 2 == 0 ? tables.left : tables.right).push_back(offer);
    }
    ++product_id;
  }
  return BuildProductDataset("Cameras", std::move(tables), options, &rng);
}

Result<EMDataset> GenerateShoes(const ProductOptions& options) {
  Rng rng(options.seed ^ 0x5f5f5f5fULL);
  ProductTables tables;
  int64_t product_id = 0;
  for (int p = 0; p < options.num_products; ++p) {
    const ShoeBrand& brand = rng.Choice(ShoeBrands());
    std::string model = brand.models[rng.NextBounded(brand.models.size())];
    std::string gender = kGenders[rng.NextBounded(kGenders.size())];
    std::string color = kColors[rng.NextBounded(kColors.size())];
    int style_offset = static_cast<int>(rng.NextBounded(4));
    for (int o = 0; o < options.offers_per_product; ++o) {
      Offer offer;
      offer.product_id = product_id;
      offer.company = brand.brand;
      // Per-offer formatting of the model name: "Air Max 90" / "AirMax90"
      // / "Air-Max 90" / "airmax 90s" — word tokens diverge, subwords
      // align.
      std::string styled = model;
      switch ((style_offset + o) % 4) {
        case 1: {
          std::string compact;
          for (char c : model) {
            if (c != ' ') compact.push_back(c);
          }
          styled = compact;
          break;
        }
        case 2: {
          styled = model;
          for (char& c : styled) {
            if (c == ' ') c = '-';
          }
          break;
        }
        case 3: {
          std::string compact;
          for (char c : model) {
            if (c != ' ') compact.push_back(c);
          }
          styled = compact + "s";
          break;
        }
        default:
          break;
      }
      offer.title = std::string(brand.brand) + " " + styled;
      if (rng.NextBool(0.7)) offer.title += " " + gender;
      if (rng.NextBool(0.6)) offer.title += " " + color;
      if (rng.NextBool(0.4)) {
        offer.title += " Size " + std::to_string(rng.NextInt(6, 13));
      }
      offer.title += " " + rng.Choice(ShoeTails());
      (o % 2 == 0 ? tables.left : tables.right).push_back(offer);
    }
    ++product_id;
  }
  return BuildProductDataset("Shoes", std::move(tables), options, &rng);
}

}  // namespace fairem
