#include "src/datagen/music.h"

#include <set>
#include <string>
#include <vector>

#include "src/datagen/perturb.h"
#include "src/text/edit_distance.h"
#include "src/util/string_util.h"
#include "src/util/rng.h"

namespace fairem {
namespace {

struct GenreProfile {
  std::string genres;   // setwise cell value, e.g. "Country|Honky Tonk"
  enum class Family { kCountry, kRap, kPlain, kFrenchPop } family;
};

const std::vector<GenreProfile>& GenreProfiles() {
  using Family = GenreProfile::Family;
  static const auto& pool = *new std::vector<GenreProfile>{
      {"Country", Family::kCountry},
      {"Country|Cont. Country", Family::kCountry},
      {"Country|Honky Tonk", Family::kCountry},
      {"Cont. Country|Honky Tonk", Family::kCountry},
      {"Hip-Hop/Rap", Family::kRap},
      {"Rap", Family::kRap},
      {"Rap & Hip-Hop|Rap", Family::kRap},
      {"Hip-Hop/Rap|Rap", Family::kRap},
      {"Pop", Family::kPlain},
      {"Rock", Family::kPlain},
      {"Pop|Rock", Family::kPlain},
      {"Dance", Family::kPlain},
      {"Dance|Electronic", Family::kPlain},
      {"R&B", Family::kPlain},
      {"Jazz", Family::kPlain},
      {"French-Pop", Family::kFrenchPop},
  };
  return pool;
}

const std::vector<std::string>& CountryArtists() {
  static const auto& pool = *new std::vector<std::string>{
      "K. Chesney", "T. McGraw", "B. Paisley", "A. Jackson", "G. Strait"};
  return pool;
}

const std::vector<std::string>& RapArtists() {
  static const auto& pool = *new std::vector<std::string>{
      "J. Cole", "N. Minaj", "K. Lamar", "Drake", "L. Wayne"};
  return pool;
}

const std::vector<std::string>& PlainArtists() {
  static const auto& pool = *new std::vector<std::string>{
      "T. Swift",  "E. Sheeran", "Adele",    "Coldplay",  "Beyonce",
      "M. Buble",  "Rihanna",    "Maroon 5", "P!nk",      "Shakira"};
  return pool;
}

const std::vector<std::string>& ShortTitleWords() {
  static const auto& pool = *new std::vector<std::string>{
      "Tequila",   "Whiskey",   "Summer",     "Sunset",    "Midnight",
      "Back Road", "Home",      "River",      "Old Truck", "Blue Sky"};
  return pool;
}

/// Country titles come from a tiny inflection family ("Loves Me" /
/// "Likes Me" / "Loved Me") so that distinct songs by the same artist are
/// orthographically near-identical — the paper's DITTO false-positive
/// ("Tequila Loves Me" / "Likes Me", both by K. Chesney).
std::string CountryTitle(Rng* rng) {
  static const std::vector<std::string>& verbs = *new std::vector<std::string>{
      "Love", "Like", "Need", "Want", "Hold", "Know", "Miss"};
  static const std::vector<std::string>& inflections =
      *new std::vector<std::string>{"", "s", "d", "in"};
  std::string title;
  if (rng->NextBool(0.5)) {
    title = rng->Choice(ShortTitleWords()) + " ";
  }
  title += rng->Choice(verbs) + rng->Choice(inflections) + " Me";
  return title;
}

const std::vector<std::string>& RapTitleCores() {
  static const auto& pool = *new std::vector<std::string>{
      "Money Moves", "City Lights", "No Limits", "Realest", "Hustle Hard",
      "Paper Chase", "Streets Talk", "Came Up",  "All Night", "On My Way"};
  return pool;
}

const std::vector<std::string>& FrenchTitles() {
  static const auto& pool = *new std::vector<std::string>{
      "La Vie en Couleurs", "Sous le Ciel", "Je Te Vois", "Nuit Blanche",
      "Mon Etoile", "Au Revoir"};
  return pool;
}

struct Song {
  std::string title;
  std::string artist;
  std::string album;
  std::string genres;
  std::string time;
  std::string price;
  std::string copyright;
  std::string released;
  GenreProfile::Family family;
};

std::string RandomTime(Rng* rng) {
  return std::to_string(rng->NextInt(2, 5)) + ":" +
         std::to_string(rng->NextInt(10, 59));
}

/// The Amazon view of a song: formatting changes, and the rap family gets
/// the heavy variants (featuring lists, remix tags, censoring) that make
/// its true matches textually hard.
Song AmazonView(const Song& s, Rng* rng) {
  Song out = s;
  if (s.family == GenreProfile::Family::kRap) {
    switch (rng->NextBounded(3)) {
      case 0:
        out.title = s.title + " ( feat. " + rng->Choice(RapArtists()) + " )";
        break;
      case 1:
        out.title = s.title + " [ Explicit Remix ]";
        break;
      default:
        out.title = s.title + " ( Album Version ) [ feat. " +
                    rng->Choice(RapArtists()) + " ]";
        break;
    }
    // Amazon also drops or reformats the album often for this catalogue,
    // and renders durations in seconds — true rap matches look different
    // on *every* attribute unless the representation is robust.
    if (rng->NextBool(0.5)) out.album = s.album + " [ Explicit ]";
    if (rng->NextBool(0.5)) {
      std::vector<std::string> parts = Split(s.time, ':');
      if (parts.size() == 2) {
        out.time = std::to_string(std::stoi(parts[0]) * 60 +
                                  std::stoi(parts[1])) + " sec";
      }
    }
  } else {
    if (rng->NextBool(0.4)) out.title = s.title + " - Single";
    if (rng->NextBool(0.3)) out.title = PerturbString(out.title, rng);
  }
  if (rng->NextBool(0.5)) out.price = "$ " + s.price;
  if (rng->NextBool(0.3)) out.time = s.time + "0";
  return out;
}

}  // namespace

Result<EMDataset> GenerateItunesAmazon(const ItunesAmazonOptions& options) {
  Rng rng(options.seed);
  FAIREM_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({"song", "artist", "album", "genre", "time", "price",
                    "copyright", "released"}));
  EMDataset ds;
  ds.name = "iTunes-Amazon";
  ds.table_a = Table("itunes", schema);
  ds.table_b = Table("amazon", schema);
  ds.matching_attrs = {"song", "artist", "album", "time",
                       "price", "copyright", "released"};
  ds.sensitive_attr = "genre";
  ds.sensitive_kind = SensitiveAttrKind::kSetwise;

  std::vector<Song> songs;
  using Family = GenreProfile::Family;
  for (int i = 0; i < options.num_songs; ++i) {
    const GenreProfile& profile = rng.Choice(GenreProfiles());
    Song s;
    s.genres = profile.genres;
    s.family = profile.family;
    switch (profile.family) {
      case Family::kCountry: {
        s.artist = rng.Choice(CountryArtists());
        s.title = CountryTitle(&rng);
        break;
      }
      case Family::kRap: {
        s.artist = rng.Choice(RapArtists());
        // "Pt. N" keeps titles distinct; the matching difficulty for rap
        // comes from the Amazon-side featuring/remix decorations instead.
        s.title = rng.Choice(RapTitleCores()) + " Pt. " +
                  std::to_string(rng.NextInt(1, 40));
        break;
      }
      case Family::kFrenchPop: {
        s.artist = "C. Dion";
        s.title = rng.Choice(FrenchTitles()) + " " +
                  std::to_string(rng.NextInt(1, 40));
        break;
      }
      default: {
        // Two distinct words + number: plain-genre titles never collide.
        s.artist = rng.Choice(PlainArtists());
        std::string w1 = rng.Choice(ShortTitleWords());
        std::string w2 = rng.Choice(ShortTitleWords());
        s.title = w1 + " " + w2 + " " + std::to_string(rng.NextInt(1, 99));
        break;
      }
    }
    if (profile.family == Family::kCountry) {
      // Country catalogues cluster on one compilation: same-artist trap
      // pairs agree on album / year / price / copyright and differ only in
      // the title inflection and duration — invisible to a pooled
      // serialized-text representation, plainly visible to per-attribute
      // character features.
      s.album = s.artist + " Greatest Hits";
      s.price = "0.99";
      s.released = "2010";
      s.copyright = "2010 " + s.artist + " Records";
    } else {
      s.album = s.artist + " Album " + std::to_string(rng.NextInt(1, 9));
      s.price = rng.NextBool(0.5) ? "0.99" : "1.29";
      s.released = std::to_string(rng.NextInt(2005, 2014));
      s.copyright = s.released + " " + s.artist + " Records";
    }
    s.time = RandomTime(&rng);
    songs.push_back(s);
  }

  std::vector<LabeledPair> pairs;
  for (size_t id = 0; id < songs.size(); ++id) {
    const Song& s = songs[id];
    FAIREM_RETURN_NOT_OK(ds.table_a.AppendValues(
        static_cast<int64_t>(id),
        {s.title, s.artist, s.album, s.genres, s.time, s.price, s.copyright,
         s.released}));
    Song amazon = AmazonView(s, &rng);
    FAIREM_RETURN_NOT_OK(ds.table_b.AppendValues(
        static_cast<int64_t>(id),
        {amazon.title, amazon.artist, amazon.album, amazon.genres,
         amazon.time, amazon.price, amazon.copyright, amazon.released}));
    // French-Pop ground truth contains only non-matches: its true pairs are
    // excluded from the candidate set (the SP false-flag setup of §5.3.2).
    if (s.family != Family::kFrenchPop) {
      pairs.push_back({id, id, true});
    }
  }
  // Blocked hard negatives: distinct songs by the same artist with
  // near-identical titles — the "Tequila Loves Me" / "Likes Me" trap pairs.
  // These concentrate in the country family by construction.
  for (size_t i = 0; i < songs.size(); ++i) {
    for (size_t j = 0; j < songs.size(); ++j) {
      if (i == j || songs[i].artist != songs[j].artist) continue;
      if (JaroWinklerSimilarity(songs[i].title, songs[j].title) >= 0.84) {
        pairs.push_back({i, j, false});
      }
    }
  }
  for (size_t i = 0; i < songs.size(); ++i) {
    std::set<size_t> used;
    for (int n = 0; n < options.negatives_per_record; ++n) {
      // Half the negatives come from the same artist (hard negatives; for
      // country artists these are the near-title traps).
      size_t j;
      if (rng.NextBool(0.5)) {
        j = static_cast<size_t>(rng.NextBounded(songs.size()));
        if (songs[j].artist != songs[i].artist) {
          j = static_cast<size_t>(rng.NextBounded(songs.size()));
        }
      } else {
        j = static_cast<size_t>(rng.NextBounded(songs.size()));
      }
      if (j == i || !used.insert(j).second) continue;
      pairs.push_back({i, j, false});
    }
  }
  {
    std::set<std::pair<size_t, size_t>> seen;
    std::vector<LabeledPair> unique;
    for (const auto& p : pairs) {
      if (seen.insert({p.left, p.right}).second) unique.push_back(p);
    }
    pairs = std::move(unique);
  }
  FAIREM_RETURN_NOT_OK(SplitPairs(std::move(pairs), options.train_frac,
                                  options.valid_frac, &rng, &ds.train,
                                  &ds.valid, &ds.test));
  FAIREM_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace fairem
