#include "src/datagen/social.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/datagen/names.h"
#include "src/datagen/perturb.h"
#include "src/text/edit_distance.h"
#include "src/util/rng.h"

namespace fairem {
namespace {

/// Appends every cross-table non-match pair where at least one name column
/// is near-identical (Jaro-Winkler >= `threshold`) — the blocked hard
/// negatives a real EM pipeline would feed the matcher. These pairs carry
/// a surname (or first-name) collision but, thanks to the population's
/// minimum-distance guarantee, always differ clearly in another column, so
/// exact character features can separate them while record-level embedding
/// similarity cannot.
void BlockedNegatives(const Table& a, const Table& b,
                      const std::vector<size_t>& name_cols, double threshold,
                      size_t max_count, Rng* rng,
                      std::vector<LabeledPair>* pairs) {
  std::vector<LabeledPair> candidates;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (size_t j = 0; j < b.num_rows(); ++j) {
      if (a.row(i).entity_id == b.row(j).entity_id) continue;
      double best = 0.0;
      for (size_t col : name_cols) {
        best = std::max(
            best, JaroWinklerSimilarity(a.value(i, col), b.value(j, col)));
      }
      if (best >= threshold) candidates.push_back({i, j, false});
    }
  }
  // Hard negatives are a small tail of real candidate sets; cap their count
  // (uniform subsample) so they inform the boundary without dominating it.
  if (candidates.size() > max_count) {
    rng->Shuffle(&candidates);
    candidates.resize(max_count);
  }
  pairs->insert(pairs->end(), candidates.begin(), candidates.end());
}

/// Removes duplicate (left, right) pairs, keeping the first occurrence
/// (matches are appended first, so labels are preserved).
void DedupPairs(std::vector<LabeledPair>* pairs) {
  std::set<std::pair<size_t, size_t>> seen;
  std::vector<LabeledPair> unique;
  unique.reserve(pairs->size());
  for (const auto& p : *pairs) {
    if (seen.insert({p.left, p.right}).second) unique.push_back(p);
  }
  *pairs = std::move(unique);
}

/// Appends sampled non-match pairs: for each left row, `k` distinct random
/// right rows whose entity ids differ.
void SampleNegatives(const Table& a, const Table& b, int k, Rng* rng,
                     std::vector<LabeledPair>* pairs) {
  if (b.num_rows() == 0) return;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    std::set<size_t> used;
    int attempts = 0;
    while (static_cast<int>(used.size()) < k && attempts < 8 * k) {
      ++attempts;
      size_t j = static_cast<size_t>(rng->NextBounded(b.num_rows()));
      if (a.row(i).entity_id == b.row(j).entity_id) continue;
      if (!used.insert(j).second) continue;
      pairs->push_back({i, j, false});
    }
  }
}

}  // namespace

Result<EMDataset> GenerateFacultyMatch(const FacultyMatchOptions& options) {
  Rng rng(options.seed);
  FAIREM_ASSIGN_OR_RETURN(Schema schema,
                          Schema::Make({"fullName", "country"}));
  EMDataset ds;
  ds.name = "FacultyMatch";
  ds.table_a = Table("faculty_left", schema);
  ds.table_b = Table("faculty_right", schema);
  ds.matching_attrs = {"fullName", "country"};
  ds.sensitive_attr = "country";
  ds.sensitive_kind = SensitiveAttrKind::kBinary;
  ds.simulated_full_scale_pairs = 271108 + 1084432;  // Table 4

  int64_t scholar_id = 0;
  std::vector<std::string> taken_names;
  // Unlike NoFlyCompas, only exact duplicates and 1-edit twins are
  // rejected: the pinyin name space is dense enough that distance-2
  // confusables ("Qinghu Huang" / "Qingbo Huang") survive, and after the
  // 1-edit perturbation those become genuinely ambiguous — for *any*
  // matcher. German names almost never fall that close, so the ambiguity
  // concentrates in the cn group (the paper's condition (a)).
  auto fresh_name = [&](bool chinese) {
    for (int tries = 0; tries < 400; ++tries) {
      std::string name =
          chinese ? ChineseFullName(&rng) : GermanFullName(&rng);
      bool too_close = false;
      for (const auto& existing : taken_names) {
        if (LevenshteinWithin(name, existing, 1)) {
          too_close = true;
          break;
        }
      }
      if (!too_close) {
        taken_names.push_back(name);
        return name;
      }
    }
    // Pool exhausted: disambiguate with a numeric suffix.
    std::string name = (chinese ? ChineseFullName(&rng) : GermanFullName(&rng)) +
                       " " + std::to_string(taken_names.size());
    taken_names.push_back(name);
    return name;
  };
  auto add_faculty = [&](const std::string& name,
                         const std::string& country) -> Status {
    FAIREM_RETURN_NOT_OK(ds.table_a.AppendValues(scholar_id, {name, country}));
    // Usually one random edit (the paper's perturbation); sometimes a
    // second, which drops borderline matches near the confusable zone —
    // disproportionately costly in the dense cn name space.
    int edits = rng.NextBool(0.35) ? 2 : 1;
    FAIREM_RETURN_NOT_OK(ds.table_b.AppendValues(
        scholar_id, {PerturbString(name, &rng, edits), country}));
    ++scholar_id;
    return Status::OK();
  };
  for (int i = 0; i < options.num_cn; ++i) {
    FAIREM_RETURN_NOT_OK(add_faculty(fresh_name(true), "cn"));
  }
  for (int i = 0; i < options.num_de; ++i) {
    FAIREM_RETURN_NOT_OK(add_faculty(fresh_name(false), "de"));
  }

  // All matches + blocked hard negatives + sampled random non-matches.
  std::vector<LabeledPair> pairs;
  for (size_t i = 0; i < ds.table_a.num_rows(); ++i) {
    pairs.push_back({i, i, true});
  }
  BlockedNegatives(ds.table_a, ds.table_b, {0}, 0.80,
                   3 * ds.table_a.num_rows(), &rng, &pairs);
  SampleNegatives(ds.table_a, ds.table_b, options.negatives_per_record, &rng,
                  &pairs);
  DedupPairs(&pairs);
  // Drop `de_pair_drop` of the non-match pairs involving a de member, so
  // cn pairs outnumber de pairs ~6x (the paper's population-gap widening).
  FAIREM_ASSIGN_OR_RETURN(size_t country_col,
                          ds.table_a.schema().Index("country"));
  std::vector<LabeledPair> kept;
  kept.reserve(pairs.size());
  for (const auto& p : pairs) {
    bool involves_de = ds.table_a.value(p.left, country_col) == "de" ||
                       ds.table_b.value(p.right, country_col) == "de";
    if (!p.is_match && involves_de && rng.NextBool(options.de_pair_drop)) {
      continue;
    }
    kept.push_back(p);
  }
  FAIREM_RETURN_NOT_OK(SplitPairs(std::move(kept), options.train_frac,
                                  options.valid_frac, &rng, &ds.train,
                                  &ds.valid, &ds.test));
  FAIREM_RETURN_NOT_OK(ds.Validate());
  return ds;
}

Result<EMDataset> GenerateNoFlyCompas(const NoFlyCompasOptions& options) {
  Rng rng(options.seed);
  FAIREM_ASSIGN_OR_RETURN(
      Schema schema, Schema::Make({"firstName", "lastName", "race"}));
  EMDataset ds;
  ds.name = "NoFlyCompas";
  ds.table_a = Table("passengers", schema);
  ds.table_b = Table("no_fly_list", schema);
  ds.matching_attrs = {"firstName", "lastName", "race"};
  ds.sensitive_attr = "race";
  ds.sensitive_kind = SensitiveAttrKind::kBinary;
  ds.simulated_full_scale_pairs = 20122 + 75459;  // Table 4

  struct Person {
    PersonName name;
    bool black;
  };
  // The COMPAS-style population from which both lists sample. Full names
  // are unique: the unfairness mechanism is *near*-collisions (one or two
  // edits apart within the concentrated pools), which confuse embedding
  // similarity while remaining separable by exact character features —
  // identical-name collisions would make even a perfect matcher fail.
  std::vector<Person> population;
  population.reserve(static_cast<size_t>(options.population));
  std::vector<std::string> full_names;
  int attempts = 0;
  int black_count = 0;
  while (static_cast<int>(population.size()) < options.population &&
         attempts < 400 * options.population) {
    ++attempts;
    // Quota-driven: the concentrated pools reject far more Black names
    // under the minimum-distance rule, so a plain coin flip would starve
    // the group. Keep generating for whichever half is behind.
    bool black =
        black_count * 2 < static_cast<int>(population.size()) + 1;
    PersonName name = UsPersonName(black, &rng);
    // Minimum-distance guarantee: any two people differ by >= 3 edits in
    // the combined name, so a 1-edit perturbed match is always closer than
    // any non-match and a perfect feature-based matcher stays perfect.
    std::string full = name.first + " " + name.last;
    bool too_close = false;
    for (const auto& existing : full_names) {
      if (LevenshteinWithin(full, existing, 2)) {
        too_close = true;
        break;
      }
    }
    if (too_close) continue;
    full_names.push_back(std::move(full));
    population.push_back({name, black});
    if (black) ++black_count;
  }
  auto sample_by_race = [&](int count, double black_frac,
                            std::set<size_t>* taken) {
    std::vector<size_t> chosen;
    int attempts = 0;
    while (static_cast<int>(chosen.size()) < count &&
           attempts < 50 * count) {
      ++attempts;
      bool want_black = rng.NextBool(black_frac);
      size_t idx = static_cast<size_t>(rng.NextBounded(population.size()));
      if (population[idx].black != want_black) continue;
      if (!taken->insert(idx).second) continue;
      chosen.push_back(idx);
    }
    return chosen;
  };

  // No-fly list: over-represents the Black group.
  std::set<size_t> no_fly_taken;
  std::vector<size_t> no_fly =
      sample_by_race(options.no_fly_size, options.no_fly_black_frac,
                     &no_fly_taken);
  // Passengers: census distribution; a fraction of the no-fly members also
  // board (the true matches).
  std::set<size_t> passenger_taken;
  std::vector<size_t> passengers;
  for (size_t idx : no_fly) {
    if (rng.NextBool(options.overlap_frac)) {
      passengers.push_back(idx);
      passenger_taken.insert(idx);
    }
  }
  int remaining = options.passenger_size -
                  static_cast<int>(passengers.size());
  if (remaining > 0) {
    // The no-fly members must remain samplable only once: exclude them.
    for (size_t idx : no_fly) passenger_taken.insert(idx);
    std::vector<size_t> extra = sample_by_race(
        remaining, options.passenger_black_frac, &passenger_taken);
    passengers.insert(passengers.end(), extra.begin(), extra.end());
  }

  const char* kBlack = "African-American";
  const char* kWhite = "Caucasian";
  for (size_t idx : passengers) {
    const Person& p = population[idx];
    FAIREM_RETURN_NOT_OK(ds.table_a.AppendValues(
        static_cast<int64_t>(idx),
        {p.name.first, p.name.last, p.black ? kBlack : kWhite}));
  }
  for (size_t idx : no_fly) {
    const Person& p = population[idx];
    FAIREM_RETURN_NOT_OK(ds.table_b.AppendValues(
        static_cast<int64_t>(idx),
        {PerturbString(p.name.first, &rng), PerturbString(p.name.last, &rng),
         p.black ? kBlack : kWhite}));
  }

  std::vector<LabeledPair> pairs;
  for (size_t i = 0; i < ds.table_a.num_rows(); ++i) {
    for (size_t j = 0; j < ds.table_b.num_rows(); ++j) {
      if (ds.table_a.row(i).entity_id == ds.table_b.row(j).entity_id) {
        pairs.push_back({i, j, true});
      }
    }
  }
  // Blocking on the surname (the no-fly screening key): hard negatives
  // concentrate where surnames concentrate — the African-American group.
  if (options.include_blocked_negatives) {
    BlockedNegatives(ds.table_a, ds.table_b, {1}, 0.88,
                     2 * static_cast<size_t>(options.no_fly_size), &rng,
                     &pairs);
  }
  SampleNegatives(ds.table_a, ds.table_b, options.negatives_per_record, &rng,
                  &pairs);
  DedupPairs(&pairs);
  FAIREM_RETURN_NOT_OK(SplitPairs(std::move(pairs), options.train_frac,
                                  options.valid_frac, &rng, &ds.train,
                                  &ds.valid, &ds.test));
  FAIREM_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace fairem
