#ifndef FAIREM_DATAGEN_CRICKET_H_
#define FAIREM_DATAGEN_CRICKET_H_

#include <cstdint>

#include "src/data/dataset.h"
#include "src/util/result.h"

namespace fairem {

/// Cricket-style dirty sports task (Table 4: sensitive attribute batting
/// style, binary; 96.5% positive pairs — the match/non-match *negative*
/// imbalance case of §5.3.2 where NPVP/FPRP are the informative measures;
/// the paper thresholds this dataset at 0.9).
///
/// Planted behaviour: left-handed batters' profiles abbreviate names far
/// more often (initials, dropped middle names), so their true matches are
/// textually harder — the FN source behind LogRegMatcher's NPVP unfairness
/// to Left Handed (§5.3.2).
struct CricketOptions {
  int num_players = 220;
  /// Fraction of the pair list that is non-matches (paper: 3.5%).
  double negative_frac = 0.035;
  double null_prob = 0.12;
  double train_frac = 0.5;
  double valid_frac = 0.1;
  uint64_t seed = 37;
};

Result<EMDataset> GenerateCricket(const CricketOptions& options);

}  // namespace fairem

#endif  // FAIREM_DATAGEN_CRICKET_H_
