#include "src/datagen/perturb.h"

namespace fairem {
namespace {

constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";

char RandomLetter(Rng* rng) {
  return kAlphabet[rng->NextBounded(26)];
}

}  // namespace

std::string PerturbString(std::string_view value, Rng* rng, int edits) {
  std::string out(value);
  for (int e = 0; e < edits; ++e) {
    if (out.empty()) {
      out.push_back(RandomLetter(rng));
      continue;
    }
    switch (rng->NextBounded(3)) {
      case 0: {  // add
        size_t pos = static_cast<size_t>(rng->NextBounded(out.size() + 1));
        out.insert(out.begin() + static_cast<ptrdiff_t>(pos),
                   RandomLetter(rng));
        break;
      }
      case 1: {  // remove
        size_t pos = static_cast<size_t>(rng->NextBounded(out.size()));
        out.erase(out.begin() + static_cast<ptrdiff_t>(pos));
        break;
      }
      default: {  // replace
        size_t pos = static_cast<size_t>(rng->NextBounded(out.size()));
        out[pos] = RandomLetter(rng);
        break;
      }
    }
  }
  return out;
}

std::string MaybePerturb(std::string_view value, double p_edit, Rng* rng) {
  if (rng->NextBool(p_edit)) return PerturbString(value, rng);
  return std::string(value);
}

}  // namespace fairem
