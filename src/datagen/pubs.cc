#include "src/datagen/pubs.h"

#include <set>
#include <string>
#include <vector>

#include "src/datagen/names.h"
#include "src/datagen/perturb.h"
#include "src/text/edit_distance.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

const std::vector<std::string>& Adjectives() {
  static const auto& pool = *new std::vector<std::string>{
      "efficient", "effective", "scalable", "adaptive",    "robust",
      "incremental", "parallel", "distributed", "approximate", "optimal",
      "interactive", "declarative"};
  return pool;
}

const std::vector<std::string>& Topics() {
  static const auto& pool = *new std::vector<std::string>{
      "query processing over data streams",
      "schema matching for data integration",
      "entity matching in large datasets",
      "managing multiversion xml documents",
      "indexing large video databases",
      "timestamping in databases",
      "lineage tracing for data warehouse transformations",
      "mining frequent patterns in transactional data",
      "top-k query evaluation with probabilistic guarantees",
      "similarity search in metric spaces",
      "view maintenance in data warehouses",
      "keyword search over relational data",
      "cardinality estimation for join queries",
      "sampling-based approximate aggregation",
      "access control for published xml",
      "clustering high dimensional data",
      "selectivity estimation using histograms",
      "duplicate detection in web data",
      "transaction scheduling on multicore machines",
      "compression techniques for column stores"};
  return pool;
}

const std::vector<std::string>& ConferenceVenues() {
  static const auto& pool = *new std::vector<std::string>{
      "SIGMOD", "VLDB", "ICDE"};
  return pool;
}

const std::vector<std::string>& EditorialVenues() {
  static const auto& pool = *new std::vector<std::string>{
      "VLDBJ", "SIGMOD Rec."};
  return pool;
}

std::string AuthorList(Rng* rng, int count) {
  std::vector<std::string> authors;
  for (int i = 0; i < count; ++i) {
    authors.push_back(ToLowerAscii(GermanFullName(rng)));
  }
  return Join(authors, " , ");
}

struct Pub {
  std::string title;
  std::string authors;
  std::string venue;
  std::string year;
};

/// DBLP vs ACM views of the same publication. Author lists are heavily
/// reformatted (order flips, initials, dropped co-authors) and years drift
/// by one — so author/year features are unreliable for true matches and
/// trained models lean on the title, walking into the identical-title
/// editorial trap exactly as §5.3.3 describes for SVMMatcher.
Pub AcmView(const Pub& p, Rng* rng) {
  Pub out = p;
  std::vector<std::string> parts = Split(p.authors, ',');
  for (auto& part : parts) part = std::string(TrimAscii(part));
  if (parts.size() >= 2 && rng->NextBool(0.4)) {
    std::swap(parts.front(), parts.back());
  }
  if (parts.size() >= 2 && rng->NextBool(0.3)) {
    parts.pop_back();  // ACM drops a co-author
  }
  if (rng->NextBool(0.5)) {
    // First names become initials: "jennifer widom" -> "j widom".
    for (auto& part : parts) {
      std::vector<std::string> words = Split(part, ' ');
      if (words.size() >= 2 && !words[0].empty()) {
        words[0] = words[0].substr(0, 1);
        part = Join(words, " ");
      }
    }
  }
  out.authors = Join(parts, " , ");
  if (rng->NextBool(0.25)) {
    out.year = std::to_string(std::stoi(p.year) + (rng->NextBool(0.5) ? 1 : -1));
  }
  if (rng->NextBool(0.35)) out.title = PerturbString(out.title, rng);
  return out;
}

/// Appends all non-match pairs with (near-)identical titles — the
/// candidates title-based blocking would produce, and exactly where the
/// planted editorial / extended-version traps live.
Status AppendTitleBlockedNegatives(const Table& a, const Table& b,
                                   double threshold, size_t max_count,
                                   Rng* rng,
                                   std::vector<LabeledPair>* pairs) {
  FAIREM_ASSIGN_OR_RETURN(size_t col_a, a.schema().Index("title"));
  FAIREM_ASSIGN_OR_RETURN(size_t col_b, b.schema().Index("title"));
  std::vector<LabeledPair> candidates;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (a.IsNull(i, col_a)) continue;
    for (size_t j = 0; j < b.num_rows(); ++j) {
      if (a.row(i).entity_id == b.row(j).entity_id) continue;
      if (b.IsNull(j, col_b)) continue;
      if (JaroWinklerSimilarity(a.value(i, col_a), b.value(j, col_b)) >=
          threshold) {
        candidates.push_back({i, j, false});
      }
    }
  }
  if (candidates.size() > max_count) {
    rng->Shuffle(&candidates);
    candidates.resize(max_count);
  }
  pairs->insert(pairs->end(), candidates.begin(), candidates.end());
  return Status::OK();
}

}  // namespace

Result<EMDataset> GenerateDblpAcm(const DblpAcmOptions& options) {
  Rng rng(options.seed);
  FAIREM_ASSIGN_OR_RETURN(
      Schema schema, Schema::Make({"title", "authors", "venue", "year"}));
  EMDataset ds;
  ds.name = "DBLP-ACM";
  ds.table_a = Table("dblp", schema);
  ds.table_b = Table("acm", schema);
  ds.matching_attrs = {"title", "authors", "venue", "year"};
  ds.sensitive_attr = "venue";
  ds.sensitive_kind = SensitiveAttrKind::kMultiValued;

  std::vector<Pub> pubs;
  auto random_year = [&] { return std::to_string(rng.NextInt(1998, 2004)); };

  // Regular publications: adjective + topic titles across all venues. Some
  // adjacent publications share the topic with a different adjective (the
  // embedding trap).
  for (int i = 0; i < options.num_pubs; ++i) {
    Pub p;
    const std::string& topic = rng.Choice(Topics());
    p.title = rng.Choice(Adjectives()) + " " + topic;
    p.authors = AuthorList(&rng, static_cast<int>(rng.NextInt(1, 3)));
    bool editorial_venue = rng.NextBool(0.3);
    p.venue = editorial_venue ? rng.Choice(EditorialVenues())
                              : rng.Choice(ConferenceVenues());
    p.year = random_year();
    pubs.push_back(p);
    if (rng.NextBool(0.25)) {
      // Adjective twin in another venue, different authors: a non-match
      // whose title embedding is very close.
      Pub twin;
      twin.title = rng.Choice(Adjectives()) + " " + topic;
      twin.authors = AuthorList(&rng, static_cast<int>(rng.NextInt(1, 3)));
      twin.venue = rng.Choice(ConferenceVenues());
      twin.year = random_year();
      pubs.push_back(twin);
      ++i;
    }
  }

  // Guest editorials: identical titles, different authors and years, in the
  // editorial venues.
  for (const auto& venue : EditorialVenues()) {
    for (int i = 0; i < options.num_editorials; ++i) {
      Pub p;
      p.title = rng.NextBool(0.5) ? "guest editorial" : "editor's notes";
      p.authors = AuthorList(&rng, static_cast<int>(rng.NextInt(1, 3)));
      p.venue = venue;
      p.year = random_year();
      pubs.push_back(p);
    }
  }

  // Extended-version twins: VLDB paper + VLDBJ extension, same authors,
  // reworded title, later year. Distinct entities.
  for (int i = 0; i < options.num_extended_pairs; ++i) {
    const std::string& topic = rng.Choice(Topics());
    std::string authors = AuthorList(&rng, 3);
    Pub conf;
    conf.title = "efficient " + topic;
    conf.authors = authors;
    conf.venue = "VLDB";
    conf.year = std::to_string(rng.NextInt(1999, 2002));
    Pub journal;
    journal.title = "efficient schemes for " + topic;
    journal.authors = authors;
    journal.venue = "VLDBJ";
    journal.year = std::to_string(std::stoi(conf.year) + 1);
    pubs.push_back(conf);
    pubs.push_back(journal);
  }

  for (size_t id = 0; id < pubs.size(); ++id) {
    const Pub& p = pubs[id];
    FAIREM_RETURN_NOT_OK(ds.table_a.AppendValues(
        static_cast<int64_t>(id), {p.title, p.authors, p.venue, p.year}));
    Pub acm = AcmView(p, &rng);
    FAIREM_RETURN_NOT_OK(ds.table_b.AppendValues(
        static_cast<int64_t>(id),
        {acm.title, acm.authors, acm.venue, acm.year}));
  }

  std::vector<LabeledPair> pairs;
  for (size_t i = 0; i < pubs.size(); ++i) pairs.push_back({i, i, true});
  FAIREM_RETURN_NOT_OK(AppendTitleBlockedNegatives(
      ds.table_a, ds.table_b, 0.93,
      static_cast<size_t>(options.max_title_blocked_negatives), &rng,
      &pairs));
  for (size_t i = 0; i < pubs.size(); ++i) {
    std::set<size_t> used;
    for (int n = 0; n < options.negatives_per_record; ++n) {
      size_t j = static_cast<size_t>(rng.NextBounded(pubs.size()));
      if (j == i || !used.insert(j).second) continue;
      pairs.push_back({i, j, false});
    }
  }
  // Duplicate (left,right) pairs can arise between the blocked and random
  // negatives; keep the first occurrence.
  {
    std::set<std::pair<size_t, size_t>> seen;
    std::vector<LabeledPair> unique;
    for (const auto& p : pairs) {
      if (seen.insert({p.left, p.right}).second) unique.push_back(p);
    }
    pairs = std::move(unique);
  }
  FAIREM_RETURN_NOT_OK(SplitPairs(std::move(pairs), options.train_frac,
                                  options.valid_frac, &rng, &ds.train,
                                  &ds.valid, &ds.test));
  // Coverage bias (§5.3.3): "the training data did not include enough
  // non-match cases with (almost) identical titles to reduce the
  // correlation of the title with the ground-truth label." Move most of
  // the identical-title non-matches from train to test, so models learn
  // title-heavy weights and then face the trap unprepared.
  {
    FAIREM_ASSIGN_OR_RETURN(size_t title_col,
                            ds.table_a.schema().Index("title"));
    std::vector<LabeledPair> kept_train;
    for (const auto& p : ds.train) {
      bool identical_title =
          !p.is_match && !ds.table_a.IsNull(p.left, title_col) &&
          !ds.table_b.IsNull(p.right, title_col) &&
          JaroWinklerSimilarity(ds.table_a.value(p.left, title_col),
                                ds.table_b.value(p.right, title_col)) >= 0.93;
      if (identical_title && rng.NextBool(0.85)) {
        ds.test.push_back(p);
      } else {
        kept_train.push_back(p);
      }
    }
    ds.train = std::move(kept_train);
  }
  FAIREM_RETURN_NOT_OK(ds.Validate());
  return ds;
}

Result<EMDataset> GenerateDblpScholar(const DblpScholarOptions& options) {
  Rng rng(options.seed);
  FAIREM_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({"title", "authors", "venue", "year", "pages", "volume",
                    "number", "publisher", "series", "entryType"}));
  EMDataset ds;
  ds.name = "DBLP-Scholar";
  ds.table_a = Table("dblp", schema);
  ds.table_b = Table("scholar", schema);
  ds.matching_attrs = {"title",  "authors", "venue",     "year",  "pages",
                       "volume", "number",  "publisher", "series"};
  ds.sensitive_attr = "entryType";
  ds.sensitive_kind = SensitiveAttrKind::kMultiValued;

  const std::vector<std::string> entry_types = {"article", "inproceedings",
                                                "techreport", "book"};
  const std::vector<std::string> publishers = {"ACM", "IEEE", "Springer",
                                               "Elsevier"};
  auto maybe_null = [&](std::string v) -> Cell {
    if (rng.NextBool(options.null_prob)) return std::nullopt;
    return v;
  };
  std::vector<LabeledPair> pairs;
  for (int id = 0; id < options.num_pubs; ++id) {
    std::string title = rng.Choice(Adjectives()) + " " + rng.Choice(Topics());
    std::string authors = AuthorList(&rng, static_cast<int>(rng.NextInt(1, 4)));
    std::string venue = rng.NextBool(0.5) ? rng.Choice(ConferenceVenues())
                                          : rng.Choice(EditorialVenues());
    std::string year = std::to_string(rng.NextInt(1996, 2005));
    std::string pages = std::to_string(rng.NextInt(1, 400)) + "-" +
                        std::to_string(rng.NextInt(401, 800));
    std::string volume = std::to_string(rng.NextInt(1, 30));
    std::string number = std::to_string(rng.NextInt(1, 12));
    std::string publisher = rng.Choice(publishers);
    std::string series = "vol. " + volume;
    std::string entry_type = rng.Choice(entry_types);
    Record left;
    left.entity_id = id;
    for (std::string* v : {&title, &authors, &venue, &year, &pages, &volume,
                           &number, &publisher, &series}) {
      left.cells.push_back(maybe_null(*v));
    }
    left.cells.emplace_back(entry_type);
    FAIREM_RETURN_NOT_OK(ds.table_a.Append(std::move(left)));

    // Scholar view: noisier, with its own missingness and typos.
    Record right;
    right.entity_id = id;
    std::string noisy_title = MaybePerturb(title, 0.5, &rng);
    std::string noisy_authors = MaybePerturb(authors, 0.3, &rng);
    for (std::string* v :
         {&noisy_title, &noisy_authors, &venue, &year, &pages, &volume,
          &number, &publisher, &series}) {
      right.cells.push_back(maybe_null(*v));
    }
    right.cells.emplace_back(entry_type);
    FAIREM_RETURN_NOT_OK(ds.table_b.Append(std::move(right)));
    pairs.push_back({static_cast<size_t>(id), static_cast<size_t>(id), true});
  }
  for (size_t i = 0; i < ds.table_a.num_rows(); ++i) {
    std::set<size_t> used;
    for (int n = 0; n < options.negatives_per_record; ++n) {
      size_t j = static_cast<size_t>(rng.NextBounded(ds.table_b.num_rows()));
      if (j == i || !used.insert(j).second) continue;
      pairs.push_back({i, j, false});
    }
  }
  FAIREM_RETURN_NOT_OK(SplitPairs(std::move(pairs), options.train_frac,
                                  options.valid_frac, &rng, &ds.train,
                                  &ds.valid, &ds.test));
  FAIREM_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace fairem
