#ifndef FAIREM_DATAGEN_PUBS_H_
#define FAIREM_DATAGEN_PUBS_H_

#include <cstdint>

#include "src/data/dataset.h"
#include "src/util/result.h"

namespace fairem {

/// DBLP-ACM-style structured publications task (Table 4: 4 attributes —
/// title, authors, venue, year; sensitive attribute venue, multi-valued).
///
/// The generator plants the exact failure modes §5.3.3 narrates:
///  * "guest editorial" articles in VLDBJ / SIGMOD Rec.: identical titles,
///    different authors and years, never matches (SVMMatcher's PPVP trap);
///  * extended-version twins: a VLDB paper and its VLDBJ extension with
///    near-identical titles and the same authors, distinct entities
///    (DITTO's serialized-text trap);
///  * adjective twins: "efficient X" vs "effective X" titles in different
///    venues (the embedding-similarity trap).
struct DblpAcmOptions {
  int num_pubs = 260;
  int num_editorials = 14;       // per editorial venue
  int num_extended_pairs = 16;
  /// Cap on the identical/near-title blocked negatives (editorials are a
  /// rare tail in real corpora; an uncapped cross-product would swamp the
  /// pair set).
  int max_title_blocked_negatives = 150;
  int negatives_per_record = 6;
  double train_frac = 0.4;
  double valid_frac = 0.1;
  uint64_t seed = 23;
};

Result<EMDataset> GenerateDblpAcm(const DblpAcmOptions& options);

/// DBLP-Scholar-style dirty publications task (Table 4: 10 attributes,
/// dirty, sensitive attribute entry type, multi-valued). Cells go missing
/// uniformly at random with probability `null_prob`.
struct DblpScholarOptions {
  int num_pubs = 140;
  double null_prob = 0.18;
  int negatives_per_record = 5;
  double train_frac = 0.4;
  double valid_frac = 0.1;
  uint64_t seed = 29;
};

Result<EMDataset> GenerateDblpScholar(const DblpScholarOptions& options);

}  // namespace fairem

#endif  // FAIREM_DATAGEN_PUBS_H_
