#include "src/text/simd.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string_view>

#include "src/obs/log.h"
#include "src/obs/metrics.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define FAIREM_SIMD_X86 1
#endif

namespace fairem {
namespace {

/// Batch size before a thread folds its tallies into the global counters.
/// Large enough that the per-pair loops touch no atomic in steady state,
/// small enough that short runs still report (plus the explicit flush).
constexpr uint64_t kTallyFlushThreshold = 4096;

Counter* KernelCallsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("fairem.simd.kernel_calls");
  return c;
}

Counter* ScratchReusesCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("fairem.simd.scratch_reuses");
  return c;
}

Gauge* DispatchLevelGauge() {
  static Gauge* g =
      MetricsRegistry::Global().GetGauge("fairem.simd.dispatch_level");
  return g;
}

/// Per-thread tallies; the destructor drains them at thread exit (for the
/// main thread, thread_local destruction is sequenced before static
/// destruction, so the registry is still alive).
struct SimdTally {
  uint64_t kernel_calls = 0;
  uint64_t scratch_reuses = 0;

  void Flush() {
    if (kernel_calls > 0) {
      KernelCallsCounter()->Increment(kernel_calls);
      kernel_calls = 0;
    }
    if (scratch_reuses > 0) {
      ScratchReusesCounter()->Increment(scratch_reuses);
      scratch_reuses = 0;
    }
  }

  ~SimdTally() { Flush(); }
};

SimdTally& Tally() {
  thread_local SimdTally tally;
  return tally;
}

bool SimdDisabledByEnv() {
  const char* env = std::getenv("FAIREM_SIMD");
  if (env == nullptr) return false;
  std::string_view v(env);
  return v == "off" || v == "OFF" || v == "0" || v == "scalar" ||
         v == "false";
}

SimdLevel DetectHardwareLevel() {
#if defined(FAIREM_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse42;
  return SimdLevel::kPortable;
#elif defined(__aarch64__)
  return SimdLevel::kNeon;
#else
  return SimdLevel::kPortable;
#endif
}

/// -1 = not yet detected; otherwise a SimdLevel. Relaxed loads in the hot
/// path; first use (or a test override) publishes via the same atomic.
std::atomic<int> g_active_level{-1};

SimdLevel InitActiveLevel() {
  static std::once_flag once;
  std::call_once(once, [] {
    SimdLevel level =
        SimdDisabledByEnv() ? SimdLevel::kScalar : DetectHardwareLevel();
    // A test override may have raced detection; never downgrade it here.
    int expected = -1;
    if (g_active_level.compare_exchange_strong(expected,
                                               static_cast<int>(level))) {
      DispatchLevelGauge()->Set(static_cast<double>(level));
      FAIREM_LOG(INFO) << "simd dispatch selected"
                       << LogKv("level", SimdLevelName(level));
    }
  });
  return static_cast<SimdLevel>(g_active_level.load(std::memory_order_relaxed));
}

/// Galloping |A ∩ B| for skewed sizes: every element of the small side is
/// located in the large side by doubling probes from a monotone cursor,
/// O(small * log(large/small)) instead of O(small + large).
size_t IntersectGallop(const uint32_t* small, size_t small_size,
                       const uint32_t* large, size_t large_size) {
  size_t j = 0;
  size_t count = 0;
  for (size_t i = 0; i < small_size; ++i) {
    const uint32_t key = small[i];
    size_t bound = 1;
    while (j + bound < large_size && large[j + bound] < key) bound <<= 1;
    const uint32_t* lo = large + j + bound / 2;
    const uint32_t* hi = large + std::min(j + bound + 1, large_size);
    j = static_cast<size_t>(std::lower_bound(lo, hi, key) - large);
    if (j < large_size && large[j] == key) {
      ++count;
      ++j;
    }
  }
  return count;
}

#if defined(FAIREM_SIMD_X86)

/// Block-scan |A ∩ B| with `a` the smaller side: for each key, skip 8-wide
/// blocks of `b` wholly below it, then one broadcast-compare decides
/// membership. The cursor only moves forward, so the whole call reads each
/// block of `b` O(1) times.
__attribute__((target("avx2"))) size_t IntersectAvx2(const uint32_t* a,
                                                     size_t a_size,
                                                     const uint32_t* b,
                                                     size_t b_size) {
  size_t j = 0;
  size_t count = 0;
  for (size_t i = 0; i < a_size; ++i) {
    const uint32_t key = a[i];
    while (j + 8 <= b_size && b[j + 7] < key) j += 8;
    if (j + 8 <= b_size) {
      const __m256i vkey = _mm256_set1_epi32(static_cast<int>(key));
      const __m256i block =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      count += _mm256_movemask_epi8(_mm256_cmpeq_epi32(block, vkey)) != 0;
    } else {
      while (j < b_size && b[j] < key) ++j;
      if (j < b_size && b[j] == key) {
        ++count;
        ++j;
      }
    }
  }
  return count;
}

/// The same block scan at SSE width (4 lanes). _mm_cmpeq_epi32 is SSE2,
/// but the tier is gated on sse4.2 as the practical "modern x86" floor.
__attribute__((target("sse4.2"))) size_t IntersectSse(const uint32_t* a,
                                                      size_t a_size,
                                                      const uint32_t* b,
                                                      size_t b_size) {
  size_t j = 0;
  size_t count = 0;
  for (size_t i = 0; i < a_size; ++i) {
    const uint32_t key = a[i];
    while (j + 4 <= b_size && b[j + 3] < key) j += 4;
    if (j + 4 <= b_size) {
      const __m128i vkey = _mm_set1_epi32(static_cast<int>(key));
      const __m128i block =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      count += _mm_movemask_epi8(_mm_cmpeq_epi32(block, vkey)) != 0;
    } else {
      while (j < b_size && b[j] < key) ++j;
      if (j < b_size && b[j] == key) {
        ++count;
        ++j;
      }
    }
  }
  return count;
}

#endif  // FAIREM_SIMD_X86

/// Small-over-large ratio beyond which galloping beats the linear merge.
constexpr size_t kGallopSkewRatio = 8;

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kPortable:
      return "portable";
    case SimdLevel::kSse42:
      return "sse4.2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

SimdLevel ActiveSimdLevel() {
  int v = g_active_level.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<SimdLevel>(v);
  return InitActiveLevel();
}

SimdLevel DetectedSimdLevel() { return DetectHardwareLevel(); }

size_t IntersectSortedU32Count(const uint32_t* a, size_t a_size,
                               const uint32_t* b, size_t b_size) {
  if (a_size == 0 || b_size == 0) return 0;
  CountSimdKernelCalls();
  if (a_size > b_size) {
    std::swap(a, b);
    std::swap(a_size, b_size);
  }
  switch (ActiveSimdLevel()) {
#if defined(FAIREM_SIMD_X86)
    case SimdLevel::kAvx2:
      if (b_size >= 16) return IntersectAvx2(a, a_size, b, b_size);
      break;
    case SimdLevel::kSse42:
      if (b_size >= 8) return IntersectSse(a, a_size, b, b_size);
      break;
#endif
    default:
      break;
  }
  if (a_size * kGallopSkewRatio <= b_size) {
    return IntersectGallop(a, a_size, b, b_size);
  }
  return internal::IntersectSortedU32CountScalar(a, a_size, b, b_size);
}

size_t BitsetIntersectCount(const uint64_t* a, const uint64_t* b,
                            size_t words) {
  CountSimdKernelCalls();
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i])) +
             static_cast<size_t>(std::popcount(a[i + 1] & b[i + 1])) +
             static_cast<size_t>(std::popcount(a[i + 2] & b[i + 2])) +
             static_cast<size_t>(std::popcount(a[i + 3] & b[i + 3]));
  }
  for (; i < words; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

void CountSimdKernelCalls(uint64_t n) {
  SimdTally& tally = Tally();
  tally.kernel_calls += n;
  if (tally.kernel_calls >= kTallyFlushThreshold) tally.Flush();
}

void CountScratchReuses(uint64_t n) {
  SimdTally& tally = Tally();
  tally.scratch_reuses += n;
  if (tally.scratch_reuses >= kTallyFlushThreshold) tally.Flush();
}

void FlushSimdTelemetry() {
  // Register eagerly so snapshots carry the keys even before any kernel
  // ran (benchdiff treats a missing metric as absent, not zero).
  KernelCallsCounter();
  ScratchReusesCounter();
  DispatchLevelGauge()->Set(static_cast<double>(ActiveSimdLevel()));
  Tally().Flush();
}

namespace internal {

void ForceSimdLevelForTest(SimdLevel level) {
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
  DispatchLevelGauge()->Set(static_cast<double>(level));
}

void ClearForcedSimdLevelForTest() {
  SimdLevel level =
      SimdDisabledByEnv() ? SimdLevel::kScalar : DetectHardwareLevel();
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
  DispatchLevelGauge()->Set(static_cast<double>(level));
}

size_t IntersectSortedU32CountScalar(const uint32_t* a, size_t a_size,
                                     const uint32_t* b, size_t b_size) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a_size && j < b_size) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    count += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return count;
}

}  // namespace internal

}  // namespace fairem
