#ifndef FAIREM_TEXT_HYBRID_SIM_H_
#define FAIREM_TEXT_HYBRID_SIM_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/text/tfidf.h"

namespace fairem {

/// Signature of a secondary (character-level) similarity used inside hybrid
/// token measures.
using CharSimilarityFn = double (*)(std::string_view, std::string_view);

/// Monge-Elkan similarity: for each token of `a`, the best `inner` match in
/// `b`, averaged over `a`'s tokens. Asymmetric by definition; see
/// SymmetricMongeElkan for the symmetrized variant. Returns 1 when both
/// inputs are empty and 0 when exactly one is.
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b,
                            CharSimilarityFn inner);

/// mean(MongeElkan(a, b), MongeElkan(b, a)).
double SymmetricMongeElkan(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           CharSimilarityFn inner);

/// Soft TF-IDF (Cohen et al.): TF-IDF cosine where tokens with secondary
/// similarity >= `theta` count as partial matches weighted by that
/// similarity. Requires a fitted vectorizer.
double SoftTfIdfSimilarity(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           const TfIdfVectorizer& vectorizer,
                           CharSimilarityFn inner, double theta = 0.9);

}  // namespace fairem

#endif  // FAIREM_TEXT_HYBRID_SIM_H_
