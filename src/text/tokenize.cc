#include "src/text/tokenize.h"

#include <cctype>

#include "src/util/logging.h"

namespace fairem {

std::vector<std::string> WhitespaceTokenize(std::string_view s) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) tokens.emplace_back(s.substr(start, i - start));
  }
  return tokens;
}

size_t CountWhitespaceTokens(std::string_view s) {
  size_t count = 0;
  bool in_token = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_token = false;
    } else if (!in_token) {
      in_token = true;
      ++count;
    }
  }
  return count;
}

std::vector<std::string> AlnumTokenize(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      current.push_back(c);
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> QGrams(std::string_view s, int q, bool pad) {
  FAIREM_CHECK(q >= 1, "QGrams requires q >= 1");
  std::string padded;
  if (pad && q > 1) {
    padded.assign(static_cast<size_t>(q - 1), '#');
    padded.append(s);
    padded.append(static_cast<size_t>(q - 1), '$');
  } else {
    padded.assign(s);
  }
  std::vector<std::string> grams;
  if (padded.size() < static_cast<size_t>(q)) return grams;
  grams.reserve(padded.size() - static_cast<size_t>(q) + 1);
  for (size_t i = 0; i + static_cast<size_t>(q) <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, static_cast<size_t>(q)));
  }
  return grams;
}

std::vector<std::string> WordBigrams(std::string_view s) {
  std::vector<std::string> tokens = AlnumTokenize(s);
  std::vector<std::string> bigrams;
  if (tokens.size() < 2) return bigrams;
  bigrams.reserve(tokens.size() - 1);
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    bigrams.push_back(tokens[i] + " " + tokens[i + 1]);
  }
  return bigrams;
}

}  // namespace fairem
