#include "src/text/prepared.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/text/edit_distance.h"
#include "src/text/hybrid_sim.h"
#include "src/text/tokenize.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace fairem {
namespace {

Counter* BuildsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("fairem.prepared.builds");
  return c;
}

Counter* CacheHitsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("fairem.prepared.cache_hits");
  return c;
}

/// Sorted-unique copy of a token bag (the set the unordered_set-based
/// kernels in token_sim.cc collapse to — same elements, so the same
/// cardinalities and the same similarity doubles).
std::vector<std::string> SortedUnique(std::vector<std::string> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

/// |A ∩ B| of two sorted-unique vectors by linear merge.
size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  size_t ia = 0;
  size_t ib = 0;
  size_t inter = 0;
  while (ia < a.size() && ib < b.size()) {
    int cmp = a[ia].compare(b[ib]);
    if (cmp < 0) {
      ++ia;
    } else if (cmp > 0) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  return inter;
}

/// The exact formulas of token_sim.cc, over precomputed cardinalities.
double JaccardFromSizes(size_t a, size_t b, size_t inter) {
  size_t uni = a + b - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceFromSizes(size_t a, size_t b, size_t inter) {
  if (a + b == 0) return 1.0;
  return 2.0 * static_cast<double>(inter) / static_cast<double>(a + b);
}

double OverlapFromSizes(size_t a, size_t b, size_t inter) {
  size_t min_size = std::min(a, b);
  if (min_size == 0) return a == b ? 1.0 : 0.0;
  return static_cast<double>(inter) / static_cast<double>(min_size);
}

double CosineFromSizes(size_t a, size_t b, size_t inter) {
  if (a == 0 && b == 0) return 1.0;
  if (a == 0 || b == 0) return 0.0;
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a) * static_cast<double>(b));
}

}  // namespace

PreparedNeeds NeedsForMeasure(SimilarityMeasure m) {
  PreparedNeeds needs;
  switch (m) {
    case SimilarityMeasure::kJaccardWord:
    case SimilarityMeasure::kDiceWord:
    case SimilarityMeasure::kOverlapWord:
    case SimilarityMeasure::kCosineWord:
      needs.word_set = true;
      break;
    case SimilarityMeasure::kJaccardQgram3:
    case SimilarityMeasure::kDiceQgram3:
      needs.qgram_set = true;
      break;
    case SimilarityMeasure::kMongeElkanJaro:
      needs.word_tokens = true;
      break;
    case SimilarityMeasure::kNumericAbsDiff:
      needs.numeric = true;
      break;
    case SimilarityMeasure::kTokenSortRatio:
      needs.token_sorted = true;
      break;
    default:
      break;  // character-level measures read `raw` only
  }
  return needs;
}

PreparedValue PrepareValue(std::string_view raw, bool is_null,
                           const PreparedNeeds& needs) {
  PreparedValue v;
  v.raw = raw;
  v.is_null = is_null;
  if (is_null) return v;
  if (needs.word_tokens || needs.word_set || needs.token_sorted) {
    std::vector<std::string> tokens = AlnumTokenize(raw);
    if (needs.token_sorted) {
      // TokenSortRatio sorts with duplicates before joining; mirror it.
      std::vector<std::string> sorted = tokens;
      std::sort(sorted.begin(), sorted.end());
      v.token_sorted = Join(sorted, " ");
    }
    if (needs.word_set) v.word_set = SortedUnique(tokens);
    if (needs.word_tokens) v.word_tokens = std::move(tokens);
  }
  if (needs.qgram_set) v.qgram_set = SortedUnique(QGrams(raw, 3));
  if (needs.numeric) v.is_numeric = ParseDouble(raw, &v.numeric_value);
  return v;
}

double ComputeSimilarity(SimilarityMeasure m, const PreparedValue& a,
                         const PreparedValue& b) {
  switch (m) {
    case SimilarityMeasure::kJaccardWord:
      return JaccardFromSizes(a.word_set.size(), b.word_set.size(),
                              SortedIntersectionSize(a.word_set, b.word_set));
    case SimilarityMeasure::kDiceWord:
      return DiceFromSizes(a.word_set.size(), b.word_set.size(),
                           SortedIntersectionSize(a.word_set, b.word_set));
    case SimilarityMeasure::kOverlapWord:
      return OverlapFromSizes(a.word_set.size(), b.word_set.size(),
                              SortedIntersectionSize(a.word_set, b.word_set));
    case SimilarityMeasure::kCosineWord:
      return CosineFromSizes(a.word_set.size(), b.word_set.size(),
                             SortedIntersectionSize(a.word_set, b.word_set));
    case SimilarityMeasure::kJaccardQgram3:
      return JaccardFromSizes(
          a.qgram_set.size(), b.qgram_set.size(),
          SortedIntersectionSize(a.qgram_set, b.qgram_set));
    case SimilarityMeasure::kDiceQgram3:
      return DiceFromSizes(a.qgram_set.size(), b.qgram_set.size(),
                           SortedIntersectionSize(a.qgram_set, b.qgram_set));
    case SimilarityMeasure::kMongeElkanJaro:
      return SymmetricMongeElkan(a.word_tokens, b.word_tokens,
                                 &JaroSimilarity);
    case SimilarityMeasure::kNumericAbsDiff: {
      if (!a.is_numeric || !b.is_numeric) return 0.0;
      double denom = std::max(
          {std::fabs(a.numeric_value), std::fabs(b.numeric_value), 1.0});
      return std::clamp(
          1.0 - std::fabs(a.numeric_value - b.numeric_value) / denom, 0.0,
          1.0);
    }
    case SimilarityMeasure::kTokenSortRatio:
      return LevenshteinSimilarity(a.token_sorted, b.token_sorted);
    default:
      return ComputeSimilarity(m, a.raw, b.raw);
  }
}

void PreparedColumn::BuildRows(const Table& table, size_t col,
                               const std::vector<size_t>& rows,
                               const PreparedNeeds& needs) {
  values_.assign(table.num_rows(), PreparedValue{});
  GlobalThreadPool().ParallelFor(
      rows.size(), /*grain=*/0, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          size_t row = rows[i];
          values_[row] =
              PrepareValue(table.value(row, col), table.IsNull(row, col), needs);
        }
      });
  BuildsCounter()->Increment(rows.size());
}

void AddPreparedCacheHits(uint64_t n) {
  if (n > 0) CacheHitsCounter()->Increment(n);
}

}  // namespace fairem
