#include "src/text/prepared.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/text/edit_distance.h"
#include "src/text/hybrid_sim.h"
#include "src/text/simd.h"
#include "src/text/token_sim.h"
#include "src/text/tokenize.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace fairem {
namespace {

/// Largest id universe that still gets per-value bitsets (64 words = 512
/// bytes per set). Beyond this the sorted-u32 merge is the fast path.
constexpr size_t kBitsetMaxUniverse = 4096;

/// Below this combined id count the plain merge beats AND+popcount over
/// the whole (mostly empty) bitset.
constexpr size_t kBitsetMinIds = 16;

/// The bitset sweep costs min(|a_bits|, |b_bits|) word ops regardless of
/// how sparse the sets are; the merge costs ~(|a|+|b|) element steps. Take
/// the bitset only when the sets are dense enough in their universe that
/// the sweep is the cheaper of the two (with a small bias toward the
/// branchless popcount loop).
constexpr size_t kBitsetDensityFactor = 2;

Counter* BuildsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("fairem.prepared.builds");
  return c;
}

Counter* CacheHitsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("fairem.prepared.cache_hits");
  return c;
}

/// Sorted-unique copy of a token bag (the set the unordered_set-based
/// kernels in token_sim.cc collapse to — same elements, so the same
/// cardinalities and the same similarity doubles).
std::vector<std::string> SortedUnique(std::vector<std::string> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

/// |A ∩ B| of two sorted-unique vectors by linear merge.
size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  size_t ia = 0;
  size_t ib = 0;
  size_t inter = 0;
  while (ia < a.size() && ib < b.size()) {
    int cmp = a[ia].compare(b[ib]);
    if (cmp < 0) {
      ++ia;
    } else if (cmp > 0) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  return inter;
}

/// |A ∩ B| over interned id sets: bitsets (AND + popcount) when both sides
/// materialized them and the sets are big enough to amortize the word
/// scan, else the dispatched sorted-u32 merge. Bitsets from different
/// universe sizes intersect over min(words) — exact, because the side
/// built at the smaller universe has no ids beyond it.
size_t IdIntersectionSize(const std::vector<uint32_t>& a_ids,
                          const std::vector<uint64_t>& a_bits,
                          const std::vector<uint32_t>& b_ids,
                          const std::vector<uint64_t>& b_bits) {
  if (!a_bits.empty() && !b_bits.empty() &&
      a_ids.size() + b_ids.size() >= kBitsetMinIds) {
    const size_t words = std::min(a_bits.size(), b_bits.size());
    if (kBitsetDensityFactor * (a_ids.size() + b_ids.size()) >= words) {
      return BitsetIntersectCount(a_bits.data(), b_bits.data(), words);
    }
  }
  return IntersectSortedU32Count(a_ids.data(), a_ids.size(), b_ids.data(),
                                 b_ids.size());
}

size_t WordIntersectionSize(const PreparedValue& a, const PreparedValue& b) {
  if (a.has_ids && b.has_ids) {
    return IdIntersectionSize(a.word_ids, a.word_bits, b.word_ids,
                              b.word_bits);
  }
  return SortedIntersectionSize(a.word_set, b.word_set);
}

size_t QgramIntersectionSize(const PreparedValue& a, const PreparedValue& b) {
  if (a.has_ids && b.has_ids) {
    return IdIntersectionSize(a.qgram_ids, a.qgram_bits, b.qgram_ids,
                              b.qgram_bits);
  }
  return SortedIntersectionSize(a.qgram_set, b.qgram_set);
}

}  // namespace

PreparedNeeds NeedsForMeasure(SimilarityMeasure m) {
  PreparedNeeds needs;
  switch (m) {
    case SimilarityMeasure::kJaccardWord:
    case SimilarityMeasure::kDiceWord:
    case SimilarityMeasure::kOverlapWord:
    case SimilarityMeasure::kCosineWord:
      needs.word_set = true;
      break;
    case SimilarityMeasure::kJaccardQgram3:
    case SimilarityMeasure::kDiceQgram3:
      needs.qgram_set = true;
      break;
    case SimilarityMeasure::kMongeElkanJaro:
      needs.word_tokens = true;
      break;
    case SimilarityMeasure::kNumericAbsDiff:
      needs.numeric = true;
      break;
    case SimilarityMeasure::kTokenSortRatio:
      needs.token_sorted = true;
      break;
    default:
      break;  // character-level measures read `raw` only
  }
  return needs;
}

PreparedValue PrepareValue(std::string_view raw, bool is_null,
                           const PreparedNeeds& needs) {
  PreparedValue v;
  v.raw = raw;
  v.is_null = is_null;
  if (is_null) return v;
  if (needs.word_tokens || needs.word_set || needs.token_sorted) {
    std::vector<std::string> tokens = AlnumTokenize(raw);
    if (needs.token_sorted) {
      // TokenSortRatio sorts with duplicates before joining; mirror it.
      std::vector<std::string> sorted = tokens;
      std::sort(sorted.begin(), sorted.end());
      v.token_sorted = Join(sorted, " ");
    }
    if (needs.word_set) v.word_set = SortedUnique(tokens);
    if (needs.word_tokens) v.word_tokens = std::move(tokens);
  }
  if (needs.qgram_set) v.qgram_set = SortedUnique(QGrams(raw, 3));
  if (needs.numeric) v.is_numeric = ParseDouble(raw, &v.numeric_value);
  return v;
}

double ComputeSimilarity(SimilarityMeasure m, const PreparedValue& a,
                         const PreparedValue& b) {
  switch (m) {
    case SimilarityMeasure::kJaccardWord:
      return JaccardFromSetSizes(a.word_set.size(), b.word_set.size(),
                                 WordIntersectionSize(a, b));
    case SimilarityMeasure::kDiceWord:
      return DiceFromSetSizes(a.word_set.size(), b.word_set.size(),
                              WordIntersectionSize(a, b));
    case SimilarityMeasure::kOverlapWord:
      return OverlapFromSetSizes(a.word_set.size(), b.word_set.size(),
                                 WordIntersectionSize(a, b));
    case SimilarityMeasure::kCosineWord:
      return CosineFromSetSizes(a.word_set.size(), b.word_set.size(),
                                WordIntersectionSize(a, b));
    case SimilarityMeasure::kJaccardQgram3:
      return JaccardFromSetSizes(a.qgram_set.size(), b.qgram_set.size(),
                                 QgramIntersectionSize(a, b));
    case SimilarityMeasure::kDiceQgram3:
      return DiceFromSetSizes(a.qgram_set.size(), b.qgram_set.size(),
                              QgramIntersectionSize(a, b));
    case SimilarityMeasure::kMongeElkanJaro:
      return SymmetricMongeElkan(a.word_tokens, b.word_tokens,
                                 &JaroSimilarity);
    case SimilarityMeasure::kNumericAbsDiff: {
      if (!a.is_numeric || !b.is_numeric) return 0.0;
      double denom = std::max(
          {std::fabs(a.numeric_value), std::fabs(b.numeric_value), 1.0});
      return std::clamp(
          1.0 - std::fabs(a.numeric_value - b.numeric_value) / denom, 0.0,
          1.0);
    }
    case SimilarityMeasure::kTokenSortRatio:
      return LevenshteinSimilarity(a.token_sorted, b.token_sorted);
    default:
      return ComputeSimilarity(m, a.raw, b.raw);
  }
}

uint32_t TokenInterner::Intern(std::string_view token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(ids_.size());
  ids_.emplace(std::string(token), id);
  return id;
}

void PreparedColumn::BuildRows(const Table& table, size_t col,
                               const std::vector<size_t>& rows,
                               const PreparedNeeds& needs,
                               ColumnInterners* interners) {
  values_.assign(table.num_rows(), PreparedValue{});
  GlobalThreadPool().ParallelFor(
      rows.size(), /*grain=*/0, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          size_t row = rows[i];
          values_[row] =
              PrepareValue(table.value(row, col), table.IsNull(row, col), needs);
        }
      });
  BuildsCounter()->Increment(rows.size());
  if (interners == nullptr || (!needs.word_set && !needs.qgram_set)) return;
  // FAIREM_SIMD=off keeps the seed's string-merge path end to end: no ids,
  // no bitsets, so the scalar tier really is the pre-vectorization code.
  if (ActiveSimdLevel() == SimdLevel::kScalar) return;
  // Interning is a sequential second pass in row order: first-encounter id
  // assignment must not depend on the ParallelFor schedule above, or the
  // (exact) intersections downstream would stay equal but the bitset/merge
  // layouts would differ run to run. Determinism over parallelism here —
  // the pass is a hash lookup per token, a sliver of PrepareValue's cost.
  for (size_t row : rows) {
    PreparedValue& v = values_[row];
    if (v.is_null) continue;
    if (needs.word_set) {
      v.word_ids.reserve(v.word_set.size());
      for (const auto& t : v.word_set) {
        v.word_ids.push_back(interners->words.Intern(t));
      }
      std::sort(v.word_ids.begin(), v.word_ids.end());
    }
    if (needs.qgram_set) {
      v.qgram_ids.reserve(v.qgram_set.size());
      for (const auto& t : v.qgram_set) {
        v.qgram_ids.push_back(interners->qgrams.Intern(t));
      }
      std::sort(v.qgram_ids.begin(), v.qgram_ids.end());
    }
    v.has_ids = true;
  }
  // Bitsets for small universes: disjoint rows, so this pass can go back
  // on the pool. A side built later (larger universe, possibly over the
  // cap) still intersects exactly with an earlier smaller-universe side —
  // see IdIntersectionSize.
  auto build_bits = [&](bool qgram, size_t universe) {
    if (universe == 0 || universe > kBitsetMaxUniverse) return;
    const size_t words = (universe + 63) / 64;
    GlobalThreadPool().ParallelFor(
        rows.size(), /*grain=*/0, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            PreparedValue& v = values_[rows[i]];
            if (v.is_null) continue;
            std::vector<uint64_t>& bits = qgram ? v.qgram_bits : v.word_bits;
            bits.assign(words, 0);
            for (uint32_t id : qgram ? v.qgram_ids : v.word_ids) {
              bits[id >> 6] |= uint64_t{1} << (id & 63);
            }
          }
        });
  };
  if (needs.word_set) build_bits(/*qgram=*/false, interners->words.size());
  if (needs.qgram_set) build_bits(/*qgram=*/true, interners->qgrams.size());
}

void AddPreparedCacheHits(uint64_t n) {
  if (n > 0) CacheHitsCounter()->Increment(n);
}

}  // namespace fairem
