#include "src/text/hybrid_sim.h"

#include <algorithm>
#include <cmath>

#include "src/text/kernel_scratch.h"

namespace fairem {

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b,
                            CharSimilarityFn inner) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double total = 0.0;
  for (const auto& ta : a) {
    double best = 0.0;
    for (const auto& tb : b) {
      best = std::max(best, inner(ta, tb));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

double SymmetricMongeElkan(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           CharSimilarityFn inner) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // Evaluate inner(a[i], b[j]) once into a scratch matrix and take both
  // directions' row/column maxima from it — the naive composition pays the
  // (expensive) inner kernel 2 * |a| * |b| times for the same values. All
  // built-in char similarities are symmetric, which both directions of the
  // old code already assumed; the fuzz suite pins that down for Jaro.
  const size_t an = a.size();
  const size_t bn = b.size();
  std::vector<double>& m = KernelScratch::Get().DoubleBuf(an * bn);
  for (size_t i = 0; i < an; ++i) {
    for (size_t j = 0; j < bn; ++j) {
      m[i * bn + j] = inner(a[i], b[j]);
    }
  }
  // max in the same scan order as MongeElkanSimilarity's inner loops, so
  // ties and NaN-free maxima resolve identically.
  double total_ab = 0.0;
  for (size_t i = 0; i < an; ++i) {
    double best = 0.0;
    for (size_t j = 0; j < bn; ++j) best = std::max(best, m[i * bn + j]);
    total_ab += best;
  }
  double total_ba = 0.0;
  for (size_t j = 0; j < bn; ++j) {
    double best = 0.0;
    for (size_t i = 0; i < an; ++i) best = std::max(best, m[i * bn + j]);
    total_ba += best;
  }
  return 0.5 * (total_ab / static_cast<double>(an) +
                total_ba / static_cast<double>(bn));
}

double SoftTfIdfSimilarity(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           const TfIdfVectorizer& vectorizer,
                           CharSimilarityFn inner, double theta) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // Per-token effective weight: corpus idf, or — for out-of-vocabulary
  // tokens (typos are by definition unseen) — the idf of the closest
  // in-vocabulary partner on the other side, so a misspelled rare token
  // still carries its partner's rarity.
  auto effective_weights = [&](const std::vector<std::string>& from,
                               const std::vector<std::string>& to) {
    std::vector<double> weights;
    weights.reserve(from.size());
    for (const auto& tf : from) {
      double w = vectorizer.Idf(tf);
      if (w == 0.0) {
        for (const auto& tt : to) {
          if (inner(tf, tt) >= theta) {
            w = std::max(w, vectorizer.Idf(tt));
          }
        }
      }
      weights.push_back(w);
    }
    return weights;
  };
  std::vector<double> wa = effective_weights(a, b);
  std::vector<double> wb = effective_weights(b, a);
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (double w : wa) norm_a += w * w;
  for (double w : wb) norm_b += w * w;
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  // Accumulate soft matches: token of `a` close to some token of `b`.
  double numerator = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double best_sim = 0.0;
    double best_weight = 0.0;
    for (size_t j = 0; j < b.size(); ++j) {
      double s = inner(a[i], b[j]);
      if (s >= theta && s > best_sim) {
        best_sim = s;
        best_weight = wb[j];
      }
    }
    if (best_sim > 0.0) {
      numerator += wa[i] * best_weight * best_sim;
    }
  }
  double result = numerator / (std::sqrt(norm_a) * std::sqrt(norm_b));
  return std::clamp(result, 0.0, 1.0);
}

}  // namespace fairem
