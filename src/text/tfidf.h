#ifndef FAIREM_TEXT_TFIDF_H_
#define FAIREM_TEXT_TFIDF_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fairem {

/// A sparse TF-IDF vector: term id -> weight.
using SparseVector = std::unordered_map<int, double>;

/// A sparse TF-IDF vector laid out for merging: parallel arrays sorted by
/// id. TransformSorted builds these so the per-pair cosine is a sorted-u32
/// two-pointer merge (the interned-token idiom of DESIGN.md §17) instead
/// of hash probes.
struct SortedSparseVector {
  std::vector<uint32_t> ids;     // strictly increasing
  std::vector<double> weights;  // weights[i] belongs to ids[i]
};

/// TF-IDF vectorizer fit on a corpus of token lists, in the style used by
/// non-neural EM feature generators. idf(t) = log((1 + N) / (1 + df)) + 1
/// (smoothed); vectors are L2-normalized on transform.
class TfIdfVectorizer {
 public:
  TfIdfVectorizer() = default;

  /// Learns the vocabulary and document frequencies from `corpus`.
  void Fit(const std::vector<std::vector<std::string>>& corpus);

  /// Maps tokens to a normalized sparse TF-IDF vector. Unknown tokens are
  /// ignored. Must be called after Fit.
  SparseVector Transform(const std::vector<std::string>& tokens) const;

  /// Transform with the merge-friendly layout. Weight accumulation and
  /// normalization sum in ascending id order, so the doubles are
  /// deterministic (the unordered_map Transform iterates in hash order).
  SortedSparseVector TransformSorted(
      const std::vector<std::string>& tokens) const;

  /// Cosine similarity of two sparse vectors (0 when either is empty).
  static double Cosine(const SparseVector& a, const SparseVector& b);

  /// Cosine over the sorted layout: one linear id merge, accumulating in
  /// ascending id order.
  static double CosineSorted(const SortedSparseVector& a,
                             const SortedSparseVector& b);

  /// Convenience: cosine of the TF-IDF transforms of two token lists.
  /// Runs on the sorted layout.
  double Similarity(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) const;

  size_t vocabulary_size() const { return vocab_.size(); }
  bool fitted() const { return fitted_; }

  /// idf weight of `token`, or 0 if out-of-vocabulary.
  double Idf(const std::string& token) const;

 private:
  std::unordered_map<std::string, int> vocab_;
  std::vector<double> idf_;
  bool fitted_ = false;
};

}  // namespace fairem

#endif  // FAIREM_TEXT_TFIDF_H_
