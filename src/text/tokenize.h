#ifndef FAIREM_TEXT_TOKENIZE_H_
#define FAIREM_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace fairem {

/// Splits on runs of ASCII whitespace. "a  b" -> {"a", "b"}.
std::vector<std::string> WhitespaceTokenize(std::string_view s);

/// WhitespaceTokenize(s).size() without materializing the tokens — the
/// allocation-free form for scan paths that only need the count
/// (attribute-type inference).
size_t CountWhitespaceTokens(std::string_view s);

/// Splits on runs of non-alphanumeric bytes, lower-casing ASCII letters.
/// "Qing-Hu Huang" -> {"qing", "hu", "huang"}.
std::vector<std::string> AlnumTokenize(std::string_view s);

/// Character q-grams of `s`. If `pad` is true the string is padded with
/// (q-1) '#' on the left and '$' on the right, so short strings still
/// produce grams. q must be >= 1.
std::vector<std::string> QGrams(std::string_view s, int q, bool pad = true);

/// Word-level bigrams over alnum tokens ("new york city" ->
/// {"new york", "york city"}). Useful for product-title matching.
std::vector<std::string> WordBigrams(std::string_view s);

}  // namespace fairem

#endif  // FAIREM_TEXT_TOKENIZE_H_
