#ifndef FAIREM_TEXT_KERNEL_SCRATCH_H_
#define FAIREM_TEXT_KERNEL_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fairem {

class KernelScratch;

/// A 256-row bit-pattern table (Myers' PEQ) borrowed from the scratch
/// arena. The arena keeps the backing store zeroed between borrows; Set()
/// records which rows were touched and the destructor re-zeroes exactly
/// those, so a 5-char pattern never pays a 2 KiB memset.
class PeqTable {
 public:
  PeqTable(PeqTable&&) = delete;
  PeqTable(const PeqTable&) = delete;
  ~PeqTable();

  /// ORs `bits` into row `c`, block `block` (< blocks passed at borrow).
  void Set(unsigned char c, size_t block, uint64_t bits);

  /// Row `c`, block `block`; zero for characters never Set.
  uint64_t Row(unsigned char c, size_t block) const {
    return data_[static_cast<size_t>(c) * blocks_ + block];
  }

 private:
  friend class KernelScratch;
  PeqTable(KernelScratch* owner, size_t blocks);

  KernelScratch* owner_;
  uint64_t* data_;
  size_t blocks_;
};

/// Thread-local scratch buffers for the pairwise kernels: DP rows, Jaro
/// match flags, Myers PEQ tables, and merge outputs. One arena per thread
/// (the feature loop runs kernels from pool workers), so borrowing is
/// lock-free and reuse across the millions of per-pair calls skips the
/// per-call std::vector allocations the old kernels paid.
///
/// Buffers are returned by reference and valid until the same slot is
/// borrowed again — kernels must finish with a buffer before calling
/// another kernel that uses the same slot. Counted (batched) in
/// fairem.simd.scratch_reuses whenever a borrow is served without growing.
class KernelScratch {
 public:
  /// The calling thread's arena.
  static KernelScratch& Get();

  /// An int row of at least `n` entries (uninitialized). Slots 0-2 are
  /// independent; DP kernels use 0/1 for the rolling rows and 2 for
  /// Damerau's third row.
  std::vector<int>& IntRow(size_t slot, size_t n);

  /// A byte row of at least `n` entries (uninitialized); slots 0-1. Jaro
  /// uses these for the matched flags.
  std::vector<uint8_t>& ByteRow(size_t slot, size_t n);

  /// A double buffer of at least `n` entries (uninitialized); Monge-Elkan
  /// caches its inner-similarity matrix here.
  std::vector<double>& DoubleBuf(size_t n);

  /// A u64 buffer of at least `n` entries (uninitialized); the blocked
  /// Myers kernel keeps Pv/Mv here.
  std::vector<uint64_t>& U64Buf(size_t slot, size_t n);

  /// Borrows the zeroed PEQ table sized for `blocks` 64-bit blocks. At
  /// most one PeqTable may be live per thread at a time.
  PeqTable BorrowPeq(size_t blocks);

 private:
  friend class PeqTable;

  static constexpr size_t kIntSlots = 3;
  static constexpr size_t kByteSlots = 2;
  static constexpr size_t kU64Slots = 2;

  void NoteBorrow(bool grew);

  std::vector<int> int_rows_[kIntSlots];
  std::vector<uint8_t> byte_rows_[kByteSlots];
  std::vector<double> double_buf_;
  std::vector<uint64_t> u64_bufs_[kU64Slots];

  /// PEQ backing store (256 * capacity blocks), zero outside a borrow.
  std::vector<uint64_t> peq_;
  size_t peq_blocks_ = 0;
  /// Characters Set() touched during the live borrow, for cheap re-zeroing.
  std::vector<unsigned char> peq_touched_;
  uint8_t peq_touched_flag_[256] = {};
  bool peq_borrowed_ = false;
};

}  // namespace fairem

#endif  // FAIREM_TEXT_KERNEL_SCRATCH_H_
