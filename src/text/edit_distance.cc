#include "src/text/edit_distance.h"

#include <algorithm>
#include <vector>

namespace fairem {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(max_len);
}

int DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<std::vector<int>> d(n + 1, std::vector<int>(m + 1));
  for (size_t i = 0; i <= n; ++i) d[i][0] = static_cast<int>(i);
  for (size_t j = 0; j <= m; ++j) d[0][j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      d[i][j] =
          std::min({d[i - 1][j] + 1, d[i][j - 1] + 1, d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  return d[n][m];
}

int HammingDistance(std::string_view a, std::string_view b) {
  size_t common = std::min(a.size(), b.size());
  int dist = static_cast<int>(std::max(a.size(), b.size()) - common);
  for (size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) ++dist;
  }
  return dist;
}

double HammingSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(HammingDistance(a, b)) /
                   static_cast<double>(max_len);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const int window = std::max(0, std::max(n, m) / 2 - 1);
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  int matches = 0;
  for (int i = 0; i < n; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(m - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions between the matched subsequences.
  int transpositions = 0;
  int k = 0;
  for (int i = 0; i < n; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  double mm = matches;
  return (mm / n + mm / m + (mm - transpositions / 2.0) / mm) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  int prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  for (size_t i = 0; i < limit && a[i] == b[i]; ++i) ++prefix;
  constexpr double kScaling = 0.1;
  return jaro + prefix * kScaling * (1.0 - jaro);
}

double NeedlemanWunschSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  constexpr int kMatch = 1;
  constexpr int kMismatch = -1;
  constexpr int kGap = -1;
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j) * kGap;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i) * kGap;
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? kMatch : kMismatch);
      cur[j] = std::max({sub, prev[j] + kGap, cur[j - 1] + kGap});
    }
    std::swap(prev, cur);
  }
  double max_len = static_cast<double>(std::max(n, m));
  // Score lies in [-max_len * 1, max_len * kMatch]; map to [0, 1].
  double score = static_cast<double>(prev[m]);
  return std::clamp((score / max_len + 1.0) / 2.0, 0.0, 1.0);
}

double SmithWatermanSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  constexpr int kMatch = 2;
  constexpr int kMismatch = -1;
  constexpr int kGap = -1;
  std::vector<int> prev(m + 1, 0);
  std::vector<int> cur(m + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = 0;
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? kMatch : kMismatch);
      cur[j] = std::max({0, sub, prev[j] + kGap, cur[j - 1] + kGap});
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  double denom = static_cast<double>(kMatch) * std::min(n, m);
  return std::clamp(static_cast<double>(best) / denom, 0.0, 1.0);
}

double PrefixSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  size_t common = std::min(a.size(), b.size());
  size_t prefix = 0;
  while (prefix < common && a[prefix] == b[prefix]) ++prefix;
  return static_cast<double>(prefix) / static_cast<double>(max_len);
}

double ExactMatchSimilarity(std::string_view a, std::string_view b) {
  return a == b ? 1.0 : 0.0;
}

}  // namespace fairem
