#include "src/text/edit_distance.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "src/text/kernel_scratch.h"
#include "src/text/simd.h"

namespace fairem {
namespace {

/// Drops the common prefix and suffix — positions the optimal alignment
/// matches for free. Exact for Levenshtein (every edit script on the
/// trimmed middle extends to one on the full strings and vice versa); NOT
/// applied to Damerau, where a transposition could straddle the trim
/// boundary.
void TrimCommonAffixes(std::string_view* a, std::string_view* b) {
  size_t prefix = 0;
  const size_t limit = std::min(a->size(), b->size());
  while (prefix < limit && (*a)[prefix] == (*b)[prefix]) ++prefix;
  a->remove_prefix(prefix);
  b->remove_prefix(prefix);
  size_t suffix = 0;
  const size_t limit2 = std::min(a->size(), b->size());
  while (suffix < limit2 &&
         (*a)[a->size() - 1 - suffix] == (*b)[b->size() - 1 - suffix]) {
    ++suffix;
  }
  a->remove_suffix(suffix);
  b->remove_suffix(suffix);
}

/// Myers' bit-parallel edit distance for patterns of <= 64 characters
/// (Myers 1999): the DP column lives in two machine words of vertical
/// deltas (Pv = +1 positions, Mv = -1 positions) and each text character
/// costs a handful of word ops instead of |pattern| cell updates.
int MyersSingleWord(std::string_view pattern, std::string_view text) {
  const int m = static_cast<int>(pattern.size());
  PeqTable peq = KernelScratch::Get().BorrowPeq(1);
  for (int i = 0; i < m; ++i) {
    peq.Set(static_cast<unsigned char>(pattern[i]), 0, uint64_t{1} << i);
  }
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  int score = m;
  const uint64_t last = uint64_t{1} << (m - 1);
  for (char tc : text) {
    const uint64_t eq = peq.Row(static_cast<unsigned char>(tc), 0);
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) {
      ++score;
    } else if (mh & last) {
      --score;
    }
    ph = (ph << 1) | 1;  // the boundary row D[0][j] = j grows every column
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

/// One 64-row block of the blocked Myers recurrence (Hyyrö's AdvanceBlock):
/// consumes the horizontal delta `hin` entering from the block above,
/// returns the delta leaving through `out_mask` (bit 63 for full blocks,
/// bit (m-1) % 64 for the partial last block). Bits past the pattern end in
/// the last block carry garbage, which is harmless: every operation is
/// bitwise except one addition, and carries only propagate upward.
inline int AdvanceBlock(uint64_t* pv, uint64_t* mv, uint64_t eq, int hin,
                        uint64_t out_mask) {
  const uint64_t xv = eq | *mv;
  if (hin < 0) eq |= 1;
  const uint64_t xh = (((eq & *pv) + *pv) ^ *pv) | eq;
  uint64_t ph = *mv | ~(xh | *pv);
  uint64_t mh = *pv & xh;
  int hout = 0;
  if (ph & out_mask) {
    hout = 1;
  } else if (mh & out_mask) {
    hout = -1;
  }
  ph <<= 1;
  mh <<= 1;
  if (hin > 0) {
    ph |= 1;
  } else if (hin < 0) {
    mh |= 1;
  }
  *pv = mh | ~(xv | ph);
  *mv = ph & xv;
  return hout;
}

/// Blocked Myers for patterns longer than a word: ceil(m/64) vertical-delta
/// word pairs, with the horizontal delta threaded block to block. Still
/// O(|text| * blocks) words of work vs. O(n * m) cells for the DP.
int MyersBlocked(std::string_view pattern, std::string_view text) {
  const size_t m = pattern.size();
  const size_t blocks = (m + 63) / 64;
  KernelScratch& scratch = KernelScratch::Get();
  PeqTable peq = scratch.BorrowPeq(blocks);
  for (size_t i = 0; i < m; ++i) {
    peq.Set(static_cast<unsigned char>(pattern[i]), i >> 6,
            uint64_t{1} << (i & 63));
  }
  std::vector<uint64_t>& pv = scratch.U64Buf(0, blocks);
  std::vector<uint64_t>& mv = scratch.U64Buf(1, blocks);
  std::fill_n(pv.begin(), blocks, ~uint64_t{0});
  std::fill_n(mv.begin(), blocks, uint64_t{0});
  int score = static_cast<int>(m);
  const size_t last_block = blocks - 1;
  const uint64_t last_bit = uint64_t{1} << ((m - 1) & 63);
  for (char tc : text) {
    const unsigned char c = static_cast<unsigned char>(tc);
    int carry = 1;  // boundary row D[0][j] = j: +1 into the top block
    for (size_t blk = 0; blk < blocks; ++blk) {
      const uint64_t out_mask =
          blk == last_block ? last_bit : (uint64_t{1} << 63);
      carry = AdvanceBlock(&pv[blk], &mv[blk], peq.Row(c, blk), carry,
                           out_mask);
    }
    score += carry;
  }
  return score;
}

}  // namespace

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a == b) return 0;  // covers the both-empty case
  if (ActiveSimdLevel() == SimdLevel::kScalar) {
    return internal::LevenshteinDistanceScalar(a, b);
  }
  TrimCommonAffixes(&a, &b);
  if (a.empty()) return static_cast<int>(b.size());
  if (b.empty()) return static_cast<int>(a.size());
  if (a.size() > b.size()) std::swap(a, b);  // fewer blocks: pattern = shorter
  CountSimdKernelCalls();
  return a.size() <= 64 ? MyersSingleWord(a, b) : MyersBlocked(a, b);
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(max_len);
}

int LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                               int bound) {
  if (bound < 0) bound = 0;
  if (a == b) return 0;
  TrimCommonAffixes(&a, &b);
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (std::abs(n - m) > bound) return bound + 1;  // dist >= |n - m| always
  if (n == 0) return m;
  if (m == 0) return n;
  const int inf = bound + 1;
  KernelScratch& scratch = KernelScratch::Get();
  std::vector<int>& prev = scratch.IntRow(0, static_cast<size_t>(m) + 1);
  std::vector<int>& cur = scratch.IntRow(1, static_cast<size_t>(m) + 1);
  for (int j = 0; j <= std::min(m, bound); ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    const int lo = std::max(1, i - bound);
    const int hi = std::min(m, i + bound);
    cur[lo - 1] = lo == 1 ? i : inf;
    int row_best = inf;
    for (int j = lo; j <= hi; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      int best = prev[j - 1] + cost;
      best = std::min(best, cur[j - 1] + 1);
      // prev[j] sits outside row i-1's band exactly when j == i + bound.
      if (j < i + bound) best = std::min(best, prev[j] + 1);
      best = std::min(best, inf);
      cur[j] = best;
      row_best = std::min(row_best, best);
    }
    if (row_best >= inf) return inf;  // whole band over bound: give up early
    std::swap(prev, cur);
  }
  return std::min(prev[m], inf);
}

bool LevenshteinWithin(std::string_view a, std::string_view b, int bound) {
  return LevenshteinDistanceBounded(a, b, bound) <= bound;
}

int DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (a == b) return 0;
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  // Rolling three-row buffer (cur / prev / prev-prev): the restricted
  // transposition only ever reads two rows back, so the old full O(n * m)
  // matrix was pure allocation overhead.
  KernelScratch& scratch = KernelScratch::Get();
  std::vector<int>& prev2 = scratch.IntRow(0, m + 1);
  std::vector<int>& prev = scratch.IntRow(1, m + 1);
  std::vector<int>& cur = scratch.IntRow(2, m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] =
          std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);
      }
    }
    std::swap(prev2, prev);  // row i-1 becomes next iteration's "two back"
    std::swap(prev, cur);    // row i becomes "one back"; cur is free scratch
  }
  return prev[m];
}

int HammingDistance(std::string_view a, std::string_view b) {
  size_t common = std::min(a.size(), b.size());
  int dist = static_cast<int>(std::max(a.size(), b.size()) - common);
  for (size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) ++dist;
  }
  return dist;
}

double HammingSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(HammingDistance(a, b)) /
                   static_cast<double>(max_len);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const int window = std::max(0, std::max(n, m) / 2 - 1);
  KernelScratch& scratch = KernelScratch::Get();
  std::vector<uint8_t>& a_matched = scratch.ByteRow(0, a.size());
  std::vector<uint8_t>& b_matched = scratch.ByteRow(1, b.size());
  std::fill_n(a_matched.begin(), a.size(), uint8_t{0});
  std::fill_n(b_matched.begin(), b.size(), uint8_t{0});
  int matches = 0;
  for (int i = 0; i < n; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(m - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = 1;
        b_matched[j] = 1;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions between the matched subsequences.
  int transpositions = 0;
  int k = 0;
  for (int i = 0; i < n; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  double mm = matches;
  return (mm / n + mm / m + (mm - transpositions / 2.0) / mm) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  int prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  for (size_t i = 0; i < limit && a[i] == b[i]; ++i) ++prefix;
  constexpr double kScaling = 0.1;
  return jaro + prefix * kScaling * (1.0 - jaro);
}

double NeedlemanWunschSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  constexpr int kMatch = 1;
  constexpr int kMismatch = -1;
  constexpr int kGap = -1;
  KernelScratch& scratch = KernelScratch::Get();
  std::vector<int>& prev = scratch.IntRow(0, m + 1);
  std::vector<int>& cur = scratch.IntRow(1, m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j) * kGap;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i) * kGap;
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? kMatch : kMismatch);
      cur[j] = std::max({sub, prev[j] + kGap, cur[j - 1] + kGap});
    }
    std::swap(prev, cur);
  }
  double max_len = static_cast<double>(std::max(n, m));
  // Score lies in [-max_len * 1, max_len * kMatch]; map to [0, 1].
  double score = static_cast<double>(prev[m]);
  return std::clamp((score / max_len + 1.0) / 2.0, 0.0, 1.0);
}

double SmithWatermanSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  constexpr int kMatch = 2;
  constexpr int kMismatch = -1;
  constexpr int kGap = -1;
  KernelScratch& scratch = KernelScratch::Get();
  std::vector<int>& prev = scratch.IntRow(0, m + 1);
  std::vector<int>& cur = scratch.IntRow(1, m + 1);
  std::fill_n(prev.begin(), m + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = 0;
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? kMatch : kMismatch);
      cur[j] = std::max({0, sub, prev[j] + kGap, cur[j - 1] + kGap});
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  double denom = static_cast<double>(kMatch) * std::min(n, m);
  return std::clamp(static_cast<double>(best) / denom, 0.0, 1.0);
}

double PrefixSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  size_t common = std::min(a.size(), b.size());
  size_t prefix = 0;
  while (prefix < common && a[prefix] == b[prefix]) ++prefix;
  return static_cast<double>(prefix) / static_cast<double>(max_len);
}

double ExactMatchSimilarity(std::string_view a, std::string_view b) {
  return a == b ? 1.0 : 0.0;
}

namespace internal {

int LevenshteinDistanceScalar(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace internal

}  // namespace fairem
