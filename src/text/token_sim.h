#ifndef FAIREM_TEXT_TOKEN_SIM_H_
#define FAIREM_TEXT_TOKEN_SIM_H_

#include <string>
#include <vector>

namespace fairem {

/// Set-based similarities over token bags. All functions treat the inputs
/// as multisets collapsed to sets (the Magellan convention for its
/// automatically generated features) and return values in [0, 1].
/// Two empty inputs are defined to have similarity 1.

/// |A ∩ B| / |A ∪ B|.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// 2|A ∩ B| / (|A| + |B|).
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// |A ∩ B| / min(|A|, |B|).
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// |A ∩ B| / sqrt(|A| * |B|)  (binary cosine).
double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

/// Raw intersection size |A ∩ B| (set semantics).
int TokenOverlapCount(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

}  // namespace fairem

#endif  // FAIREM_TEXT_TOKEN_SIM_H_
