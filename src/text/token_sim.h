#ifndef FAIREM_TEXT_TOKEN_SIM_H_
#define FAIREM_TEXT_TOKEN_SIM_H_

#include <string>
#include <vector>

namespace fairem {

/// Set-based similarities over token bags. All functions treat the inputs
/// as multisets collapsed to sets (the Magellan convention for its
/// automatically generated features) and return values in [0, 1].
/// Two empty inputs are defined to have similarity 1.

/// |A ∩ B| / |A ∪ B|.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// 2|A ∩ B| / (|A| + |B|).
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// |A ∩ B| / min(|A|, |B|).
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// |A ∩ B| / sqrt(|A| * |B|)  (binary cosine).
double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

/// Raw intersection size |A ∩ B| (set semantics).
int TokenOverlapCount(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// The exact similarity formulas above, over precomputed cardinalities.
/// Every representation of a token set (string vectors, interned u32 ids,
/// bitsets) funnels through these, which is why the interned fast paths
/// return bit-identical doubles to the string kernels: the inputs here are
/// exact integers however the intersection was counted (DESIGN.md §17).
double JaccardFromSetSizes(size_t a, size_t b, size_t intersection);
double DiceFromSetSizes(size_t a, size_t b, size_t intersection);
double OverlapFromSetSizes(size_t a, size_t b, size_t intersection);
double CosineFromSetSizes(size_t a, size_t b, size_t intersection);

}  // namespace fairem

#endif  // FAIREM_TEXT_TOKEN_SIM_H_
