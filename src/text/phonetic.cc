#include "src/text/phonetic.h"

#include <cctype>

namespace fairem {
namespace {

// Soundex digit for an upper-case letter; 0 means "not coded" (vowels and
// h/w/y).
char SoundexDigit(char c) {
  switch (c) {
    case 'B':
    case 'F':
    case 'P':
    case 'V':
      return '1';
    case 'C':
    case 'G':
    case 'J':
    case 'K':
    case 'Q':
    case 'S':
    case 'X':
    case 'Z':
      return '2';
    case 'D':
    case 'T':
      return '3';
    case 'L':
      return '4';
    case 'M':
    case 'N':
      return '5';
    case 'R':
      return '6';
    default:
      return '0';
  }
}

}  // namespace

std::string Soundex(std::string_view word) {
  std::string letters;
  for (char c : word) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      letters.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  if (letters.empty()) return "";
  std::string code(1, letters[0]);
  char prev_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    char c = letters[i];
    char digit = SoundexDigit(c);
    // h and w are transparent: they do not reset the previous digit.
    if (c == 'H' || c == 'W') continue;
    if (digit != '0' && digit != prev_digit) code.push_back(digit);
    prev_digit = digit;
  }
  while (code.size() < 4) code.push_back('0');
  return code;
}

double SoundexSimilarity(std::string_view a, std::string_view b) {
  std::string ca = Soundex(a);
  std::string cb = Soundex(b);
  if (ca.empty() || cb.empty()) return 0.0;
  return ca == cb ? 1.0 : 0.0;
}

}  // namespace fairem
