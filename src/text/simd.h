#ifndef FAIREM_TEXT_SIMD_H_
#define FAIREM_TEXT_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace fairem {

/// Which kernel tier the pairwise similarity hot path runs on. Detected
/// once per process (DESIGN.md §17); every tier produces bit-identical
/// similarity doubles, so the choice is purely about speed.
///
///  - kScalar:   the pre-vectorization reference kernels (two-row DP
///               Levenshtein, per-pair string-set merges, no token
///               interning). Forced by FAIREM_SIMD=off.
///  - kPortable: bit-parallel Myers + interned-u32/bitset set merges in
///               plain C++ (std::popcount, no intrinsics). Always compiled.
///  - kSse42 / kAvx2: the portable algorithms with x86 vector inner loops
///               for the skewed set-merge scan, selected via cpuid.
///  - kNeon:     aarch64 builds; currently runs the portable kernels (the
///               bit-parallel core is already 64-bit ALU work).
enum class SimdLevel : int {
  kScalar = 0,
  kPortable = 1,
  kSse42 = 2,
  kAvx2 = 3,
  kNeon = 4,
};

/// Short stable name for logs/metrics: "scalar", "portable", "sse4.2",
/// "avx2", "neon".
const char* SimdLevelName(SimdLevel level);

/// The tier the hot kernels dispatch to. First call detects CPU features
/// and honors FAIREM_SIMD=off (also "0"/"scalar"/"false"); later calls are
/// a relaxed atomic load. Exposed as the fairem.simd.dispatch_level gauge.
SimdLevel ActiveSimdLevel();

/// What the hardware supports, ignoring FAIREM_SIMD and any test override.
/// Tests iterate levels <= this to run every reachable variant in-process.
SimdLevel DetectedSimdLevel();

/// |A ∩ B| of two sorted-unique u32 id sets. Dispatches on
/// ActiveSimdLevel(): two-pointer merge for balanced sizes, galloping for
/// skewed ones, and an SSE4.2/AVX2 broadcast-compare block scan when
/// available. Exact for every input; counted in fairem.simd.kernel_calls.
size_t IntersectSortedU32Count(const uint32_t* a, size_t a_size,
                               const uint32_t* b, size_t b_size);

/// popcount(A & B) over the first `words` 64-bit words of two bitsets.
/// Callers pass words = min(|a|, |b|) when the two sides were built at
/// different universe sizes — sound because ids are dense from 0, so the
/// shorter side has no bits beyond its own length.
size_t BitsetIntersectCount(const uint64_t* a, const uint64_t* b,
                            size_t words);

/// Batched telemetry: the per-pair kernels tally into thread-local counts
/// and fold into the global registry every few thousand events, so the hot
/// loop never contends on an atomic. FlushSimdTelemetry() drains the
/// calling thread's tally immediately — hooked into FlushObsOutputs and the
/// worker telemetry-delta path so snapshots are complete.
void CountSimdKernelCalls(uint64_t n = 1);
void CountScratchReuses(uint64_t n = 1);
void FlushSimdTelemetry();

namespace internal {

/// Overrides ActiveSimdLevel() for differential tests ("run this exact
/// input through every tier"). Levels above DetectedSimdLevel() would
/// dispatch to instructions the host lacks; tests must not force them.
/// Not for production use — the override is process-wide.
void ForceSimdLevelForTest(SimdLevel level);

/// Drops the test override and re-detects from cpuid + FAIREM_SIMD.
void ClearForcedSimdLevelForTest();

/// The reference two-pointer merge, reachable directly so differential
/// tests can compare the dispatched kernels against it at any level.
size_t IntersectSortedU32CountScalar(const uint32_t* a, size_t a_size,
                                     const uint32_t* b, size_t b_size);

}  // namespace internal

}  // namespace fairem

#endif  // FAIREM_TEXT_SIMD_H_
