#ifndef FAIREM_TEXT_SIMILARITY_H_
#define FAIREM_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>

#include "src/util/result.h"

namespace fairem {

/// The catalogue of similarity measures usable in rule predicates and
/// automatic feature generation (the measures named in §4.1 of the paper
/// plus the usual Magellan set).
enum class SimilarityMeasure {
  kExactMatch,
  kLevenshtein,
  kDamerauLevenshtein,
  kHamming,
  kJaro,
  kJaroWinkler,
  kNeedlemanWunsch,
  kSmithWaterman,
  kPrefix,
  kJaccardWord,     // Jaccard over alnum word tokens
  kJaccardQgram3,   // Jaccard over padded 3-grams
  kDiceWord,
  kDiceQgram3,
  kOverlapWord,
  kCosineWord,      // binary cosine over word tokens
  kMongeElkanJaro,  // Monge-Elkan with Jaro inner similarity
  kSoundex,
  kNumericAbsDiff,  // 1 - |a-b| / max(|a|,|b|,1); 0 if either not numeric
  kAbbrevName,      // initials-aware person-name similarity
  kTokenSortRatio,  // Levenshtein over token-sorted strings
  kAffineGap,       // local alignment with affine gap penalties
};

/// Short stable name, e.g. "jaro_winkler".
const char* SimilarityMeasureName(SimilarityMeasure m);

/// Parses a name produced by SimilarityMeasureName.
Result<SimilarityMeasure> ParseSimilarityMeasure(std::string_view name);

/// Computes `m` between two attribute values; all results are in [0, 1].
double ComputeSimilarity(SimilarityMeasure m, std::string_view a,
                         std::string_view b);

/// All measures, for iteration in tests and tools.
inline constexpr SimilarityMeasure kAllSimilarityMeasures[] = {
    SimilarityMeasure::kExactMatch,     SimilarityMeasure::kLevenshtein,
    SimilarityMeasure::kDamerauLevenshtein, SimilarityMeasure::kHamming,
    SimilarityMeasure::kJaro,           SimilarityMeasure::kJaroWinkler,
    SimilarityMeasure::kNeedlemanWunsch, SimilarityMeasure::kSmithWaterman,
    SimilarityMeasure::kPrefix,         SimilarityMeasure::kJaccardWord,
    SimilarityMeasure::kJaccardQgram3,  SimilarityMeasure::kDiceWord,
    SimilarityMeasure::kDiceQgram3,     SimilarityMeasure::kOverlapWord,
    SimilarityMeasure::kCosineWord,     SimilarityMeasure::kMongeElkanJaro,
    SimilarityMeasure::kSoundex,        SimilarityMeasure::kNumericAbsDiff,
    SimilarityMeasure::kAbbrevName,     SimilarityMeasure::kTokenSortRatio,
    SimilarityMeasure::kAffineGap,
};

}  // namespace fairem

#endif  // FAIREM_TEXT_SIMILARITY_H_
