#include "src/text/kernel_scratch.h"

#include "src/text/simd.h"
#include "src/util/logging.h"

namespace fairem {

PeqTable::PeqTable(KernelScratch* owner, size_t blocks)
    : owner_(owner), blocks_(blocks) {
  FAIREM_CHECK(!owner_->peq_borrowed_,
               "KernelScratch: nested PeqTable borrow on one thread");
  owner_->peq_borrowed_ = true;
  const size_t need = 256 * blocks;
  // resize() zero-fills new space and the release path re-zeroes touched
  // rows, so the table is all-zero here by invariant.
  const bool grew = owner_->peq_.size() < need;
  if (grew) owner_->peq_.resize(need);
  owner_->NoteBorrow(grew);
  owner_->peq_touched_.clear();
  data_ = owner_->peq_.data();
}

PeqTable::~PeqTable() {
  for (unsigned char c : owner_->peq_touched_) {
    uint64_t* row = data_ + static_cast<size_t>(c) * blocks_;
    for (size_t b = 0; b < blocks_; ++b) row[b] = 0;
    owner_->peq_touched_flag_[c] = 0;
  }
  owner_->peq_touched_.clear();
  owner_->peq_borrowed_ = false;
}

void PeqTable::Set(unsigned char c, size_t block, uint64_t bits) {
  if (!owner_->peq_touched_flag_[c]) {
    owner_->peq_touched_flag_[c] = 1;
    owner_->peq_touched_.push_back(c);
  }
  data_[static_cast<size_t>(c) * blocks_ + block] |= bits;
}

KernelScratch& KernelScratch::Get() {
  thread_local KernelScratch scratch;
  return scratch;
}

void KernelScratch::NoteBorrow(bool grew) {
  if (!grew) CountScratchReuses();
}

std::vector<int>& KernelScratch::IntRow(size_t slot, size_t n) {
  std::vector<int>& row = int_rows_[slot];
  const bool grew = row.size() < n;
  if (grew) row.resize(n);
  NoteBorrow(grew);
  return row;
}

std::vector<uint8_t>& KernelScratch::ByteRow(size_t slot, size_t n) {
  std::vector<uint8_t>& row = byte_rows_[slot];
  const bool grew = row.size() < n;
  if (grew) row.resize(n);
  NoteBorrow(grew);
  return row;
}

std::vector<double>& KernelScratch::DoubleBuf(size_t n) {
  const bool grew = double_buf_.size() < n;
  if (grew) double_buf_.resize(n);
  NoteBorrow(grew);
  return double_buf_;
}

std::vector<uint64_t>& KernelScratch::U64Buf(size_t slot, size_t n) {
  std::vector<uint64_t>& buf = u64_bufs_[slot];
  const bool grew = buf.size() < n;
  if (grew) buf.resize(n);
  NoteBorrow(grew);
  return buf;
}

PeqTable KernelScratch::BorrowPeq(size_t blocks) {
  return PeqTable(this, blocks);
}

}  // namespace fairem
