#include "src/text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/text/simd.h"
#include "src/util/logging.h"

namespace fairem {

void TfIdfVectorizer::Fit(
    const std::vector<std::vector<std::string>>& corpus) {
  vocab_.clear();
  std::vector<int> df;
  for (const auto& doc : corpus) {
    std::unordered_set<std::string> seen;
    for (const auto& tok : doc) {
      if (!seen.insert(tok).second) continue;
      auto [it, inserted] = vocab_.emplace(tok, static_cast<int>(df.size()));
      if (inserted) {
        df.push_back(1);
      } else {
        ++df[static_cast<size_t>(it->second)];
      }
    }
  }
  const double n = static_cast<double>(corpus.size());
  idf_.resize(df.size());
  for (size_t i = 0; i < df.size(); ++i) {
    idf_[i] = std::log((1.0 + n) / (1.0 + df[i])) + 1.0;
  }
  fitted_ = true;
}

SparseVector TfIdfVectorizer::Transform(
    const std::vector<std::string>& tokens) const {
  FAIREM_CHECK(fitted_, "TfIdfVectorizer::Transform before Fit");
  SparseVector vec;
  for (const auto& tok : tokens) {
    auto it = vocab_.find(tok);
    if (it == vocab_.end()) continue;
    vec[it->second] += idf_[static_cast<size_t>(it->second)];
  }
  double norm_sq = 0.0;
  for (const auto& [id, w] : vec) norm_sq += w * w;
  if (norm_sq > 0.0) {
    double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& [id, w] : vec) w *= inv;
  }
  return vec;
}

SortedSparseVector TfIdfVectorizer::TransformSorted(
    const std::vector<std::string>& tokens) const {
  FAIREM_CHECK(fitted_, "TfIdfVectorizer::TransformSorted before Fit");
  // (id, idf) per in-vocabulary occurrence; duplicates collapse below with
  // the same repeated additions the map-based Transform performs, so the
  // weights agree bit for bit.
  std::vector<std::pair<uint32_t, double>> entries;
  entries.reserve(tokens.size());
  for (const auto& tok : tokens) {
    auto it = vocab_.find(tok);
    if (it == vocab_.end()) continue;
    entries.emplace_back(static_cast<uint32_t>(it->second),
                         idf_[static_cast<size_t>(it->second)]);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  SortedSparseVector vec;
  vec.ids.reserve(entries.size());
  vec.weights.reserve(entries.size());
  for (size_t i = 0; i < entries.size();) {
    const uint32_t id = entries[i].first;
    double w = 0.0;
    for (; i < entries.size() && entries[i].first == id; ++i) {
      w += entries[i].second;
    }
    vec.ids.push_back(id);
    vec.weights.push_back(w);
  }
  double norm_sq = 0.0;
  for (double w : vec.weights) norm_sq += w * w;
  if (norm_sq > 0.0) {
    double inv = 1.0 / std::sqrt(norm_sq);
    for (double& w : vec.weights) w *= inv;
  }
  return vec;
}

double TfIdfVectorizer::Cosine(const SparseVector& a, const SparseVector& b) {
  if (a.empty() || b.empty()) return 0.0;
  const SparseVector& small = a.size() <= b.size() ? a : b;
  const SparseVector& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [id, w] : small) {
    auto it = large.find(id);
    if (it != large.end()) dot += w * it->second;
  }
  return dot;
}

double TfIdfVectorizer::CosineSorted(const SortedSparseVector& a,
                                     const SortedSparseVector& b) {
  if (a.ids.empty() || b.ids.empty()) return 0.0;
  CountSimdKernelCalls();
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.ids.size() && j < b.ids.size()) {
    const uint32_t x = a.ids[i];
    const uint32_t y = b.ids[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      dot += a.weights[i] * b.weights[j];
      ++i;
      ++j;
    }
  }
  return dot;
}

double TfIdfVectorizer::Similarity(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b) const {
  return CosineSorted(TransformSorted(a), TransformSorted(b));
}

double TfIdfVectorizer::Idf(const std::string& token) const {
  auto it = vocab_.find(token);
  if (it == vocab_.end()) return 0.0;
  return idf_[static_cast<size_t>(it->second)];
}

}  // namespace fairem
