#include "src/text/similarity.h"

#include <algorithm>
#include <cmath>

#include "src/text/edit_distance.h"
#include "src/text/hybrid_sim.h"
#include "src/text/name_sim.h"
#include "src/text/phonetic.h"
#include "src/text/token_sim.h"
#include "src/text/tokenize.h"
#include "src/util/string_util.h"

namespace fairem {

const char* SimilarityMeasureName(SimilarityMeasure m) {
  switch (m) {
    case SimilarityMeasure::kExactMatch:
      return "exact_match";
    case SimilarityMeasure::kLevenshtein:
      return "levenshtein";
    case SimilarityMeasure::kDamerauLevenshtein:
      return "damerau_levenshtein";
    case SimilarityMeasure::kHamming:
      return "hamming";
    case SimilarityMeasure::kJaro:
      return "jaro";
    case SimilarityMeasure::kJaroWinkler:
      return "jaro_winkler";
    case SimilarityMeasure::kNeedlemanWunsch:
      return "needleman_wunsch";
    case SimilarityMeasure::kSmithWaterman:
      return "smith_waterman";
    case SimilarityMeasure::kPrefix:
      return "prefix";
    case SimilarityMeasure::kJaccardWord:
      return "jaccard_word";
    case SimilarityMeasure::kJaccardQgram3:
      return "jaccard_qgram3";
    case SimilarityMeasure::kDiceWord:
      return "dice_word";
    case SimilarityMeasure::kDiceQgram3:
      return "dice_qgram3";
    case SimilarityMeasure::kOverlapWord:
      return "overlap_word";
    case SimilarityMeasure::kCosineWord:
      return "cosine_word";
    case SimilarityMeasure::kMongeElkanJaro:
      return "monge_elkan_jaro";
    case SimilarityMeasure::kSoundex:
      return "soundex";
    case SimilarityMeasure::kNumericAbsDiff:
      return "numeric_abs_diff";
    case SimilarityMeasure::kAbbrevName:
      return "abbrev_name";
    case SimilarityMeasure::kTokenSortRatio:
      return "token_sort_ratio";
    case SimilarityMeasure::kAffineGap:
      return "affine_gap";
  }
  return "unknown";
}

Result<SimilarityMeasure> ParseSimilarityMeasure(std::string_view name) {
  for (SimilarityMeasure m : kAllSimilarityMeasures) {
    if (name == SimilarityMeasureName(m)) return m;
  }
  return Status::NotFound("unknown similarity measure: " + std::string(name));
}

double ComputeSimilarity(SimilarityMeasure m, std::string_view a,
                         std::string_view b) {
  switch (m) {
    case SimilarityMeasure::kExactMatch:
      return ExactMatchSimilarity(a, b);
    case SimilarityMeasure::kLevenshtein:
      return LevenshteinSimilarity(a, b);
    case SimilarityMeasure::kDamerauLevenshtein: {
      size_t max_len = std::max(a.size(), b.size());
      if (max_len == 0) return 1.0;
      return 1.0 - static_cast<double>(DamerauLevenshteinDistance(a, b)) /
                       static_cast<double>(max_len);
    }
    case SimilarityMeasure::kHamming:
      return HammingSimilarity(a, b);
    case SimilarityMeasure::kJaro:
      return JaroSimilarity(a, b);
    case SimilarityMeasure::kJaroWinkler:
      return JaroWinklerSimilarity(a, b);
    case SimilarityMeasure::kNeedlemanWunsch:
      return NeedlemanWunschSimilarity(a, b);
    case SimilarityMeasure::kSmithWaterman:
      return SmithWatermanSimilarity(a, b);
    case SimilarityMeasure::kPrefix:
      return PrefixSimilarity(a, b);
    case SimilarityMeasure::kJaccardWord:
      return JaccardSimilarity(AlnumTokenize(a), AlnumTokenize(b));
    case SimilarityMeasure::kJaccardQgram3:
      return JaccardSimilarity(QGrams(a, 3), QGrams(b, 3));
    case SimilarityMeasure::kDiceWord:
      return DiceSimilarity(AlnumTokenize(a), AlnumTokenize(b));
    case SimilarityMeasure::kDiceQgram3:
      return DiceSimilarity(QGrams(a, 3), QGrams(b, 3));
    case SimilarityMeasure::kOverlapWord:
      return OverlapCoefficient(AlnumTokenize(a), AlnumTokenize(b));
    case SimilarityMeasure::kCosineWord:
      return CosineTokenSimilarity(AlnumTokenize(a), AlnumTokenize(b));
    case SimilarityMeasure::kMongeElkanJaro:
      return SymmetricMongeElkan(AlnumTokenize(a), AlnumTokenize(b),
                                 &JaroSimilarity);
    case SimilarityMeasure::kSoundex:
      return SoundexSimilarity(a, b);
    case SimilarityMeasure::kNumericAbsDiff: {
      double va = 0.0;
      double vb = 0.0;
      if (!ParseDouble(a, &va) || !ParseDouble(b, &vb)) return 0.0;
      double denom = std::max({std::fabs(va), std::fabs(vb), 1.0});
      return std::clamp(1.0 - std::fabs(va - vb) / denom, 0.0, 1.0);
    }
    case SimilarityMeasure::kAbbrevName:
      return AbbreviationAwareNameSimilarity(a, b);
    case SimilarityMeasure::kTokenSortRatio:
      return TokenSortRatio(a, b);
    case SimilarityMeasure::kAffineGap:
      return AffineGapSimilarity(a, b);
  }
  return 0.0;
}

}  // namespace fairem
