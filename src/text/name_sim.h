#ifndef FAIREM_TEXT_NAME_SIM_H_
#define FAIREM_TEXT_NAME_SIM_H_

#include <string>
#include <string_view>
#include <vector>

namespace fairem {

/// Person-name similarity that understands initials: "M. Dhoni" matches
/// "Mahendra Dhoni" strongly because "m" is a valid abbreviation of
/// "mahendra". Tokens are greedily aligned best-first; an initial scores
/// `initial_credit` against any token it abbreviates, full tokens score
/// their Jaro-Winkler similarity. Returns 1 for two empty names, 0 when
/// exactly one is empty.
double AbbreviationAwareNameSimilarity(std::string_view a, std::string_view b,
                                       double initial_credit = 0.85);

/// Levenshtein similarity of the alphabetically token-sorted strings —
/// insensitive to word order ("huang qingming" vs "qingming huang" -> 1).
double TokenSortRatio(std::string_view a, std::string_view b);

/// Smith-Waterman-style alignment with affine gap penalties (open/extend),
/// match +2, mismatch -1; normalized by 2 * min(|a|, |b|). Affine gaps make
/// a single long insertion ("Cyber-shot " prefix) cheaper than many
/// scattered edits — the measure of choice for truncated product names.
double AffineGapSimilarity(std::string_view a, std::string_view b,
                           double gap_open = 1.5, double gap_extend = 0.3);

}  // namespace fairem

#endif  // FAIREM_TEXT_NAME_SIM_H_
