#include "src/text/name_sim.h"

#include <algorithm>

#include "src/text/edit_distance.h"
#include "src/text/tokenize.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

/// Similarity of two name tokens: initial-vs-word abbreviation credit, or
/// plain Jaro-Winkler.
double NameTokenSimilarity(const std::string& a, const std::string& b,
                           double initial_credit) {
  const std::string& shorter = a.size() <= b.size() ? a : b;
  const std::string& longer = a.size() <= b.size() ? b : a;
  if (shorter.size() == 1 && longer.size() > 1 &&
      shorter[0] == longer[0]) {
    return initial_credit;
  }
  return JaroWinklerSimilarity(a, b);
}

}  // namespace

double AbbreviationAwareNameSimilarity(std::string_view a, std::string_view b,
                                       double initial_credit) {
  std::vector<std::string> ta = AlnumTokenize(a);
  std::vector<std::string> tb = AlnumTokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  // Greedy best-first alignment without replacement.
  struct Cand {
    double sim;
    size_t i;
    size_t j;
  };
  std::vector<Cand> cands;
  for (size_t i = 0; i < ta.size(); ++i) {
    for (size_t j = 0; j < tb.size(); ++j) {
      cands.push_back({NameTokenSimilarity(ta[i], tb[j], initial_credit), i,
                       j});
    }
  }
  // Tie-break on (min index, max index) so the alignment — and thus the
  // score — is identical when the arguments swap.
  std::sort(cands.begin(), cands.end(), [](const Cand& x, const Cand& y) {
    if (x.sim != y.sim) return x.sim > y.sim;
    auto kx = std::minmax(x.i, x.j);
    auto ky = std::minmax(y.i, y.j);
    return kx < ky;
  });
  std::vector<bool> used_a(ta.size(), false);
  std::vector<bool> used_b(tb.size(), false);
  double total = 0.0;
  size_t aligned = 0;
  for (const Cand& c : cands) {
    if (used_a[c.i] || used_b[c.j]) continue;
    used_a[c.i] = true;
    used_b[c.j] = true;
    total += c.sim;
    ++aligned;
    if (aligned == std::min(ta.size(), tb.size())) break;
  }
  // Unaligned tokens (name-length mismatch) dilute the score.
  return total / static_cast<double>(std::max(ta.size(), tb.size()));
}

double TokenSortRatio(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = AlnumTokenize(a);
  std::vector<std::string> tb = AlnumTokenize(b);
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  return LevenshteinSimilarity(Join(ta, " "), Join(tb, " "));
}

double AffineGapSimilarity(std::string_view a, std::string_view b,
                           double gap_open, double gap_extend) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  constexpr double kMatch = 2.0;
  constexpr double kMismatch = -1.0;
  constexpr double kNegInf = -1e18;
  // Gotoh's algorithm (local variant): M = match/mismatch ending, X/Y =
  // gap-in-a / gap-in-b ending.
  std::vector<double> m_prev(m + 1, 0.0);
  std::vector<double> x_prev(m + 1, kNegInf);
  std::vector<double> y_prev(m + 1, kNegInf);
  std::vector<double> m_cur(m + 1);
  std::vector<double> x_cur(m + 1);
  std::vector<double> y_cur(m + 1);
  double best = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    m_cur[0] = 0.0;
    x_cur[0] = kNegInf;
    y_cur[0] = kNegInf;
    for (size_t j = 1; j <= m; ++j) {
      double sub = a[i - 1] == b[j - 1] ? kMatch : kMismatch;
      double diag =
          std::max({m_prev[j - 1], x_prev[j - 1], y_prev[j - 1], 0.0});
      m_cur[j] = diag + sub;
      x_cur[j] = std::max(m_prev[j] - gap_open, x_prev[j] - gap_extend);
      y_cur[j] = std::max(m_cur[j - 1] - gap_open, y_cur[j - 1] - gap_extend);
      best = std::max({best, m_cur[j], x_cur[j], y_cur[j]});
    }
    std::swap(m_prev, m_cur);
    std::swap(x_prev, x_cur);
    std::swap(y_prev, y_cur);
  }
  double denom = kMatch * static_cast<double>(std::min(n, m));
  return std::clamp(best / denom, 0.0, 1.0);
}

}  // namespace fairem
