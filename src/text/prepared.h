#ifndef FAIREM_TEXT_PREPARED_H_
#define FAIREM_TEXT_PREPARED_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/data/table.h"
#include "src/text/similarity.h"

namespace fairem {

/// Which derived representations a PreparedValue carries. Feature
/// extraction derives the needed set from the similarity measures used on
/// a column, so a numeric column never pays for q-gram sets and a long-text
/// column never pays for a numeric parse.
struct PreparedNeeds {
  bool word_tokens = false;   // AlnumTokenize (order + duplicates preserved)
  bool word_set = false;      // sorted-unique word tokens
  bool qgram_set = false;     // sorted-unique padded 3-grams
  bool numeric = false;       // ParseDouble result
  bool token_sorted = false;  // " "-joined sorted tokens (TokenSortRatio)

  void MergeFrom(const PreparedNeeds& other) {
    word_tokens |= other.word_tokens;
    word_set |= other.word_set;
    qgram_set |= other.qgram_set;
    numeric |= other.numeric;
    token_sorted |= other.token_sorted;
  }
};

/// The representations PairSimilarity(measure) needs for one measure.
/// Measures not listed here (pure character-level ones) need only `raw`.
PreparedNeeds NeedsForMeasure(SimilarityMeasure m);

/// One record's cell, tokenized/normalized exactly once. The pairwise
/// kernels that used to call AlnumTokenize / QGrams / ParseDouble per pair
/// read these instead, which turns the O(pairs) re-derivation of the hot
/// matcher path into O(records).
struct PreparedValue {
  std::string_view raw;  // view into the owning Table's cell storage
  bool is_null = true;

  std::vector<std::string> word_tokens;
  std::vector<std::string> word_set;   // sorted unique word tokens
  std::vector<std::string> qgram_set;  // sorted unique padded 3-grams
  std::string token_sorted;

  double numeric_value = 0.0;
  bool is_numeric = false;
};

/// Builds the prepared form of one cell. `raw` must outlive the result.
PreparedValue PrepareValue(std::string_view raw, bool is_null,
                           const PreparedNeeds& needs);

/// ComputeSimilarity over prepared views: byte-identical doubles to
/// ComputeSimilarity(m, a.raw, b.raw) — token measures compute the same
/// set sizes from the sorted-unique vectors the unordered_set path would
/// build, everything else falls through to the raw kernels. Null handling
/// stays with the caller (the feature path maps null to 0 before here).
double ComputeSimilarity(SimilarityMeasure m, const PreparedValue& a,
                         const PreparedValue& b);

/// A per-(table, column) cache of PreparedValue, built once per
/// BuildFeatureTable / batch-predict call for exactly the rows a pair list
/// references. BuildRows chunks the row list over the global thread pool
/// (disjoint slots, deterministic); afterwards Get is const and safe from
/// any thread.
///
/// Counters: `fairem.prepared.builds` counts cells prepared,
/// `fairem.prepared.cache_hits` counts pair-side lookups served from the
/// cache (every hit is a tokenization/parse the old path re-ran).
class PreparedColumn {
 public:
  PreparedColumn() = default;

  /// Prepares `rows` (deduplicated indices into `table`) for column `col`.
  /// Unreferenced rows stay unprepared and must not be fetched.
  void BuildRows(const Table& table, size_t col,
                 const std::vector<size_t>& rows, const PreparedNeeds& needs);

  /// The prepared cell for a row passed to BuildRows.
  const PreparedValue& Get(size_t row) const { return values_[row]; }

 private:
  std::vector<PreparedValue> values_;
};

/// Bumps fairem.prepared.cache_hits by `n` (batched by chunk in the hot
/// loop so the atomic is not contended per pair).
void AddPreparedCacheHits(uint64_t n);

}  // namespace fairem

#endif  // FAIREM_TEXT_PREPARED_H_
