#ifndef FAIREM_TEXT_PREPARED_H_
#define FAIREM_TEXT_PREPARED_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/data/table.h"
#include "src/text/similarity.h"

namespace fairem {

/// Which derived representations a PreparedValue carries. Feature
/// extraction derives the needed set from the similarity measures used on
/// a column, so a numeric column never pays for q-gram sets and a long-text
/// column never pays for a numeric parse.
struct PreparedNeeds {
  bool word_tokens = false;   // AlnumTokenize (order + duplicates preserved)
  bool word_set = false;      // sorted-unique word tokens
  bool qgram_set = false;     // sorted-unique padded 3-grams
  bool numeric = false;       // ParseDouble result
  bool token_sorted = false;  // " "-joined sorted tokens (TokenSortRatio)

  void MergeFrom(const PreparedNeeds& other) {
    word_tokens |= other.word_tokens;
    word_set |= other.word_set;
    qgram_set |= other.qgram_set;
    numeric |= other.numeric;
    token_sorted |= other.token_sorted;
  }
};

/// The representations PairSimilarity(measure) needs for one measure.
/// Measures not listed here (pure character-level ones) need only `raw`.
PreparedNeeds NeedsForMeasure(SimilarityMeasure m);

/// One record's cell, tokenized/normalized exactly once. The pairwise
/// kernels that used to call AlnumTokenize / QGrams / ParseDouble per pair
/// read these instead, which turns the O(pairs) re-derivation of the hot
/// matcher path into O(records).
struct PreparedValue {
  std::string_view raw;  // view into the owning Table's cell storage
  bool is_null = true;

  std::vector<std::string> word_tokens;
  std::vector<std::string> word_set;   // sorted unique word tokens
  std::vector<std::string> qgram_set;  // sorted unique padded 3-grams
  std::string token_sorted;

  /// Interned-token fast path (DESIGN.md §17): word_set / qgram_set mapped
  /// through the column pair's TokenInterner to sorted-unique dense u32
  /// ids, so the per-pair set intersections become u32 merges instead of
  /// string comparisons. When the column's id universe is small the same
  /// sets are additionally materialized as bitsets (64 ids per word) and
  /// intersection is AND + popcount. Present only when BuildRows ran with
  /// interners on a vectorized SIMD tier; ids from different interners are
  /// not comparable.
  bool has_ids = false;
  std::vector<uint32_t> word_ids;
  std::vector<uint32_t> qgram_ids;
  std::vector<uint64_t> word_bits;
  std::vector<uint64_t> qgram_bits;

  double numeric_value = 0.0;
  bool is_numeric = false;
};

/// Maps tokens to dense uint32_t ids in first-encounter order. One
/// interner is shared by the two table sides of a column pair (the a-side
/// BuildRows interns first, then the b-side), which is what makes the ids
/// comparable across sides. Interning is sequential in row order, so the
/// id assignment — and every downstream double — is independent of
/// --intra_jobs. Not thread-safe; the builder owns it for the duration of
/// the two BuildRows calls and may drop it afterwards (ids are baked into
/// the PreparedValues).
class TokenInterner {
 public:
  /// The id of `token`, assigning the next dense id on first encounter.
  uint32_t Intern(std::string_view token);

  /// Number of distinct tokens interned so far (the id universe).
  size_t size() const { return ids_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, uint32_t, Hash, std::equal_to<>> ids_;
};

/// The word- and 3-gram-token interners of one column pair. Kept separate
/// so a column with many q-grams but few words still gets the small word
/// universe (and its bitset fast path).
struct ColumnInterners {
  TokenInterner words;
  TokenInterner qgrams;
};

/// Builds the prepared form of one cell. `raw` must outlive the result.
PreparedValue PrepareValue(std::string_view raw, bool is_null,
                           const PreparedNeeds& needs);

/// ComputeSimilarity over prepared views: byte-identical doubles to
/// ComputeSimilarity(m, a.raw, b.raw) — token measures compute the same
/// set sizes from the sorted-unique vectors the unordered_set path would
/// build, everything else falls through to the raw kernels. Null handling
/// stays with the caller (the feature path maps null to 0 before here).
double ComputeSimilarity(SimilarityMeasure m, const PreparedValue& a,
                         const PreparedValue& b);

/// A per-(table, column) cache of PreparedValue, built once per
/// BuildFeatureTable / batch-predict call for exactly the rows a pair list
/// references. BuildRows chunks the row list over the global thread pool
/// (disjoint slots, deterministic); afterwards Get is const and safe from
/// any thread.
///
/// Counters: `fairem.prepared.builds` counts cells prepared,
/// `fairem.prepared.cache_hits` counts pair-side lookups served from the
/// cache (every hit is a tokenization/parse the old path re-ran).
class PreparedColumn {
 public:
  PreparedColumn() = default;

  /// Prepares `rows` (deduplicated indices into `table`) for column `col`.
  /// Unreferenced rows stay unprepared and must not be fetched. When
  /// `interners` is non-null and the active SIMD tier is vectorized, word
  /// and q-gram sets are additionally interned to u32 id sets (and bitsets
  /// for small universes); pass the same ColumnInterners to both sides of
  /// a column pair so the ids are comparable.
  void BuildRows(const Table& table, size_t col,
                 const std::vector<size_t>& rows, const PreparedNeeds& needs,
                 ColumnInterners* interners = nullptr);

  /// The prepared cell for a row passed to BuildRows.
  const PreparedValue& Get(size_t row) const { return values_[row]; }

 private:
  std::vector<PreparedValue> values_;
};

/// Bumps fairem.prepared.cache_hits by `n` (batched by chunk in the hot
/// loop so the atomic is not contended per pair).
void AddPreparedCacheHits(uint64_t n);

}  // namespace fairem

#endif  // FAIREM_TEXT_PREPARED_H_
