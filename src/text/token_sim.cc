#include "src/text/token_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace fairem {
namespace {

std::unordered_set<std::string> ToSet(const std::vector<std::string>& v) {
  return std::unordered_set<std::string>(v.begin(), v.end());
}

struct SetSizes {
  size_t a;
  size_t b;
  size_t intersection;
};

SetSizes ComputeSizes(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  auto sa = ToSet(a);
  auto sb = ToSet(b);
  // Iterate over the smaller set.
  const auto& small = sa.size() <= sb.size() ? sa : sb;
  const auto& large = sa.size() <= sb.size() ? sb : sa;
  size_t inter = 0;
  for (const auto& t : small) {
    if (large.count(t) > 0) ++inter;
  }
  return {sa.size(), sb.size(), inter};
}

}  // namespace

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  SetSizes s = ComputeSizes(a, b);
  size_t uni = s.a + s.b - s.intersection;
  if (uni == 0) return 1.0;
  return static_cast<double>(s.intersection) / static_cast<double>(uni);
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  SetSizes s = ComputeSizes(a, b);
  if (s.a + s.b == 0) return 1.0;
  return 2.0 * static_cast<double>(s.intersection) /
         static_cast<double>(s.a + s.b);
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  SetSizes s = ComputeSizes(a, b);
  size_t min_size = std::min(s.a, s.b);
  if (min_size == 0) return s.a == s.b ? 1.0 : 0.0;
  return static_cast<double>(s.intersection) / static_cast<double>(min_size);
}

double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  SetSizes s = ComputeSizes(a, b);
  if (s.a == 0 && s.b == 0) return 1.0;
  if (s.a == 0 || s.b == 0) return 0.0;
  return static_cast<double>(s.intersection) /
         std::sqrt(static_cast<double>(s.a) * static_cast<double>(s.b));
}

int TokenOverlapCount(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  return static_cast<int>(ComputeSizes(a, b).intersection);
}

}  // namespace fairem
