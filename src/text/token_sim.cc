#include "src/text/token_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace fairem {
namespace {

std::unordered_set<std::string> ToSet(const std::vector<std::string>& v) {
  return std::unordered_set<std::string>(v.begin(), v.end());
}

struct SetSizes {
  size_t a;
  size_t b;
  size_t intersection;
};

SetSizes ComputeSizes(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  auto sa = ToSet(a);
  auto sb = ToSet(b);
  // Iterate over the smaller set.
  const auto& small = sa.size() <= sb.size() ? sa : sb;
  const auto& large = sa.size() <= sb.size() ? sb : sa;
  size_t inter = 0;
  for (const auto& t : small) {
    if (large.count(t) > 0) ++inter;
  }
  return {sa.size(), sb.size(), inter};
}

}  // namespace

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  SetSizes s = ComputeSizes(a, b);
  return JaccardFromSetSizes(s.a, s.b, s.intersection);
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  SetSizes s = ComputeSizes(a, b);
  return DiceFromSetSizes(s.a, s.b, s.intersection);
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  SetSizes s = ComputeSizes(a, b);
  return OverlapFromSetSizes(s.a, s.b, s.intersection);
}

double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  SetSizes s = ComputeSizes(a, b);
  return CosineFromSetSizes(s.a, s.b, s.intersection);
}

int TokenOverlapCount(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  return static_cast<int>(ComputeSizes(a, b).intersection);
}

double JaccardFromSetSizes(size_t a, size_t b, size_t intersection) {
  size_t uni = a + b - intersection;
  if (uni == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double DiceFromSetSizes(size_t a, size_t b, size_t intersection) {
  if (a + b == 0) return 1.0;
  return 2.0 * static_cast<double>(intersection) / static_cast<double>(a + b);
}

double OverlapFromSetSizes(size_t a, size_t b, size_t intersection) {
  size_t min_size = std::min(a, b);
  if (min_size == 0) return a == b ? 1.0 : 0.0;
  return static_cast<double>(intersection) / static_cast<double>(min_size);
}

double CosineFromSetSizes(size_t a, size_t b, size_t intersection) {
  if (a == 0 && b == 0) return 1.0;
  if (a == 0 || b == 0) return 0.0;
  return static_cast<double>(intersection) /
         std::sqrt(static_cast<double>(a) * static_cast<double>(b));
}

}  // namespace fairem
