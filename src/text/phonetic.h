#ifndef FAIREM_TEXT_PHONETIC_H_
#define FAIREM_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace fairem {

/// American Soundex code of `word` (e.g. "Robert" -> "R163"). Non-letters
/// are skipped; an empty or letterless input yields "".
std::string Soundex(std::string_view word);

/// 1.0 if the Soundex codes of `a` and `b` match and are non-empty, else 0.
double SoundexSimilarity(std::string_view a, std::string_view b);

}  // namespace fairem

#endif  // FAIREM_TEXT_PHONETIC_H_
