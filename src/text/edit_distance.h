#ifndef FAIREM_TEXT_EDIT_DISTANCE_H_
#define FAIREM_TEXT_EDIT_DISTANCE_H_

#include <string_view>

namespace fairem {

/// Classic Levenshtein edit distance (insert/delete/substitute, unit costs).
/// Runs the bit-parallel Myers kernel (single 64-bit word when the shorter
/// string fits, blocked otherwise) on the active SIMD tier and the two-row
/// DP reference under FAIREM_SIMD=off; both return the same integer for
/// every input (DESIGN.md §17).
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Levenshtein similarity normalized to [0, 1]:
/// 1 - dist / max(|a|, |b|); 1.0 when both strings are empty.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Banded Levenshtein: the exact distance when it is <= bound, else
/// bound + 1. Only the 2*bound+1 diagonal band is evaluated, with an
/// early exit the moment a whole band row exceeds the bound — the right
/// kernel for "within k edits?" predicates (deduplication, blocking)
/// where the full distance is wasted work. bound < 0 is treated as 0.
int LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                               int bound);

/// LevenshteinDistance(a, b) <= bound, via the banded kernel.
bool LevenshteinWithin(std::string_view a, std::string_view b, int bound);

/// Damerau-Levenshtein (restricted: adjacent transpositions count as one
/// edit).
int DamerauLevenshteinDistance(std::string_view a, std::string_view b);

/// Hamming distance. When lengths differ, the length difference is added to
/// the count of mismatching positions in the common prefix (a common EM
/// convention that keeps the measure total).
int HammingDistance(std::string_view a, std::string_view b);

/// Hamming similarity in [0, 1]: 1 - dist / max(|a|, |b|).
double HammingSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1] with standard prefix scaling
/// (p = 0.1, prefix capped at 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Needleman-Wunsch global alignment score normalized to [0, 1]
/// (match = +1, mismatch/gap = -1; score scaled by max length).
double NeedlemanWunschSimilarity(std::string_view a, std::string_view b);

/// Smith-Waterman local alignment score normalized to [0, 1]
/// (match = +2, mismatch = -1, gap = -1; score scaled by 2 * min length).
double SmithWatermanSimilarity(std::string_view a, std::string_view b);

/// Longest common prefix length divided by max length; 1.0 for two empty
/// strings.
double PrefixSimilarity(std::string_view a, std::string_view b);

/// Exact equality as a 0/1 similarity.
double ExactMatchSimilarity(std::string_view a, std::string_view b);

namespace internal {

/// The pre-vectorization two-row DP — the FAIREM_SIMD=off production path
/// and the reference the differential fuzz tests compare every dispatched
/// tier against.
int LevenshteinDistanceScalar(std::string_view a, std::string_view b);

}  // namespace internal

}  // namespace fairem

#endif  // FAIREM_TEXT_EDIT_DISTANCE_H_
