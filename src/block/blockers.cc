#include "src/block/blockers.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_map>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/text/token_sim.h"
#include "src/text/tokenize.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

/// One candidate counter shared by every blocker ("how much work did
/// blocking hand downstream"), plus a per-run count of Block() calls.
void CountCandidates(size_t n) {
  static Counter* candidates =
      MetricsRegistry::Global().GetCounter("fairem.block.candidates");
  static Counter* calls =
      MetricsRegistry::Global().GetCounter("fairem.block.calls");
  candidates->Increment(n);
  calls->Increment();
}

void SortAndDedup(std::vector<CandidatePair>* pairs) {
  std::sort(pairs->begin(), pairs->end(),
            [](const CandidatePair& x, const CandidatePair& y) {
              return std::tie(x.left, x.right) < std::tie(y.left, y.right);
            });
  pairs->erase(std::unique(pairs->begin(), pairs->end(),
                           [](const CandidatePair& x, const CandidatePair& y) {
                             return x.left == y.left && x.right == y.right;
                           }),
               pairs->end());
}

}  // namespace

BlockingStats EvaluateBlocking(const std::vector<CandidatePair>& candidates,
                               const std::vector<LabeledPair>& labeled,
                               size_t num_rows_a, size_t num_rows_b) {
  BlockingStats stats;
  stats.num_candidates = candidates.size();
  double total = static_cast<double>(num_rows_a) * num_rows_b;
  stats.reduction_ratio =
      total > 0.0 ? 1.0 - static_cast<double>(candidates.size()) / total : 0.0;
  std::set<std::pair<size_t, size_t>> cand_set;
  for (const auto& c : candidates) cand_set.emplace(c.left, c.right);
  size_t true_matches = 0;
  size_t retained = 0;
  for (const auto& p : labeled) {
    if (!p.is_match) continue;
    ++true_matches;
    if (cand_set.count({p.left, p.right}) > 0) ++retained;
  }
  stats.pair_completeness =
      true_matches > 0
          ? static_cast<double>(retained) / static_cast<double>(true_matches)
          : 1.0;
  static Counter* retained_counter = MetricsRegistry::Global().GetCounter(
      "fairem.block.true_matches_retained");
  static Counter* lost_counter =
      MetricsRegistry::Global().GetCounter("fairem.block.true_matches_lost");
  static Gauge* completeness_gauge =
      MetricsRegistry::Global().GetGauge("fairem.block.pair_completeness");
  static Gauge* reduction_gauge =
      MetricsRegistry::Global().GetGauge("fairem.block.reduction_ratio");
  retained_counter->Increment(retained);
  lost_counter->Increment(true_matches - retained);
  completeness_gauge->Set(stats.pair_completeness);
  reduction_gauge->Set(stats.reduction_ratio);
  FAIREM_LOG(DEBUG) << "blocking evaluated"
                    << LogKv("candidates", stats.num_candidates)
                    << LogKv("reduction_ratio",
                             FormatDouble(stats.reduction_ratio, 4))
                    << LogKv("pair_completeness",
                             FormatDouble(stats.pair_completeness, 4));
  return stats;
}

Result<std::vector<CandidatePair>> CartesianBlocker::Block(
    const Table& a, const Table& b) const {
  Span span("fairem.block.cartesian");
  std::vector<CandidatePair> pairs;
  pairs.reserve(a.num_rows() * b.num_rows());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (size_t j = 0; j < b.num_rows(); ++j) {
      pairs.push_back({i, j});
    }
  }
  CountCandidates(pairs.size());
  return pairs;
}

Result<std::vector<CandidatePair>> AttrEquivalenceBlocker::Block(
    const Table& a, const Table& b) const {
  Span span("fairem.block.attr_equivalence");
  FAIREM_ASSIGN_OR_RETURN(size_t col_a, a.schema().Index(attr_));
  FAIREM_ASSIGN_OR_RETURN(size_t col_b, b.schema().Index(attr_));
  std::unordered_map<std::string, std::vector<size_t>> index_b;
  for (size_t j = 0; j < b.num_rows(); ++j) {
    if (b.IsNull(j, col_b)) continue;
    index_b[ToLowerAscii(b.value(j, col_b))].push_back(j);
  }
  std::vector<CandidatePair> pairs;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (a.IsNull(i, col_a)) continue;
    auto it = index_b.find(ToLowerAscii(a.value(i, col_a)));
    if (it == index_b.end()) continue;
    for (size_t j : it->second) pairs.push_back({i, j});
  }
  SortAndDedup(&pairs);
  CountCandidates(pairs.size());
  return pairs;
}

Result<std::vector<CandidatePair>> OverlapBlocker::Block(
    const Table& a, const Table& b) const {
  Span span("fairem.block.overlap");
  if (min_overlap_ < 1) {
    return Status::InvalidArgument("min_overlap must be >= 1");
  }
  FAIREM_ASSIGN_OR_RETURN(size_t col_a, a.schema().Index(attr_));
  FAIREM_ASSIGN_OR_RETURN(size_t col_b, b.schema().Index(attr_));
  auto tokens_of = [&](const Table& t, size_t row,
                       size_t col) -> std::vector<std::string> {
    if (t.IsNull(row, col)) return {};
    std::string lowered = ToLowerAscii(t.value(row, col));
    return use_words_ ? AlnumTokenize(lowered) : QGrams(lowered, q_);
  };
  // Inverted index over table B's tokens.
  std::unordered_map<std::string, std::vector<size_t>> index_b;
  for (size_t j = 0; j < b.num_rows(); ++j) {
    std::vector<std::string> toks = tokens_of(b, j, col_b);
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    for (const auto& t : toks) index_b[t].push_back(j);
  }
  std::vector<CandidatePair> pairs;
  std::unordered_map<size_t, int> overlap_counts;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    std::vector<std::string> toks = tokens_of(a, i, col_a);
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    overlap_counts.clear();
    for (const auto& t : toks) {
      auto it = index_b.find(t);
      if (it == index_b.end()) continue;
      for (size_t j : it->second) ++overlap_counts[j];
    }
    for (const auto& [j, count] : overlap_counts) {
      if (count >= min_overlap_) pairs.push_back({i, j});
    }
  }
  SortAndDedup(&pairs);
  CountCandidates(pairs.size());
  return pairs;
}

Result<std::vector<CandidatePair>> SortedNeighborhoodBlocker::Block(
    const Table& a, const Table& b) const {
  Span span("fairem.block.sorted_neighborhood");
  if (window_ < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  FAIREM_ASSIGN_OR_RETURN(size_t col_a, a.schema().Index(attr_));
  FAIREM_ASSIGN_OR_RETURN(size_t col_b, b.schema().Index(attr_));
  struct Entry {
    std::string key;
    bool from_a;
    size_t row;
  };
  std::vector<Entry> entries;
  entries.reserve(a.num_rows() + b.num_rows());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    entries.push_back({ToLowerAscii(a.value(i, col_a)), true, i});
  }
  for (size_t j = 0; j < b.num_rows(); ++j) {
    entries.push_back({ToLowerAscii(b.value(j, col_b)), false, j});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& x, const Entry& y) { return x.key < y.key; });
  std::vector<CandidatePair> pairs;
  size_t w = static_cast<size_t>(window_);
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size() && j < i + w; ++j) {
      const Entry& x = entries[i];
      const Entry& y = entries[j];
      if (x.from_a == y.from_a) continue;
      if (x.from_a) {
        pairs.push_back({x.row, y.row});
      } else {
        pairs.push_back({y.row, x.row});
      }
    }
  }
  SortAndDedup(&pairs);
  CountCandidates(pairs.size());
  return pairs;
}

Result<std::vector<CandidatePair>> CanopyBlocker::Block(
    const Table& a, const Table& b) const {
  Span span("fairem.block.canopy");
  if (t2_ > t1_) {
    return Status::InvalidArgument("canopy requires t2 <= t1");
  }
  FAIREM_ASSIGN_OR_RETURN(size_t col_a, a.schema().Index(attr_));
  FAIREM_ASSIGN_OR_RETURN(size_t col_b, b.schema().Index(attr_));
  struct Item {
    std::vector<std::string> tokens;
    bool from_a;
    size_t row;
  };
  std::vector<Item> items;
  items.reserve(a.num_rows() + b.num_rows());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    items.push_back(
        {AlnumTokenize(ToLowerAscii(a.value(i, col_a))), true, i});
  }
  for (size_t j = 0; j < b.num_rows(); ++j) {
    items.push_back(
        {AlnumTokenize(ToLowerAscii(b.value(j, col_b))), false, j});
  }
  std::vector<bool> removed(items.size(), false);
  std::vector<CandidatePair> pairs;
  for (size_t center = 0; center < items.size(); ++center) {
    if (removed[center]) continue;
    removed[center] = true;
    // Members of this canopy (center included).
    std::vector<size_t> canopy = {center};
    for (size_t k = 0; k < items.size(); ++k) {
      if (k == center || removed[k]) continue;
      double dist =
          1.0 - JaccardSimilarity(items[center].tokens, items[k].tokens);
      if (dist <= t1_) {
        canopy.push_back(k);
        if (dist <= t2_) removed[k] = true;
      }
    }
    for (size_t x : canopy) {
      for (size_t y : canopy) {
        if (!items[x].from_a || items[y].from_a) continue;
        pairs.push_back({items[x].row, items[y].row});
      }
    }
  }
  SortAndDedup(&pairs);
  CountCandidates(pairs.size());
  return pairs;
}

}  // namespace fairem
