#ifndef FAIREM_BLOCK_BLOCKER_H_
#define FAIREM_BLOCK_BLOCKER_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/data/table.h"
#include "src/util/result.h"

namespace fairem {

/// An unlabelled candidate pair produced by blocking.
struct CandidatePair {
  size_t left = 0;
  size_t right = 0;
};

/// Interface of blocking algorithms. Blocking reduces the candidate space
/// from |A| x |B| to (near-)linear before matching (§1, [49]); the paper's
/// end-to-end systems embed their own blocking, which these classes model.
class Blocker {
 public:
  virtual ~Blocker() = default;

  /// Name for reports.
  virtual std::string name() const = 0;

  /// Emits candidate pairs from tables `a` and `b`. Pairs are unique and
  /// ordered lexicographically by (left, right).
  virtual Result<std::vector<CandidatePair>> Block(const Table& a,
                                                   const Table& b) const = 0;
};

/// Quality metrics of a blocking result against ground truth (§1, [50]):
/// reduction ratio = 1 - |C| / (|A|*|B|); pair completeness = fraction of
/// true matches retained in C.
struct BlockingStats {
  double reduction_ratio = 0.0;
  double pair_completeness = 0.0;
  size_t num_candidates = 0;
};

/// Computes blocking quality given the candidates and the full labelled
/// pair set (pairs absent from `labeled` are assumed non-matches).
BlockingStats EvaluateBlocking(const std::vector<CandidatePair>& candidates,
                               const std::vector<LabeledPair>& labeled,
                               size_t num_rows_a, size_t num_rows_b);

}  // namespace fairem

#endif  // FAIREM_BLOCK_BLOCKER_H_
