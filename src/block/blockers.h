#ifndef FAIREM_BLOCK_BLOCKERS_H_
#define FAIREM_BLOCK_BLOCKERS_H_

#include <string>
#include <vector>

#include "src/block/blocker.h"

namespace fairem {

/// Emits the full cartesian product A x B (no blocking). Useful as the
/// exhaustive baseline and for small datasets.
class CartesianBlocker : public Blocker {
 public:
  std::string name() const override { return "cartesian"; }
  Result<std::vector<CandidatePair>> Block(const Table& a,
                                           const Table& b) const override;
};

/// Standard blocking: pairs agree exactly on a blocking key attribute
/// (case-folded). Null keys never match anything.
class AttrEquivalenceBlocker : public Blocker {
 public:
  explicit AttrEquivalenceBlocker(std::string attr) : attr_(std::move(attr)) {}
  std::string name() const override { return "attr_equivalence(" + attr_ + ")"; }
  Result<std::vector<CandidatePair>> Block(const Table& a,
                                           const Table& b) const override;

 private:
  std::string attr_;
};

/// Token-overlap blocking: pairs share at least `min_overlap` q-grams (or
/// word tokens when `use_words` is true) of the given attribute.
class OverlapBlocker : public Blocker {
 public:
  OverlapBlocker(std::string attr, int min_overlap, bool use_words = false,
                 int q = 3)
      : attr_(std::move(attr)),
        min_overlap_(min_overlap),
        use_words_(use_words),
        q_(q) {}
  std::string name() const override { return "overlap(" + attr_ + ")"; }
  Result<std::vector<CandidatePair>> Block(const Table& a,
                                           const Table& b) const override;

 private:
  std::string attr_;
  int min_overlap_;
  bool use_words_;
  int q_;
};

/// Sorted-neighbourhood blocking: both tables are merged, sorted by the key
/// attribute, and a window of size `window` slides over the sorted order;
/// cross-table records in a window become candidates.
class SortedNeighborhoodBlocker : public Blocker {
 public:
  SortedNeighborhoodBlocker(std::string attr, int window)
      : attr_(std::move(attr)), window_(window) {}
  std::string name() const override {
    return "sorted_neighborhood(" + attr_ + ")";
  }
  Result<std::vector<CandidatePair>> Block(const Table& a,
                                           const Table& b) const override;

 private:
  std::string attr_;
  int window_;
};

/// Canopy clustering blocker (McCallum et al.): records are greedily
/// grouped into canopies using a cheap token-overlap distance; a record
/// joins every canopy whose center is within `t1` (loose) and stops seeding
/// new canopies when within `t2` (tight, t2 <= t1). Candidates are the
/// cross-table pairs sharing a canopy. Distances are 1 - word-token
/// Jaccard of the key attribute.
class CanopyBlocker : public Blocker {
 public:
  CanopyBlocker(std::string attr, double t1 = 0.8, double t2 = 0.4)
      : attr_(std::move(attr)), t1_(t1), t2_(t2) {}
  std::string name() const override { return "canopy(" + attr_ + ")"; }
  Result<std::vector<CandidatePair>> Block(const Table& a,
                                           const Table& b) const override;

 private:
  std::string attr_;
  double t1_;
  double t2_;
};

}  // namespace fairem

#endif  // FAIREM_BLOCK_BLOCKERS_H_
