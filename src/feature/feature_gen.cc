#include "src/feature/feature_gen.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/text/tokenize.h"
#include "src/util/string_util.h"

namespace fairem {
namespace {

constexpr size_t kShortStringMaxAvgLen = 24;
constexpr double kShortStringMaxAvgTokens = 3.0;

}  // namespace

const char* AttrTypeName(AttrType type) {
  switch (type) {
    case AttrType::kNumeric:
      return "numeric";
    case AttrType::kShortString:
      return "short_string";
    case AttrType::kLongString:
      return "long_string";
  }
  return "unknown";
}

Result<AttrType> InferAttrType(const Table& a, const Table& b,
                               const std::string& attr) {
  FAIREM_ASSIGN_OR_RETURN(size_t col_a, a.schema().Index(attr));
  FAIREM_ASSIGN_OR_RETURN(size_t col_b, b.schema().Index(attr));
  size_t non_null = 0;
  size_t numeric = 0;
  size_t total_len = 0;
  size_t total_tokens = 0;
  auto scan = [&](const Table& t, size_t col) {
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (t.IsNull(r, col)) continue;
      std::string_view v = t.value(r, col);
      ++non_null;
      if (ParseDouble(v, nullptr)) ++numeric;
      total_len += v.size();
      total_tokens += WhitespaceTokenize(v).size();
    }
  };
  scan(a, col_a);
  scan(b, col_b);
  if (non_null == 0) return AttrType::kShortString;
  if (numeric == non_null) return AttrType::kNumeric;
  double avg_len = static_cast<double>(total_len) / non_null;
  double avg_tokens = static_cast<double>(total_tokens) / non_null;
  if (avg_len <= kShortStringMaxAvgLen &&
      avg_tokens <= kShortStringMaxAvgTokens) {
    return AttrType::kShortString;
  }
  return AttrType::kLongString;
}

Result<std::vector<FeatureDef>> GenerateFeatures(
    const Table& a, const Table& b, const std::vector<std::string>& attrs) {
  Span span("fairem.feature.generate_defs");
  span.AddArg("attrs", std::to_string(attrs.size()));
  std::vector<FeatureDef> defs;
  for (const auto& attr : attrs) {
    FAIREM_ASSIGN_OR_RETURN(AttrType type, InferAttrType(a, b, attr));
    switch (type) {
      case AttrType::kNumeric:
        defs.push_back({attr, SimilarityMeasure::kExactMatch});
        defs.push_back({attr, SimilarityMeasure::kNumericAbsDiff});
        break;
      case AttrType::kShortString:
        defs.push_back({attr, SimilarityMeasure::kExactMatch});
        defs.push_back({attr, SimilarityMeasure::kLevenshtein});
        defs.push_back({attr, SimilarityMeasure::kJaro});
        defs.push_back({attr, SimilarityMeasure::kJaroWinkler});
        defs.push_back({attr, SimilarityMeasure::kJaccardQgram3});
        defs.push_back({attr, SimilarityMeasure::kNeedlemanWunsch});
        break;
      case AttrType::kLongString:
        // Word-token measures only, as in Magellan's defaults for long
        // text: character-gram measures are not generated here, which is
        // why token-formatting variance defeats the non-neural matchers on
        // the textual datasets (§5.3.3).
        defs.push_back({attr, SimilarityMeasure::kJaccardWord});
        defs.push_back({attr, SimilarityMeasure::kCosineWord});
        defs.push_back({attr, SimilarityMeasure::kDiceWord});
        defs.push_back({attr, SimilarityMeasure::kOverlapWord});
        break;
    }
  }
  static Counter* defs_counter =
      MetricsRegistry::Global().GetCounter("fairem.feature.defs_generated");
  defs_counter->Increment(defs.size());
  return defs;
}

Result<std::vector<double>> ExtractFeatures(
    const std::vector<FeatureDef>& defs, const Table& a, const Table& b,
    size_t left_row, size_t right_row) {
  std::vector<double> features;
  features.reserve(defs.size());
  for (const auto& def : defs) {
    FAIREM_ASSIGN_OR_RETURN(size_t col_a, a.schema().Index(def.attr));
    FAIREM_ASSIGN_OR_RETURN(size_t col_b, b.schema().Index(def.attr));
    if (a.IsNull(left_row, col_a) || b.IsNull(right_row, col_b)) {
      features.push_back(0.0);
      continue;
    }
    features.push_back(ComputeSimilarity(def.measure, a.value(left_row, col_a),
                                         b.value(right_row, col_b)));
  }
  return features;
}

Result<FeatureTable> BuildFeatureTable(const std::vector<FeatureDef>& defs,
                                       const Table& a, const Table& b,
                                       const std::vector<LabeledPair>& pairs) {
  Span span("fairem.feature.build_table");
  span.AddArg("pairs", std::to_string(pairs.size()));
  span.AddArg("defs", std::to_string(defs.size()));
  static Counter* rows_counter =
      MetricsRegistry::Global().GetCounter("fairem.feature.rows_built");
  static Counter* values_counter =
      MetricsRegistry::Global().GetCounter("fairem.feature.values_computed");
  rows_counter->Increment(pairs.size());
  values_counter->Increment(pairs.size() * defs.size());
  FeatureTable table;
  table.defs = defs;
  table.rows.reserve(pairs.size());
  table.labels.reserve(pairs.size());
  for (const auto& p : pairs) {
    FAIREM_ASSIGN_OR_RETURN(std::vector<double> row,
                            ExtractFeatures(defs, a, b, p.left, p.right));
    for (size_t f = 0; f < row.size(); ++f) {
      if (!std::isfinite(row[f])) {
        return Status::InvalidArgument(
            "non-finite feature value for attribute '" + defs[f].attr + "'");
      }
    }
    table.rows.push_back(std::move(row));
    table.labels.push_back(p.is_match ? 1 : 0);
  }
  return table;
}

}  // namespace fairem
